# idnlab — reproduction of "A Reexamination of Internationalized Domain
# Names" (DSN 2018). Stdlib-only Go module.

GO ?= go

.PHONY: all build vet test race bench report fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark per paper table/figure plus ablations; -v includes rows.
bench:
	$(GO) test -bench=. -benchmem ./...

# The full study: every table and figure at 1/100 of the paper's corpus.
report:
	$(GO) run ./cmd/idnreport -seed 2018 -scale 100

# Short fuzz passes over the codecs.
fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=10s ./internal/punycode/
	$(GO) test -fuzz=FuzzEncode -fuzztime=10s ./internal/punycode/
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/zonefile/
	$(GO) test -fuzz=FuzzDecode -fuzztime=10s ./internal/dnssim/

clean:
	$(GO) clean ./...
	rm -rf zones test_output.txt bench_output.txt
