# idnlab — reproduction of "A Reexamination of Internationalized Domain
# Names" (DSN 2018). Stdlib-only Go module.

GO ?= go
FUZZTIME ?= 10s
# Benchtime for bench-ssim: default 1s for publishable numbers; the CI
# smoke uses 10x (timing is noisy at 10x, but allocs/op stays exact, so
# the zero-alloc gate still fails loudly on regressions).
SSIM_BENCHTIME ?= 1s
SSIM_BENCH_PATTERN = ^(BenchmarkScore|BenchmarkWithoutPrefilter|BenchmarkSSIMKernel|BenchmarkSSIMKernelNaive|BenchmarkMSEKernel|BenchmarkMSEKernelNaive|BenchmarkRenderWidthInto|BenchmarkPipelineHomograph)$$
# Benchtime for bench-report: 1s for publishable numbers; the CI smoke
# uses 2x (the full-study benchmark assembles a dataset per iteration, so
# even 2x exercises the whole report path; allocs/op stays exact).
REPORT_BENCHTIME ?= 1s
REPORT_BENCH_PATTERN = ^(BenchmarkStudyRun|BenchmarkLangIDClassify|BenchmarkLangIDClassifyDomain)$$
# Benchtime for bench-index: 1s for publishable numbers; the CI smoke
# uses the default. Gates are absolute (0 allocs/op and >= 100k
# lookups/s), so they hold at any benchtime.
INDEX_BENCHTIME ?= 1s
INDEX_BENCH_PATTERN = ^(BenchmarkIndexLookup|BenchmarkDetectNormalized10k)$$
# Benchtime for bench-watch: 1s for publishable numbers; the CI smoke
# uses 0.3s (the pattern includes the whole-delta parse benchmark, so a
# fixed iteration count would blow the budget; 0.3s still gives the
# match loop ~200k iterations — a stable ns/op against the 500k
# deltas/s floor — and allocs/op is exact at any benchtime).
WATCH_BENCHTIME ?= 1s
WATCH_BENCH_PATTERN = ^(BenchmarkWatchMatch1M|BenchmarkAlertLogAppend|BenchmarkDeltaParse)$$
# Benchtime for bench-stat: 1s for publishable numbers; the CI smoke
# uses 0.3s (a fixed iteration count would blow the budget on the
# ~0.5s/op train benchmark, which rides along unguarded for
# offline-cost visibility). Gates are absolute (0 allocs/op and >= 1M
# classifications/s), so they hold at any benchtime.
STAT_BENCHTIME ?= 1s
STAT_BENCH_PATTERN = ^(BenchmarkStatClassify|BenchmarkStatClassifyNaive|BenchmarkStatTrain)$$
# Knobs for bench-gateway: the codec microbench benchtime (allocs/op is
# exact at any benchtime; the zero-alloc gate holds even at CI's 10x),
# the load-phase duration and the per-worker rate cap. CI smoke:
# `make bench-gateway GATEWAY_CODEC_BENCHTIME=10x GATEWAY_BENCH_DURATION=4s`.
GATEWAY_CODEC_BENCHTIME ?= 1s
GATEWAY_BENCH_DURATION ?= 8s
GATEWAY_BENCH_RATE ?= 500
# Knobs for bench-store: the warm-boot corpus size (1M verdicts for the
# publishable warm-boot budget; CI uses 200k — the >= 100k entries/s
# recovery gate is a rate, so it holds at any corpus size), the vstore
# microbench benchtime, the replication-overhead load duration and the
# per-worker rate cap. CI smoke: `make bench-store STORE_BENCH_RECORDS=200000
# STORE_BENCHTIME=0.3s STORE_BENCH_DURATION=4s`.
STORE_BENCH_RECORDS ?= 1000000
STORE_BENCHTIME ?= 1s
STORE_BENCH_DURATION ?= 8s
STORE_BENCH_RATE ?= 500

.PHONY: all build vet test race bench bench-ssim bench-report bench-index bench-watch bench-stat bench-gateway bench-store report fuzz fuzz-smoke serve-smoke serve-bench cluster-smoke cluster-bench index-smoke watch-smoke stat-smoke store-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark per paper table/figure plus ablations; -v includes rows.
bench:
	$(GO) test -bench=. -benchmem ./...

# SSIM hot-path benchmarks (PR 2): kernel + scan numbers into
# BENCH_ssim.json (old-vs-new ns/op, B/op, allocs/op against the recorded
# pre-optimization baseline). Exits non-zero if any steady-state path
# allocates. CI smoke: `make bench-ssim SSIM_BENCHTIME=10x`.
bench-ssim:
	$(GO) test -run='^$$' -bench '$(SSIM_BENCH_PATTERN)' -benchmem -benchtime=$(SSIM_BENCHTIME) . \
	  | $(GO) run ./cmd/benchjson \
	      -baseline BENCH_baseline_ssim.txt \
	      -out BENCH_ssim.json \
	      -require-zero-allocs BenchmarkScore,BenchmarkSSIMKernel,BenchmarkMSEKernel,BenchmarkRenderWidthInto

# Full-study + language-ID benchmarks (PR 4): the corpus-index Study.Run
# and the dense langid classifier into BENCH_report.json (old-vs-new
# against the recorded pre-index baseline). Exits non-zero if any
# steady-state Classify path allocates. CI smoke:
# `make bench-report REPORT_BENCHTIME=2x`.
bench-report:
	$(GO) test -run='^$$' -bench '$(REPORT_BENCH_PATTERN)' -benchmem -benchtime=$(REPORT_BENCHTIME) ./internal/core/ ./internal/langid/ \
	  | $(GO) run ./cmd/benchjson \
	      -baseline BENCH_baseline_report.txt \
	      -out BENCH_report.json \
	      -require-zero-allocs BenchmarkLangIDClassify/ascii,BenchmarkLangIDClassify/latin-diacritics,BenchmarkLangIDClassify/nonlatin,BenchmarkLangIDClassify/cyrillic,BenchmarkLangIDClassifyDomain

# Candidate-index benchmarks (PR 6): steady-state Candidates lookup and
# the end-to-end indexed DetectNormalized at 10k brands into
# BENCH_index.json (old = recorded brute-sweep baseline). Exits non-zero
# if the lookup allocates or drops below 100k lookups/s.
bench-index:
	$(GO) test -run='^$$' -bench '$(INDEX_BENCH_PATTERN)' -benchmem -benchtime=$(INDEX_BENCHTIME) ./internal/candidx/ ./internal/core/ \
	  | $(GO) run ./cmd/benchjson \
	      -baseline BENCH_baseline_index.txt \
	      -out BENCH_index.json \
	      -require-zero-allocs BenchmarkIndexLookup,BenchmarkDetectNormalized10k \
	      -min-throughput BenchmarkIndexLookup=100000

# Streaming watch-tier benchmarks (PR 7): one delta event through the
# match stage at 10k brands / 1M standing subscriptions, the alert log's
# group-commit batching curve (1/16/256 writers), and the delta parser,
# into BENCH_watch.json (old = recorded WATCH_NAIVE=1 sweep baseline).
# Exits non-zero if the match loop allocates or drops below 500k
# deltas/s. CI smoke: `make bench-watch WATCH_BENCHTIME=0.3s`.
bench-watch:
	$(GO) test -run='^$$' -bench '$(WATCH_BENCH_PATTERN)' -benchmem -benchtime=$(WATCH_BENCHTIME) ./internal/watch/ \
	  | $(GO) run ./cmd/benchjson \
	      -baseline BENCH_baseline_watch.txt \
	      -out BENCH_watch.json \
	      -require-zero-allocs BenchmarkWatchMatch1M \
	      -min-throughput BenchmarkWatchMatch1M=500000

# Statistical-classifier benchmarks (PR 8): one label scored through the
# zero-copy IDNSTAT1 model under serving conditions into BENCH_stat.json
# (old = recorded map-based-scorer baseline). The measured prefilter
# pass rate rides along as a custom pass/op metric. Exits non-zero if
# the classify path allocates or drops below 1M classifications/s.
# CI smoke: `make bench-stat STAT_BENCHTIME=0.3s`.
bench-stat:
	$(GO) test -run='^$$' -bench '$(STAT_BENCH_PATTERN)' -benchmem -benchtime=$(STAT_BENCHTIME) ./internal/feat/ \
	  | $(GO) run ./cmd/benchjson \
	      -baseline BENCH_baseline_stat.txt \
	      -out BENCH_stat.json \
	      -require-zero-allocs BenchmarkStatClassify \
	      -min-throughput BenchmarkStatClassify=1000000

# Gateway wire-path benchmark (PR 9): internal/api append-codec
# microbenchmarks (vs the recorded encoding/json baseline, hard
# 0 allocs/op gate on every encoder) plus the request-coalescing
# throughput comparison — idngateway + 2 rate-capped workers under a
# singles-only load, coalescing off vs -coalesce 500us — into
# BENCH_gateway.json. Fails if coalescing buys < 1.5x sustained 2xx QPS.
bench-gateway:
	CODEC_BENCHTIME=$(GATEWAY_CODEC_BENCHTIME) sh scripts/gateway_bench.sh $(GATEWAY_BENCH_DURATION) $(GATEWAY_BENCH_RATE)

# The full study: every table and figure at 1/100 of the paper's corpus.
report:
	$(GO) run ./cmd/idnreport -seed 2018 -scale 100

# Short fuzz passes over the codecs (FUZZTIME=2s for the CI smoke).
fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/punycode/
	$(GO) test -fuzz=FuzzEncode -fuzztime=$(FUZZTIME) ./internal/punycode/
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/zonefile/
	$(GO) test -fuzz=FuzzScanStream -fuzztime=$(FUZZTIME) ./internal/zonefile/
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/dnssim/
	$(GO) test -fuzz=FuzzDecodeDetect -fuzztime=$(FUZZTIME) ./internal/serve/
	$(GO) test -fuzz=FuzzDecodeBatch -fuzztime=$(FUZZTIME) ./internal/serve/
	$(GO) test -fuzz=FuzzIndexRoundTrip -fuzztime=$(FUZZTIME) ./internal/candidx/
	$(GO) test -fuzz=FuzzIndexLookup -fuzztime=$(FUZZTIME) ./internal/candidx/
	$(GO) test -fuzz=FuzzDeltaParse -fuzztime=$(FUZZTIME) ./internal/watch/
	$(GO) test -fuzz=FuzzAlertLogReplay -fuzztime=$(FUZZTIME) ./internal/watch/
	$(GO) test -fuzz=FuzzCodecRoundTrip -fuzztime=$(FUZZTIME) ./internal/api/
	$(GO) test -fuzz=FuzzDecodeResponseBytes -fuzztime=$(FUZZTIME) ./internal/api/

# End-to-end smoke of the online detection service: boot idnserve, fire
# the mixed single/batch/bad-input set via idnload -smoke, assert clean
# SIGTERM drain.
serve-smoke:
	sh scripts/serve_smoke.sh

# Serving benchmark: idnload's zipfian replay against a local idnserve
# (longer-running; reports achieved QPS and latency percentiles).
SERVE_BENCH_DURATION ?= 10s
serve-bench:
	sh scripts/serve_bench.sh $(SERVE_BENCH_DURATION)

# Distribution-tier smoke (PR 5): idngateway + 2 idnserve workers, the
# full smoke set through the gateway, SIGKILL one worker, smoke again on
# the survivors, clean SIGTERM drains.
cluster-smoke:
	sh scripts/cluster_smoke.sh

# Horizontal-scaling benchmark (PR 5): one rate-capped worker vs gateway
# + 3 rate-capped workers, sustained 2xx QPS into BENCH_cluster.json.
# Fails if the 3-node cluster does not sustain >= 2x one node.
CLUSTER_BENCH_DURATION ?= 8s
CLUSTER_BENCH_RATE ?= 500
cluster-bench:
	sh scripts/cluster_bench.sh $(CLUSTER_BENCH_DURATION) $(CLUSTER_BENCH_RATE)

# Candidate-index smoke (PR 6): build a small index with idnindex, verify
# it (deterministic rebuild + sampled sweep equivalence), then serve
# through idnserve -index and fire the smoke set.
index-smoke:
	sh scripts/index_smoke.sh

# Watch-tier smoke (PR 7): idnzonegen emits a delta stream, idnwatch
# processes it once (alerts, idempotent cursor, deterministic re-run),
# then tails it as a daemon with /metrics and drains cleanly on SIGTERM.
watch-smoke:
	sh scripts/watch_smoke.sh

# Statistical-classifier smoke (PR 8): idnzonegen emits the labeled CSV,
# idnstat trains and gates the held-out eval (recall/pass-rate), idnserve
# boots with -stat and the labeled attack set must come back with
# ensemble verdicts, /metrics must expose the prefilter split, clean
# SIGTERM drain.
stat-smoke:
	sh scripts/stat_smoke.sh

# Durable-store smoke (PR 10): gateway + 3 idnserve workers with warm
# logs, zipfian warm-up, SIGKILL one worker under live load, restart it
# on the same store directory, assert zero non-429 errors, a non-empty
# warm boot, the cold-miss budget from /metrics, and clean drains.
store-smoke:
	sh scripts/store_smoke.sh

# Durable-store benchmark (PR 10): vstore append/recovery/since
# microbenchmarks (warm-boot budget: >= 100k entries/s so a 1M-verdict
# partition boots in <= 10s) plus the replication-overhead comparison —
# the cluster-bench topology memory-only vs -store — into
# BENCH_store.json. Fails if the durable tier costs > 10% throughput.
bench-store:
	RECORDS=$(STORE_BENCH_RECORDS) STORE_BENCHTIME=$(STORE_BENCHTIME) sh scripts/store_bench.sh $(STORE_BENCH_DURATION) $(STORE_BENCH_RATE)

# Reduced-budget fuzz pass for CI.
fuzz-smoke:
	$(MAKE) fuzz FUZZTIME=2s

clean:
	$(GO) clean ./...
	rm -rf zones test_output.txt bench_output.txt
