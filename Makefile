# idnlab — reproduction of "A Reexamination of Internationalized Domain
# Names" (DSN 2018). Stdlib-only Go module.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race bench report fuzz fuzz-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark per paper table/figure plus ablations; -v includes rows.
bench:
	$(GO) test -bench=. -benchmem ./...

# The full study: every table and figure at 1/100 of the paper's corpus.
report:
	$(GO) run ./cmd/idnreport -seed 2018 -scale 100

# Short fuzz passes over the codecs (FUZZTIME=2s for the CI smoke).
fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/punycode/
	$(GO) test -fuzz=FuzzEncode -fuzztime=$(FUZZTIME) ./internal/punycode/
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/zonefile/
	$(GO) test -fuzz=FuzzScanStream -fuzztime=$(FUZZTIME) ./internal/zonefile/
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/dnssim/

# Reduced-budget fuzz pass for CI.
fuzz-smoke:
	$(MAKE) fuzz FUZZTIME=2s

clean:
	$(GO) clean ./...
	rm -rf zones test_output.txt bench_output.txt
