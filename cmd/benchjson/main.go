// Command benchjson turns `go test -bench` output into a machine-readable
// old-vs-new comparison. It reads the current benchmark run from stdin,
// the committed pre-optimization baseline from a raw bench-output file,
// and writes a JSON document pairing every benchmark's old and new ns/op,
// B/op and allocs/op with the derived speedup.
//
// It is the engine behind `make bench-ssim`, which tracks the PR-2
// homograph hot path (integral-image SSIM kernel, brand-raster cache,
// zero-alloc rendering):
//
//	go test -run=NONE -bench '...' -benchmem | \
//	    go run ./cmd/benchjson -baseline BENCH_baseline_ssim.txt \
//	        -out BENCH_ssim.json \
//	        -require-zero-allocs BenchmarkScore,BenchmarkSSIMKernel
//
// The -require-zero-allocs gate makes allocation regressions on the
// steady-state paths fail loudly (exit 1) even in CI smoke mode
// (-benchtime=10x), where timing numbers are too noisy to gate on but
// allocs/op is deterministic. -min-speedup optionally gates headline
// ratios on full runs, and -min-throughput gates absolute ops/s
// (1e9/ns-per-op) floors such as the candidate index's 100k lookups/s.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Metrics is one benchmark line's numbers. Custom units reported via
// b.ReportMetric (e.g. the alert log's frames/commit batching curve)
// land in Extra keyed by their unit string.
type Metrics struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"b_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	MBPerSec    *float64           `json:"mb_per_s,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Entry pairs a benchmark's baseline and current numbers.
type Entry struct {
	Old *Metrics `json:"old,omitempty"`
	New *Metrics `json:"new,omitempty"`
	// SpeedupNs is old ns/op divided by new ns/op (>1 means faster now).
	SpeedupNs *float64 `json:"speedup_ns,omitempty"`
}

// Report is the BENCH_ssim.json document.
type Report struct {
	Generated    string           `json:"generated"`
	BaselineFile string           `json:"baseline_file"`
	Note         string           `json:"note"`
	Benchmarks   map[string]Entry `json:"benchmarks"`
}

func main() {
	baselinePath := flag.String("baseline", "", "raw `go test -bench` output recorded before the optimization")
	outPath := flag.String("out", "", "output JSON path (default stdout)")
	zeroAllocs := flag.String("require-zero-allocs", "", "comma-separated benchmark names whose current allocs/op must be 0")
	minSpeedup := flag.String("min-speedup", "", "comma-separated name=factor gates on old/new ns-per-op ratio")
	minThroughput := flag.String("min-throughput", "", "comma-separated name=ops_per_sec gates on this run's 1e9/ns-per-op rate")
	flag.Parse()

	current, err := parseBench(os.Stdin)
	if err != nil {
		fatalf("parse current run: %v", err)
	}
	if len(current) == 0 {
		fatalf("no benchmark lines on stdin (did the bench pattern match anything?)")
	}
	baseline := map[string]Metrics{}
	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			fatalf("open baseline: %v", err)
		}
		baseline, err = parseBench(f)
		f.Close()
		if err != nil {
			fatalf("parse baseline: %v", err)
		}
	}

	rep := Report{
		Generated:    time.Now().UTC().Format(time.RFC3339),
		BaselineFile: *baselinePath,
		Note: "old = pre-optimization baseline (recorded bench output); " +
			"new = this run; speedup_ns = old/new. Machines may differ from " +
			"the baseline host; allocs/op is the portable gate.",
		Benchmarks: map[string]Entry{},
	}
	for name, m := range current {
		mm := m
		e := Entry{New: &mm}
		if old, ok := baseline[name]; ok {
			oo := old
			e.Old = &oo
			if m.NsPerOp > 0 {
				s := old.NsPerOp / m.NsPerOp
				e.SpeedupNs = &s
			}
		}
		rep.Benchmarks[name] = e
	}
	// Baseline-only rows (benchmark renamed or removed) are kept visible.
	for name, old := range baseline {
		if _, ok := rep.Benchmarks[name]; !ok {
			oo := old
			rep.Benchmarks[name] = Entry{Old: &oo}
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	buf = append(buf, '\n')
	if *outPath == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
		fatalf("write %s: %v", *outPath, err)
	}

	failed := false
	for _, name := range splitList(*zeroAllocs) {
		m, ok := current[name]
		switch {
		case !ok:
			fmt.Fprintf(os.Stderr, "benchjson: FAIL %s: not present in this run\n", name)
			failed = true
		case m.AllocsPerOp == nil:
			fmt.Fprintf(os.Stderr, "benchjson: FAIL %s: no allocs/op column (run with -benchmem or b.ReportAllocs)\n", name)
			failed = true
		case *m.AllocsPerOp != 0:
			fmt.Fprintf(os.Stderr, "benchjson: FAIL %s: %v allocs/op, want 0\n", name, *m.AllocsPerOp)
			failed = true
		default:
			fmt.Fprintf(os.Stderr, "benchjson: ok   %s: 0 allocs/op\n", name)
		}
	}
	for _, gate := range splitList(*minSpeedup) {
		name, factorStr, ok := strings.Cut(gate, "=")
		if !ok {
			fatalf("bad -min-speedup entry %q (want name=factor)", gate)
		}
		factor, err := strconv.ParseFloat(factorStr, 64)
		if err != nil {
			fatalf("bad -min-speedup factor %q: %v", factorStr, err)
		}
		e, okCur := rep.Benchmarks[name]
		if !okCur || e.SpeedupNs == nil {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL %s: no old-vs-new ratio available\n", name)
			failed = true
			continue
		}
		if *e.SpeedupNs < factor {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL %s: speedup %.2fx below required %.2fx\n", name, *e.SpeedupNs, factor)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: ok   %s: %.2fx (required %.2fx)\n", name, *e.SpeedupNs, factor)
		}
	}
	for _, gate := range splitList(*minThroughput) {
		name, rateStr, ok := strings.Cut(gate, "=")
		if !ok {
			fatalf("bad -min-throughput entry %q (want name=ops_per_sec)", gate)
		}
		rate, err := strconv.ParseFloat(rateStr, 64)
		if err != nil {
			fatalf("bad -min-throughput rate %q: %v", rateStr, err)
		}
		m, okCur := current[name]
		if !okCur || m.NsPerOp <= 0 {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL %s: not present in this run\n", name)
			failed = true
			continue
		}
		got := 1e9 / m.NsPerOp
		if got < rate {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL %s: %.0f ops/s below required %.0f\n", name, got, rate)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: ok   %s: %.0f ops/s (required %.0f)\n", name, got, rate)
		}
	}
	if failed {
		os.Exit(1)
	}
	// Human-readable summary of the headline ratios, sorted by name.
	names := make([]string, 0, len(rep.Benchmarks))
	for name := range rep.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if e := rep.Benchmarks[name]; e.SpeedupNs != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %-40s %10.0f -> %8.0f ns/op  (%.1fx)\n",
				name, e.Old.NsPerOp, e.New.NsPerOp, *e.SpeedupNs)
		}
	}
}

// parseBench extracts benchmark lines from `go test -bench` output.
func parseBench(r io.Reader) (map[string]Metrics, error) {
	out := map[string]Metrics{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := normalizeName(fields[0])
		m := Metrics{}
		seenNs := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
				seenNs = true
			case "B/op":
				m.BytesPerOp = ptr(v)
			case "allocs/op":
				m.AllocsPerOp = ptr(v)
			case "MB/s":
				m.MBPerSec = ptr(v)
			default:
				if strings.Contains(fields[i+1], "/") {
					if m.Extra == nil {
						m.Extra = map[string]float64{}
					}
					m.Extra[fields[i+1]] = v
				}
			}
		}
		if seenNs {
			out[name] = m
		}
	}
	return out, sc.Err()
}

// normalizeName strips the trailing -GOMAXPROCS suffix Go appends on
// multi-proc machines, without mangling sub-benchmark names that
// legitimately end in -<digits> (e.g. workers-4 on a single-proc host,
// where Go appends no suffix).
func normalizeName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 {
		return name
	}
	suffix := name[i+1:]
	if suffix == "" {
		return name
	}
	if _, err := strconv.Atoi(suffix); err != nil {
		return name
	}
	trimmed := name[:i]
	// workers-4 → trimming yields "workers-": a dangling dash means the
	// digits were part of the sub-benchmark name, not a proc suffix.
	if strings.HasSuffix(trimmed, "-") {
		return name
	}
	return trimmed
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func ptr(v float64) *float64 { return &v }

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
