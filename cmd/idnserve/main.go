// Command idnserve hosts the homograph and Type-1 semantic detectors as
// a long-running HTTP JSON service — the paper's batch detectors (§VI,
// §VII) turned into an online verdict API with a sharded LRU verdict
// cache, singleflight dedup, admission control with load shedding, and
// live metrics.
//
// Endpoints:
//
//	POST /v1/detect        {"domain":"xn--pple-43d.com"}
//	POST /v1/detect/batch  {"domains":["...","..."]}
//	GET  /healthz          liveness; 503 while draining
//	GET  /readyz           readiness: warm-up done + admission headroom
//	GET  /clusterz         peer-mode membership view (with -join)
//	GET  /metrics          JSON counters, latency percentiles, cache+admission stats
//
// SIGINT/SIGTERM trigger a graceful drain: health flips to 503,
// in-flight requests finish, then the listener closes.
//
// Usage:
//
//	idnserve -listen 127.0.0.1:8181 -brands 1000 -cache 65536
//	idnserve -listen 127.0.0.1:8181 -join 127.0.0.1:8180   # register with idngateway
//	idnserve -listen 127.0.0.1:8181 -index brands.cidx     # O(1) candidate index
//	curl -d '{"domain":"аррӏе.com"}' http://127.0.0.1:8181/v1/detect
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"idnlab/internal/candidx"
	"idnlab/internal/feat"
	"idnlab/internal/serve"
	"idnlab/internal/vstore"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "idnserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen       = flag.String("listen", "127.0.0.1:8181", "HTTP listen address (use :0 for an ephemeral port)")
		topK         = flag.Int("brands", 1000, "number of top brands to defend")
		threshold    = flag.Float64("threshold", 0, "SSIM detection threshold (0 = default)")
		workers      = flag.Int("workers", 0, "batch fan-out width (0 = GOMAXPROCS)")
		cacheSize    = flag.Int("cache", 65536, "verdict cache capacity (entries)")
		cacheShards  = flag.Int("cache-shards", 16, "verdict cache shard count")
		maxInflight  = flag.Int("max-inflight", 0, "concurrent detector work bound (0 = 4x workers)")
		maxQueue     = flag.Int("max-queue", 0, "admission queue depth (0 = 16x max-inflight, -1 = no queue)")
		queueWait    = flag.Duration("queue-wait", 50*time.Millisecond, "max time a request may queue for admission")
		reqTimeout   = flag.Duration("timeout", time.Second, "per-request deadline")
		maxBatch     = flag.Int("max-batch", 256, "max labels per batch request")
		drain        = flag.Duration("drain", 5*time.Second, "graceful shutdown budget")
		join         = flag.String("join", "", "idngateway address to register with (peer mode)")
		nodeID       = flag.String("node", "", "node ID for health bodies and ring placement (default <hostname>-<pid>)")
		advertise    = flag.String("advertise", "", "host:port the gateway should route to (default: the bound listen address)")
		maxRPS       = flag.Int("rate", 0, "per-node request rate cap, req/s (0 = unlimited)")
		indexPath    = flag.String("index", "", "precomputed candidate index file (built by idnindex); replaces -brands with the index's embedded catalog")
		statPath     = flag.String("stat", "", "trained statistical model file (built by idnstat train); enables ensemble verdicts and the learned prefilter")
		storeDir     = flag.String("store", "", "durable verdict store directory (warm log + snapshots); empty = memory-only")
		storeCompact = flag.Int64("store-compact", 8<<20, "active-log bytes that trigger snapshot compaction (-1 disables)")
		storeNoFsync = flag.Bool("store-no-fsync", false, "skip fsyncs in the store (testing only; crashes may lose recent verdicts)")
		syncEvery    = flag.Duration("sync-interval", 15*time.Second, "anti-entropy re-sync cadence in peer mode")
	)
	flag.Parse()

	var ix *candidx.Index
	if *indexPath != "" {
		loaded, err := candidx.LoadFile(*indexPath)
		if err != nil {
			return fmt.Errorf("load index: %w", err)
		}
		ix = loaded
		fmt.Printf("idnserve: index %s: %d brands, %d keys, fingerprint %016x\n",
			*indexPath, len(ix.Brands()), ix.KeyCount(), ix.Fingerprint())
	}
	var stat *feat.Model
	if *statPath != "" {
		loaded, err := feat.LoadFile(*statPath)
		if err != nil {
			return fmt.Errorf("load stat model: %w", err)
		}
		stat = loaded
		fmt.Printf("idnserve: stat model %s: seed %d, %d bigrams, flag %.3f, prefilter %.3f\n",
			*statPath, stat.Seed(), stat.BigramCount(), stat.FlagRaw(), stat.PrefilterRaw())
	}

	var store *vstore.Store
	if *storeDir != "" {
		opened, err := vstore.Open(vstore.Config{Dir: *storeDir, CompactBytes: *storeCompact, NoFsync: *storeNoFsync})
		if err != nil {
			return fmt.Errorf("open store: %w", err)
		}
		store = opened
		st := store.Stats()
		// Stable recovery line: the store smoke harness greps it.
		fmt.Printf("idnserve: store %s: recovered %d verdicts (seq %d, snapshot seq %d)\n",
			*storeDir, st.WarmBootEntries, st.Seq, st.SnapshotSeq)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := serve.NewServer(serve.Config{
		NodeID:         *nodeID,
		MaxRPS:         *maxRPS,
		TopK:           *topK,
		Threshold:      *threshold,
		Workers:        *workers,
		CacheSize:      *cacheSize,
		CacheShards:    *cacheShards,
		MaxInflight:    *maxInflight,
		MaxQueue:       *maxQueue,
		QueueWait:      *queueWait,
		RequestTimeout: *reqTimeout,
		MaxBatch:       *maxBatch,
		DrainTimeout:   *drain,
		Index:          ix,
		Stat:           stat,
		Store:          store,
		SyncInterval:   *syncEvery,
	})

	ready := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() { errc <- srv.Run(ctx, *listen, ready) }()
	select {
	case addr := <-ready:
		// The exact "listening on" line is the smoke harness's readiness
		// signal; keep it stable.
		nBrands := *topK
		if ix != nil {
			nBrands = len(ix.Brands())
		}
		fmt.Printf("idnserve: listening on %s (brands=%d, SIGTERM to drain)\n", addr, nBrands)
		if *join != "" {
			// Peer mode: self-register with the gateway and heartbeat on
			// its advertised cadence. The advertise address defaults to
			// the actually bound listener (resolves :0 correctly).
			adv := *advertise
			if adv == "" {
				adv = addr.String()
			}
			id := *nodeID
			if id == "" {
				id = adv // a worker's reachable address is a fine identity
			}
			p := serve.NewPeer(*join, id, adv)
			srv.AttachPeer(p)
			go p.Run(ctx)
			if store != nil {
				// Replication + anti-entropy only make sense with peers to
				// talk to; a standalone durable node is just warm-boot.
				go srv.RunStoreSync(ctx)
			}
			fmt.Printf("idnserve: joining cluster at %s as %s (%s)\n", *join, id, adv)
		}
	case err := <-errc:
		return err
	}
	err := <-errc
	if cerr := srv.CloseStore(); cerr != nil && err == nil {
		err = fmt.Errorf("close store: %w", cerr)
	}
	if err == nil {
		fmt.Println("idnserve: drained cleanly")
	}
	return err
}
