// Command idndns serves the synthetic universe as a real authoritative
// DNS server over UDP: resolvable domains answer their ground-truth A
// records, misconfigured ones answer REFUSED, unregistered names answer
// NXDOMAIN — a live target for testing resolvers and crawlers against
// the study's population.
//
// Usage:
//
//	idndns -listen 127.0.0.1:5353 -scale 500 &
//	dig @127.0.0.1 -p 5353 xn--0wwy37b.com A
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"idnlab/internal/zonegen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "idndns:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen = flag.String("listen", "127.0.0.1:5353", "UDP listen address")
		seed   = flag.Uint64("seed", 1, "generation seed")
		scale  = flag.Int("scale", zonegen.DefaultScale, "down-scaling divisor")
	)
	flag.Parse()

	reg := zonegen.Generate(zonegen.Config{Seed: *seed, Scale: *scale})
	server := reg.BuildDNS()
	conn, err := net.ListenPacket("udp", *listen)
	if err != nil {
		return err
	}
	defer conn.Close()
	// Signal-driven shutdown: closing the conn makes ServeUDP return
	// nil, so ctrl-c / SIGTERM exit cleanly instead of killing the
	// process mid-answer.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		conn.Close()
	}()
	fmt.Printf("serving %d names on %s (ctrl-c to stop)\n", server.Len(), conn.LocalAddr())
	err = server.ServeUDP(conn)
	if err == nil && ctx.Err() != nil {
		fmt.Println("idndns: shut down cleanly")
	}
	return err
}
