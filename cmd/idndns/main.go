// Command idndns serves the synthetic universe as a real authoritative
// DNS server over UDP: resolvable domains answer their ground-truth A
// records, misconfigured ones answer REFUSED, unregistered names answer
// NXDOMAIN — a live target for testing resolvers and crawlers against
// the study's population.
//
// Usage:
//
//	idndns -listen 127.0.0.1:5353 -scale 500 &
//	dig @127.0.0.1 -p 5353 xn--0wwy37b.com A
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"idnlab/internal/zonegen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "idndns:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen = flag.String("listen", "127.0.0.1:5353", "UDP listen address")
		seed   = flag.Uint64("seed", 1, "generation seed")
		scale  = flag.Int("scale", zonegen.DefaultScale, "down-scaling divisor")
	)
	flag.Parse()

	reg := zonegen.Generate(zonegen.Config{Seed: *seed, Scale: *scale})
	server := reg.BuildDNS()
	conn, err := net.ListenPacket("udp", *listen)
	if err != nil {
		return err
	}
	defer conn.Close()
	fmt.Printf("serving %d names on %s (ctrl-c to stop)\n", server.Len(), conn.LocalAddr())
	return server.ServeUDP(conn)
}
