// Command idnload replays a zipfian label stream against a running
// idnserve instance and reports achieved QPS and latency percentiles —
// the repository's end-to-end serving benchmark. Real DNS query streams
// are heavily skewed (a small head of hot names dominates), so the
// zipfian replay exercises exactly what the serving layer is built for:
// warm-cache hits on the head, detector work and admission pressure on
// the tail.
//
// The replay corpus is the synthetic universe's IDN population (the same
// corpus the batch scanners study) plus a slice of non-IDN controls, so
// the request mix covers homographs, semantic IDNs and clean names.
//
//	idnload -addr 127.0.0.1:8181 -duration 10s -concurrency 64
//	idnload -addr 127.0.0.1:8181 -smoke   # deterministic correctness set
//
// -smoke fires a fixed mixed single/batch/bad-input request set,
// asserting status codes and verdict fields; it exits non-zero on any
// deviation. The serve-smoke make target wraps it with server boot and
// SIGTERM drain.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"idnlab/internal/core"
	"idnlab/internal/simrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "idnload:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", "127.0.0.1:8181", "idnserve address")
		duration    = flag.Duration("duration", 10*time.Second, "load duration")
		concurrency = flag.Int("concurrency", 32, "concurrent request workers")
		batchFrac   = flag.Float64("batch-frac", 0.0, "fraction of requests sent as batches")
		batchSize   = flag.Int("batch-size", 32, "labels per batch request")
		zipfExp     = flag.Float64("zipf", 1.1, "zipf exponent of the label stream")
		seed        = flag.Uint64("seed", 1, "corpus and stream seed")
		scale       = flag.Int("scale", 2000, "universe down-scaling divisor for the replay corpus")
		timeout     = flag.Duration("timeout", 2*time.Second, "per-request client timeout")
		smoke       = flag.Bool("smoke", false, "run the deterministic smoke request set and exit")
		maxBatch    = flag.Int("max-batch", 256, "server's configured batch cap (smoke oversize probe)")
	)
	flag.Parse()

	base := "http://" + *addr
	if *smoke {
		return runSmoke(base, *maxBatch)
	}
	return runLoad(base, loadConfig{
		duration:    *duration,
		concurrency: *concurrency,
		batchFrac:   *batchFrac,
		batchSize:   *batchSize,
		zipfExp:     *zipfExp,
		seed:        *seed,
		scale:       *scale,
		timeout:     *timeout,
	})
}

type loadConfig struct {
	duration    time.Duration
	concurrency int
	batchFrac   float64
	batchSize   int
	zipfExp     float64
	seed        uint64
	scale       int
	timeout     time.Duration
}

// corpus builds the replay population: every IDN in the synthetic
// universe plus non-IDN controls, shuffled so zipf rank does not
// correlate with generation order.
func corpus(seed uint64, scale int) ([]string, error) {
	ds, err := core.NewDefaultDataset(seed, scale)
	if err != nil {
		return nil, err
	}
	labels := make([]string, 0, len(ds.IDNs)+len(ds.NonIDNs)/4)
	labels = append(labels, ds.IDNs...)
	for i, d := range ds.NonIDNs {
		if i%4 == 0 { // a quarter of the controls is plenty
			labels = append(labels, d)
		}
	}
	src := simrand.New(seed ^ 0x1d71_0ad5) // corpus-shuffle salt
	for i := len(labels) - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		labels[i], labels[j] = labels[j], labels[i]
	}
	return labels, nil
}

// workerStats are per-goroutine to keep the hot loop contention-free.
type workerStats struct {
	latencies []time.Duration
	s2xx      uint64
	s429      uint64
	s4xx      uint64
	s5xx      uint64
	dropped   uint64 // transport errors: responses we never got
	labels    uint64
}

func runLoad(base string, cfg loadConfig) error {
	fmt.Fprintf(os.Stderr, "idnload: building replay corpus (scale=%d)...\n", cfg.scale)
	labels, err := corpus(cfg.seed, cfg.scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "idnload: %d labels, zipf=%.2f, %d workers, %s\n",
		len(labels), cfg.zipfExp, cfg.concurrency, cfg.duration)

	client := &http.Client{
		Timeout: cfg.timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.concurrency * 2,
			MaxIdleConnsPerHost: cfg.concurrency * 2,
		},
	}
	var (
		wg      sync.WaitGroup
		stop    atomic.Bool
		perWork = make([]workerStats, cfg.concurrency)
	)
	start := time.Now()
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			st := &perWork[id]
			src := simrand.New(cfg.seed + uint64(id)*7919 + 1)
			zipf := simrand.NewZipf(src, len(labels), cfg.zipfExp)
			st.latencies = make([]time.Duration, 0, 1<<14)
			for !stop.Load() {
				if cfg.batchFrac > 0 && src.Float64() < cfg.batchFrac {
					doBatch(client, base, labels, zipf, cfg.batchSize, st)
				} else {
					doSingle(client, base, labels[zipf.Next()], st)
				}
			}
		}(w)
	}
	time.Sleep(cfg.duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	// Merge and report.
	var all []time.Duration
	var tot workerStats
	for i := range perWork {
		st := &perWork[i]
		all = append(all, st.latencies...)
		tot.s2xx += st.s2xx
		tot.s429 += st.s429
		tot.s4xx += st.s4xx
		tot.s5xx += st.s5xx
		tot.dropped += st.dropped
		tot.labels += st.labels
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	requests := len(all)
	fmt.Printf("idnload: %d requests in %s (%.0f req/s), %d labels classified (%.0f labels/s)\n",
		requests, elapsed.Round(time.Millisecond),
		float64(requests)/elapsed.Seconds(), tot.labels, float64(tot.labels)/elapsed.Seconds())
	fmt.Printf("status: 2xx=%d 429=%d 4xx=%d 5xx=%d dropped=%d\n",
		tot.s2xx, tot.s429, tot.s4xx, tot.s5xx, tot.dropped)
	if requests > 0 {
		fmt.Printf("latency: p50=%s p90=%s p99=%s max=%s\n",
			quantile(all, 0.50), quantile(all, 0.90), quantile(all, 0.99), all[requests-1])
	}
	if tot.dropped > 0 || tot.s5xx > 0 {
		return fmt.Errorf("%d dropped, %d server errors", tot.dropped, tot.s5xx)
	}
	return nil
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func record(st *workerStats, code int, lat time.Duration, labels uint64) {
	st.latencies = append(st.latencies, lat)
	switch {
	case code == 429:
		st.s429++
	case code >= 500:
		st.s5xx++
	case code >= 400:
		st.s4xx++
	default:
		st.s2xx++
		st.labels += labels
	}
}

func doSingle(client *http.Client, base, domain string, st *workerStats) {
	body, _ := json.Marshal(map[string]string{"domain": domain})
	t0 := time.Now()
	resp, err := client.Post(base+"/v1/detect", "application/json", bytes.NewReader(body))
	if err != nil {
		st.dropped++
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	record(st, resp.StatusCode, time.Since(t0), 1)
}

func doBatch(client *http.Client, base string, labels []string, zipf *simrand.Zipf, n int, st *workerStats) {
	domains := make([]string, n)
	for i := range domains {
		domains[i] = labels[zipf.Next()]
	}
	body, _ := json.Marshal(map[string][]string{"domains": domains})
	t0 := time.Now()
	resp, err := client.Post(base+"/v1/detect/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		st.dropped++
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	record(st, resp.StatusCode, time.Since(t0), uint64(n))
}

// --- smoke mode -------------------------------------------------------

// smokeErr accumulates failures so one run reports every deviation.
type smokeErr struct{ fails []string }

func (e *smokeErr) failf(format string, args ...any) {
	e.fails = append(e.fails, fmt.Sprintf(format, args...))
}

func runSmoke(base string, maxBatch int) error {
	client := &http.Client{Timeout: 5 * time.Second}
	var e smokeErr

	// 1. Liveness.
	if code, body := get(client, base+"/healthz", &e); code != 200 || !strings.Contains(body, "ok") {
		e.failf("healthz: got %d %q, want 200 ok", code, body)
	}

	// 2. Known homograph (аpple.com) must be flagged.
	code, body := post(client, base+"/v1/detect", `{"domain":"xn--pple-43d.com"}`, &e)
	if code != 200 || !strings.Contains(body, `"flagged":true`) || !strings.Contains(body, `"homograph"`) {
		e.failf("detect homograph: got %d %q", code, body)
	}

	// 3. Same label again: must be served from cache.
	if code, body := post(client, base+"/v1/detect", `{"domain":"xn--pple-43d.com"}`, &e); code != 200 || !strings.Contains(body, `"cached":true`) {
		e.failf("detect cached: got %d %q", code, body)
	}

	// 4. Type-1 semantic IDN (apple + 邮箱) must be flagged, and the
	// Unicode spelling must normalize to the same cache entry shape.
	if code, body := post(client, base+"/v1/detect", `{"domain":"apple邮箱.com"}`, &e); code != 200 || !strings.Contains(body, `"semantic"`) {
		e.failf("detect semantic: got %d %q", code, body)
	}

	// 5. Clean ASCII name: 200, not flagged.
	if code, body := post(client, base+"/v1/detect", `{"domain":"example.com"}`, &e); code != 200 || !strings.Contains(body, `"flagged":false`) {
		e.failf("detect clean: got %d %q", code, body)
	}

	// 6. Batch with a mix of valid and invalid entries: 200, aligned
	// results, per-item error for the invalid one.
	if code, body := post(client, base+"/v1/detect/batch",
		`{"domains":["xn--pple-43d.com","example.com","bad..domain"]}`, &e); code != 200 ||
		!strings.Contains(body, `"count":3`) || !strings.Contains(body, `"error"`) {
		e.failf("batch mixed: got %d %q", code, body)
	}

	// 7. Malformed bodies: 400.
	for _, bad := range []string{`{`, `{"domain":""}`, `{"nope":"x"}`, `[]`, ``} {
		if code, _ := post(client, base+"/v1/detect", bad, &e); code != 400 {
			e.failf("malformed %q: got %d, want 400", bad, code)
		}
	}

	// 8. Invalid domain: 400.
	if code, _ := post(client, base+"/v1/detect", `{"domain":"exa mple.com"}`, &e); code != 400 {
		e.failf("invalid domain: got %d, want 400", code)
	}

	// 9. Oversized batch: 413.
	over := make([]string, maxBatch+1)
	for i := range over {
		over[i] = "example.com"
	}
	overBody, _ := json.Marshal(map[string][]string{"domains": over})
	if code, _ := post(client, base+"/v1/detect/batch", string(overBody), &e); code != 413 {
		e.failf("oversized batch: got %d, want 413", code)
	}

	// 10. Metrics must reflect the traffic above.
	if code, body := get(client, base+"/metrics", &e); code != 200 ||
		!strings.Contains(body, `"hits"`) || !strings.Contains(body, `"latency"`) {
		e.failf("metrics: got %d %q", code, body)
	}

	if len(e.fails) > 0 {
		return fmt.Errorf("smoke failed:\n  %s", strings.Join(e.fails, "\n  "))
	}
	fmt.Println("idnload: smoke ok")
	return nil
}

func post(client *http.Client, url, body string, e *smokeErr) (int, string) {
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		e.failf("POST %s: %v", url, err)
		return 0, ""
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func get(client *http.Client, url string, e *smokeErr) (int, string) {
	resp, err := client.Get(url)
	if err != nil {
		e.failf("GET %s: %v", url, err)
		return 0, ""
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}
