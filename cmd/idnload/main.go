// Command idnload replays a zipfian label stream against a running
// idnserve instance and reports achieved QPS and latency percentiles —
// the repository's end-to-end serving benchmark. Real DNS query streams
// are heavily skewed (a small head of hot names dominates), so the
// zipfian replay exercises exactly what the serving layer is built for:
// warm-cache hits on the head, detector work and admission pressure on
// the tail.
//
// The replay corpus is the synthetic universe's IDN population (the same
// corpus the batch scanners study) plus a slice of non-IDN controls, so
// the request mix covers homographs, semantic IDNs and clean names.
//
//	idnload -addr 127.0.0.1:8181 -duration 10s -concurrency 64
//	idnload -targets 127.0.0.1:8181,127.0.0.1:8182 -duration 10s
//	idnload -addr 127.0.0.1:8180 -smoke   # deterministic correctness set
//
// -targets accepts a comma-separated list of addresses, spread
// round-robin per worker — it can drive a single idnserve, the
// idngateway, or a set of workers directly (bypassing the gateway, for
// measuring the routing tier's overhead).
//
// Back-pressure: a 429 reply's Retry-After is honored — the worker
// sleeps min(Retry-After, -backoff-cap) before its next request instead
// of immediately re-firing into a saturated server. Sheds (429) are
// reported separately from errors: shedding is the server working as
// designed, errors are not.
//
// -mix weights the malicious (attack) populations into the replay
// stream: with -mix 0.3, ~30% of requests draw uniformly from the
// labeled attack domains (homograph/semantic splices) instead of the
// zipfian corpus — the adversarial load shape that exercises the
// statistical prefilter and the SSIM rescore path instead of the cache.
// After the run the tool scrapes /metrics from every target and reports
// the cache hit rate and the prefilter shed rate on separate lines: a
// cache hit skips all detector work, a prefilter shed only the rescore.
//
// -singles-concurrency N replaces the mixed single/batch worker pool
// with N singles-only workers — the load shape the gateway's request
// coalescer is built for. After a run the tool scrapes every target's
// /metrics and, when the target is a gateway with coalescing enabled,
// reports the upstream-batch amplification (client singles per upstream
// call) so the coalescing win is visible from the load tool.
//
// -smoke fires a fixed mixed single/batch/bad-input request set,
// asserting status codes and verdict fields; it exits non-zero on any
// deviation. The serve-smoke and cluster-smoke make targets wrap it
// with server boot and SIGTERM drain.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"idnlab/internal/api"
	"idnlab/internal/core"
	"idnlab/internal/idna"
	"idnlab/internal/simrand"
	"idnlab/internal/zonegen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "idnload:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", "127.0.0.1:8181", "idnserve/idngateway address")
		targets     = flag.String("targets", "", "comma-separated addresses to spread load across (overrides -addr)")
		duration    = flag.Duration("duration", 10*time.Second, "load duration")
		concurrency = flag.Int("concurrency", 32, "concurrent request workers")
		singlesConc = flag.Int("singles-concurrency", 0, "replace the mixed pool with N singles-only workers (0 = mixed pool)")
		batchFrac   = flag.Float64("batch-frac", 0.0, "fraction of requests sent as batches")
		batchSize   = flag.Int("batch-size", 32, "labels per batch request")
		zipfExp     = flag.Float64("zipf", 1.1, "zipf exponent of the label stream")
		seed        = flag.Uint64("seed", 1, "corpus and stream seed")
		scale       = flag.Int("scale", 2000, "universe down-scaling divisor for the replay corpus")
		timeout     = flag.Duration("timeout", 2*time.Second, "per-request client timeout")
		backoffCap  = flag.Duration("backoff-cap", 2*time.Second, "cap on honored Retry-After sleeps (0 = ignore Retry-After)")
		mix         = flag.Float64("mix", 0, "fraction of requests drawn from the malicious attack populations (0 = natural corpus mix)")
		smoke       = flag.Bool("smoke", false, "run the deterministic smoke request set and exit")
		maxBatch    = flag.Int("max-batch", 256, "server's configured batch cap (smoke oversize probe)")
	)
	flag.Parse()

	bases, err := parseTargets(*targets, *addr)
	if err != nil {
		return err
	}
	if *smoke {
		return runSmoke(bases[0], *maxBatch)
	}
	return runLoad(bases, loadConfig{
		duration:    *duration,
		concurrency: *concurrency,
		singlesConc: *singlesConc,
		batchFrac:   *batchFrac,
		batchSize:   *batchSize,
		zipfExp:     *zipfExp,
		seed:        *seed,
		scale:       *scale,
		timeout:     *timeout,
		backoffCap:  *backoffCap,
		mix:         *mix,
	})
}

// parseTargets resolves the -targets/-addr pair into base URLs.
func parseTargets(targets, addr string) ([]string, error) {
	raw := []string{addr}
	if targets != "" {
		raw = strings.Split(targets, ",")
	}
	bases := make([]string, 0, len(raw))
	for _, t := range raw {
		t = strings.TrimSpace(t)
		if t == "" {
			continue
		}
		if !strings.Contains(t, "://") {
			t = "http://" + t
		}
		bases = append(bases, strings.TrimRight(t, "/"))
	}
	if len(bases) == 0 {
		return nil, fmt.Errorf("no targets")
	}
	return bases, nil
}

type loadConfig struct {
	duration    time.Duration
	concurrency int
	singlesConc int
	batchFrac   float64
	batchSize   int
	zipfExp     float64
	seed        uint64
	scale       int
	timeout     time.Duration
	backoffCap  time.Duration
	mix         float64
}

// corpus builds the replay population: every IDN in the synthetic
// universe plus non-IDN controls, shuffled so zipf rank does not
// correlate with generation order.
func corpus(seed uint64, scale int) ([]string, error) {
	ds, err := core.NewDefaultDataset(seed, scale)
	if err != nil {
		return nil, err
	}
	labels := make([]string, 0, len(ds.IDNs)+len(ds.NonIDNs)/4)
	labels = append(labels, ds.IDNs...)
	for i, d := range ds.NonIDNs {
		if i%4 == 0 { // a quarter of the controls is plenty
			labels = append(labels, d)
		}
	}
	src := simrand.New(seed ^ 0x1d71_0ad5) // corpus-shuffle salt
	for i := len(labels) - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		labels[i], labels[j] = labels[j], labels[i]
	}
	return labels, nil
}

// maliciousCorpus builds the -mix replay slice: every labeled
// attack-population domain (homograph and semantic splices) in its
// request wire form. Protective registrations are excluded — they score
// like attacks but model defenders, not load.
func maliciousCorpus(seed uint64, scale int) []string {
	reg := zonegen.Generate(zonegen.Config{Seed: seed, Scale: scale})
	var out []string
	for _, l := range reg.Labels() {
		if l.Positive && l.Population != "protective" {
			out = append(out, idna.SLDLabel(l.ACE)+"."+l.TLD)
		}
	}
	return out
}

// workerStats are per-goroutine to keep the hot loop contention-free.
type workerStats struct {
	latencies []time.Duration
	s2xx      uint64
	s429      uint64
	s4xx      uint64
	s5xx      uint64
	dropped   uint64 // transport errors: responses we never got
	labels    uint64
}

func runLoad(bases []string, cfg loadConfig) error {
	fmt.Fprintf(os.Stderr, "idnload: building replay corpus (scale=%d)...\n", cfg.scale)
	labels, err := corpus(cfg.seed, cfg.scale)
	if err != nil {
		return err
	}
	var malicious []string
	if cfg.mix > 0 {
		if cfg.mix > 1 {
			return fmt.Errorf("-mix %.2f out of range (want 0..1)", cfg.mix)
		}
		malicious = maliciousCorpus(cfg.seed, cfg.scale)
		if len(malicious) == 0 {
			return fmt.Errorf("-mix %.2f: no attack-population domains at scale %d (lower -scale)", cfg.mix, cfg.scale)
		}
		fmt.Fprintf(os.Stderr, "idnload: mix=%.2f, %d attack-population domains in the stream\n",
			cfg.mix, len(malicious))
	}
	// -singles-concurrency replaces the mixed pool with a singles-only
	// pool: the coalescing-friendly load shape (every request is a
	// /v1/detect, batch-frac is ignored).
	workers := cfg.concurrency
	singlesOnly := cfg.singlesConc > 0
	if singlesOnly {
		workers = cfg.singlesConc
		fmt.Fprintf(os.Stderr, "idnload: singles-only pool (%d workers, batch-frac ignored)\n", workers)
	}
	fmt.Fprintf(os.Stderr, "idnload: %d labels, zipf=%.2f, %d workers, %d targets, %s\n",
		len(labels), cfg.zipfExp, workers, len(bases), cfg.duration)

	client := &http.Client{
		Timeout: cfg.timeout,
		Transport: &http.Transport{
			MaxIdleConns:        workers * 2,
			MaxIdleConnsPerHost: workers * 2,
		},
	}
	var (
		wg      sync.WaitGroup
		stop    atomic.Bool
		perWork = make([]workerStats, workers)
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			st := &perWork[id]
			src := simrand.New(cfg.seed + uint64(id)*7919 + 1)
			zipf := simrand.NewZipf(src, len(labels), cfg.zipfExp)
			// pick draws the next request label: zipfian over the corpus,
			// with a -mix coin flip diverting to a uniform draw from the
			// attack populations (adversarial traffic has no hot head).
			pick := func() string {
				if cfg.mix > 0 && src.Float64() < cfg.mix {
					return malicious[src.Intn(len(malicious))]
				}
				return labels[zipf.Next()]
			}
			st.latencies = make([]time.Duration, 0, 1<<14)
			var buf []byte // request-body encode buffer, reused across requests
			for n := id; !stop.Load(); n++ {
				base := bases[n%len(bases)] // per-worker round-robin over targets
				var code int
				var retryAfter time.Duration
				if !singlesOnly && cfg.batchFrac > 0 && src.Float64() < cfg.batchFrac {
					code, retryAfter = doBatch(client, base, pick, cfg.batchSize, &buf, st)
				} else {
					code, retryAfter = doSingle(client, base, pick(), &buf, st)
				}
				// Honor 429 back-pressure: sleep min(Retry-After, cap)
				// instead of re-firing into a saturated server.
				if code == 429 && cfg.backoffCap > 0 {
					if retryAfter <= 0 || retryAfter > cfg.backoffCap {
						retryAfter = cfg.backoffCap
					}
					sleepUnless(&stop, retryAfter)
				}
			}
		}(w)
	}
	time.Sleep(cfg.duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	// Merge and report.
	var all []time.Duration
	var tot workerStats
	for i := range perWork {
		st := &perWork[i]
		all = append(all, st.latencies...)
		tot.s2xx += st.s2xx
		tot.s429 += st.s429
		tot.s4xx += st.s4xx
		tot.s5xx += st.s5xx
		tot.dropped += st.dropped
		tot.labels += st.labels
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	requests := len(all) + int(tot.dropped)
	fmt.Printf("idnload: %d requests in %s (%.0f req/s), %d labels classified (%.0f labels/s)\n",
		requests, elapsed.Round(time.Millisecond),
		float64(requests)/elapsed.Seconds(), tot.labels, float64(tot.labels)/elapsed.Seconds())
	fmt.Printf("status: 2xx=%d 429=%d 4xx=%d 5xx=%d dropped=%d\n",
		tot.s2xx, tot.s429, tot.s4xx, tot.s5xx, tot.dropped)
	// Successful throughput on its own line: the cluster benchmark
	// parses "ok: N req/s"; only 2xx replies count toward capacity.
	fmt.Printf("ok: %.0f req/s (2xx)\n", float64(tot.s2xx)/elapsed.Seconds())
	// Sheds are the server's admission control working as designed;
	// errors are not. Report the two rates separately.
	errors := tot.s4xx + tot.s5xx + tot.dropped
	if requests > 0 {
		fmt.Printf("shed-rate: %.2f%% (429)  error-rate: %.2f%% (4xx+5xx+dropped)\n",
			100*float64(tot.s429)/float64(requests), 100*float64(errors)/float64(requests))
	}
	if len(all) > 0 {
		fmt.Printf("latency: p50=%s p90=%s p99=%s max=%s\n",
			quantile(all, 0.50), quantile(all, 0.90), quantile(all, 0.99), all[len(all)-1])
	}
	reportServerSplit(client, bases)
	reportCoalesce(client, bases)
	reportStore(client, bases)
	if tot.dropped > 0 || tot.s5xx > 0 {
		return fmt.Errorf("%d dropped, %d server errors", tot.dropped, tot.s5xx)
	}
	return nil
}

// reportServerSplit scrapes /metrics from every target after the run
// and reports where verdicts were actually decided, on two separate
// lines: the cache hit rate (a hit skips all detector work) and the
// statistical prefilter's shed rate (a shed skips only the SSIM
// rescore — the detector still issued a verdict). Conflating the two
// makes a stat-enabled node look like it has a worse cache; keeping
// them apart makes the prefilter's capacity contribution measurable.
// Targets without /metrics (or mid-drain) are skipped silently.
func reportServerSplit(client *http.Client, bases []string) {
	var snap struct {
		Cache struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"cache"`
		Detector core.DetectorStats `json:"detector"`
	}
	var hits, misses uint64
	var det core.DetectorStats
	scraped := 0
	for _, base := range bases {
		resp, err := client.Get(base + "/metrics")
		if err != nil {
			continue
		}
		snap.Cache.Hits, snap.Cache.Misses = 0, 0
		snap.Detector = core.DetectorStats{}
		err = json.NewDecoder(resp.Body).Decode(&snap)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil {
			continue
		}
		scraped++
		hits += snap.Cache.Hits
		misses += snap.Cache.Misses
		det.RescoreEarlyExit += snap.Detector.RescoreEarlyExit
		det.PrefilterPass += snap.Detector.PrefilterPass
		det.PrefilterShed += snap.Detector.PrefilterShed
		det.StatLoaded = det.StatLoaded || snap.Detector.StatLoaded
	}
	if scraped == 0 {
		return
	}
	if lookups := hits + misses; lookups > 0 {
		fmt.Printf("cache-hit-rate: %.2f%% (%d of %d lookups)\n",
			100*float64(hits)/float64(lookups), hits, lookups)
	}
	if !det.StatLoaded {
		fmt.Println("prefilter-shed-rate: n/a (no stat model loaded on targets)")
		return
	}
	scored := det.PrefilterPass + det.PrefilterShed
	if scored == 0 {
		fmt.Println("prefilter-shed-rate: n/a (stat model loaded, no non-ASCII labels scored)")
		return
	}
	fmt.Printf("prefilter-shed-rate: %.2f%% (%d shed, %d rescored, %d rescore early exits)\n",
		100*float64(det.PrefilterShed)/float64(scored),
		det.PrefilterShed, det.PrefilterPass, det.RescoreEarlyExit)
}

// reportCoalesce scrapes /metrics from every target and, for targets
// that are gateways with request coalescing active, reports the
// upstream-batch amplification: how many client singles each upstream
// call (one per coalesced window) carried. Workers and coalescing-off
// gateways expose no windows and are skipped silently — the line only
// appears when there is a coalescing win to report.
func reportCoalesce(client *http.Client, bases []string) {
	var snap struct {
		Gateway *struct {
			Single       uint64 `json:"single"`
			Windows      uint64 `json:"coalesce_windows"`
			Batched      uint64 `json:"coalesce_batched"`
			TimerFlushes uint64 `json:"coalesce_flush_timeout"`
		} `json:"gateway"`
	}
	for _, base := range bases {
		resp, err := client.Get(base + "/metrics")
		if err != nil {
			continue
		}
		snap.Gateway = nil
		err = json.NewDecoder(resp.Body).Decode(&snap)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil || snap.Gateway == nil || snap.Gateway.Windows == 0 {
			continue
		}
		g := snap.Gateway
		fmt.Printf("coalesce-amplification: %.2f singles per upstream call (windows=%d, batched=%d, timer-flushes=%d)\n",
			float64(g.Single)/float64(g.Windows), g.Windows, g.Batched, g.TimerFlushes)
	}
}

// reportStore scrapes /metrics from every target after the run and,
// when the durable verdict store is active, reports the restart story:
// cluster-wide store aggregates, the cold-miss rate (read-repair probes
// that found no warm copy on any candidate and fell through to a full
// recompute), and the recovery-window p99 — a restarted worker's
// latency histogram starts from zero at boot, so the p99 scraped from a
// warm-booted node covers exactly its post-restart window. Both the
// gateway shape (per-node snapshots under "nodes") and direct worker
// targets are understood; storeless targets are skipped silently.
func reportStore(client *http.Client, bases []string) {
	type storeBlock struct {
		Loaded          bool   `json:"loaded"`
		WarmBootEntries uint64 `json:"warmBootEntries"`
		RepairHits      uint64 `json:"repairHits"`
		RepairMisses    uint64 `json:"repairMisses"`
		SyncIngested    uint64 `json:"syncIngested"`
		ReplicationIn   uint64 `json:"replicationIn"`
	}
	type nodeSnap struct {
		Store   storeBlock `json:"store"`
		Latency struct {
			Count     uint64  `json:"count"`
			P99Micros float64 `json:"p99Micros"`
		} `json:"latency"`
	}
	var (
		agg          storeBlock
		durableNodes int
		warmNodes    int
		warmP99      float64
	)
	absorb := func(n nodeSnap) {
		if !n.Store.Loaded {
			return
		}
		durableNodes++
		agg.WarmBootEntries += n.Store.WarmBootEntries
		agg.RepairHits += n.Store.RepairHits
		agg.RepairMisses += n.Store.RepairMisses
		agg.SyncIngested += n.Store.SyncIngested
		agg.ReplicationIn += n.Store.ReplicationIn
		if n.Store.WarmBootEntries > 0 && n.Latency.Count > 0 {
			warmNodes++
			if n.Latency.P99Micros > warmP99 {
				warmP99 = n.Latency.P99Micros
			}
		}
	}
	seen := false
	for _, base := range bases {
		resp, err := client.Get(base + "/metrics")
		if err != nil {
			continue
		}
		var snap struct {
			Store   storeBlock          `json:"store"`
			Latency json.RawMessage     `json:"latency"`
			Nodes   map[string]nodeSnap `json:"nodes"`
		}
		err = json.NewDecoder(resp.Body).Decode(&snap)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil {
			continue
		}
		seen = true
		if len(snap.Nodes) > 0 { // gateway: worker snapshots ride along raw
			for _, n := range snap.Nodes {
				absorb(n)
			}
			continue
		}
		var n nodeSnap
		n.Store = snap.Store
		json.Unmarshal(snap.Latency, &n.Latency)
		absorb(n)
	}
	if !seen || durableNodes == 0 {
		return
	}
	fmt.Printf("store: durable-nodes=%d warm-boot=%d repair-hits=%d repair-misses=%d sync-ingested=%d replication-in=%d\n",
		durableNodes, agg.WarmBootEntries, agg.RepairHits, agg.RepairMisses, agg.SyncIngested, agg.ReplicationIn)
	if probes := agg.RepairHits + agg.RepairMisses; probes > 0 {
		fmt.Printf("store-cold-miss-rate: %.2f%% (%d cold recomputes of %d repair probes)\n",
			100*float64(agg.RepairMisses)/float64(probes), agg.RepairMisses, probes)
	} else {
		fmt.Println("store-cold-miss-rate: n/a (no repair probes issued)")
	}
	if warmNodes > 0 {
		fmt.Printf("recovery-window-p99: %.2fms (worst of %d warm-booted nodes)\n", warmP99/1000, warmNodes)
	}
}

// sleepUnless sleeps for d in small slices so a stopped run exits
// promptly even mid-backoff.
func sleepUnless(stop *atomic.Bool, d time.Duration) {
	const slice = 25 * time.Millisecond
	for d > 0 && !stop.Load() {
		s := d
		if s > slice {
			s = slice
		}
		time.Sleep(s)
		d -= s
	}
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func record(st *workerStats, code int, lat time.Duration, labels uint64) {
	st.latencies = append(st.latencies, lat)
	switch {
	case code == 429:
		st.s429++
	case code >= 500:
		st.s5xx++
	case code >= 400:
		st.s4xx++
	default:
		st.s2xx++
		st.labels += labels
	}
}

// doSingle and doBatch encode request bodies with the internal/api
// append codec into a caller-owned reusable buffer: at high worker
// counts the per-request json.Marshal was the load generator's own
// hottest allocation, skewing what it measures.
func doSingle(client *http.Client, base, domain string, buf *[]byte, st *workerStats) (int, time.Duration) {
	*buf = api.AppendDetectRequest((*buf)[:0], &api.DetectRequest{Domain: domain})
	t0 := time.Now()
	resp, err := client.Post(base+"/v1/detect", "application/json", bytes.NewReader(*buf))
	if err != nil {
		st.dropped++
		return 0, 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	record(st, resp.StatusCode, time.Since(t0), 1)
	return resp.StatusCode, retryAfterOf(resp)
}

func doBatch(client *http.Client, base string, pick func() string, n int, buf *[]byte, st *workerStats) (int, time.Duration) {
	domains := make([]string, n)
	for i := range domains {
		domains[i] = pick()
	}
	*buf = api.AppendBatchRequest((*buf)[:0], &api.BatchRequest{Domains: domains})
	t0 := time.Now()
	resp, err := client.Post(base+"/v1/detect/batch", "application/json", bytes.NewReader(*buf))
	if err != nil {
		st.dropped++
		return 0, 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	record(st, resp.StatusCode, time.Since(t0), uint64(n))
	return resp.StatusCode, retryAfterOf(resp)
}

// retryAfterOf parses a delay-seconds Retry-After header (the only form
// idnserve/idngateway emit). Absent or unparseable headers yield 0.
func retryAfterOf(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// --- smoke mode -------------------------------------------------------

// smokeErr accumulates failures so one run reports every deviation.
type smokeErr struct{ fails []string }

func (e *smokeErr) failf(format string, args ...any) {
	e.fails = append(e.fails, fmt.Sprintf(format, args...))
}

func runSmoke(base string, maxBatch int) error {
	client := &http.Client{Timeout: 5 * time.Second}
	var e smokeErr

	// 1. Liveness.
	if code, body := get(client, base+"/healthz", &e); code != 200 || !strings.Contains(body, "ok") {
		e.failf("healthz: got %d %q, want 200 ok", code, body)
	}

	// 2. Known homograph (аpple.com) must be flagged.
	code, body := post(client, base+"/v1/detect", `{"domain":"xn--pple-43d.com"}`, &e)
	if code != 200 || !strings.Contains(body, `"flagged":true`) || !strings.Contains(body, `"homograph"`) {
		e.failf("detect homograph: got %d %q", code, body)
	}

	// 3. Same label again: must be served from cache.
	if code, body := post(client, base+"/v1/detect", `{"domain":"xn--pple-43d.com"}`, &e); code != 200 || !strings.Contains(body, `"cached":true`) {
		e.failf("detect cached: got %d %q", code, body)
	}

	// 4. Type-1 semantic IDN (apple + 邮箱) must be flagged, and the
	// Unicode spelling must normalize to the same cache entry shape.
	if code, body := post(client, base+"/v1/detect", `{"domain":"apple邮箱.com"}`, &e); code != 200 || !strings.Contains(body, `"semantic"`) {
		e.failf("detect semantic: got %d %q", code, body)
	}

	// 5. Clean ASCII name: 200, not flagged.
	if code, body := post(client, base+"/v1/detect", `{"domain":"example.com"}`, &e); code != 200 || !strings.Contains(body, `"flagged":false`) {
		e.failf("detect clean: got %d %q", code, body)
	}

	// 6. Batch with a mix of valid and invalid entries: 200, aligned
	// results, per-item error for the invalid one.
	if code, body := post(client, base+"/v1/detect/batch",
		`{"domains":["xn--pple-43d.com","example.com","bad..domain"]}`, &e); code != 200 ||
		!strings.Contains(body, `"count":3`) || !strings.Contains(body, `"error"`) {
		e.failf("batch mixed: got %d %q", code, body)
	}

	// 7. Malformed bodies: 400.
	for _, bad := range []string{`{`, `{"domain":""}`, `{"nope":"x"}`, `[]`, ``} {
		if code, _ := post(client, base+"/v1/detect", bad, &e); code != 400 {
			e.failf("malformed %q: got %d, want 400", bad, code)
		}
	}

	// 8. Invalid domain: 400.
	if code, _ := post(client, base+"/v1/detect", `{"domain":"exa mple.com"}`, &e); code != 400 {
		e.failf("invalid domain: got %d, want 400", code)
	}

	// 9. Oversized batch: 413.
	over := make([]string, maxBatch+1)
	for i := range over {
		over[i] = "example.com"
	}
	overBody, _ := json.Marshal(map[string][]string{"domains": over})
	if code, _ := post(client, base+"/v1/detect/batch", string(overBody), &e); code != 413 {
		e.failf("oversized batch: got %d, want 413", code)
	}

	// 10. Metrics must reflect the traffic above.
	if code, body := get(client, base+"/metrics", &e); code != 200 ||
		!strings.Contains(body, `"hits"`) || !strings.Contains(body, `"latency"`) {
		e.failf("metrics: got %d %q", code, body)
	}

	if len(e.fails) > 0 {
		return fmt.Errorf("smoke failed:\n  %s", strings.Join(e.fails, "\n  "))
	}
	fmt.Println("idnload: smoke ok")
	return nil
}

func post(client *http.Client, url, body string, e *smokeErr) (int, string) {
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		e.failf("POST %s: %v", url, err)
		return 0, ""
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func get(client *http.Client, url string, e *smokeErr) (int, string) {
	resp, err := client.Get(url)
	if err != nil {
		e.failf("GET %s: %v", url, err)
		return 0, ""
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}
