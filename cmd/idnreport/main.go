// Command idnreport runs the complete measurement study and prints every
// table and figure of the paper: it generates the calibrated universe,
// scans the zones, correlates WHOIS / passive DNS / blacklists /
// certificates / web content, runs both abuse detectors and the browser
// survey, and renders the results.
//
// Usage:
//
//	idnreport -seed 1 -scale 100           # ≈14.7K IDNs, seconds
//	idnreport -scale 10                    # ≈147K IDNs, minutes
//	idnreport -only table13                # a single experiment
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"idnlab/internal/core"
	"idnlab/internal/profiling"
	"idnlab/internal/zonegen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "idnreport:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed     = flag.Uint64("seed", 1, "generation seed")
		scale    = flag.Int("scale", zonegen.DefaultScale, "down-scaling divisor (1 = paper scale)")
		only     = flag.String("only", "", "run a single experiment, e.g. table2, figure7")
		jsonMode = flag.Bool("json", false, "emit machine-readable JSON instead of the text report")
		workers  = flag.Int("workers", 0, "corpus-scan fan-out (0 = GOMAXPROCS, 1 = sequential)")
		metrics  = flag.Bool("metrics", false, "print per-scan pipeline metrics to stderr")
		timings  = flag.Bool("timings", false, "print per-section render timings to stderr")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "idnreport:", perr)
		}
	}()

	// Ctrl-C cancels the report cleanly: the section scheduler and any
	// in-flight corpus scan drain their goroutines before run returns.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Fprintf(os.Stderr, "generating universe (seed %d, scale 1/%d)...\n", *seed, *scale)
	ds, err := core.NewDefaultDataset(*seed, *scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "assembled %d IDNs, %d non-IDNs\n", len(ds.IDNs), len(ds.NonIDNs))
	st := core.NewStudy(ds)
	st.ScanWorkers = *workers
	defer func() {
		if *metrics {
			for _, m := range st.ScanMetrics() {
				fmt.Fprintln(os.Stderr, m)
			}
		}
		if *timings {
			for _, t := range st.SectionTimings() {
				fmt.Fprintf(os.Stderr, "section %-12s %s\n", t.Name, t.Duration)
			}
		}
	}()

	if *jsonMode {
		return st.WriteJSON(os.Stdout)
	}
	if *only == "" {
		return st.RunContext(ctx, os.Stdout)
	}
	sections := map[string]func(io.Writer) error{
		"findings": st.ReportFindings,
		"table1":   st.ReportTable1,
		"table2":   st.ReportTable2,
		"table3":   st.ReportTable3,
		"table4":   st.ReportTable4,
		"table5":   st.ReportTable5,
		"table6":   st.ReportTable6,
		"table7":   st.ReportTable7,
		"table8":   st.ReportTable8,
		"table9":   st.ReportTable9,
		"table10":  st.ReportTable10,
		"table11":  st.ReportTable11,
		"table11b": st.ReportTable11b,
		"table12":  st.ReportTable12,
		"table13":  st.ReportTable13,
		"table14":  st.ReportTable14,
		"figure1":  st.ReportFigure1,
		"figure2":  st.ReportFigure2,
		"figure3":  st.ReportFigure3,
		"figure4":  st.ReportFigure4,
		"figure5":  st.ReportFigure5,
		"figure6":  st.ReportFigure6,
		"figure7":  st.ReportFigure7,
		"figure7b": st.ReportFigure7b,
		"figure8":  st.ReportFigure8,
	}
	section, ok := sections[strings.ToLower(*only)]
	if !ok {
		names := make([]string, 0, len(sections))
		for n := range sections {
			names = append(names, n)
		}
		return fmt.Errorf("unknown experiment %q (available: %s)", *only, strings.Join(names, ", "))
	}
	return section(os.Stdout)
}
