// Command idnzonegen synthesizes the study's data universe and writes the
// TLD zone files to a directory, one master-format file per zone — the
// stand-in for downloading Verisign/PIR snapshots and the 53 iTLD zones
// from ICANN CZDS.
//
// Usage:
//
//	idnzonegen -out ./zones -seed 1 -scale 100
//
// With -deltas N it additionally emits N days of deterministic
// day-over-day zone deltas (adds/drops/NS changes in IXFR-style master
// syntax) as delta-<serial>.zone files — the input stream the idnwatch
// daemon tails.
//
// With -labels FILE it emits the labeled classifier ground truth as a
// deterministic CSV (population, age, positive/negative class, and the
// hashed train/eval split) — the artifact `idnstat train` and the eval
// harness share.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"idnlab/internal/zonegen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "idnzonegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out         = flag.String("out", "zones", "output directory for zone files")
		seed        = flag.Uint64("seed", 1, "generation seed")
		scale       = flag.Int("scale", zonegen.DefaultScale, "down-scaling divisor (1 = paper scale)")
		deltaDays   = flag.Int("deltas", 0, "also emit this many days of zone deltas")
		adds        = flag.Int("delta-adds", 0, "registrations per delta day (0 = derived from corpus size)")
		attackShare = flag.Float64("delta-attack-share", 0, "fraction of delta adds that are homograph attacks (0 = default)")
		skipZones   = flag.Bool("deltas-only", false, "skip the full zone snapshot, emit only deltas")
		labelsPath  = flag.String("labels", "", "also write the labeled train/eval CSV for idnstat to this file")
		labelsOnly  = flag.Bool("labels-only", false, "skip the zone snapshot, emit only the -labels CSV")
	)
	flag.Parse()

	reg := zonegen.Generate(zonegen.Config{Seed: *seed, Scale: *scale})
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	if *labelsOnly && *labelsPath == "" {
		return fmt.Errorf("-labels-only requires -labels FILE")
	}
	if *labelsPath != "" {
		labels := reg.Labels()
		f, err := os.Create(*labelsPath)
		if err != nil {
			return err
		}
		if err := zonegen.WriteLabels(f, labels); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		pos, eval := 0, 0
		for _, l := range labels {
			if l.Positive {
				pos++
			}
			if l.Eval {
				eval++
			}
		}
		fmt.Printf("wrote %d labeled examples (%d positive, %d held out) to %s\n",
			len(labels), pos, eval, *labelsPath)
		if *labelsOnly {
			return nil
		}
	}
	if *deltaDays > 0 {
		gen := reg.DeltaStream(zonegen.DeltaConfig{AddsPerDay: *adds, AttackShare: *attackShare})
		var records int
		for i := 0; i < *deltaDays; i++ {
			d := gen.Next()
			path := filepath.Join(*out, zonegen.DeltaFileName(d.Serial))
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if _, err := d.WriteTo(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			for _, z := range d.Zones {
				records += len(z.Records)
			}
		}
		fmt.Printf("wrote %d delta files (%d operations, %d live domains) to %s\n",
			*deltaDays, records, gen.Live(), *out)
	}
	if *skipZones {
		return nil
	}
	zones := reg.BuildZones()
	var files, records int
	for origin, zone := range zones {
		path := filepath.Join(*out, origin+".zone")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := zone.Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		files++
		records += len(zone.Records)
	}
	fmt.Printf("wrote %d zone files (%d records, %d domains) to %s\n",
		files, records, len(reg.Domains), *out)
	return nil
}
