// Command idnzonegen synthesizes the study's data universe and writes the
// TLD zone files to a directory, one master-format file per zone — the
// stand-in for downloading Verisign/PIR snapshots and the 53 iTLD zones
// from ICANN CZDS.
//
// Usage:
//
//	idnzonegen -out ./zones -seed 1 -scale 100
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"idnlab/internal/zonegen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "idnzonegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out   = flag.String("out", "zones", "output directory for zone files")
		seed  = flag.Uint64("seed", 1, "generation seed")
		scale = flag.Int("scale", zonegen.DefaultScale, "down-scaling divisor (1 = paper scale)")
	)
	flag.Parse()

	reg := zonegen.Generate(zonegen.Config{Seed: *seed, Scale: *scale})
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	zones := reg.BuildZones()
	var files, records int
	for origin, zone := range zones {
		path := filepath.Join(*out, origin+".zone")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := zone.Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		files++
		records += len(zone.Records)
	}
	fmt.Printf("wrote %d zone files (%d records, %d domains) to %s\n",
		files, records, len(reg.Domains), *out)
	return nil
}
