// Command idnweb serves the synthetic universe's web content over real
// HTTP, routed by Host header — the live counterpart of the crawler's
// target population. Combine with idndns for a full resolve-then-fetch
// pipeline:
//
//	idnweb -listen 127.0.0.1:8080 -scale 500 &
//	curl -H 'Host: xn--0wwy37b.com' http://127.0.0.1:8080/
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"idnlab/internal/core"
	"idnlab/internal/zonegen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "idnweb:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen = flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
		seed   = flag.Uint64("seed", 1, "generation seed")
		scale  = flag.Int("scale", zonegen.DefaultScale, "down-scaling divisor")
	)
	flag.Parse()

	ds, err := core.NewDefaultDataset(*seed, *scale)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Addr:              *listen,
		Handler:           core.WebHandler(ds),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("serving %d domains on http://%s/ (route by Host header; ctrl-c to stop)\n",
		len(ds.IDNs)+len(ds.NonIDNs), *listen)
	return srv.ListenAndServe()
}
