// Command idnweb serves the synthetic universe's web content over real
// HTTP, routed by Host header — the live counterpart of the crawler's
// target population. Combine with idndns for a full resolve-then-fetch
// pipeline:
//
//	idnweb -listen 127.0.0.1:8080 -scale 500 &
//	curl -H 'Host: xn--0wwy37b.com' http://127.0.0.1:8080/
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"idnlab/internal/core"
	"idnlab/internal/zonegen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "idnweb:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen = flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
		seed   = flag.Uint64("seed", 1, "generation seed")
		scale  = flag.Int("scale", zonegen.DefaultScale, "down-scaling divisor")
	)
	flag.Parse()

	ds, err := core.NewDefaultDataset(*seed, *scale)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{
		Addr:              *listen,
		Handler:           core.WebHandler(ds),
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      15 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	fmt.Printf("serving %d domains on http://%s/ (route by Host header; ctrl-c to stop)\n",
		len(ds.IDNs)+len(ds.NonIDNs), *listen)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Signal-driven graceful drain: stop accepting, let in-flight
	// responses finish, then exit cleanly instead of dropping them.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("idnweb: drained cleanly")
	return nil
}
