// Command idnstat trains, evaluates and inspects the statistical
// malicious-IDN classifier (internal/feat) — the third detector of the
// serving ensemble and the learned prefilter in front of the SSIM path.
//
// Subcommands:
//
//	idnstat train -labels labels.csv -out model.idnstat [-seed N]
//	idnstat train -seed 2018 -scale 100 -out model.idnstat   # corpus in-process
//	idnstat eval  -model model.idnstat -labels labels.csv [-min-recall 0.95] [-max-pass 0.25]
//	idnstat inspect -model model.idnstat
//
// train fits the logistic layer plus the bigram/TLD tables on the
// non-held-out split of the labeled CSV (written by `idnzonegen
// -labels`) and writes a checksummed IDNSTAT1 blob. Identical inputs
// produce bit-identical models.
//
// eval scores the held-out split under serving conditions and reports
// precision/recall/AUC, the prefilter pass rate and per-population
// recall as JSON; -min-recall/-max-pass turn the report into a gate
// (exit 1 on violation) for CI.
//
// inspect prints the model card: header fields, thresholds, weights and
// the largest-magnitude bigrams.
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"idnlab/internal/feat"
	"idnlab/internal/zonegen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "idnstat:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: idnstat <train|eval|inspect> [flags]")
	}
	switch args[0] {
	case "train":
		return runTrain(args[1:])
	case "eval":
		return runEval(args[1:])
	case "inspect":
		return runInspect(args[1:])
	}
	return fmt.Errorf("unknown subcommand %q (want train, eval or inspect)", args[0])
}

// loadExamples reads a labels CSV (idnzonegen -labels) into training
// examples, or falls back to generating the corpus in-process.
func loadExamples(labelsPath string, seed uint64, scale int) ([]feat.Example, error) {
	if labelsPath == "" {
		reg := zonegen.Generate(zonegen.Config{Seed: seed, Scale: scale})
		return feat.FromLabeled(reg.Labels()), nil
	}
	f, err := os.Open(labelsPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	labels, err := zonegen.ReadLabels(f)
	if err != nil {
		return nil, err
	}
	return feat.FromLabeled(labels), nil
}

func runTrain(args []string) error {
	fs := flag.NewFlagSet("idnstat train", flag.ExitOnError)
	var (
		labels = fs.String("labels", "", "labeled CSV from idnzonegen -labels (default: generate corpus in-process)")
		out    = fs.String("out", "model.idnstat", "output model path")
		seed   = fs.Uint64("seed", 2018, "training seed (and corpus seed without -labels)")
		scale  = fs.Int("scale", 100, "corpus down-scaling divisor (without -labels)")
		epochs = fs.Int("epochs", 0, "SGD epochs (0 = default)")
	)
	fs.Parse(args)
	exs, err := loadExamples(*labels, *seed, *scale)
	if err != nil {
		return err
	}
	m, rep, err := feat.Train(exs, feat.TrainConfig{Seed: *seed, Epochs: *epochs})
	if err != nil {
		return err
	}
	if err := m.WriteFile(*out); err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes, %d bigrams)\n", *out, len(m.Bytes()), m.BigramCount())
	return nil
}

func runEval(args []string) error {
	fs := flag.NewFlagSet("idnstat eval", flag.ExitOnError)
	var (
		model     = fs.String("model", "model.idnstat", "trained model path")
		labels    = fs.String("labels", "", "labeled CSV (default: regenerate corpus from -seed/-scale)")
		seed      = fs.Uint64("seed", 2018, "corpus seed (without -labels)")
		scale     = fs.Int("scale", 100, "corpus scale (without -labels)")
		all       = fs.Bool("all", false, "evaluate on every example instead of the held-out split")
		minRecall = fs.Float64("min-recall", 0, "fail unless held-out prefilter recall is at least this")
		maxPass   = fs.Float64("max-pass", 0, "fail if the prefilter pass rate exceeds this")
	)
	fs.Parse(args)
	m, err := feat.LoadFile(*model)
	if err != nil {
		return err
	}
	exs, err := loadExamples(*labels, *seed, *scale)
	if err != nil {
		return err
	}
	if !*all {
		_, exs = feat.Split(exs)
	}
	rep := feat.Evaluate(m, exs)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if *minRecall > 0 && rep.PrefilterRecall < *minRecall {
		return fmt.Errorf("gate: prefilter recall %.4f below required %.4f", rep.PrefilterRecall, *minRecall)
	}
	if *maxPass > 0 && rep.PassRate > *maxPass {
		return fmt.Errorf("gate: prefilter pass rate %.4f above allowed %.4f", rep.PassRate, *maxPass)
	}
	return nil
}

func runInspect(args []string) error {
	fs := flag.NewFlagSet("idnstat inspect", flag.ExitOnError)
	var (
		model = fs.String("model", "model.idnstat", "trained model path")
		topN  = fs.Int("bigrams", 10, "largest-magnitude bigrams to print")
	)
	fs.Parse(args)
	m, err := feat.LoadFile(*model)
	if err != nil {
		return err
	}
	fmt.Printf("format:     IDNSTAT1 (%d bytes)\n", len(m.Bytes()))
	fmt.Printf("seed:       %d\n", m.Seed())
	fmt.Printf("features:   %d\n", feat.NumFeatures)
	fmt.Printf("bigrams:    %d\n", m.BigramCount())
	fmt.Printf("bias:       %+.4f\n", m.Bias())
	fmt.Printf("flag:       %+.4f (raw margin)\n", m.FlagRaw())
	fmt.Printf("prefilter:  %+.4f (raw margin)\n", m.PrefilterRaw())
	fmt.Println("weights:")
	w := m.Weights()
	for i, name := range feat.FeatureNames {
		fmt.Printf("  %-18s %+.4f\n", name, w[i])
	}
	if *topN > 0 && m.BigramCount() > 0 {
		fmt.Printf("top %d bigrams by |log-odds|:\n", *topN)
		for _, b := range topBigrams(m, *topN) {
			fmt.Printf("  %-12q %+.4f\n", b.pair, b.logOdds)
		}
	}
	return nil
}

type bigramRow struct {
	pair    string
	logOdds float64
}

// topBigrams decodes the model's serialized bigram table (the blob is
// public via Bytes; the layout is documented in internal/feat) and
// returns the strongest entries. Boundary sentinels render as ^ and $.
func topBigrams(m *feat.Model, n int) []bigramRow {
	data := m.Bytes()
	count := m.BigramCount()
	// Key/value sections sit before the trailing checksum.
	valOff := len(data) - 8 - 8*count
	keyOff := valOff - 8*count
	rows := make([]bigramRow, 0, count)
	for i := 0; i < count; i++ {
		key := binary.LittleEndian.Uint64(data[keyOff+8*i:])
		val := math.Float64frombits(binary.LittleEndian.Uint64(data[valOff+8*i:]))
		a, b := rune(key>>32), rune(uint32(key))
		rows = append(rows, bigramRow{pair: renderRune(a) + renderRune(b), logOdds: val})
	}
	sort.Slice(rows, func(i, j int) bool {
		ai, aj := math.Abs(rows[i].logOdds), math.Abs(rows[j].logOdds)
		if ai != aj {
			return ai > aj
		}
		return rows[i].pair < rows[j].pair
	})
	if len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

func renderRune(r rune) string {
	switch r {
	case 0x02:
		return "^"
	case 0x03:
		return "$"
	}
	return string(r)
}
