// Command idnwatch is the continuous brand-protection daemon: it tails
// a directory of day-over-day zone deltas (IXFR-style master files,
// emitted by idnzonegen -deltas or a registry feed), streams every
// add/NS-change through the index-backed homograph matcher against a
// standing table of per-brand subscriptions, and appends confirmed
// findings to a durable group-commit alert log with at-least-once
// delivery and replayable cursors.
//
// The batch study (the paper's one-shot snapshot) answers "what is
// registered today"; idnwatch answers "what just got registered that
// imitates a brand someone watches" — and keeps answering through
// restarts: the input cursor only advances after the alerts it covers
// are fsynced, so a SIGKILL at any byte replays the interrupted delta
// instead of losing it.
//
// Usage:
//
//	idnzonegen -out ./deltas -deltas 7 -deltas-only
//	idnwatch -deltas ./deltas -alerts alerts.log -once
//	idnwatch -deltas ./deltas -alerts alerts.log -listen 127.0.0.1:8183
//	idnwatch -alerts alerts.log -replay            # dump findings
//
// SIGINT/SIGTERM drain gracefully: the in-flight delta finishes, the
// alert log commits, the cursor is saved, then the process exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"idnlab/internal/brands"
	"idnlab/internal/candidx"
	"idnlab/internal/core"
	"idnlab/internal/feat"
	"idnlab/internal/watch"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "idnwatch:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		deltaDir  = flag.String("deltas", "", "delta directory to tail (required unless -replay)")
		alertPath = flag.String("alerts", "alerts.log", "durable alert log path")
		cursor    = flag.String("cursor", "", "cursor file (default <alerts>.cursor)")
		indexPath = flag.String("index", "", "precomputed candidate index (built by idnindex); default builds one in-process")
		topK      = flag.Int("brands", 1000, "brands to build the in-process index from (ignored with -index)")
		threshold = flag.Float64("threshold", 0, "SSIM detection threshold (0 = default)")
		workers   = flag.Int("workers", 0, "match fan-out width (0 = GOMAXPROCS)")
		batch     = flag.Int("batch", 0, "events per dispatch batch (0 = pipeline default)")
		subsN     = flag.Int("subs", 0, "synthetic standing subscriptions to install (0 = one per brand)")
		interval  = flag.Duration("interval", time.Second, "poll interval for new delta files")
		once      = flag.Bool("once", false, "process pending deltas once, then exit")
		listen    = flag.String("listen", "", "optional HTTP address for /metrics and /healthz")
		replay    = flag.Bool("replay", false, "print the alert log from -from and exit")
		from      = flag.Int64("from", 0, "replay start cursor (byte offset)")
		statPath  = flag.String("stat", "", "trained statistical model (built by idnstat train); sheds low-suspicion churn before the SSIM probe")
	)
	flag.Parse()

	if *replay {
		return runReplay(*alertPath, *from)
	}
	if *deltaDir == "" {
		return errors.New("-deltas is required (or -replay)")
	}
	if *cursor == "" {
		*cursor = *alertPath + ".cursor"
	}

	// Detector: load a prebuilt index or compile one for the top-K
	// catalog. The watch tier refuses to run without an index — see
	// watch.NewMatcher.
	var ix *candidx.Index
	if *indexPath != "" {
		loaded, err := candidx.LoadFile(*indexPath)
		if err != nil {
			return fmt.Errorf("load index: %w", err)
		}
		ix = loaded
	} else {
		built, err := candidx.Build(brands.TopK(*topK), candidx.BuildOptions{Threshold: *threshold})
		if err != nil {
			return fmt.Errorf("build index: %w", err)
		}
		ix = built
	}
	opts := []core.HomographOption{core.WithIndex(ix)}
	if *threshold > 0 {
		opts = append(opts, core.WithThreshold(*threshold))
	}
	if *statPath != "" {
		stat, err := feat.LoadFile(*statPath)
		if err != nil {
			return fmt.Errorf("load stat model: %w", err)
		}
		opts = append(opts, core.WithStatModel(stat))
		fmt.Printf("idnwatch: stat model %s: seed %d, %d bigrams, prefilter %.3f\n",
			*statPath, stat.Seed(), stat.BigramCount(), stat.PrefilterRaw())
	}
	det := core.NewHomographDetector(0, opts...)

	// Standing subscriptions. Real deployments feed these from an API;
	// the daemon installs a deterministic synthetic population so the
	// pipeline is exercised end to end out of the box.
	catalog := ix.Brands()
	subs := watch.NewSubTable(len(catalog))
	n := *subsN
	if n <= 0 {
		n = len(catalog)
	}
	for i := 0; i < n; i++ {
		subs.Subscribe(uint32(i%len(catalog)), uint64(1+i))
	}
	snap := subs.Compile()

	eng, err := watch.NewEngine(det, subs, watch.EngineConfig{Workers: *workers, Batch: *batch})
	if err != nil {
		return err
	}
	log, err := watch.OpenAlertLog(*alertPath)
	if err != nil {
		return err
	}
	runner := &watch.Runner{Engine: eng, Log: log, Dir: *deltaDir, CursorPath: *cursor}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			log.Close()
			return err
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			matched, unwatched, decodeErrs := eng.Counters()
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{
				"pipeline":   eng.Metrics().JSON(),
				"alertLog":   log.Stats(),
				"cursor":     runner.Cursor(),
				"matched":    matched,
				"unwatched":  unwatched,
				"decodeErrs": decodeErrs,
				// detector carries rescore_early_exit and the statistical
				// prefilter's pass/shed split.
				"detector": eng.DetectorStats(),
			})
		})
		hs := &http.Server{Handler: mux}
		go hs.Serve(ln)
		go func() {
			<-ctx.Done()
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			hs.Shutdown(sctx)
		}()
		// The exact "listening on" line is the smoke harness's readiness
		// signal; keep it stable.
		fmt.Printf("idnwatch: listening on %s\n", ln.Addr())
	}

	fmt.Printf("idnwatch: watching %s (brands=%d, subscriptions=%d, SIGTERM to drain)\n",
		*deltaDir, len(catalog), snap.Total())

	if *once {
		files, alerts, err := runner.Poll(ctx)
		if err != nil {
			log.Close()
			return err
		}
		if err := log.Close(); err != nil {
			return err
		}
		matched, _, _ := eng.Counters()
		st := log.Stats()
		fmt.Printf("idnwatch: processed %d deltas: %d alerts (matched=%d, commits=%d, avg batch %.1f), cursor serial=%d\n",
			files, alerts, matched, st.Commits, st.AvgBatch(), runner.Cursor().Serial)
		fmt.Println("idnwatch: drained cleanly")
		return nil
	}

	err = runner.Run(ctx, *interval)
	cerr := log.Close()
	if err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	if cerr != nil {
		return cerr
	}
	fmt.Printf("idnwatch: cursor serial=%d logOffset=%d\n", runner.Cursor().Serial, runner.Cursor().LogOffset)
	fmt.Println("idnwatch: drained cleanly")
	return nil
}

// runReplay dumps the alert log as JSON lines — the consumer side of
// the at-least-once contract (dedup by alert key is the reader's job,
// shown here with a seen-set).
func runReplay(path string, from int64) error {
	seen := make(map[string]struct{})
	total, dups := 0, 0
	end, err := watch.ReplayAlertLog(path, from, func(off int64, a watch.Alert) error {
		total++
		if _, dup := seen[a.Key()]; dup {
			dups++
			return nil
		}
		seen[a.Key()] = struct{}{}
		line, err := json.Marshal(a)
		if err != nil {
			return err
		}
		fmt.Println(string(line))
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "idnwatch: replayed %d alerts (%d duplicates suppressed), next cursor %d\n", total, dups, end)
	return nil
}
