// Command idnindex builds, inspects and verifies precomputed homograph
// candidate indexes (package candidx). The index is compiled offline from
// a brand catalog and loaded by idnserve/idngateway at startup; this tool
// is the offline half of that pipeline.
//
// Usage:
//
//	idnindex build -top 1000 -out brands.cidx [-threshold 0.98]
//	idnindex inspect brands.cidx
//	idnindex verify brands.cidx [-sample 200] [-seed 1]
//
// build compiles the top-k brand catalog into a serialized index.
// inspect prints the header, section sizes and fold classes of an index
// file. verify proves an index file is trustworthy twice over: it
// rebuilds the index from the embedded catalog and byte-compares the
// result (the build is deterministic, so any divergence means corruption
// or a version skew), then replays a seeded sample of adversarial labels
// through both the index-backed detector and the brute-force SSIM sweep
// and fails on any verdict difference.
package main

import (
	"flag"
	"fmt"
	"os"

	"idnlab/internal/brands"
	"idnlab/internal/candidx"
	"idnlab/internal/core"
	"idnlab/internal/simchar"
	"idnlab/internal/simrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "idnindex:", err)
		os.Exit(1)
	}
}

func run() error {
	if len(os.Args) < 2 {
		return fmt.Errorf("usage: idnindex build|inspect|verify [flags]")
	}
	switch os.Args[1] {
	case "build":
		return runBuild(os.Args[2:])
	case "inspect":
		return runInspect(os.Args[2:])
	case "verify":
		return runVerify(os.Args[2:])
	default:
		return fmt.Errorf("unknown subcommand %q (want build, inspect or verify)", os.Args[1])
	}
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	top := fs.Int("top", 1000, "brand catalog depth (top-k by rank)")
	out := fs.String("out", "brands.cidx", "output index file")
	threshold := fs.Float64("threshold", candidx.DefaultThreshold, "SSIM detection threshold to compile for")
	fs.Parse(args)

	list := brands.TopK(*top)
	ix, err := candidx.Build(list, candidx.BuildOptions{Threshold: *threshold})
	if err != nil {
		return err
	}
	if err := ix.WriteFile(*out); err != nil {
		return err
	}
	fmt.Printf("idnindex: built %s: %d brands, %d keys, %d hard, %d bytes\n",
		*out, len(ix.Brands()), ix.KeyCount(), len(ix.Hard()), len(ix.Bytes()))
	return nil
}

func runInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: idnindex inspect <file>")
	}
	ix, err := candidx.LoadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("file:        %s (%d bytes)\n", fs.Arg(0), len(ix.Bytes()))
	fmt.Printf("format:      %s\n", ix.Bytes()[:8])
	fmt.Printf("threshold:   %g\n", ix.Threshold())
	fmt.Printf("fingerprint: %016x\n", ix.Fingerprint())
	fmt.Printf("brands:      %d\n", len(ix.Brands()))
	fmt.Printf("keys:        %d\n", ix.KeyCount())
	fmt.Printf("hard:        %d\n", len(ix.Hard()))
	fmt.Printf("fold classes (beyond per-base folding):\n")
	for _, g := range ix.FoldClasses() {
		fmt.Printf("  {%s}\n", g)
	}
	return nil
}

func runVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	sample := fs.Int("sample", 200, "adversarial labels replayed through index and sweep")
	seed := fs.Uint64("seed", 1, "sample generator seed")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: idnindex verify [flags] <file>")
	}
	ix, err := candidx.LoadFile(fs.Arg(0))
	if err != nil {
		return err
	}

	// 1. Deterministic rebuild: same catalog + threshold must reproduce
	// the file byte for byte.
	rebuilt, err := candidx.Build(ix.Brands(), candidx.BuildOptions{Threshold: ix.Threshold()})
	if err != nil {
		return fmt.Errorf("rebuild: %w", err)
	}
	if string(rebuilt.Bytes()) != string(ix.Bytes()) {
		return fmt.Errorf("rebuild differs from file (%d vs %d bytes): corrupt index or builder version skew",
			len(rebuilt.Bytes()), len(ix.Bytes()))
	}
	fmt.Printf("idnindex: rebuild identical (%d bytes)\n", len(ix.Bytes()))

	// 2. Sampled sweep equivalence: the index-backed detector must agree
	// with the brute-force SSIM sweep on every sampled verdict.
	indexed := core.NewHomographDetector(0, core.WithIndex(ix))
	sweep := core.NewHomographDetector(0, core.WithoutPrefilter(), core.WithBrands(ix.Brands()))
	tab := simchar.Default()
	src := simrand.New(*seed)
	list := ix.Brands()
	checked := 0
	for i := 0; i < *sample; i++ {
		label := mutate(src, tab, list[src.Intn(len(list))].Label())
		n, err := core.Normalize(label + ".com")
		if err != nil {
			continue
		}
		got, gotOK := indexed.DetectNormalized(n)
		want, wantOK := sweep.DetectNormalized(n)
		if gotOK != wantOK || got != want {
			return fmt.Errorf("verdict divergence on %q: index=(%v,%v) sweep=(%v,%v)",
				label, got, gotOK, want, wantOK)
		}
		checked++
	}
	fmt.Printf("idnindex: %d sampled verdicts identical to the SSIM sweep\n", checked)
	return nil
}

// mutate derives one adversarial probe label from a brand label: a
// possible length edit plus one or two confusable substitutions.
func mutate(src *simrand.Source, tab *simchar.Table, label string) string {
	runes := []rune(label)
	if len(runes) == 0 {
		return label
	}
	switch src.Intn(5) {
	case 0:
		runes = append(runes, 'ö')
	case 1:
		if len(runes) > 2 {
			runes = runes[:len(runes)-1]
		}
	}
	subs := 1 + src.Intn(2)
	for s := 0; s < subs; s++ {
		pos := src.Intn(len(runes))
		if runes[pos] > 0x7F {
			continue
		}
		if sims := tab.Similar(byte(runes[pos])); len(sims) > 0 {
			runes[pos] = sims[src.Intn(len(sims))].Rune
		}
	}
	return string(runes)
}
