// Command idndetect checks domains for homographic and Type-1 semantic
// abuse against the top-1000 brand list — the paper's two detectors as a
// standalone tool. Domains are read from arguments or stdin (one per
// line), in either Unicode or Punycode form.
//
// Classification fans across a worker pipeline with one detector set per
// worker (the homograph renderer is not safe for concurrent use); the
// order-preserving fan-in keeps output in input order, so results are
// byte-identical to a sequential run. Ctrl-C cancels cleanly.
//
// Usage:
//
//	idndetect xn--pple-43d.com apple邮箱.com example.com
//	cat suspicious.txt | idndetect -threshold 0.985 -workers 8 -metrics
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"idnlab/internal/core"
	"idnlab/internal/idna"
	"idnlab/internal/pipeline"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "idndetect:", err)
		os.Exit(1)
	}
}

// detectors is the per-worker state: one instance of each detector.
type detectors struct {
	homo  *core.HomographDetector
	sem   *core.SemanticDetector
	type2 *core.Type2Detector
}

// verdict is one classified domain, already formatted for output.
type verdict struct {
	line    string
	flagged bool
}

func run() error {
	var (
		threshold = flag.Float64("threshold", core.DefaultSSIMThreshold, "SSIM detection threshold")
		topK      = flag.Int("brands", 1000, "number of top brands to defend")
		quiet     = flag.Bool("q", false, "print only matching domains")
		workers   = flag.Int("workers", 0, "detection fan-out (0 = GOMAXPROCS)")
		metrics   = flag.Bool("metrics", false, "print pipeline metrics to stderr after the run")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	domains := flag.Args()
	if len(domains) == 0 {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			if line := sc.Text(); line != "" {
				domains = append(domains, line)
			}
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}
	if len(domains) == 0 {
		return fmt.Errorf("no domains given (pass arguments or pipe to stdin)")
	}

	eng := pipeline.New(
		pipeline.Config{Stage: "detect", Workers: *workers},
		func() detectors {
			return detectors{
				homo:  core.NewHomographDetector(*topK, core.WithThreshold(*threshold)),
				sem:   core.NewSemanticDetector(*topK),
				type2: core.NewType2Detector(nil),
			}
		},
		func(d detectors, domain string) (verdict, bool, error) {
			return classify(d, domain, *quiet)
		})

	flagged := 0
	err := eng.Stream(ctx, pipeline.FromSlice(domains), func(v verdict) error {
		if v.flagged {
			flagged++
		}
		fmt.Println(v.line)
		return nil
	})
	if *metrics {
		fmt.Fprintln(os.Stderr, eng.Metrics())
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%d of %d domains flagged\n", flagged, len(domains))
	return nil
}

// classify runs the detector cascade on one domain. ok=false drops the
// domain from the output (clean domains under -q).
func classify(d detectors, domain string, quiet bool) (verdict, bool, error) {
	if m, ok := d.homo.DetectOne(domain); ok {
		return verdict{line: fmt.Sprintf("HOMOGRAPH %s", m), flagged: true}, true, nil
	}
	if m, ok := d.sem.DetectOne(domain); ok {
		return verdict{line: fmt.Sprintf("SEMANTIC  %s", m), flagged: true}, true, nil
	}
	if m, ok := d.type2.DetectOne(domain); ok {
		return verdict{line: fmt.Sprintf("TYPE2     %s", m), flagged: true}, true, nil
	}
	if quiet {
		return verdict{}, false, nil
	}
	uni, err := idna.ToUnicode(domain)
	if err != nil {
		return verdict{line: fmt.Sprintf("INVALID   %s (%v)", domain, err)}, true, nil
	}
	return verdict{line: fmt.Sprintf("clean     %s (%s)", domain, uni)}, true, nil
}
