// Command idndetect checks domains for homographic and Type-1 semantic
// abuse against the top-1000 brand list — the paper's two detectors as a
// standalone tool. Domains are read from arguments or stdin (one per
// line), in either Unicode or Punycode form.
//
// Usage:
//
//	idndetect xn--pple-43d.com apple邮箱.com example.com
//	cat suspicious.txt | idndetect -threshold 0.985
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"idnlab/internal/core"
	"idnlab/internal/idna"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "idndetect:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		threshold = flag.Float64("threshold", core.DefaultSSIMThreshold, "SSIM detection threshold")
		topK      = flag.Int("brands", 1000, "number of top brands to defend")
		quiet     = flag.Bool("q", false, "print only matching domains")
	)
	flag.Parse()

	homo := core.NewHomographDetector(*topK, core.WithThreshold(*threshold))
	sem := core.NewSemanticDetector(*topK)
	type2 := core.NewType2Detector(nil)

	domains := flag.Args()
	if len(domains) == 0 {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			if line := sc.Text(); line != "" {
				domains = append(domains, line)
			}
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}
	if len(domains) == 0 {
		return fmt.Errorf("no domains given (pass arguments or pipe to stdin)")
	}

	flagged := 0
	for _, d := range domains {
		if m, ok := homo.DetectOne(d); ok {
			fmt.Printf("HOMOGRAPH %s\n", m)
			flagged++
			continue
		}
		if m, ok := sem.DetectOne(d); ok {
			fmt.Printf("SEMANTIC  %s\n", m)
			flagged++
			continue
		}
		if m, ok := type2.DetectOne(d); ok {
			fmt.Printf("TYPE2     %s\n", m)
			flagged++
			continue
		}
		if !*quiet {
			uni, err := idna.ToUnicode(d)
			if err != nil {
				fmt.Printf("INVALID   %s (%v)\n", d, err)
				continue
			}
			fmt.Printf("clean     %s (%s)\n", d, uni)
		}
	}
	fmt.Fprintf(os.Stderr, "%d of %d domains flagged\n", flagged, len(domains))
	return nil
}
