// Command idngateway fronts a cluster of idnserve workers: a
// consistent-hash (rendezvous) gateway that partitions the verdict
// keyspace by normalized ACE domain, so each name's verdict is cached on
// exactly one owner and aggregate cache capacity grows with node count.
//
// Endpoints:
//
//	POST /v1/detect        routed to the key's ring owner (hedged for tail latency)
//	POST /v1/detect/batch  split by owner, scatter/gathered, reassembled in order
//	POST /v1/join          worker registration + heartbeat (idnserve -join)
//	GET  /healthz          gateway liveness; 503 while draining
//	GET  /readyz           cluster readiness (>= min-ready alive workers)
//	GET  /clusterz         membership, ring and circuit-breaker state
//	GET  /metrics          gateway counters + merged per-worker metrics
//
// Failure handling: a killed worker is detected by proxy-failure
// feedback (faster than the heartbeat timers), its key range reassigns
// to the surviving ring, and in-flight requests retry on survivors —
// clients see latency, not errors.
//
// Usage:
//
//	idngateway -listen 127.0.0.1:8180
//	idnserve -listen 127.0.0.1:8181 -join 127.0.0.1:8180
//	idnserve -listen 127.0.0.1:8182 -join 127.0.0.1:8180
//	curl -d '{"domain":"аррӏе.com"}' http://127.0.0.1:8180/v1/detect
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"idnlab/internal/cluster"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "idngateway:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen       = flag.String("listen", "127.0.0.1:8180", "HTTP listen address (use :0 for an ephemeral port)")
		nodeID       = flag.String("node", "", "gateway node ID (default generated)")
		heartbeat    = flag.Duration("heartbeat", time.Second, "worker heartbeat cadence advertised on join")
		suspectAfter = flag.Duration("suspect-after", 0, "silence before a worker is suspect (0 = 3x heartbeat)")
		deadAfter    = flag.Duration("dead-after", 0, "silence before a worker is dead (0 = 10x heartbeat)")
		attempts     = flag.Int("attempts", 3, "max ring candidates tried per request")
		hedge        = flag.Duration("hedge", 0, "hedged-request delay for single detects (0 = off)")
		maxBatch     = flag.Int("max-batch", 256, "max labels per batch request (must match workers)")
		reqTimeout   = flag.Duration("timeout", 2*time.Second, "per-request deadline including retries")
		scatter      = flag.Int("scatter-workers", 16, "concurrent sub-batch fan-out bound")
		minReady     = flag.Int("min-ready", 1, "alive workers required for /readyz")
		drain        = flag.Duration("drain", 5*time.Second, "graceful shutdown budget")
		coalesce     = flag.Duration("coalesce", 0, "single-detect coalescing window, e.g. 500us (0 = off)")
		coalesceMax  = flag.Int("coalesce-max", 64, "max singles merged into one upstream batch")
		idleConns    = flag.Int("upstream-idle-conns", 256, "upstream transport: total idle connections kept")
		idlePerHost  = flag.Int("upstream-idle-conns-per-host", 64, "upstream transport: idle connections kept per worker")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	id := *nodeID
	if id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "gateway"
		}
		id = fmt.Sprintf("gw-%s-%d", host, os.Getpid())
	}
	gw := cluster.NewGateway(cluster.GatewayConfig{
		NodeID: id,
		Membership: cluster.MembershipConfig{
			HeartbeatInterval: *heartbeat,
			SuspectAfter:      *suspectAfter,
			DeadAfter:         *deadAfter,
		},
		Router: cluster.RouterConfig{
			MaxAttempts:         *attempts,
			Hedge:               *hedge,
			MaxIdleConns:        *idleConns,
			MaxIdleConnsPerHost: *idlePerHost,
		},
		MaxBatch:       *maxBatch,
		RequestTimeout: *reqTimeout,
		ScatterWorkers: *scatter,
		MinReady:       *minReady,
		DrainTimeout:   *drain,
		CoalesceWindow: *coalesce,
		CoalesceMax:    *coalesceMax,
	})

	ready := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() { errc <- gw.Run(ctx, *listen, ready) }()
	select {
	case addr := <-ready:
		// The exact "listening on" line is the smoke harness's readiness
		// signal; keep it stable.
		fmt.Printf("idngateway: listening on %s (min-ready=%d, SIGTERM to drain)\n", addr, *minReady)
		go announceQuorum(ctx, gw, *minReady)
	case err := <-errc:
		return err
	}
	err := <-errc
	if err == nil {
		fmt.Println("idngateway: drained cleanly")
	}
	return err
}

// announceQuorum prints a stable line once min-ready workers are alive
// — the cluster smoke harness's signal that scatter targets exist.
func announceQuorum(ctx context.Context, gw *cluster.Gateway, minReady int) {
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if n := gw.Membership().AliveCount(); n >= minReady {
				fmt.Printf("idngateway: serving %d workers\n", n)
				return
			}
		case <-ctx.Done():
			return
		}
	}
}
