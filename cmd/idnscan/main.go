// Command idnscan scans zone files for internationalized domain names —
// the paper's discovery step ("we searched substring xn-- in TLDs"). It
// reads master-format zone files (as written by idnzonegen, or real TLD
// snapshots) and prints per-zone SLD/IDN counts plus the decoded IDNs.
//
// Zones are ingested through the streaming scanner (records are never
// fully resident) and fanned across a context-aware worker pipeline, so
// many zone files scan in parallel while the output order stays
// deterministic. Ctrl-C cancels cleanly mid-scan.
//
// Usage:
//
//	idnscan [-v] [-workers N] [-metrics] zones/com.zone zones/net.zone ...
//	idnscan -dir zones -metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"

	"idnlab/internal/idna"
	"idnlab/internal/pipeline"
	"idnlab/internal/profiling"
	"idnlab/internal/zonefile"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "idnscan:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dir     = flag.String("dir", "", "scan every *.zone file in this directory")
		verbose = flag.Bool("v", false, "print each discovered IDN with its Unicode form")
		workers = flag.Int("workers", 0, "zone files scanned concurrently (0 = GOMAXPROCS)")
		metrics = flag.Bool("metrics", false, "print pipeline metrics to stderr after the scan")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "idnscan:", perr)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	paths := flag.Args()
	if *dir != "" {
		matches, err := filepath.Glob(filepath.Join(*dir, "*.zone"))
		if err != nil {
			return err
		}
		paths = append(paths, matches...)
	}
	if len(paths) == 0 {
		return fmt.Errorf("no zone files given (pass paths or -dir)")
	}
	sort.Strings(paths)

	// One work item per zone file; each worker streams its file through
	// zonefile.ScanStream. The order-preserving fan-in keeps the output
	// in sorted-path order no matter which zone finishes first. Batch is
	// 1 because each item is a whole zone file — heavy enough that the
	// channel handoff is noise, and fine-grained dispatch keeps all
	// workers busy on corpora with a few large zones.
	eng := pipeline.New(
		pipeline.Config{Stage: "zonescan", Workers: *workers, Batch: 1},
		func() struct{} { return struct{}{} },
		func(_ struct{}, path string) (zonefile.ScanStats, bool, error) {
			f, err := os.Open(path)
			if err != nil {
				return zonefile.ScanStats{}, false, err
			}
			defer f.Close()
			st, err := zonefile.ScanStream(ctx, f, nil)
			if err != nil {
				return zonefile.ScanStats{}, false, fmt.Errorf("%s: %w", path, err)
			}
			return st, true, nil
		})

	var totalSLD, totalIDN int
	err = eng.Stream(ctx, pipeline.FromSlice(paths), func(st zonefile.ScanStats) error {
		totalSLD += st.SLDCount
		totalIDN += len(st.IDNs)
		fmt.Printf("%-24s %8d SLDs %8d IDNs\n", st.Origin, st.SLDCount, len(st.IDNs))
		if *verbose {
			for _, d := range st.IDNs {
				uni, err := idna.ToUnicode(d)
				if err != nil {
					uni = "(decode error: " + err.Error() + ")"
				}
				fmt.Printf("  %-40s %s\n", d, uni)
			}
		}
		return nil
	})
	if *metrics {
		fmt.Fprintln(os.Stderr, eng.Metrics())
	}
	if err != nil {
		return err
	}
	fmt.Printf("%-24s %8d SLDs %8d IDNs\n", "TOTAL", totalSLD, totalIDN)
	return nil
}
