// Command idnscan scans zone files for internationalized domain names —
// the paper's discovery step ("we searched substring xn-- in TLDs"). It
// reads master-format zone files (as written by idnzonegen, or real TLD
// snapshots) and prints per-zone SLD/IDN counts plus the decoded IDNs.
//
// Usage:
//
//	idnscan [-v] zones/com.zone zones/net.zone ...
//	idnscan -dir zones
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"idnlab/internal/idna"
	"idnlab/internal/zonefile"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "idnscan:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dir     = flag.String("dir", "", "scan every *.zone file in this directory")
		verbose = flag.Bool("v", false, "print each discovered IDN with its Unicode form")
	)
	flag.Parse()

	paths := flag.Args()
	if *dir != "" {
		matches, err := filepath.Glob(filepath.Join(*dir, "*.zone"))
		if err != nil {
			return err
		}
		paths = append(paths, matches...)
	}
	if len(paths) == 0 {
		return fmt.Errorf("no zone files given (pass paths or -dir)")
	}
	sort.Strings(paths)

	var totalSLD, totalIDN int
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		st, err := zonefile.ScanReader(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		totalSLD += st.SLDCount
		totalIDN += len(st.IDNs)
		fmt.Printf("%-24s %8d SLDs %8d IDNs\n", st.Origin, st.SLDCount, len(st.IDNs))
		if *verbose {
			for _, d := range st.IDNs {
				uni, err := idna.ToUnicode(d)
				if err != nil {
					uni = "(decode error: " + err.Error() + ")"
				}
				fmt.Printf("  %-40s %s\n", d, uni)
			}
		}
	}
	fmt.Printf("%-24s %8d SLDs %8d IDNs\n", "TOTAL", totalSLD, totalIDN)
	return nil
}
