package idnlab_test

import (
	"fmt"

	"idnlab"
)

// ExampleToASCII demonstrates IDNA conversion of the gambling IDN the
// paper highlights in §IV-C.
func ExampleToASCII() {
	ace, err := idnlab.ToASCII("波色.com")
	if err != nil {
		panic(err)
	}
	fmt.Println(ace)
	// Output: xn--0wwy37b.com
}

// ExampleToUnicode decodes the 2017 apple.com attack domain.
func ExampleToUnicode() {
	uni, err := idnlab.ToUnicode("xn--pple-43d.com")
	if err != nil {
		panic(err)
	}
	fmt.Println(uni)
	// Output: аpple.com
}

// ExampleHomographDetector_DetectOne flags the Cyrillic-а apple.com
// homograph.
func ExampleHomographDetector_DetectOne() {
	det := idnlab.NewHomographDetector(1000)
	m, ok := det.DetectOne("xn--pple-43d.com")
	fmt.Println(ok, m.Brand, m.SSIM)
	// Output: true apple.com 1
}

// ExampleSemanticDetector_DetectOne flags a Type-1 brand+keyword IDN
// (the paper's Table IX example).
func ExampleSemanticDetector_DetectOne() {
	det := idnlab.NewSemanticDetector(1000)
	m, ok := det.DetectOne("apple邮箱.com")
	fmt.Println(ok, m.Domain, m.Brand)
	// Output: true xn--apple-rq8mk98i.com apple.com
}

// ExampleType2Detector_DetectOne flags the paper's Table X translated
// brand.
func ExampleType2Detector_DetectOne() {
	det := idnlab.NewType2Detector(nil)
	m, ok := det.DetectOne("格力空调.net")
	fmt.Println(ok, m.Domain, m.Brand)
	// Output: true xn--tfr361cl2mbrq.net gree.com
}

// ExampleEncodeLabel shows raw RFC 3492 Bootstring encoding.
func ExampleEncodeLabel() {
	enc, err := idnlab.EncodeLabel("中国")
	if err != nil {
		panic(err)
	}
	fmt.Println(enc)
	// Output: fiqs8s
}

// ExampleIsIDN is the zone-scan predicate over both name forms.
func ExampleIsIDN() {
	fmt.Println(idnlab.IsIDN("xn--0wwy37b.com"), idnlab.IsIDN("波色.com"), idnlab.IsIDN("example.com"))
	// Output: true true false
}
