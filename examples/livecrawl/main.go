// Live crawl: the full measurement loop against live servers. The
// synthetic universe is served over a real UDP DNS socket and a real HTTP
// listener; the crawler then does what the paper's crawler did — resolve
// each name, fetch the homepage on success, classify the content — and
// runs the abuse detectors over the discovered IDNs.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/httptest"

	"idnlab"
	"idnlab/internal/core"
	"idnlab/internal/dnssim"
	"idnlab/internal/webprobe"
)

func main() {
	ds, err := idnlab.NewDataset(11, 1000) // ≈1.5K IDNs, fast
	if err != nil {
		log.Fatal(err)
	}

	// Authoritative DNS on a real UDP socket.
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	go func() {
		if err := ds.DNS.ServeUDP(conn); err != nil {
			log.Print(err)
		}
	}()
	resolver := dnssim.NewUDPResolver(conn.LocalAddr().String())
	fmt.Println("DNS up on", conn.LocalAddr())

	// Web content behind a real HTTP listener.
	web := httptest.NewServer(core.WebHandler(ds))
	defer web.Close()
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	fmt.Println("web up on", web.URL)

	// Crawl a slice of the corpus: resolve, then fetch.
	census := make(webprobe.Census)
	refused := 0
	crawled := 0
	for _, d := range ds.IDNs {
		if crawled >= 200 {
			break
		}
		crawled++
		res, err := resolver.LookupA(d)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Resolved() {
			if res.RCode == dnssim.RCodeRefused {
				refused++
			}
			census[webprobe.NotResolved]++
			continue
		}
		state, err := core.CrawlHTTP(client, web.URL, d)
		if err != nil {
			log.Fatal(err)
		}
		census[state]++
	}
	fmt.Printf("\ncrawled %d IDNs over live DNS+HTTP:\n", crawled)
	for _, s := range webprobe.States() {
		if census[s] > 0 {
			fmt.Printf("  %-20s %3d\n", s, census[s])
		}
	}
	fmt.Printf("all %d resolution failures were name-server REFUSED answers (paper §IV-D)\n", refused)

	// Detection over the full discovered corpus.
	study := idnlab.NewStudy(ds)
	homo := study.Homograph.Detect(ds.IDNs)
	sem := study.Semantic.Detect(ds.IDNs)
	fmt.Printf("\ndetectors: %d homographic, %d Type-1 semantic IDNs\n", len(homo), len(sem))
	for _, m := range homo {
		fmt.Println("  ", m)
	}
}
