// Quickstart: encode and decode IDNs, render them as a browser address
// bar would, and check a few domains for homograph and semantic abuse —
// the library's core capabilities in one page.
package main

import (
	"fmt"
	"log"

	"idnlab"
)

func main() {
	// 1. IDNA conversion: the Punycode layer built from RFC 3492.
	for _, domain := range []string{"波色.com", "中国", "bücher.de", "аpple.com"} {
		ace, err := idnlab.ToASCII(domain)
		if err != nil {
			log.Fatalf("ToASCII(%q): %v", domain, err)
		}
		back, err := idnlab.ToUnicode(ace)
		if err != nil {
			log.Fatalf("ToUnicode(%q): %v", ace, err)
		}
		fmt.Printf("%-12s -> %-22s -> %s\n", domain, ace, back)
	}
	fmt.Println()

	// 2. Homograph detection: is this domain visually impersonating a
	// top-1000 brand? The detector renders both names with the built-in
	// pixel typeface and compares them with SSIM (paper §VI-B).
	det := idnlab.NewHomographDetector(1000)
	suspects := []string{
		"xn--pple-43d.com",  // аpple.com — the 2017 Chrome attack
		"xn--ggle-55da.com", // gооgle.com with Cyrillic о's
		"ѕоѕо.com",          // whole-script confusable, bypasses Firefox
		"xn--0wwy37b.com",   // 波色.com — a real IDN, but no homograph
		"example.com",
	}
	for _, s := range suspects {
		if m, ok := det.DetectOne(s); ok {
			fmt.Println("homograph:", m)
		} else {
			fmt.Println("clean:    ", s)
		}
	}
	fmt.Println()

	// 3. Semantic (Type-1) detection: brand + foreign keyword (§VII).
	sem := idnlab.NewSemanticDetector(1000)
	for _, s := range []string{"apple邮箱.com", "58汽车.com", "icloud登录.com"} {
		if m, ok := sem.DetectOne(s); ok {
			fmt.Println("semantic: ", m)
		}
	}
}
