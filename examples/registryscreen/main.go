// Registry screening: the paper's §VIII recommendation in action. It
// first reproduces the §VI-D experiment — an unscreened registry approves
// every homographic candidate, exactly as GoDaddy approved all ten of the
// authors' requests — then repeats the same submissions against a registry
// running the CNNIC-style resemblance screens (visual, semantic,
// translated-name and pronunciation) and shows each refusal reason.
package main

import (
	"fmt"

	"idnlab/internal/confusables"
	"idnlab/internal/registrar"
)

func main() {
	// Candidate names an attacker might submit.
	requests := []string{
		"аpple",     // homograph: Cyrillic а
		"gооgle",    // homograph: Cyrillic о's
		"facebооk",  // homograph
		"apple邮箱",   // Type-1 semantic (paper Table IX)
		"58汽车",      // Type-1 semantic
		"格力空调",      // Type-2 semantic (paper Table X)
		"gugel",     // phonetic sound-alike
		"phacebook", // phonetic sound-alike
		"波色",        // legitimate Chinese IDN
		"bücher",    // legitimate German IDN
	}
	// Plus the raw homoglyph variants from the paper's registration
	// experiment (§VI-D, xn--eay-6xy.com and friends).
	tab := confusables.Default()
	requests = append(requests, tab.Variants("eay")[:3]...)

	fmt.Println("=== Unscreened registry (the 2017 status quo) ===")
	open := registrar.NewSRS("com")
	approved := 0
	for _, label := range requests {
		if _, err := open.Submit(registrar.Request{Label: label, TLD: "com"}); err == nil {
			approved++
		}
	}
	fmt.Printf("approved %d of %d requests — all abuse candidates accepted\n\n", approved, len(requests))

	fmt.Println("=== Registry with brand-protection screening (§VIII) ===")
	protected := registrar.NewSRS("com")
	protected.AddScreen(registrar.NewBrandProtection(1000))
	protected.AddScreen(registrar.NewPhoneticProtection(1000))
	for _, label := range requests {
		receipt, err := protected.Submit(registrar.Request{Label: label, TLD: "com"})
		if err != nil {
			fmt.Printf("  REFUSED  %-14s %v\n", label, err)
			continue
		}
		fmt.Printf("  APPROVED %-14s -> %s\n", label, receipt.ACE)
	}
}
