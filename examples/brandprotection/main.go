// Brand protection: the workload the paper's §VI-D motivates for brand
// owners. Given a brand label, enumerate the single-substitution
// homographic IDN candidates an attacker could register, score each with
// the SSIM detector, and report which are dangerous, which render
// pixel-identically, and what their Punycode registrations would be —
// the list a registrar's brand-protection service would defensively
// register or watch.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"idnlab"
)

func main() {
	brand := flag.String("brand", "facebook", "brand SLD label to protect")
	limit := flag.Int("limit", 25, "show at most this many candidates")
	flag.Parse()

	det := idnlab.NewHomographDetector(1000)
	examples := det.ExamplesFor(*brand, -1)
	if len(examples) == 0 {
		log.Fatalf("no homoglyph candidates for %q — is it LDH?", *brand)
	}

	sort.Slice(examples, func(i, j int) bool { return examples[i].SSIM > examples[j].SSIM })
	dangerous := 0
	for _, ex := range examples {
		if ex.SSIM >= det.Threshold() {
			dangerous++
		}
	}
	fmt.Printf("brand %q: %d single-substitution candidates, %d above the detection threshold (%.3f)\n\n",
		*brand, len(examples), dangerous, det.Threshold())
	fmt.Printf("%-8s %-22s %s\n", "SSIM", "Unicode", "Punycode registration")
	for i, ex := range examples {
		if i >= *limit {
			fmt.Printf("... and %d more\n", len(examples)-*limit)
			break
		}
		marker := " "
		switch {
		case ex.SSIM >= 1.0-1e-9:
			marker = "!" // pixel-identical: undetectable by eye
		case ex.SSIM >= det.Threshold():
			marker = "*"
		}
		fmt.Printf("%s %.4f %-22s %s.com\n", marker, ex.SSIM, ex.Unicode+".com", ex.ACE)
	}
	fmt.Println("\n! = renders pixel-identically to the brand   * = above detection threshold")
}
