// Measurement: an end-to-end small-scale run of the full study — the
// paper's pipeline from zone scan to abuse detection — printing the key
// findings rather than every table (use cmd/idnreport for the complete
// reproduction).
package main

import (
	"fmt"
	"log"

	"idnlab"
	"idnlab/internal/core"
	"idnlab/internal/stats"
	"idnlab/internal/webprobe"
)

func main() {
	// Generate and assemble at 1/500 of the paper's corpus (≈3K IDNs).
	ds, err := idnlab.NewDataset(42, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d IDNs, %d sampled non-IDNs across %d TLD groups\n\n",
		len(ds.IDNs), len(ds.NonIDNs), len(ds.PerTLD))

	study := idnlab.NewStudy(ds)

	// Finding 1: language distribution.
	rows := ds.LanguageBreakdown(study.Classifier)
	eastAsian := 0.0
	for _, r := range rows {
		if r.Language.EastAsian() {
			eastAsian += r.Rate
		}
	}
	fmt.Printf("Finding 1: %s of IDNs are in east-Asian languages (top: %v at %s)\n",
		stats.Percent(eastAsian), rows[0].Language, stats.Percent(rows[0].Rate))

	// Findings 5/6: DNS activity gaps.
	idnActive := stats.NewECDF(ds.ActiveTimeSeries(core.PopulationIDN, "com"))
	nonActive := stats.NewECDF(ds.ActiveTimeSeries(core.PopulationNonIDN, "com"))
	fmt.Printf("Finding 5: P(active < 100 days) IDN %s vs non-IDN %s\n",
		stats.Percent(idnActive.At(100)), stats.Percent(nonActive.At(100)))

	// Finding 8: content usage.
	idnUse := ds.UsageSample(core.PopulationIDN, 500, 1)
	nonUse := ds.UsageSample(core.PopulationNonIDN, 500, 1)
	fmt.Printf("Finding 8: meaningful content IDN %s vs non-IDN %s; IDN not-resolved %s\n",
		stats.Percent(idnUse.Rate(webprobe.Meaningful)),
		stats.Percent(nonUse.Rate(webprobe.Meaningful)),
		stats.Percent(idnUse.Rate(webprobe.NotResolved)))

	// Finding 9: certificates.
	certs := ds.CertCensus(core.PopulationIDN)
	fmt.Printf("Finding 9: %s of the %d served IDN certificates have problems\n",
		stats.Percent(certs.ProblemRate()), certs.Total)

	// Abuse detection.
	homo := study.Homograph.Detect(ds.IDNs)
	sem := study.Semantic.Detect(ds.IDNs)
	fmt.Printf("\nDetectors: %d homographic IDNs, %d Type-1 semantic IDNs registered\n",
		len(homo), len(sem))
	for i, m := range homo {
		if i >= 5 {
			break
		}
		fmt.Println("  ", m)
	}

	// Availability: how much attack space remains open.
	avail := study.Homograph.AvailabilityStudy(50, ds.IDNs)
	cand, confusable := 0, 0
	for _, r := range avail {
		cand += r.Candidates
		confusable += r.Homographic
	}
	fmt.Printf("\nAvailability (top-50 brands): %d candidates, %d homographic, most unregistered\n",
		cand, confusable)
}
