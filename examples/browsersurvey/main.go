// Browser survey: reproduce the paper's Table XI by running each
// surveyed browser's IDN display policy against live attack domains, and
// show exactly what each address bar would display for the 2017
// аpple.com attack and the whole-script ѕоѕо.com bypass.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"idnlab"
	"idnlab/internal/browser"
)

func main() {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Browser\tPlatform\tVer.\tiTLD IDN\tHomograph\tаpple.com shows as\tѕоѕо.com shows as")
	for _, p := range idnlab.BrowserSurvey() {
		itld := p.ITLD.String()
		if itld == "" {
			itld = "(full)"
		}
		outcome := idnlab.EvaluateBrowser(p)
		if outcome == "" {
			outcome = "(safe)"
		}
		apple := browser.ACEForDisplay(p, "xn--pple-43d.com")
		// ѕоѕо.com in ACE — the paper prints this as "xn--nlaaleb.com",
		// an OCR rendering of xn--n1aa1eb.com.
		soso := browser.ACEForDisplay(p, "xn--n1aa1eb.com")
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			p.Name, p.Platform, p.Version, itld, outcome, apple, soso)
	}
	tw.Flush()

	fmt.Println("\nPolicy demonstrations:")
	for _, demo := range []struct {
		policy browser.Policy
		name   string
	}{
		{browser.PolicyAlwaysUnicode, "always-unicode (Sogou PC)"},
		{browser.PolicySingleScript, "single-script (Firefox)"},
		{browser.PolicyRestricted, "restricted (Chrome)"},
		{browser.PolicyAlwaysPunycode, "always-punycode"},
	} {
		shown, _ := browser.DisplayDomain(demo.policy, "ѕоѕо.com")
		fmt.Printf("  %-28s ѕоѕо.com -> %s\n", demo.name, shown)
	}
}
