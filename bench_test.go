package idnlab

// The benchmark harness regenerates every table and figure in the paper's
// evaluation. Each benchmark times one experiment end-to-end over the
// shared scale-1/100 universe and, when run with -v, logs the rendered
// rows so the output can be compared against the paper (see
// EXPERIMENTS.md for the side-by-side).
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkTable13 -v   # rows included

import (
	"context"
	"image"
	"io"
	"runtime"
	"strings"
	"sync"
	"testing"

	"idnlab/internal/core"
	"idnlab/internal/glyph"
	"idnlab/internal/punycode"
	"idnlab/internal/ssim"
	"idnlab/internal/zonegen"
)

var (
	benchOnce  sync.Once
	benchStudy *core.Study
)

// study lazily assembles the shared benchmark universe.
func study(b *testing.B) *core.Study {
	b.Helper()
	benchOnce.Do(func() {
		ds, err := core.NewDefaultDataset(2018, 100)
		if err != nil {
			panic(err)
		}
		benchStudy = core.NewStudy(ds)
	})
	return benchStudy
}

// benchSection times one report section and logs its rows once.
func benchSection(b *testing.B, section func(io.Writer) error) {
	st := study(b)
	_ = st
	var sb strings.Builder
	if err := section(&sb); err != nil {
		b.Fatal(err)
	}
	b.Log("\n" + sb.String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := section(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Datasets(b *testing.B)  { benchSection(b, study(b).ReportTable1) }
func BenchmarkTable2Languages(b *testing.B) { benchSection(b, study(b).ReportTable2) }

func BenchmarkFigure1CreationDates(b *testing.B) { benchSection(b, study(b).ReportFigure1) }

func BenchmarkTable3Registrants(b *testing.B) { benchSection(b, study(b).ReportTable3) }
func BenchmarkTable4Registrars(b *testing.B)  { benchSection(b, study(b).ReportTable4) }

func BenchmarkFigure2ActiveTime(b *testing.B)      { benchSection(b, study(b).ReportFigure2) }
func BenchmarkFigure3QueryVolume(b *testing.B)     { benchSection(b, study(b).ReportFigure3) }
func BenchmarkFigure4IPConcentration(b *testing.B) { benchSection(b, study(b).ReportFigure4) }

func BenchmarkTable5Usage(b *testing.B)        { benchSection(b, study(b).ReportTable5) }
func BenchmarkTable6Certificates(b *testing.B) { benchSection(b, study(b).ReportTable6) }
func BenchmarkTable7SharedCerts(b *testing.B)  { benchSection(b, study(b).ReportTable7) }

func BenchmarkTable8FacebookHomographs(b *testing.B) { benchSection(b, study(b).ReportTable8) }
func BenchmarkTable9SemanticExamples(b *testing.B)   { benchSection(b, study(b).ReportTable9) }

func BenchmarkTable10Type2Semantic(b *testing.B)   { benchSection(b, study(b).ReportTable10) }
func BenchmarkTable11BrowserSurvey(b *testing.B)   { benchSection(b, study(b).ReportTable11) }
func BenchmarkTable11bPolicyEffect(b *testing.B)   { benchSection(b, study(b).ReportTable11b) }
func BenchmarkTable12SSIMThreshold(b *testing.B)   { benchSection(b, study(b).ReportTable12) }
func BenchmarkTable13HomographBrands(b *testing.B) { benchSection(b, study(b).ReportTable13) }

func BenchmarkFigure5HomographDNS(b *testing.B)        { benchSection(b, study(b).ReportFigure5) }
func BenchmarkFigure6UnregisteredTraffic(b *testing.B) { benchSection(b, study(b).ReportFigure6) }
func BenchmarkFigure7Availability(b *testing.B)        { benchSection(b, study(b).ReportFigure7) }

func BenchmarkFigure7bMultiSub(b *testing.B)      { benchSection(b, study(b).ReportFigure7b) }
func BenchmarkTable14SemanticBrands(b *testing.B) { benchSection(b, study(b).ReportTable14) }
func BenchmarkFigure8SemanticDNS(b *testing.B)    { benchSection(b, study(b).ReportFigure8) }

// BenchmarkFullStudy regenerates the entire report (all tables and
// figures) per iteration.
func BenchmarkFullStudy(b *testing.B) {
	st := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Run(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateUniverse measures synthesis of the calibrated registry
// at several scales.
func BenchmarkGenerateUniverse(b *testing.B) {
	for _, scale := range []int{1000, 100} {
		b.Run(scaleName(scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = zonegen.Generate(zonegen.Config{Seed: 1, Scale: scale})
			}
		})
	}
}

func scaleName(scale int) string {
	return "scale-1/" + strings.TrimLeft(strings.Repeat("0", 0)+itoa(scale), " ")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// --- Scan-engine benchmarks: the perf trajectory of internal/pipeline.
// Run with -benchmem; B/s is corpus bytes scanned per second. ---

// corpusBytes sums the ACE byte length of the scan corpus for SetBytes.
func corpusBytes(domains []string) int64 {
	var n int64
	for _, d := range domains {
		n += int64(len(d))
	}
	return n
}

// benchWorkerCounts is {1, 4, GOMAXPROCS} with duplicates removed, so
// the sub-benchmark names stay unique on small machines where
// GOMAXPROCS is 1 or 4.
func benchWorkerCounts() []int {
	counts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		counts = append(counts, p)
	}
	return counts
}

// BenchmarkPipelineHomograph scans the full seed corpus through the
// streaming engine at 1, 4 and GOMAXPROCS workers. workers=1 is the
// sequential baseline; the acceptance bar is ≥2× at workers=4.
func BenchmarkPipelineHomograph(b *testing.B) {
	corpus := study(b).DS.IDNs
	nbytes := corpusBytes(corpus)
	for _, workers := range benchWorkerCounts() {
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			cfg := core.DetectorConfig{TopK: 1000}
			b.SetBytes(nbytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.ScanHomograph(context.Background(), cfg, corpus, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipelineSemantic is the Type-1 scan through the same engine.
func BenchmarkPipelineSemantic(b *testing.B) {
	corpus := study(b).DS.IDNs
	nbytes := corpusBytes(corpus)
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			b.SetBytes(nbytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.ScanSemantic(context.Background(), 1000, corpus, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSequentialHomograph is the no-engine baseline the pipeline
// numbers are judged against (same corpus, one resident detector).
func BenchmarkSequentialHomograph(b *testing.B) {
	corpus := study(b).DS.IDNs
	det := core.NewHomographDetector(1000)
	b.SetBytes(corpusBytes(corpus))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = det.Detect(corpus)
	}
}

// --- Ablations: the design choices DESIGN.md calls out. ---

// BenchmarkAblationSSIMvsMSE compares the paper's metric choice (§VI-B:
// "Compared to traditional similarity metrics like MSE, SSIM strikes a
// good balance between accuracy and runtime performance").
func BenchmarkAblationSSIMvsMSE(b *testing.B) {
	re := glyph.NewRenderer()
	width := len("facebook") * glyph.CellWidth
	target := re.RenderWidth("facebook", width)
	attack := re.RenderWidth("facebооk", width)
	b.Run("SSIM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ssim.Index(target, attack); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MSE", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ssim.MSE(target, attack); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPrefilter compares the skeleton-prefiltered detector
// against the paper's brute-force pair-wise sweep (102 hours on their
// testbed) on a fixed slice of the corpus, and fails if the prefilter
// loses recall.
func BenchmarkAblationPrefilter(b *testing.B) {
	st := study(b)
	corpus := st.DS.IDNs
	if len(corpus) > 300 {
		corpus = corpus[:300]
	}
	fast := core.NewHomographDetector(1000)
	brute := core.NewHomographDetector(1000, core.WithoutPrefilter())
	fastN := len(fast.Detect(corpus))
	bruteN := len(brute.Detect(corpus))
	if fastN < bruteN {
		b.Fatalf("prefilter lost recall: %d vs %d", fastN, bruteN)
	}
	b.Logf("matches on %d-domain slice: prefilter=%d brute=%d", len(corpus), fastN, bruteN)
	b.Run("prefilter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = fast.Detect(corpus)
		}
	})
	b.Run("bruteforce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = brute.Detect(corpus)
		}
	})
}

// BenchmarkAblationWindowSize varies the SSIM sliding window.
func BenchmarkAblationWindowSize(b *testing.B) {
	re := glyph.NewRenderer()
	width := len("facebook.com") * glyph.CellWidth
	x := re.RenderWidth("facebook.com", width)
	y := re.RenderWidth("faceboоk.com", width)
	for _, win := range []int{4, 8, 11} {
		b.Run("win-"+itoa(win), func(b *testing.B) {
			c := ssim.New(win)
			for i := 0; i < b.N; i++ {
				if _, err := c.Index(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- SSIM hot-path benchmarks (PR 2): the integral-image kernel, the
// brand-raster cache and the zero-alloc render path. `make bench-ssim`
// runs these and writes BENCH_ssim.json with old-vs-new numbers against
// the committed pre-PR baseline (BENCH_baseline_ssim.txt). ---

// BenchmarkScore times one detector Score call (single pair, steady
// state): candidate rendered into the reusable scratch, brand raster from
// the prerendered cache, one integral-image SSIM. The acceptance bar is
// ≥5× over the pre-PR baseline with 0 allocs/op.
func BenchmarkScore(b *testing.B) {
	det := core.NewHomographDetector(1000)
	label, brand := "facebооk", "facebook" // Cyrillic о's
	if det.Score(label, brand) <= 0 {
		b.Fatal("sanity: score should be positive")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = det.Score(label, brand)
	}
}

// BenchmarkWithoutPrefilter is the paper's brute-force pair-wise sweep
// (§VI-B, 102 hours on their testbed) over a fixed 300-domain slice —
// every candidate against every length-compatible brand, no skeleton
// prefilter. This is the workload the integral-image kernel and raster
// caches exist for.
func BenchmarkWithoutPrefilter(b *testing.B) {
	corpus := study(b).DS.IDNs
	if len(corpus) > 300 {
		corpus = corpus[:300]
	}
	brute := core.NewHomographDetector(1000, core.WithoutPrefilter())
	b.SetBytes(corpusBytes(corpus))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = brute.Detect(corpus)
	}
}

// benchKernelPair renders the fixed domain pair the kernel benchmarks
// compare.
func benchKernelPair() (x, y *image.Gray) {
	re := glyph.NewRenderer()
	width := len("facebook.com") * glyph.CellWidth
	return re.RenderWidth("facebook.com", width), re.RenderWidth("faceboôk.com", width)
}

// BenchmarkSSIMKernel times the integral-image SSIM kernel on one
// rendered domain pair (no rendering in the loop).
func BenchmarkSSIMKernel(b *testing.B) {
	x, y := benchKernelPair()
	c := ssim.New(ssim.DefaultWindow)
	b.SetBytes(int64(len(x.Pix) + len(y.Pix)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Index(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSSIMKernelNaive is the retained O(W·H·win²) reference kernel
// on the same pair — the in-tree half of the old-vs-new comparison.
func BenchmarkSSIMKernelNaive(b *testing.B) {
	x, y := benchKernelPair()
	c := ssim.New(ssim.DefaultWindow)
	b.SetBytes(int64(len(x.Pix) + len(y.Pix)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.IndexNaive(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMSEKernel times the summed-area-table MSE on the same pair.
func BenchmarkMSEKernel(b *testing.B) {
	x, y := benchKernelPair()
	c := ssim.New(ssim.DefaultWindow)
	b.SetBytes(int64(len(x.Pix) + len(y.Pix)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.MSE(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMSEKernelNaive is the direct-summation MSE reference.
func BenchmarkMSEKernelNaive(b *testing.B) {
	x, y := benchKernelPair()
	b.SetBytes(int64(len(x.Pix) + len(y.Pix)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ssim.MSE(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRenderWidthInto times the zero-alloc candidate render path in
// isolation (reused caller-owned buffer).
func BenchmarkRenderWidthInto(b *testing.B) {
	re := glyph.NewRenderer()
	width := len("facebook.com") * glyph.CellWidth
	var buf *image.Gray
	b.SetBytes(int64(width * glyph.CellHeight))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = re.RenderWidthInto(buf, "faceboôk.com", width)
	}
}

// BenchmarkPunycodeByLength shows the Bootstring cost profile over label
// lengths.
func BenchmarkPunycodeByLength(b *testing.B) {
	labels := map[string]string{
		"short-cjk":  "中国",
		"mid-cjk":    "北京交通大学",
		"long-mixed": "Hello-Another-Way-それぞれの場所",
	}
	for name, label := range labels {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := punycode.Encode(label); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
