// Package idnlab reproduces the measurement study "A Reexamination of
// Internationalized Domain Names: the Good, the Bad and the Ugly"
// (Liu et al., DSN 2018) as a reusable Go library.
//
// The package is a thin, stable facade over the internal implementation:
//
//   - Generate/Assemble build a synthetic-but-calibrated study universe
//     (zone files, WHOIS, passive DNS, blacklists, certificates, web
//     content) at a configurable fraction of the paper's 1.47M-IDN scale;
//   - Study runs every measurement and renders each of the paper's tables
//     and figures;
//   - the detectors find homographic IDNs (visual confusability via a
//     bitmap renderer + SSIM, §VI) and Type-1 semantic IDNs (brand +
//     foreign keyword, §VII) in any domain corpus — including real ones;
//   - ToASCII/ToUnicode/IsIDN expose the from-scratch IDNA/Punycode layer
//     for standalone use.
//
// Quick start:
//
//	ds, err := idnlab.NewDataset(1, 100) // seed 1, 1/100 of paper scale
//	if err != nil { ... }
//	study := idnlab.NewStudy(ds)
//	err = study.Run(os.Stdout) // prints every table and figure
//
// Or check a single domain:
//
//	det := idnlab.NewHomographDetector(1000)
//	if m, ok := det.DetectOne("xn--pple-43d.com"); ok {
//	    fmt.Println(m) // аpple.com (xn--pple-43d.com) ~ apple.com [SSIM 1.000]
//	}
package idnlab

import (
	"context"

	"idnlab/internal/browser"
	"idnlab/internal/core"
	"idnlab/internal/idna"
	"idnlab/internal/pipeline"
	"idnlab/internal/punycode"
	"idnlab/internal/zonegen"
)

// Re-exported core types. See the internal packages for full
// documentation of each method.
type (
	// Dataset is an assembled study corpus with all auxiliary stores.
	Dataset = core.Dataset
	// Study runs the full measurement and renders the paper's tables.
	Study = core.Study
	// HomographDetector finds visually confusable IDNs (paper §VI).
	HomographDetector = core.HomographDetector
	// SemanticDetector finds Type-1 semantic IDNs (paper §VII).
	SemanticDetector = core.SemanticDetector
	// HomographMatch is a homograph detection result.
	HomographMatch = core.HomographMatch
	// SemanticMatch is a semantic detection result.
	SemanticMatch = core.SemanticMatch
	// Type2Detector finds translated-brand IDNs (paper Table X).
	Type2Detector = core.Type2Detector
	// Type2Match is a Type-2 detection result.
	Type2Match = core.Type2Match
	// DetectorConfig configures per-worker detectors for pipelined scans.
	DetectorConfig = core.DetectorConfig
	// ScanMetrics is a per-stage snapshot of a pipelined corpus scan:
	// items in/out, errors, per-worker busy time, throughput.
	ScanMetrics = pipeline.Metrics
	// GenConfig parameterizes synthetic-universe generation.
	GenConfig = zonegen.Config
	// Registry is the generated synthetic universe.
	Registry = zonegen.Registry
	// BrowserProfile describes one surveyed browser build (Table XI).
	BrowserProfile = browser.Profile
)

// DefaultScale is the default down-scaling divisor relative to the
// paper's corpus (1,472,836 IDNs at scale 1).
const DefaultScale = zonegen.DefaultScale

// DefaultSSIMThreshold is the homograph detection threshold in this
// renderer's SSIM space (the analog of the paper's 0.95).
const DefaultSSIMThreshold = core.DefaultSSIMThreshold

// NewDataset generates a synthetic universe with the given seed and scale
// divisor and assembles the study corpus from it (zone scan plus all
// auxiliary stores).
func NewDataset(seed uint64, scale int) (*Dataset, error) {
	return core.NewDefaultDataset(seed, scale)
}

// Generate synthesizes just the registry (ground truth) without
// assembling the measurement corpus.
func Generate(cfg GenConfig) *Registry {
	return zonegen.Generate(cfg)
}

// Assemble builds the study corpus from a generated registry.
func Assemble(reg *Registry) (*Dataset, error) {
	return core.Assemble(reg)
}

// NewStudy wires a full study (language classifier + both detectors) over
// an assembled dataset.
func NewStudy(ds *Dataset) *Study {
	return core.NewStudy(ds)
}

// NewHomographDetector builds a homograph detector over the top-k brand
// list. Options: core.WithThreshold, core.WithoutPrefilter (re-exported
// below).
func NewHomographDetector(topK int, opts ...core.HomographOption) *HomographDetector {
	return core.NewHomographDetector(topK, opts...)
}

// WithThreshold overrides the detector's SSIM threshold.
func WithThreshold(t float64) core.HomographOption { return core.WithThreshold(t) }

// WithoutPrefilter switches the detector to brute-force pair-wise SSIM.
func WithoutPrefilter() core.HomographOption { return core.WithoutPrefilter() }

// NewSemanticDetector builds a Type-1 semantic detector over the top-k
// brand list.
func NewSemanticDetector(topK int) *SemanticDetector {
	return core.NewSemanticDetector(topK)
}

// NewType2Detector builds a translated-brand detector; pass nil to use
// the built-in brand translation dictionary.
func NewType2Detector(dict map[string][]string) *Type2Detector {
	return core.NewType2Detector(dict)
}

// DetectParallel scans a corpus for homographic IDNs with a worker pool,
// producing the same result as a sequential Detect.
//
// Deprecated: use ScanHomograph, which honors context cancellation and
// reports per-stage metrics.
func DetectParallel(cfg DetectorConfig, domains []string, workers int) []HomographMatch {
	return core.DetectParallel(cfg, domains, workers)
}

// ScanHomograph scans a corpus for homographic IDNs through the
// streaming pipeline engine: one detector per worker, order-preserving
// fan-in, clean cancellation via ctx. The matches are identical to a
// sequential Detect (sorted by brand then domain); workers <= 0 selects
// GOMAXPROCS.
func ScanHomograph(ctx context.Context, cfg DetectorConfig, domains []string, workers int) ([]HomographMatch, ScanMetrics, error) {
	return core.ScanHomograph(ctx, cfg, domains, workers)
}

// ScanSemantic scans a corpus for Type-1 semantic IDNs through the
// streaming pipeline engine; same contract as ScanHomograph.
func ScanSemantic(ctx context.Context, topK int, domains []string, workers int) ([]SemanticMatch, ScanMetrics, error) {
	return core.ScanSemantic(ctx, topK, domains, workers)
}

// ToASCII converts a Unicode domain to its ASCII-compatible (Punycode)
// form, e.g. "波色.com" -> "xn--0wwy37b.com".
func ToASCII(domain string) (string, error) { return idna.ToASCII(domain) }

// ToUnicode converts an ACE domain to its Unicode display form.
func ToUnicode(domain string) (string, error) { return idna.ToUnicode(domain) }

// IsIDN reports whether a domain (in either form) is internationalized.
func IsIDN(domain string) bool { return idna.IsIDN(domain) }

// EncodeLabel and DecodeLabel expose raw RFC 3492 Punycode for single
// labels without the "xn--" prefix handling.
func EncodeLabel(label string) (string, error) { return punycode.Encode(label) }

// DecodeLabel decodes a raw Punycode label.
func DecodeLabel(label string) (string, error) { return punycode.Decode(label) }

// BrowserSurvey returns the ten-browser, three-platform profile matrix of
// the paper's Table XI.
func BrowserSurvey() []BrowserProfile { return browser.Survey() }

// EvaluateBrowser derives the Table XI outcome cell for a profile by
// running its display policy against the attack corpus.
func EvaluateBrowser(p BrowserProfile) string { return browser.Evaluate(p).String() }
