module idnlab

go 1.22
