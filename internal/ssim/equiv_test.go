package ssim

// Equivalence layer for the integral-image kernel: the fast SSIM and MSE
// paths must agree with the retained naive references on every input —
// including degenerate shapes — within 1e-9 (in practice they are
// bit-identical, since both kernels see exact integer window sums and
// share windowStat).

import (
	"image"
	"math"
	"math/rand"
	"testing"

	"idnlab/internal/glyph"
)

// equivSizes covers the degenerate corners the kernel must survive:
// 0-width, 0-height, 1×1, single row/column, window-larger-than-image,
// realistic rendered-domain shapes (width ≫ height, CellHeight rows), and
// one shape past maxPackedPixels so the five-table wide path is exercised
// by every property test.
var equivSizes = [][2]int{
	{0, 0}, {0, 5}, {5, 0}, {1, 1}, {1, 7}, {7, 1}, {2, 2}, {3, 3},
	{8, 8}, {7, 11}, {11, 7}, {2, 33}, {33, 2}, {48, 15}, {90, 15},
	{260, 140}, // 36400 px > maxPackedPixels: wide kernel
}

func TestIndexMatchesNaiveProperty(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 42, 2018} {
		r := rand.New(rand.NewSource(seed))
		for _, sz := range equivSizes {
			a := randomGray(r, sz[0], sz[1])
			b := randomGray(r, sz[0], sz[1])
			for _, win := range []int{2, 3, 8, 16} {
				c := New(win)
				fast, errF := c.Index(a, b)
				naive, errN := c.IndexNaive(a, b)
				if (errF == nil) != (errN == nil) {
					t.Fatalf("seed %d size %v win %d: error mismatch %v vs %v", seed, sz, win, errF, errN)
				}
				if errF != nil {
					continue
				}
				if math.Abs(fast-naive) > 1e-9 {
					t.Fatalf("seed %d size %v win %d: fast %v vs naive %v", seed, sz, win, fast, naive)
				}
			}
		}
	}
}

func TestMSEMatchesNaiveProperty(t *testing.T) {
	c := New(DefaultWindow)
	for _, seed := range []int64{4, 5, 6, 77} {
		r := rand.New(rand.NewSource(seed))
		for _, sz := range equivSizes {
			a := randomGray(r, sz[0], sz[1])
			b := randomGray(r, sz[0], sz[1])
			fast, errF := c.MSE(a, b)
			naive, errN := MSE(a, b)
			if (errF == nil) != (errN == nil) {
				t.Fatalf("seed %d size %v: error mismatch %v vs %v", seed, sz, errF, errN)
			}
			if errF != nil {
				continue
			}
			if math.Abs(fast-naive) > 1e-9 {
				t.Fatalf("seed %d size %v: fast MSE %v vs naive %v", seed, sz, fast, naive)
			}
		}
	}
}

// TestIndexRefMatchesIndex pins the cached-reference path: IndexRef over a
// Precomputed table must be bit-identical to the plain pair kernel (and so,
// transitively, to IndexNaive) on every shape, including the table-less
// wide and empty fallbacks, and must reject mismatched sizes the same way.
func TestIndexRefMatchesIndex(t *testing.T) {
	for _, seed := range []int64{9, 13, 2018} {
		r := rand.New(rand.NewSource(seed))
		for _, sz := range equivSizes {
			a := randomGray(r, sz[0], sz[1])
			b := randomGray(r, sz[0], sz[1])
			rt := Precompute(a)
			if rt.Ref() != a {
				t.Fatalf("size %v: Ref() does not round-trip the image", sz)
			}
			for _, win := range []int{2, 8, 16} {
				c := New(win)
				pair, errP := c.Index(a, b)
				ref, errR := c.IndexRef(rt, b)
				if (errP == nil) != (errR == nil) {
					t.Fatalf("seed %d size %v win %d: error mismatch %v vs %v", seed, sz, win, errP, errR)
				}
				if errP != nil {
					continue
				}
				if pair != ref {
					t.Fatalf("seed %d size %v win %d: Index %v != IndexRef %v (want bit-identical)",
						seed, sz, win, pair, ref)
				}
			}
		}
	}
	// Mismatched candidate size must fail exactly like Index.
	rt := Precompute(image.NewGray(image.Rect(0, 0, 8, 8)))
	if _, err := New(8).IndexRef(rt, image.NewGray(image.Rect(0, 0, 7, 8))); err != ErrSizeMismatch {
		t.Fatalf("size mismatch: got %v, want ErrSizeMismatch", err)
	}
}

// TestIndexRefZeroAllocSteadyState: the cached-reference scan path must
// not allocate once the comparator scratch is sized.
func TestIndexRefZeroAllocSteadyState(t *testing.T) {
	re := glyph.NewRenderer()
	width := len("facebook.com") * glyph.CellWidth
	rt := Precompute(re.RenderWidth("facebook.com", width))
	y := re.RenderWidth("faceboôk.com", width)
	c := New(DefaultWindow)
	if _, err := c.IndexRef(rt, y); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := c.IndexRef(rt, y); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state IndexRef allocates %v per run, want 0", allocs)
	}
}

// TestEquivalenceOnRenderedDomains pins the equivalence on the images the
// detector actually compares: rendered domain pairs, including identical,
// single-mark and unrelated pairs.
func TestEquivalenceOnRenderedDomains(t *testing.T) {
	re := glyph.NewRenderer()
	width := len("facebook.com") * glyph.CellWidth
	target := re.RenderWidth("facebook.com", width)
	c := New(DefaultWindow)
	for _, domain := range []string{
		"facebook.com", "facebооk.com", "facebóok.com", "faceb00k.com",
		"yahoo.co.jp", "中文网址示例集合", "",
	} {
		img := re.RenderWidth(domain, width)
		fast, err1 := c.Index(target, img)
		naive, err2 := c.IndexNaive(target, img)
		if err1 != nil || err2 != nil {
			t.Fatalf("%q: %v / %v", domain, err1, err2)
		}
		if fast != naive {
			t.Errorf("%q: fast %v != naive %v (want bit-identical)", domain, fast, naive)
		}
		fm, err := c.MSE(target, img)
		if err != nil {
			t.Fatal(err)
		}
		nm, _ := MSE(target, img)
		if fm != nm {
			t.Errorf("%q: fast MSE %v != naive %v", domain, fm, nm)
		}
	}
}

// TestWindowClamping pins the clamping behavior the former count==0
// fallback pretended to handle: after win is clamped to min(window, w, h)
// the window loops always execute, so 1×1 images and windows larger than
// either dimension take the normal path.
func TestWindowClamping(t *testing.T) {
	// 1×1 identical images: variance 0, so SSIM is exactly 1.
	one := image.NewGray(image.Rect(0, 0, 1, 1))
	one.Pix[0] = 137
	for _, win := range []int{2, 8, 100} {
		v, err := New(win).Index(one, one)
		if err != nil {
			t.Fatal(err)
		}
		if v != 1 {
			t.Errorf("win %d on 1×1 identical: SSIM = %v, want exactly 1", win, v)
		}
	}
	// 1×1 differing images: still defined, still in [-1, 1].
	two := image.NewGray(image.Rect(0, 0, 1, 1))
	two.Pix[0] = 9
	v, err := New(64).Index(one, two)
	if err != nil {
		t.Fatal(err)
	}
	if v < -1 || v > 1 {
		t.Errorf("1×1 differing SSIM out of range: %v", v)
	}
	// Window larger than both dimensions degrades to one global window:
	// the result must equal the explicitly-global comparison.
	r := rand.New(rand.NewSource(8))
	a := randomGray(r, 5, 3)
	b := randomGray(r, 5, 3)
	big, err := New(999).Index(a, b)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := New(999).IndexNaive(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if big != naive {
		t.Errorf("win>dims: fast %v != naive %v", big, naive)
	}
}

// TestComparatorScratchReuseIsClean verifies the reusable summed-area
// buffer cannot leak state between pairs of different sizes: growing then
// shrinking then growing again always reproduces fresh-comparator results.
func TestComparatorScratchReuseIsClean(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	c := New(DefaultWindow)
	shapes := [][2]int{{40, 15}, {6, 6}, {90, 15}, {1, 1}, {40, 15}}
	for i, sz := range shapes {
		a := randomGray(r, sz[0], sz[1])
		b := randomGray(r, sz[0], sz[1])
		reused, err := c.Index(a, b)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := New(DefaultWindow).Index(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if reused != fresh {
			t.Fatalf("step %d size %v: reused scratch %v != fresh %v", i, sz, reused, fresh)
		}
		m1, err := c.MSE(a, b)
		if err != nil {
			t.Fatal(err)
		}
		m2, _ := MSE(a, b)
		if m1 != m2 {
			t.Fatalf("step %d size %v: reused MSE %v != naive %v", i, sz, m1, m2)
		}
	}
}

// TestIndexZeroAllocSteadyState pins the kernel's allocation contract:
// after the first call sizes the scratch, comparisons allocate nothing.
func TestIndexZeroAllocSteadyState(t *testing.T) {
	re := glyph.NewRenderer()
	width := len("facebook.com") * glyph.CellWidth
	x := re.RenderWidth("facebook.com", width)
	y := re.RenderWidth("faceboôk.com", width)
	c := New(DefaultWindow)
	if _, err := c.Index(x, y); err != nil { // size the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := c.Index(x, y); err != nil {
			t.Fatal(err)
		}
		if _, err := c.MSE(x, y); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Index+MSE allocates %v per run, want 0", allocs)
	}
}

// TestIndexRefBoundedContract pins the early-exit kernel's two-sided
// contract against IndexRef on random images, similar pairs (mostly
// identical pixels, so scores land near 1 where the floors bite), and
// every degenerate shape: ok=true must come with a bit-identical score
// ≥ floor, ok=false must only ever happen when the exact score is
// strictly below the floor.
func TestIndexRefBoundedContract(t *testing.T) {
	floors := []float64{-2, 0, 0.5, 0.9, 0.95, 0.98, 0.999, 1, 1.5}
	for _, seed := range []int64{1, 9, 2018} {
		r := rand.New(rand.NewSource(seed))
		for _, sz := range equivSizes {
			a := randomGray(r, sz[0], sz[1])
			for _, mode := range []string{"random", "similar"} {
				var b *image.Gray
				if mode == "random" {
					b = randomGray(r, sz[0], sz[1])
				} else {
					b = image.NewGray(a.Rect)
					copy(b.Pix, a.Pix)
					for i := 0; i < len(b.Pix)/37; i++ {
						b.Pix[r.Intn(len(b.Pix))] ^= byte(r.Intn(256))
					}
				}
				for _, win := range []int{2, 8} {
					c := New(win)
					exact, errE := c.IndexRef(Precompute(a), b)
					for _, floor := range floors {
						got, ok, err := New(win).IndexRefBounded(Precompute(a), b, floor)
						if (err == nil) != (errE == nil) {
							t.Fatalf("size %v floor %v: error mismatch %v vs %v", sz, floor, err, errE)
						}
						if err != nil {
							continue
						}
						if ok {
							if got != exact {
								t.Fatalf("size %v win %d floor %v: ok but %v != exact %v", sz, win, floor, got, exact)
							}
							if got < floor {
								t.Fatalf("size %v win %d floor %v: ok with score %v below floor", sz, win, floor, got)
							}
						} else if !(exact < floor) {
							t.Fatalf("size %v win %d floor %v: early exit but exact %v >= floor", sz, win, floor, exact)
						}
					}
				}
			}
		}
	}
}

// TestIndexRefBoundedZeroAlloc: the bounded path must stay on the
// comparator's scratch like IndexRef does.
func TestIndexRefBoundedZeroAlloc(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	a := randomGray(r, 96, 15)
	b := randomGray(r, 96, 15)
	c := New(DefaultWindow)
	rt := Precompute(a)
	if _, _, err := c.IndexRefBounded(rt, b, 0.98); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := c.IndexRefBounded(rt, b, 0.98); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("IndexRefBounded allocates %v per call", allocs)
	}
}
