package ssim

import (
	"image"
	"math"
	"math/rand"
	"testing"
)

// randGrayRS fills a w×h grayscale image (with a deliberately padded
// stride, to catch kernels that assume Stride == width).
func randGrayRS(rng *rand.Rand, w, h int) *image.Gray {
	img := image.NewGray(image.Rect(0, 0, w, h))
	img.Stride = w + 3
	img.Pix = make([]uint8, img.Stride*h)
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(256))
	}
	return img
}

// cloneWithRect copies a and re-randomizes only the rectangle of columns
// [x0, x1) and rows [y0, y1).
func cloneWithRect(rng *rand.Rand, a *image.Gray, x0, x1, y0, y1 int) *image.Gray {
	b := image.NewGray(a.Rect)
	b.Stride = a.Stride
	b.Pix = append([]uint8(nil), a.Pix...)
	w, h := a.Rect.Dx(), a.Rect.Dy()
	for y := max(0, y0); y < min(y1, h); y++ {
		for x := max(0, x0); x < min(x1, w); x++ {
			b.Pix[y*b.Stride+x] = uint8(rng.Intn(256))
		}
	}
	return b
}

// cloneWithCols copies a and re-randomizes only columns [x0, x1).
func cloneWithCols(rng *rand.Rand, a *image.Gray, x0, x1 int) *image.Gray {
	return cloneWithRect(rng, a, x0, x1, 0, a.Rect.Dy())
}

// TestIndexRefSubBitIdentical pins the changed-columns kernel to IndexRef
// bitwise: for images differing only inside [x0, x1), IndexRefSub must
// return the exact float64 IndexRef computes, across window clamping,
// edge-touching ranges, empty ranges and out-of-bounds ranges.
func TestIndexRefSubBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	c := New(DefaultWindow)
	dims := []struct{ w, h int }{
		{36, 11}, {48, 11}, {8, 8}, {9, 8}, {5, 11}, {2, 2}, {64, 17},
	}
	for _, d := range dims {
		a := randGrayRS(rng, d.w, d.h)
		rt := Precompute(a)
		ranges := [][2]int{
			{0, 1}, {0, d.w}, {d.w - 1, d.w}, {d.w / 2, d.w/2 + 1},
			{d.w / 3, 2 * d.w / 3}, {5, 5}, {0, 0}, {-3, 2}, {d.w - 2, d.w + 7},
		}
		for r := 0; r < 6; r++ {
			lo := rng.Intn(d.w + 1)
			hi := lo + rng.Intn(d.w+1-lo)
			ranges = append(ranges, [2]int{lo, hi})
		}
		for _, pr := range ranges {
			b := cloneWithCols(rng, a, pr[0], pr[1])
			want, err := c.IndexRef(rt, b)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.IndexRefSub(rt, b, pr[0], pr[1])
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%dx%d cols [%d,%d): IndexRefSub = %v (%x), IndexRef = %v (%x)",
					d.w, d.h, pr[0], pr[1], got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
	}
}

// TestIndexRefSubRectBitIdentical pins the rectangle-restricted kernel to
// IndexRef bitwise: for images differing only inside a column and row
// rectangle, IndexRefSubRect must return the exact float64 IndexRef
// computes, including rectangles hugging the image edges, single-row
// bands (the diacritic-mark case) and degenerate empty rectangles.
func TestIndexRefSubRectBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	c := New(DefaultWindow)
	dims := []struct{ w, h int }{
		{36, 11}, {48, 11}, {8, 8}, {9, 9}, {5, 11}, {2, 2}, {64, 17},
	}
	for _, d := range dims {
		a := randGrayRS(rng, d.w, d.h)
		rt := Precompute(a)
		rects := [][4]int{
			{0, 5, 0, 2},                         // top-left mark band
			{0, 5, d.h - 2, d.h},                 // bottom mark band
			{d.w / 2, d.w/2 + 3, 0, 1},           // single row
			{0, d.w, 0, d.h},                     // full image
			{3, 4, 3, 4},                         // single pixel
			{2, 2, 0, d.h},                       // empty columns
			{0, d.w, 5, 5},                       // empty rows
			{-2, 3, -1, 2},                       // clamped low
			{d.w - 1, d.w + 4, d.h - 1, d.h + 3}, // clamped high
		}
		for r := 0; r < 8; r++ {
			x0 := rng.Intn(d.w + 1)
			x1 := x0 + rng.Intn(d.w+1-x0)
			y0 := rng.Intn(d.h + 1)
			y1 := y0 + rng.Intn(d.h+1-y0)
			rects = append(rects, [4]int{x0, x1, y0, y1})
		}
		for _, pr := range rects {
			b := cloneWithRect(rng, a, pr[0], pr[1], pr[2], pr[3])
			want, err := c.IndexRef(rt, b)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.IndexRefSubRect(rt, b, pr[0], pr[1], pr[2], pr[3])
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%dx%d rect %v: IndexRefSubRect = %v (%x), IndexRef = %v (%x)",
					d.w, d.h, pr, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
	}
}

// TestIndexRefSubPatchBitIdentical pins the zero-materialization form: for
// a candidate that is never rendered — the reference plus a small pixel
// patch — IndexRefSubPatch must return the exact float64 IndexRef computes
// on the materialized candidate image.
func TestIndexRefSubPatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	c := New(DefaultWindow)
	dims := []struct{ w, h int }{
		{36, 11}, {48, 11}, {8, 8}, {9, 9}, {5, 11}, {2, 2}, {64, 17},
	}
	for _, d := range dims {
		a := randGrayRS(rng, d.w, d.h)
		rt := Precompute(a)
		rects := [][4]int{
			{0, 5, 0, 2}, {d.w / 2, d.w/2 + 3, 0, 1}, {0, d.w, 0, d.h}, {3, 4, 3, 4},
		}
		for r := 0; r < 8; r++ {
			x0 := rng.Intn(d.w)
			x1 := x0 + 1 + rng.Intn(d.w-x0)
			y0 := rng.Intn(d.h)
			y1 := y0 + 1 + rng.Intn(d.h-y0)
			rects = append(rects, [4]int{x0, x1, y0, y1})
		}
		for _, pr := range rects {
			x0, x1, y0, y1 := pr[0], min(pr[1], d.w), pr[2], min(pr[3], d.h)
			if x0 >= x1 || y0 >= y1 {
				continue
			}
			// Build a random patch, materialize it into a candidate image,
			// and compare the two scoring routes.
			bw := x1 - x0
			patch := make([]byte, bw*(y1-y0))
			for i := range patch {
				patch[i] = uint8(rng.Intn(256))
			}
			b := cloneWithRect(rng, a, 0, 0, 0, 0) // exact copy
			for y := y0; y < y1; y++ {
				copy(b.Pix[y*b.Stride+x0:y*b.Stride+x1], patch[(y-y0)*bw:(y-y0+1)*bw])
			}
			want, err := c.IndexRef(rt, b)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.IndexRefSubPatch(rt, x0, x1, y0, y1, patch)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%dx%d rect %v: IndexRefSubPatch = %v (%x), IndexRef = %v (%x)",
					d.w, d.h, pr, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
	}
}

// TestIndexRefSubPatchErrors covers the patch kernel's contract checks:
// unpacked tables, out-of-bounds or empty rectangles, and short patches.
func TestIndexRefSubPatchErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	c := New(DefaultWindow)
	a := randGrayRS(rng, 20, 11)
	rt := Precompute(a)
	patch := make([]byte, 20*11)
	cases := [][4]int{
		{-1, 3, 0, 2}, {0, 0, 0, 2}, {0, 21, 0, 2}, {0, 3, 5, 5}, {0, 3, 0, 12},
	}
	for _, pr := range cases {
		if _, err := c.IndexRefSubPatch(rt, pr[0], pr[1], pr[2], pr[3], patch); err == nil {
			t.Fatalf("rect %v: expected error", pr)
		}
	}
	if _, err := c.IndexRefSubPatch(rt, 0, 5, 0, 5, patch[:24]); err == nil {
		t.Fatal("short patch: expected error")
	}
	wide := randGrayRS(rng, 3100, 11)
	if _, err := c.IndexRefSubPatch(Precompute(wide), 0, 5, 0, 5, patch); err == nil {
		t.Fatal("unpacked table: expected error")
	}
}

// TestIndexRefSubPatchZeroAlloc pins the steady-state allocation count of
// the patch kernel: scoring a patch against a warm Comparator must not
// allocate.
func TestIndexRefSubPatchZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	c := New(DefaultWindow)
	a := randGrayRS(rng, 36, 11)
	rt := Precompute(a)
	patch := make([]byte, 5*11)
	for i := range patch {
		patch[i] = uint8(rng.Intn(256))
	}
	if _, err := c.IndexRefSubPatch(rt, 12, 17, 0, 11, patch); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := c.IndexRefSubPatch(rt, 12, 17, 0, 11, patch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("IndexRefSubPatch allocates %v per call in steady state", allocs)
	}
}

// TestRefSubPatchAboveMatchesExact pins the certified threshold predicate
// to the exact kernel: RefSubPatchAbove(..., T) must equal
// IndexRefSubPatch(...) >= T for every threshold, including T exactly at
// the score and one ULP on either side of it — the degenerate cases that
// force the predicate through its exact-sweep fallback.
func TestRefSubPatchAboveMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	c := New(DefaultWindow)
	dims := []struct{ w, h int }{
		{36, 11}, {60, 11}, {9, 9}, {2, 2}, {64, 17},
	}
	for _, d := range dims {
		a := randGrayRS(rng, d.w, d.h)
		rt := Precompute(a)
		for trial := 0; trial < 10; trial++ {
			x0 := rng.Intn(d.w)
			x1 := x0 + 1 + rng.Intn(min(6, d.w-x0))
			y0 := rng.Intn(d.h)
			y1 := y0 + 1 + rng.Intn(d.h-y0)
			bw := x1 - x0
			patch := make([]byte, bw*(y1-y0))
			for i := range patch {
				patch[i] = uint8(rng.Intn(256))
			}
			score, err := c.IndexRefSubPatch(rt, x0, x1, y0, y1, patch)
			if err != nil {
				t.Fatal(err)
			}
			thresholds := []float64{
				score,
				math.Nextafter(score, 2),
				math.Nextafter(score, -2),
				score - 1e-10,
				score + 1e-10,
				0.98, 0.5, 0, 1, -1, 2,
				rng.Float64()*2 - 0.5,
			}
			for _, th := range thresholds {
				got, err := c.RefSubPatchAbove(rt, x0, x1, y0, y1, patch, th)
				if err != nil {
					t.Fatal(err)
				}
				if want := score >= th; got != want {
					t.Fatalf("%dx%d rect [%d,%d)x[%d,%d): Above(%v) = %v, score %v",
						d.w, d.h, x0, x1, y0, y1, th, got, score)
				}
			}
		}
	}
}

// TestRefSubPatchAboveZeroAlloc pins the predicate's steady-state
// allocation count: the availability sweep's per-candidate call must not
// allocate.
func TestRefSubPatchAboveZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	c := New(DefaultWindow)
	a := randGrayRS(rng, 36, 11)
	rt := Precompute(a)
	patch := make([]byte, 5*8)
	for i := range patch {
		patch[i] = uint8(rng.Intn(256))
	}
	if _, err := c.RefSubPatchAbove(rt, 12, 17, 2, 10, patch, 0.98); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := c.RefSubPatchAbove(rt, 12, 17, 2, 10, patch, 0.98); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("RefSubPatchAbove allocates %v per call in steady state", allocs)
	}
}

// TestIndexRefSubIdenticalImages pins the empty-range short cut: an
// unchanged candidate must score exactly 1.0, matching IndexRef on a
// bit-identical pair.
func TestIndexRefSubIdenticalImages(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := New(DefaultWindow)
	a := randGrayRS(rng, 30, 11)
	rt := Precompute(a)
	b := cloneWithCols(rng, a, 0, 0)
	want, err := c.IndexRef(rt, b)
	if err != nil {
		t.Fatal(err)
	}
	if want != 1.0 {
		t.Fatalf("IndexRef on identical images = %v, want exactly 1.0", want)
	}
	got, err := c.IndexRefSub(rt, b, 7, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1.0 {
		t.Fatalf("IndexRefSub empty range = %v, want exactly 1.0", got)
	}
}

// TestIndexRefSubWideFallback covers the table-less RefTable path (images
// beyond the packed bound) and the size-mismatch error.
func TestIndexRefSubWideFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	c := New(DefaultWindow)
	w, h := 3100, 11 // 34100 pixels > maxPackedPixels
	a := randGrayRS(rng, w, h)
	rt := Precompute(a)
	if rt.t != nil {
		t.Fatalf("expected table-less RefTable for %d pixels", w*h)
	}
	b := cloneWithCols(rng, a, 100, 140)
	want, err := c.Index(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.IndexRefSub(rt, b, 100, 140)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("wide fallback: IndexRefSub = %v, Index = %v", got, want)
	}

	small := randGrayRS(rng, 10, 10)
	if _, err := c.IndexRefSub(rt, small, 0, 1); err != ErrSizeMismatch {
		t.Fatalf("size mismatch error = %v, want ErrSizeMismatch", err)
	}
}

// TestIndexRefSubZeroAlloc pins the steady-state allocation count of the
// changed-columns kernel: after warm-up, scoring patched candidates must
// not allocate.
func TestIndexRefSubZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	c := New(DefaultWindow)
	a := randGrayRS(rng, 36, 11)
	rt := Precompute(a)
	b := cloneWithCols(rng, a, 12, 17)
	if _, err := c.IndexRefSub(rt, b, 12, 17); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := c.IndexRefSub(rt, b, 12, 17); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("IndexRefSub allocates %v per call in steady state", allocs)
	}
}
