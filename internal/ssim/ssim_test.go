package ssim

import (
	"image"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"idnlab/internal/glyph"
)

func randomGray(r *rand.Rand, w, h int) *image.Gray {
	img := image.NewGray(image.Rect(0, 0, w, h))
	for i := range img.Pix {
		img.Pix[i] = uint8(r.Intn(256))
	}
	return img
}

func TestIdenticalImagesScoreOne(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	img := randomGray(r, 40, 11)
	got, err := Index(img, img)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("SSIM(a,a) = %v, want 1", got)
	}
}

func TestSymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a := randomGray(r, 30, 11)
	b := randomGray(r, 30, 11)
	ab, err := Index(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := Index(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ab-ba) > 1e-12 {
		t.Errorf("SSIM not symmetric: %v vs %v", ab, ba)
	}
}

func TestBounds(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		a := randomGray(r, 20, 11)
		b := randomGray(r, 20, 11)
		v, err := Index(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if v < -1-1e-9 || v > 1+1e-9 {
			t.Fatalf("SSIM out of [-1,1]: %v", v)
		}
	}
}

func TestInverseImagesScoreLow(t *testing.T) {
	a := image.NewGray(image.Rect(0, 0, 16, 16))
	b := image.NewGray(image.Rect(0, 0, 16, 16))
	for i := range a.Pix {
		if (i/16+i%16)%2 == 0 {
			a.Pix[i] = 255
			b.Pix[i] = 0
		} else {
			a.Pix[i] = 0
			b.Pix[i] = 255
		}
	}
	v, err := Index(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if v > -0.5 {
		t.Errorf("inverse checkerboards scored %v, want strongly negative", v)
	}
}

func TestSizeMismatch(t *testing.T) {
	a := image.NewGray(image.Rect(0, 0, 10, 11))
	b := image.NewGray(image.Rect(0, 0, 12, 11))
	if _, err := Index(a, b); err != ErrSizeMismatch {
		t.Errorf("err = %v, want ErrSizeMismatch", err)
	}
	if _, err := MSE(a, b); err != ErrSizeMismatch {
		t.Errorf("MSE err = %v, want ErrSizeMismatch", err)
	}
}

func TestEmptyImages(t *testing.T) {
	a := image.NewGray(image.Rect(0, 0, 0, 0))
	v, err := Index(a, a)
	if err != nil || v != 1 {
		t.Errorf("empty SSIM = %v, %v", v, err)
	}
}

func TestSmallImageDegradesToGlobalWindow(t *testing.T) {
	a := image.NewGray(image.Rect(0, 0, 3, 3))
	for i := range a.Pix {
		a.Pix[i] = 200
	}
	v, err := Index(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-9 {
		t.Errorf("tiny identical images = %v, want 1", v)
	}
}

// TestHomographOrdering is the load-bearing property for the detector: the
// SSIM of a homographic rendering against its target must exceed the SSIM
// of an unrelated domain, and small diacritic changes must stay above the
// paper's 0.95 threshold while different strings fall below it.
func TestHomographOrdering(t *testing.T) {
	re := glyph.NewRenderer()
	width := len("google.com") * glyph.CellWidth
	target := re.RenderWidth("google.com", width)

	cases := []struct {
		domain  string
		atLeast float64
		below   float64
	}{
		{"google.com", 1.0, 1.01},  // identical
		{"gооgle.com", 1.0, 1.01},  // Cyrillic о's — pixel identical
		{"googlé.com", 0.985, 1.0}, // one acute accent
		{"gõogle.com", 0.985, 1.0}, // one tilde
		{"goögle.com", 0.985, 1.0}, // one diaeresis
		{"boogle.com", 0.9, 0.985}, // different letter: below the mark band
		{"yahoo!.com", -1.0, 0.9},  // different brand
	}
	for _, tc := range cases {
		img := re.RenderWidth(tc.domain, width)
		v, err := Index(target, img)
		if err != nil {
			t.Fatal(err)
		}
		if v < tc.atLeast-1e-9 || v >= tc.below {
			t.Errorf("SSIM(google.com, %s) = %.4f, want [%v, %v)", tc.domain, v, tc.atLeast, tc.below)
		}
	}
}

func TestSSIMMonotoneInPerturbation(t *testing.T) {
	// More replaced letters => lower similarity, mirroring Table XII's
	// descending ladder.
	re := glyph.NewRenderer()
	width := len("facebook.com") * glyph.CellWidth
	target := re.RenderWidth("facebook.com", width)
	ladder := []string{
		"facebook.com", // 0 changes
		"facebóok.com", // 1 mark
		"fácebóok.com", // 2 marks
		"fáçebóok.com", // 3 marks
		"fáçebóök.com", // 4 marks
	}
	prev := 1.1
	for _, d := range ladder {
		img := re.RenderWidth(d, width)
		v, err := Index(target, img)
		if err != nil {
			t.Fatal(err)
		}
		if v >= prev+1e-9 {
			t.Errorf("SSIM(%s) = %.4f, not below previous %.4f", d, v, prev)
		}
		prev = v
	}
}

func TestMSEProperties(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	a := randomGray(r, 25, 11)
	if v, err := MSE(a, a); err != nil || v != 0 {
		t.Errorf("MSE(a,a) = %v, %v", v, err)
	}
	b := randomGray(r, 25, 11)
	ab, _ := MSE(a, b)
	ba, _ := MSE(b, a)
	if ab != ba {
		t.Error("MSE not symmetric")
	}
	if ab < 0 {
		t.Error("MSE negative")
	}
}

func TestPSNR(t *testing.T) {
	if !math.IsInf(PSNR(0), 1) {
		t.Error("PSNR(0) should be +Inf")
	}
	if PSNR(100) >= PSNR(10) {
		t.Error("PSNR should decrease with MSE")
	}
}

func TestQuickBoundsAndSymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func(seedA, seedB int64) bool {
		w := 8 + int(uint(seedA)%24)
		a := randomGray(rand.New(rand.NewSource(seedA)), w, 11)
		b := randomGray(rand.New(rand.NewSource(seedB)), w, 11)
		ab, err1 := Index(a, b)
		ba, err2 := Index(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(ab-ba) < 1e-12 && ab >= -1-1e-9 && ab <= 1+1e-9
	}
	cfg := &quick.Config{MaxCount: 60, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestWindowSizeSensitivity(t *testing.T) {
	// Smaller windows localize differences; results must stay in bounds
	// and keep identical == 1 for any window.
	re := glyph.NewRenderer()
	width := len("apple.com") * glyph.CellWidth
	a := re.RenderWidth("apple.com", width)
	b := re.RenderWidth("âpple.com", width)
	for _, win := range []int{2, 4, 8, 11, 16} {
		c := New(win)
		self, err := c.Index(a, a)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(self-1) > 1e-9 {
			t.Errorf("window %d: self SSIM = %v", win, self)
		}
		cross, err := c.Index(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if cross >= 1 || cross < -1 {
			t.Errorf("window %d: cross SSIM = %v out of range", win, cross)
		}
	}
}

func BenchmarkIndexDomainPair(b *testing.B) {
	re := glyph.NewRenderer()
	width := len("facebook.com") * glyph.CellWidth
	x := re.RenderWidth("facebook.com", width)
	y := re.RenderWidth("faceboôk.com", width)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Index(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMSEDomainPair(b *testing.B) {
	re := glyph.NewRenderer()
	width := len("facebook.com") * glyph.CellWidth
	x := re.RenderWidth("facebook.com", width)
	y := re.RenderWidth("faceboôk.com", width)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MSE(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
