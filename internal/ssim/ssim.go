// Package ssim implements the Structural Similarity (SSIM) index of Wang,
// Bovik, Sheikh and Simoncelli ("Image quality assessment: from error
// visibility to structural similarity", IEEE TIP 2004) on grayscale images,
// plus the mean-squared-error baseline the paper contrasts it with (§VI-B).
//
// The paper's homograph detector computes a pair-wise SSIM index between a
// rendered IDN and each rendered brand domain, flagging the IDN as
// homographic when the maximum index exceeds 0.95. SSIM outputs lie in
// [-1, 1], with 1 meaning perfectly identical images.
//
// # Kernel
//
// The mean SSIM is an average over every stride-1 window position, and each
// window needs five sums (Σa, Σb, Σa², Σb², Σab). Computing them from the
// pixels at every position costs O(W·H·win²) multiply-adds per pair — the
// cost profile behind the paper's 102-hour brute-force sweep. A Comparator
// instead builds summed-area tables (integral images) once per pair,
// O(W·H), after which any window's five sums are a handful of table
// lookups: the whole index becomes O(W·H) regardless of window size.
//
// Two exactness properties make the fast kernel safe to substitute for the
// reference loop:
//
//   - The tables are integer-exact. Pixels are uint8, so every window sum
//     is an integer far below 2^53; uint64 table arithmetic and the
//     float64 conversions downstream are all lossless. For images up to
//     maxPackedPixels the kernel packs each image's (Σx, Σx²) into the
//     two 32-bit halves of one uint64 table — three tables per pair
//     instead of five, which is where the build spends its time — with
//     overflow and carry/borrow-freedom guaranteed by the pixel-count
//     bound. Packing per image (rather than across the pair) also lets a
//     RefTable cache a reference image's table, so scans that compare
//     many candidates against a fixed brand raster rebuild only the
//     candidate's table and the cross table per call (IndexRef).
//   - Both kernels fold window sums through the same windowStat
//     expression, so the integral-image path is bit-identical to
//     IndexNaive — pinned by property tests and the byte-exact golden
//     report.
//
// The tables live in a scratch buffer owned by the Comparator and are
// reused across calls, so a steady-state corpus scan performs zero
// allocations per comparison. A Comparator is consequently not safe for
// concurrent use; give each goroutine its own (they are cheap).
package ssim

import (
	"errors"
	"image"
	"math"
)

// Default parameters from the SSIM paper: an 8x8 sliding window and
// stabilization constants derived from K1=0.01, K2=0.03 at dynamic range
// L=255.
const (
	DefaultWindow = 8
	k1            = 0.01
	k2            = 0.03
	dynamicRange  = 255.0
)

// maxPackedPixels bounds the packed three-table fast path: with
// w*h ≤ 33000 every per-half table value is at most 255²·33000 < 2^31,
// so adding two table entries cannot carry across the 32-bit boundary and
// the four-corner subtraction cannot borrow (window sums are
// non-negative). Larger images take the five-table wide path.
const maxPackedPixels = 33000

// ErrSizeMismatch reports two images with different dimensions; the caller
// decides the padding policy (package glyph renders fixed-width pairs).
var ErrSizeMismatch = errors.New("ssim: image dimensions differ")

// Comparator computes SSIM indices with a fixed window size. The zero value
// is not usable; use New. A Comparator owns a reusable summed-area-table
// scratch buffer and is therefore not safe for concurrent use.
type Comparator struct {
	window int
	c1, c2 float64
	buf    []uint64 // summed-area scratch, grown on demand, reused per pair
}

// New returns a Comparator with the given sliding-window size. Sizes
// smaller than 2 or larger than either image dimension at comparison time
// degrade to a single global window.
func New(window int) *Comparator {
	if window < 2 {
		window = 2
	}
	return &Comparator{
		window: window,
		c1:     (k1 * dynamicRange) * (k1 * dynamicRange),
		c2:     (k2 * dynamicRange) * (k2 * dynamicRange),
	}
}

// scratch returns the reusable buffer resized to n zero-padding-safe
// elements (contents beyond the zeroed regions are overwritten by the
// builders).
func (c *Comparator) scratch(n int) []uint64 {
	if cap(c.buf) < n {
		c.buf = make([]uint64, n)
	}
	return c.buf[:n]
}

// Index computes the mean SSIM index between two equal-sized grayscale
// images: the per-window SSIM averaged over all window positions (stride
// 1), in O(W·H) total via the integral-image kernel. Results are
// bit-identical to IndexNaive.
func (c *Comparator) Index(a, b *image.Gray) (float64, error) {
	w, h := a.Rect.Dx(), a.Rect.Dy()
	if w != b.Rect.Dx() || h != b.Rect.Dy() {
		return 0, ErrSizeMismatch
	}
	if w == 0 || h == 0 {
		return 1, nil // two empty images are identical
	}
	win := min(c.window, w, h)
	if w*h <= maxPackedPixels {
		return c.indexPacked(a, b, w, h, win), nil
	}
	return c.indexWide(a, b, w, h, win), nil
}

// indexPacked is the three-table kernel for images within
// maxPackedPixels: tables tA and tB each hold one image's Σx in the low
// and Σx² in the high 32 bits, and tX holds Σab alone.
func (c *Comparator) indexPacked(a, b *image.Gray, w, h, win int) float64 {
	stride := w + 1
	n := stride * (h + 1)
	buf := c.scratch(3 * n)
	tA := buf[0*n : 1*n]
	tB := buf[1*n : 2*n]
	tX := buf[2*n : 3*n]
	for x := 0; x < stride; x++ {
		tA[x], tB[x], tX[x] = 0, 0, 0
	}
	for y := 0; y < h; y++ {
		rowA := a.Pix[y*a.Stride : y*a.Stride+w]
		rowB := b.Pix[y*b.Stride : y*b.Stride+w]
		prevA := tA[y*stride : (y+1)*stride]
		curA := tA[(y+1)*stride : (y+2)*stride]
		prevB := tB[y*stride : (y+1)*stride]
		curB := tB[(y+1)*stride : (y+2)*stride]
		prevX := tX[y*stride : (y+1)*stride]
		curX := tX[(y+1)*stride : (y+2)*stride]
		curA[0], curB[0], curX[0] = 0, 0, 0
		var ra, rb, rx uint64 // running row sums; ra/rb packed Σx|Σx²<<32
		for x := 0; x < w; x++ {
			pa := uint64(rowA[x])
			pb := uint64(rowB[x])
			ra += pa | (pa*pa)<<32
			rb += pb | (pb*pb)<<32
			rx += pa * pb
			curA[x+1] = prevA[x+1] + ra
			curB[x+1] = prevB[x+1] + rb
			curX[x+1] = prevX[x+1] + rx
		}
	}
	return packedWindows(tA, tB, tX, stride, w, h, win, c.c1, c.c2)
}

// packedWindows sweeps every window position over the packed self tables
// tA, tB and the cross table tX, averaging windowStat. Shared by
// indexPacked and IndexRef so both are bit-identical by construction.
func packedWindows(tA, tB, tX []uint64, stride, w, h, win int, c1, c2 float64) float64 {
	v, _ := packedWindowsBounded(tA, tB, tX, stride, w, h, win, c1, c2, math.Inf(-1))
	return v
}

// boundSlack credits a not-yet-swept window with slightly more than the
// mathematical per-window maximum of 1 when deciding whether the mean
// can still reach a floor: windowStat's two factors are each ≤ 1 in
// exact arithmetic, but the computed value can exceed 1 by an ulp, and
// an early exit must only ever fire on a sweep whose exact final mean is
// strictly below the floor.
const boundSlack = 1 + 1e-7

// packedWindowsBounded is packedWindows with an early-exit floor: after
// each row of windows it checks whether crediting every remaining window
// with boundSlack could still lift the mean to floor; if not, the sweep
// stops and the second result is false, guaranteeing the full mean would
// be strictly below floor. When it returns true the first result is
// bit-identical to packedWindows' — the accumulation order is identical
// and the exit test is conservative on both the per-window bound and the
// threshold comparison (a relative margin covers the final division's
// rounding).
func packedWindowsBounded(tA, tB, tX []uint64, stride, w, h, win int, c1, c2, floor float64) (float64, bool) {
	invN := 1 / float64(win*win)
	// After clamping win ≤ min(w, h) both sweep loops execute at least
	// once, so rows, cols ≥ 1 always.
	rows, cols := h-win+1, w-win+1
	total := rows * cols
	need := floor * float64(total)
	margin := math.Abs(need) * 1e-12
	var sum float64
	var count int
	for y := 0; y+win <= h; y++ {
		topA := tA[y*stride:]
		botA := tA[(y+win)*stride:]
		topB := tB[y*stride:]
		botB := tB[(y+win)*stride:]
		topX := tX[y*stride:]
		botX := tX[(y+win)*stride:]
		for x := 0; x+win <= w; x++ {
			xw := x + win
			sa := botA[xw] + topA[x] - topA[xw] - botA[x]
			sb := botB[xw] + topB[x] - topB[xw] - botB[x]
			sx := botX[xw] + topX[x] - topX[xw] - botX[x]
			sum += windowStat(
				float64(uint32(sa)), float64(uint32(sb)),
				float64(sa>>32), float64(sb>>32),
				float64(sx), invN, c1, c2)
			count++
		}
		if rem := total - count; rem > 0 && sum+float64(rem)*boundSlack+margin < need {
			return sum / float64(total), false
		}
	}
	v := sum / float64(count)
	return v, v >= floor
}

// RefTable holds the precomputed summed-area statistics (packed Σx, Σx²)
// of a reference image. Scans that score many candidates against a fixed
// reference — the homograph detector's brand rasters — reuse it via
// IndexRef, skipping the reference's share of the per-pair table build.
// A RefTable is immutable after Precompute and safe to share across
// goroutines (each goroutine still needs its own Comparator).
type RefTable struct {
	img  *image.Gray
	w, h int
	t    []uint64 // nil when the image exceeds maxPackedPixels or is empty
}

// Ref returns the reference image the table was computed from. The caller
// must not mutate it.
func (rt *RefTable) Ref() *image.Gray { return rt.img }

// Precompute builds the reusable reference-side table for img. Images
// beyond the packed bound (or empty) get a table-less RefTable; IndexRef
// then falls back to the plain pair kernel.
func Precompute(img *image.Gray) *RefTable {
	w, h := img.Rect.Dx(), img.Rect.Dy()
	rt := &RefTable{img: img, w: w, h: h}
	if w == 0 || h == 0 || w*h > maxPackedPixels {
		return rt
	}
	stride := w + 1
	rt.t = make([]uint64, stride*(h+1))
	for y := 0; y < h; y++ {
		row := img.Pix[y*img.Stride : y*img.Stride+w]
		prev := rt.t[y*stride : (y+1)*stride]
		cur := rt.t[(y+1)*stride : (y+2)*stride]
		var r uint64
		for x := 0; x < w; x++ {
			p := uint64(row[x])
			r += p | (p*p)<<32
			cur[x+1] = prev[x+1] + r
		}
	}
	return rt
}

// IndexRef computes Index(rt.Ref(), b), reusing rt's precomputed
// reference table: only the candidate's self table and the cross table
// are built per call, cutting the table-build cost by a third on the
// steady-state scan path. Bit-identical to Index.
func (c *Comparator) IndexRef(rt *RefTable, b *image.Gray) (float64, error) {
	if rt.w != b.Rect.Dx() || rt.h != b.Rect.Dy() {
		return 0, ErrSizeMismatch
	}
	if rt.t == nil {
		return c.Index(rt.img, b) // empty or wide: shared fallback paths
	}
	w, h := rt.w, rt.h
	win := min(c.window, w, h)
	stride := w + 1
	n := stride * (h + 1)
	buf := c.scratch(2 * n)
	tB := buf[0*n : 1*n]
	tX := buf[1*n : 2*n]
	for x := 0; x < stride; x++ {
		tB[x], tX[x] = 0, 0
	}
	for y := 0; y < h; y++ {
		rowA := rt.img.Pix[y*rt.img.Stride : y*rt.img.Stride+w]
		rowB := b.Pix[y*b.Stride : y*b.Stride+w]
		prevB := tB[y*stride : (y+1)*stride]
		curB := tB[(y+1)*stride : (y+2)*stride]
		prevX := tX[y*stride : (y+1)*stride]
		curX := tX[(y+1)*stride : (y+2)*stride]
		curB[0], curX[0] = 0, 0
		var rb, rx uint64
		for x := 0; x < w; x++ {
			pa := uint64(rowA[x])
			pb := uint64(rowB[x])
			rb += pb | (pb*pb)<<32
			rx += pa * pb
			curB[x+1] = prevB[x+1] + rb
			curX[x+1] = prevX[x+1] + rx
		}
	}
	return packedWindows(rt.t, tB, tX, stride, w, h, win, c.c1, c.c2), nil
}

// IndexRefBounded is IndexRef with an early-exit floor for scans that
// only care about scores at or above floor — the candidate-rescore loop of
// index-backed homograph detection, where most candidates fall well
// short of the detection threshold and the full window sweep is wasted
// on proving exactly how short. It returns (score, true) with score
// bit-identical to IndexRef's when the index is at least floor; otherwise
// (partial, false), guaranteeing the exact index is strictly below floor.
func (c *Comparator) IndexRefBounded(rt *RefTable, b *image.Gray, floor float64) (float64, bool, error) {
	if rt.w != b.Rect.Dx() || rt.h != b.Rect.Dy() {
		return 0, false, ErrSizeMismatch
	}
	if rt.t == nil {
		v, err := c.Index(rt.img, b) // empty or wide: shared fallback paths
		return v, err == nil && v >= floor, err
	}
	w, h := rt.w, rt.h
	win := min(c.window, w, h)
	stride := w + 1
	n := stride * (h + 1)
	buf := c.scratch(2 * n)
	tB := buf[0*n : 1*n]
	tX := buf[1*n : 2*n]
	for x := 0; x < stride; x++ {
		tB[x], tX[x] = 0, 0
	}
	for y := 0; y < h; y++ {
		rowA := rt.img.Pix[y*rt.img.Stride : y*rt.img.Stride+w]
		rowB := b.Pix[y*b.Stride : y*b.Stride+w]
		prevB := tB[y*stride : (y+1)*stride]
		curB := tB[(y+1)*stride : (y+2)*stride]
		prevX := tX[y*stride : (y+1)*stride]
		curX := tX[(y+1)*stride : (y+2)*stride]
		curB[0], curX[0] = 0, 0
		var rb, rx uint64
		for x := 0; x < w; x++ {
			pa := uint64(rowA[x])
			pb := uint64(rowB[x])
			rb += pb | (pb*pb)<<32
			rx += pa * pb
			curB[x+1] = prevB[x+1] + rb
			curX[x+1] = prevX[x+1] + rx
		}
	}
	v, ok := packedWindowsBounded(rt.t, tB, tX, stride, w, h, win, c.c1, c.c2, floor)
	return v, ok, nil
}

// IndexRefSub computes Index(rt.Ref(), b) for a candidate b that is known
// to differ from the reference only within pixel columns [x0, x1); it is
// IndexRefSubRect with the full row range. See IndexRefSubRect for the
// exactness argument.
func (c *Comparator) IndexRefSub(rt *RefTable, b *image.Gray, x0, x1 int) (float64, error) {
	return c.IndexRefSubRect(rt, b, x0, x1, 0, rt.h)
}

// IndexRefSubRect computes Index(rt.Ref(), b) for a candidate b that is
// known to differ from the reference only within the pixel rectangle of
// columns [x0, x1) and rows [y0, y1) — the availability study's
// single-substitution sweep, where each candidate is the brand raster with
// one character cell repainted and the caller knows the diff bounding box
// of the two glyphs. Windows that do not overlap the changed rectangle
// compare bit-identical content, and for such windows windowStat is
// exactly 1.0 in IEEE arithmetic (the numerator and denominator evaluate
// to the same float64: with bitwise-equal inputs, 2*μa*μb equals μa²+μb²
// and 2*cov equals var_a+var_b exactly, because doubling and rounding
// commute under powers of two). The kernel therefore sums a literal 1.0
// for every unaffected window — in the same accumulation order as
// IndexRef, with the leading all-ones prefix collapsed to its exact
// integer value — and computes real window statistics only for windows
// overlapping the rectangle, deriving each candidate sum from the
// reference table plus signed delta integral tables built over just the
// rectangle: O(rect area) build cost instead of O(W·H). The result is
// bit-identical to IndexRef(rt, b); callers passing a rectangle that does
// not actually cover every differing pixel get garbage, so the rectangle
// is a correctness contract, not a hint.
func (c *Comparator) IndexRefSubRect(rt *RefTable, b *image.Gray, x0, x1, y0, y1 int) (float64, error) {
	if rt.w != b.Rect.Dx() || rt.h != b.Rect.Dy() {
		return 0, ErrSizeMismatch
	}
	if rt.t == nil {
		return c.Index(rt.img, b) // empty or wide: shared fallback paths
	}
	w, h := rt.w, rt.h
	if x0 < 0 {
		x0 = 0
	}
	if x1 > w {
		x1 = w
	}
	if y0 < 0 {
		y0 = 0
	}
	if y1 > h {
		y1 = h
	}
	if x0 >= x1 || y0 >= y1 {
		// Nothing changed: every window is bit-identical, every window
		// statistic is exactly 1.0, and the mean of exact 1.0s is 1.0.
		return 1, nil
	}
	return c.refSubPatch(rt, x0, x1, y0, y1, func(gy int) []byte {
		return b.Pix[gy*b.Stride+x0 : gy*b.Stride+x1]
	}), nil
}

// Packed reports whether the reference table holds the packed fast-path
// summed-area statistics. Patch-based scoring (IndexRefSubPatch) requires
// a packed table; callers must fall back to a full comparison otherwise.
func (rt *RefTable) Packed() bool { return rt.t != nil }

// IndexRefSubPatch computes Index(rt.Ref(), b) for a candidate b that is
// never materialized as an image: b equals the reference everywhere except
// the rectangle of columns [x0, x1) and rows [y0, y1), whose candidate
// pixels are supplied row-major in patch (stride x1−x0). This is the
// zero-materialization form of IndexRefSubRect — the availability sweep
// passes each homoglyph's few changed pixels directly, skipping the
// per-candidate raster write entirely — and is bit-identical to rendering
// the candidate and calling IndexRef. The rectangle must satisfy
// 0 ≤ x0 < x1 ≤ w and 0 ≤ y0 < y1 ≤ h, patch must hold at least
// (x1−x0)·(y1−y0) bytes, and rt must be Packed.
func (c *Comparator) IndexRefSubPatch(rt *RefTable, x0, x1, y0, y1 int, patch []byte) (float64, error) {
	if rt.t == nil {
		return 0, errPatchUnpacked
	}
	if x0 < 0 || x0 >= x1 || x1 > rt.w || y0 < 0 || y0 >= y1 || y1 > rt.h {
		return 0, errPatchRect
	}
	bw := x1 - x0
	if len(patch) < bw*(y1-y0) {
		return 0, errPatchShort
	}
	return c.refSubPatch(rt, x0, x1, y0, y1, func(gy int) []byte {
		off := (gy - y0) * bw
		return patch[off : off+bw]
	}), nil
}

var (
	errPatchUnpacked = errors.New("ssim: IndexRefSubPatch requires a packed RefTable")
	errPatchRect     = errors.New("ssim: IndexRefSubPatch rectangle out of bounds")
	errPatchShort    = errors.New("ssim: IndexRefSubPatch patch shorter than rectangle")
)

// RefSubPatchAbove reports whether IndexRefSubPatch(rt, x0, x1, y0, y1,
// patch) >= threshold, with the same contract as IndexRefSubPatch, but
// usually without paying for the exact score. The mean SSIM of a patched
// candidate is (k·1.0 + Σ affected windowStat) / n, where k windows are
// bit-identical to the reference; the exact kernel must replay IndexRef's
// sequential accumulation through all n windows, an FP-latency chain that
// dominates the sweep for small patches. This predicate instead computes
// the mathematically equal reordered sum over only the affected windows,
// brackets the exact kernel's result with a rigorous rounding-error bound
// (both sums differ from the real-number sum by at most ~n²·ε/2; the
// bound below is two orders of magnitude looser), and decides the
// comparison when the threshold falls outside the bracket. Only when the
// score and the threshold are within ~1e-9·n of each other — which no
// generic image pair ever is — does it fall back to the exact sweep, so
// the decision always equals comparing the exact IndexRefSubPatch score.
func (c *Comparator) RefSubPatchAbove(rt *RefTable, x0, x1, y0, y1 int, patch []byte, threshold float64) (bool, error) {
	if rt.t == nil {
		return false, errPatchUnpacked
	}
	if x0 < 0 || x0 >= x1 || x1 > rt.w || y0 < 0 || y0 >= y1 || y1 > rt.h {
		return false, errPatchRect
	}
	bw := x1 - x0
	if len(patch) < bw*(y1-y0) {
		return false, errPatchShort
	}
	rowB := func(gy int) []byte {
		off := (gy - y0) * bw
		return patch[off : off+bw]
	}
	t1, t2, tx := c.refSubTables(rt, x0, x1, y0, y1, rowB)
	w, h := rt.w, rt.h
	win := min(c.window, w, h)
	wLo, wHi, yLo, yHi := refSubBounds(w, h, win, x0, x1, y0, y1)
	bstride := bw + 1
	bh := y1 - y0
	fstride := w + 1
	invN := 1 / float64(win*win)
	cols := w - win + 1
	rows := h - win + 1
	n := cols * rows
	affected := (wHi - wLo + 1) * (yHi - yLo + 1)
	// |lhs − n·score| is bounded by the reordering error of both sums plus
	// the final division's rounding: each is ≤ (n−1)/2 · ε · Σ|terms| with
	// |windowStat| ≤ ~1.1, i.e. ≤ ~n²·ε. margin = 2e-9·n dominates that by
	// two or more orders of magnitude for any packed image (n ≤
	// maxPackedPixels) while still being far below any score-threshold gap
	// that occurs in practice.
	margin := 2e-9 * float64(n)
	rhs := threshold * float64(n)
	// Every window statistic is at most 1 in real arithmetic (AM-GM on
	// both windowStat factors) and its float64 evaluation involves only a
	// handful of roundings, so 1+1e-12 upper-bounds any windowStat value.
	// Once even perfect scores on the remaining affected windows cannot
	// lift the sum back over the threshold, the candidate is certifiably
	// below it and the sweep stops early — the common case for the ~2/3 of
	// homoglyph candidates the study rejects.
	const onePlus = 1 + 1e-12
	rejectAt := rhs - margin
	var sum float64 // Σ windowStat over affected, non-identical windows
	ones := 0       // affected windows with zero net delta (exactly 1.0)
	processed := 0
	base := float64(n - affected)
	for y := yLo; y <= yHi; y++ {
		topA := rt.t[y*fstride:]
		botA := rt.t[(y+win)*fstride:]
		cy0 := y - y0
		if cy0 < 0 {
			cy0 = 0
		}
		cy1 := y + win - y0
		if cy1 > bh {
			cy1 = bh
		}
		dTop1 := t1[cy0*bstride:]
		dBot1 := t1[cy1*bstride:]
		dTop2 := t2[cy0*bstride:]
		dBot2 := t2[cy1*bstride:]
		dTopX := tx[cy0*bstride:]
		dBotX := tx[cy1*bstride:]
		for x := wLo; x <= wHi; x++ {
			xw := x + win
			cx0 := x - x0
			if cx0 < 0 {
				cx0 = 0
			}
			cx1 := xw - x0
			if cx1 > bw {
				cx1 = bw
			}
			d1 := int64(dBot1[cx1]) - int64(dTop1[cx1]) - int64(dBot1[cx0]) + int64(dTop1[cx0])
			d2 := int64(dBot2[cx1]) - int64(dTop2[cx1]) - int64(dBot2[cx0]) + int64(dTop2[cx0])
			dx := int64(dBotX[cx1]) - int64(dTopX[cx1]) - int64(dBotX[cx0]) + int64(dTopX[cx0])
			processed++
			if d1 == 0 && d2 == 0 && dx == 0 {
				ones++
				continue
			}
			sa := botA[xw] + topA[x] - topA[xw] - botA[x]
			saL := int64(uint32(sa))
			saH := int64(sa >> 32)
			sum += windowStat(
				float64(saL), float64(saL+d1),
				float64(saH), float64(saH+d2),
				float64(saH+dx), invN, c.c1, c.c2)
			if base+float64(ones)+sum+float64(affected-processed)*onePlus <= rejectAt {
				return false, nil
			}
		}
	}
	// k identical windows contribute exactly 1.0 each in the exact kernel.
	lhs := base + float64(ones) + sum
	if lhs >= rhs+margin {
		return true, nil
	}
	if lhs <= rhs-margin {
		return false, nil
	}
	// Inconclusive: replay the exact sequential sweep (tables are already
	// built and still live in the scratch buffer).
	return c.refSubSweep(rt, x0, x1, y0, y1, t1, t2, tx) >= threshold, nil
}

// refSubBounds computes the window-position range whose win×win span
// intersects the changed rectangle. The rectangle is already validated and
// non-empty, so both ranges are non-empty after clamping.
func refSubBounds(w, h, win, x0, x1, y0, y1 int) (wLo, wHi, yLo, yHi int) {
	wLo = x0 - win + 1
	if wLo < 0 {
		wLo = 0
	}
	wHi = x1 - 1
	if wHi > w-win {
		wHi = w - win
	}
	yLo = y0 - win + 1
	if yLo < 0 {
		yLo = 0
	}
	yHi = y1 - 1
	if yHi > h-win {
		yHi = h - win
	}
	return wLo, wHi, yLo, yHi
}

// refSubTables builds the three delta integral tables over the changed
// rectangle in the Comparator's scratch buffer:
//
// Every candidate window sum is the reference window sum plus the
// contribution of the changed pixels: Σb = Σa + Σ(b−a), Σb² = Σa² +
// Σ(b²−a²), Σab = Σa² + Σa·(b−a), with the correction terms supported
// only on the changed rectangle. All quantities are exact integers, so
// deriving the candidate sums from rt's table plus three tiny signed
// integral tables over the rectangle yields bit-for-bit the same
// float64 inputs as building full candidate tables — at O(rect area)
// build cost instead of O(W·H). Signed deltas are stored as
// two's-complement uint64 in the shared scratch.
func (c *Comparator) refSubTables(rt *RefTable, x0, x1, y0, y1 int, rowB func(gy int) []byte) (t1, t2, tx []uint64) {
	bw := x1 - x0
	bh := y1 - y0
	bstride := bw + 1
	bn := bstride * (bh + 1)
	buf := c.scratch(3 * bn)
	t1 = buf[0*bn : 1*bn] // Σ(b−a)
	t2 = buf[1*bn : 2*bn] // Σ(b²−a²)
	tx = buf[2*bn : 3*bn] // Σa·(b−a)
	for x := 0; x < bstride; x++ {
		t1[x], t2[x], tx[x] = 0, 0, 0
	}
	for y := 0; y < bh; y++ {
		gy := y0 + y
		rowA := rt.img.Pix[gy*rt.img.Stride+x0 : gy*rt.img.Stride+x1]
		rb := rowB(gy)
		prev := y * bstride
		cur := prev + bstride
		t1[cur], t2[cur], tx[cur] = 0, 0, 0
		var r1, r2, rx int64
		for x := 0; x < bw; x++ {
			pa := int64(rowA[x])
			pb := int64(rb[x])
			r1 += pb - pa
			r2 += pb*pb - pa*pa
			rx += pa * (pb - pa)
			t1[cur+x+1] = uint64(int64(t1[prev+x+1]) + r1)
			t2[cur+x+1] = uint64(int64(t2[prev+x+1]) + r2)
			tx[cur+x+1] = uint64(int64(tx[prev+x+1]) + rx)
		}
	}
	return t1, t2, tx
}

// refSubPatch is the shared changed-rect kernel behind IndexRefSubRect and
// IndexRefSubPatch: rowB returns the candidate pixels of image row gy
// restricted to the rectangle columns. The rectangle is already validated
// and non-empty.
func (c *Comparator) refSubPatch(rt *RefTable, x0, x1, y0, y1 int, rowB func(gy int) []byte) float64 {
	t1, t2, tx := c.refSubTables(rt, x0, x1, y0, y1, rowB)
	return c.refSubSweep(rt, x0, x1, y0, y1, t1, t2, tx)
}

// refSubSweep is the exact full-window sweep over previously built delta
// tables: it reproduces IndexRef's accumulation order bit for bit, with
// the leading all-ones prefix collapsed to its exact integer value.
func (c *Comparator) refSubSweep(rt *RefTable, x0, x1, y0, y1 int, t1, t2, tx []uint64) float64 {
	w, h := rt.w, rt.h
	win := min(c.window, w, h)
	wLo, wHi, yLo, yHi := refSubBounds(w, h, win, x0, x1, y0, y1)
	bw := x1 - x0
	bh := y1 - y0
	bstride := bw + 1
	fstride := w + 1
	cols := w - win + 1
	invN := 1 / float64(win*win)
	// Leading all-ones prefix (full rows above yLo plus the head of row
	// yLo): summing 1.0 k times from zero yields the exact integer k at
	// every step, so the collapsed prefix is bit-identical to the
	// sequential accumulation.
	sum := float64(yLo*cols + wLo)
	for y := yLo; y <= yHi; y++ {
		topA := rt.t[y*fstride:]
		botA := rt.t[(y+win)*fstride:]
		// Row intersection of the win-tall window with the rectangle,
		// in rectangle-local coordinates — constant across this row.
		cy0 := y - y0
		if cy0 < 0 {
			cy0 = 0
		}
		cy1 := y + win - y0
		if cy1 > bh {
			cy1 = bh
		}
		dTop1 := t1[cy0*bstride:]
		dBot1 := t1[cy1*bstride:]
		dTop2 := t2[cy0*bstride:]
		dBot2 := t2[cy1*bstride:]
		dTopX := tx[cy0*bstride:]
		dBotX := tx[cy1*bstride:]
		if y > yLo {
			// Identical windows left of the strip: exactly 1.0 each,
			// added one at a time to preserve the accumulation order
			// (the sum is no longer an integer here).
			for x := 0; x < wLo; x++ {
				sum += 1.0
			}
		}
		for x := wLo; x <= wHi; x++ {
			xw := x + win
			sa := botA[xw] + topA[x] - topA[xw] - botA[x]
			saL := int64(uint32(sa)) // Σa over the window
			saH := int64(sa >> 32)   // Σa² over the window
			// Column intersection with the rectangle.
			cx0 := x - x0
			if cx0 < 0 {
				cx0 = 0
			}
			cx1 := xw - x0
			if cx1 > bw {
				cx1 = bw
			}
			d1 := int64(dBot1[cx1]) - int64(dTop1[cx1]) - int64(dBot1[cx0]) + int64(dTop1[cx0])
			d2 := int64(dBot2[cx1]) - int64(dTop2[cx1]) - int64(dBot2[cx0]) + int64(dTop2[cx0])
			dx := int64(dBotX[cx1]) - int64(dTopX[cx1]) - int64(dBotX[cx0]) + int64(dTopX[cx0])
			if d1 == 0 && d2 == 0 && dx == 0 {
				// The changed pixels inside this window carry zero net
				// delta in all three statistics, so the candidate sums
				// equal the reference sums and the statistic is exactly
				// 1.0 — same value windowStat would return, skipped.
				// (Typical when the window covers only background rows of
				// the rectangle.)
				sum += 1.0
				continue
			}
			sum += windowStat(
				float64(saL), float64(saL+d1),
				float64(saH), float64(saH+d2),
				float64(saH+dx), invN, c.c1, c.c2)
		}
		for x := wHi + 1; x < cols; x++ {
			sum += 1.0
		}
	}
	// Trailing all-ones rows below yHi.
	for k := (h - win - yHi) * cols; k > 0; k-- {
		sum += 1.0
	}
	return sum / float64(cols*(h-win+1))
}

// indexWide is the five-table kernel for images too large for packed
// 32-bit halves. Same math, one table per statistic.
func (c *Comparator) indexWide(a, b *image.Gray, w, h, win int) float64 {
	stride := w + 1
	n := stride * (h + 1)
	buf := c.scratch(5 * n)
	sa := buf[0*n : 1*n]
	sb := buf[1*n : 2*n]
	saa := buf[2*n : 3*n]
	sbb := buf[3*n : 4*n]
	sab := buf[4*n : 5*n]
	for x := 0; x < stride; x++ {
		sa[x], sb[x], saa[x], sbb[x], sab[x] = 0, 0, 0, 0, 0
	}
	for y := 0; y < h; y++ {
		rowA := a.Pix[y*a.Stride : y*a.Stride+w]
		rowB := b.Pix[y*b.Stride : y*b.Stride+w]
		prev := y * stride
		cur := prev + stride
		sa[cur], sb[cur], saa[cur], sbb[cur], sab[cur] = 0, 0, 0, 0, 0
		var ra, rb, raa, rbb, rab uint64
		for x := 0; x < w; x++ {
			pa := uint64(rowA[x])
			pb := uint64(rowB[x])
			ra += pa
			rb += pb
			raa += pa * pa
			rbb += pb * pb
			rab += pa * pb
			i := cur + x + 1
			j := prev + x + 1
			sa[i] = sa[j] + ra
			sb[i] = sb[j] + rb
			saa[i] = saa[j] + raa
			sbb[i] = sbb[j] + rbb
			sab[i] = sab[j] + rab
		}
	}
	invN := 1 / float64(win*win)
	var sum float64
	var count int
	for y := 0; y+win <= h; y++ {
		r0 := y * stride
		r1 := (y + win) * stride
		for x := 0; x+win <= w; x++ {
			i00, i01 := r0+x, r0+x+win
			i10, i11 := r1+x, r1+x+win
			sum += windowStat(
				float64(sa[i11]+sa[i00]-sa[i01]-sa[i10]),
				float64(sb[i11]+sb[i00]-sb[i01]-sb[i10]),
				float64(saa[i11]+saa[i00]-saa[i01]-saa[i10]),
				float64(sbb[i11]+sbb[i00]-sbb[i01]-sbb[i10]),
				float64(sab[i11]+sab[i00]-sab[i01]-sab[i10]),
				invN, c.c1, c.c2)
			count++
		}
	}
	return sum / float64(count)
}

// windowStat folds the five window sums into one SSIM statistic. Shared
// by the integral-image and naive kernels so both use the exact same
// float64 expression order (bit-identical results). invN is 1/(win·win);
// for the default 8×8 window that reciprocal is a power of two, making
// the products exact — the fast path is then bit-identical to the
// historical divide-by-n formulation as well.
func windowStat(sumA, sumB, sumAA, sumBB, sumAB, invN, c1, c2 float64) float64 {
	muA := sumA * invN
	muB := sumB * invN
	varA := sumAA*invN - muA*muA
	varB := sumBB*invN - muB*muB
	covAB := sumAB*invN - muA*muB
	num := (2*muA*muB + c1) * (2*covAB + c2)
	den := (muA*muA + muB*muB + c1) * (varA + varB + c2)
	return num / den
}

// IndexNaive is the reference implementation of Index: it recomputes every
// window's five sums directly from the pixels, O(W·H·win²). It is retained
// for the equivalence property tests and the old-vs-new kernel benchmarks;
// production callers should use Index.
func (c *Comparator) IndexNaive(a, b *image.Gray) (float64, error) {
	w, h := a.Rect.Dx(), a.Rect.Dy()
	if w != b.Rect.Dx() || h != b.Rect.Dy() {
		return 0, ErrSizeMismatch
	}
	if w == 0 || h == 0 {
		return 1, nil
	}
	win := min(c.window, w, h)
	var sum float64
	var count int
	for y := 0; y+win <= h; y++ {
		for x := 0; x+win <= w; x++ {
			sum += c.windowSSIM(a, b, x, y, win)
			count++
		}
	}
	return sum / float64(count), nil
}

// windowSSIM computes the SSIM statistic over one win x win window by
// direct summation — the reference kernel.
func (c *Comparator) windowSSIM(a, b *image.Gray, x0, y0, win int) float64 {
	invN := 1 / float64(win*win)
	var sumA, sumB, sumAA, sumBB, sumAB float64
	for y := y0; y < y0+win; y++ {
		rowA := a.Pix[y*a.Stride:]
		rowB := b.Pix[y*b.Stride:]
		for x := x0; x < x0+win; x++ {
			pa := float64(rowA[x])
			pb := float64(rowB[x])
			sumA += pa
			sumB += pb
			sumAA += pa * pa
			sumBB += pb * pb
			sumAB += pa * pb
		}
	}
	return windowStat(sumA, sumB, sumAA, sumBB, sumAB, invN, c.c1, c.c2)
}

// MSE computes the mean squared error between the pair. MSE is a single
// global window, so its integral image degenerates to one running sum:
// the kernel is a fused integer pass — exact (Σ(a−b)² is an integer far
// below 2^53), allocation-free, and identical to the float64 reference
// MSE function.
func (c *Comparator) MSE(a, b *image.Gray) (float64, error) {
	w, h := a.Rect.Dx(), a.Rect.Dy()
	if w != b.Rect.Dx() || h != b.Rect.Dy() {
		return 0, ErrSizeMismatch
	}
	if w == 0 || h == 0 {
		return 0, nil
	}
	var sum uint64
	for y := 0; y < h; y++ {
		rowA := a.Pix[y*a.Stride : y*a.Stride+w]
		rowB := b.Pix[y*b.Stride : y*b.Stride+w]
		for x := 0; x < w; x++ {
			d := int64(rowA[x]) - int64(rowB[x])
			sum += uint64(d * d)
		}
	}
	return float64(sum) / float64(w*h), nil
}

// Index computes the mean SSIM index with the default window size. It
// builds a throwaway Comparator; hot paths should hold one Comparator and
// reuse its scratch buffer across pairs.
func Index(a, b *image.Gray) (float64, error) {
	return New(DefaultWindow).Index(a, b)
}

// MSE computes the mean squared error between two equal-sized grayscale
// images — the "traditional similarity metric" the paper contrasts SSIM
// against. 0 means identical; larger is more different. This is the
// float64 direct-summation reference; Comparator.MSE computes the same
// value with integer arithmetic.
func MSE(a, b *image.Gray) (float64, error) {
	w, h := a.Rect.Dx(), a.Rect.Dy()
	if w != b.Rect.Dx() || h != b.Rect.Dy() {
		return 0, ErrSizeMismatch
	}
	if w == 0 || h == 0 {
		return 0, nil
	}
	var sum float64
	for y := 0; y < h; y++ {
		rowA := a.Pix[y*a.Stride:]
		rowB := b.Pix[y*b.Stride:]
		for x := 0; x < w; x++ {
			d := float64(rowA[x]) - float64(rowB[x])
			sum += d * d
		}
	}
	return sum / float64(w*h), nil
}

// PSNR computes peak signal-to-noise ratio in dB from an MSE value.
// Identical images yield +Inf.
func PSNR(mse float64) float64 {
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(dynamicRange*dynamicRange/mse)
}
