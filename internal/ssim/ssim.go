// Package ssim implements the Structural Similarity (SSIM) index of Wang,
// Bovik, Sheikh and Simoncelli ("Image quality assessment: from error
// visibility to structural similarity", IEEE TIP 2004) on grayscale images,
// plus the mean-squared-error baseline the paper contrasts it with (§VI-B).
//
// The paper's homograph detector computes a pair-wise SSIM index between a
// rendered IDN and each rendered brand domain, flagging the IDN as
// homographic when the maximum index exceeds 0.95. SSIM outputs lie in
// [-1, 1], with 1 meaning perfectly identical images.
//
// # Kernel
//
// The mean SSIM is an average over every stride-1 window position, and each
// window needs five sums (Σa, Σb, Σa², Σb², Σab). Computing them from the
// pixels at every position costs O(W·H·win²) multiply-adds per pair — the
// cost profile behind the paper's 102-hour brute-force sweep. A Comparator
// instead builds summed-area tables (integral images) once per pair,
// O(W·H), after which any window's five sums are a handful of table
// lookups: the whole index becomes O(W·H) regardless of window size.
//
// Two exactness properties make the fast kernel safe to substitute for the
// reference loop:
//
//   - The tables are integer-exact. Pixels are uint8, so every window sum
//     is an integer far below 2^53; uint64 table arithmetic and the
//     float64 conversions downstream are all lossless. For images up to
//     maxPackedPixels the kernel packs each image's (Σx, Σx²) into the
//     two 32-bit halves of one uint64 table — three tables per pair
//     instead of five, which is where the build spends its time — with
//     overflow and carry/borrow-freedom guaranteed by the pixel-count
//     bound. Packing per image (rather than across the pair) also lets a
//     RefTable cache a reference image's table, so scans that compare
//     many candidates against a fixed brand raster rebuild only the
//     candidate's table and the cross table per call (IndexRef).
//   - Both kernels fold window sums through the same windowStat
//     expression, so the integral-image path is bit-identical to
//     IndexNaive — pinned by property tests and the byte-exact golden
//     report.
//
// The tables live in a scratch buffer owned by the Comparator and are
// reused across calls, so a steady-state corpus scan performs zero
// allocations per comparison. A Comparator is consequently not safe for
// concurrent use; give each goroutine its own (they are cheap).
package ssim

import (
	"errors"
	"image"
	"math"
)

// Default parameters from the SSIM paper: an 8x8 sliding window and
// stabilization constants derived from K1=0.01, K2=0.03 at dynamic range
// L=255.
const (
	DefaultWindow = 8
	k1            = 0.01
	k2            = 0.03
	dynamicRange  = 255.0
)

// maxPackedPixels bounds the packed three-table fast path: with
// w*h ≤ 33000 every per-half table value is at most 255²·33000 < 2^31,
// so adding two table entries cannot carry across the 32-bit boundary and
// the four-corner subtraction cannot borrow (window sums are
// non-negative). Larger images take the five-table wide path.
const maxPackedPixels = 33000

// ErrSizeMismatch reports two images with different dimensions; the caller
// decides the padding policy (package glyph renders fixed-width pairs).
var ErrSizeMismatch = errors.New("ssim: image dimensions differ")

// Comparator computes SSIM indices with a fixed window size. The zero value
// is not usable; use New. A Comparator owns a reusable summed-area-table
// scratch buffer and is therefore not safe for concurrent use.
type Comparator struct {
	window int
	c1, c2 float64
	buf    []uint64 // summed-area scratch, grown on demand, reused per pair
}

// New returns a Comparator with the given sliding-window size. Sizes
// smaller than 2 or larger than either image dimension at comparison time
// degrade to a single global window.
func New(window int) *Comparator {
	if window < 2 {
		window = 2
	}
	return &Comparator{
		window: window,
		c1:     (k1 * dynamicRange) * (k1 * dynamicRange),
		c2:     (k2 * dynamicRange) * (k2 * dynamicRange),
	}
}

// scratch returns the reusable buffer resized to n zero-padding-safe
// elements (contents beyond the zeroed regions are overwritten by the
// builders).
func (c *Comparator) scratch(n int) []uint64 {
	if cap(c.buf) < n {
		c.buf = make([]uint64, n)
	}
	return c.buf[:n]
}

// Index computes the mean SSIM index between two equal-sized grayscale
// images: the per-window SSIM averaged over all window positions (stride
// 1), in O(W·H) total via the integral-image kernel. Results are
// bit-identical to IndexNaive.
func (c *Comparator) Index(a, b *image.Gray) (float64, error) {
	w, h := a.Rect.Dx(), a.Rect.Dy()
	if w != b.Rect.Dx() || h != b.Rect.Dy() {
		return 0, ErrSizeMismatch
	}
	if w == 0 || h == 0 {
		return 1, nil // two empty images are identical
	}
	win := min(c.window, w, h)
	if w*h <= maxPackedPixels {
		return c.indexPacked(a, b, w, h, win), nil
	}
	return c.indexWide(a, b, w, h, win), nil
}

// indexPacked is the three-table kernel for images within
// maxPackedPixels: tables tA and tB each hold one image's Σx in the low
// and Σx² in the high 32 bits, and tX holds Σab alone.
func (c *Comparator) indexPacked(a, b *image.Gray, w, h, win int) float64 {
	stride := w + 1
	n := stride * (h + 1)
	buf := c.scratch(3 * n)
	tA := buf[0*n : 1*n]
	tB := buf[1*n : 2*n]
	tX := buf[2*n : 3*n]
	for x := 0; x < stride; x++ {
		tA[x], tB[x], tX[x] = 0, 0, 0
	}
	for y := 0; y < h; y++ {
		rowA := a.Pix[y*a.Stride : y*a.Stride+w]
		rowB := b.Pix[y*b.Stride : y*b.Stride+w]
		prevA := tA[y*stride : (y+1)*stride]
		curA := tA[(y+1)*stride : (y+2)*stride]
		prevB := tB[y*stride : (y+1)*stride]
		curB := tB[(y+1)*stride : (y+2)*stride]
		prevX := tX[y*stride : (y+1)*stride]
		curX := tX[(y+1)*stride : (y+2)*stride]
		curA[0], curB[0], curX[0] = 0, 0, 0
		var ra, rb, rx uint64 // running row sums; ra/rb packed Σx|Σx²<<32
		for x := 0; x < w; x++ {
			pa := uint64(rowA[x])
			pb := uint64(rowB[x])
			ra += pa | (pa*pa)<<32
			rb += pb | (pb*pb)<<32
			rx += pa * pb
			curA[x+1] = prevA[x+1] + ra
			curB[x+1] = prevB[x+1] + rb
			curX[x+1] = prevX[x+1] + rx
		}
	}
	return packedWindows(tA, tB, tX, stride, w, h, win, c.c1, c.c2)
}

// packedWindows sweeps every window position over the packed self tables
// tA, tB and the cross table tX, averaging windowStat. Shared by
// indexPacked and IndexRef so both are bit-identical by construction.
func packedWindows(tA, tB, tX []uint64, stride, w, h, win int, c1, c2 float64) float64 {
	invN := 1 / float64(win*win)
	var sum float64
	var count int
	for y := 0; y+win <= h; y++ {
		topA := tA[y*stride:]
		botA := tA[(y+win)*stride:]
		topB := tB[y*stride:]
		botB := tB[(y+win)*stride:]
		topX := tX[y*stride:]
		botX := tX[(y+win)*stride:]
		for x := 0; x+win <= w; x++ {
			xw := x + win
			sa := botA[xw] + topA[x] - topA[xw] - botA[x]
			sb := botB[xw] + topB[x] - topB[xw] - botB[x]
			sx := botX[xw] + topX[x] - topX[xw] - botX[x]
			sum += windowStat(
				float64(uint32(sa)), float64(uint32(sb)),
				float64(sa>>32), float64(sb>>32),
				float64(sx), invN, c1, c2)
			count++
		}
	}
	// After clamping win ≤ min(w, h) both loops execute at least once, so
	// count ≥ 1 always.
	return sum / float64(count)
}

// RefTable holds the precomputed summed-area statistics (packed Σx, Σx²)
// of a reference image. Scans that score many candidates against a fixed
// reference — the homograph detector's brand rasters — reuse it via
// IndexRef, skipping the reference's share of the per-pair table build.
// A RefTable is immutable after Precompute and safe to share across
// goroutines (each goroutine still needs its own Comparator).
type RefTable struct {
	img  *image.Gray
	w, h int
	t    []uint64 // nil when the image exceeds maxPackedPixels or is empty
}

// Ref returns the reference image the table was computed from. The caller
// must not mutate it.
func (rt *RefTable) Ref() *image.Gray { return rt.img }

// Precompute builds the reusable reference-side table for img. Images
// beyond the packed bound (or empty) get a table-less RefTable; IndexRef
// then falls back to the plain pair kernel.
func Precompute(img *image.Gray) *RefTable {
	w, h := img.Rect.Dx(), img.Rect.Dy()
	rt := &RefTable{img: img, w: w, h: h}
	if w == 0 || h == 0 || w*h > maxPackedPixels {
		return rt
	}
	stride := w + 1
	rt.t = make([]uint64, stride*(h+1))
	for y := 0; y < h; y++ {
		row := img.Pix[y*img.Stride : y*img.Stride+w]
		prev := rt.t[y*stride : (y+1)*stride]
		cur := rt.t[(y+1)*stride : (y+2)*stride]
		var r uint64
		for x := 0; x < w; x++ {
			p := uint64(row[x])
			r += p | (p*p)<<32
			cur[x+1] = prev[x+1] + r
		}
	}
	return rt
}

// IndexRef computes Index(rt.Ref(), b), reusing rt's precomputed
// reference table: only the candidate's self table and the cross table
// are built per call, cutting the table-build cost by a third on the
// steady-state scan path. Bit-identical to Index.
func (c *Comparator) IndexRef(rt *RefTable, b *image.Gray) (float64, error) {
	if rt.w != b.Rect.Dx() || rt.h != b.Rect.Dy() {
		return 0, ErrSizeMismatch
	}
	if rt.t == nil {
		return c.Index(rt.img, b) // empty or wide: shared fallback paths
	}
	w, h := rt.w, rt.h
	win := min(c.window, w, h)
	stride := w + 1
	n := stride * (h + 1)
	buf := c.scratch(2 * n)
	tB := buf[0*n : 1*n]
	tX := buf[1*n : 2*n]
	for x := 0; x < stride; x++ {
		tB[x], tX[x] = 0, 0
	}
	for y := 0; y < h; y++ {
		rowA := rt.img.Pix[y*rt.img.Stride : y*rt.img.Stride+w]
		rowB := b.Pix[y*b.Stride : y*b.Stride+w]
		prevB := tB[y*stride : (y+1)*stride]
		curB := tB[(y+1)*stride : (y+2)*stride]
		prevX := tX[y*stride : (y+1)*stride]
		curX := tX[(y+1)*stride : (y+2)*stride]
		curB[0], curX[0] = 0, 0
		var rb, rx uint64
		for x := 0; x < w; x++ {
			pa := uint64(rowA[x])
			pb := uint64(rowB[x])
			rb += pb | (pb*pb)<<32
			rx += pa * pb
			curB[x+1] = prevB[x+1] + rb
			curX[x+1] = prevX[x+1] + rx
		}
	}
	return packedWindows(rt.t, tB, tX, stride, w, h, win, c.c1, c.c2), nil
}

// indexWide is the five-table kernel for images too large for packed
// 32-bit halves. Same math, one table per statistic.
func (c *Comparator) indexWide(a, b *image.Gray, w, h, win int) float64 {
	stride := w + 1
	n := stride * (h + 1)
	buf := c.scratch(5 * n)
	sa := buf[0*n : 1*n]
	sb := buf[1*n : 2*n]
	saa := buf[2*n : 3*n]
	sbb := buf[3*n : 4*n]
	sab := buf[4*n : 5*n]
	for x := 0; x < stride; x++ {
		sa[x], sb[x], saa[x], sbb[x], sab[x] = 0, 0, 0, 0, 0
	}
	for y := 0; y < h; y++ {
		rowA := a.Pix[y*a.Stride : y*a.Stride+w]
		rowB := b.Pix[y*b.Stride : y*b.Stride+w]
		prev := y * stride
		cur := prev + stride
		sa[cur], sb[cur], saa[cur], sbb[cur], sab[cur] = 0, 0, 0, 0, 0
		var ra, rb, raa, rbb, rab uint64
		for x := 0; x < w; x++ {
			pa := uint64(rowA[x])
			pb := uint64(rowB[x])
			ra += pa
			rb += pb
			raa += pa * pa
			rbb += pb * pb
			rab += pa * pb
			i := cur + x + 1
			j := prev + x + 1
			sa[i] = sa[j] + ra
			sb[i] = sb[j] + rb
			saa[i] = saa[j] + raa
			sbb[i] = sbb[j] + rbb
			sab[i] = sab[j] + rab
		}
	}
	invN := 1 / float64(win*win)
	var sum float64
	var count int
	for y := 0; y+win <= h; y++ {
		r0 := y * stride
		r1 := (y + win) * stride
		for x := 0; x+win <= w; x++ {
			i00, i01 := r0+x, r0+x+win
			i10, i11 := r1+x, r1+x+win
			sum += windowStat(
				float64(sa[i11]+sa[i00]-sa[i01]-sa[i10]),
				float64(sb[i11]+sb[i00]-sb[i01]-sb[i10]),
				float64(saa[i11]+saa[i00]-saa[i01]-saa[i10]),
				float64(sbb[i11]+sbb[i00]-sbb[i01]-sbb[i10]),
				float64(sab[i11]+sab[i00]-sab[i01]-sab[i10]),
				invN, c.c1, c.c2)
			count++
		}
	}
	return sum / float64(count)
}

// windowStat folds the five window sums into one SSIM statistic. Shared
// by the integral-image and naive kernels so both use the exact same
// float64 expression order (bit-identical results). invN is 1/(win·win);
// for the default 8×8 window that reciprocal is a power of two, making
// the products exact — the fast path is then bit-identical to the
// historical divide-by-n formulation as well.
func windowStat(sumA, sumB, sumAA, sumBB, sumAB, invN, c1, c2 float64) float64 {
	muA := sumA * invN
	muB := sumB * invN
	varA := sumAA*invN - muA*muA
	varB := sumBB*invN - muB*muB
	covAB := sumAB*invN - muA*muB
	num := (2*muA*muB + c1) * (2*covAB + c2)
	den := (muA*muA + muB*muB + c1) * (varA + varB + c2)
	return num / den
}

// IndexNaive is the reference implementation of Index: it recomputes every
// window's five sums directly from the pixels, O(W·H·win²). It is retained
// for the equivalence property tests and the old-vs-new kernel benchmarks;
// production callers should use Index.
func (c *Comparator) IndexNaive(a, b *image.Gray) (float64, error) {
	w, h := a.Rect.Dx(), a.Rect.Dy()
	if w != b.Rect.Dx() || h != b.Rect.Dy() {
		return 0, ErrSizeMismatch
	}
	if w == 0 || h == 0 {
		return 1, nil
	}
	win := min(c.window, w, h)
	var sum float64
	var count int
	for y := 0; y+win <= h; y++ {
		for x := 0; x+win <= w; x++ {
			sum += c.windowSSIM(a, b, x, y, win)
			count++
		}
	}
	return sum / float64(count), nil
}

// windowSSIM computes the SSIM statistic over one win x win window by
// direct summation — the reference kernel.
func (c *Comparator) windowSSIM(a, b *image.Gray, x0, y0, win int) float64 {
	invN := 1 / float64(win*win)
	var sumA, sumB, sumAA, sumBB, sumAB float64
	for y := y0; y < y0+win; y++ {
		rowA := a.Pix[y*a.Stride:]
		rowB := b.Pix[y*b.Stride:]
		for x := x0; x < x0+win; x++ {
			pa := float64(rowA[x])
			pb := float64(rowB[x])
			sumA += pa
			sumB += pb
			sumAA += pa * pa
			sumBB += pb * pb
			sumAB += pa * pb
		}
	}
	return windowStat(sumA, sumB, sumAA, sumBB, sumAB, invN, c.c1, c.c2)
}

// MSE computes the mean squared error between the pair. MSE is a single
// global window, so its integral image degenerates to one running sum:
// the kernel is a fused integer pass — exact (Σ(a−b)² is an integer far
// below 2^53), allocation-free, and identical to the float64 reference
// MSE function.
func (c *Comparator) MSE(a, b *image.Gray) (float64, error) {
	w, h := a.Rect.Dx(), a.Rect.Dy()
	if w != b.Rect.Dx() || h != b.Rect.Dy() {
		return 0, ErrSizeMismatch
	}
	if w == 0 || h == 0 {
		return 0, nil
	}
	var sum uint64
	for y := 0; y < h; y++ {
		rowA := a.Pix[y*a.Stride : y*a.Stride+w]
		rowB := b.Pix[y*b.Stride : y*b.Stride+w]
		for x := 0; x < w; x++ {
			d := int64(rowA[x]) - int64(rowB[x])
			sum += uint64(d * d)
		}
	}
	return float64(sum) / float64(w*h), nil
}

// Index computes the mean SSIM index with the default window size. It
// builds a throwaway Comparator; hot paths should hold one Comparator and
// reuse its scratch buffer across pairs.
func Index(a, b *image.Gray) (float64, error) {
	return New(DefaultWindow).Index(a, b)
}

// MSE computes the mean squared error between two equal-sized grayscale
// images — the "traditional similarity metric" the paper contrasts SSIM
// against. 0 means identical; larger is more different. This is the
// float64 direct-summation reference; Comparator.MSE computes the same
// value with integer arithmetic.
func MSE(a, b *image.Gray) (float64, error) {
	w, h := a.Rect.Dx(), a.Rect.Dy()
	if w != b.Rect.Dx() || h != b.Rect.Dy() {
		return 0, ErrSizeMismatch
	}
	if w == 0 || h == 0 {
		return 0, nil
	}
	var sum float64
	for y := 0; y < h; y++ {
		rowA := a.Pix[y*a.Stride:]
		rowB := b.Pix[y*b.Stride:]
		for x := 0; x < w; x++ {
			d := float64(rowA[x]) - float64(rowB[x])
			sum += d * d
		}
	}
	return sum / float64(w*h), nil
}

// PSNR computes peak signal-to-noise ratio in dB from an MSE value.
// Identical images yield +Inf.
func PSNR(mse float64) float64 {
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(dynamicRange*dynamicRange/mse)
}
