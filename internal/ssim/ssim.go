// Package ssim implements the Structural Similarity (SSIM) index of Wang,
// Bovik, Sheikh and Simoncelli ("Image quality assessment: from error
// visibility to structural similarity", IEEE TIP 2004) on grayscale images,
// plus the mean-squared-error baseline the paper contrasts it with (§VI-B).
//
// The paper's homograph detector computes a pair-wise SSIM index between a
// rendered IDN and each rendered brand domain, flagging the IDN as
// homographic when the maximum index exceeds 0.95. SSIM outputs lie in
// [-1, 1], with 1 meaning perfectly identical images.
package ssim

import (
	"errors"
	"image"
	"math"
)

// Default parameters from the SSIM paper: an 8x8 sliding window and
// stabilization constants derived from K1=0.01, K2=0.03 at dynamic range
// L=255.
const (
	DefaultWindow = 8
	k1            = 0.01
	k2            = 0.03
	dynamicRange  = 255.0
)

// ErrSizeMismatch reports two images with different dimensions; the caller
// decides the padding policy (package glyph renders fixed-width pairs).
var ErrSizeMismatch = errors.New("ssim: image dimensions differ")

// Comparator computes SSIM indices with a fixed window size. The zero value
// is not usable; use New.
type Comparator struct {
	window int
	c1, c2 float64
}

// New returns a Comparator with the given sliding-window size. Sizes
// smaller than 2 or larger than either image dimension at comparison time
// degrade to a single global window.
func New(window int) *Comparator {
	if window < 2 {
		window = 2
	}
	return &Comparator{
		window: window,
		c1:     (k1 * dynamicRange) * (k1 * dynamicRange),
		c2:     (k2 * dynamicRange) * (k2 * dynamicRange),
	}
}

// Index computes the mean SSIM index between two equal-sized grayscale
// images: the per-window SSIM averaged over all window positions (stride 1).
func (c *Comparator) Index(a, b *image.Gray) (float64, error) {
	w, h := a.Rect.Dx(), a.Rect.Dy()
	if w != b.Rect.Dx() || h != b.Rect.Dy() {
		return 0, ErrSizeMismatch
	}
	if w == 0 || h == 0 {
		return 1, nil // two empty images are identical
	}
	win := c.window
	if win > w {
		win = w
	}
	if win > h {
		win = h
	}
	var sum float64
	var count int
	for y := 0; y+win <= h; y++ {
		for x := 0; x+win <= w; x++ {
			sum += c.windowSSIM(a, b, x, y, win)
			count++
		}
	}
	if count == 0 {
		return c.windowSSIM(a, b, 0, 0, min(w, h)), nil
	}
	return sum / float64(count), nil
}

// windowSSIM computes the SSIM statistic over one win x win window.
func (c *Comparator) windowSSIM(a, b *image.Gray, x0, y0, win int) float64 {
	n := float64(win * win)
	var sumA, sumB, sumAA, sumBB, sumAB float64
	for y := y0; y < y0+win; y++ {
		rowA := a.Pix[y*a.Stride:]
		rowB := b.Pix[y*b.Stride:]
		for x := x0; x < x0+win; x++ {
			pa := float64(rowA[x])
			pb := float64(rowB[x])
			sumA += pa
			sumB += pb
			sumAA += pa * pa
			sumBB += pb * pb
			sumAB += pa * pb
		}
	}
	muA := sumA / n
	muB := sumB / n
	varA := sumAA/n - muA*muA
	varB := sumBB/n - muB*muB
	covAB := sumAB/n - muA*muB
	num := (2*muA*muB + c.c1) * (2*covAB + c.c2)
	den := (muA*muA + muB*muB + c.c1) * (varA + varB + c.c2)
	return num / den
}

// Index computes the mean SSIM index with the default window size.
func Index(a, b *image.Gray) (float64, error) {
	return New(DefaultWindow).Index(a, b)
}

// MSE computes the mean squared error between two equal-sized grayscale
// images — the "traditional similarity metric" the paper contrasts SSIM
// against. 0 means identical; larger is more different.
func MSE(a, b *image.Gray) (float64, error) {
	w, h := a.Rect.Dx(), a.Rect.Dy()
	if w != b.Rect.Dx() || h != b.Rect.Dy() {
		return 0, ErrSizeMismatch
	}
	if w == 0 || h == 0 {
		return 0, nil
	}
	var sum float64
	for y := 0; y < h; y++ {
		rowA := a.Pix[y*a.Stride:]
		rowB := b.Pix[y*b.Stride:]
		for x := 0; x < w; x++ {
			d := float64(rowA[x]) - float64(rowB[x])
			sum += d * d
		}
	}
	return sum / float64(w*h), nil
}

// PSNR computes peak signal-to-noise ratio in dB from an MSE value.
// Identical images yield +Inf.
func PSNR(mse float64) float64 {
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(dynamicRange*dynamicRange/mse)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
