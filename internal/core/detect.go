package core

import (
	"fmt"
	"image"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unicode/utf8"

	"idnlab/internal/brands"
	"idnlab/internal/candidx"
	"idnlab/internal/confusables"
	"idnlab/internal/feat"
	"idnlab/internal/glyph"
	"idnlab/internal/idna"
	"idnlab/internal/ssim"
)

// DefaultSSIMThreshold is the detection threshold in this renderer's SSIM
// space. The paper used 0.95 with its anti-aliased rendering; with our
// pixel typeface, single-diacritic homographs score ≥0.985 and unrelated
// single-letter swaps fall at 0.96-0.98 (see the Table XII reproduction),
// so 0.98 cuts the band at the same semantic point the paper's 0.95 did.
const DefaultSSIMThreshold = 0.98

// HomographMatch is one detected homographic IDN.
type HomographMatch struct {
	// Domain is the IDN in ACE form.
	Domain string `json:"domain"`
	// Unicode is the display form.
	Unicode string `json:"unicode"`
	// Brand is the impersonated brand domain.
	Brand string `json:"brand"`
	// SSIM is the maximum structural-similarity index against the brand
	// set; 1.0 means a pixel-identical rendering.
	SSIM float64 `json:"ssim"`
}

// HomographDetector finds registered IDNs that render visually similar to
// brand domains (§VI-B). It is safe for sequential reuse; not for
// concurrent use (it owns reusable raster and summed-area-table scratch
// buffers). Concurrent scans give each goroutine a Clone, which shares
// all immutable state — brand list, confusable table, the glyph atlas and
// the prerendered brand rasters — at the cost of only the private scratch.
type HomographDetector struct {
	threshold float64
	prefilter bool
	renderer  *glyph.Renderer
	cmp       *ssim.Comparator
	table     *confusables.Table
	// brandsByLabel indexes brands by SLD label for the skeleton
	// prefilter; brandList is the brute-force iteration order.
	brandsByLabel map[string]brands.Brand
	brandList     []brands.Brand
	// brandRefs maps each brand label to its prerendered raster plus the
	// precomputed reference-side summed-area table — every Score call
	// against a known brand hits this cache and skips both the render and
	// a third of the SSIM table build. brandWidths caches the rendered
	// width (runes × CellWidth) and brandLens the rune count of each
	// brandList entry, indexed in step with brandList. brandRefs and
	// brandWidths point at the process-wide brandCache (the brand list is
	// a fixed constant); all three are immutable, so Clones share them
	// without synchronization.
	brandRefs   map[string]*ssim.RefTable
	brandWidths map[string]int
	brandLens   []int
	// scratch is the reusable candidate raster; scratchRef the reusable
	// reference raster for Score calls against labels outside the brand
	// set. Both are private to this instance (never shared by Clone).
	// scratchLabel/scratchWidth memoize what scratch currently holds, so
	// the brute-force brand sweep re-renders a candidate only when the
	// target width actually changes.
	scratch      *image.Gray
	scratchRef   *image.Gray
	scratchLabel string
	scratchWidth int
	// customBrands, when set (WithBrands / WithIndex), replaces the
	// global top-k catalog; index is the precomputed candidate index
	// DetectNormalized consults before any sweep, and probe its private
	// lookup scratch (never shared by Clone).
	customBrands []brands.Brand
	index        *candidx.Index
	probe        *candidx.Probe
	// stat, when set (WithStatModel), is the trained statistical
	// classifier run as a learned prefilter in front of the SSIM path:
	// labels scoring below the model's prefilter floor are shed before
	// any render or rescore. The model is immutable and shared by
	// Clones; counters aggregates observability counters across all
	// Clones of one construction (the pointer survives the copy in
	// Clone, so every worker increments the same atomics).
	stat     *feat.Model
	counters *detectorCounters
}

// detectorCounters are the detector family's shared observability
// counters, surfaced at /metrics by both the serving and watch tiers.
type detectorCounters struct {
	// rescoreEarlyExit counts bounded rescores (ScoreBounded against a
	// known brand) that exited before completing the window sweep — the
	// PR-7 optimization that was previously unobservable.
	rescoreEarlyExit atomic.Uint64
	// prefilterPass / prefilterShed count statistical-prefilter
	// admissions and sheds of the expensive homograph path.
	prefilterPass atomic.Uint64
	prefilterShed atomic.Uint64
}

// DetectorStats is the wire form of the detector family's shared
// counters. The rescore_early_exit key is the contract both idnserve
// and idnwatch expose at /metrics.
type DetectorStats struct {
	RescoreEarlyExit uint64 `json:"rescore_early_exit"`
	PrefilterPass    uint64 `json:"prefilter_pass"`
	PrefilterShed    uint64 `json:"prefilter_shed"`
	StatLoaded       bool   `json:"stat_loaded"`
}

// Stats snapshots the counters aggregated across this detector and all
// its Clones.
func (d *HomographDetector) Stats() DetectorStats {
	return DetectorStats{
		RescoreEarlyExit: d.counters.rescoreEarlyExit.Load(),
		PrefilterPass:    d.counters.prefilterPass.Load(),
		PrefilterShed:    d.counters.prefilterShed.Load(),
		StatLoaded:       d.stat != nil,
	}
}

// StatModel returns the attached statistical model, nil when the
// detector runs without the learned prefilter.
func (d *HomographDetector) StatModel() *feat.Model { return d.stat }

// HomographOption configures the detector.
type HomographOption func(*HomographDetector)

// WithThreshold overrides the SSIM detection threshold.
func WithThreshold(t float64) HomographOption {
	return func(d *HomographDetector) { d.threshold = t }
}

// WithoutPrefilter disables the confusable-skeleton prefilter and compares
// every IDN against every brand pair-wise — the paper's brute-force mode
// (102 hours on their corpus). Used by the ablation benchmark.
func WithoutPrefilter() HomographOption {
	return func(d *HomographDetector) { d.prefilter = false }
}

// WithStatModel attaches a trained statistical classifier as a learned
// prefilter: DetectNormalized scores the label first and sheds
// everything below the model's prefilter floor without rendering a
// pixel. With no model attached (the default) detection is bit-
// identical to the pre-ensemble behavior.
func WithStatModel(m *feat.Model) HomographOption {
	return func(d *HomographDetector) { d.stat = m }
}

// NewHomographDetector builds a detector over the top-k brand list.
func NewHomographDetector(topK int, opts ...HomographOption) *HomographDetector {
	d := &HomographDetector{
		threshold:     DefaultSSIMThreshold,
		prefilter:     true,
		renderer:      glyph.NewRenderer(),
		cmp:           ssim.New(ssim.DefaultWindow),
		table:         confusables.Default(),
		brandsByLabel: make(map[string]brands.Brand, topK),
		counters:      &detectorCounters{},
	}
	for _, o := range opts {
		o(d)
	}
	d.resolveBrandSetup(topK)
	for _, b := range d.brandList {
		if _, dup := d.brandsByLabel[b.Label()]; !dup {
			d.brandsByLabel[b.Label()] = b
		}
	}
	// Score, brute-force DetectOne and AvailabilityStudy all reference
	// brands at exactly their own width, so the shared prerender cache
	// covers every hot-path render and half of every hot-path
	// integral-image build. A custom catalog (WithBrands / WithIndex)
	// extends it with private prerenders, so Score stays on the
	// precomputed-table path for every brand either way.
	d.brandRefs, d.brandWidths = brandCache()
	if d.customBrands != nil {
		d.brandRefs, d.brandWidths = extendBrandCache(d.renderer, d.brandRefs, d.brandWidths, d.brandList)
	}
	d.brandLens = make([]int, len(d.brandList))
	for i, b := range d.brandList {
		d.brandLens[i] = utf8.RuneCountInString(b.Label())
	}
	return d
}

// brandCache prerenders every brand label in the fixed top-1000 list at
// its own width and precomputes the reference-side SSIM table for each,
// once per process. The brand list is a global constant, so detectors
// (and benchmark loops that construct fresh engines per scan) all share
// one immutable cache instead of re-rendering a thousand rasters per
// construction. ~9 MB resident for the full list, held for the process
// lifetime.
var (
	brandCacheOnce   sync.Once
	brandCacheRefs   map[string]*ssim.RefTable
	brandCacheWidths map[string]int
)

func brandCache() (map[string]*ssim.RefTable, map[string]int) {
	brandCacheOnce.Do(func() {
		all := brands.List()
		re := glyph.NewRenderer()
		brandCacheRefs = make(map[string]*ssim.RefTable, len(all))
		brandCacheWidths = make(map[string]int, len(all))
		for _, b := range all {
			label := b.Label()
			if _, dup := brandCacheRefs[label]; dup {
				continue
			}
			width := utf8.RuneCountInString(label) * glyph.CellWidth
			brandCacheWidths[label] = width
			brandCacheRefs[label] = ssim.Precompute(re.RenderWidth(label, width))
		}
	})
	return brandCacheRefs, brandCacheWidths
}

// Clone returns a detector that shares this detector's immutable state —
// threshold, brand list and index, confusable table, renderer (itself
// backed by the process-wide glyph atlas) and the prerendered brand
// rasters — while owning fresh private scratch buffers. Clones are cheap
// (no brand re-rendering, no table rebuild) and safe to use concurrently
// with each other and with the original, as long as each individual
// detector stays on one goroutine.
func (d *HomographDetector) Clone() *HomographDetector {
	// The struct copy carries the stat model and the counters pointer:
	// clones score through the same immutable model and aggregate into
	// the same shared counters.
	c := *d
	c.cmp = ssim.New(ssim.DefaultWindow)
	c.scratch = nil
	c.scratchRef = nil
	c.scratchLabel = ""
	c.scratchWidth = 0
	c.probe = nil
	return &c
}

// Threshold returns the active SSIM threshold.
func (d *HomographDetector) Threshold() float64 { return d.threshold }

// Score computes the SSIM between an IDN label and a brand label, rendered
// at the brand's width. When brandLabel is in the brand set the reference
// raster and its precomputed summed-area table come from the construction-
// time cache; the candidate raster reuses the detector's scratch buffer
// and is itself memoized across consecutive calls with the same label and
// width (the brute-force brand sweep). In steady state a Score call
// allocates nothing.
func (d *HomographDetector) Score(label, brandLabel string) float64 {
	width, known := d.brandWidths[brandLabel]
	if !known {
		width = utf8.RuneCountInString(brandLabel) * glyph.CellWidth
	}
	if d.scratch == nil || label != d.scratchLabel || width != d.scratchWidth {
		d.scratch = d.renderer.RenderWidthInto(d.scratch, label, width)
		d.scratchLabel = label
		d.scratchWidth = width
	}
	var v float64
	var err error
	if known {
		v, err = d.cmp.IndexRef(d.brandRefs[brandLabel], d.scratch)
	} else {
		d.scratchRef = d.renderer.RenderWidthInto(d.scratchRef, brandLabel, width)
		v, err = d.cmp.Index(d.scratchRef, d.scratch)
	}
	if err != nil {
		return -1
	}
	return v
}

// ScoreBounded is Score with an early-exit floor for rescore loops that
// only act on scores at or above min — the index-backed detection path,
// where most candidates fall short of the threshold and the exact
// deficit is irrelevant. It returns (score, true) with score identical
// to Score's when the score is at least min, and (partial, false) —
// guaranteeing Score would return strictly less than min — otherwise.
func (d *HomographDetector) ScoreBounded(label, brandLabel string, min float64) (float64, bool) {
	width, known := d.brandWidths[brandLabel]
	if !known {
		width = utf8.RuneCountInString(brandLabel) * glyph.CellWidth
	}
	if d.scratch == nil || label != d.scratchLabel || width != d.scratchWidth {
		d.scratch = d.renderer.RenderWidthInto(d.scratch, label, width)
		d.scratchLabel = label
		d.scratchWidth = width
	}
	if known {
		v, ok, err := d.cmp.IndexRefBounded(d.brandRefs[brandLabel], d.scratch, min)
		if err != nil {
			return -1, false
		}
		if !ok {
			// A genuine early exit: the kernel proved the exact index
			// falls below min without finishing the window sweep. (The
			// unknown-brand fallback below completes its sweep either
			// way, so it never counts.)
			d.counters.rescoreEarlyExit.Add(1)
		}
		return v, ok
	}
	d.scratchRef = d.renderer.RenderWidthInto(d.scratchRef, brandLabel, width)
	v, err := d.cmp.Index(d.scratchRef, d.scratch)
	if err != nil {
		return -1, false
	}
	return v, v >= min
}

// DetectOne checks a single domain (ACE or Unicode form) against the brand
// set and returns the best match at or above the threshold.
func (d *HomographDetector) DetectOne(domain string) (HomographMatch, bool) {
	n, err := Normalize(domain)
	if err != nil {
		return HomographMatch{}, false
	}
	return d.DetectNormalized(n)
}

// DetectNormalized is DetectOne over an already-normalized domain: the
// serving layer normalizes once at the request boundary and reuses the
// result across the cache key and both detectors, instead of paying the
// IDNA round-trip in every detector.
func (d *HomographDetector) DetectNormalized(n NormalizedDomain) (HomographMatch, bool) {
	if n.ASCII {
		return HomographMatch{}, false // homographs need non-ASCII content
	}
	if d.stat != nil && !d.AdmitStat(d.stat.ScoreLabel(n.Label, idna.SLDLabel(n.ACE), idna.TLD(n.ACE))) {
		return HomographMatch{}, false // shed by the learned prefilter
	}
	return d.detectFull(n)
}

// AdmitStat applies the statistical prefilter decision to a raw margin
// already computed by the caller (the ensemble classifier scores once
// and reuses the margin for both the verdict and the gate), updating
// the shared pass/shed counters. It must only be called with a model
// attached.
func (d *HomographDetector) AdmitStat(raw float64) bool {
	if raw < d.stat.PrefilterRaw() {
		d.counters.prefilterShed.Add(1)
		return false
	}
	d.counters.prefilterPass.Add(1)
	return true
}

// detectFull is DetectNormalized past the gates: the index-backed path
// when an index is attached, the skeleton-prefilter or brute-force
// sweep otherwise. Callers guarantee a non-ASCII label.
func (d *HomographDetector) detectFull(n NormalizedDomain) (HomographMatch, bool) {
	if d.index != nil {
		// Index first: O(1) candidate probes plus a rescore of the few
		// hits, bit-identical to the sweep below by construction.
		return d.detectIndexed(n)
	}
	label := n.Label
	best := HomographMatch{Domain: n.ACE, Unicode: n.Unicode, SSIM: -1}
	if d.prefilter {
		skel := d.table.Skeleton(label)
		b, ok := d.brandsByLabel[skel]
		if !ok || !isASCII(skel) {
			return HomographMatch{}, false
		}
		if score := d.Score(label, b.Label()); score >= d.threshold {
			best.Brand = b.Domain
			best.SSIM = score
			return best, true
		}
		return HomographMatch{}, false
	}
	labelLen := utf8.RuneCountInString(label)
	for i, b := range d.brandList {
		// Pair-wise over all brands, skipping only wildly different
		// lengths (SSIM over padded images cannot reach the threshold
		// with more than one cell of length difference). Rune counts come
		// from the construction-time cache.
		if diff := labelLen - d.brandLens[i]; diff > 1 || diff < -1 {
			continue
		}
		if score := d.Score(label, b.Label()); score > best.SSIM {
			best.SSIM = score
			best.Brand = b.Domain
		}
	}
	if best.SSIM >= d.threshold {
		return best, true
	}
	return HomographMatch{}, false
}

// Detect scans a domain corpus and returns all homographic matches, sorted
// by brand then domain.
func (d *HomographDetector) Detect(domains []string) []HomographMatch {
	var out []HomographMatch
	for _, domain := range domains {
		if m, ok := d.DetectOne(domain); ok {
			out = append(out, m)
		}
	}
	sortHomographMatches(out)
	return out
}

func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// SemanticMatch is one detected Type-1 semantic IDN.
type SemanticMatch struct {
	// Domain is the IDN in ACE form.
	Domain string `json:"domain"`
	// Unicode is the display form.
	Unicode string `json:"unicode"`
	// Brand is the brand whose label the ASCII residue equals.
	Brand string `json:"brand"`
	// Keyword is the non-ASCII remainder of the label.
	Keyword string `json:"keyword"`
}

// SemanticDetector finds Type-1 semantic IDNs: labels whose ASCII residue
// is identical to a brand label after removing all non-ASCII characters
// (§VII-A: the paper selects IDNs whose ASCII-only part renders with SSIM
// exactly 1.0 against a brand — string identity under a shared renderer).
type SemanticDetector struct {
	brandsByLabel map[string]brands.Brand
}

// NewSemanticDetector builds a detector over the top-k brand list.
func NewSemanticDetector(topK int) *SemanticDetector {
	d := &SemanticDetector{brandsByLabel: make(map[string]brands.Brand, topK)}
	for _, b := range brands.TopK(topK) {
		if _, dup := d.brandsByLabel[b.Label()]; !dup {
			d.brandsByLabel[b.Label()] = b
		}
	}
	return d
}

// DetectOne checks one domain for Type-1 semantic abuse.
func (d *SemanticDetector) DetectOne(domain string) (SemanticMatch, bool) {
	n, err := Normalize(domain)
	if err != nil {
		return SemanticMatch{}, false
	}
	return d.DetectNormalized(n)
}

// DetectNormalized is DetectOne over an already-normalized domain; see
// HomographDetector.DetectNormalized for the sharing rationale.
func (d *SemanticDetector) DetectNormalized(n NormalizedDomain) (SemanticMatch, bool) {
	if n.ASCII {
		return SemanticMatch{}, false // needs at least one non-ASCII rune
	}
	var residue, keyword strings.Builder
	for _, r := range n.Label {
		if r < 0x80 {
			residue.WriteRune(r)
		} else {
			keyword.WriteRune(r)
		}
	}
	if keyword.Len() == 0 || residue.Len() == 0 {
		return SemanticMatch{}, false
	}
	b, ok := d.brandsByLabel[residue.String()]
	if !ok {
		return SemanticMatch{}, false
	}
	return SemanticMatch{Domain: n.ACE, Unicode: n.Unicode, Brand: b.Domain, Keyword: keyword.String()}, true
}

// Detect scans a corpus for Type-1 semantic IDNs.
func (d *SemanticDetector) Detect(domains []string) []SemanticMatch {
	var out []SemanticMatch
	for _, domain := range domains {
		if m, ok := d.DetectOne(domain); ok {
			out = append(out, m)
		}
	}
	sortSemanticMatches(out)
	return out
}

// BrandRanking aggregates detected matches per brand — the shape of
// Tables XIII and XIV.
type BrandRanking struct {
	Brand string `json:"brand"`
	Count int    `json:"count"`
}

// RankBrands counts matches per brand, descending.
func RankBrands[T any](matches []T, brandOf func(T) string) []BrandRanking {
	counts := make(map[string]int)
	for _, m := range matches {
		counts[brandOf(m)]++
	}
	out := make([]BrandRanking, 0, len(counts))
	for b, n := range counts {
		out = append(out, BrandRanking{Brand: b, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Brand < out[j].Brand
	})
	return out
}

// AvailabilityResult summarizes the §VI-D availability study for one
// brand.
type AvailabilityResult struct {
	Brand       string
	Candidates  int // single-substitution variants generated
	Homographic int // variants scoring at or above the threshold
	Registered  int // homographic variants already in the corpus
}

// GenerationOverlapThreshold is the ink-overlap bound for the loose
// candidate-generation table used by the availability study. It is
// deliberately below the detection table's threshold so the generated
// space includes weak lookalikes that SSIM then filters out — matching the
// paper's 42,671-of-128,432 survivor ratio under UC-SimList.
const GenerationOverlapThreshold = 0.60

// availabilityTLDBit maps a study TLD to its bit in the registration
// bitmask ("com"=1, "net"=2, "org"=4; 0 for any other TLD).
func availabilityTLDBit(tld string) uint8 {
	switch tld {
	case "com":
		return 1
	case "net":
		return 2
	case "org":
		return 4
	}
	return 0
}

// AvailabilityStudy generates the single-substitution candidate space for
// the top-k brands, scores it with SSIM, and checks registration against
// the corpus — Figures 6 and 7. registered must be the sorted IDN corpus.
// It decodes the corpus into the Unicode-label registration map and runs
// AvailabilityStudyReg; callers that hold a corpus Index should pass
// Index.AvailabilityReg directly and skip the decoding.
func (d *HomographDetector) AvailabilityStudy(topK int, registered []string) []AvailabilityResult {
	regUni := make(map[string]uint8)
	for _, r := range registered {
		bit := availabilityTLDBit(idna.TLD(r))
		if bit == 0 {
			continue
		}
		uni, err := idna.ToUnicode(r)
		if err != nil {
			// An entry that does not decode cannot be the encoding of any
			// variant, so it could never have matched.
			continue
		}
		regUni[idna.SLDLabel(uni)] |= bit
	}
	return d.AvailabilityStudyReg(topK, regUni)
}

// AvailabilityStudyReg is AvailabilityStudy against a prebuilt
// registration map (Unicode SLD label → study-TLD bitmask, as built by
// Index.AvailabilityReg).
//
// The sweep exploits the single-substitution structure: no candidate is
// ever rendered. For each position × homoglyph pair, the diff bounding box
// of the two glyph cells (glyph.DiffBox) tells the SSIM kernel exactly
// which pixels the substitution can change; the homoglyph's pixels inside
// that box are emitted as a tiny patch (glyph.AppendPatch) and scored
// directly against the brand's precomputed reference table
// (ssim.IndexRefSubPatch), which computes real window statistics only for
// windows overlapping the box. Candidate strings are materialized only as
// a reusable key buffer for the few variants that clear the threshold, and
// their registration check is one map lookup (matching ACE-set membership
// exactly: punycode is a bijection between valid Unicode labels and their
// ACE forms). Scores and counts are identical to the render-and-Score loop
// — pinned by TestAvailabilityStudyEquivalence.
func (d *HomographDetector) AvailabilityStudyReg(topK int, regUni map[string]uint8) []AvailabilityResult {
	genTable := confusables.Multi(GenerationOverlapThreshold)
	var out []AvailabilityResult
	keyBuf := make([]byte, 0, 64)
	// Candidate geometry is a pure function of the (base, homoglyph) glyph
	// pair: the diff bounding box and the homoglyph's pixels inside it.
	// There are only a few dozen bases with a few dozen homoglyphs each,
	// while the sweep visits tens of thousands of (brand, position,
	// homoglyph) triples — so the boxes and patches are computed once per
	// base and replayed everywhere that letter appears. The memoization
	// lives in candidx.GeomCache, the same expansion the candidate-index
	// builder runs offline; geometry is computed by one code path whether
	// the sweep happens at build time or report time.
	geoCache := candidx.NewGeomCache(d.renderer)
	candsOf := func(base rune) []candidx.SubGeom {
		return geoCache.Of(base, genTable.Homoglyphs(base))
	}
	for _, b := range brands.TopK(topK) {
		label := b.Label()
		res := AvailabilityResult{Brand: b.Domain}
		rt, cached := d.brandRefs[label]
		if !cached || !rt.Packed() {
			// Label outside the prerender cache (or too wide for the packed
			// table): fall back to the materialize-and-Score sweep (same
			// iteration order).
			for _, v := range genTable.Variants(label) {
				res.Candidates++
				if d.Score(v, label) < d.threshold {
					continue
				}
				res.Homographic++
				res.Registered += tldBitCount(regUni[v])
			}
			out = append(out, res)
			continue
		}
		cellIdx := 0
		for byteOff, base := range label {
			i := cellIdx
			cellIdx++
			list := candsOf(base)
			if len(list) == 0 {
				continue
			}
			baseLen := utf8.RuneLen(base)
			cellX := i * glyph.CellWidth
			for ci := range list {
				cnd := &list[ci]
				res.Candidates++
				// For a pixel-identical homoglyph (empty box) the candidate
				// raster equals the brand raster and the score is exactly
				// 1.0 without touching the kernel.
				if cnd.DX0 == cnd.DX1 {
					if 1.0 < d.threshold {
						continue
					}
				} else {
					above, err := d.cmp.RefSubPatchAbove(rt,
						cellX+cnd.DX0, cellX+cnd.DX1, cnd.DY0, cnd.DY1,
						cnd.Patch, d.threshold)
					if err != nil || !above {
						continue
					}
				}
				res.Homographic++
				// Splice the variant into the reusable key buffer; the
				// map lookup on string(keyBuf) compiles without a copy.
				keyBuf = append(keyBuf[:0], label[:byteOff]...)
				keyBuf = utf8.AppendRune(keyBuf, cnd.R)
				keyBuf = append(keyBuf, label[byteOff+baseLen:]...)
				res.Registered += tldBitCount(regUni[string(keyBuf)])
			}
		}
		out = append(out, res)
	}
	return out
}

// tldBitCount counts the set bits of a study-TLD registration bitmask.
func tldBitCount(b uint8) int {
	return int(b&1 + b>>1&1 + b>>2&1)
}

// String renders a match for logs and examples.
func (m HomographMatch) String() string {
	return fmt.Sprintf("%s (%s) ~ %s [SSIM %.3f]", m.Unicode, m.Domain, m.Brand, m.SSIM)
}

// String renders a semantic match.
func (m SemanticMatch) String() string {
	return fmt.Sprintf("%s (%s) = %s + %q", m.Unicode, m.Domain, m.Brand, m.Keyword)
}
