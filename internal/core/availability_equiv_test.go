package core

import (
	"testing"

	"idnlab/internal/brands"
	"idnlab/internal/confusables"
	"idnlab/internal/idna"
)

// availabilityReference is the materialize-and-Score sweep the cell-patch
// fast path replaced: every variant string is built, rendered in full and
// scored through Score. It is the oracle for the equivalence test below.
func availabilityReference(d *HomographDetector, topK int, registered []string) []AvailabilityResult {
	regSet := make(map[string]struct{}, len(registered))
	for _, r := range registered {
		regSet[r] = struct{}{}
	}
	genTable := confusables.BuildMulti(GenerationOverlapThreshold)
	var out []AvailabilityResult
	for _, b := range brands.TopK(topK) {
		label := b.Label()
		res := AvailabilityResult{Brand: b.Domain}
		for _, v := range genTable.Variants(label) {
			res.Candidates++
			if d.Score(v, label) < d.threshold {
				continue
			}
			res.Homographic++
			ace, err := idna.ToASCIILabel(v)
			if err != nil {
				continue
			}
			for _, tld := range []string{"com", "net", "org"} {
				if _, ok := regSet[ace+"."+tld]; ok {
					res.Registered++
				}
			}
		}
		out = append(out, res)
	}
	return out
}

// TestAvailabilityStudyEquivalence pins the cell-patching availability
// sweep to the brute-force reference: every per-brand candidate,
// homographic and registered count must agree, because the patched raster
// is pixel-identical to a full render and IndexRefSub is bit-identical to
// IndexRef.
func TestAvailabilityStudyEquivalence(t *testing.T) {
	got := NewHomographDetector(50).AvailabilityStudy(50, testDS.IDNs)
	want := availabilityReference(NewHomographDetector(50), 50, testDS.IDNs)
	if len(got) != len(want) {
		t.Fatalf("result length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("brand %q: fast path %+v, reference %+v", want[i].Brand, got[i], want[i])
		}
	}
}

// TestAvailabilityStudyCloneIsolation runs the sweep on a Clone and on the
// original concurrently-shaped state: a Clone must own its own SSIM
// scratch (no shared Comparator buffer) and produce identical results.
func TestAvailabilityStudyCloneIsolation(t *testing.T) {
	d := NewHomographDetector(20)
	orig := d.AvailabilityStudy(20, testDS.IDNs)
	c := d.Clone()
	if c.cmp == d.cmp {
		t.Fatal("Clone shares the SSIM comparator scratch")
	}
	cloned := c.AvailabilityStudy(20, testDS.IDNs)
	for i := range orig {
		if orig[i] != cloned[i] {
			t.Fatalf("clone diverges at %q: %+v vs %+v", orig[i].Brand, cloned[i], orig[i])
		}
	}
}
