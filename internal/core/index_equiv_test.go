package core

import (
	"math"
	"testing"

	"idnlab/internal/brands"
	"idnlab/internal/candidx"
	"idnlab/internal/simchar"
	"idnlab/internal/simrand"
)

// The equivalence battery: index-backed DetectNormalized must return
// byte-identical verdicts to the retained SSIM brute sweep, across a
// randomized brand catalog and an adversarial label corpus that leans on
// every class the index distinguishes — identity twins, family
// diacritics, cross-base confusables, unfoldable hash glyphs, length ±1
// comparisons and multi-substitution composites. The sweep is the
// specification; any divergence is an index completeness bug.

// genBrandCorpus deterministically generates n ASCII LDH brand labels of
// varied lengths, with a few deliberate duplicates to exercise the
// first-at-max tie-break.
func genBrandCorpus(src *simrand.Source, n int) []brands.Brand {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	list := make([]brands.Brand, 0, n)
	for i := 0; i < n; i++ {
		if i > 0 && src.Bool(0.02) {
			// Duplicate an earlier label under a new ID.
			dup := list[src.Intn(len(list))]
			list = append(list, brands.Brand{Domain: dup.Domain, Rank: i + 1})
			continue
		}
		m := 3 + src.Intn(18)
		label := make([]byte, 0, m)
		for j := 0; j < m; j++ {
			switch {
			case j > 0 && j < m-1 && src.Bool(0.03):
				label = append(label, '-')
			case src.Bool(0.06):
				label = append(label, byte('0'+src.Intn(10)))
			default:
				label = append(label, letters[src.Intn(26)])
			}
		}
		list = append(list, brands.Brand{Domain: string(label) + ".com", Rank: i + 1})
	}
	return list
}

// mutateLabel derives one adversarial probe label from a brand label.
func mutateLabel(src *simrand.Source, tab *simchar.Table, label string) string {
	runes := []rune(label)
	if len(runes) == 0 {
		return label
	}
	// Structural edit first (sometimes): grow or shrink by one rune so
	// the truncation and padded comparison classes stay hot.
	switch src.Intn(6) {
	case 0:
		runes = append(runes, substitutionFor(src, tab, 'o'))
	case 1:
		if len(runes) > 2 {
			runes = runes[:len(runes)-1]
		}
	case 2:
		if len(runes) > 2 {
			pos := src.Intn(len(runes))
			runes = append(runes[:pos], runes[pos+1:]...)
		}
	}
	// One to three substitutions.
	subs := 1 + src.Intn(3)
	for s := 0; s < subs && len(runes) > 0; s++ {
		pos := src.Intn(len(runes))
		base := runes[pos]
		if base > 0x7F {
			continue
		}
		runes[pos] = substitutionFor(src, tab, base)
	}
	return string(runes)
}

// substitutionFor picks a substitute for an ASCII base across the index's
// confusability classes.
func substitutionFor(src *simrand.Source, tab *simchar.Table, base rune) rune {
	b := byte(base)
	switch src.Intn(10) {
	case 0, 1, 2: // family member of the same base (identity or diacritic)
		if sims := tab.Similar(b); len(sims) > 0 {
			return sims[src.Intn(min(len(sims), 12))].Rune
		}
	case 3, 4: // deep family tail (low-similarity variant of same base)
		if sims := tab.Similar(b); len(sims) > 0 {
			return sims[src.Intn(len(sims))].Rune
		}
	case 5, 6: // cross-base confusable: folds to a different base
		other := byte(simchar.Bases[src.Intn(len(simchar.Bases))])
		if sims := tab.Similar(other); len(sims) > 0 {
			return sims[src.Intn(min(len(sims), 8))].Rune
		}
	case 7: // unfoldable hash glyph
		return rune(0x4E00 + src.Intn(0x2000))
	case 8: // plain ASCII swap
		return rune('a' + src.Intn(26))
	}
	return base
}

func TestIndexEquivalence(t *testing.T) {
	src := simrand.New(0x1D9A_7C3E)
	list := genBrandCorpus(src.Fork("brands"), equivBrandCount)

	ix, err := candidx.Build(list, candidx.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ref := NewHomographDetector(0, WithoutPrefilter(), WithBrands(list))
	idx := NewHomographDetector(0, WithIndex(ix))

	lsrc := src.Fork("labels")
	tab := simchar.Default()
	checked, matched := 0, 0
	for i := 0; i < equivLabelCount; i++ {
		brand := list[lsrc.Intn(len(list))]
		label := mutateLabel(lsrc, tab, brand.Label())
		domain := label + ".com"
		n, err := Normalize(domain)
		if err != nil {
			continue
		}
		wantM, wantOK := ref.DetectNormalized(n)
		gotM, gotOK := idx.DetectNormalized(n)
		if wantOK != gotOK {
			t.Fatalf("label %q (%s): sweep ok=%v, index ok=%v (sweep match %+v)",
				label, n.ACE, wantOK, gotOK, wantM)
		}
		if wantOK && !sameMatch(wantM, gotM) {
			t.Fatalf("label %q: verdicts differ\nsweep: %+v (ssim bits %x)\nindex: %+v (ssim bits %x)",
				label, wantM, math.Float64bits(wantM.SSIM), gotM, math.Float64bits(gotM.SSIM))
		}
		checked++
		if wantOK {
			matched++
		}
	}
	if checked < equivLabelCount/2 {
		t.Fatalf("only %d/%d labels survived normalization; generator broken", checked, equivLabelCount)
	}
	if matched == 0 {
		t.Fatal("no label matched any brand; corpus exercises nothing")
	}
	t.Logf("equivalence held on %d labels (%d matches) over %d brands", checked, matched, len(list))
}

// sameMatch compares verdicts bit-exactly, including the SSIM float.
func sameMatch(a, b HomographMatch) bool {
	return a.Domain == b.Domain && a.Unicode == b.Unicode &&
		a.Brand == b.Brand && math.Float64bits(a.SSIM) == math.Float64bits(b.SSIM)
}

// TestIndexEquivalenceRegistryBrands runs the same comparison over the
// repo's own synthetic brand registry — the catalog serve actually loads
// — with near-miss probes derived from real homoglyph lists.
func TestIndexEquivalenceRegistryBrands(t *testing.T) {
	list := brands.TopK(500)
	ix, err := candidx.Build(list, candidx.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ref := NewHomographDetector(0, WithoutPrefilter(), WithBrands(list))
	idx := NewHomographDetector(0, WithIndex(ix))

	src := simrand.New(0xBEEF)
	tab := simchar.Default()
	for i := 0; i < 400; i++ {
		brand := list[src.Intn(len(list))]
		label := mutateLabel(src, tab, brand.Label())
		n, err := Normalize(label + ".net")
		if err != nil {
			continue
		}
		wantM, wantOK := ref.DetectNormalized(n)
		gotM, gotOK := idx.DetectNormalized(n)
		if wantOK != gotOK || (wantOK && !sameMatch(wantM, gotM)) {
			t.Fatalf("label %q: sweep (%+v, %v) != index (%+v, %v)",
				label, wantM, wantOK, gotM, gotOK)
		}
	}
}

// TestIndexedDetectorMatchesOnCanaries pins the serve warmup canaries
// through the indexed path.
func TestIndexedDetectorMatchesOnCanaries(t *testing.T) {
	list := brands.TopK(1000)
	ix, err := candidx.Build(list, candidx.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ref := NewHomographDetector(0, WithoutPrefilter(), WithBrands(list))
	idx := NewHomographDetector(0, WithIndex(ix))
	for _, domain := range []string{"xn--pple-43d.com", "apple邮箱.com", "example.com"} {
		n, err := Normalize(domain)
		if err != nil {
			t.Fatalf("%s: %v", domain, err)
		}
		wantM, wantOK := ref.DetectNormalized(n)
		gotM, gotOK := idx.DetectNormalized(n)
		if wantOK != gotOK || (wantOK && !sameMatch(wantM, gotM)) {
			t.Fatalf("%s: sweep (%+v, %v) != index (%+v, %v)", domain, wantM, wantOK, gotM, gotOK)
		}
	}
}

// Guard against accidentally shrinking the plain-run battery: the
// acceptance criterion is 10k brands without the race detector.
func TestEquivScale(t *testing.T) {
	if raceEnabled {
		t.Skip("race build runs the reduced battery")
	}
	if equivBrandCount < 10000 {
		t.Fatalf("equivBrandCount = %d, want >= 10000", equivBrandCount)
	}
}
