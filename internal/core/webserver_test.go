package core

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"idnlab/internal/webprobe"
)

// noRedirectClient keeps 3xx responses observable (redirect targets are
// external and must not be followed during classification).
func noRedirectClient() *http.Client {
	return &http.Client{
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
}

func TestCrawlHTTPMatchesDirectProbe(t *testing.T) {
	srv := httptest.NewServer(WebHandler(testDS))
	defer srv.Close()
	client := noRedirectClient()

	checked := 0
	for _, d := range testDS.IDNs {
		if checked >= 300 {
			break
		}
		checked++
		viaHTTP, err := CrawlHTTP(client, srv.URL, d)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		direct := webprobe.Classify(testDS.Probe(d))
		if viaHTTP != direct {
			t.Errorf("%s: HTTP crawl classified %v, direct probe %v", d, viaHTTP, direct)
		}
	}
}

func TestCrawlHTTPUnregistered(t *testing.T) {
	srv := httptest.NewServer(WebHandler(testDS))
	defer srv.Close()
	state, err := CrawlHTTP(noRedirectClient(), srv.URL, "unregistered-host.example")
	if err != nil {
		t.Fatal(err)
	}
	if state != webprobe.NotResolved {
		t.Errorf("state = %v, want NotResolved", state)
	}
}

func TestWebHandlerParkedCertHeader(t *testing.T) {
	// Find a parked domain with a shared certificate and confirm the
	// serving CN surfaces over HTTP, coupling Table V to Table VII.
	srv := httptest.NewServer(WebHandler(testDS))
	defer srv.Close()
	client := noRedirectClient()
	reg := testDS.Registry
	for i := range reg.Domains {
		d := &reg.Domains[i]
		if d.Hosting != webprobe.Parked || d.SharedCN == "" {
			continue
		}
		req, err := http.NewRequest(http.MethodGet, srv.URL+"/", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Host = d.ACE
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get("X-Served-With-Certificate"); got != d.SharedCN {
			t.Errorf("%s: cert header = %q, want %q", d.ACE, got, d.SharedCN)
		}
		return
	}
	t.Skip("no parked domain with shared certificate at this scale")
}
