// Package core implements the paper's measurement pipeline: assembling the
// IDN dataset from zone files, correlating it with WHOIS, passive DNS,
// blacklists, certificates and web content, and running the two abuse
// detectors (homograph, §VI; Type-1 semantic, §VII).
//
// The pipeline consumes only materialized data sources — zone files and
// the auxiliary stores — never the generator's ground truth, mirroring how
// the authors consumed their feeds.
package core

import (
	"fmt"
	"sort"
	"sync"

	"idnlab/internal/blacklist"
	"idnlab/internal/certs"
	"idnlab/internal/dnssim"
	"idnlab/internal/idna"
	"idnlab/internal/pdns"
	"idnlab/internal/webprobe"
	"idnlab/internal/whois"
	"idnlab/internal/zonefile"
	"idnlab/internal/zonegen"
)

// Dataset is the assembled study corpus: the discovered IDN population,
// the sampled non-IDN comparison population, and the auxiliary stores.
type Dataset struct {
	// IDNs holds the ACE names discovered by the zone scan, sorted.
	IDNs []string
	// NonIDNs holds the sampled comparison population, sorted.
	NonIDNs []string
	// PerTLD is the Table I accounting, one row per scanned zone group.
	PerTLD []TLDRow
	// Auxiliary stores.
	WHOIS      *whois.Store
	PDNS       *pdns.Store
	Blacklists *blacklist.Aggregate
	Certs      *certs.Store
	Authority  *certs.Authority
	// DNS is the authoritative server the crawler resolves against;
	// Resolver is a stub resolver wired to it in memory.
	DNS      *dnssim.Server
	Resolver *dnssim.Resolver
	// Registry is retained for serving web content (the "live Internet"
	// the crawler probes); measurements do not read its ground truth.
	Registry *zonegen.Registry

	// IndexWorkers bounds the parallelism of the corpus-index build pass
	// (GOMAXPROCS when zero). Set it before the first Index() call.
	IndexWorkers int

	idxOnce sync.Once
	idx     *Index
}

// TLDRow is one row of the Table I reproduction.
type TLDRow struct {
	TLD         string `json:"tld"`
	SLDs        int    `json:"slds"`
	IDNs        int    `json:"idns"`
	WHOIS       int    `json:"whois"`
	Blacklisted int    `json:"blacklisted"`
}

// Assemble builds the Dataset from a generated registry: it renders the
// zone files, scans them for IDNs exactly as the paper scanned Verisign
// and PIR snapshots, and materializes every auxiliary source.
func Assemble(reg *zonegen.Registry) (*Dataset, error) {
	ds := &Dataset{Registry: reg}

	zones := reg.BuildZones()
	gtlds := map[string]bool{"com": true, "net": true, "org": true}
	var itldIDNs, itldSLDs int
	perTLD := make(map[string]*TLDRow)
	for origin, zone := range zones {
		scan := zonefile.Scan(zone)
		if gtlds[origin] {
			row := &TLDRow{TLD: origin, SLDs: reg.SLDTotals[origin], IDNs: len(scan.IDNs)}
			perTLD[origin] = row
			ds.IDNs = append(ds.IDNs, scan.IDNs...)
			// Non-IDN sample: the scanned SLDs that are not IDNs.
			idnSet := make(map[string]bool, len(scan.IDNs))
			for _, d := range scan.IDNs {
				idnSet[d] = true
			}
			for _, sld := range zone.SLDs() {
				if !idnSet[sld] {
					ds.NonIDNs = append(ds.NonIDNs, sld)
				}
			}
			continue
		}
		itldIDNs += len(scan.IDNs)
		itldSLDs += scan.SLDCount
		ds.IDNs = append(ds.IDNs, scan.IDNs...)
	}
	sort.Strings(ds.IDNs)
	sort.Strings(ds.NonIDNs)

	ds.WHOIS = reg.BuildWHOIS()
	ds.PDNS = reg.BuildPDNS()
	ds.Blacklists = reg.BuildBlacklists()
	ds.DNS = reg.BuildDNS()
	ds.Resolver = dnssim.NewInMemoryResolver(ds.DNS)

	authority, err := certs.NewAuthority(reg.Cfg.Seed^0x5ead, reg.Cfg.Snapshot)
	if err != nil {
		return nil, fmt.Errorf("core: certificate authority: %w", err)
	}
	ds.Authority = authority
	store, err := reg.BuildCerts(authority)
	if err != nil {
		return nil, fmt.Errorf("core: certificates: %w", err)
	}
	ds.Certs = store

	// Table I accounting.
	for _, tld := range []string{"com", "net", "org"} {
		row := perTLD[tld]
		if row == nil {
			row = &TLDRow{TLD: tld}
		}
		row.WHOIS = countCovered(ds.WHOIS, ds.IDNs, tld)
		row.Blacklisted = countFlagged(ds.Blacklists, ds.IDNs, tld)
		ds.PerTLD = append(ds.PerTLD, *row)
	}
	itldRow := TLDRow{TLD: "itld", SLDs: itldSLDs, IDNs: itldIDNs}
	itldRow.WHOIS = countCoveredITLD(ds.WHOIS, ds.IDNs)
	itldRow.Blacklisted = countFlaggedITLD(ds.Blacklists, ds.IDNs)
	ds.PerTLD = append(ds.PerTLD, itldRow)
	return ds, nil
}

func countCovered(s *whois.Store, domains []string, tld string) int {
	n := 0
	for _, d := range domains {
		if idna.TLD(d) != tld {
			continue
		}
		if _, ok := s.Get(d); ok {
			n++
		}
	}
	return n
}

func countCoveredITLD(s *whois.Store, domains []string) int {
	n := 0
	for _, d := range domains {
		if !idna.IsACELabel(idna.TLD(d)) {
			continue
		}
		if _, ok := s.Get(d); ok {
			n++
		}
	}
	return n
}

func countFlagged(agg *blacklist.Aggregate, domains []string, tld string) int {
	n := 0
	for _, d := range domains {
		if idna.TLD(d) == tld && agg.IsMalicious(d) {
			n++
		}
	}
	return n
}

func countFlaggedITLD(agg *blacklist.Aggregate, domains []string) int {
	n := 0
	for _, d := range domains {
		if idna.IsACELabel(idna.TLD(d)) && agg.IsMalicious(d) {
			n++
		}
	}
	return n
}

// MaliciousIDNs returns the blacklisted subset of the corpus, sorted.
// The filter is computed once by the corpus index and shared; callers
// must treat the slice as read-only.
func (ds *Dataset) MaliciousIDNs() []string {
	return ds.Index().Malicious()
}

// Probe crawls one domain of the dataset: it resolves the name through
// the DNS substrate first (observing REFUSED/NXDOMAIN exactly as the
// paper's crawler did) and fetches the homepage only on success.
func (ds *Dataset) Probe(domain string) webprobe.Response {
	res, err := ds.Resolver.LookupA(domain)
	if err != nil || !res.Resolved() {
		return webprobe.Response{}
	}
	d, ok := ds.Registry.Lookup(domain)
	if !ok {
		return webprobe.Response{}
	}
	return ds.Registry.Serve(d)
}

// ResolveRCode reports the DNS response code for a domain — REFUSED for
// the misconfigured population, NXDOMAIN for unregistered names.
func (ds *Dataset) ResolveRCode(domain string) (dnssim.RCode, error) {
	res, err := ds.Resolver.LookupA(domain)
	if err != nil {
		return 0, err
	}
	return res.RCode, nil
}
