package core

import (
	"net/http"

	"idnlab/internal/webprobe"
)

// WebHandler exposes the universe's web content over real HTTP: each
// domain's homepage is served by Host header, exactly what a crawler
// fetching http://<domain>/ would receive. Unregistered or unresolvable
// hosts get 502 (the upstream resolution failed), matching how a fetch
// through a resolving proxy surfaces DNS failure.
func WebHandler(ds *Dataset) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		host := r.Host
		if i := indexByte(host, ':'); i >= 0 {
			host = host[:i]
		}
		resp := ds.Probe(host)
		if !resp.Resolved {
			// A crawler going through a resolving proxy sees the DNS
			// failure as a gateway error with the resolver's rcode.
			w.Header().Set("X-Resolve-Error", "REFUSED")
			http.Error(w, "upstream name resolution failed", http.StatusBadGateway)
			return
		}
		if resp.StatusCode >= 300 && resp.StatusCode < 400 {
			w.Header().Set("Location", resp.Location)
			w.WriteHeader(resp.StatusCode)
			return
		}
		if resp.ServerCN != "" {
			w.Header().Set("X-Served-With-Certificate", resp.ServerCN)
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.WriteHeader(resp.StatusCode)
		_, _ = w.Write([]byte(resp.Body))
	})
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// CrawlHTTP fetches one domain through an http.Client pointed at a server
// running WebHandler, and classifies the response with the same content
// classifier used on direct probes. baseURL addresses the server (e.g. an
// httptest.Server.URL); the domain travels in the Host header.
func CrawlHTTP(client *http.Client, baseURL, domain string) (webprobe.State, error) {
	req, err := http.NewRequest(http.MethodGet, baseURL+"/", nil)
	if err != nil {
		return 0, err
	}
	req.Host = domain
	httpResp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer httpResp.Body.Close()

	if httpResp.Header.Get("X-Resolve-Error") != "" {
		return webprobe.NotResolved, nil
	}
	resp := webprobe.Response{
		Resolved:   true,
		StatusCode: httpResp.StatusCode,
		Location:   httpResp.Header.Get("Location"),
		ServerCN:   httpResp.Header.Get("X-Served-With-Certificate"),
	}
	buf := make([]byte, 64*1024)
	n, _ := httpResp.Body.Read(buf)
	resp.Body = string(buf[:n])
	return webprobe.Classify(resp), nil
}
