package core

import (
	"sort"
	"strings"

	"idnlab/internal/certs"
	"idnlab/internal/idna"
	"idnlab/internal/langid"
	"idnlab/internal/pdns"
	"idnlab/internal/stats"
	"idnlab/internal/webprobe"
	"idnlab/internal/whois"
)

// LanguageRow is one row of the Table II reproduction.
type LanguageRow struct {
	Language    langid.Language `json:"language"`
	Count       int             `json:"count"`
	Rate        float64         `json:"rate"`
	Blacklisted int             `json:"blacklisted"`
	BlackRate   float64         `json:"blackRate"`
}

// LanguageBreakdown classifies every IDN's second-level label and returns
// the Table II rows sorted by overall volume descending. English and
// unclassified labels are grouped into langid.Other.
//
// When classifier is the process-wide langid.Default() model the rows come
// from the corpus index, whose build pass already classified every SLD
// label; the breakdown then costs one memoized aggregation instead of a
// second corpus decode-and-classify loop. Any other classifier falls back
// to the direct loop.
func (ds *Dataset) LanguageBreakdown(classifier *langid.Classifier) []LanguageRow {
	if classifier == langid.Default() {
		return ds.Index().LanguageRows()
	}
	counts := make(map[langid.Language]int)
	blackCounts := make(map[langid.Language]int)
	total, blackTotal := 0, 0
	for _, d := range ds.IDNs {
		uni, err := idna.ToUnicode(d)
		if err != nil {
			continue
		}
		lang := classifier.Classify(idna.SLDLabel(uni))
		if lang == langid.English {
			lang = langid.Other
		}
		counts[lang]++
		total++
		if ds.Blacklists.IsMalicious(d) {
			blackCounts[lang]++
			blackTotal++
		}
	}
	return languageRowsFromCounts(counts, blackCounts, total, blackTotal)
}

// languageRowsFromCounts turns per-language tallies into the sorted
// Table II row set — the shared aggregation tail of the direct loop and
// the index fast path.
func languageRowsFromCounts(counts, blackCounts map[langid.Language]int, total, blackTotal int) []LanguageRow {
	out := make([]LanguageRow, 0, len(counts))
	for lang, n := range counts {
		row := LanguageRow{Language: lang, Count: n, Blacklisted: blackCounts[lang]}
		if total > 0 {
			row.Rate = float64(n) / float64(total)
		}
		if blackTotal > 0 {
			row.BlackRate = float64(blackCounts[lang]) / float64(blackTotal)
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Language < out[j].Language
	})
	return out
}

// CreationTimeline returns the Figure 1 histograms: IDN registrations per
// creation year, overall and blacklisted, from WHOIS records. Computed
// once by the corpus index; both histograms are read-only.
func (ds *Dataset) CreationTimeline() (all, malicious stats.Histogram) {
	return ds.Index().Timeline()
}

// idnWHOIS returns the WHOIS sub-store restricted to the IDN corpus, the
// population Tables III and IV rank. The store is built once by the
// corpus index and shared; before the index each caller rebuilt it.
func (ds *Dataset) idnWHOIS() *whois.Store {
	return ds.Index().IDNWHOIS()
}

// TopRegistrants returns the Table III ranking: registrant emails by IDN
// count.
func (ds *Dataset) TopRegistrants(k int) []whois.GroupCount {
	return ds.idnWHOIS().TopRegistrantEmails(k)
}

// TopRegistrars returns the Table IV ranking: registrars by IDN count,
// plus the share of the WHOIS-covered population each holds.
func (ds *Dataset) TopRegistrars(k int) ([]whois.GroupCount, int) {
	sub := ds.idnWHOIS()
	return sub.TopRegistrars(k), sub.Len()
}

// RegistrarCount returns the number of distinct registrars in the IDN
// corpus (paper: over 700).
func (ds *Dataset) RegistrarCount() int {
	return ds.idnWHOIS().RegistrarCount()
}

// Population selects a comparison population for the DNS-activity figures.
type Population int

// Populations of Figures 2 and 3.
const (
	PopulationIDN Population = iota + 1
	PopulationNonIDN
	PopulationMalicious
)

// populationDomains materializes a population's domain list, resolving
// through the corpus index so the malicious filter is computed once.
func (ds *Dataset) populationDomains(p Population) []string {
	return ds.Index().populationDomains(p)
}

// ActiveTimeSeries returns the Figure 2 series for a population,
// optionally restricted to one TLD ("" for all). Each (population, TLD)
// cut is computed once by the corpus index; callers must treat the slice
// as read-only.
func (ds *Dataset) ActiveTimeSeries(p Population, tld string) []float64 {
	return ds.Index().Series(true, p, tld)
}

// QueryVolumeSeries returns the Figure 3 series for a population,
// memoized like ActiveTimeSeries. Read-only.
func (ds *Dataset) QueryVolumeSeries(p Population, tld string) []float64 {
	return ds.Index().Series(false, p, tld)
}

func filterTLD(domains []string, tld string) []string {
	if tld == "" {
		return domains
	}
	var out []string
	for _, d := range domains {
		got := idna.TLD(d)
		if got == tld || (tld == "itld" && idna.IsACELabel(got)) {
			out = append(out, d)
		}
	}
	return out
}

// IPConcentration aggregates the IDN corpus's resolved addresses into /24
// segments and returns the Figure 4 statistics: segment sizes sorted
// descending plus the cumulative-share curve.
type IPConcentration struct {
	Segments   []pdns.SegmentStat
	TotalIPs   int
	Cumulative []float64
}

// IPConcentrationStats computes Figure 4 over the IDN population. The
// aggregation runs once, behind the corpus index. Read-only.
func (ds *Dataset) IPConcentrationStats() IPConcentration {
	return ds.Index().Concentration()
}

// ipConcentration is the Figure 4 aggregation body, fed by the index's
// per-domain records so pDNS misses are skipped without a store probe.
func (ds *Dataset) ipConcentration(infos []DomainInfo) IPConcentration {
	ipsPerSeg := make(map[string]map[string]struct{})
	domainsPerSeg := make(map[string]map[string]struct{})
	allIPs := make(map[string]struct{})
	for i := range infos {
		if !infos[i].HasPDNS {
			continue
		}
		d := infos[i].Domain
		e, ok := ds.PDNS.Get(d)
		if !ok {
			continue
		}
		for _, ip := range e.IPs {
			seg := pdns.Slash24(ip)
			if ipsPerSeg[seg] == nil {
				ipsPerSeg[seg] = make(map[string]struct{})
				domainsPerSeg[seg] = make(map[string]struct{})
			}
			ipsPerSeg[seg][ip] = struct{}{}
			domainsPerSeg[seg][d] = struct{}{}
			allIPs[ip] = struct{}{}
		}
	}
	out := IPConcentration{TotalIPs: len(allIPs)}
	for seg, ds2 := range domainsPerSeg {
		out.Segments = append(out.Segments, pdns.SegmentStat{
			Segment: seg, Domains: len(ds2), IPs: len(ipsPerSeg[seg]),
		})
	}
	sort.Slice(out.Segments, func(i, j int) bool {
		if out.Segments[i].Domains != out.Segments[j].Domains {
			return out.Segments[i].Domains > out.Segments[j].Domains
		}
		return out.Segments[i].Segment < out.Segments[j].Segment
	})
	counts := make([]int, len(out.Segments))
	for i, s := range out.Segments {
		counts[i] = s.Domains
	}
	out.Cumulative = stats.CumulativeShare(counts)
	return out
}

// UsageSample crawls a deterministic sample of a population and classifies
// the responses — the Table V methodology (stratified sampling + manual
// classification, here automated). Each (population, size, seed) census is
// probed once, behind the corpus index.
func (ds *Dataset) UsageSample(p Population, sampleSize int, seed uint64) webprobe.Census {
	return ds.Index().Usage(p, sampleSize, seed)
}

// usageSample is the Table V probe loop over a resolved domain list.
func (ds *Dataset) usageSample(domains []string, sampleSize int, seed uint64) webprobe.Census {
	census := make(webprobe.Census)
	if len(domains) == 0 || sampleSize <= 0 {
		return census
	}
	// Deterministic stride sample over the sorted population.
	stride := len(domains) / sampleSize
	if stride < 1 {
		stride = 1
	}
	offset := int(seed) % stride
	taken := 0
	for i := offset; i < len(domains) && taken < sampleSize; i += stride {
		resp := ds.Probe(domains[i])
		census[webprobe.Classify(resp)]++
		taken++
	}
	return census
}

// CertCensus classifies the certificates served by a population — the
// Table VI reproduction. Domains without a certificate are skipped (the
// paper's denominators are downloaded certificates). Each population's
// census is computed once, behind the corpus index.
func (ds *Dataset) CertCensus(p Population) CertReport {
	return ds.Index().Certs(p)
}

// certCensus is the Table VI classification loop over a domain list.
func (ds *Dataset) certCensus(domains []string) CertReport {
	var rep CertReport
	now := ds.Registry.Cfg.Snapshot
	roots := ds.Authority.Roots()
	for _, d := range domains {
		cert, ok := ds.Certs.Get(d)
		if !ok {
			continue
		}
		rep.Total++
		switch certs.Classify(cert, d, now, roots) {
		case certs.ProblemNone:
			rep.Valid++
		case certs.ProblemExpired:
			rep.Expired++
		case certs.ProblemInvalidAuthority:
			rep.InvalidAuthority++
		case certs.ProblemInvalidCommonName:
			rep.InvalidCommonName++
		}
	}
	return rep
}

// CertReport is the Table VI row set for one population.
type CertReport struct {
	Total             int
	Valid             int
	Expired           int
	InvalidAuthority  int
	InvalidCommonName int
}

// ProblemRate is the fraction of certificates with any problem (the
// paper's ">97%" headline).
func (r CertReport) ProblemRate() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Total-r.Valid) / float64(r.Total)
}

// SharedCertificates ranks the common names of certificates shared across
// the IDN population — Table VII.
func (ds *Dataset) SharedCertificates(k int) []SharedCN {
	counts := make(map[string]int)
	for _, d := range ds.IDNs {
		cert, ok := ds.Certs.Get(d)
		if !ok {
			continue
		}
		if cert.VerifyHostname(d) != nil {
			counts[cert.Subject.CommonName]++
		}
	}
	out := make([]SharedCN, 0, len(counts))
	for cn, n := range counts {
		out = append(out, SharedCN{CommonName: cn, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].CommonName < out[j].CommonName
	})
	if k >= 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// SharedCN is a Table VII row.
type SharedCN struct {
	CommonName string
	Count      int
}

// RegistrantProfile classifies the WHOIS registrant of a detected abuse
// domain, per the paper's §VI-C analysis: 73 of 1,111 homographs with
// WHOIS were registered by brand owners (protective), 171 under personal
// email addresses, and the rest behind WHOIS privacy.
type RegistrantProfile int

// Registrant categories.
const (
	RegistrantUnknown RegistrantProfile = iota
	RegistrantProtective
	RegistrantPersonal
	RegistrantPrivacy
)

// ClassifyRegistrant inspects the WHOIS record of a detected abuse domain
// against its impersonated brand. ok is false when WHOIS has no coverage.
func (ds *Dataset) ClassifyRegistrant(domain, brand string) (RegistrantProfile, bool) {
	rec, covered := ds.WHOIS.Get(domain)
	if !covered {
		return RegistrantUnknown, false
	}
	switch {
	case rec.Privacy || rec.RegistrantEmail == "":
		return RegistrantPrivacy, true
	case strings.HasSuffix(rec.RegistrantEmail, "@"+brand):
		return RegistrantProtective, true
	default:
		return RegistrantPersonal, true
	}
}

// RegistrantBreakdown aggregates registrant profiles over detected abuse
// domains, given each domain's impersonated brand.
type RegistrantBreakdown struct {
	WithWHOIS  int
	Protective int
	Personal   int
	Privacy    int
}

// BreakdownRegistrants runs ClassifyRegistrant over a match set.
func BreakdownRegistrants(ds *Dataset, domains, brandOf []string) RegistrantBreakdown {
	var out RegistrantBreakdown
	for i, d := range domains {
		profile, ok := ds.ClassifyRegistrant(d, brandOf[i])
		if !ok {
			continue
		}
		out.WithWHOIS++
		switch profile {
		case RegistrantProtective:
			out.Protective++
		case RegistrantPersonal:
			out.Personal++
		case RegistrantPrivacy:
			out.Privacy++
		}
	}
	return out
}
