package core

// Tests for the PR-2 hot-path plumbing: the prerendered brand raster
// cache, detector Clone semantics, and the zero-allocation steady-state
// Score contract the benchmarks enforce.

import (
	"math/rand"
	"sync"
	"testing"
)

func TestCloneScoresIdentically(t *testing.T) {
	proto := NewHomographDetector(1000)
	clone := proto.Clone()
	pairs := [][2]string{
		{"facebook", "facebook"},
		{"facebооk", "facebook"},
		{"gõogle", "google"},
		{"amazon", "google"},
		{"somethingelse", "notabrand"}, // off-brand reference path
	}
	for _, p := range pairs {
		if a, b := proto.Score(p[0], p[1]), clone.Score(p[0], p[1]); a != b {
			t.Errorf("Score(%q, %q): proto %v != clone %v", p[0], p[1], a, b)
		}
	}
}

func TestClonesAreConcurrencySafe(t *testing.T) {
	proto := NewHomographDetector(1000)
	corpus := testDS.IDNs
	if len(corpus) > 400 {
		corpus = corpus[:400]
	}
	want := proto.Clone().Detect(corpus)
	const goroutines = 8
	var wg sync.WaitGroup
	results := make([][]HomographMatch, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			d := proto.Clone()
			// Shuffle per goroutine so clones interleave differently;
			// Detect sorts, so output order stays canonical.
			local := append([]string(nil), corpus...)
			r := rand.New(rand.NewSource(int64(g)))
			r.Shuffle(len(local), func(i, j int) { local[i], local[j] = local[j], local[i] })
			results[g] = d.Detect(local)
		}(g)
	}
	wg.Wait()
	for g, got := range results {
		if len(got) != len(want) {
			t.Fatalf("goroutine %d: %d matches, want %d", g, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("goroutine %d match %d: %+v != %+v", g, i, got[i], want[i])
			}
		}
	}
}

// TestScoreSteadyStateZeroAlloc pins the headline allocation contract:
// once the detector's scratch buffers are warm, scoring a candidate
// against a cached brand performs zero allocations.
func TestScoreSteadyStateZeroAlloc(t *testing.T) {
	det := NewHomographDetector(1000)
	labels := []string{"facebооk", "facebool", "fаcebook", "facebôok"}
	det.Score(labels[0], "facebook") // warm the scratch
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		_ = det.Score(labels[i%len(labels)], "facebook")
		i++
	})
	if allocs != 0 {
		t.Errorf("steady-state Score allocates %v per run, want 0", allocs)
	}
}

// TestScoreOffBrandReference exercises the uncached-reference fallback:
// scoring against a label outside the brand set must still work and must
// not poison the brand cache.
func TestScoreOffBrandReference(t *testing.T) {
	det := NewHomographDetector(100)
	v := det.Score("exàmple", "example") // "example" is not a top-100 brand label here
	if v <= 0.9 || v >= 1 {
		t.Errorf("off-brand score = %v, want single-mark band", v)
	}
	// And a cached brand still scores identically to a fresh detector.
	got := det.Score("facebооk", "facebook")
	want := NewHomographDetector(100).Score("facebооk", "facebook")
	if got != want {
		t.Errorf("brand cache poisoned: %v != %v", got, want)
	}
}

// TestDetectOneMatchesPrePRSemantics pins the brute-force path through
// the cached-brand renderer: prefilter and brute force agree with each
// other on the corpus exactly as before the raster cache existed.
func TestDetectOneMatchesPrePRSemantics(t *testing.T) {
	corpus := testDS.IDNs
	if len(corpus) > 300 {
		corpus = corpus[:300]
	}
	fast := NewHomographDetector(1000)
	brute := NewHomographDetector(1000, WithoutPrefilter())
	fastMatches := fast.Detect(corpus)
	bruteMatches := brute.Detect(corpus)
	if len(fastMatches) < len(bruteMatches) {
		t.Fatalf("prefilter lost recall: %d vs %d", len(fastMatches), len(bruteMatches))
	}
	seen := make(map[string]HomographMatch, len(fastMatches))
	for _, m := range fastMatches {
		seen[m.Domain] = m
	}
	for _, m := range bruteMatches {
		f, ok := seen[m.Domain]
		if !ok {
			t.Errorf("brute-force found %v missed by prefilter", m)
			continue
		}
		if f.SSIM < m.SSIM-1e-9 {
			t.Errorf("prefilter SSIM %v below brute %v for %s", f.SSIM, m.SSIM, m.Domain)
		}
	}
}
