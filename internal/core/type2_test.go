package core

import (
	"strings"
	"testing"

	"idnlab/internal/zonegen"
)

func TestType2DetectOne(t *testing.T) {
	det := NewType2Detector(nil)
	cases := []struct {
		domain string
		brand  string
		ok     bool
	}{
		{"格力空调.net", "gree.com", true}, // paper Table X row
		{"支付宝.com", "alipay.com", true},
		{"xn--fiq64b5ls6jj9e.com", "", false}, // 中国电信 — not in dictionary
		{"谷歌.com", "google.com", true},
		{"example.com", "", false},
		{"apple邮箱.com", "", false}, // Type-1 shape, not Type-2
	}
	for _, tc := range cases {
		m, ok := det.DetectOne(tc.domain)
		if ok != tc.ok {
			t.Errorf("DetectOne(%q) ok = %v, want %v", tc.domain, ok, tc.ok)
			continue
		}
		if ok && m.Brand != tc.brand {
			t.Errorf("DetectOne(%q) brand = %q, want %q", tc.domain, m.Brand, tc.brand)
		}
	}
}

func TestType2DetectsGeneratedPopulation(t *testing.T) {
	det := NewType2Detector(nil)
	matches := det.Detect(testDS.IDNs)
	// At scale 100 at least one Type-2 domain is generated and must be
	// recovered.
	if len(matches) == 0 {
		t.Fatal("no Type-2 matches on corpus")
	}
	// Recall over ground truth.
	total, recovered := 0, 0
	reg := testDS.Registry
	for i := range reg.Domains {
		d := &reg.Domains[i]
		if d.Attack != zonegen.AttackSemantic2 {
			continue
		}
		total++
		if _, ok := det.DetectOne(d.ACE); ok {
			recovered++
		}
	}
	if total == 0 {
		t.Fatal("no Type-2 ground truth generated")
	}
	if recovered != total {
		t.Errorf("Type-2 recall %d/%d; dictionary lookup should be exact", recovered, total)
	}
}

func TestType2CustomDictionary(t *testing.T) {
	det := NewType2Detector(map[string][]string{"example.com": {"例子"}})
	if det.DictionarySize() != 1 {
		t.Fatalf("DictionarySize = %d", det.DictionarySize())
	}
	if m, ok := det.DetectOne("例子.com"); !ok || m.Brand != "example.com" {
		t.Errorf("custom dict: %v %v", m, ok)
	}
	if _, ok := det.DetectOne("谷歌.com"); ok {
		t.Error("custom dict should not contain defaults")
	}
}

func TestReportTable10(t *testing.T) {
	st := NewStudy(testDS)
	var sb strings.Builder
	if err := st.ReportTable10(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "TABLE X:") {
		t.Errorf("output: %s", sb.String())
	}
}

func TestType2MatchString(t *testing.T) {
	m := Type2Match{Domain: "xn--x.com", Unicode: "格力空调.com", Brand: "gree.com"}
	if !strings.Contains(m.String(), "gree.com") {
		t.Error("String() missing brand")
	}
}
