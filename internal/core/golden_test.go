package core

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"idnlab/internal/zonegen"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestReportGolden pins the byte-exact full report for a small fixed
// universe. Any change to generation, detection or rendering shows up as
// a diff here; regenerate deliberately with `go test -run Golden -update`.
func TestReportGolden(t *testing.T) {
	reg := zonegen.Generate(zonegen.Config{Seed: 7, Scale: 2000})
	ds, err := Assemble(reg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := NewStudy(ds).Run(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	path := filepath.Join("testdata", "report_seed7_scale2000.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated (%d bytes)", len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got == string(want) {
		return
	}
	// Point at the first differing line for a readable failure.
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("report diverges from golden at line %d:\n got: %q\nwant: %q",
				i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("report length changed: %d vs %d lines", len(gotLines), len(wantLines))
}
