package core

import (
	"runtime"
	"sort"
	"sync"
)

// Parallel corpus scanning. The paper's brute-force sweep took 102 hours
// on a single 4 GB machine; the detector here is already prefiltered, but
// corpus scans remain embarrassingly parallel. HomographDetector is not
// safe for concurrent use (the renderer keeps a glyph cache), so the pool
// builds one detector per worker from a shared configuration.

// DetectorConfig captures how to build identical detector instances for a
// worker pool.
type DetectorConfig struct {
	// TopK is the brand-list depth.
	TopK int
	// Options apply to every instance.
	Options []HomographOption
}

// DetectParallel scans the corpus for homographic IDNs with one detector
// per worker. workers <= 0 selects GOMAXPROCS. The result is identical to
// a sequential Detect: sorted by brand then domain.
func DetectParallel(cfg DetectorConfig, domains []string, workers int) []HomographMatch {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(domains) {
		workers = len(domains)
	}
	if workers <= 1 {
		return NewHomographDetector(cfg.TopK, cfg.Options...).Detect(domains)
	}

	type shard struct {
		idx     int
		matches []HomographMatch
	}
	jobs := make(chan int, workers)
	results := make(chan shard, workers)
	chunk := (len(domains) + workers - 1) / workers

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			det := NewHomographDetector(cfg.TopK, cfg.Options...)
			for idx := range jobs {
				lo := idx * chunk
				hi := lo + chunk
				if hi > len(domains) {
					hi = len(domains)
				}
				var ms []HomographMatch
				for _, d := range domains[lo:hi] {
					if m, ok := det.DetectOne(d); ok {
						ms = append(ms, m)
					}
				}
				results <- shard{idx: idx, matches: ms}
			}
		}()
	}
	nShards := (len(domains) + chunk - 1) / chunk
	go func() {
		for i := 0; i < nShards; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	collected := make([][]HomographMatch, nShards)
	for sh := range results {
		collected[sh.idx] = sh.matches
	}
	var out []HomographMatch
	for _, ms := range collected {
		out = append(out, ms...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Brand != out[j].Brand {
			return out[i].Brand < out[j].Brand
		}
		return out[i].Domain < out[j].Domain
	})
	return out
}
