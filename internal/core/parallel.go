package core

import (
	"context"

	"idnlab/internal/candidx"
	"idnlab/internal/feat"
)

// Parallel corpus scanning. The paper's brute-force sweep took 102 hours
// on a single 4 GB machine; corpus scans are embarrassingly parallel, and
// HomographDetector is not safe for concurrent use (the renderer keeps a
// glyph cache), so the pool builds one detector per worker from a shared
// configuration.
//
// The original hand-rolled pool sharded the corpus into fixed chunks of
// ceil(len/workers) items, which had a worker-count edge: whenever
// len(domains) was not close to a multiple of the chunk size (e.g. 8
// domains across 6 workers → chunk 2 → only 4 shards), some workers never
// received a shard and the requested fan-out silently degraded. The
// streaming engine in internal/pipeline distributes items one at a time
// instead of precomputing shards, so every worker draws from the same
// bounded queue and the edge cannot occur; TestScanWorkerCountEdge pins
// the regression.

// DetectorConfig captures how to build identical detector instances for a
// worker pool.
type DetectorConfig struct {
	// TopK is the brand-list depth.
	TopK int
	// Options apply to every instance.
	Options []HomographOption
	// Index, when set, attaches a precomputed candidate index to every
	// instance (equivalent to appending WithIndex to Options). Carrying
	// it as a first-class field means every construction path built on
	// DetectorConfig — the classifier, the scan engines and the
	// deprecated DetectParallel shim — routes through the index
	// identically instead of silently falling back to the sweep.
	Index *candidx.Index
	// Stat, when set, attaches the statistical model to every instance
	// (equivalent to appending WithStatModel to Options): the model
	// becomes the learned prefilter ahead of the SSIM path and the
	// third detector in ensemble verdicts.
	Stat *feat.Model
}

// detectorOptions resolves the config into the option list detector
// construction actually applies.
func (cfg DetectorConfig) detectorOptions() []HomographOption {
	if cfg.Index == nil && cfg.Stat == nil {
		return cfg.Options
	}
	opts := make([]HomographOption, 0, len(cfg.Options)+2)
	opts = append(opts, cfg.Options...)
	if cfg.Index != nil {
		opts = append(opts, WithIndex(cfg.Index))
	}
	if cfg.Stat != nil {
		opts = append(opts, WithStatModel(cfg.Stat))
	}
	return opts
}

// DetectParallel scans the corpus for homographic IDNs with one detector
// per worker. workers <= 0 selects GOMAXPROCS. The result is identical to
// a sequential Detect: sorted by brand then domain.
//
// Deprecated: DetectParallel is a thin wrapper kept for API
// compatibility. New code should call ScanHomograph, which additionally
// honors context cancellation and reports per-stage metrics.
func DetectParallel(cfg DetectorConfig, domains []string, workers int) []HomographMatch {
	out, _, err := ScanHomograph(context.Background(), cfg, domains, workers)
	if err != nil {
		// Unreachable: the slice source cannot fail, the detector Func
		// never errors, and the background context is never cancelled.
		panic("core: DetectParallel: " + err.Error())
	}
	return out
}
