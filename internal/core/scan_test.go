package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"idnlab/internal/zonefile"
)

// randomCorpus samples a randomized corpus from the shared dataset plus
// adversarial noise (ASCII domains, malformed ACE, empty-ish labels), so
// the equivalence property covers the detectors' reject paths too.
func randomCorpus(seed int64, size int) []string {
	rng := rand.New(rand.NewSource(seed))
	noise := []string{
		"example.com", "a.com", "xn---.com", "xn--a.com",
		"plain-ascii.org", "xn--pple-43d.com", "xn--ggle-0nda.com",
	}
	out := make([]string, size)
	for i := range out {
		if rng.Intn(5) == 0 {
			out[i] = noise[rng.Intn(len(noise))]
		} else {
			out[i] = testDS.IDNs[rng.Intn(len(testDS.IDNs))]
		}
	}
	return out
}

// TestScanHomographEquivalenceProperty is the tentpole property: for
// randomized corpora across seeds and sizes — including 0, 1 and
// len < workers — the pipeline scan is byte-identical to the sequential
// Detect.
func TestScanHomographEquivalenceProperty(t *testing.T) {
	cfg := DetectorConfig{TopK: 1000}
	seq := NewHomographDetector(cfg.TopK)
	for _, seed := range []int64{1, 2, 42} {
		for _, size := range []int{0, 1, 2, 5, 63, 257} {
			corpus := randomCorpus(seed, size)
			want := seq.Detect(corpus)
			for _, workers := range []int{1, 3, 4, 16} {
				got, m, err := ScanHomograph(context.Background(), cfg, corpus, workers)
				if err != nil {
					t.Fatalf("seed=%d size=%d workers=%d: %v", seed, size, workers, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed=%d size=%d workers=%d: pipeline diverges (%d vs %d matches)",
						seed, size, workers, len(got), len(want))
				}
				if m.In != uint64(size) {
					t.Errorf("seed=%d size=%d workers=%d: metrics in=%d", seed, size, workers, m.In)
				}
			}
		}
	}
}

// TestScanHomographFullCorpus pins the full seed-corpus equivalence at a
// realistic fan-out.
func TestScanHomographFullCorpus(t *testing.T) {
	cfg := DetectorConfig{TopK: 1000}
	want := NewHomographDetector(cfg.TopK).Detect(testDS.IDNs)
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		got, m, err := ScanHomograph(context.Background(), cfg, testDS.IDNs, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: full-corpus scan diverges", workers)
		}
		if m.In != uint64(len(testDS.IDNs)) || m.Out != uint64(len(want)) {
			t.Errorf("workers=%d: metrics in=%d out=%d, want %d/%d",
				workers, m.In, m.Out, len(testDS.IDNs), len(want))
		}
	}
}

// TestScanSemanticEquivalenceProperty mirrors the homograph property for
// the Type-1 detector.
func TestScanSemanticEquivalenceProperty(t *testing.T) {
	seq := NewSemanticDetector(1000)
	for _, seed := range []int64{3, 7} {
		for _, size := range []int{0, 1, 4, 129, len(testDS.IDNs)} {
			var corpus []string
			if size == len(testDS.IDNs) {
				corpus = testDS.IDNs
			} else {
				corpus = randomCorpus(seed, size)
			}
			want := seq.Detect(corpus)
			for _, workers := range []int{1, 2, 8} {
				got, _, err := ScanSemantic(context.Background(), 1000, corpus, workers)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed=%d size=%d workers=%d: semantic scan diverges", seed, size, workers)
				}
			}
		}
	}
}

// TestScanWorkerCountEdge is the regression for the deprecated chunked
// DetectParallel, whose shard math (chunk = ceil(len/workers)) could
// leave workers without a shard and degraded silently when
// workers > len(domains). The streaming engine hands out items one at a
// time, so every (len, workers) shape must agree with the sequential
// scan.
func TestScanWorkerCountEdge(t *testing.T) {
	cfg := DetectorConfig{TopK: 100}
	shapes := []struct{ size, workers int }{
		{8, 6},  // old math: chunk 2 → 4 shards for 6 workers
		{5, 4},  // chunk 2 → 3 shards for 4 workers
		{9, 8},  // chunk 2 → 5 shards for 8 workers
		{1, 8},  // workers > len
		{3, 16}, // workers >> len
		{0, 4},  // empty corpus
	}
	seq := NewHomographDetector(cfg.TopK)
	for _, sh := range shapes {
		corpus := randomCorpus(11, sh.size)
		want := seq.Detect(corpus)
		got, _, err := ScanHomograph(context.Background(), cfg, corpus, sh.workers)
		if err != nil {
			t.Fatalf("size=%d workers=%d: %v", sh.size, sh.workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("size=%d workers=%d: scan diverges", sh.size, sh.workers)
		}
		// The deprecated wrapper must keep its exact output contract.
		if legacy := DetectParallel(cfg, corpus, sh.workers); !reflect.DeepEqual(legacy, want) {
			t.Errorf("size=%d workers=%d: DetectParallel diverges", sh.size, sh.workers)
		}
	}
}

// TestScanCancellationDrains cancels deterministically mid-scan (from an
// unbounded source, so the scan cannot win the race by finishing) and
// asserts the engine returns ctx.Err() and leaks no goroutines.
func TestScanCancellationDrains(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng := NewHomographEngine(DetectorConfig{TopK: 100}, 4)
	emitted := 0
	src := func(ctx context.Context, emit func(string) error) error {
		for i := 0; ; i++ {
			if i == 500 {
				cancel() // mid-corpus, deterministic
			}
			if err := emit(testDS.IDNs[i%len(testDS.IDNs)]); err != nil {
				return err
			}
			emitted++
		}
	}
	err := eng.Stream(ctx, src, func(HomographMatch) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if emitted < 500 {
		t.Fatalf("source stopped early at %d items", emitted)
	}
	assertNoLeakedGoroutines(t, before)
}

// TestScanPreCancelled covers the public scan entry points with an
// already-cancelled context.
func TestScanPreCancelled(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ScanHomograph(ctx, DetectorConfig{TopK: 100}, testDS.IDNs, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("homograph err = %v, want context.Canceled", err)
	}
	if _, _, err := ScanSemantic(ctx, 100, testDS.IDNs, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("semantic err = %v, want context.Canceled", err)
	}
	assertNoLeakedGoroutines(t, before)
}

// TestZoneScanStreamMatchesMaterialized cross-checks the streaming zone
// scan against the materialized one over every zone of the generated
// universe — the ingestion half of the pipeline equivalence story.
func TestZoneScanStreamMatchesMaterialized(t *testing.T) {
	for origin, zone := range testDS.Registry.BuildZones() {
		var buf bytes.Buffer
		if err := zone.Write(&buf); err != nil {
			t.Fatalf("%s: write: %v", origin, err)
		}
		want := zonefile.Scan(zone)
		got, err := zonefile.ScanStream(context.Background(), &buf, nil)
		if err != nil {
			t.Fatalf("%s: stream scan: %v", origin, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: stream scan diverges: %d/%d SLDs, %d/%d IDNs",
				origin, got.SLDCount, want.SLDCount, len(got.IDNs), len(want.IDNs))
		}
	}
}

// TestStudyScanMetrics asserts the report path records one metrics
// snapshot per pipelined scan and that the counters are coherent.
func TestStudyScanMetrics(t *testing.T) {
	st := NewStudy(testDS)
	st.ScanWorkers = 2
	var sb bytes.Buffer
	if err := st.ReportTable13(&sb); err != nil {
		t.Fatal(err)
	}
	if err := st.ReportTable14(&sb); err != nil {
		t.Fatal(err)
	}
	ms := st.ScanMetrics()
	if len(ms) != 2 {
		t.Fatalf("recorded %d scans, want 2", len(ms))
	}
	if ms[0].Stage != "homograph" || ms[1].Stage != "semantic" {
		t.Fatalf("stages = %q, %q", ms[0].Stage, ms[1].Stage)
	}
	for _, m := range ms {
		if m.In != uint64(len(testDS.IDNs)) {
			t.Errorf("stage %s: in = %d, want %d", m.Stage, m.In, len(testDS.IDNs))
		}
		if m.Workers != 2 {
			t.Errorf("stage %s: workers = %d, want 2", m.Stage, m.Workers)
		}
		if m.Elapsed <= 0 {
			t.Errorf("stage %s: elapsed = %v", m.Stage, m.Elapsed)
		}
	}
}

// assertNoLeakedGoroutines retries until the goroutine count settles at
// or below the baseline.
func assertNoLeakedGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var now int
	for time.Now().Before(deadline) {
		now = runtime.NumGoroutine()
		if now <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after settle", before, now)
}
