//go:build !race

package core

// Equivalence-battery scale. The plain test run exercises the full
// 10k-brand catalog the index is specified for; the -race run (see
// equivscale_race.go) shrinks the corpus so the instrumented build stays
// within CI time while still crossing every code path.
const (
	equivBrandCount = 10000
	equivLabelCount = 600
	raceEnabled     = false
)
