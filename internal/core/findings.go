package core

import (
	"fmt"
	"io"

	"idnlab/internal/stats"
	"idnlab/internal/webprobe"
)

// Findings computes the paper's nine numbered findings from the assembled
// dataset, each as a measured statement. It is the narrative layer over
// the tables: the same numbers, phrased as the paper phrases them.
type Findings struct {
	// Finding 1: east-Asian language share of IDNs.
	EastAsianShare float64 `json:"eastAsianShare"`
	// Finding 2: share of IDNs created before 2008.
	Pre2008Share float64 `json:"pre2008Share"`
	// Finding 3: IDNs held by the top bulk registrants.
	OpportunisticCount int `json:"opportunisticCount"`
	// Finding 4: distinct registrars and top-10 registrar share.
	Registrars    int     `json:"registrars"`
	Top10RegShare float64 `json:"top10RegistrarShare"`
	// Finding 5: P(active < 100 days) for com IDNs vs non-IDNs.
	IDNShortLived    float64 `json:"idnShortLived"`
	NonIDNShortLived float64 `json:"nonIdnShortLived"`
	// Finding 6: P(queries < 100) for com IDNs vs non-IDNs.
	IDNLowTraffic    float64 `json:"idnLowTraffic"`
	NonIDNLowTraffic float64 `json:"nonIdnLowTraffic"`
	// Finding 7: share of IDNs hosted in the top 2.3% of /24 segments.
	TopSegmentShare float64 `json:"topSegmentShare"`
	// Finding 8: meaningful-content and not-resolved rates (IDN sample).
	MeaningfulRate  float64 `json:"meaningfulRate"`
	NotResolvedRate float64 `json:"notResolvedRate"`
	// Finding 9: certificate problem rate among served IDN certificates.
	CertProblemRate float64 `json:"certProblemRate"`
}

// ComputeFindings runs every finding over the dataset.
func (st *Study) ComputeFindings() Findings {
	var f Findings

	// Finding 1.
	for _, row := range st.DS.LanguageBreakdown(st.Classifier) {
		if row.Language.EastAsian() {
			f.EastAsianShare += row.Rate
		}
	}

	// Finding 2.
	all, _ := st.DS.CreationTimeline()
	pre2008, total := 0, 0
	for year, n := range all {
		total += n
		if year < 2008 {
			pre2008 += n
		}
	}
	if total > 0 {
		f.Pre2008Share = float64(pre2008) / float64(total)
	}

	// Finding 3.
	for _, gc := range st.DS.TopRegistrants(5) {
		f.OpportunisticCount += gc.Count
	}

	// Finding 4.
	f.Registrars = st.DS.RegistrarCount()
	top, covered := st.DS.TopRegistrars(10)
	sum := 0
	for _, gc := range top {
		sum += gc.Count
	}
	if covered > 0 {
		f.Top10RegShare = float64(sum) / float64(covered)
	}

	// Findings 5 and 6.
	f.IDNShortLived = stats.NewECDF(st.DS.ActiveTimeSeries(PopulationIDN, "com")).At(100)
	f.NonIDNShortLived = stats.NewECDF(st.DS.ActiveTimeSeries(PopulationNonIDN, "com")).At(100)
	f.IDNLowTraffic = stats.NewECDF(st.DS.QueryVolumeSeries(PopulationIDN, "com")).At(100)
	f.NonIDNLowTraffic = stats.NewECDF(st.DS.QueryVolumeSeries(PopulationNonIDN, "com")).At(100)

	// Finding 7: top 2.3% of segments, the paper's 1,000-of-43,535 ratio.
	conc := st.DS.IPConcentrationStats()
	if n := len(conc.Cumulative); n > 0 {
		k := n * 23 / 1000
		if k < 1 {
			k = 1
		}
		if k > n {
			k = n
		}
		f.TopSegmentShare = conc.Cumulative[k-1]
	}

	// Finding 8.
	census := st.DS.UsageSample(PopulationIDN, 500, 1)
	f.MeaningfulRate = census.Rate(webprobe.Meaningful)
	f.NotResolvedRate = census.Rate(webprobe.NotResolved)

	// Finding 9.
	f.CertProblemRate = st.DS.CertCensus(PopulationIDN).ProblemRate()
	return f
}

// ReportFindings renders the findings as the paper phrases them.
func (st *Study) ReportFindings(w io.Writer) error {
	f := st.ComputeFindings()
	lines := []string{
		"FINDINGS (paper §IV, measured on this universe)",
		fmt.Sprintf("1. %s of IDNs are registered in east-Asian languages (paper: >75%%).",
			stats.Percent(f.EastAsianShare)),
		fmt.Sprintf("2. %s of IDNs were created before 2008 (paper: 6.16%%).",
			stats.Percent(f.Pre2008Share)),
		fmt.Sprintf("3. The top-5 bulk registrants hold %d IDNs (opportunistic registration).",
			f.OpportunisticCount),
		fmt.Sprintf("4. %d registrars offer IDNs; the top 10 hold %s (paper: >700 and 55%%).",
			f.Registrars, stats.Percent(f.Top10RegShare)),
		fmt.Sprintf("5. P(active<100d): IDN %s vs non-IDN %s (paper: 60%% vs 40%%).",
			stats.Percent(f.IDNShortLived), stats.Percent(f.NonIDNShortLived)),
		fmt.Sprintf("6. P(queries<100): IDN %s vs non-IDN %s (paper: 88%% vs 74%%).",
			stats.Percent(f.IDNLowTraffic), stats.Percent(f.NonIDNLowTraffic)),
		fmt.Sprintf("7. The top 2.3%% of /24 segments host %s of IDNs (paper: 80%%).",
			stats.Percent(f.TopSegmentShare)),
		fmt.Sprintf("8. %s of sampled IDNs serve meaningful content; %s do not resolve (paper: 19.8%% and 45.6%%).",
			stats.Percent(f.MeaningfulRate), stats.Percent(f.NotResolvedRate)),
		fmt.Sprintf("9. %s of served IDN certificates have security problems (paper: 97.95%%).",
			stats.Percent(f.CertProblemRate)),
	}
	for _, line := range lines {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
