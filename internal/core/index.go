package core

import (
	"context"
	"sync"

	"idnlab/internal/idna"
	"idnlab/internal/langid"
	"idnlab/internal/pipeline"
	"idnlab/internal/stats"
	"idnlab/internal/webprobe"
	"idnlab/internal/whois"
)

// DomainInfo is the per-IDN derived state the corpus index materializes in
// its one pass: the decoded forms, TLD classification, language and
// auxiliary-store membership every report section would otherwise recompute
// for itself.
type DomainInfo struct {
	// Domain is the ACE name, identical to the Dataset.IDNs entry.
	Domain string
	// Unicode is the decoded display form; empty when DecodeOK is false.
	Unicode string
	// SLD is the second-level label of the Unicode form.
	SLD string
	// TLD is the top-level label of the ACE name.
	TLD string
	// ITLD reports whether the TLD is itself an ACE label (an
	// internationalized TLD).
	ITLD bool
	// DecodeOK reports whether the ACE form decoded cleanly; sections that
	// need the Unicode form skip domains where it is false, exactly as the
	// per-section decode loops did.
	DecodeOK bool
	// Lang is the classified language of the SLD label (valid only when
	// DecodeOK is true), assigned by the process-wide langid classifier.
	Lang langid.Language
	// Malicious reports blacklist membership.
	Malicious bool
	// HasWHOIS and HasPDNS report auxiliary-store coverage.
	HasWHOIS bool
	HasPDNS  bool
}

// Index is the shared, immutable corpus substrate: one pass over the IDN
// population materializes per-domain derived state into a dense slice, and
// every cross-section aggregate (the IDN WHOIS sub-store, population
// partitions, the language breakdown, the creation timeline, the hosting
// concentration, usage samples, certificate censuses) is computed at most
// once and memoized behind the index. All accessors are safe for
// concurrent use — the parallel report scheduler hits them from many
// sections at once — and every memoized value is treated as read-only by
// its consumers.
//
// The design follows the lesson the ZDNS system documents for
// scan-pipeline software: build one indexed, immutable view of the corpus
// and let every concurrent consumer share it, instead of letting each
// analysis re-derive its own view per query.
type Index struct {
	ds    *Dataset
	infos []DomainInfo

	// buildMetrics snapshots the pipeline engine that built the index.
	buildMetrics pipeline.Metrics

	whoisOnce sync.Once
	whoisSub  *whois.Store

	malOnce   sync.Once
	malicious []string

	partMu     sync.Mutex
	partitions map[partitionKey][]string

	seriesMu sync.Mutex
	series   map[seriesKey][]float64

	langOnce sync.Once
	langRows []LanguageRow

	timelineOnce sync.Once
	timelineAll  stats.Histogram
	timelineMal  stats.Histogram

	concOnce sync.Once
	conc     IPConcentration

	usageMu sync.Mutex
	usage   map[usageKey]webprobe.Census

	certMu sync.Mutex
	certs  map[Population]CertReport

	availOnce sync.Once
	availReg  map[string]uint8
}

type partitionKey struct {
	pop Population
	tld string
}

type seriesKey struct {
	active bool
	pop    Population
	tld    string
}

type usageKey struct {
	pop  Population
	size int
	seed uint64
}

// Index returns the dataset's corpus index, building it on first use. The
// build is a single bounded-parallel pass through internal/pipeline
// (IndexWorkers wide, GOMAXPROCS when zero); the order-preserving fan-in
// keeps infos aligned with Dataset.IDNs, so the index is deterministic at
// any worker count.
func (ds *Dataset) Index() *Index {
	ds.idxOnce.Do(func() {
		ds.idx = buildIndex(ds, langid.Default(), ds.IndexWorkers)
	})
	return ds.idx
}

// buildIndex runs the one-pass derivation over the IDN corpus.
func buildIndex(ds *Dataset, cls *langid.Classifier, workers int) *Index {
	eng := pipeline.New(
		pipeline.Config{Stage: "index", Workers: workers},
		func() struct{} { return struct{}{} },
		func(_ struct{}, domain string) (DomainInfo, bool, error) {
			info := DomainInfo{Domain: domain, TLD: idna.TLD(domain)}
			info.ITLD = idna.IsACELabel(info.TLD)
			info.Malicious = ds.Blacklists.IsMalicious(domain)
			_, info.HasWHOIS = ds.WHOIS.Get(domain)
			_, info.HasPDNS = ds.PDNS.Get(domain)
			if uni, err := idna.ToUnicode(domain); err == nil {
				info.DecodeOK = true
				info.Unicode = uni
				info.SLD = idna.SLDLabel(uni)
				info.Lang = cls.Classify(info.SLD)
			}
			return info, true, nil
		})
	infos, err := eng.Collect(context.Background(), pipeline.FromSlice(ds.IDNs))
	if err != nil {
		// Unreachable: slice source, background context, Func never errors.
		panic("core: index build: " + err.Error())
	}
	return &Index{ds: ds, infos: infos, buildMetrics: eng.Metrics()}
}

// Infos returns the per-domain derived records, aligned with Dataset.IDNs.
// Callers must treat the slice as read-only.
func (ix *Index) Infos() []DomainInfo { return ix.infos }

// BuildMetrics returns the pipeline metrics of the index-construction
// pass.
func (ix *Index) BuildMetrics() pipeline.Metrics { return ix.buildMetrics }

// IDNWHOIS returns the WHOIS sub-store restricted to the IDN corpus,
// built once. Tables III and IV and three findings all rank against it;
// before the index each of them rebuilt the store from scratch.
func (ix *Index) IDNWHOIS() *whois.Store {
	ix.whoisOnce.Do(func() {
		sub := whois.NewStore()
		for i := range ix.infos {
			if !ix.infos[i].HasWHOIS {
				continue
			}
			if rec, ok := ix.ds.WHOIS.Get(ix.infos[i].Domain); ok {
				sub.Put(rec)
			}
		}
		ix.whoisSub = sub
	})
	return ix.whoisSub
}

// Malicious returns the blacklisted subset of the corpus in corpus order
// (sorted, because Dataset.IDNs is sorted). Read-only.
func (ix *Index) Malicious() []string {
	ix.malOnce.Do(func() {
		for i := range ix.infos {
			if ix.infos[i].Malicious {
				ix.malicious = append(ix.malicious, ix.infos[i].Domain)
			}
		}
	})
	return ix.malicious
}

// populationDomains resolves a population to its (cached) domain list.
func (ix *Index) populationDomains(p Population) []string {
	switch p {
	case PopulationIDN:
		return ix.ds.IDNs
	case PopulationNonIDN:
		return ix.ds.NonIDNs
	case PopulationMalicious:
		return ix.Malicious()
	}
	return nil
}

// Partition returns a population optionally restricted to one TLD ("" for
// all), computing each (population, tld) filter exactly once. For the IDN
// population the filter reads the index's precomputed TLD fields instead
// of re-deriving them per domain. Read-only.
func (ix *Index) Partition(p Population, tld string) []string {
	if tld == "" {
		return ix.populationDomains(p)
	}
	key := partitionKey{pop: p, tld: tld}
	ix.partMu.Lock()
	defer ix.partMu.Unlock()
	if ix.partitions == nil {
		ix.partitions = make(map[partitionKey][]string)
	}
	if cached, ok := ix.partitions[key]; ok {
		return cached
	}
	var out []string
	if p == PopulationIDN {
		for i := range ix.infos {
			info := &ix.infos[i]
			if info.TLD == tld || (tld == "itld" && info.ITLD) {
				out = append(out, info.Domain)
			}
		}
	} else {
		out = filterTLD(ix.populationDomains(p), tld)
	}
	ix.partitions[key] = out
	return out
}

// Series returns the pDNS activity series (active days when active is
// true, query volumes otherwise) for a population/TLD cut, computed once.
// Read-only.
func (ix *Index) Series(active bool, p Population, tld string) []float64 {
	key := seriesKey{active: active, pop: p, tld: tld}
	ix.seriesMu.Lock()
	if ix.series == nil {
		ix.series = make(map[seriesKey][]float64)
	}
	if cached, ok := ix.series[key]; ok {
		ix.seriesMu.Unlock()
		return cached
	}
	ix.seriesMu.Unlock()

	domains := ix.Partition(p, tld)
	var vals []float64
	if active {
		vals = ix.ds.PDNS.ActiveDaysOf(domains)
	} else {
		vals = ix.ds.PDNS.QueriesOf(domains)
	}

	ix.seriesMu.Lock()
	ix.series[key] = vals
	ix.seriesMu.Unlock()
	return vals
}

// LanguageRows returns the Table II distribution, classified during the
// index pass and aggregated once. Read-only.
func (ix *Index) LanguageRows() []LanguageRow {
	ix.langOnce.Do(func() {
		ix.langRows = languageRowsFromInfos(ix.infos)
	})
	return ix.langRows
}

// languageRowsFromInfos aggregates the precomputed per-domain languages
// with exactly the grouping and ordering of the sequential
// LanguageBreakdown loop.
func languageRowsFromInfos(infos []DomainInfo) []LanguageRow {
	counts := make(map[langid.Language]int)
	blackCounts := make(map[langid.Language]int)
	total, blackTotal := 0, 0
	for i := range infos {
		info := &infos[i]
		if !info.DecodeOK {
			continue
		}
		lang := info.Lang
		if lang == langid.English {
			lang = langid.Other
		}
		counts[lang]++
		total++
		if info.Malicious {
			blackCounts[lang]++
			blackTotal++
		}
	}
	return languageRowsFromCounts(counts, blackCounts, total, blackTotal)
}

// Timeline returns the Figure 1 histograms, computed once. Both maps are
// read-only.
func (ix *Index) Timeline() (all, malicious stats.Histogram) {
	ix.timelineOnce.Do(func() {
		ix.timelineAll = make(stats.Histogram)
		ix.timelineMal = make(stats.Histogram)
		for i := range ix.infos {
			info := &ix.infos[i]
			if !info.HasWHOIS {
				continue
			}
			rec, ok := ix.ds.WHOIS.Get(info.Domain)
			if !ok || rec.Created.IsZero() {
				continue
			}
			y := rec.Created.Year()
			ix.timelineAll[y]++
			if info.Malicious {
				ix.timelineMal[y]++
			}
		}
	})
	return ix.timelineAll, ix.timelineMal
}

// Concentration returns the Figure 4 statistics, computed once. Read-only.
func (ix *Index) Concentration() IPConcentration {
	ix.concOnce.Do(func() {
		ix.conc = ix.ds.ipConcentration(ix.infos)
	})
	return ix.conc
}

// Usage returns the Table V census for a deterministic population sample,
// computed once per (population, size, seed). Read-only.
func (ix *Index) Usage(p Population, sampleSize int, seed uint64) webprobe.Census {
	key := usageKey{pop: p, size: sampleSize, seed: seed}
	ix.usageMu.Lock()
	defer ix.usageMu.Unlock()
	if ix.usage == nil {
		ix.usage = make(map[usageKey]webprobe.Census)
	}
	if cached, ok := ix.usage[key]; ok {
		return cached
	}
	census := ix.ds.usageSample(ix.populationDomains(p), sampleSize, seed)
	ix.usage[key] = census
	return census
}

// AvailabilityReg returns the availability study's registration lookup:
// Unicode SLD label → bitmask of the study TLDs (com/net/org) it is
// registered under, derived from the Unicode forms the index pass already
// decoded. The availability sweep checks its surviving homograph variants
// against this map directly — one lookup per variant instead of a
// punycode encode plus three set probes. Built once; read-only.
func (ix *Index) AvailabilityReg() map[string]uint8 {
	ix.availOnce.Do(func() {
		ix.availReg = make(map[string]uint8)
		for i := range ix.infos {
			info := &ix.infos[i]
			if !info.DecodeOK {
				continue
			}
			bit := availabilityTLDBit(info.TLD)
			if bit == 0 {
				continue
			}
			ix.availReg[info.SLD] |= bit
		}
	})
	return ix.availReg
}

// Certs returns the Table VI certificate census for a population, computed
// once.
func (ix *Index) Certs(p Population) CertReport {
	ix.certMu.Lock()
	defer ix.certMu.Unlock()
	if ix.certs == nil {
		ix.certs = make(map[Population]CertReport)
	}
	if cached, ok := ix.certs[p]; ok {
		return cached
	}
	rep := ix.ds.certCensus(ix.populationDomains(p))
	ix.certs[p] = rep
	return rep
}
