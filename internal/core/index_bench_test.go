package core

import (
	"testing"

	"idnlab/internal/candidx"
	"idnlab/internal/simchar"
	"idnlab/internal/simrand"
)

// BenchmarkDetectNormalized10k measures single-domain homograph detection
// over a 10k-brand catalog on a mixed adversarial label corpus, through
// the candidate index (the production path when an index is loaded). The
// committed BENCH_baseline_index.txt records the same benchmark run over
// the sweep path (WithoutPrefilter + WithBrands) — the sweep is the
// specification the index is bit-identical to, so old/new is the honest
// cost of exact detection before and after the index.
func BenchmarkDetectNormalized10k(b *testing.B) {
	src := simrand.New(0x1D9A_7C3E)
	list := genBrandCorpus(src.Fork("brands"), 10000)
	ix, err := candidx.Build(list, candidx.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	d := NewHomographDetector(0, WithIndex(ix))
	tab := simchar.Default()
	lsrc := src.Fork("labels")
	var corpus []NormalizedDomain
	var bytes int64
	for i := 0; i < 64; i++ {
		label := mutateLabel(lsrc, tab, list[lsrc.Intn(len(list))].Label())
		n, err := Normalize(label + ".com")
		if err != nil {
			continue
		}
		corpus = append(corpus, n)
		bytes += int64(len(n.Label))
	}
	for _, n := range corpus {
		d.DetectNormalized(n)
	}
	b.SetBytes(bytes / int64(len(corpus)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.DetectNormalized(corpus[i%len(corpus)])
	}
}
