package core

import (
	"encoding/json"
	"io"

	"idnlab/internal/browser"
	"idnlab/internal/stats"
)

// Results is the machine-readable form of the full study, for downstream
// analysis pipelines (the text report is the human-facing form).
type Results struct {
	// Scale is the down-scaling divisor of the underlying universe.
	Scale int `json:"scale"`
	// Corpus sizes.
	IDNs    int `json:"idns"`
	NonIDNs int `json:"nonIdns"`
	// PerTLD is the Table I accounting.
	PerTLD []TLDRow `json:"perTld"`
	// Findings are the paper's nine numbered findings, measured.
	Findings Findings `json:"findings"`
	// Languages is the Table II distribution.
	Languages []LanguageRow `json:"languages"`
	// TopRegistrars and TopRegistrants are Tables IV and III.
	TopRegistrars  []GroupCountJSON `json:"topRegistrars"`
	TopRegistrants []GroupCountJSON `json:"topRegistrants"`
	// Homographs and Semantic are the detector outputs (Tables XIII/XIV).
	Homographs HomographResults `json:"homographs"`
	Semantic   SemanticResults  `json:"semantic"`
	// BrowserSurvey is the Table XI matrix.
	BrowserSurvey []browser.SurveyRow `json:"browserSurvey"`
	// IPGini summarizes the Figure 4 hosting concentration.
	IPGini float64 `json:"ipGini"`
}

// GroupCountJSON mirrors whois.GroupCount with JSON tags.
type GroupCountJSON struct {
	Key   string `json:"key"`
	Count int    `json:"count"`
}

// HomographResults summarizes the homograph detector's output.
type HomographResults struct {
	Total       int              `json:"total"`
	Identical   int              `json:"identical"`
	Blacklisted int              `json:"blacklisted"`
	ByBrand     []BrandRanking   `json:"byBrand"`
	Matches     []HomographMatch `json:"matches"`
}

// SemanticResults summarizes the Type-1 detector's output.
type SemanticResults struct {
	Total   int             `json:"total"`
	ByBrand []BrandRanking  `json:"byBrand"`
	Matches []SemanticMatch `json:"matches"`
}

// Results computes the full machine-readable study output.
func (st *Study) Results() Results {
	out := Results{
		Scale:   st.DS.Scale(),
		IDNs:    len(st.DS.IDNs),
		NonIDNs: len(st.DS.NonIDNs),
		PerTLD:  st.DS.PerTLD,
	}
	out.Findings = st.ComputeFindings()
	out.Languages = st.DS.LanguageBreakdown(st.Classifier)

	topReg, _ := st.DS.TopRegistrars(10)
	for _, gc := range topReg {
		out.TopRegistrars = append(out.TopRegistrars, GroupCountJSON{Key: gc.Key, Count: gc.Count})
	}
	for _, gc := range st.DS.TopRegistrants(5) {
		out.TopRegistrants = append(out.TopRegistrants, GroupCountJSON{Key: gc.Key, Count: gc.Count})
	}

	homo := st.homographMatches()
	out.Homographs.Total = len(homo)
	out.Homographs.Matches = homo
	out.Homographs.ByBrand = RankBrands(homo, func(m HomographMatch) string { return m.Brand })
	for _, m := range homo {
		if m.SSIM >= 1.0-1e-9 {
			out.Homographs.Identical++
		}
		if st.DS.Blacklists.IsMalicious(m.Domain) {
			out.Homographs.Blacklisted++
		}
	}

	sem := st.semanticMatches()
	out.Semantic.Total = len(sem)
	out.Semantic.Matches = sem
	out.Semantic.ByBrand = RankBrands(sem, func(m SemanticMatch) string { return m.Brand })

	out.BrowserSurvey = browser.RunSurvey()

	conc := st.DS.IPConcentrationStats()
	counts := make([]int, len(conc.Segments))
	for i, seg := range conc.Segments {
		counts[i] = seg.Domains
	}
	out.IPGini = stats.Gini(counts)
	return out
}

// WriteJSON renders the results as indented JSON.
func (st *Study) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(st.Results())
}
