package core

import (
	"unicode/utf8"

	"idnlab/internal/brands"
	"idnlab/internal/candidx"
	"idnlab/internal/glyph"
	"idnlab/internal/ssim"
)

// Index-backed detection. A precomputed candidate index (package
// candidx) replaces the O(brands) SSIM sweep with a handful of hash
// probes that return the only brands a label could plausibly imitate;
// those few candidates are then rescored with the detector's own Score,
// so the verdict — including the exact SSIM value and the first-at-max
// tie-break — is bit-identical to the brute sweep's. The sweep itself is
// retained as the out-of-index fallback (no index loaded, or an index
// compiled for a different threshold) and as the equivalence oracle in
// the property tests.

// WithBrands replaces the detector's brand catalog with an explicit
// list, prerendering reference rasters for any label outside the shared
// top-1000 cache so every Score call stays on the precomputed-table
// path. The topK constructor argument is ignored when this option is
// used.
func WithBrands(list []brands.Brand) HomographOption {
	return func(d *HomographDetector) { d.customBrands = list }
}

// WithIndex attaches a precomputed candidate index. The detector's brand
// catalog becomes the index's embedded catalog (the index's brand IDs
// must resolve against the exact list it was compiled from), and
// DetectNormalized consults the index before any sweep. An index
// compiled for a different threshold than the detector's is ignored:
// the detector silently falls back to the brute sweep, which is always
// correct, rather than serve verdicts from a mismatched expansion.
func WithIndex(ix *candidx.Index) HomographOption {
	return func(d *HomographDetector) { d.index = ix }
}

// resolveBrandSetup finishes construction after options ran: it picks
// the brand catalog (index catalog > explicit list > global top-k) and
// extends the shared prerender cache with any labels it misses.
func (d *HomographDetector) resolveBrandSetup(topK int) {
	if d.index != nil {
		if d.index.Threshold() != d.threshold {
			d.index = nil // mismatched compilation; sweep stays authoritative
		} else {
			d.customBrands = d.index.Brands()
		}
	}
	if d.customBrands != nil {
		d.brandList = d.customBrands
	} else {
		d.brandList = brands.TopK(topK)
	}
}

// extendBrandCache returns ref/width maps covering every label in list,
// reusing the process-wide cache's entries and rendering only the
// missing ones. The shared maps are never mutated.
func extendBrandCache(re *glyph.Renderer, refs map[string]*ssim.RefTable,
	widths map[string]int, list []brands.Brand) (map[string]*ssim.RefTable, map[string]int) {
	nr := make(map[string]*ssim.RefTable, len(refs)+len(list))
	nw := make(map[string]int, len(widths)+len(list))
	for k, v := range refs {
		nr[k] = v
	}
	for k, v := range widths {
		nw[k] = v
	}
	for _, b := range list {
		label := b.Label()
		if _, ok := nr[label]; ok {
			continue
		}
		w := utf8.RuneCountInString(label) * glyph.CellWidth
		nw[label] = w
		nr[label] = ssim.Precompute(re.RenderWidth(label, w))
	}
	return nr, nw
}

// Index returns the attached candidate index, if any.
func (d *HomographDetector) Index() *candidx.Index { return d.index }

// detectIndexed is the index-backed DetectNormalized path: probe the
// index for the label's candidate brands (plus the always-rescore hard
// list), rescore them in brand-catalog order with the same Score and
// strict-greater tracking as the sweep, and apply the same threshold
// decision. Candidates arrive sorted ascending, so the first-at-max
// tie-break is preserved.
//
// Rescoring runs through ScoreBounded with the floor max(threshold,
// best): a candidate can only change the verdict by scoring at least the
// threshold AND strictly above the best exact score so far, so any
// candidate the bounded kernel proves below the floor is skipped without
// finishing its window sweep. Scores at or above the floor come back
// bit-identical to Score, so the returned match — brand, SSIM and
// first-at-max tie-break — is unchanged from the full-rescore path (the
// sweep-equivalence property tests pin this).
func (d *HomographDetector) detectIndexed(n NormalizedDomain) (HomographMatch, bool) {
	label := n.Label
	if d.probe == nil {
		d.probe = &candidx.Probe{}
	}
	best := HomographMatch{Domain: n.ACE, Unicode: n.Unicode, SSIM: -1}
	floor := d.threshold
	labelLen := utf8.RuneCountInString(label)
	for _, id := range d.index.Candidates(label, d.probe) {
		i := int(id)
		if diff := labelLen - d.brandLens[i]; diff > 1 || diff < -1 {
			continue
		}
		score, ok := d.ScoreBounded(label, d.brandList[i].Label(), floor)
		if ok && score > best.SSIM {
			best.SSIM = score
			best.Brand = d.brandList[i].Domain
			floor = score
		}
	}
	if best.SSIM >= d.threshold {
		return best, true
	}
	return HomographMatch{}, false
}
