package core

import (
	"bytes"
	"context"
	"fmt"
	"idnlab/internal/brands"
	"idnlab/internal/idna"
	"io"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
	"time"
	"unicode/utf8"

	"idnlab/internal/browser"
	"idnlab/internal/feat"
	"idnlab/internal/glyph"
	"idnlab/internal/langid"
	"idnlab/internal/pipeline"
	"idnlab/internal/stats"
	"idnlab/internal/webprobe"
	"idnlab/internal/zonegen"
)

// Study runs the complete measurement over a dataset and renders every
// table and figure of the paper. Corpus-scale detector scans (Tables IX,
// XIII, XIV; Figures 5, 8) run through the internal/pipeline streaming
// engine with ScanWorkers-wide fan-out and are memoized — each scan runs
// once per Study no matter how many sections consume it. Report sections
// themselves render concurrently (RunContext) into private buffers that
// an order-preserving fan-in writes out in the fixed section order, so
// the report is byte-identical to the sequential renderer at any worker
// count.
type Study struct {
	DS         *Dataset
	Classifier *langid.Classifier
	Homograph  *HomographDetector
	Semantic   *SemanticDetector

	// ScanWorkers is the fan-out of pipelined corpus scans and of the
	// section scheduler; 0 selects GOMAXPROCS, 1 forces a single worker.
	ScanWorkers int
	// ScanConfig builds the per-worker homograph detectors for
	// pipelined scans (its TopK also sizes the semantic detector). It
	// must agree with the Homograph/Semantic fields for the report's
	// example sections to match its corpus sections.
	ScanConfig DetectorConfig

	mu          sync.Mutex
	scanMetrics []pipeline.Metrics
	timings     []SectionTiming

	// Memoized statistical classifier: trained once per Study on the
	// registry's labeled ground truth (deterministic for a fixed seed),
	// shared by the taxonomy section across sequential and parallel
	// renders. Guarded by its own mutex like the memoized scans.
	statMu  sync.Mutex
	statM   *feat.Model
	statExs []feat.Example
	statErr error

	// Memoized corpus scans. Guarded by their own mutexes (not sync.Once)
	// so a scan aborted by context cancellation stays uncached and can be
	// retried; results are cached only on success.
	homoMu     sync.Mutex
	homoDone   bool
	homoCached []HomographMatch
	semMu      sync.Mutex
	semDone    bool
	semCached  []SemanticMatch

	indexMetricsOnce sync.Once
}

// NewStudy wires a study over an assembled dataset with default
// components. The language classifier is the process-wide shared model
// (langid.Default), which lets the Table II breakdown reuse the corpus
// index's per-domain classifications.
func NewStudy(ds *Dataset) *Study {
	return &Study{
		DS:         ds,
		Classifier: langid.Default(),
		Homograph:  NewHomographDetector(1000),
		Semantic:   NewSemanticDetector(1000),
		ScanConfig: DetectorConfig{TopK: 1000},
	}
}

// homographMatchesCtx returns the corpus homograph matches, running the
// pipelined scan on first use and caching on success. Before memoization
// the scan ran once per consuming section (Table XIII and Figure 5 each
// paid a full corpus sweep).
func (st *Study) homographMatchesCtx(ctx context.Context) ([]HomographMatch, error) {
	st.homoMu.Lock()
	defer st.homoMu.Unlock()
	if st.homoDone {
		return st.homoCached, nil
	}
	matches, m, err := ScanHomograph(ctx, st.ScanConfig, st.DS.IDNs, st.ScanWorkers)
	if err != nil {
		return nil, err
	}
	st.recordScan(m)
	st.homoCached = matches
	st.homoDone = true
	return matches, nil
}

// homographMatches is the non-cancellable entry point used by sections.
func (st *Study) homographMatches() []HomographMatch {
	matches, err := st.homographMatchesCtx(context.Background())
	if err != nil {
		// Unreachable with a background context and a slice source.
		panic("core: homograph scan: " + err.Error())
	}
	return matches
}

// semanticMatchesCtx returns the corpus Type-1 matches, running the
// pipelined scan on first use and caching on success.
func (st *Study) semanticMatchesCtx(ctx context.Context) ([]SemanticMatch, error) {
	st.semMu.Lock()
	defer st.semMu.Unlock()
	if st.semDone {
		return st.semCached, nil
	}
	matches, m, err := ScanSemantic(ctx, st.ScanConfig.TopK, st.DS.IDNs, st.ScanWorkers)
	if err != nil {
		return nil, err
	}
	st.recordScan(m)
	st.semCached = matches
	st.semDone = true
	return matches, nil
}

// semanticMatches is the non-cancellable entry point used by sections.
func (st *Study) semanticMatches() []SemanticMatch {
	matches, err := st.semanticMatchesCtx(context.Background())
	if err != nil {
		panic("core: semantic scan: " + err.Error())
	}
	return matches
}

func (st *Study) recordScan(m pipeline.Metrics) {
	st.mu.Lock()
	st.scanMetrics = append(st.scanMetrics, m)
	st.mu.Unlock()
}

// ScanMetrics returns one Metrics snapshot per pipelined pass the study
// has run so far (index build, corpus scans, section scheduler), in
// execution order.
func (st *Study) ScanMetrics() []pipeline.Metrics {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]pipeline.Metrics, len(st.scanMetrics))
	copy(out, st.scanMetrics)
	return out
}

// SectionTiming records how long one report section took to render during
// the last RunContext.
type SectionTiming struct {
	Name     string
	Duration time.Duration
}

// SectionTimings returns the per-section render durations of the most
// recent completed Run/RunContext, in section order.
func (st *Study) SectionTimings() []SectionTiming {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]SectionTiming, len(st.timings))
	copy(out, st.timings)
	return out
}

// reportSection pairs a section renderer with its display name (used in
// error messages and timing output).
type reportSection struct {
	Name string
	Fn   func(io.Writer) error
}

// sections returns the report's section list in its fixed output order.
func (st *Study) sections() []reportSection {
	return []reportSection{
		{"Findings", st.ReportFindings},
		{"Table I", st.ReportTable1}, {"Table II", st.ReportTable2},
		{"Figure 1", st.ReportFigure1}, {"Table III", st.ReportTable3},
		{"Table IV", st.ReportTable4}, {"Figure 2", st.ReportFigure2},
		{"Figure 3", st.ReportFigure3}, {"Figure 4", st.ReportFigure4},
		{"Table V", st.ReportTable5}, {"Table VI", st.ReportTable6},
		{"Table VII", st.ReportTable7}, {"Table VIII", st.ReportTable8},
		{"Table IX", st.ReportTable9}, {"Table X", st.ReportTable10},
		{"Table XI", st.ReportTable11}, {"Table XI-b", st.ReportTable11b},
		{"Table XII", st.ReportTable12}, {"Table XIII", st.ReportTable13},
		{"Figure 5", st.ReportFigure5}, {"Figure 6", st.ReportFigure6},
		{"Figure 7", st.ReportFigure7}, {"Figure 7b", st.ReportFigure7b},
		{"Table XIV", st.ReportTable14}, {"Figure 8", st.ReportFigure8},
		{"Taxonomy", st.ReportTaxonomy},
	}
}

// Run executes every experiment and writes the full report to w.
func (st *Study) Run(w io.Writer) error {
	return st.RunContext(context.Background(), w)
}

// RunContext executes every experiment with bounded-parallel section
// rendering and writes the full report to w. The three shared substrates
// — the corpus index and both detector scans — are primed first under the
// caller's context; the ~25 sections then render concurrently into
// private buffers that the pipeline's order-preserving fan-in writes to w
// in the fixed section order. Output is byte-identical to the sequential
// renderer at any ScanWorkers value. On cancellation RunContext returns
// ctx.Err() after all section goroutines have drained.
func (st *Study) RunContext(ctx context.Context, w io.Writer) error {
	// Prime the shared substrates once, sequentially, under ctx: every
	// section then reads memoized state instead of racing to compute it.
	if st.DS.IndexWorkers == 0 {
		st.DS.IndexWorkers = st.ScanWorkers
	}
	ix := st.DS.Index()
	st.indexMetricsOnce.Do(func() { st.recordScan(ix.BuildMetrics()) })
	if err := ctx.Err(); err != nil {
		return err
	}
	if _, err := st.homographMatchesCtx(ctx); err != nil {
		return err
	}
	if _, err := st.semanticMatchesCtx(ctx); err != nil {
		return err
	}

	secs := st.sections()
	timings := make([]SectionTiming, len(secs))
	eng := pipeline.New(
		pipeline.Config{Stage: "report", Workers: st.ScanWorkers, Batch: 1},
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) ([]byte, bool, error) {
			var buf bytes.Buffer
			t0 := time.Now()
			if err := secs[i].Fn(&buf); err != nil {
				return nil, false, fmt.Errorf("section %s: %w", secs[i].Name, err)
			}
			// The sequential renderer emitted one blank line after each
			// section; keep it inside the section's buffer so assembly
			// is a plain ordered concatenation.
			buf.WriteByte('\n')
			timings[i] = SectionTiming{Name: secs[i].Name, Duration: time.Since(t0)}
			return buf.Bytes(), true, nil
		})
	order := make([]int, len(secs))
	for i := range order {
		order[i] = i
	}
	err := eng.Stream(ctx, pipeline.FromSlice(order), func(b []byte) error {
		_, werr := w.Write(b)
		return werr
	})
	st.recordScan(eng.Metrics())
	if err != nil {
		return err
	}
	st.mu.Lock()
	st.timings = timings
	st.mu.Unlock()
	return nil
}

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// ReportTable1 renders the dataset summary (Table I).
func (st *Study) ReportTable1(w io.Writer) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "TABLE I: Datasets collected (scaled 1/"+fmt.Sprint(st.DS.Registry.Cfg.Scale)+")")
	fmt.Fprintln(tw, "TLD\t# SLD\t# IDN\tWHOIS\tBlacklisted")
	var sld, idn, who, bl int
	for _, row := range st.DS.PerTLD {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\n", row.TLD, row.SLDs, row.IDNs, row.WHOIS, row.Blacklisted)
		sld += row.SLDs
		idn += row.IDNs
		who += row.WHOIS
		bl += row.Blacklisted
	}
	fmt.Fprintf(tw, "Total\t%d\t%d\t%d\t%d\n", sld, idn, who, bl)
	return tw.Flush()
}

// ReportTable2 renders the language distribution (Table II).
func (st *Study) ReportTable2(w io.Writer) error {
	rows := st.DS.LanguageBreakdown(st.Classifier)
	tw := newTab(w)
	fmt.Fprintln(tw, "TABLE II: Languages of all and malicious IDNs")
	fmt.Fprintln(tw, "Language\tVolume\tRate\tBlacklisted\tRate")
	limit := 16
	for i, r := range rows {
		if i >= limit {
			break
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%s\n",
			r.Language, r.Count, stats.Percent(r.Rate), r.Blacklisted, stats.Percent(r.BlackRate))
	}
	return tw.Flush()
}

// ReportFigure1 renders the registration timeline (Figure 1).
func (st *Study) ReportFigure1(w io.Writer) error {
	all, malicious := st.DS.CreationTimeline()
	fmt.Fprintln(w, "FIGURE 1: IDN registrations by creation year (all | malicious)")
	tw := newTab(w)
	for _, y := range all.Keys() {
		fmt.Fprintf(tw, "%d\t%d\t%d\n", y, all[y], malicious[y])
	}
	return tw.Flush()
}

// ReportTable3 renders the top registrants (Table III).
func (st *Study) ReportTable3(w io.Writer) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "TABLE III: Top 5 IDN registrants")
	fmt.Fprintln(tw, "Email\t# IDN")
	for _, gc := range st.DS.TopRegistrants(5) {
		fmt.Fprintf(tw, "%s\t%d\n", gc.Key, gc.Count)
	}
	return tw.Flush()
}

// ReportTable4 renders the top registrars (Table IV).
func (st *Study) ReportTable4(w io.Writer) error {
	top, covered := st.DS.TopRegistrars(10)
	tw := newTab(w)
	fmt.Fprintf(tw, "TABLE IV: Top 10 registrars (%d distinct total)\n", st.DS.RegistrarCount())
	fmt.Fprintln(tw, "Registrar\t# IDN\tRate")
	for _, gc := range top {
		fmt.Fprintf(tw, "%s\t%d\t%s\n", gc.Key, gc.Count, stats.Percent(float64(gc.Count)/float64(covered)))
	}
	return tw.Flush()
}

// figureECDF renders a two-or-three population ECDF block.
func (st *Study) figureECDF(w io.Writer, title, xlabel string, series []stats.Series, hi float64) error {
	ticks := stats.LogTicks(1, hi, 9)
	if _, err := io.WriteString(w, stats.RenderECDFTable(title+" ("+xlabel+")", ticks, series)); err != nil {
		return err
	}
	return nil
}

// ReportFigure2 renders the active-time ECDFs (Figure 2).
func (st *Study) ReportFigure2(w io.Writer) error {
	series := []stats.Series{
		{Name: "IDN(com)", Values: st.DS.ActiveTimeSeries(PopulationIDN, "com")},
		{Name: "IDN(net)", Values: st.DS.ActiveTimeSeries(PopulationIDN, "net")},
		{Name: "IDN(itld)", Values: st.DS.ActiveTimeSeries(PopulationIDN, "itld")},
		{Name: "nonIDN(com)", Values: st.DS.ActiveTimeSeries(PopulationNonIDN, "com")},
		{Name: "malicious", Values: st.DS.ActiveTimeSeries(PopulationMalicious, "")},
	}
	return st.figureECDF(w, "FIGURE 2: ECDF of active time", "days", series, 3000)
}

// ReportFigure3 renders the query-volume ECDFs (Figure 3).
func (st *Study) ReportFigure3(w io.Writer) error {
	series := []stats.Series{
		{Name: "IDN(com)", Values: st.DS.QueryVolumeSeries(PopulationIDN, "com")},
		{Name: "IDN(net)", Values: st.DS.QueryVolumeSeries(PopulationIDN, "net")},
		{Name: "IDN(itld)", Values: st.DS.QueryVolumeSeries(PopulationIDN, "itld")},
		{Name: "nonIDN(com)", Values: st.DS.QueryVolumeSeries(PopulationNonIDN, "com")},
		{Name: "malicious", Values: st.DS.QueryVolumeSeries(PopulationMalicious, "")},
	}
	return st.figureECDF(w, "FIGURE 3: ECDF of query volume", "queries", series, 1e7)
}

// ReportFigure4 renders the IP-concentration curve (Figure 4).
func (st *Study) ReportFigure4(w io.Writer) error {
	conc := st.DS.IPConcentrationStats()
	counts := make([]int, len(conc.Segments))
	for i, seg := range conc.Segments {
		counts[i] = seg.Domains
	}
	fmt.Fprintf(w, "FIGURE 4: IDN concentration over /24 segments (%d segments, %d IPs, Gini %.3f)\n",
		len(conc.Segments), conc.TotalIPs, stats.Gini(counts))
	tw := newTab(w)
	fmt.Fprintln(tw, "top-k segments\tcumulative IDN share")
	for _, k := range []int{1, 10, 50, 100, 200, 500, 1000} {
		if k > len(conc.Cumulative) {
			break
		}
		fmt.Fprintf(tw, "%d\t%s\n", k, stats.Percent(conc.Cumulative[k-1]))
	}
	return tw.Flush()
}

// ReportTable5 renders the usage census (Table V).
func (st *Study) ReportTable5(w io.Writer) error {
	idn := st.DS.UsageSample(PopulationIDN, 500, 1)
	non := st.DS.UsageSample(PopulationNonIDN, 500, 1)
	tw := newTab(w)
	fmt.Fprintln(tw, "TABLE V: Usage of domain names (500-domain samples)")
	fmt.Fprintln(tw, "Type\tIDN\tNon-IDN")
	for _, s := range webprobe.States() {
		fmt.Fprintf(tw, "%s\t%d (%s)\t%d (%s)\n", s,
			idn[s], stats.Percent(idn.Rate(s)), non[s], stats.Percent(non.Rate(s)))
	}
	fmt.Fprintf(tw, "Total\t%d\t%d\n", idn.Total(), non.Total())
	return tw.Flush()
}

// ReportTable6 renders the certificate problems (Table VI).
func (st *Study) ReportTable6(w io.Writer) error {
	idn := st.DS.CertCensus(PopulationIDN)
	non := st.DS.CertCensus(PopulationNonIDN)
	tw := newTab(w)
	fmt.Fprintln(tw, "TABLE VI: Security problems of SSL certificates")
	fmt.Fprintln(tw, "Problem\tIDN\tnon-IDN")
	rate := func(n, total int) string {
		if total == 0 {
			return "0"
		}
		return fmt.Sprintf("%d (%s)", n, stats.Percent(float64(n)/float64(total)))
	}
	fmt.Fprintf(tw, "Expired Certificate\t%s\t%s\n", rate(idn.Expired, idn.Total), rate(non.Expired, non.Total))
	fmt.Fprintf(tw, "Invalid Authority\t%s\t%s\n", rate(idn.InvalidAuthority, idn.Total), rate(non.InvalidAuthority, non.Total))
	fmt.Fprintf(tw, "Invalid Common Name\t%s\t%s\n", rate(idn.InvalidCommonName, idn.Total), rate(non.InvalidCommonName, non.Total))
	fmt.Fprintf(tw, "Total problematic\t%s\t%s\n",
		rate(idn.Total-idn.Valid, idn.Total), rate(non.Total-non.Valid, non.Total))
	return tw.Flush()
}

// ReportTable7 renders the shared-certificate ranking (Table VII).
func (st *Study) ReportTable7(w io.Writer) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "TABLE VII: Top shared certificates among IDNs")
	fmt.Fprintln(tw, "Common Name\tVolume")
	for _, cn := range st.DS.SharedCertificates(10) {
		fmt.Fprintf(tw, "%s\t%d\n", cn.CommonName, cn.Count)
	}
	return tw.Flush()
}

// ReportTable8 renders example homographic IDNs for facebook.com
// (Table VIII), generated live from the confusable table.
func (st *Study) ReportTable8(w io.Writer) error {
	fmt.Fprintln(w, "TABLE VIII: Example homographic IDNs for facebook.com")
	// Clone: the detector's Score scratch is not safe for concurrent use,
	// and sections render in parallel under RunContext.
	examples := st.Homograph.Clone().ExamplesFor("facebook", 12)
	for i, ex := range examples {
		sep := "  "
		if (i+1)%4 == 0 {
			sep = "\n"
		}
		fmt.Fprintf(w, "%s.com (%s)%s", ex.Unicode, ex.ACE, sep)
	}
	fmt.Fprintln(w)
	return nil
}

// ReportTable9 renders Type-1 semantic examples (Tables IX/X shape).
func (st *Study) ReportTable9(w io.Writer) error {
	matches := st.semanticMatches()
	tw := newTab(w)
	fmt.Fprintln(tw, "TABLE IX: Examples of Type-1 semantic abuse")
	fmt.Fprintln(tw, "Punycode\tUnicode\tBrand")
	limit := 8
	for i, m := range matches {
		if i >= limit {
			break
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\n", m.Domain, m.Unicode, m.Brand)
	}
	return tw.Flush()
}

// ReportTable11 renders the browser survey (Table XI).
func (st *Study) ReportTable11(w io.Writer) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "TABLE XI: Surveyed browsers under homograph attack")
	fmt.Fprintln(tw, "Browser\tPlatform\tVer.\tiTLD IDN\tHomograph Attack")
	for _, row := range browser.RunSurvey() {
		itld := row.ITLDCell
		if itld == "" {
			itld = "(full)"
		}
		attack := row.Attack
		if attack == "" {
			attack = "(safe)"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", row.Browser, row.Platform, row.Version, itld, attack)
	}
	return tw.Flush()
}

// ReportTable12 renders the SSIM threshold ladder for google.com
// (Table XII) in this renderer's SSIM space.
func (st *Study) ReportTable12(w io.Writer) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "TABLE XII: SSIM index ladder against google.com")
	fmt.Fprintln(tw, "SSIM\tUnicode\tPunycode")
	// Clone: Ladder scores through the detector's private scratch.
	for _, row := range st.Homograph.Clone().Ladder("google") {
		fmt.Fprintf(tw, "%.4f\t%s.com\t%s.com\n", row.SSIM, row.Unicode, row.ACE)
	}
	return tw.Flush()
}

// ReportTable13 renders the homograph brand ranking (Table XIII).
func (st *Study) ReportTable13(w io.Writer) error {
	matches := st.homographMatches()
	ranking := RankBrands(matches, func(m HomographMatch) string { return m.Brand })
	identical := 0
	for _, m := range matches {
		if m.SSIM >= 1.0-1e-9 {
			identical++
		}
	}
	blacklisted := 0
	for _, m := range matches {
		if st.DS.Blacklists.IsMalicious(m.Domain) {
			blacklisted++
		}
	}
	domains := make([]string, len(matches))
	brandOf := make([]string, len(matches))
	for i, m := range matches {
		domains[i] = m.Domain
		brandOf[i] = m.Brand
	}
	reg := BreakdownRegistrants(st.DS, domains, brandOf)
	tw := newTab(w)
	fmt.Fprintf(tw, "TABLE XIII: Registered homographic IDNs (total %d, identical %d, blacklisted %d)\n",
		len(matches), identical, blacklisted)
	fmt.Fprintf(tw, "Registrants (of %d with WHOIS): %d protective, %d personal, %d privacy\n",
		reg.WithWHOIS, reg.Protective, reg.Personal, reg.Privacy)
	fmt.Fprintln(tw, "Brand\t# IDN\tRate")
	limit := 10
	for i, r := range ranking {
		if i >= limit {
			break
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\n", r.Brand, r.Count, stats.Percent(float64(r.Count)/float64(len(matches))))
	}
	return tw.Flush()
}

// ReportFigure5 renders the homographic-IDN DNS activity (Figure 5).
func (st *Study) ReportFigure5(w io.Writer) error {
	matches := st.homographMatches()
	domains := make([]string, len(matches))
	for i, m := range matches {
		domains[i] = m.Domain
	}
	series := []stats.Series{
		{Name: "active-days", Values: st.DS.PDNS.ActiveDaysOf(domains)},
		{Name: "queries", Values: st.DS.PDNS.QueriesOf(domains)},
	}
	active := stats.NewECDF(series[0].Values)
	queries := stats.NewECDF(series[1].Values)
	fmt.Fprintf(w, "FIGURE 5: Homographic IDN activity — mean active %.0f days, mean queries %.0f, P(active>600d)=%s, P(q>100)=%s\n",
		active.Mean(), queries.Mean(),
		stats.Percent(1-active.At(600)), stats.Percent(1-queries.At(100)))
	return st.figureECDF(w, "FIGURE 5 series", "days/queries", series, 1e5)
}

// ReportFigure6 renders registered-vs-unregistered candidate traffic
// (Figure 6).
func (st *Study) ReportFigure6(w io.Writer) error {
	reg, unreg := st.UnregisteredTraffic(100)
	regE := stats.NewECDF(reg)
	unregE := stats.NewECDF(unreg)
	fmt.Fprintf(w, "FIGURE 6: candidate homographic IDN traffic — registered: %d domains (mean %.0f q), unregistered observed: %d domains (mean %.1f q)\n",
		regE.Len(), regE.Mean(), unregE.Len(), unregE.Mean())
	return nil
}

// ReportFigure7 renders the availability study (Figure 7).
func (st *Study) ReportFigure7(w io.Writer) error {
	// Clone: the availability sweep scores through the detector's private
	// scratch, and sections render in parallel under RunContext. The
	// registration map comes precomputed from the corpus index (the index
	// pass already decoded every Unicode form).
	results := st.Homograph.Clone().AvailabilityStudyReg(100, st.DS.Index().AvailabilityReg())
	totalCand, totalHomo, totalReg := 0, 0, 0
	for _, r := range results {
		totalCand += r.Candidates
		totalHomo += r.Homographic
		totalReg += r.Registered
	}
	fmt.Fprintf(w, "FIGURE 7: availability — %d candidates, %d homographic (%s), %d registered\n",
		totalCand, totalHomo, stats.Percent(float64(totalHomo)/float64(totalCand)), totalReg)
	// Figure 7's x-axis is Alexa rank; results arrive in rank order.
	tw := newTab(w)
	fmt.Fprintln(tw, "Brand (by rank)\tCandidates\tHomographic\tRegistered")
	for i, r := range results {
		if i >= 10 {
			break
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", r.Brand, r.Candidates, r.Homographic, r.Registered)
	}
	return tw.Flush()
}

// ReportTable14 renders the Type-1 brand ranking (Table XIV).
func (st *Study) ReportTable14(w io.Writer) error {
	matches := st.semanticMatches()
	ranking := RankBrands(matches, func(m SemanticMatch) string { return m.Brand })
	tw := newTab(w)
	fmt.Fprintf(tw, "TABLE XIV: Type-1 semantic IDNs (total %d)\n", len(matches))
	fmt.Fprintln(tw, "Brand\t# Type-1 IDN\tRate")
	for i, r := range ranking {
		if i >= 10 {
			break
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\n", r.Brand, r.Count, stats.Percent(float64(r.Count)/float64(len(matches))))
	}
	return tw.Flush()
}

// ReportFigure8 renders the Type-1 DNS activity (Figure 8).
func (st *Study) ReportFigure8(w io.Writer) error {
	matches := st.semanticMatches()
	domains := make([]string, len(matches))
	for i, m := range matches {
		domains[i] = m.Domain
	}
	active := stats.NewECDF(st.DS.PDNS.ActiveDaysOf(domains))
	queries := stats.NewECDF(st.DS.PDNS.QueriesOf(domains))
	fmt.Fprintf(w, "FIGURE 8: Type-1 IDN activity — mean active %.0f days, mean queries %.0f\n",
		active.Mean(), queries.Mean())
	return nil
}

// UnregisteredTraffic returns the query volumes of registered vs
// unregistered homographic candidates of the top-k brands (Figure 6 data).
// The sweep splices each single-substitution variant into a reusable
// buffer instead of materializing the full Variants slice per brand;
// variant strings only get allocated for the ACE encoding of candidates
// not already seen. Iteration order matches Table.Variants (positions in
// order, homoglyphs in code-point order), so the output is identical to
// the materialized loop.
func (st *Study) UnregisteredTraffic(topK int) (registered, unregistered []float64) {
	regSet := make(map[string]struct{}, len(st.DS.IDNs))
	for _, d := range st.DS.IDNs {
		regSet[d] = struct{}{}
	}
	seen := make(map[string]struct{})
	keyBuf := make([]byte, 0, 64)
	for _, b := range topKBrandLabels(topK) {
		for byteOff, base := range b {
			baseLen := utf8.RuneLen(base)
			for _, h := range st.Homograph.table.Homoglyphs(base) {
				keyBuf = append(keyBuf[:0], b[:byteOff]...)
				keyBuf = utf8.AppendRune(keyBuf, h)
				keyBuf = append(keyBuf, b[byteOff+baseLen:]...)
				if _, dup := seen[string(keyBuf)]; dup {
					// A variant label repeats only with an identical ACE
					// name (punycode is injective), so skipping repeats
					// before the encode preserves the name-keyed dedup.
					continue
				}
				seen[string(keyBuf)] = struct{}{}
				ace, err := idna.ToASCIILabel(string(keyBuf))
				if err != nil {
					continue
				}
				name := ace + ".com"
				e, ok := st.DS.PDNS.Get(name)
				if !ok {
					continue
				}
				if _, isReg := regSet[name]; isReg {
					registered = append(registered, float64(e.Queries))
				} else {
					unregistered = append(unregistered, float64(e.Queries))
				}
			}
		}
	}
	return registered, unregistered
}

// ExampleHomograph is a generated presentation row (Tables VIII and XII).
type ExampleHomograph struct {
	Unicode string
	ACE     string
	SSIM    float64
}

// ExamplesFor generates up to n homographic variants of a brand label with
// their ACE forms, highest SSIM first.
func (d *HomographDetector) ExamplesFor(brandLabel string, n int) []ExampleHomograph {
	var out []ExampleHomograph
	for _, v := range d.table.Variants(brandLabel) {
		ace, err := idna.ToASCIILabel(v)
		if err != nil {
			continue
		}
		out = append(out, ExampleHomograph{Unicode: v, ACE: ace, SSIM: d.Score(v, brandLabel)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SSIM != out[j].SSIM {
			return out[i].SSIM > out[j].SSIM
		}
		return out[i].Unicode < out[j].Unicode
	})
	if n >= 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// Ladder builds the Table XII presentation: a descending SSIM ladder of
// variants from identical to clearly-different, one example per band.
func (d *HomographDetector) Ladder(brandLabel string) []ExampleHomograph {
	examples := d.ExamplesFor(brandLabel, -1)
	// Add multi-substitution rungs to reach the lower bands, as the
	// paper's table does.
	multi := d.multiSubstitutions(brandLabel, 2)
	examples = append(examples, multi...)
	sort.Slice(examples, func(i, j int) bool { return examples[i].SSIM > examples[j].SSIM })
	var out []ExampleHomograph
	lastBand := 2.0
	for _, ex := range examples {
		band := float64(int(ex.SSIM*100)) / 100
		if band < lastBand {
			out = append(out, ex)
			lastBand = band
		}
		if len(out) >= 12 {
			break
		}
	}
	return out
}

// multiSubstitutions generates a few two-character substitutions for the
// lower rungs of the ladder.
func (d *HomographDetector) multiSubstitutions(label string, maxOut int) []ExampleHomograph {
	runes := []rune(label)
	var out []ExampleHomograph
	for i := 0; i < len(runes) && len(out) < maxOut*4; i++ {
		hi := d.table.Homoglyphs(runes[i])
		if len(hi) == 0 {
			continue
		}
		for j := i + 1; j < len(runes) && len(out) < maxOut*4; j++ {
			hj := d.table.Homoglyphs(runes[j])
			if len(hj) == 0 {
				continue
			}
			cand := make([]rune, len(runes))
			copy(cand, runes)
			cand[i] = hi[len(hi)/2]
			cand[j] = hj[len(hj)/2]
			v := string(cand)
			ace, err := idna.ToASCIILabel(v)
			if err != nil {
				continue
			}
			out = append(out, ExampleHomograph{Unicode: v, ACE: ace, SSIM: d.Score(v, label)})
		}
	}
	return out
}

func topKBrandLabels(k int) []string {
	labels := make([]string, 0, k)
	seen := make(map[string]struct{}, k)
	for _, b := range brands.TopK(k) {
		l := b.Label()
		if _, dup := seen[l]; dup {
			continue
		}
		seen[l] = struct{}{}
		labels = append(labels, l)
	}
	return labels
}

// Art renders a domain comparison as ASCII art for documentation.
func Art(domain string) string {
	re := glyph.NewRenderer()
	return strings.Join(re.Art(domain), "\n")
}

// Scale returns the dataset's configured down-scaling divisor.
func (ds *Dataset) Scale() int { return ds.Registry.Cfg.Scale }

// NewDefaultDataset generates and assembles a dataset with the given seed
// and scale — the one-call entry point used by the CLI and benchmarks.
func NewDefaultDataset(seed uint64, scale int) (*Dataset, error) {
	return Assemble(zonegen.Generate(zonegen.Config{Seed: seed, Scale: scale}))
}

// ReportFigure7b renders the multi-substitution extension of the
// availability study. The paper notes its 42,671 single-substitution
// candidates are "just the lower-bound, as only one letter was replaced";
// this section quantifies the growth: the exact two-substitution space per
// brand, with the homographic survivor rate estimated on a bounded sample.
func (st *Study) ReportFigure7b(w io.Writer) error {
	// Clone: the sampled-survivor scoring below mutates detector scratch.
	det := st.Homograph.Clone()
	tab := det.table
	tw := newTab(w)
	fmt.Fprintln(tw, "FIGURE 7b (extension): candidate space growth with substitutions")
	fmt.Fprintln(tw, "Brand\t1-sub space\t2-sub space\tgrowth\t2-sub homographic (sampled)")
	const sampleCap = 150
	for _, b := range brands.TopK(10) {
		label := b.Label()
		one := tab.VariantCountMulti(label, 1)
		two := tab.VariantCountMulti(label, 2)
		if one == 0 {
			continue
		}
		sample := tab.VariantsMulti(label, 2, sampleCap)
		hits := 0
		for _, v := range sample {
			if det.Score(v, label) >= det.threshold {
				hits++
			}
		}
		rate := 0.0
		if len(sample) > 0 {
			rate = float64(hits) / float64(len(sample))
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.0fx\t%s\n",
			b.Domain, one, two, float64(two)/float64(one), stats.Percent(rate))
	}
	return tw.Flush()
}

// statModel trains the statistical classifier on the registry's labeled
// ground truth, once per Study. Training is deterministic for a fixed
// registry seed, so the section built on it is byte-stable across
// renders and across the sequential/parallel schedulers.
func (st *Study) statModel() (*feat.Model, []feat.Example, error) {
	st.statMu.Lock()
	defer st.statMu.Unlock()
	if st.statM == nil && st.statErr == nil {
		exs := feat.FromLabeled(st.DS.Registry.Labels())
		m, _, err := feat.Train(exs, feat.TrainConfig{Seed: st.DS.Registry.Cfg.Seed})
		st.statM, st.statExs, st.statErr = m, exs, err
	}
	return st.statM, st.statExs, st.statErr
}

// ReportTaxonomy renders the abuse-taxonomy extension: for each labeled
// abuse population, the share caught by each detector family — the
// glyph-level homograph detector (SSIM), the exact-residue semantic
// detector, and the statistical classifier — and their ensemble union.
// The structural detectors are read from the memoized corpus scans, so
// the section matches the example sections exactly; the classifier is
// trained in-report on the same universe it is evaluated against (the
// section characterizes coverage overlap, not held-out generalization —
// that is `idnstat eval`'s job). The closing line is the statistical
// prefilter's pass rate over the benign populations: the fraction of
// clean traffic that would still reach the expensive SSIM path.
func (st *Study) ReportTaxonomy(w io.Writer) error {
	m, exs, err := st.statModel()
	if err != nil {
		return err
	}
	glyph := make(map[string]struct{})
	for _, mt := range st.homographMatches() {
		glyph[mt.Domain] = struct{}{}
	}
	semantic := make(map[string]struct{})
	for _, mt := range st.semanticMatches() {
		semantic[mt.Domain] = struct{}{}
	}
	type row struct{ total, glyph, semantic, stat, any int }
	rows := make(map[string]*row)
	var negTotal, negPass int
	for _, e := range exs {
		raw := m.ScoreLabel(e.Label, e.ACELabel, e.TLD)
		if !e.Positive {
			negTotal++
			if m.PrefilterPass(raw) {
				negPass++
			}
			continue
		}
		r := rows[e.Population]
		if r == nil {
			r = &row{}
			rows[e.Population] = r
		}
		r.total++
		full := e.ACELabel + "." + e.TLD
		_, g := glyph[full]
		_, s := semantic[full]
		flag := m.Flag(raw)
		if g {
			r.glyph++
		}
		if s {
			r.semantic++
		}
		if flag {
			r.stat++
		}
		if g || s || flag {
			r.any++
		}
	}
	tw := newTab(w)
	fmt.Fprintf(tw, "TAXONOMY (extension): detector families per abuse population (model seed %d, %d bigrams)\n",
		m.Seed(), m.BigramCount())
	fmt.Fprintln(tw, "Population\tn\tGlyph (SSIM)\tSemantic\tStatistical\tEnsemble")
	for _, pop := range []string{"homograph", "semantic", "semantic2", "protective"} {
		r := rows[pop]
		if r == nil || r.total == 0 {
			continue
		}
		n := float64(r.total)
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\n", pop, r.total,
			stats.Percent(float64(r.glyph)/n), stats.Percent(float64(r.semantic)/n),
			stats.Percent(float64(r.stat)/n), stats.Percent(float64(r.any)/n))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if negTotal > 0 {
		fmt.Fprintf(w, "Statistical prefilter passes %s of benign labels (%d of %d) to the SSIM path\n",
			stats.Percent(float64(negPass)/float64(negTotal)), negPass, negTotal)
	}
	return nil
}

// ReportTable11b renders the policy-effectiveness extension: each display
// policy's block rate over a generated attack corpus and its collateral
// damage on legitimate IDNs — quantifying §VIII's conclusion that
// character-set-diversity policies are not enough.
func (st *Study) ReportTable11b(w io.Writer) error {
	labels := topKBrandLabels(20)
	results := browser.EvaluateAllPolicies(labels)
	tw := newTab(w)
	fmt.Fprintln(tw, "TABLE XI-b (extension): display-policy effectiveness")
	fmt.Fprintln(tw, "Policy\tAttacks blocked\tLegitimate IDNs degraded")
	for _, e := range results {
		fmt.Fprintf(tw, "%s\t%s (%d/%d)\t%s (%d/%d)\n",
			e.Policy, stats.Percent(e.BlockRate()), e.Blocked, e.AttackCorpus,
			stats.Percent(e.CollateralRate()), e.Collateral, e.LegitCorpus)
	}
	return tw.Flush()
}
