package core

import (
	"fmt"
	"io"
	"runtime"
	"testing"
)

// studyBenchWorkerCounts is {1, 4, GOMAXPROCS} with duplicates removed:
// workers=1 is the sequential reference, workers=4 shows scheduler
// overhead when oversubscribed, and GOMAXPROCS is the headline number the
// BENCH_report.json acceptance gate reads.
func studyBenchWorkerCounts() []int {
	counts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		counts = append(counts, p)
	}
	return counts
}

// BenchmarkStudyRun times the full offline study — every table and figure
// of the paper — over the reference corpus (seed 7, scale 1/2000, the
// golden-test universe). A fresh Dataset and Study are assembled outside
// the timer for every iteration, so cross-run memoization (the corpus
// index, the cached scans) cannot leak between iterations: each timed run
// pays the full cost of a cold report, exactly what `idnreport` pays.
func BenchmarkStudyRun(b *testing.B) {
	for _, workers := range studyBenchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ds, err := NewDefaultDataset(7, 2000)
				if err != nil {
					b.Fatal(err)
				}
				st := NewStudy(ds)
				st.ScanWorkers = workers
				b.StartTimer()
				if err := st.Run(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
