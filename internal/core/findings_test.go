package core

import (
	"math"
	"strings"
	"testing"
)

func TestComputeFindingsShape(t *testing.T) {
	st := NewStudy(testDS)
	f := st.ComputeFindings()

	checks := []struct {
		name      string
		got, want float64
		tolerance float64
	}{
		{"east-asian share", f.EastAsianShare, 0.77, 0.08},
		{"pre-2008 share", f.Pre2008Share, 0.0616, 0.03},
		{"top-10 registrar share", f.Top10RegShare, 0.55, 0.10},
		{"IDN short-lived", f.IDNShortLived, 0.60, 0.15},
		{"non-IDN short-lived", f.NonIDNShortLived, 0.40, 0.15},
		{"IDN low traffic", f.IDNLowTraffic, 0.88, 0.10},
		{"non-IDN low traffic", f.NonIDNLowTraffic, 0.74, 0.10},
		{"meaningful rate", f.MeaningfulRate, 0.198, 0.08},
		{"not-resolved rate", f.NotResolvedRate, 0.456, 0.10},
		{"cert problem rate", f.CertProblemRate, 0.9795, 0.05},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > c.tolerance {
			t.Errorf("%s = %.4f, want %.4f ± %.2f", c.name, c.got, c.want, c.tolerance)
		}
	}
	// Directional relations, which must hold regardless of tolerance.
	if f.IDNShortLived <= f.NonIDNShortLived {
		t.Error("finding 5 direction violated")
	}
	if f.IDNLowTraffic <= f.NonIDNLowTraffic {
		t.Error("finding 6 direction violated")
	}
	if f.Registrars < 150 {
		t.Errorf("registrars = %d", f.Registrars)
	}
	if f.OpportunisticCount == 0 {
		t.Error("no opportunistic registrations found")
	}
	if f.TopSegmentShare <= 0 || f.TopSegmentShare > 1 {
		t.Errorf("segment share = %v", f.TopSegmentShare)
	}
}

func TestReportFindingsRenders(t *testing.T) {
	st := NewStudy(testDS)
	var sb strings.Builder
	if err := st.ReportFindings(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for i := 1; i <= 9; i++ {
		if !strings.Contains(out, string(rune('0'+i))+". ") {
			t.Errorf("finding %d missing:\n%s", i, out)
		}
	}
}
