package core

import (
	"testing"
)

// TestNormalizeForms pins the shared normalization: both spellings of a
// name land on the same ACE key, label and ASCII flag.
func TestNormalizeForms(t *testing.T) {
	cases := []struct {
		in, ace, label string
		ascii          bool
	}{
		{"xn--pple-43d.com", "xn--pple-43d.com", "аpple", false},
		{"аpple.com", "xn--pple-43d.com", "аpple", false},
		{"EXAMPLE.com", "example.com", "example", true},
		{"www.example.com", "www.example.com", "example", true},
	}
	for _, c := range cases {
		n, err := Normalize(c.in)
		if err != nil {
			t.Fatalf("Normalize(%q): %v", c.in, err)
		}
		if n.ACE != c.ace || n.Label != c.label || n.ASCII != c.ascii {
			t.Errorf("Normalize(%q) = %+v, want ace=%q label=%q ascii=%v",
				c.in, n, c.ace, c.label, c.ascii)
		}
	}
	for _, bad := range []string{"", "..", "bad..com", "exa mple.com"} {
		if _, err := Normalize(bad); err == nil {
			t.Errorf("Normalize(%q) succeeded, want error", bad)
		}
	}
}

// TestDetectNormalizedEquivalence pins that the normalize-once entry
// points produce byte-identical results to the DetectOne path across the
// whole test corpus — the serving layer and the batch scanners must
// never disagree on a verdict.
func TestDetectNormalizedEquivalence(t *testing.T) {
	homo := NewHomographDetector(1000)
	homo2 := homo.Clone()
	sem := NewSemanticDetector(1000)
	domains := append([]string{}, testDS.IDNs[:min(len(testDS.IDNs), 400)]...)
	domains = append(domains, "xn--pple-43d.com", "apple邮箱.com", "example.com")
	for _, d := range domains {
		n, err := Normalize(d)
		if err != nil {
			continue
		}
		m1, ok1 := homo.DetectOne(d)
		m2, ok2 := homo2.DetectNormalized(n)
		if ok1 != ok2 || m1 != m2 {
			t.Fatalf("homograph divergence on %q: (%v,%v) vs (%v,%v)", d, m1, ok1, m2, ok2)
		}
		s1, ok1 := sem.DetectOne(d)
		s2, ok2 := sem.DetectNormalized(n)
		if ok1 != ok2 || s1 != s2 {
			t.Fatalf("semantic divergence on %q: (%v,%v) vs (%v,%v)", d, s1, ok1, s2, ok2)
		}
	}
}

// TestClassifierVerdict covers the combined single-label entry point the
// serving layer hosts.
func TestClassifierVerdict(t *testing.T) {
	c := NewClassifier(DetectorConfig{TopK: 1000})
	v, err := c.VerdictFor("xn--pple-43d.com")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Flagged() || v.Homograph == nil || v.Homograph.Brand != "apple.com" || !v.IDN {
		t.Fatalf("homograph verdict: %+v", v)
	}
	v, err = c.VerdictFor("apple邮箱.com")
	if err != nil {
		t.Fatal(err)
	}
	if v.Semantic == nil || v.Semantic.Brand != "apple.com" || v.Semantic.Keyword != "邮箱" {
		t.Fatalf("semantic verdict: %+v", v)
	}
	v, err = c.VerdictFor("example.com")
	if err != nil {
		t.Fatal(err)
	}
	if v.Flagged() || v.IDN || v.Domain != "example.com" {
		t.Fatalf("clean verdict: %+v", v)
	}
	if _, err := c.VerdictFor("bad..domain"); err == nil {
		t.Fatal("invalid domain accepted")
	}
}

// TestClassifierCloneConcurrent hammers clones of one classifier from
// many goroutines (run under -race): clones share immutable state only.
func TestClassifierCloneConcurrent(t *testing.T) {
	proto := NewClassifier(DetectorConfig{TopK: 1000})
	want, err := proto.VerdictFor("xn--pple-43d.com")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			c := proto.Clone()
			for i := 0; i < 20; i++ {
				got, err := c.VerdictFor("xn--pple-43d.com")
				if err != nil {
					done <- err
					return
				}
				if got.Domain != want.Domain || got.Homograph == nil ||
					got.Homograph.SSIM != want.Homograph.SSIM {
					done <- errMismatch
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "clone verdict mismatch" }
