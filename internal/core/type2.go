package core

import (
	"fmt"
	"io"
	"sort"

	"idnlab/internal/brands"
	"idnlab/internal/idna"
)

// Type-2 semantic attack detection — the extension the paper scopes out
// ("Confirming whether domains are Type-2 abuse is challenging, as mapping
// a potential Type-2 abuse to its targeted brand is not always feasible",
// §V) but illustrates in Table X: IDNs created by *translating* English
// brand names into other languages, e.g. 格力空调.net for Gree Air
// Conditioner or 奔驰汽车.com for Mercedes-Benz.
//
// The mapping problem is solved here the only way it can be: with a
// curated translation dictionary. The detector is therefore exact over its
// dictionary and silent outside it, which is the honest operating point
// for this attack class.

// Type2Match is one detected translated-brand IDN.
type Type2Match struct {
	// Domain is the IDN in ACE form.
	Domain string
	// Unicode is the display form.
	Unicode string
	// Brand is the impersonated brand domain.
	Brand string
	// Translation is the dictionary entry that matched.
	Translation string
}

// String renders a Type-2 match.
func (m Type2Match) String() string {
	return m.Unicode + " (" + m.Domain + ") translates " + m.Brand
}

// Type2Detector finds translated-brand IDNs over a translation dictionary.
type Type2Detector struct {
	byTranslation map[string]type2Entry
}

type type2Entry struct {
	brand       string
	translation string
}

// NewType2Detector builds a detector from a dictionary; pass nil to use
// BrandTranslations.
func NewType2Detector(dict map[string][]string) *Type2Detector {
	if dict == nil {
		dict = brands.Translations
	}
	d := &Type2Detector{byTranslation: make(map[string]type2Entry)}
	for brand, names := range dict {
		for _, name := range names {
			d.byTranslation[name] = type2Entry{brand: brand, translation: name}
		}
	}
	return d
}

// DetectOne checks a single domain for Type-2 abuse: the decoded label
// must exactly equal a dictionary translation.
func (d *Type2Detector) DetectOne(domain string) (Type2Match, bool) {
	uni, err := idna.ToUnicode(domain)
	if err != nil {
		return Type2Match{}, false
	}
	label := idna.SLDLabel(uni)
	entry, ok := d.byTranslation[label]
	if !ok {
		return Type2Match{}, false
	}
	ace, err := idna.ToASCII(uni)
	if err != nil {
		return Type2Match{}, false
	}
	return Type2Match{
		Domain:      ace,
		Unicode:     uni,
		Brand:       entry.brand,
		Translation: entry.translation,
	}, true
}

// Detect scans a corpus for Type-2 matches, sorted by brand then domain.
func (d *Type2Detector) Detect(domains []string) []Type2Match {
	var out []Type2Match
	for _, domain := range domains {
		if m, ok := d.DetectOne(domain); ok {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Brand != out[j].Brand {
			return out[i].Brand < out[j].Brand
		}
		return out[i].Domain < out[j].Domain
	})
	return out
}

// DictionarySize returns the number of translation entries.
func (d *Type2Detector) DictionarySize() int { return len(d.byTranslation) }

// ReportTable10 renders the Type-2 reproduction of the paper's Table X.
func (st *Study) ReportTable10(w io.Writer) error {
	det := NewType2Detector(nil)
	matches := det.Detect(st.DS.IDNs)
	tw := newTab(w)
	fmt.Fprintf(tw, "TABLE X: Type-2 semantic abuse (translated brand names), %d detected\n", len(matches))
	fmt.Fprintln(tw, "Punycode\tUnicode\tBrand")
	for i, m := range matches {
		if i >= 10 {
			break
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\n", m.Domain, m.Unicode, m.Brand)
	}
	return tw.Flush()
}
