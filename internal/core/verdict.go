package core

import (
	"idnlab/internal/idna"
)

// Single-domain verdict entry points shared by the batch scanners
// (cmd/idnscan, cmd/idndetect) and the online serving layer
// (internal/serve). The batch path normalizes inside each detector's
// DetectOne; the serving path normalizes exactly once at the request
// boundary and hands the same NormalizedDomain to the cache key, the
// homograph detector and the semantic detector — the per-detector
// ToUnicode/ToASCII round-trips were the request path's dominant
// allocation before this split.

// NormalizedDomain is a domain normalized once: folded, validated, and
// converted to both its ACE wire form and Unicode display form, with the
// second-level label (the detection unit) extracted. Construct with
// Normalize; the zero value means "invalid".
type NormalizedDomain struct {
	// ACE is the ASCII-compatible-encoding wire form — the canonical
	// cache key (two spellings of the same name, Unicode and Punycode,
	// normalize to the same ACE form).
	ACE string
	// Unicode is the display form.
	Unicode string
	// Label is the second-level label of the Unicode form, the unit both
	// detectors inspect.
	Label string
	// ASCII reports that Label contains no non-ASCII runes; such labels
	// can be neither homographs nor Type-1 semantic IDNs.
	ASCII bool
}

// Normalize folds, validates and converts a domain (given in either
// Unicode or Punycode form) exactly once, producing the shared form every
// downstream consumer — cache, detectors, responses — reuses. It is the
// only place the serving request path pays the IDNA round-trip.
func Normalize(domain string) (NormalizedDomain, error) {
	uni, err := idna.ToUnicode(domain)
	if err != nil {
		return NormalizedDomain{}, err
	}
	ace, err := idna.ToASCII(uni)
	if err != nil {
		return NormalizedDomain{}, err
	}
	label := idna.SLDLabel(uni)
	return NormalizedDomain{
		ACE:     ace,
		Unicode: uni,
		Label:   label,
		ASCII:   isASCII(label),
	}, nil
}

// Verdict is the combined result of running every online detector over
// one domain — the unit the serving layer caches and returns.
type Verdict struct {
	// Domain is the normalized ACE form.
	Domain string `json:"domain"`
	// Unicode is the display form.
	Unicode string `json:"unicode"`
	// IDN reports whether the domain carries at least one
	// internationalized label.
	IDN bool `json:"idn"`
	// Homograph is the homograph detection result, nil when clean.
	Homograph *HomographMatch `json:"homograph,omitempty"`
	// Semantic is the Type-1 semantic detection result, nil when clean.
	Semantic *SemanticMatch `json:"semantic,omitempty"`
}

// Flagged reports whether any detector matched.
func (v Verdict) Flagged() bool { return v.Homograph != nil || v.Semantic != nil }

// Classifier bundles the homograph and semantic detectors behind a
// single-domain Verdict entry point. Like HomographDetector it is safe
// for sequential reuse but not concurrent use; concurrent servers give
// each worker a Clone, which shares all immutable state.
type Classifier struct {
	homo *HomographDetector
	sem  *SemanticDetector
}

// NewClassifier builds the paired detectors over the top-k brand list.
func NewClassifier(cfg DetectorConfig) *Classifier {
	return &Classifier{
		homo: NewHomographDetector(cfg.TopK, cfg.detectorOptions()...),
		sem:  NewSemanticDetector(cfg.TopK),
	}
}

// Clone returns a classifier sharing all immutable detector state (brand
// index, confusable table, prerendered brand rasters, the semantic brand
// map — read-only after construction) while owning private homograph
// scratch buffers. Clones are safe to use concurrently with each other
// and the original.
func (c *Classifier) Clone() *Classifier {
	return &Classifier{homo: c.homo.Clone(), sem: c.sem}
}

// Verdict classifies one pre-normalized domain with both detectors.
func (c *Classifier) Verdict(n NormalizedDomain) Verdict {
	v := Verdict{Domain: n.ACE, Unicode: n.Unicode, IDN: idna.IsIDN(n.ACE)}
	if m, ok := c.homo.DetectNormalized(n); ok {
		v.Homograph = &m
	}
	if m, ok := c.sem.DetectNormalized(n); ok {
		v.Semantic = &m
	}
	return v
}

// VerdictFor normalizes and classifies in one call — the sequential
// convenience used by tests and examples.
func (c *Classifier) VerdictFor(domain string) (Verdict, error) {
	n, err := Normalize(domain)
	if err != nil {
		return Verdict{}, err
	}
	return c.Verdict(n), nil
}
