package core

import (
	"idnlab/internal/feat"
	"idnlab/internal/idna"
)

// Single-domain verdict entry points shared by the batch scanners
// (cmd/idnscan, cmd/idndetect) and the online serving layer
// (internal/serve). The batch path normalizes inside each detector's
// DetectOne; the serving path normalizes exactly once at the request
// boundary and hands the same NormalizedDomain to the cache key, the
// homograph detector and the semantic detector — the per-detector
// ToUnicode/ToASCII round-trips were the request path's dominant
// allocation before this split.

// NormalizedDomain is a domain normalized once: folded, validated, and
// converted to both its ACE wire form and Unicode display form, with the
// second-level label (the detection unit) extracted. Construct with
// Normalize; the zero value means "invalid".
type NormalizedDomain struct {
	// ACE is the ASCII-compatible-encoding wire form — the canonical
	// cache key (two spellings of the same name, Unicode and Punycode,
	// normalize to the same ACE form).
	ACE string
	// Unicode is the display form.
	Unicode string
	// Label is the second-level label of the Unicode form, the unit both
	// detectors inspect.
	Label string
	// ASCII reports that Label contains no non-ASCII runes; such labels
	// can be neither homographs nor Type-1 semantic IDNs.
	ASCII bool
}

// Normalize folds, validates and converts a domain (given in either
// Unicode or Punycode form) exactly once, producing the shared form every
// downstream consumer — cache, detectors, responses — reuses. It is the
// only place the serving request path pays the IDNA round-trip.
func Normalize(domain string) (NormalizedDomain, error) {
	uni, err := idna.ToUnicode(domain)
	if err != nil {
		return NormalizedDomain{}, err
	}
	ace, err := idna.ToASCII(uni)
	if err != nil {
		return NormalizedDomain{}, err
	}
	label := idna.SLDLabel(uni)
	return NormalizedDomain{
		ACE:     ace,
		Unicode: uni,
		Label:   label,
		ASCII:   isASCII(label),
	}, nil
}

// Verdict is the combined result of running every online detector over
// one domain — the unit the serving layer caches and returns. With a
// statistical model attached the verdict is a three-detector ensemble:
// the glyph-level homograph detector, the exact-residue semantic
// detector, and the statistical classifier, each with its own match
// field, plus per-detector confidence and an overall suspicion level.
// Without a model every ensemble field stays at its zero value and the
// JSON encoding is byte-identical to the two-detector wire format, so
// pre-ensemble clients and golden tests are unaffected.
type Verdict struct {
	// Domain is the normalized ACE form.
	Domain string `json:"domain"`
	// Unicode is the display form.
	Unicode string `json:"unicode"`
	// IDN reports whether the domain carries at least one
	// internationalized label.
	IDN bool `json:"idn"`
	// Homograph is the homograph detection result, nil when clean.
	Homograph *HomographMatch `json:"homograph,omitempty"`
	// Semantic is the Type-1 semantic detection result, nil when clean.
	Semantic *SemanticMatch `json:"semantic,omitempty"`
	// Statistical is the statistical classifier's match, nil when clean
	// or when no model is attached.
	Statistical *StatMatch `json:"statistical,omitempty"`
	// Confidence carries per-detector confidence; nil without a model.
	Confidence *EnsembleConfidence `json:"confidence,omitempty"`
	// Suspicion is the ensemble's overall level: "high" (a structural
	// detector matched), "medium" (statistical flag only), "low"
	// (passed the prefilter unflagged — the SSIM path looked and found
	// nothing), or "" / "none" semantics: empty without a model,
	// "none" when the model shed the label as clean.
	Suspicion string `json:"suspicion,omitempty"`
}

// Suspicion levels.
const (
	SuspicionNone   = "none"
	SuspicionLow    = "low"
	SuspicionMedium = "medium"
	SuspicionHigh   = "high"
)

// StatMatch is the statistical classifier's detection result.
type StatMatch struct {
	// Domain is the IDN in ACE form; Unicode the display form.
	Domain  string `json:"domain"`
	Unicode string `json:"unicode"`
	// Score is the logistic probability of the label being malicious.
	Score float64 `json:"score"`
	// Top lists the highest-impact features behind the score.
	Top []feat.Contribution `json:"top,omitempty"`
}

// EnsembleConfidence is each detector's confidence in its own verdict:
// the homograph detector's SSIM (0 when clean), the semantic detector's
// exact-match indicator, and the statistical model's probability.
type EnsembleConfidence struct {
	Homograph   float64 `json:"homograph"`
	Semantic    float64 `json:"semantic"`
	Statistical float64 `json:"statistical"`
}

// Flagged reports whether any detector matched.
func (v Verdict) Flagged() bool {
	return v.Homograph != nil || v.Semantic != nil || v.Statistical != nil
}

// Classifier bundles the homograph and semantic detectors behind a
// single-domain Verdict entry point. Like HomographDetector it is safe
// for sequential reuse but not concurrent use; concurrent servers give
// each worker a Clone, which shares all immutable state.
type Classifier struct {
	homo *HomographDetector
	sem  *SemanticDetector
}

// NewClassifier builds the paired detectors over the top-k brand list.
// When cfg carries a statistical model the classifier becomes the
// three-detector ensemble: the model scores every non-ASCII label once,
// the score gates the SSIM path (learned prefilter) and contributes the
// third verdict with per-detector confidence and a suspicion level.
func NewClassifier(cfg DetectorConfig) *Classifier {
	return &Classifier{
		homo: NewHomographDetector(cfg.TopK, cfg.detectorOptions()...),
		sem:  NewSemanticDetector(cfg.TopK),
	}
}

// DetectorStats snapshots the detector family's shared counters
// (bounded-rescore early exits, prefilter pass/shed), aggregated
// across this classifier and all its Clones.
func (c *Classifier) DetectorStats() DetectorStats { return c.homo.Stats() }

// Clone returns a classifier sharing all immutable detector state (brand
// index, confusable table, prerendered brand rasters, the semantic brand
// map — read-only after construction) while owning private homograph
// scratch buffers. Clones are safe to use concurrently with each other
// and the original.
func (c *Classifier) Clone() *Classifier {
	return &Classifier{homo: c.homo.Clone(), sem: c.sem}
}

// Verdict classifies one pre-normalized domain with every detector.
// With a statistical model attached the label is scored exactly once:
// the raw margin feeds the prefilter gate, the statistical match and
// the confidence block. Without a model the ensemble fields stay zero
// and the verdict is bit-identical to the two-detector baseline.
func (c *Classifier) Verdict(n NormalizedDomain) Verdict {
	v := Verdict{Domain: n.ACE, Unicode: n.Unicode, IDN: idna.IsIDN(n.ACE)}
	stat := c.homo.stat
	if stat == nil || n.ASCII {
		// No model (baseline path), or an ASCII label the statistical
		// and homograph detectors both fast-exit on.
		if m, ok := c.homo.DetectNormalized(n); ok {
			v.Homograph = &m
		}
		if m, ok := c.sem.DetectNormalized(n); ok {
			v.Semantic = &m
		}
		if stat != nil {
			v.Confidence = &EnsembleConfidence{Semantic: semConfidence(v.Semantic)}
			v.Suspicion = suspicionLevel(&v, false)
		}
		return v
	}
	aceLabel, tld := idna.SLDLabel(n.ACE), idna.TLD(n.ACE)
	raw := stat.ScoreLabel(n.Label, aceLabel, tld)
	passed := c.homo.AdmitStat(raw)
	if passed {
		if m, ok := c.homo.detectFull(n); ok {
			v.Homograph = &m
		}
	}
	if m, ok := c.sem.DetectNormalized(n); ok {
		v.Semantic = &m
	}
	prob := stat.Prob(raw)
	if stat.Flag(raw) {
		v.Statistical = &StatMatch{
			Domain:  n.ACE,
			Unicode: n.Unicode,
			Score:   prob,
			Top:     stat.TopContributions(n.Label, aceLabel, tld, 0, false, 3),
		}
	}
	conf := &EnsembleConfidence{Statistical: prob, Semantic: semConfidence(v.Semantic)}
	if v.Homograph != nil {
		conf.Homograph = v.Homograph.SSIM
	}
	v.Confidence = conf
	v.Suspicion = suspicionLevel(&v, passed)
	return v
}

func semConfidence(m *SemanticMatch) float64 {
	if m != nil {
		return 1
	}
	return 0
}

// suspicionLevel derives the ensemble's overall level: a structural
// match (glyph or semantic) is high regardless of the statistical
// score; a statistical flag alone is medium; a label that passed the
// prefilter but matched nothing is low (the expensive path looked);
// everything else — shed as clean, or ASCII — is none.
func suspicionLevel(v *Verdict, passedPrefilter bool) string {
	switch {
	case v.Homograph != nil || v.Semantic != nil:
		return SuspicionHigh
	case v.Statistical != nil:
		return SuspicionMedium
	case passedPrefilter:
		return SuspicionLow
	}
	return SuspicionNone
}

// VerdictFor normalizes and classifies in one call — the sequential
// convenience used by tests and examples.
func (c *Classifier) VerdictFor(domain string) (Verdict, error) {
	n, err := Normalize(domain)
	if err != nil {
		return Verdict{}, err
	}
	return c.Verdict(n), nil
}
