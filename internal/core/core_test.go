package core

import (
	"math"
	"strings"
	"testing"

	"idnlab/internal/idna"
	"idnlab/internal/langid"
	"idnlab/internal/stats"
	"idnlab/internal/webprobe"
	"idnlab/internal/zonegen"
)

// The shared test dataset: one scale-100 universe assembled once.
var testDS = mustAssemble()

func mustAssemble() *Dataset {
	reg := zonegen.Generate(zonegen.Config{Seed: 2018, Scale: 100})
	ds, err := Assemble(reg)
	if err != nil {
		panic(err)
	}
	return ds
}

func TestTableIShape(t *testing.T) {
	if len(testDS.PerTLD) != 4 {
		t.Fatalf("PerTLD rows = %d", len(testDS.PerTLD))
	}
	rows := make(map[string]TLDRow, 4)
	for _, r := range testDS.PerTLD {
		rows[r.TLD] = r
	}
	com := rows["com"]
	if com.IDNs < 9000 || com.IDNs > 12000 {
		t.Errorf("com IDNs = %d, want ≈10071", com.IDNs)
	}
	// com dominates: more than two thirds of all IDNs under com.
	if float64(com.IDNs) < 0.6*float64(len(testDS.IDNs)) {
		t.Errorf("com share too low: %d of %d", com.IDNs, len(testDS.IDNs))
	}
	// WHOIS coverage ≈ 50% overall, and very poor for iTLDs.
	itld := rows["itld"]
	if itld.IDNs == 0 {
		t.Fatal("no iTLD IDNs")
	}
	itldCov := float64(itld.WHOIS) / float64(itld.IDNs)
	if itldCov > 0.05 {
		t.Errorf("iTLD WHOIS coverage = %.3f, want ≈0.011", itldCov)
	}
	comCov := float64(com.WHOIS) / float64(com.IDNs)
	if math.Abs(comCov-0.586) > 0.08 {
		t.Errorf("com WHOIS coverage = %.3f, want ≈0.586", comCov)
	}
	// Blacklisted ≈ 0.42% of IDNs overall.
	blTotal := 0
	for _, r := range testDS.PerTLD {
		blTotal += r.Blacklisted
	}
	rate := float64(blTotal) / float64(len(testDS.IDNs))
	if rate < 0.002 || rate > 0.009 {
		t.Errorf("blacklist rate = %.4f, want ≈0.0042", rate)
	}
}

func TestZoneScanDiscoversAllIDNs(t *testing.T) {
	// Every IDN the registry registered must be discovered via the zone
	// scan (they all carry NS records).
	want := testDS.Registry.IDNs()
	if len(testDS.IDNs) != len(want) {
		t.Fatalf("scan found %d IDNs, registry has %d", len(testDS.IDNs), len(want))
	}
	for i := range want {
		if testDS.IDNs[i] != want[i] {
			t.Fatalf("IDN %d: %q vs %q", i, testDS.IDNs[i], want[i])
		}
	}
}

func TestTableIILanguagesRecovered(t *testing.T) {
	// The classifier must recover the Table II shape from label content
	// alone: Chinese first at ≈52%, east-Asian ≥70%.
	rows := testDS.LanguageBreakdown(langid.New())
	if len(rows) == 0 {
		t.Fatal("no language rows")
	}
	if rows[0].Language != langid.Chinese {
		t.Errorf("top language = %v, want Chinese", rows[0].Language)
	}
	if math.Abs(rows[0].Rate-0.52) > 0.10 {
		t.Errorf("Chinese rate = %.3f, want ≈0.52", rows[0].Rate)
	}
	eastAsian := 0.0
	for _, r := range rows {
		if r.Language.EastAsian() {
			eastAsian += r.Rate
		}
	}
	if eastAsian < 0.70 {
		t.Errorf("east-Asian rate = %.3f, want >0.75 area", eastAsian)
	}
	// Malicious mix: Chinese also tops blacklisted (56%).
	var chBlack float64
	for _, r := range rows {
		if r.Language == langid.Chinese {
			chBlack = r.BlackRate
		}
	}
	if chBlack < 0.40 {
		t.Errorf("Chinese blacklisted rate = %.3f, want ≈0.56", chBlack)
	}
}

func TestFigure1Timeline(t *testing.T) {
	all, malicious := testDS.CreationTimeline()
	if all.Total() == 0 || malicious.Total() == 0 {
		t.Fatal("empty timelines")
	}
	// Growth: 2016 volume far above 2005.
	if all[2016] <= all[2005] {
		t.Errorf("2016 (%d) should exceed 2005 (%d)", all[2016], all[2005])
	}
	// Spike at 2000 relative to 2001-2003.
	if all[2000] <= all[2001] {
		t.Errorf("2000 spike missing: %d vs %d", all[2000], all[2001])
	}
	// Malicious spikes at 2015 and 2017 vs 2016.
	if malicious[2015] <= malicious[2014] {
		t.Errorf("2015 malicious spike missing: %d vs %d", malicious[2015], malicious[2014])
	}
	if malicious[2017] <= malicious[2016] {
		t.Errorf("2017 malicious spike missing: %d vs %d", malicious[2017], malicious[2016])
	}
}

func TestTableIIIRegistrants(t *testing.T) {
	top := testDS.TopRegistrants(5)
	if len(top) != 5 {
		t.Fatalf("top registrants = %d", len(top))
	}
	// The bulk registrants of Table III must dominate the ranking.
	known := map[string]bool{
		"776053229@qq.com": true, "daidesheng88@gmail.com": true,
		"tetetw@gmail.com": true, "840629127@qq.com": true,
		"776053229@163.com": true,
	}
	hits := 0
	for _, gc := range top {
		if known[gc.Key] {
			hits++
		}
	}
	if hits < 3 {
		t.Errorf("only %d of top-5 registrants are Table III bulk registrants: %+v", hits, top)
	}
}

func TestTableIVRegistrars(t *testing.T) {
	top, covered := testDS.TopRegistrars(10)
	if len(top) != 10 || covered == 0 {
		t.Fatalf("top = %d covered = %d", len(top), covered)
	}
	if top[0].Key != "GMO Internet Inc." {
		t.Errorf("top registrar = %q, want GMO", top[0].Key)
	}
	share := float64(top[0].Count) / float64(covered)
	if math.Abs(share-0.23) > 0.06 {
		t.Errorf("GMO share = %.3f, want ≈0.23", share)
	}
	// Top-10 hold ≈55%.
	sum := 0
	for _, gc := range top {
		sum += gc.Count
	}
	top10 := float64(sum) / float64(covered)
	if top10 < 0.45 || top10 > 0.70 {
		t.Errorf("top-10 share = %.3f, want ≈0.55", top10)
	}
	if got := testDS.RegistrarCount(); got < 150 {
		t.Errorf("registrar count = %d, want a long tail", got)
	}
}

func TestFigures2And3DNSSeparation(t *testing.T) {
	idnActive := stats.NewECDF(testDS.ActiveTimeSeries(PopulationIDN, "com"))
	nonActive := stats.NewECDF(testDS.ActiveTimeSeries(PopulationNonIDN, "com"))
	malActive := stats.NewECDF(testDS.ActiveTimeSeries(PopulationMalicious, ""))
	// Finding 5 quantiles: ≈60% of com IDNs active <100 days vs ≈40% of
	// non-IDNs.
	idnShort := idnActive.At(100)
	nonShort := nonActive.At(100)
	if idnShort <= nonShort {
		t.Errorf("IDNs should be shorter-lived: P(<100d) IDN %.2f vs non-IDN %.2f", idnShort, nonShort)
	}
	if math.Abs(idnShort-0.60) > 0.15 {
		t.Errorf("IDN P(active<100d) = %.2f, want ≈0.60", idnShort)
	}
	// Malicious IDNs live longer than benign IDNs.
	if malActive.At(100) >= idnActive.At(100) {
		t.Errorf("malicious should be longer-lived")
	}
	// Finding 6: 88% of com IDNs under 100 queries vs 74% non-IDN.
	idnQ := stats.NewECDF(testDS.QueryVolumeSeries(PopulationIDN, "com"))
	nonQ := stats.NewECDF(testDS.QueryVolumeSeries(PopulationNonIDN, "com"))
	malQ := stats.NewECDF(testDS.QueryVolumeSeries(PopulationMalicious, ""))
	if idnQ.At(100) <= nonQ.At(100) {
		t.Error("IDNs should be queried less than non-IDNs")
	}
	if math.Abs(idnQ.At(100)-0.88) > 0.12 {
		t.Errorf("IDN P(q<100) = %.2f, want ≈0.88", idnQ.At(100))
	}
	if malQ.Mean() <= idnQ.Mean() {
		t.Error("malicious mean queries should exceed benign IDN mean")
	}
}

func TestFigure4IPConcentration(t *testing.T) {
	conc := testDS.IPConcentrationStats()
	if len(conc.Segments) == 0 || conc.TotalIPs == 0 {
		t.Fatal("no IP data")
	}
	// Concentration: top 2.3% of segments (1,000/43,535 at paper scale)
	// hold ≈80% of IDNs. At scale 100 that is the top ≈10 segments of
	// ≈435 — allow a broad band, direction matters.
	k := len(conc.Segments) * 23 / 1000
	if k < 1 {
		k = 1
	}
	if share := conc.Cumulative[minInt(k, len(conc.Cumulative))-1]; share < 0.08 {
		t.Errorf("top-%d segment share = %.3f; expected meaningful concentration", k, share)
	}
	// Cumulative curve is monotone and ends at 1.
	last := conc.Cumulative[len(conc.Cumulative)-1]
	if math.Abs(last-1) > 1e-9 {
		t.Errorf("cumulative share ends at %v", last)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestTableVUsage(t *testing.T) {
	idn := testDS.UsageSample(PopulationIDN, 500, 1)
	non := testDS.UsageSample(PopulationNonIDN, 500, 1)
	if idn.Total() != 500 || non.Total() != 500 {
		t.Fatalf("sample sizes: %d, %d", idn.Total(), non.Total())
	}
	// Finding 8 directions: IDNs not-resolved ≈45% vs ≈15%; meaningful
	// ≈20% vs ≈34%.
	if idn.Rate(webprobe.NotResolved) <= non.Rate(webprobe.NotResolved) {
		t.Error("IDNs should fail resolution more often")
	}
	if math.Abs(idn.Rate(webprobe.NotResolved)-0.456) > 0.10 {
		t.Errorf("IDN not-resolved = %.3f, want ≈0.456", idn.Rate(webprobe.NotResolved))
	}
	if idn.Rate(webprobe.Meaningful) >= non.Rate(webprobe.Meaningful) {
		t.Error("non-IDNs should have more meaningful content")
	}
	if math.Abs(non.Rate(webprobe.Meaningful)-0.336) > 0.10 {
		t.Errorf("non-IDN meaningful = %.3f, want ≈0.336", non.Rate(webprobe.Meaningful))
	}
}

func TestTableVICertificates(t *testing.T) {
	idn := testDS.CertCensus(PopulationIDN)
	non := testDS.CertCensus(PopulationNonIDN)
	if idn.Total == 0 || non.Total == 0 {
		t.Fatal("no certificates classified")
	}
	// >97% of IDN certificates have problems.
	if idn.ProblemRate() < 0.90 {
		t.Errorf("IDN cert problem rate = %.3f, want >0.97 area", idn.ProblemRate())
	}
	// Shared/invalid-CN dominates for IDNs (≈67%).
	sharedRate := float64(idn.InvalidCommonName) / float64(idn.Total)
	if math.Abs(sharedRate-0.67) > 0.15 {
		t.Errorf("IDN invalid-CN rate = %.3f, want ≈0.67", sharedRate)
	}
	// Expired is relatively higher among non-IDNs (24.9% vs 12.5%).
	idnExp := float64(idn.Expired) / float64(idn.Total)
	nonExp := float64(non.Expired) / float64(non.Total)
	if idnExp >= nonExp {
		t.Errorf("expired rates: IDN %.3f should be below non-IDN %.3f", idnExp, nonExp)
	}
}

func TestTableVIISharedCNs(t *testing.T) {
	top := testDS.SharedCertificates(10)
	if len(top) == 0 {
		t.Fatal("no shared certificates")
	}
	if top[0].CommonName != "sedoparking.com" {
		t.Errorf("top shared CN = %q, want sedoparking.com", top[0].CommonName)
	}
}

func TestHomographDetectorOnCorpus(t *testing.T) {
	det := NewHomographDetector(1000)
	matches := det.Detect(testDS.IDNs)
	scaled := 1516 / 100
	if len(matches) < scaled/2 || len(matches) > scaled*3 {
		t.Errorf("homograph matches = %d, want ≈%d", len(matches), scaled)
	}
	ranking := RankBrands(matches, func(m HomographMatch) string { return m.Brand })
	if len(ranking) == 0 {
		t.Fatal("no ranking")
	}
	// google.com should be at or near the top.
	googleRank := -1
	for i, r := range ranking {
		if r.Brand == "google.com" {
			googleRank = i
		}
	}
	if googleRank < 0 || googleRank > 4 {
		t.Errorf("google.com rank = %d in %+v", googleRank, ranking)
	}
	// Some matches are pixel-identical (the "91 identical" subset).
	identical := 0
	for _, m := range matches {
		if m.SSIM >= 1.0-1e-9 {
			identical++
		}
	}
	if identical == 0 {
		t.Error("no identical-rendering homographs found")
	}
}

func TestHomographDetectorRecoversGroundTruth(t *testing.T) {
	// Recall against generated attack domains: the detector sees only
	// names, yet must recover most AttackHomograph domains.
	det := NewHomographDetector(1000)
	reg := testDS.Registry
	totalAttack, recovered := 0, 0
	for i := range reg.Domains {
		d := &reg.Domains[i]
		if d.Attack != zonegen.AttackHomograph {
			continue
		}
		totalAttack++
		if _, ok := det.DetectOne(d.ACE); ok {
			recovered++
		}
	}
	if totalAttack == 0 {
		t.Fatal("no attack domains generated")
	}
	recall := float64(recovered) / float64(totalAttack)
	if recall < 0.5 {
		t.Errorf("homograph recall = %.2f (%d/%d)", recall, recovered, totalAttack)
	}
}

func TestHomographFalsePositivesOnBenign(t *testing.T) {
	// Benign CJK IDNs must not be flagged.
	det := NewHomographDetector(1000)
	fp := 0
	checked := 0
	reg := testDS.Registry
	for i := range reg.Domains {
		d := &reg.Domains[i]
		if !d.IsIDN || d.Attack != zonegen.AttackNone || !d.Lang.EastAsian() {
			continue
		}
		checked++
		if m, ok := det.DetectOne(d.ACE); ok {
			t.Logf("false positive: %v", m)
			fp++
		}
		if checked >= 2000 {
			break
		}
	}
	if fp > checked/100 {
		t.Errorf("false positives = %d of %d benign CJK IDNs", fp, checked)
	}
}

func TestSemanticDetectorOnCorpus(t *testing.T) {
	det := NewSemanticDetector(1000)
	matches := det.Detect(testDS.IDNs)
	scaled := 1497 / 100
	if len(matches) < scaled/2 || len(matches) > scaled*3 {
		t.Errorf("semantic matches = %d, want ≈%d", len(matches), scaled)
	}
	ranking := RankBrands(matches, func(m SemanticMatch) string { return m.Brand })
	rank58 := -1
	for i, r := range ranking {
		if r.Brand == "58.com" {
			rank58 = i
		}
	}
	if rank58 < 0 || rank58 > 3 {
		t.Errorf("58.com rank = %d in %+v", rank58, ranking)
	}
	for _, m := range matches {
		if m.Keyword == "" {
			t.Errorf("match %v has empty keyword", m)
		}
		if !strings.HasPrefix(m.Unicode, strings.TrimSuffix(m.Brand, ".com")[:1]) {
			// Residue equality is checked by the detector; just ensure
			// the unicode form decodes.
			continue
		}
	}
}

func TestSemanticDetectorRecall(t *testing.T) {
	det := NewSemanticDetector(1000)
	reg := testDS.Registry
	total, recovered := 0, 0
	for i := range reg.Domains {
		d := &reg.Domains[i]
		if d.Attack != zonegen.AttackSemantic {
			continue
		}
		total++
		if _, ok := det.DetectOne(d.ACE); ok {
			recovered++
		}
	}
	if total == 0 {
		t.Fatal("no semantic domains generated")
	}
	if recovered < total*9/10 {
		t.Errorf("semantic recall = %d/%d; residue matching should be near-perfect", recovered, total)
	}
}

func TestSemanticDetectorIgnoresPlainAndHomograph(t *testing.T) {
	det := NewSemanticDetector(1000)
	for _, domain := range []string{"google.com", "xn--pple-43d.com", "xn--0wwy37b.com"} {
		if m, ok := det.DetectOne(domain); ok {
			t.Errorf("false positive: %v", m)
		}
	}
}

func TestAvailabilityStudy(t *testing.T) {
	det := NewHomographDetector(1000)
	results := det.AvailabilityStudy(20, testDS.IDNs)
	if len(results) != 20 {
		t.Fatalf("results = %d", len(results))
	}
	totalCand, totalHomo, totalReg := 0, 0, 0
	for _, r := range results {
		totalCand += r.Candidates
		totalHomo += r.Homographic
		totalReg += r.Registered
		if r.Homographic > r.Candidates {
			t.Fatalf("brand %s: homographic %d > candidates %d", r.Brand, r.Homographic, r.Candidates)
		}
	}
	if totalCand == 0 || totalHomo == 0 {
		t.Fatal("availability study found nothing")
	}
	// Paper: 42,671 of 128,432 candidates homographic (≈33%); most
	// unregistered. Registered must be a tiny fraction of homographic.
	frac := float64(totalHomo) / float64(totalCand)
	if frac < 0.10 || frac > 0.75 {
		t.Errorf("homographic fraction = %.3f, want ≈0.33 band", frac)
	}
	if totalReg > totalHomo/5 {
		t.Errorf("registered = %d of %d homographic; most should be unregistered", totalReg, totalHomo)
	}
}

func TestDetectOneKnownAttacks(t *testing.T) {
	det := NewHomographDetector(1000)
	m, ok := det.DetectOne("xn--pple-43d.com") // аpple.com
	if !ok {
		t.Fatal("apple homograph not detected")
	}
	if m.Brand != "apple.com" {
		t.Errorf("brand = %s", m.Brand)
	}
	if m.SSIM < 1.0-1e-9 {
		t.Errorf("Cyrillic а swap should be pixel-identical, SSIM = %v", m.SSIM)
	}
	// ѕоѕо.com -> soso.com.
	if m, ok := det.DetectOne("ѕоѕо.com"); !ok || m.Brand != "soso.com" {
		t.Errorf("soso homograph: %v %v", m, ok)
	}
	// Benign names.
	for _, d := range []string{"example.com", "xn--0wwy37b.com", "中国"} {
		if m, ok := det.DetectOne(d); ok {
			t.Errorf("false positive on %s: %v", d, m)
		}
	}
}

func TestProbeUnknownDomain(t *testing.T) {
	resp := testDS.Probe("never-registered.example")
	if resp.Resolved {
		t.Error("unknown domain should not resolve")
	}
}

func TestCertReportRates(t *testing.T) {
	r := CertReport{Total: 100, Valid: 3, Expired: 12, InvalidAuthority: 18, InvalidCommonName: 67}
	if got := r.ProblemRate(); math.Abs(got-0.97) > 1e-9 {
		t.Errorf("ProblemRate = %v", got)
	}
	var zero CertReport
	if zero.ProblemRate() != 0 {
		t.Error("zero report should have rate 0")
	}
}

func TestIdnaToUnicodeAgreesWithRegistry(t *testing.T) {
	for _, d := range testDS.IDNs[:100] {
		if _, err := idna.ToUnicode(d); err != nil {
			t.Fatalf("corpus domain %q: %v", d, err)
		}
	}
}

func TestRegistrantBreakdown(t *testing.T) {
	det := NewHomographDetector(1000)
	matches := det.Detect(testDS.IDNs)
	domains := make([]string, len(matches))
	brandOf := make([]string, len(matches))
	for i, m := range matches {
		domains[i] = m.Domain
		brandOf[i] = m.Brand
	}
	bd := BreakdownRegistrants(testDS, domains, brandOf)
	if bd.WithWHOIS == 0 {
		t.Fatal("no WHOIS coverage among homographs")
	}
	if bd.Protective+bd.Personal+bd.Privacy != bd.WithWHOIS {
		t.Errorf("breakdown does not partition: %+v", bd)
	}
	// Paper §VI-C: protective registrations are a small minority (4.82%);
	// privacy dominates.
	if bd.Protective > bd.WithWHOIS/2 {
		t.Errorf("protective = %d of %d; should be a minority", bd.Protective, bd.WithWHOIS)
	}
}

func TestClassifyRegistrantCategories(t *testing.T) {
	// Find ground-truth domains of each flavor and verify classification.
	reg := testDS.Registry
	var protective, personal string
	for i := range reg.Domains {
		d := &reg.Domains[i]
		if d.Attack != zonegen.AttackHomograph || !d.HasWHOIS {
			continue
		}
		if d.Protective && protective == "" {
			protective = d.ACE
		}
		if !d.Protective && d.RegistrantEmail != "" && personal == "" {
			personal = d.ACE
		}
	}
	if protective != "" {
		gt, _ := reg.Lookup(protective)
		got, ok := testDS.ClassifyRegistrant(protective, gt.TargetBrand)
		if !ok || got != RegistrantProtective {
			t.Errorf("protective domain classified %v (ok=%v)", got, ok)
		}
	}
	if personal != "" {
		gt, _ := reg.Lookup(personal)
		got, ok := testDS.ClassifyRegistrant(personal, gt.TargetBrand)
		if !ok || got != RegistrantPersonal {
			t.Errorf("personal domain classified %v (ok=%v)", got, ok)
		}
	}
	if _, ok := testDS.ClassifyRegistrant("not-covered.example", "x.com"); ok {
		t.Error("uncovered domain should report ok=false")
	}
}
