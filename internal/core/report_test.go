package core

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestStudyRunProducesAllSections(t *testing.T) {
	st := NewStudy(testDS)
	var sb strings.Builder
	if err := st.Run(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	wantSections := []string{
		"TABLE I:", "TABLE II:", "FIGURE 1:", "TABLE III:", "TABLE IV:",
		"FIGURE 2:", "FIGURE 3:", "FIGURE 4:", "TABLE V:", "TABLE VI:",
		"TABLE VII:", "TABLE VIII:", "TABLE IX:", "TABLE XI:", "TABLE XII:",
		"TABLE XIII:", "FIGURE 5:", "FIGURE 6:", "FIGURE 7:", "TABLE XIV:",
		"FIGURE 8:",
	}
	for _, s := range wantSections {
		if !strings.Contains(out, s) {
			t.Errorf("report missing section %q", s)
		}
	}
	// Spot-check content anchors.
	for _, anchor := range []string{"GMO Internet Inc.", "sedoparking.com", "google.com", "58.com", "Sogou"} {
		if !strings.Contains(out, anchor) {
			t.Errorf("report missing anchor %q", anchor)
		}
	}
}

func TestLadderDescends(t *testing.T) {
	det := NewHomographDetector(1000)
	ladder := det.Ladder("google")
	if len(ladder) < 4 {
		t.Fatalf("ladder too short: %d", len(ladder))
	}
	if ladder[0].SSIM < 1.0-1e-9 {
		t.Errorf("ladder should start at identical (1.0), got %.4f", ladder[0].SSIM)
	}
	for i := 1; i < len(ladder); i++ {
		if ladder[i].SSIM >= ladder[i-1].SSIM {
			t.Errorf("ladder not descending at %d: %.4f >= %.4f", i, ladder[i].SSIM, ladder[i-1].SSIM)
		}
	}
}

func TestExamplesForFacebook(t *testing.T) {
	det := NewHomographDetector(1000)
	examples := det.ExamplesFor("facebook", 12)
	if len(examples) != 12 {
		t.Fatalf("examples = %d", len(examples))
	}
	for _, ex := range examples {
		if ex.Unicode == "facebook" {
			t.Error("example equals the brand itself")
		}
		if !strings.HasPrefix(ex.ACE, "xn--") {
			t.Errorf("example ACE %q lacks prefix", ex.ACE)
		}
	}
}

func TestUnregisteredTrafficShape(t *testing.T) {
	st := NewStudy(testDS)
	reg, unreg := st.UnregisteredTraffic(100)
	if len(unreg) == 0 {
		t.Fatal("no unregistered candidate traffic observed (Figure 6 noise missing)")
	}
	// Unregistered traffic must be tiny compared to registered
	// homographic traffic.
	var regMean, unregMean float64
	for _, v := range reg {
		regMean += v
	}
	if len(reg) > 0 {
		regMean /= float64(len(reg))
	}
	for _, v := range unreg {
		unregMean += v
	}
	unregMean /= float64(len(unreg))
	if unregMean > 10 {
		t.Errorf("unregistered mean queries = %.1f, should be stray noise", unregMean)
	}
	if len(reg) > 0 && regMean <= unregMean {
		t.Errorf("registered mean (%.1f) should exceed unregistered (%.1f)", regMean, unregMean)
	}
}

func TestNewDefaultDataset(t *testing.T) {
	ds, err := NewDefaultDataset(5, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.IDNs) == 0 || len(ds.NonIDNs) == 0 {
		t.Fatal("tiny dataset empty")
	}
	if ds.Scale() != 2000 {
		t.Errorf("Scale = %d", ds.Scale())
	}
}

func TestArt(t *testing.T) {
	art := Art("аpple.com")
	if !strings.Contains(art, "#") {
		t.Error("art has no ink")
	}
}

// BenchmarkStudyRun lives in report_bench_test.go: it assembles a fresh
// Dataset per iteration so the corpus index and cached scans cannot carry
// over between timed runs.

func BenchmarkHomographDetectCorpus(b *testing.B) {
	det := NewHomographDetector(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = det.Detect(testDS.IDNs)
	}
}

func BenchmarkSemanticDetectCorpus(b *testing.B) {
	det := NewSemanticDetector(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = det.Detect(testDS.IDNs)
	}
}

func TestWriteJSON(t *testing.T) {
	st := NewStudy(testDS)
	var sb strings.Builder
	if err := st.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var back Results
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if back.IDNs != len(testDS.IDNs) || back.Scale != 100 {
		t.Errorf("round-tripped results wrong: idns=%d scale=%d", back.IDNs, back.Scale)
	}
	if back.Homographs.Total != len(back.Homographs.Matches) {
		t.Error("homograph totals inconsistent")
	}
	if len(back.BrowserSurvey) != 27 {
		t.Errorf("browser survey rows = %d", len(back.BrowserSurvey))
	}
	if back.Findings.CertProblemRate < 0.9 {
		t.Errorf("findings lost in JSON: %+v", back.Findings)
	}
	if len(back.Languages) == 0 || back.Languages[0].Count == 0 {
		t.Error("languages lost in JSON")
	}
}
