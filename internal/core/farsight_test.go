package core

import (
	"errors"
	"testing"
	"time"

	"idnlab/internal/pdns"
)

// TestFarsightQuotaWorkflow reproduces the paper's §III constraint: the
// Farsight feed allows only a thousand look-ups per day, so the authors
// "only requested DNS logs of abusive IDNs detected by our system". This
// test runs that exact workflow: detect first, then spend the quota on
// the detected subset — and shows the quota would not survive the full
// corpus.
func TestFarsightQuotaWorkflow(t *testing.T) {
	const dailyQuota = 1000
	clock := func() time.Time { return testDS.Registry.Cfg.Snapshot }
	client := pdns.NewLimitedClient(testDS.PDNS, dailyQuota, clock)

	// The full corpus exceeds the daily quota by an order of magnitude.
	if len(testDS.IDNs) <= dailyQuota {
		t.Fatalf("corpus %d unexpectedly small", len(testDS.IDNs))
	}

	// Detect the abusive subsets first (the system's role), then query.
	homo := NewHomographDetector(1000).Detect(testDS.IDNs)
	sem := NewSemanticDetector(1000).Detect(testDS.IDNs)
	abusive := make([]string, 0, len(homo)+len(sem))
	for _, m := range homo {
		abusive = append(abusive, m.Domain)
	}
	for _, m := range sem {
		abusive = append(abusive, m.Domain)
	}
	if len(abusive) == 0 || len(abusive) > dailyQuota {
		t.Fatalf("abusive subset = %d, expected small and within quota", len(abusive))
	}
	hits := 0
	for _, d := range abusive {
		if _, ok, err := client.Lookup(d); err != nil {
			t.Fatalf("quota exhausted mid-subset: %v", err)
		} else if ok {
			hits++
		}
	}
	if hits != len(abusive) {
		t.Errorf("passive DNS covered %d/%d abusive IDNs", hits, len(abusive))
	}

	// Trying to continue over the whole corpus hits the quota wall.
	var quotaErr error
	for _, d := range testDS.IDNs {
		if _, _, err := client.Lookup(d); err != nil {
			quotaErr = err
			break
		}
	}
	if !errors.Is(quotaErr, pdns.ErrQuotaExceeded) {
		t.Errorf("expected quota exhaustion, got %v", quotaErr)
	}
}
