package core

import (
	"testing"

	"idnlab/internal/dnssim"
	"idnlab/internal/webprobe"
)

func TestDNSConsistentWithProbe(t *testing.T) {
	// Every "not resolved" crawl outcome must correspond to a REFUSED
	// answer from the authoritative server, and every successful crawl to
	// NOERROR — the paper's §IV-D observation made mechanical.
	checked := 0
	for _, d := range testDS.IDNs {
		if checked >= 500 {
			break
		}
		checked++
		rcode, err := testDS.ResolveRCode(d)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		resp := testDS.Probe(d)
		switch {
		case resp.Resolved && rcode != dnssim.RCodeNoError:
			t.Errorf("%s: resolved content but rcode %v", d, rcode)
		case !resp.Resolved && rcode != dnssim.RCodeRefused:
			t.Errorf("%s: unresolved but rcode %v (want REFUSED)", d, rcode)
		}
	}
}

func TestDNSUnregisteredNXDomain(t *testing.T) {
	rcode, err := testDS.ResolveRCode("definitely-not-registered-here.com")
	if err != nil {
		t.Fatal(err)
	}
	if rcode != dnssim.RCodeNXDomain {
		t.Errorf("rcode = %v, want NXDOMAIN", rcode)
	}
}

func TestDNSAnswersMatchPassiveDNS(t *testing.T) {
	// For resolvable domains, the authoritative answers must be the same
	// addresses the passive-DNS feed observed.
	checked := 0
	for _, d := range testDS.IDNs {
		if checked >= 200 {
			break
		}
		res, err := testDS.Resolver.LookupA(d)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Resolved() {
			continue
		}
		checked++
		entry, ok := testDS.PDNS.Get(d)
		if !ok {
			t.Fatalf("%s resolvable but absent from passive DNS", d)
		}
		inPDNS := make(map[string]bool, len(entry.IPs))
		for _, ip := range entry.IPs {
			inPDNS[ip] = true
		}
		for _, ip := range res.IPs {
			if !inPDNS[ip] {
				t.Errorf("%s: authoritative answer %s not in passive DNS %v", d, ip, entry.IPs)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no resolvable domains checked")
	}
}

func TestUsageSampleUsesDNSPath(t *testing.T) {
	// The Table V "Not resolved" row now comes from actual REFUSED
	// responses; rerunning the census must still land near the paper's
	// 45.6%.
	census := testDS.UsageSample(PopulationIDN, 500, 1)
	rate := census.Rate(webprobe.NotResolved)
	if rate < 0.30 || rate > 0.60 {
		t.Errorf("not-resolved rate = %.3f, want ≈0.456", rate)
	}
}
