package core

import (
	"reflect"
	"testing"

	"idnlab/internal/brands"
	"idnlab/internal/candidx"
)

// These tests pin the deprecated DetectParallel wrapper; the pipeline
// engine behind it gets its own property/equivalence, cancellation and
// worker-edge coverage in scan_test.go.

func TestDetectParallelMatchesSequential(t *testing.T) {
	corpus := testDS.IDNs
	cfg := DetectorConfig{TopK: 1000}
	seq := NewHomographDetector(cfg.TopK).Detect(corpus)
	for _, workers := range []int{1, 2, 4, 7} {
		par := DetectParallel(cfg, corpus, workers)
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: parallel result differs (%d vs %d matches)",
				workers, len(par), len(seq))
		}
	}
}

func TestDetectParallelEdgeCases(t *testing.T) {
	cfg := DetectorConfig{TopK: 100}
	if got := DetectParallel(cfg, nil, 4); len(got) != 0 {
		t.Errorf("empty corpus: %v", got)
	}
	one := []string{"xn--pple-43d.com"}
	got := DetectParallel(cfg, one, 8)
	if len(got) != 1 || got[0].Brand != "apple.com" {
		t.Errorf("single domain: %v", got)
	}
	// Zero workers selects GOMAXPROCS.
	if got := DetectParallel(cfg, one, 0); len(got) != 1 {
		t.Errorf("auto workers: %v", got)
	}
}

func TestDetectParallelWithOptions(t *testing.T) {
	cfg := DetectorConfig{TopK: 1000, Options: []HomographOption{WithThreshold(0.999)}}
	par := DetectParallel(cfg, testDS.IDNs, 4)
	for _, m := range par {
		if m.SSIM < 0.999 {
			t.Errorf("threshold not applied: %v", m)
		}
	}
}

// TestDetectParallelUsesIndex pins the DetectorConfig.Index routing: the
// deprecated shim must produce the same matches as a sequential indexed
// detector AND actually consult the index (an earlier wiring bug dropped
// the field on the floor, silently falling back to the sweep on every
// worker — correct output, none of the index's speedup, and no test
// noticed).
func TestDetectParallelUsesIndex(t *testing.T) {
	list := brands.TopK(1000)
	ix, err := candidx.Build(list, candidx.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	corpus := testDS.IDNs
	seq := NewHomographDetector(0, WithIndex(ix)).Detect(corpus)
	before, _ := ix.Stats()
	cfg := DetectorConfig{Index: ix}
	for _, workers := range []int{1, 4} {
		par := DetectParallel(cfg, corpus, workers)
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: indexed parallel result differs (%d vs %d matches)",
				workers, len(par), len(seq))
		}
	}
	after, _ := ix.Stats()
	if after == before {
		t.Fatalf("DetectParallel never consulted the index (lookups stuck at %d)", before)
	}
}

func BenchmarkDetectParallel(b *testing.B) {
	corpus := testDS.IDNs
	for _, workers := range []int{1, 4} {
		name := "workers-1"
		if workers == 4 {
			name = "workers-4"
		}
		b.Run(name, func(b *testing.B) {
			cfg := DetectorConfig{TopK: 1000}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = DetectParallel(cfg, corpus, workers)
			}
		})
	}
}
