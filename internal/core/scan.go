package core

import (
	"context"
	"sort"
	"sync"

	"idnlab/internal/pipeline"
)

// Pipelined corpus scans. The paper's brute-force homograph sweep took
// 102 hours on a single machine (§VI-B); these scans push the same
// detectors through internal/pipeline's streaming engine: bounded input,
// one private detector per worker (the homograph renderer's glyph cache
// is not safe for concurrent use), order-preserving fan-in, per-stage
// metrics, and clean cancellation.
//
// The output contract is identical to the sequential Detect methods:
// matches sorted by brand then domain, byte for byte. The equivalence is
// pinned by property tests in scan_test.go across randomized corpora.

// sortHomographMatches applies the canonical output ordering shared by
// Detect, DetectParallel and ScanHomograph.
func sortHomographMatches(out []HomographMatch) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Brand != out[j].Brand {
			return out[i].Brand < out[j].Brand
		}
		return out[i].Domain < out[j].Domain
	})
}

// sortSemanticMatches is the semantic detector's canonical ordering.
func sortSemanticMatches(out []SemanticMatch) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Brand != out[j].Brand {
			return out[i].Brand < out[j].Brand
		}
		return out[i].Domain < out[j].Domain
	})
}

// NewHomographEngine builds a reusable pipeline stage that fans a domain
// stream across per-worker homograph detectors. workers <= 0 selects
// GOMAXPROCS.
//
// Workers share one lazily-built prototype detector: the first worker to
// receive an item constructs it (brand index, confusable table,
// prerendered brand rasters), and every worker — including the first —
// then operates on a Clone carrying only private scratch buffers. The
// expensive immutable state is therefore built once per engine instead of
// once per worker, and the glyph atlas is shared process-wide.
func NewHomographEngine(cfg DetectorConfig, workers int) *pipeline.Engine[string, HomographMatch, *HomographDetector] {
	var (
		once  sync.Once
		proto *HomographDetector
	)
	return pipeline.New(
		pipeline.Config{Stage: "homograph", Workers: workers},
		func() *HomographDetector {
			once.Do(func() { proto = NewHomographDetector(cfg.TopK, cfg.detectorOptions()...) })
			return proto.Clone()
		},
		func(d *HomographDetector, domain string) (HomographMatch, bool, error) {
			m, ok := d.DetectOne(domain)
			return m, ok, nil
		})
}

// NewSemanticEngine builds a reusable pipeline stage for Type-1 semantic
// detection with per-worker detectors.
func NewSemanticEngine(topK, workers int) *pipeline.Engine[string, SemanticMatch, *SemanticDetector] {
	return pipeline.New(
		pipeline.Config{Stage: "semantic", Workers: workers},
		func() *SemanticDetector { return NewSemanticDetector(topK) },
		func(d *SemanticDetector, domain string) (SemanticMatch, bool, error) {
			m, ok := d.DetectOne(domain)
			return m, ok, nil
		})
}

// ScanHomograph scans the corpus for homographic IDNs through the
// streaming engine and returns the matches (sorted by brand then domain,
// identical to a sequential Detect), plus the scan's metrics. It honors
// ctx cancellation mid-corpus: on cancel it drains cleanly and returns
// ctx.Err().
func ScanHomograph(ctx context.Context, cfg DetectorConfig, domains []string, workers int) ([]HomographMatch, pipeline.Metrics, error) {
	eng := NewHomographEngine(cfg, workers)
	out, err := eng.Collect(ctx, pipeline.FromSlice(domains))
	if err != nil {
		return nil, eng.Metrics(), err
	}
	sortHomographMatches(out)
	return out, eng.Metrics(), nil
}

// ScanSemantic scans the corpus for Type-1 semantic IDNs through the
// streaming engine; same contract as ScanHomograph.
func ScanSemantic(ctx context.Context, topK int, domains []string, workers int) ([]SemanticMatch, pipeline.Metrics, error) {
	eng := NewSemanticEngine(topK, workers)
	out, err := eng.Collect(ctx, pipeline.FromSlice(domains))
	if err != nil {
		return nil, eng.Metrics(), err
	}
	sortSemanticMatches(out)
	return out, eng.Metrics(), nil
}
