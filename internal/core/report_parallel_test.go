package core

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"idnlab/internal/zonegen"
)

// freshStudyDS assembles an independent small dataset so each Study in
// the determinism tests owns its corpus index and scan caches (the
// package-level testDS would share memoized state across worker counts,
// hiding scheduling bugs).
func freshStudyDS(t testing.TB) *Dataset {
	t.Helper()
	ds, err := Assemble(zonegen.Generate(zonegen.Config{Seed: 7, Scale: 2000}))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestRunParallelByteIdentical is the determinism gate of the parallel
// report scheduler: the full report rendered with one worker must equal,
// byte for byte, the report rendered with many workers (the golden test
// separately pins workers=default to the sequential renderer's bytes).
// Run under -race this also exercises the concurrent section paths.
func TestRunParallelByteIdentical(t *testing.T) {
	render := func(workers int) string {
		st := NewStudy(freshStudyDS(t))
		st.ScanWorkers = workers
		var sb strings.Builder
		if err := st.Run(&sb); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if timings := st.SectionTimings(); len(timings) != len(st.sections()) {
			t.Fatalf("workers=%d: %d section timings, want %d", workers, len(timings), len(st.sections()))
		}
		return sb.String()
	}

	sequential := render(1)
	for _, workers := range []int{2, 4, 8} {
		if got := render(workers); got != sequential {
			gotLines := strings.Split(got, "\n")
			wantLines := strings.Split(sequential, "\n")
			for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
				if gotLines[i] != wantLines[i] {
					t.Fatalf("workers=%d diverges from workers=1 at line %d:\n got: %q\nwant: %q",
						workers, i+1, gotLines[i], wantLines[i])
				}
			}
			t.Fatalf("workers=%d: report length differs: %d vs %d bytes", workers, len(got), len(sequential))
		}
	}
}

// TestRunContextCancelled proves the scheduler honors cancellation and
// leaks no goroutines: a pre-cancelled context must surface ctx.Err()
// without rendering, a run cancelled mid-flight must return with every
// pipeline goroutine drained, and a cancelled Study must stay usable (no
// cache poisoning).
func TestRunContextCancelled(t *testing.T) {
	ds := freshStudyDS(t)
	base := runtime.NumGoroutine()

	// Pre-cancelled: no output at all.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st := NewStudy(ds)
	st.ScanWorkers = 4
	var sb strings.Builder
	if err := st.RunContext(ctx, &sb); err != context.Canceled {
		t.Fatalf("pre-cancelled RunContext error = %v, want context.Canceled", err)
	}
	if sb.Len() != 0 {
		t.Fatalf("pre-cancelled RunContext wrote %d bytes", sb.Len())
	}

	// Mid-flight: cancel shortly after the run starts; the call must
	// observe the cancellation (or finish first on a fast machine).
	st2 := NewStudy(ds)
	st2.ScanWorkers = 4
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel2()
	}()
	var sb2 strings.Builder
	err := st2.RunContext(ctx2, &sb2)
	cancel2()
	if err != nil && err != context.Canceled {
		t.Fatalf("mid-flight RunContext error = %v", err)
	}
	if err == nil {
		t.Log("run finished before cancellation; retry path not exercised")
	}

	// A cancelled run must not poison the memoized scans: the same Study
	// must be able to complete afterwards.
	var sb3 strings.Builder
	if err := st2.RunContext(context.Background(), &sb3); err != nil {
		t.Fatalf("RunContext retry after cancellation: %v", err)
	}
	if sb3.Len() == 0 {
		t.Fatal("retry rendered nothing")
	}

	// Goroutine accounting: everything the runs spawned must be gone.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > %d baseline\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestIndexMemoization pins the memoization the corpus index introduces:
// repeated calls to the aggregate accessors must return the same cached
// backing data instead of recomputing, and the index build must align
// with Dataset.IDNs.
func TestIndexMemoization(t *testing.T) {
	ix := testDS.Index()
	infos := ix.Infos()
	if len(infos) != len(testDS.IDNs) {
		t.Fatalf("index has %d infos for %d IDNs", len(infos), len(testDS.IDNs))
	}
	for i := range infos {
		if infos[i].Domain != testDS.IDNs[i] {
			t.Fatalf("info %d misaligned: %q vs %q", i, infos[i].Domain, testDS.IDNs[i])
		}
	}
	if ix.IDNWHOIS() != ix.IDNWHOIS() {
		t.Error("IDNWHOIS not memoized")
	}
	m1, m2 := ix.Malicious(), ix.Malicious()
	if len(m1) > 0 && &m1[0] != &m2[0] {
		t.Error("Malicious not memoized")
	}
	p1 := ix.Partition(PopulationIDN, "com")
	p2 := ix.Partition(PopulationIDN, "com")
	if len(p1) > 0 && &p1[0] != &p2[0] {
		t.Error("Partition not memoized")
	}
	// Partition must agree with the pre-index filter semantics.
	want := filterTLD(testDS.IDNs, "com")
	if len(p1) != len(want) {
		t.Fatalf("Partition(com) = %d domains, filterTLD = %d", len(p1), len(want))
	}
	for i := range want {
		if p1[i] != want[i] {
			t.Fatalf("Partition(com)[%d] = %q, want %q", i, p1[i], want[i])
		}
	}
	s1 := ix.Series(true, PopulationIDN, "com")
	s2 := ix.Series(true, PopulationIDN, "com")
	if len(s1) > 0 && &s1[0] != &s2[0] {
		t.Error("Series not memoized")
	}
	u1 := testDS.UsageSample(PopulationIDN, 50, 1)
	u2 := testDS.UsageSample(PopulationIDN, 50, 1)
	if u1.Total() != u2.Total() {
		t.Error("UsageSample not deterministic across memoized calls")
	}
}
