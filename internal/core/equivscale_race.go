//go:build race

package core

// Race-scaled equivalence-battery sizes: the race detector multiplies
// both memory and CPU several-fold, so the property corpus shrinks while
// keeping every generator mode and detection class covered.
const (
	equivBrandCount = 800
	equivLabelCount = 150
	raceEnabled     = true
)
