package simchar

import (
	"testing"

	"idnlab/internal/glyph"
)

// TestFamilyFoldCoversComposed pins the FamilyThreshold choice: every
// composed diacritic variant in the glyph repertoire must fold to its
// composition base — the property the candidate expansion depends on.
func TestFamilyFoldCoversComposed(t *testing.T) {
	tab := Default()
	for _, r := range glyph.Composed() {
		if r < 0x80 {
			continue
		}
		marks, ok := glyph.MarksOf(r)
		if !ok || len(marks) == 0 {
			continue
		}
		b, folded := tab.Fold(r)
		if !folded {
			t.Errorf("composed rune %q (%U) does not fold", r, r)
			continue
		}
		_ = b
	}
}

// TestIdentityClassesAreExact checks that Identical implies bit-identical
// cell bitmaps, and that ASCII LDH characters are identical to themselves.
func TestIdentityClassesAreExact(t *testing.T) {
	tab := Default()
	re := glyph.NewRenderer()
	for _, r := range glyph.Composed() {
		if r < 0x80 {
			continue
		}
		if b, ok := tab.Identical(r); ok {
			if re.CellBits(r) != re.CellBits(rune(b)) {
				t.Errorf("%q (%U) marked identical to %q but bitmaps differ", r, r, b)
			}
		}
	}
	for i := 0; i < len(Bases); i++ {
		b, ok := tab.Identical(rune(Bases[i]))
		if !ok || b != Bases[i] {
			t.Errorf("base %q not identical to itself (got %q, %v)", Bases[i], b, ok)
		}
	}
}

// TestSkeletonIdempotent checks skeleton(skeleton(x)) == skeleton(x) on a
// mixed sample, and that skeletons of pure-ASCII LDH labels are the label.
func TestSkeletonIdempotent(t *testing.T) {
	tab := Default()
	samples := []string{
		"apple", "Exámple", "аpple", "xn--pple-43d", "pаypаl-ѕecure",
		"G00GLE", "mixed-日本語-label", "",
	}
	for _, s := range samples {
		sk := tab.Skeleton(s)
		if again := tab.Skeleton(sk); again != sk {
			t.Errorf("skeleton not idempotent on %q: %q -> %q", s, sk, again)
		}
	}
	if got := tab.Skeleton("plain-label9"); got != "plain-label9" {
		t.Errorf("ASCII LDH skeleton changed: %q", got)
	}
	if got := tab.Skeleton("MiXeD"); got != "mixed" {
		t.Errorf("case fold missing: %q", got)
	}
}

// TestDeterministicDerivation pins that two independent derivations agree
// exactly — the property that makes index files reproducible.
func TestDeterministicDerivation(t *testing.T) {
	a, b := Derive(), Derive()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fingerprints differ: %x vs %x", a.Fingerprint(), b.Fingerprint())
	}
	if a.Fingerprint() == 0 {
		t.Fatal("zero fingerprint")
	}
	for i := 0; i < len(Bases); i++ {
		la, lb := a.Similar(Bases[i]), b.Similar(Bases[i])
		if len(la) != len(lb) {
			t.Fatalf("similar list length differs for %q", Bases[i])
		}
		for j := range la {
			if la[j] != lb[j] {
				t.Fatalf("similar list entry differs for %q at %d: %+v vs %+v", Bases[i], j, la[j], lb[j])
			}
		}
	}
}

// TestHomoglyphsOrdered checks the Homoglyphs cut respects the best-first
// ordering and threshold semantics.
func TestHomoglyphsOrdered(t *testing.T) {
	tab := Default()
	for i := 0; i < len(Bases); i++ {
		base := Bases[i]
		list := tab.Similar(base)
		for j := 1; j < len(list); j++ {
			if list[j].SSIM > list[j-1].SSIM {
				t.Fatalf("similar list for %q not sorted at %d", base, j)
			}
		}
		hs := tab.Homoglyphs(base, 0.9)
		for _, r := range hs {
			found := false
			for _, s := range list {
				if s.Rune == r && s.SSIM >= 0.9 {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("homoglyph %q of %q below threshold or missing", r, base)
			}
		}
	}
	// 'a' must have at least its identical Cyrillic twin and diacritic family.
	if len(tab.Homoglyphs('a', 0.99)) == 0 {
		t.Fatal("no near-identical homoglyphs for 'a'")
	}
}
