// Package simchar derives a character-confusability table directly from
// the glyph renderer and the SSIM kernel — the ShamFinder-style inversion
// of UC-SimList: instead of shipping a static homoglyph list, every code
// point in the designed repertoire is rasterized (package glyph) and
// scored against every ASCII domain character with the same structural-
// similarity measure the homograph detector uses (package ssim). The
// result is the generation source for the precomputed candidate index
// (package candidx): which substitutions are pixel-identical, which are
// perturbations of which base, and how similar each pair renders.
//
// Three derived views matter downstream:
//
//   - Identity classes: runes whose cell bitmaps are pixel-for-pixel equal
//     (Cyrillic а vs Latin a). Substituting within a class never changes a
//     rendered image, so any number of identity substitutions composes
//     freely; the skeleton fold collapses them to the ASCII base.
//   - Family fold (skeleton): each rune maps to the ASCII base it renders
//     most similarly to, when that cell-level SSIM clears FamilyThreshold.
//     Diacritic variants (á, ạ, â → a) fold; unrelated glyphs do not.
//   - Similar lists: per ASCII base, every repertoire rune with its
//     cell-level SSIM, sorted best-first — the auto-derived SimChar list.
//
// The derivation is a pure function of the glyph design; Fingerprint
// captures it so index files can refuse to load against a renderer they
// were not derived from.
package simchar

import (
	"sort"
	"sync"
	"unicode/utf8"

	"idnlab/internal/glyph"
	"idnlab/internal/ssim"
)

// FamilyThreshold is the minimum cell-level SSIM for a rune to fold to an
// ASCII base in the skeleton. High enough that unrelated letters stay
// unfolded (they score well below it at cell scale), low enough that
// every composed diacritic variant folds to its composition base — pinned
// by TestFamilyFoldCoversComposed.
const FamilyThreshold = 0.55

// Bases is the ASCII domain-character repertoire the table scores
// against: LDH letters, digits and hyphen (dots never appear in labels).
const Bases = "abcdefghijklmnopqrstuvwxyz0123456789-"

// Sim is one scored (rune, base) similarity.
type Sim struct {
	// Rune is the confusable code point.
	Rune rune
	// SSIM is the cell-level structural similarity against the base.
	SSIM float64
	// Identical reports a pixel-identical rendering (SSIM exactly 1).
	Identical bool
}

// Table is the derived confusability table. It is immutable after
// construction and safe for concurrent use.
type Table struct {
	// foldByte maps a rune to the ASCII base byte of its family, for
	// identity-class members and family members alike. Runes absent from
	// the map do not fold.
	foldByte map[rune]byte
	// identity maps a rune to its base when the rendering is
	// pixel-identical.
	identity map[rune]byte
	// bitmapBase indexes the base glyph bitmaps, so runes outside the
	// derivation repertoire (hash glyphs) can still be identity-folded at
	// lookup time if their bitmap coincides with a base.
	bitmapBase map[[glyph.CellHeight]uint8]byte
	// similar holds the per-base scored lists, best-first.
	similar map[byte][]Sim
	// re renders bitmaps for runes outside the derivation repertoire.
	re *glyph.Renderer
	// fingerprint commits to the whole derivation.
	fingerprint uint64
}

var (
	defaultOnce  sync.Once
	defaultTable *Table
)

// Default returns the process-wide table derived from the glyph
// repertoire at FamilyThreshold.
func Default() *Table {
	defaultOnce.Do(func() { defaultTable = Derive() })
	return defaultTable
}

// Derive builds the table from first principles: rasterize the designed
// repertoire, compare every non-ASCII code point against every base with
// the SSIM kernel, group pixel-identical renderings, and assign families.
func Derive() *Table {
	re := glyph.NewRenderer()
	cmp := ssim.New(ssim.DefaultWindow)

	t := &Table{
		foldByte:   make(map[rune]byte),
		identity:   make(map[rune]byte),
		bitmapBase: make(map[[glyph.CellHeight]uint8]byte),
		similar:    make(map[byte][]Sim),
		re:         re,
	}

	baseRefs := make(map[byte]*ssim.RefTable, len(Bases))
	for i := 0; i < len(Bases); i++ {
		b := Bases[i]
		img := re.RenderWidth(string(rune(b)), glyph.CellWidth)
		baseRefs[b] = ssim.Precompute(img)
		bits := re.CellBits(rune(b))
		if _, dup := t.bitmapBase[bits]; !dup {
			t.bitmapBase[bits] = b
		}
	}

	// Deterministic repertoire order: sorted composed list. ASCII bases
	// fold to themselves by definition and are not listed as similars.
	rep := glyph.Composed()
	sort.Slice(rep, func(i, j int) bool { return rep[i] < rep[j] })
	for _, r := range rep {
		if r < 0x80 {
			continue
		}
		bits := re.CellBits(r)
		bestBase, bestScore := byte(0), -2.0
		identicalBase, isIdentical := t.bitmapBase[bits]
		candImg := re.RenderWidth(string(r), glyph.CellWidth)
		for i := 0; i < len(Bases); i++ {
			b := Bases[i]
			v, err := cmp.IndexRef(baseRefs[b], candImg)
			if err != nil {
				continue
			}
			ident := isIdentical && identicalBase == b
			t.similar[b] = append(t.similar[b], Sim{Rune: r, SSIM: v, Identical: ident})
			if v > bestScore {
				bestScore, bestBase = v, b
			}
		}
		switch {
		case isIdentical:
			t.identity[r] = identicalBase
			t.foldByte[r] = identicalBase
		case bestScore >= FamilyThreshold:
			t.foldByte[r] = bestBase
		}
	}
	for b := range t.similar {
		list := t.similar[b]
		sort.Slice(list, func(i, j int) bool {
			if list[i].SSIM != list[j].SSIM {
				return list[i].SSIM > list[j].SSIM
			}
			return list[i].Rune < list[j].Rune
		})
	}
	t.fingerprint = t.computeFingerprint(re, rep)
	return t
}

// computeFingerprint hashes the full derivation: every repertoire bitmap,
// every fold decision and every identity class, in deterministic order.
func (t *Table) computeFingerprint(re *glyph.Renderer, rep []rune) uint64 {
	h := newFNV()
	for i := 0; i < len(Bases); i++ {
		h.rune(rune(Bases[i]))
		h.bits(re.CellBits(rune(Bases[i])))
	}
	for _, r := range rep {
		if r < 0x80 {
			continue
		}
		h.rune(r)
		h.bits(re.CellBits(r))
		h.byteVal(t.foldByte[r]) // 0 when unfolded
		h.byteVal(t.identity[r])
	}
	return h.sum
}

// Fingerprint commits to the derivation; index files embed it and refuse
// to load against a different glyph design.
func (t *Table) Fingerprint() uint64 { return t.fingerprint }

// Fold returns the ASCII base r belongs to under the family fold, and
// whether it folds at all. ASCII LDH characters fold to themselves;
// repertoire runes fold per the derivation; unknown runes fold only if
// their (hash-)glyph bitmap coincides pixel-for-pixel with a base glyph.
func (t *Table) Fold(r rune) (byte, bool) {
	if r < 0x80 {
		if r >= 'A' && r <= 'Z' {
			return byte(r + 'a' - 'A'), true
		}
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') || r == '-' {
			return byte(r), true
		}
		return 0, false
	}
	if b, ok := t.foldByte[r]; ok {
		return b, true
	}
	// Outside the derivation repertoire: identity-fold via the bitmap so
	// a hash glyph that happens to render exactly like a base cannot
	// evade the skeleton. (No family fold: hash glyphs have no family.)
	if b, ok := t.bitmapBase[t.re.CellBits(r)]; ok {
		return b, true
	}
	return 0, false
}

// Identical reports whether r renders pixel-identically to an ASCII base,
// and which.
func (t *Table) Identical(r rune) (byte, bool) {
	if r < 0x80 {
		b, ok := t.Fold(r)
		return b, ok
	}
	if b, ok := t.identity[r]; ok {
		return b, true
	}
	b, ok := t.bitmapBase[t.re.CellBits(r)]
	return b, ok
}

// Similar returns the scored confusables of an ASCII base, best-first.
// The returned slice is shared and must not be modified.
func (t *Table) Similar(base byte) []Sim { return t.similar[base] }

// Homoglyphs returns the confusable code points of base with cell SSIM at
// or above threshold, best-first — the auto-derived SimChar list in the
// shape the candidate generators consume.
func (t *Table) Homoglyphs(base byte, threshold float64) []rune {
	list := t.similar[base]
	out := make([]rune, 0, len(list))
	for _, s := range list {
		if s.SSIM < threshold {
			break
		}
		out = append(out, s.Rune)
	}
	return out
}

// AppendSkeleton appends the skeleton fold of label to dst and returns
// the extended slice: folding runes become their ASCII base byte,
// unfoldable runes keep their UTF-8 bytes. The fold is idempotent and
// allocation-free when dst has capacity.
func (t *Table) AppendSkeleton(dst []byte, label string) []byte {
	for _, r := range label {
		if b, ok := t.Fold(r); ok {
			dst = append(dst, b)
		} else {
			dst = utf8.AppendRune(dst, r)
		}
	}
	return dst
}

// Skeleton returns the skeleton fold of label as a string.
func (t *Table) Skeleton(label string) string {
	return string(t.AppendSkeleton(nil, label))
}

// fnv is an inline FNV-1a 64 accumulator (stdlib-only, deterministic).
type fnv struct{ sum uint64 }

func newFNV() *fnv { return &fnv{sum: 1469598103934665603} }

func (h *fnv) byteVal(b byte) {
	h.sum ^= uint64(b)
	h.sum *= 1099511628211
}

func (h *fnv) rune(r rune) {
	h.byteVal(byte(r))
	h.byteVal(byte(r >> 8))
	h.byteVal(byte(r >> 16))
	h.byteVal(byte(r >> 24))
}

func (h *fnv) bits(cell [glyph.CellHeight]uint8) {
	for _, b := range cell {
		h.byteVal(b)
	}
}

// HashBytes exposes the table's FNV-1a accumulator for consumers that
// need a deterministic stdlib-only content hash (the index file format).
func HashBytes(seed uint64, p []byte) uint64 {
	h := seed
	if h == 0 {
		h = 1469598103934665603
	}
	for _, b := range p {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}
