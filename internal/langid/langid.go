// Package langid identifies the most likely language of a domain label.
//
// The paper (§IV-A) used LangID, "a multinomial Bayes learner trained by
// five language-labeled datasets", to assign one of the Table II languages
// to each of 1.4M IDNs. This package reproduces the approach with the same
// model family: a structural stage resolves script-decisive languages
// (Han → Chinese, kana → Japanese, Hangul → Korean, Thai, Cyrillic →
// Russian, Arabic script → Arabic/Persian), and a multinomial naive-Bayes
// classifier over character bigrams, trained on embedded seed corpora,
// separates the Latin-script languages (German, Turkish, Swedish, Spanish,
// French, Finnish, Hungarian, Danish, English).
//
// Classify is the corpus-wide hot loop of the offline study (one call per
// IDN in the Table II breakdown), so the Bayes stage runs on a dense
// representation built once at training time: every bigram observed in
// any corpus is interned to a dense feature ID, and the per-language
// log-probabilities are flattened into one contiguous row per ID. A
// steady-state Classify walks the label once, does one map probe per
// bigram and adds one cached row of floats — no tokenization slices, no
// per-call maps, zero allocations. The map-based model (logProb /
// logUnseen) is retained as the reference implementation; the equivalence
// is pinned by a property test.
package langid

import (
	"math"
	"sort"
	"strings"
	"sync"
	"unicode"

	"idnlab/internal/uniscript"
)

// bigram is a pair of adjacent runes, the naive-Bayes feature unit.
type bigram [2]rune

// Classifier assigns languages to labels. It is immutable after New and
// safe for concurrent use.
type Classifier struct {
	// Reference model (retained for the equivalence property test and as
	// the readable specification of the scoring rule):
	// logProb[lang][bigram] is log P(bigram | lang) with Laplace smoothing.
	logProb map[Language]map[bigram]float64
	// logUnseen[lang] is the smoothed log-probability of an unseen bigram.
	logUnseen map[Language]float64
	// latinLangs is the candidate set for the Bayes stage, in Language
	// declaration order (the tie-break order of Classify).
	latinLangs []Language

	// Dense fast path, derived from the reference model at New() time:
	// bigramID interns every bigram observed in any training corpus.
	bigramID map[bigram]int32
	// dense holds one contiguous row of len(latinLangs) log-probs per
	// interned bigram: dense[id*len(latinLangs)+i] is the score
	// contribution of feature id for latinLangs[i] (the language's
	// smoothed probability if it saw the bigram in training, its unseen
	// floor otherwise).
	dense []float64
	// unseen is the row added for bigrams outside the intern table.
	unseen []float64
	// hintLangIdx maps characteristic diacritics to dense language
	// indices (diacriticHints resolved against latinLangs).
	hintLangIdx map[rune][]int32
}

// hintBoost is the additive log-probability bonus per characteristic
// diacritic occurrence.
const hintBoost = 4.0

// New trains a Classifier from the embedded corpora.
func New() *Classifier {
	c := &Classifier{
		logProb:   make(map[Language]map[bigram]float64, len(latinCorpora)),
		logUnseen: make(map[Language]float64, len(latinCorpora)),
	}
	for lang, words := range latinCorpora {
		counts := make(map[bigram]int)
		total := 0
		for _, w := range words {
			for _, bg := range bigrams(w) {
				counts[bg]++
				total++
			}
		}
		vocab := len(counts) + 1
		probs := make(map[bigram]float64, len(counts))
		den := math.Log(float64(total + vocab))
		for bg, n := range counts {
			probs[bg] = math.Log(float64(n+1)) - den
		}
		c.logProb[lang] = probs
		c.logUnseen[lang] = math.Log(1) - den
		c.latinLangs = append(c.latinLangs, lang)
	}
	// Declaration order = the tie-break order of the reference scorer,
	// which iterated All() and skipped languages without corpora.
	sort.Slice(c.latinLangs, func(i, j int) bool { return c.latinLangs[i] < c.latinLangs[j] })
	c.buildDense()
	return c
}

// buildDense flattens the trained map model into the interned-feature
// representation the hot path scores against.
func (c *Classifier) buildDense() {
	n := len(c.latinLangs)
	c.bigramID = make(map[bigram]int32)
	for _, lang := range c.latinLangs {
		for bg := range c.logProb[lang] {
			if _, ok := c.bigramID[bg]; !ok {
				c.bigramID[bg] = int32(len(c.bigramID))
			}
		}
	}
	c.dense = make([]float64, len(c.bigramID)*n)
	c.unseen = make([]float64, n)
	for i, lang := range c.latinLangs {
		c.unseen[i] = c.logUnseen[lang]
	}
	for bg, id := range c.bigramID {
		row := c.dense[int(id)*n : int(id+1)*n]
		for i, lang := range c.latinLangs {
			if p, seen := c.logProb[lang][bg]; seen {
				row[i] = p
			} else {
				row[i] = c.logUnseen[lang]
			}
		}
	}
	c.hintLangIdx = make(map[rune][]int32, len(diacriticHints))
	for r, langs := range diacriticHints {
		var idx []int32
		for _, hinted := range langs {
			for i, lang := range c.latinLangs {
				if lang == hinted {
					idx = append(idx, int32(i))
				}
			}
		}
		if len(idx) > 0 {
			c.hintLangIdx[r] = idx
		}
	}
}

// Default returns the process-wide shared Classifier, trained once. The
// classifier is immutable and safe for concurrent use, so corpus scans,
// the serving layer and the study all share one trained model instead of
// re-training per construction.
func Default() *Classifier {
	defaultOnce.Do(func() { defaultClassifier = New() })
	return defaultClassifier
}

var (
	defaultOnce       sync.Once
	defaultClassifier *Classifier
)

// bigrams extracts the character bigrams of a word, with boundary markers
// so that characteristic prefixes/suffixes count as features.
func bigrams(w string) []bigram {
	runes := []rune("^" + strings.ToLower(w) + "$")
	if len(runes) < 2 {
		return nil
	}
	out := make([]bigram, 0, len(runes)-1)
	for i := 0; i+1 < len(runes); i++ {
		out = append(out, bigram{runes[i], runes[i+1]})
	}
	return out
}

// Classify returns the most likely language of a Unicode label (one domain
// label, already decoded from Punycode). Deterministic: equal inputs give
// equal outputs, and ties break by declaration order of Language. A
// steady-state call allocates nothing.
func (c *Classifier) Classify(label string) Language {
	if lang, decided := classifyByScript(label); decided {
		return lang
	}
	return c.classifyLatin(label)
}

// classifyByScript resolves languages that are determined by their script.
func classifyByScript(label string) (Language, bool) {
	var counts [numLanguages]int
	hasLatin := false
	hasHan := false
	hasKana := false
	totalConcrete := 0
	for _, r := range label {
		switch uniscript.Of(r) {
		case uniscript.Han:
			hasHan = true
			totalConcrete++
		case uniscript.Hiragana, uniscript.Katakana:
			hasKana = true
			totalConcrete++
		case uniscript.Hangul:
			counts[Korean]++
			totalConcrete++
		case uniscript.Thai:
			counts[Thai]++
			totalConcrete++
		case uniscript.Cyrillic:
			counts[Russian]++
			totalConcrete++
		case uniscript.Greek:
			counts[Greek]++
			totalConcrete++
		case uniscript.Hebrew:
			counts[Hebrew]++
			totalConcrete++
		case uniscript.Arabic:
			if persianOnly[r] {
				counts[Persian] += 3
			} else {
				counts[Arabic]++
			}
			totalConcrete++
		case uniscript.Latin:
			hasLatin = true
			totalConcrete++
		}
	}
	// Kana anywhere means Japanese, even mixed with Han (kanji).
	if hasKana {
		return Japanese, true
	}
	if hasHan {
		return Chinese, true
	}
	best, bestCount := Other, 0
	for lang, n := range counts {
		if n > bestCount {
			best, bestCount = Language(lang), n
		}
	}
	if bestCount == 0 {
		if hasLatin || totalConcrete == 0 {
			return Other, false // fall through to the Bayes stage
		}
		return Other, true
	}
	if best == Arabic && counts[Persian] > 0 {
		return Persian, true
	}
	return best, true
}

// classifyLatin is the dense-representation Bayes stage: one pass over
// the label, interned-feature lookups, no allocations. It computes
// exactly the score classifyLatinRef computes — same tokenization (maximal
// runs of Latin-script runes over the per-rune-lowered label, with ^/$
// boundary markers), same smoothing, same hint boosts, same tie-break.
func (c *Classifier) classifyLatin(label string) Language {
	n := len(c.latinLangs)
	var scores [numLanguages]float64
	sawToken := false
	inTok := false
	var prev rune
	for _, r0 := range label {
		r := unicode.ToLower(r0)
		if uniscript.Of(r) == uniscript.Latin {
			if !inTok {
				inTok = true
				sawToken = true
				prev = '^'
			}
			c.addBigram(&scores, prev, r)
			prev = r
		} else if inTok {
			c.addBigram(&scores, prev, '$')
			inTok = false
		}
		// Hint boosts accumulate over every rune of the lowered label,
		// inside or outside tokens, exactly as the reference does.
		for _, li := range c.hintLangIdx[r] {
			scores[li] += hintBoost
		}
	}
	if inTok {
		c.addBigram(&scores, prev, '$')
	}
	if !sawToken {
		return Other
	}
	best := Other
	bestScore := math.Inf(-1)
	for i := 0; i < n; i++ {
		if scores[i] > bestScore {
			best, bestScore = c.latinLangs[i], scores[i]
		}
	}
	return best
}

// addBigram adds one feature's per-language log-probability row to the
// running scores.
func (c *Classifier) addBigram(scores *[numLanguages]float64, a, b rune) {
	n := len(c.unseen)
	if id, ok := c.bigramID[bigram{a, b}]; ok {
		row := c.dense[int(id)*n : int(id)*n+n]
		for i := 0; i < n; i++ {
			scores[i] += row[i]
		}
		return
	}
	for i := 0; i < n; i++ {
		scores[i] += c.unseen[i]
	}
}

// classifyLatinRef is the retained map-based reference scorer: tokenize on
// non-Latin runes, score every token's bigrams against each language's
// probability map, add diacritic hint boosts, pick the best score with
// ties broken in Language declaration order. The dense fast path is pinned
// to this implementation by TestClassifyDenseMatchesReference.
func (c *Classifier) classifyLatinRef(label string) Language {
	label = strings.ToLower(label)
	// Tokenize on non-letters so "shop-münchen24" scores its words.
	tokens := strings.FieldsFunc(label, func(r rune) bool {
		return uniscript.Of(r) != uniscript.Latin
	})
	if len(tokens) == 0 {
		return Other
	}
	best := Other
	bestScore := math.Inf(-1)
	for _, lang := range All() {
		probs, ok := c.logProb[lang]
		if !ok {
			continue
		}
		score := 0.0
		for _, tok := range tokens {
			for _, bg := range bigrams(tok) {
				if p, seen := probs[bg]; seen {
					score += p
				} else {
					score += c.logUnseen[lang]
				}
			}
		}
		for _, r := range label {
			for _, hinted := range diacriticHints[r] {
				if hinted == lang {
					score += hintBoost
				}
			}
		}
		if score > bestScore {
			best, bestScore = lang, score
		}
	}
	return best
}

// ClassifyDomain classifies the second-level label of a Unicode-form
// domain ("bücher" for "bücher.de"). Like Classify, it allocates nothing.
func (c *Classifier) ClassifyDomain(domain string) Language {
	domain = strings.TrimSuffix(domain, ".")
	last := strings.LastIndexByte(domain, '.')
	if last < 0 {
		return c.Classify(domain)
	}
	prev := strings.LastIndexByte(domain[:last], '.')
	return c.Classify(domain[prev+1 : last])
}
