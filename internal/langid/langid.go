// Package langid identifies the most likely language of a domain label.
//
// The paper (§IV-A) used LangID, "a multinomial Bayes learner trained by
// five language-labeled datasets", to assign one of the Table II languages
// to each of 1.4M IDNs. This package reproduces the approach with the same
// model family: a structural stage resolves script-decisive languages
// (Han → Chinese, kana → Japanese, Hangul → Korean, Thai, Cyrillic →
// Russian, Arabic script → Arabic/Persian), and a multinomial naive-Bayes
// classifier over character bigrams, trained on embedded seed corpora,
// separates the Latin-script languages (German, Turkish, Swedish, Spanish,
// French, Finnish, Hungarian, Danish, English).
package langid

import (
	"math"
	"strings"

	"idnlab/internal/uniscript"
)

// bigram is a pair of adjacent runes, the naive-Bayes feature unit.
type bigram [2]rune

// Classifier assigns languages to labels. It is immutable after New and
// safe for concurrent use.
type Classifier struct {
	// logProb[lang][bigram] is log P(bigram | lang) with Laplace smoothing.
	logProb map[Language]map[bigram]float64
	// logUnseen[lang] is the smoothed log-probability of an unseen bigram.
	logUnseen map[Language]float64
	// latinLangs is the candidate set for the Bayes stage.
	latinLangs []Language
}

// hintBoost is the additive log-probability bonus per characteristic
// diacritic occurrence.
const hintBoost = 4.0

// New trains a Classifier from the embedded corpora.
func New() *Classifier {
	c := &Classifier{
		logProb:   make(map[Language]map[bigram]float64, len(latinCorpora)),
		logUnseen: make(map[Language]float64, len(latinCorpora)),
	}
	for lang, words := range latinCorpora {
		counts := make(map[bigram]int)
		total := 0
		for _, w := range words {
			for _, bg := range bigrams(w) {
				counts[bg]++
				total++
			}
		}
		vocab := len(counts) + 1
		probs := make(map[bigram]float64, len(counts))
		den := math.Log(float64(total + vocab))
		for bg, n := range counts {
			probs[bg] = math.Log(float64(n+1)) - den
		}
		c.logProb[lang] = probs
		c.logUnseen[lang] = math.Log(1) - den
		c.latinLangs = append(c.latinLangs, lang)
	}
	return c
}

// bigrams extracts the character bigrams of a word, with boundary markers
// so that characteristic prefixes/suffixes count as features.
func bigrams(w string) []bigram {
	runes := []rune("^" + strings.ToLower(w) + "$")
	if len(runes) < 2 {
		return nil
	}
	out := make([]bigram, 0, len(runes)-1)
	for i := 0; i+1 < len(runes); i++ {
		out = append(out, bigram{runes[i], runes[i+1]})
	}
	return out
}

// Classify returns the most likely language of a Unicode label (one domain
// label, already decoded from Punycode). Deterministic: equal inputs give
// equal outputs, and ties break by declaration order of Language.
func (c *Classifier) Classify(label string) Language {
	if lang, decided := classifyByScript(label); decided {
		return lang
	}
	return c.classifyLatin(label)
}

// classifyByScript resolves languages that are determined by their script.
func classifyByScript(label string) (Language, bool) {
	var counts [numLanguages]int
	hasLatin := false
	hasHan := false
	hasKana := false
	totalConcrete := 0
	for _, r := range label {
		switch uniscript.Of(r) {
		case uniscript.Han:
			hasHan = true
			totalConcrete++
		case uniscript.Hiragana, uniscript.Katakana:
			hasKana = true
			totalConcrete++
		case uniscript.Hangul:
			counts[Korean]++
			totalConcrete++
		case uniscript.Thai:
			counts[Thai]++
			totalConcrete++
		case uniscript.Cyrillic:
			counts[Russian]++
			totalConcrete++
		case uniscript.Greek:
			counts[Greek]++
			totalConcrete++
		case uniscript.Hebrew:
			counts[Hebrew]++
			totalConcrete++
		case uniscript.Arabic:
			if persianOnly[r] {
				counts[Persian] += 3
			} else {
				counts[Arabic]++
			}
			totalConcrete++
		case uniscript.Latin:
			hasLatin = true
			totalConcrete++
		}
	}
	// Kana anywhere means Japanese, even mixed with Han (kanji).
	if hasKana {
		return Japanese, true
	}
	if hasHan {
		return Chinese, true
	}
	best, bestCount := Other, 0
	for lang, n := range counts {
		if n > bestCount {
			best, bestCount = Language(lang), n
		}
	}
	if bestCount == 0 {
		if hasLatin || totalConcrete == 0 {
			return Other, false // fall through to the Bayes stage
		}
		return Other, true
	}
	if best == Arabic && counts[Persian] > 0 {
		return Persian, true
	}
	return best, true
}

// classifyLatin runs the naive-Bayes stage over a Latin-script label.
func (c *Classifier) classifyLatin(label string) Language {
	label = strings.ToLower(label)
	// Tokenize on non-letters so "shop-münchen24" scores its words.
	tokens := strings.FieldsFunc(label, func(r rune) bool {
		return uniscript.Of(r) != uniscript.Latin
	})
	if len(tokens) == 0 {
		return Other
	}
	best := Other
	bestScore := math.Inf(-1)
	for _, lang := range All() {
		probs, ok := c.logProb[lang]
		if !ok {
			continue
		}
		score := 0.0
		for _, tok := range tokens {
			for _, bg := range bigrams(tok) {
				if p, seen := probs[bg]; seen {
					score += p
				} else {
					score += c.logUnseen[lang]
				}
			}
		}
		for _, r := range label {
			for _, hinted := range diacriticHints[r] {
				if hinted == lang {
					score += hintBoost
				}
			}
		}
		if score > bestScore {
			best, bestScore = lang, score
		}
	}
	return best
}

// ClassifyDomain classifies the second-level label of a Unicode-form
// domain ("bücher" for "bücher.de").
func (c *Classifier) ClassifyDomain(domain string) Language {
	domain = strings.TrimSuffix(domain, ".")
	labels := strings.Split(domain, ".")
	if len(labels) >= 2 {
		return c.Classify(labels[len(labels)-2])
	}
	return c.Classify(labels[0])
}
