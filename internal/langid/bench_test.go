package langid

import "testing"

// classifyBenchCases cover the three hot shapes of the corpus-wide
// language breakdown: plain-ASCII labels (the Bayes stage over English
// bigrams), Latin labels with diacritics (Bayes stage plus hint boosts),
// and script-decisive non-Latin labels (the structural stage).
var classifyBenchCases = []struct {
	name  string
	label string
}{
	{"ascii", "example-shop24"},
	{"latin-diacritics", "bücher-münchen"},
	{"nonlatin", "北京大学"},
	{"cyrillic", "почта-россии"},
}

// BenchmarkLangIDClassify times one Classify call per label shape. The
// acceptance gate for the corpus-index PR is 0 allocs/op on every case.
func BenchmarkLangIDClassify(b *testing.B) {
	c := New()
	for _, tc := range classifyBenchCases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = c.Classify(tc.label)
			}
		})
	}
}

// BenchmarkLangIDClassifyDomain times the domain entry point (SLD-label
// extraction plus Classify).
func BenchmarkLangIDClassifyDomain(b *testing.B) {
	c := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.ClassifyDomain("bücher-münchen.de")
	}
}
