package langid

// Language identifies one of the languages the paper's Table II reports.
type Language int

// Languages recognized by the classifier: the paper's top-15 plus English
// (the default for plain Latin labels) and Other.
const (
	Other Language = iota
	English
	Chinese
	Japanese
	Korean
	German
	Turkish
	Thai
	Swedish
	Spanish
	French
	Finnish
	Russian
	Hungarian
	Arabic
	Danish
	Persian
	Vietnamese
	Greek
	Hebrew
)

// numLanguages is the count of Language values, for array sizing.
const numLanguages = int(Hebrew) + 1

var languageNames = [numLanguages]string{
	Other:      "Other",
	English:    "English",
	Chinese:    "Chinese",
	Japanese:   "Japanese",
	Korean:     "Korean",
	German:     "German",
	Turkish:    "Turkish",
	Thai:       "Thai",
	Swedish:    "Swedish",
	Spanish:    "Spanish",
	French:     "French",
	Finnish:    "Finnish",
	Russian:    "Russian",
	Hungarian:  "Hungarian",
	Arabic:     "Arabic",
	Danish:     "Danish",
	Persian:    "Persian",
	Vietnamese: "Vietnamese",
	Greek:      "Greek",
	Hebrew:     "Hebrew",
}

// String returns the English name of the language.
func (l Language) String() string {
	if l >= 0 && int(l) < numLanguages {
		return languageNames[l]
	}
	return "Other"
}

// EastAsian reports whether the language is one the paper groups as
// east-Asian for Finding 1 (Chinese, Japanese, Korean, Thai).
func (l Language) EastAsian() bool {
	switch l {
	case Chinese, Japanese, Korean, Thai:
		return true
	}
	return false
}

// All returns every Language value in declaration order.
func All() []Language {
	out := make([]Language, numLanguages)
	for i := range out {
		out[i] = Language(i)
	}
	return out
}
