package langid

// Seed corpora for the Latin-script languages the naive-Bayes model must
// separate. Script-decisive languages (Chinese, Japanese, Korean, Thai,
// Russian, Arabic, Persian) are classified structurally and need no corpus.
//
// Each corpus is a list of common words and domain-typical tokens; the
// model trains on their character bigrams. Word lists are intentionally
// rich in each language's characteristic letters and digraphs (ß/sch for
// German, ı/ş/ğ for Turkish, å/ä/ö for Swedish, double vowels for Finnish,
// gy/sz and ő/ű for Hungarian, ø/aa for Danish, ñ/ción for Spanish,
// eau/oux for French).
var latinCorpora = map[Language][]string{
	English: {
		"the", "and", "for", "with", "this", "that", "from", "have", "will",
		"online", "shop", "store", "news", "world", "home", "free", "best",
		"service", "group", "company", "market", "trade", "cloud", "tech",
		"digital", "media", "games", "sports", "travel", "health", "money",
		"school", "house", "water", "light", "night", "right", "think",
		"about", "which", "their", "would", "there", "other", "after",
		"first", "work", "life", "time", "people", "business", "website",
	},
	German: {
		"und", "der", "die", "das", "nicht", "mit", "sich", "auf", "für",
		"straße", "größe", "über", "müller", "schön", "mädchen", "können",
		"geschäft", "verkauf", "bücher", "möbel", "küche", "schule",
		"deutschland", "münchen", "köln", "düsseldorf", "nürnberg",
		"versicherung", "wohnung", "zeitung", "lösung", "prüfung",
		"fußball", "straßenbahn", "süß", "weiß", "heiß", "grüße",
		"männer", "frauen", "kinder", "häuser", "bäcker", "metzger",
		"schnell", "zwischen", "deutsch", "sprache", "wörterbuch",
	},
	Turkish: {
		"ve", "bir", "için", "ile", "çok", "daha", "gibi", "kadar",
		"türkiye", "istanbul", "ankara", "izmir", "türkçe", "güzel",
		"şirket", "satış", "alışveriş", "ürün", "fiyat", "ücretsiz",
		"sağlık", "eğitim", "öğrenci", "üniversite", "müzik", "oyun",
		"haber", "gazete", "spor", "yazılım", "bilgisayar", "telefon",
		"çocuk", "kitap", "şehir", "yıl", "gün", "işçi", "çalışma",
		"başka", "şimdi", "değil", "büyük", "küçük", "yeşil", "kırmızı",
	},
	Swedish: {
		"och", "att", "det", "som", "för", "på", "är", "med", "till",
		"sverige", "stockholm", "göteborg", "malmö", "svensk", "språk",
		"företag", "försäljning", "köp", "pris", "gratis", "nyheter",
		"hälsa", "skola", "universitet", "musik", "spel", "resor",
		"väder", "kläder", "möbler", "böcker", "bättre", "större",
		"människor", "barn", "hus", "vatten", "ljus", "natt", "rätt",
		"många", "några", "själv", "även", "både", "därför", "mellan",
	},
	Spanish: {
		"que", "los", "las", "por", "con", "para", "una", "del", "más",
		"españa", "madrid", "barcelona", "méxico", "español", "señor",
		"compañía", "tienda", "venta", "precio", "gratis", "noticias",
		"salud", "educación", "niños", "universidad", "música", "juegos",
		"viajes", "año", "años", "día", "días", "están", "también",
		"información", "dirección", "atención", "corazón", "nación",
		"pequeño", "mañana", "montaña", "baño", "sueño", "diseño",
	},
	French: {
		"les", "des", "une", "est", "pour", "que", "dans", "qui", "avec",
		"france", "paris", "lyon", "marseille", "français", "château",
		"société", "boutique", "vente", "prix", "gratuit", "nouvelles",
		"santé", "éducation", "école", "université", "musique", "jeux",
		"voyages", "année", "journée", "être", "même", "très", "après",
		"beaucoup", "nouveau", "beau", "eau", "bureau", "cadeau",
		"hôtel", "café", "crêpe", "forêt", "île", "août", "noël",
		"coût", "goût", "où", "déjà", "voilà", "français",
	},
	Finnish: {
		"ja", "on", "että", "ei", "se", "hän", "mutta", "kun", "niin",
		"suomi", "helsinki", "tampere", "turku", "suomalainen", "kieli",
		"yritys", "myynti", "kauppa", "hinta", "ilmainen", "uutiset",
		"terveys", "koulutus", "koulu", "yliopisto", "musiikki", "pelit",
		"matkat", "vuosi", "päivä", "yö", "työ", "tyttö", "poika",
		"kaupunki", "maa", "vesi", "tuli", "ilma", "metsä", "järvi",
		"kirja", "talo", "auto", "juna", "lentokone", "puhelin",
		"kaunis", "hyvä", "paha", "iso", "pieni", "pitkä", "lyhyt",
	},
	Hungarian: {
		"és", "egy", "az", "hogy", "nem", "is", "van", "volt", "lesz",
		"magyarország", "budapest", "debrecen", "szeged", "magyar", "nyelv",
		"cég", "eladás", "bolt", "ár", "ingyenes", "hírek",
		"egészség", "oktatás", "iskola", "egyetem", "zene", "játékok",
		"utazás", "év", "nap", "éjszaka", "munka", "gyerek", "fiú",
		"város", "ország", "víz", "tűz", "levegő", "erdő", "folyó",
		"könyv", "ház", "autó", "vonat", "repülő", "telefon",
		"szép", "jó", "rossz", "nagy", "kicsi", "hosszú", "rövid",
		"gyönyörű", "szöveg", "összes", "különböző", "következő",
	},
	Vietnamese: {
		"và", "của", "có", "được", "cho", "không", "người", "này",
		"việt", "nam", "hà", "nội", "sài", "gòn", "tiếng", "việt",
		"công", "ty", "bán", "hàng", "cửa", "hàng", "giá", "miễn", "phí",
		"sức", "khỏe", "giáo", "dục", "trường", "học", "đại", "học",
		"âm", "nhạc", "trò", "chơi", "du", "lịch", "khách", "sạn",
		"năm", "ngày", "đêm", "làm", "việc", "trẻ", "em", "thành", "phố",
		"nước", "đẹp", "tốt", "xấu", "lớn", "nhỏ", "dài", "ngắn",
		"đồng", "tiền", "ngân", "hàng", "bảo", "hiểm", "điện", "thoại",
	},
	Danish: {
		"og", "det", "at", "en", "den", "til", "er", "som", "på",
		"danmark", "københavn", "aarhus", "odense", "dansk", "sprog",
		"virksomhed", "salg", "butik", "pris", "gratis", "nyheder",
		"sundhed", "uddannelse", "skole", "universitet", "musik", "spil",
		"rejser", "år", "dag", "nat", "arbejde", "børn", "dreng",
		"by", "land", "vand", "ild", "luft", "skov", "sø",
		"bog", "hus", "bil", "tog", "fly", "telefon",
		"smuk", "god", "dårlig", "stor", "lille", "lang", "kort",
		"størrelse", "køb", "æble", "rød", "grøn", "blå", "første",
	},
}

// diacriticHints maps characteristic code points to the languages they
// boost. A hint is strong evidence but not decisive (å exists in Swedish,
// Danish and Finnish loans), so hints act as additive log-prior boosts.
var diacriticHints = map[rune][]Language{
	'ß': {German},
	'ü': {German, Turkish, Hungarian},
	'ä': {German, Swedish, Finnish},
	'ö': {German, Swedish, Finnish, Turkish, Hungarian},
	'å': {Swedish, Danish},
	'ø': {Danish},
	'æ': {Danish},
	'ı': {Turkish},
	'ş': {Turkish},
	'ğ': {Turkish},
	'ç': {Turkish, French},
	'ñ': {Spanish},
	'¿': {Spanish},
	'í': {Spanish, Hungarian},
	'ó': {Spanish, Hungarian},
	'á': {Spanish, Hungarian},
	'é': {French, Spanish, Hungarian},
	'è': {French},
	'ê': {French},
	'â': {French, Turkish},
	'û': {French},
	'î': {French, Turkish},
	'ô': {French},
	'œ': {French},
	'ő': {Hungarian},
	'ű': {Hungarian},
	'đ': {Vietnamese},
	'ơ': {Vietnamese},
	'ư': {Vietnamese},
	'ạ': {Vietnamese},
	'ả': {Vietnamese},
	'ấ': {Vietnamese},
	'ầ': {Vietnamese},
	'ậ': {Vietnamese},
	'ắ': {Vietnamese},
	'ẹ': {Vietnamese},
	'ế': {Vietnamese},
	'ệ': {Vietnamese},
	'ị': {Vietnamese},
	'ọ': {Vietnamese},
	'ố': {Vietnamese},
	'ộ': {Vietnamese},
	'ụ': {Vietnamese},
	'ủ': {Vietnamese},
	'ỳ': {Vietnamese},
	'ỹ': {Vietnamese},
}

// persianOnly are Arabic-script code points that exist in Persian but not
// Arabic; their presence resolves the Arabic/Persian split.
var persianOnly = map[rune]bool{
	'پ': true, // peh
	'چ': true, // tcheh
	'ژ': true, // jeh
	'گ': true, // gaf
	'ک': true, // keheh (Persian kaf form)
	'ی': true, // Farsi yeh
}
