package langid

import (
	"math/rand"
	"strings"
	"testing"
)

// TestClassifyZeroAlloc is the steady-state allocation gate for the
// corpus-wide language breakdown: Classify must not allocate for ASCII
// labels (Bayes stage), Latin labels with diacritics (Bayes stage plus
// hint boosts), or script-decisive non-Latin labels (structural stage).
func TestClassifyZeroAlloc(t *testing.T) {
	c := New()
	cases := map[string]string{
		"ascii":            "example-shop24",
		"latin-diacritics": "bücher-münchen",
		"nonlatin":         "北京大学",
		"cyrillic":         "почта-россии",
		"mixed":            "shop-中国-24",
		"empty":            "",
	}
	for name, label := range cases {
		label := label
		if allocs := testing.AllocsPerRun(200, func() {
			_ = c.Classify(label)
		}); allocs != 0 {
			t.Errorf("%s: Classify(%q) allocates %.1f/op, want 0", name, label, allocs)
		}
	}
	if allocs := testing.AllocsPerRun(200, func() {
		_ = c.ClassifyDomain("bücher-münchen.de")
	}); allocs != 0 {
		t.Errorf("ClassifyDomain allocates %.1f/op, want 0", allocs)
	}
}

// denseAlphabets mix the scripts and boundary characters the corpus
// contains; the property test draws labels from them.
var denseAlphabets = []string{
	"abcdefghijklmnopqrstuvwxyz",
	"abc-123.xyz",
	"üäößñçéèışğåøæőűđ",
	"бвгдежзик",
	"中国北京大学",
	"ひらがなカタカナ",
	"한국어쇼핑",
	"αβγδε",
	"مرحبا",
	"ABCDEFÜÄÖ", // exercises the lowering path
	"^$",        // the boundary markers themselves, as adversarial input
}

// TestClassifyDenseMatchesReference pins the dense interned-feature scorer
// to the retained map-based reference over randomized labels: for every
// label that reaches the Bayes stage, classifyLatin (dense) must agree
// with classifyLatinRef (maps), and the public Classify must equal the
// reference pipeline end to end.
func TestClassifyDenseMatchesReference(t *testing.T) {
	c := New()
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 20000; i++ {
		alpha := []rune(denseAlphabets[rng.Intn(len(denseAlphabets))])
		n := rng.Intn(12)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteRune(alpha[rng.Intn(len(alpha))])
		}
		label := sb.String()

		wantLang, decided := classifyByScript(label)
		if !decided {
			wantLang = c.classifyLatinRef(label)
			if gotLatin := c.classifyLatin(label); gotLatin != wantLang {
				t.Fatalf("classifyLatin(%q) = %v, reference = %v", label, gotLatin, wantLang)
			}
		}
		if got := c.Classify(label); got != wantLang {
			t.Fatalf("Classify(%q) = %v, reference pipeline = %v", label, got, wantLang)
		}
	}
}

// TestClassifyDomainMatchesSplit pins the zero-alloc SLD extraction to the
// original strings.Split semantics.
func TestClassifyDomainMatchesSplit(t *testing.T) {
	c := New()
	refSLD := func(domain string) string {
		domain = strings.TrimSuffix(domain, ".")
		labels := strings.Split(domain, ".")
		if len(labels) >= 2 {
			return labels[len(labels)-2]
		}
		return labels[0]
	}
	for _, domain := range []string{
		"bücher.de", "bücher.de.", "a", "a.", "", ".", ".com", "x.y.z",
		"shop.bücher.example.com", "中国.cn", "..", "a..b",
	} {
		if got, want := c.ClassifyDomain(domain), c.Classify(refSLD(domain)); got != want {
			t.Errorf("ClassifyDomain(%q) = %v, want %v (SLD %q)", domain, got, want, refSLD(domain))
		}
	}
}

// TestDefaultShared verifies the process-wide classifier is trained once
// and classifies identically to a fresh instance.
func TestDefaultShared(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default() returned distinct instances")
	}
	fresh := New()
	for _, label := range []string{"bücher", "münchen", "中国", "почта", "shop24", ""} {
		if got, want := Default().Classify(label), fresh.Classify(label); got != want {
			t.Errorf("Default().Classify(%q) = %v, fresh = %v", label, got, want)
		}
	}
}
