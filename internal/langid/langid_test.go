package langid

import (
	"testing"
)

func TestScriptDecisiveLanguages(t *testing.T) {
	c := New()
	cases := []struct {
		label string
		want  Language
	}{
		{"中国", Chinese},
		{"波色", Chinese},
		{"北京交通大学", Chinese},
		{"日本語ドメイン", Japanese}, // kana present
		{"ひらがな", Japanese},
		{"なぜ日本語", Japanese}, // kanji + kana
		{"한국어", Korean},
		{"도메인", Korean},
		{"ไทย", Thai},
		{"почта", Russian},
		{"пример", Russian},
		{"مرحبا", Arabic},
		{"سلام", Arabic}, // pure Arabic-script, no Persian-only chars
		{"گفتگو", Persian},
		{"پارسی", Persian},
	}
	for _, tc := range cases {
		if got := c.Classify(tc.label); got != tc.want {
			t.Errorf("Classify(%q) = %v, want %v", tc.label, got, tc.want)
		}
	}
}

func TestLatinLanguages(t *testing.T) {
	c := New()
	cases := []struct {
		label string
		want  Language
	}{
		{"bücher", German},
		{"größe", German},
		{"fußball", German},
		{"münchen", German},
		{"alışveriş", Turkish},
		{"türkçe", Turkish},
		{"öğrenci", Turkish},
		{"försäljning", Swedish},
		{"människor", Swedish},
		{"señor", Spanish},
		{"educación", Spanish},
		{"château", French},
		{"société", French},
		{"yliopisto", Finnish},
		{"musiikki", Finnish},
		{"egészség", Hungarian},
		{"gyönyörű", Hungarian},
		{"købenavn", Danish},
		{"størrelse", Danish},
	}
	for _, tc := range cases {
		if got := c.Classify(tc.label); got != tc.want {
			t.Errorf("Classify(%q) = %v, want %v", tc.label, got, tc.want)
		}
	}
}

func TestEnglishDefault(t *testing.T) {
	c := New()
	for _, label := range []string{"online-shop", "bestnews", "cloudservice"} {
		got := c.Classify(label)
		if got != English {
			t.Errorf("Classify(%q) = %v, want English", label, got)
		}
	}
}

func TestMixedBrandKeyword(t *testing.T) {
	// Type-1 semantic IDNs mix an ASCII brand with CJK keywords; the
	// CJK content decides the language, matching the paper's observation
	// that such IDNs are overwhelmingly Chinese.
	c := New()
	if got := c.Classify("apple邮箱"); got != Chinese {
		t.Errorf("Classify(apple邮箱) = %v, want Chinese", got)
	}
	if got := c.Classify("58汽车"); got != Chinese {
		t.Errorf("Classify(58汽车) = %v, want Chinese", got)
	}
}

func TestClassifyDeterministic(t *testing.T) {
	c := New()
	labels := []string{"bücher", "中国", "почта", "online", "gyönyörű"}
	for _, l := range labels {
		first := c.Classify(l)
		for i := 0; i < 5; i++ {
			if got := c.Classify(l); got != first {
				t.Fatalf("Classify(%q) not deterministic: %v vs %v", l, got, first)
			}
		}
	}
}

func TestTwoClassifiersAgree(t *testing.T) {
	a, b := New(), New()
	for _, l := range []string{"bücher", "señor", "alışveriş", "hello"} {
		if a.Classify(l) != b.Classify(l) {
			t.Fatalf("classifiers disagree on %q", l)
		}
	}
}

func TestDigitsAndEmpty(t *testing.T) {
	c := New()
	if got := c.Classify("58"); got != Other {
		t.Errorf("Classify(58) = %v, want Other", got)
	}
	if got := c.Classify(""); got != Other {
		t.Errorf("Classify(\"\") = %v, want Other", got)
	}
	if got := c.Classify("---"); got != Other {
		t.Errorf("Classify(---) = %v, want Other", got)
	}
}

func TestClassifyDomain(t *testing.T) {
	c := New()
	cases := []struct {
		domain string
		want   Language
	}{
		{"波色.com", Chinese},
		{"bücher.de", German},
		{"пример.com", Russian},
		{"example.com", English},
		{"中国", Chinese}, // bare iTLD
	}
	for _, tc := range cases {
		if got := c.ClassifyDomain(tc.domain); got != tc.want {
			t.Errorf("ClassifyDomain(%q) = %v, want %v", tc.domain, got, tc.want)
		}
	}
}

func TestLanguageString(t *testing.T) {
	if Chinese.String() != "Chinese" || Persian.String() != "Persian" {
		t.Error("String() wrong")
	}
	if Language(-1).String() != "Other" || Language(99).String() != "Other" {
		t.Error("out-of-range String() should be Other")
	}
}

func TestEastAsianLanguages(t *testing.T) {
	for _, l := range []Language{Chinese, Japanese, Korean, Thai} {
		if !l.EastAsian() {
			t.Errorf("%v should be east-Asian", l)
		}
	}
	for _, l := range []Language{German, Russian, Arabic, English, Other} {
		if l.EastAsian() {
			t.Errorf("%v should not be east-Asian", l)
		}
	}
}

func TestAllCoversEveryLanguage(t *testing.T) {
	all := All()
	if len(all) != numLanguages {
		t.Fatalf("All() returned %d, want %d", len(all), numLanguages)
	}
	seen := make(map[Language]bool)
	for _, l := range all {
		seen[l] = true
	}
	if !seen[Chinese] || !seen[Persian] || !seen[Other] {
		t.Error("All() missing languages")
	}
}

func TestCorpusAccuracy(t *testing.T) {
	// The classifier must recover the language of most of its own training
	// vocabulary words ≥4 runes (short function words are legitimately
	// ambiguous). LangID reports 0.904-0.992 accuracy; we demand ≥0.80 on
	// this harder per-word task.
	c := New()
	correct, total := 0, 0
	for lang, words := range latinCorpora {
		for _, w := range words {
			if len([]rune(w)) < 4 {
				continue
			}
			total++
			if c.Classify(w) == lang {
				correct++
			}
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.80 {
		t.Errorf("training-vocabulary accuracy = %.3f, want >= 0.80", acc)
	}
}

func BenchmarkClassifyCJK(b *testing.B) {
	c := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Classify("北京交通大学")
	}
}

func BenchmarkClassifyLatin(b *testing.B) {
	c := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Classify("försäljning")
	}
}

func BenchmarkNewClassifier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = New()
	}
}

func TestExtendedLanguages(t *testing.T) {
	c := New()
	cases := []struct {
		label string
		want  Language
	}{
		{"tiếngviệt", Vietnamese},
		{"sứckhỏe", Vietnamese},
		{"ελλάδα", Greek},
		{"ελληνικά", Greek},
		{"שלום", Hebrew},
		{"ישראל", Hebrew},
	}
	for _, tc := range cases {
		if got := c.Classify(tc.label); got != tc.want {
			t.Errorf("Classify(%q) = %v, want %v", tc.label, got, tc.want)
		}
	}
}

func TestHomographLabelsClassifyAsVietnamese(t *testing.T) {
	// The 2017-era facebook homographs used Vietnamese dot-below marks
	// (Table VIII: fạcẹbook etc.); the classifier should attribute them
	// to Vietnamese rather than English.
	c := New()
	if got := c.Classify("fạcẹbook"); got != Vietnamese {
		t.Errorf("Classify(fạcẹbook) = %v, want Vietnamese", got)
	}
}
