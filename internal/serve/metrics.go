package serve

import (
	"sync/atomic"
	"time"

	"idnlab/internal/pipeline"
)

// Live serving metrics, extending the batch engine's pipeline.Metrics
// with what an online service additionally needs: request counters per
// route and status class, an end-to-end latency histogram, cache hit
// rate and admission pressure. Everything is atomics — /metrics is safe
// (and cheap) to scrape during full load.

// histBuckets is the number of log2 latency buckets. Bucket i holds
// observations with ceil(log2(µs)) == i, so bucket 0 is ≤1µs and bucket
// 29 caps out at ~9 minutes — far beyond any configured deadline.
const histBuckets = 30

// histogram is a lock-free log2 latency histogram over microseconds.
type histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNs   atomic.Int64
	maxNs   atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	h.count.Add(1)
	h.sumNs.Add(int64(d))
	for {
		old := h.maxNs.Load()
		if int64(d) <= old || h.maxNs.CompareAndSwap(old, int64(d)) {
			break
		}
	}
	us := d.Microseconds()
	b := 0
	for v := us; v > 1; v >>= 1 {
		b++
	}
	if us > 1 && us&(us-1) != 0 {
		b++ // ceil
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
}

// quantile returns an upper bound (the bucket ceiling, in µs) for the
// q-th latency quantile.
func (h *histogram) quantile(counts *[histBuckets]uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += counts[i]
		if cum > rank {
			return float64(uint64(1) << uint(i)) // bucket ceiling in µs
		}
	}
	return float64(uint64(1) << (histBuckets - 1))
}

// LatencyStats is the histogram's wire form (microseconds).
type LatencyStats struct {
	Count      uint64  `json:"count"`
	MeanMicros float64 `json:"meanMicros"`
	P50Micros  float64 `json:"p50Micros"`
	P90Micros  float64 `json:"p90Micros"`
	P99Micros  float64 `json:"p99Micros"`
	MaxMicros  float64 `json:"maxMicros"`
}

func (h *histogram) stats() LatencyStats {
	var counts [histBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	st := LatencyStats{Count: total}
	if total > 0 {
		st.MeanMicros = float64(h.sumNs.Load()) / float64(total) / 1e3
		st.P50Micros = h.quantile(&counts, total, 0.50)
		st.P90Micros = h.quantile(&counts, total, 0.90)
		st.P99Micros = h.quantile(&counts, total, 0.99)
		st.MaxMicros = float64(h.maxNs.Load()) / 1e3
	}
	return st
}

// serverMetrics aggregates the server's live counters.
type serverMetrics struct {
	start time.Time

	single  atomic.Uint64 // /v1/detect requests
	batch   atomic.Uint64 // /v1/detect/batch requests
	labels  atomic.Uint64 // labels classified (batch items + singles)
	flagged atomic.Uint64 // verdicts with at least one detector match

	status2xx atomic.Uint64
	status4xx atomic.Uint64
	status429 atomic.Uint64
	status5xx atomic.Uint64

	latency histogram
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{start: time.Now()}
}

func (m *serverMetrics) observeStatus(code int) {
	switch {
	case code == 429:
		m.status429.Add(1)
	case code >= 500:
		m.status5xx.Add(1)
	case code >= 400:
		m.status4xx.Add(1)
	case code >= 200 && code < 300:
		m.status2xx.Add(1)
	}
}

// RequestStats is the request-counter wire form.
type RequestStats struct {
	Single    uint64 `json:"single"`
	Batch     uint64 `json:"batch"`
	Labels    uint64 `json:"labels"`
	Flagged   uint64 `json:"flagged"`
	Status2xx uint64 `json:"status2xx"`
	Status4xx uint64 `json:"status4xx"`
	Status429 uint64 `json:"status429"`
	Status5xx uint64 `json:"status5xx"`
}

// MetricsSnapshot is the full /metrics payload.
type MetricsSnapshot struct {
	UptimeSeconds float64              `json:"uptimeSeconds"`
	Requests      RequestStats         `json:"requests"`
	Latency       LatencyStats         `json:"latency"`
	Cache         CacheStats           `json:"cache"`
	Admission     AdmissionStats       `json:"admission"`
	BatchEngine   pipeline.MetricsJSON `json:"batchEngine"`
}
