package serve

import (
	"sync/atomic"
	"time"

	"idnlab/internal/core"
	"idnlab/internal/metricsutil"
	"idnlab/internal/pipeline"
)

// Live serving metrics, extending the batch engine's pipeline.Metrics
// with what an online service additionally needs: request counters per
// route and status class, an end-to-end latency histogram (the shared
// metricsutil.Histogram — the cluster gateway keeps an identical one, so
// cluster-wide latency views compose), cache hit rate and admission
// pressure. Everything is atomics — /metrics is safe (and cheap) to
// scrape during full load.

// LatencyStats aliases the shared histogram's wire form so existing
// consumers of the serve API keep compiling.
type LatencyStats = metricsutil.LatencyStats

// serverMetrics aggregates the server's live counters.
type serverMetrics struct {
	start time.Time

	single  atomic.Uint64 // /v1/detect requests
	batch   atomic.Uint64 // /v1/detect/batch requests
	labels  atomic.Uint64 // labels classified (batch items + singles)
	flagged atomic.Uint64 // verdicts with at least one detector match

	status2xx   atomic.Uint64
	status4xx   atomic.Uint64
	status429   atomic.Uint64
	status5xx   atomic.Uint64
	rateLimited atomic.Uint64 // 429s issued by the rate cap (subset of status429)

	latency metricsutil.Histogram
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{start: time.Now()}
}

func (m *serverMetrics) observeStatus(code int) {
	switch {
	case code == 429:
		m.status429.Add(1)
	case code >= 500:
		m.status5xx.Add(1)
	case code >= 400:
		m.status4xx.Add(1)
	case code >= 200 && code < 300:
		m.status2xx.Add(1)
	}
}

// RequestStats is the request-counter wire form.
type RequestStats struct {
	Single      uint64 `json:"single"`
	Batch       uint64 `json:"batch"`
	Labels      uint64 `json:"labels"`
	Flagged     uint64 `json:"flagged"`
	Status2xx   uint64 `json:"status2xx"`
	Status4xx   uint64 `json:"status4xx"`
	Status429   uint64 `json:"status429"`
	Status5xx   uint64 `json:"status5xx"`
	RateLimited uint64 `json:"rateLimited"`
}

// IndexStats is the candidate-index wire form: which index (if any) the
// node serves with, and how often lookups produce candidates. A low hit
// rate is healthy — most traffic is not a near-homograph of any brand,
// and a miss is the cheapest possible verdict.
type IndexStats struct {
	Loaded      bool    `json:"loaded"`
	Format      string  `json:"format,omitempty"`
	Fingerprint string  `json:"fingerprint,omitempty"`
	Brands      int     `json:"brands,omitempty"`
	Keys        int     `json:"keys,omitempty"`
	Lookups     uint64  `json:"lookups"`
	Hits        uint64  `json:"hits"`
	HitRate     float64 `json:"hitRate"`
}

// MetricsSnapshot is the full /metrics payload.
type MetricsSnapshot struct {
	Node          string               `json:"node"`
	Version       string               `json:"version"`
	UptimeSeconds float64              `json:"uptimeSeconds"`
	Requests      RequestStats         `json:"requests"`
	Latency       LatencyStats         `json:"latency"`
	Cache         CacheStats           `json:"cache"`
	Admission     AdmissionStats       `json:"admission"`
	BatchEngine   pipeline.MetricsJSON `json:"batchEngine"`
	Index         IndexStats           `json:"index"`
	// Detector aggregates the detector family's shared counters across
	// every clone: bounded-rescore early exits and — with a statistical
	// model loaded — the learned prefilter's pass/shed split.
	Detector core.DetectorStats `json:"detector"`
	// Store is the durable-store block: warm-log/snapshot counters plus
	// the replication, read-repair and anti-entropy counters the
	// store-smoke cold-miss budget is asserted against. Loaded=false on
	// memory-only nodes.
	Store StoreStats `json:"store"`
}
