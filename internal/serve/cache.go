package serve

import (
	"sync"
	"sync/atomic"

	"idnlab/internal/core"
)

// VerdictCache is a sharded LRU cache of detection verdicts keyed by
// normalized ACE domain, with singleflight-style deduplication of
// concurrent identical lookups: when N requests for the same uncached
// key arrive together, exactly one computes the verdict and the other
// N−1 wait for its result instead of burning N−1 detector passes.
//
// Sharding bounds lock contention: each key hashes to one of S shards
// (S rounded up to a power of two), and each shard owns an independent
// mutex, LRU list and in-flight call table. Counters are process-wide
// atomics so Stats() is safe during traffic.
type VerdictCache struct {
	shards []cacheShard
	mask   uint64

	// writeThrough, when set, is called once per freshly computed
	// verdict (the singleflight leader path, outside any shard lock) and
	// returns the durable-store sequence number stamped on the entry.
	// Warm inserts via Put carry their own sequence and do not re-enter
	// the hook — that asymmetry is what keeps replicated and recovered
	// entries from being re-replicated.
	writeThrough func(key string, v core.Verdict) uint64

	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	evictions atomic.Uint64
}

// cacheShard is one lock domain: an intrusive doubly-linked LRU over
// map entries plus the shard's in-flight call table.
type cacheShard struct {
	mu    sync.Mutex
	cap   int
	items map[string]*cacheEntry
	head  *cacheEntry // most recently used
	tail  *cacheEntry // least recently used
	calls map[string]*inflight
}

type cacheEntry struct {
	key        string
	verdict    core.Verdict
	seq        uint64 // durable-store sequence (0 = memory-only entry)
	prev, next *cacheEntry
}

// inflight is one singleflight computation. Followers wait on done;
// the leader fills verdict/err before closing it.
type inflight struct {
	done    chan struct{}
	verdict core.Verdict
	err     error
}

// NewVerdictCache builds a cache holding up to capacity verdicts across
// shardCount shards (rounded up to a power of two; <=0 selects 16).
// capacity <= 0 disables storage but keeps singleflight dedup.
func NewVerdictCache(capacity, shardCount int) *VerdictCache {
	if shardCount <= 0 {
		shardCount = 16
	}
	n := 1
	for n < shardCount {
		n <<= 1
	}
	perShard := capacity / n
	if capacity > 0 && perShard == 0 {
		perShard = 1
	}
	c := &VerdictCache{shards: make([]cacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].items = make(map[string]*cacheEntry)
		c.shards[i].calls = make(map[string]*inflight)
	}
	return c
}

// fnv1a hashes the key for shard selection (FNV-1a 64).
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

func (c *VerdictCache) shard(key string) *cacheShard {
	return &c.shards[fnv1a(key)&c.mask]
}

// Get returns the cached verdict for key, promoting it to most recently
// used. It never blocks on an in-flight computation.
func (c *VerdictCache) Get(key string) (core.Verdict, bool) {
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.items[key]
	if ok {
		s.moveFront(e)
	}
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
		return e.verdict, true
	}
	c.misses.Add(1)
	return core.Verdict{}, false
}

// Do returns the verdict for key, computing it with compute on a miss.
// Concurrent Do calls for the same key share one computation: the first
// caller (the leader) runs compute, followers block until it finishes and
// receive the same verdict or error. Errors are not cached — the next
// request retries. hit reports whether the verdict came from cache or a
// coalesced in-flight computation rather than a fresh compute.
func (c *VerdictCache) Do(key string, compute func() (core.Verdict, error)) (v core.Verdict, hit bool, err error) {
	s := c.shard(key)
	s.mu.Lock()
	if e, ok := s.items[key]; ok {
		s.moveFront(e)
		s.mu.Unlock()
		c.hits.Add(1)
		return e.verdict, true, nil
	}
	if call, ok := s.calls[key]; ok {
		s.mu.Unlock()
		<-call.done
		c.coalesced.Add(1)
		return call.verdict, true, call.err
	}
	call := &inflight{done: make(chan struct{})}
	s.calls[key] = call
	s.mu.Unlock()
	c.misses.Add(1)

	call.verdict, call.err = compute()

	// Write-through runs outside the shard lock (it appends to the warm
	// log's group-commit queue) and stamps the entry with the assigned
	// log sequence, which is what snapshot compaction later orders by.
	var seq uint64
	if call.err == nil && c.writeThrough != nil {
		seq = c.writeThrough(key, call.verdict)
	}

	s.mu.Lock()
	delete(s.calls, key)
	if call.err == nil {
		s.store(key, call.verdict, seq, c)
	}
	s.mu.Unlock()
	close(call.done)
	return call.verdict, false, call.err
}

// SetWriteThrough attaches the durable write-through hook called for
// every freshly computed verdict. Attach before serving traffic.
func (c *VerdictCache) SetWriteThrough(fn func(key string, v core.Verdict) uint64) {
	c.writeThrough = fn
}

// Put inserts a verdict that was computed elsewhere — warm-boot
// recovery, a replication frame from the key's owner, or a read-repair
// backfill — carrying the sequence number it already holds in some
// store. It bypasses singleflight and the hit/miss counters: warm
// inserts are not lookups and must not distort the hit rate the
// cold-miss budget is asserted against.
func (c *VerdictCache) Put(key string, v core.Verdict, seq uint64) {
	s := c.shard(key)
	s.mu.Lock()
	s.store(key, v, seq, c)
	s.mu.Unlock()
}

// Peek reports whether key is cached without counting a hit or miss and
// without promoting the entry — the replication and repair paths probe
// with it, and probes must not perturb LRU order or the metrics the
// smoke tests assert on.
func (c *VerdictCache) Peek(key string) (core.Verdict, bool) {
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.items[key]
	var v core.Verdict
	if ok {
		v = e.verdict
	}
	s.mu.Unlock()
	return v, ok
}

// Walk calls fn once per cached entry. It locks one shard at a time and
// copies that shard's entries out before invoking fn, so no shard lock
// is ever held across the full dump (or across fn) — the warm-log
// snapshot writer iterates a full cache under live traffic with this.
// Entries inserted or evicted during the walk may or may not appear;
// that race is inherent to a live dump and harmless for a warm-boot
// image. fn returning false stops the walk.
func (c *VerdictCache) Walk(fn func(key string, v core.Verdict, seq uint64) bool) {
	var batch []cacheEntry
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		batch = batch[:0]
		for _, e := range s.items {
			batch = append(batch, cacheEntry{key: e.key, verdict: e.verdict, seq: e.seq})
		}
		s.mu.Unlock()
		for j := range batch {
			if !fn(batch[j].key, batch[j].verdict, batch[j].seq) {
				return
			}
		}
	}
}

// store inserts under the shard lock, evicting the least recently used
// entry when the shard is full. A zero-capacity shard stores nothing.
func (s *cacheShard) store(key string, v core.Verdict, seq uint64, c *VerdictCache) {
	if s.cap <= 0 {
		return
	}
	if e, ok := s.items[key]; ok { // raced with another leader
		e.verdict = v
		if seq > e.seq {
			e.seq = seq
		}
		s.moveFront(e)
		return
	}
	if len(s.items) >= s.cap {
		lru := s.tail
		s.unlink(lru)
		delete(s.items, lru.key)
		c.evictions.Add(1)
	}
	e := &cacheEntry{key: key, verdict: v, seq: seq}
	s.items[key] = e
	s.pushFront(e)
}

func (s *cacheShard) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *cacheShard) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *cacheShard) moveFront(e *cacheEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// Len reports the number of cached verdicts across all shards.
func (c *VerdictCache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].items)
		c.shards[i].mu.Unlock()
	}
	return n
}

// CacheStats is the cache's /metrics contribution.
type CacheStats struct {
	Size      int     `json:"size"`
	Capacity  int     `json:"capacity"`
	Shards    int     `json:"shards"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Coalesced uint64  `json:"coalesced"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hitRate"`
}

// Stats snapshots the counters. HitRate counts coalesced waits as hits
// (they did not run a detector pass).
func (c *VerdictCache) Stats() CacheStats {
	st := CacheStats{
		Size:      c.Len(),
		Capacity:  len(c.shards) * c.shards[0].cap,
		Shards:    len(c.shards),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
	}
	served := st.Hits + st.Coalesced
	if total := served + st.Misses; total > 0 {
		st.HitRate = float64(served) / float64(total)
	}
	return st
}
