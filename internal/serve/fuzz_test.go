package serve

import (
	"bytes"
	"testing"

	"idnlab/internal/core"
)

// FuzzDecodeDetect drives the /v1/detect request decoder and the
// normalization behind it with arbitrary bytes: decoding, label
// normalization and the Punycode round-trip must never panic, and a
// domain that normalizes successfully must re-normalize to the same
// fixed point (the ACE form is the cache key — if normalization were
// not idempotent, one name could occupy several cache entries and
// verdicts could disagree between spellings).
func FuzzDecodeDetect(f *testing.F) {
	f.Add([]byte(`{"domain":"xn--pple-43d.com"}`))
	f.Add([]byte(`{"domain":"аpple.com"}`))
	f.Add([]byte(`{"domain":"apple邮箱.com"}`))
	f.Add([]byte(`{"domain":"example.com"}`))
	f.Add([]byte(`{"domain":"EXAMPLE.COM."}`))
	f.Add([]byte(`{"domain":"xn--0.com"}`))
	f.Add([]byte(`{"domain":"..."}`))
	f.Add([]byte(`{"domains":["a.com"]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("{\"domain\":\"\xff\xfe.com\"}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeDetectRequest(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		n, err := core.Normalize(req.Domain)
		if err != nil {
			return
		}
		// Punycode round-trip fixed point: normalizing the ACE form
		// again must reproduce it exactly.
		n2, err := core.Normalize(n.ACE)
		if err != nil {
			t.Fatalf("ACE form %q (from %q) failed to re-normalize: %v", n.ACE, req.Domain, err)
		}
		if n2.ACE != n.ACE || n2.Unicode != n.Unicode || n2.Label != n.Label || n2.ASCII != n.ASCII {
			t.Fatalf("normalization not idempotent for %q: %+v vs %+v", req.Domain, n, n2)
		}
		// The Unicode display form need not round-trip (hyper-encoded
		// labels — a label decoding to "xn--"+non-ASCII — are display-
		// ambiguous by construction), but when it does normalize it must
		// land on the same ACE cache key.
		if n3, err := core.Normalize(n.Unicode); err == nil && n3.ACE != n.ACE {
			t.Fatalf("spellings diverge: %q → %q, %q → %q", req.Domain, n.ACE, n.Unicode, n3.ACE)
		}
	})
}

// FuzzDecodeBatch is the batch-body counterpart: any byte sequence must
// decode or error, never panic, and the cap must hold.
func FuzzDecodeBatch(f *testing.F) {
	f.Add([]byte(`{"domains":["xn--pple-43d.com","example.com"]}`))
	f.Add([]byte(`{"domains":[]}`))
	f.Add([]byte(`{"domains":["a.com","b.com","c.com"]}`))
	f.Add([]byte(`{"domain":"a.com"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeBatchRequest(bytes.NewReader(data), 2)
		if err != nil {
			return
		}
		if len(req.Domains) == 0 || len(req.Domains) > 2 {
			t.Fatalf("decoded batch violates bounds: %d items", len(req.Domains))
		}
	})
}
