package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"idnlab/internal/brands"
	"idnlab/internal/candidx"
)

// TestServeWithIndex pins the candidate-index wiring end to end: a server
// built with Config.Index must flag a known homograph (through the
// index-backed detector), consult the index for non-ASCII traffic, and
// surface the index's identity and counters at /metrics.
func TestServeWithIndex(t *testing.T) {
	ix, err := candidx.Build(brands.TopK(200), candidx.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := testServer(t, Config{Index: ix})

	resp, body := postJSON(t, ts.URL+"/v1/detect", `{"domain":"xn--pple-43d.com"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var verdict struct {
		Flagged bool `json:"flagged"`
	}
	if err := json.Unmarshal([]byte(body), &verdict); err != nil {
		t.Fatal(err)
	}
	if !verdict.Flagged {
		t.Fatalf("indexed server did not flag the canary homograph: %s", body)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if mresp.StatusCode != 200 {
		t.Fatalf("metrics status %d", mresp.StatusCode)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal([]byte(readAll(t, mresp)), &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Index.Loaded {
		t.Fatal("metrics report no index on an indexed server")
	}
	if snap.Index.Brands != 200 || snap.Index.Format != "IDNCIDX1" {
		t.Fatalf("index identity wrong in metrics: %+v", snap.Index)
	}
	if snap.Index.Lookups == 0 {
		t.Fatal("index lookups counter never moved: detector is not routing through the index")
	}
	if snap.Index.Hits == 0 || snap.Index.HitRate <= 0 {
		t.Fatalf("canary homograph produced no index hit: %+v", snap.Index)
	}
}

// TestServeWithoutIndexMetrics pins the sweep-only shape: Loaded false,
// zero counters.
func TestServeWithoutIndexMetrics(t *testing.T) {
	_, ts := testServer(t, Config{TopK: 50})
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal([]byte(readAll(t, mresp)), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Index.Loaded || snap.Index.Lookups != 0 {
		t.Fatalf("index stats on an index-less server: %+v", snap.Index)
	}
}
