package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp, readAll(t, resp)
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestDetectGoldenClean pins the exact wire format of a clean-domain
// response (no floats involved, so the bytes are stable).
func TestDetectGoldenClean(t *testing.T) {
	_, ts := testServer(t, Config{TopK: 100})
	resp, body := postJSON(t, ts.URL+"/v1/detect", `{"domain":"example.com"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content-type %q", ct)
	}
	want := `{"domain":"example.com","unicode":"example.com","idn":false,"flagged":false,"cached":false}` + "\n"
	if body != want {
		t.Fatalf("golden mismatch:\n got: %q\nwant: %q", body, want)
	}
}

// TestDetectKnownHomograph serves the paper's canonical attack
// (аpple.com, Cyrillic а) and checks the verdict fields plus the
// cached flag on a repeat lookup — including via the Unicode spelling,
// which must normalize to the same cache entry.
func TestDetectKnownHomograph(t *testing.T) {
	_, ts := testServer(t, Config{TopK: 1000})
	var out struct {
		Domain    string `json:"domain"`
		Unicode   string `json:"unicode"`
		IDN       bool   `json:"idn"`
		Flagged   bool   `json:"flagged"`
		Cached    bool   `json:"cached"`
		Homograph *struct {
			Brand string  `json:"brand"`
			SSIM  float64 `json:"ssim"`
		} `json:"homograph"`
	}
	resp, body := postJSON(t, ts.URL+"/v1/detect", `{"domain":"xn--pple-43d.com"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("unmarshal %q: %v", body, err)
	}
	if !out.Flagged || !out.IDN || out.Homograph == nil || out.Homograph.Brand != "apple.com" {
		t.Fatalf("verdict: %+v (%s)", out, body)
	}
	if out.Cached {
		t.Fatal("first lookup reported cached")
	}
	// Unicode spelling of the same name must hit the same cache entry.
	resp, body = postJSON(t, ts.URL+"/v1/detect", `{"domain":"аpple.com"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("unicode spelling status %d", resp.StatusCode)
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if !out.Cached || out.Domain != "xn--pple-43d.com" {
		t.Fatalf("unicode spelling should be cached under ACE key: %s", body)
	}
}

func TestDetectSemantic(t *testing.T) {
	_, ts := testServer(t, Config{TopK: 1000})
	resp, body := postJSON(t, ts.URL+"/v1/detect", `{"domain":"apple邮箱.com"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"semantic"`) || !strings.Contains(body, `"flagged":true`) {
		t.Fatalf("semantic verdict missing: %s", body)
	}
}

// TestDetectBadRequests pins the 400 taxonomy.
func TestDetectBadRequests(t *testing.T) {
	_, ts := testServer(t, Config{TopK: 100})
	cases := []string{
		`{`,                         // truncated JSON
		``,                          // empty body
		`[]`,                        // wrong shape
		`{"domain":""}`,             // missing value
		`{"nope":"x"}`,              // unknown field
		`{"domain":"a.com"} junk`,   // trailing garbage
		`{"domain":"exa mple.com"}`, // disallowed rune
		`{"domain":"bad..com"}`,     // empty label
	}
	for _, body := range cases {
		resp, _ := postJSON(t, ts.URL+"/v1/detect", body)
		if resp.StatusCode != 400 {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	// Error responses must be JSON.
	resp, body := postJSON(t, ts.URL+"/v1/detect", `{`)
	if resp.StatusCode != 400 || !strings.Contains(body, `"error"`) {
		t.Fatalf("error body: %d %q", resp.StatusCode, body)
	}
}

// TestBatch covers the aligned-results contract and the 413 cap.
func TestBatch(t *testing.T) {
	_, ts := testServer(t, Config{TopK: 1000, MaxBatch: 4})
	resp, body := postJSON(t, ts.URL+"/v1/detect/batch",
		`{"domains":["xn--pple-43d.com","example.com","bad..x","apple邮箱.com"]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Count   int `json:"count"`
		Flagged int `json:"flagged"`
		Results []struct {
			Domain  string `json:"domain"`
			Input   string `json:"input"`
			Error   string `json:"error"`
			Flagged bool   `json:"flagged"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.Count != 4 || len(out.Results) != 4 {
		t.Fatalf("count=%d results=%d, want 4/4", out.Count, len(out.Results))
	}
	// Results must align index-for-index with the request.
	if out.Results[0].Domain != "xn--pple-43d.com" || !out.Results[0].Flagged {
		t.Fatalf("result[0]: %+v", out.Results[0])
	}
	if out.Results[1].Domain != "example.com" || out.Results[1].Flagged {
		t.Fatalf("result[1]: %+v", out.Results[1])
	}
	if out.Results[2].Error == "" || out.Results[2].Input != "bad..x" {
		t.Fatalf("result[2] should carry the input error: %+v", out.Results[2])
	}
	if !out.Results[3].Flagged {
		t.Fatalf("result[3]: %+v", out.Results[3])
	}
	if out.Flagged != 2 {
		t.Fatalf("flagged=%d, want 2", out.Flagged)
	}

	// Oversized batch: 413, never partial processing.
	resp, _ = postJSON(t, ts.URL+"/v1/detect/batch",
		`{"domains":["a.com","b.com","c.com","d.com","e.com"]}`)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: status %d, want 413", resp.StatusCode)
	}
}

// TestLoadShed429 saturates admission (all slots and the queue held by
// the test) and verifies uncached detect requests get 429 +
// Retry-After, then flow again after release — load shedding, not
// collapse.
func TestLoadShed429(t *testing.T) {
	s, ts := testServer(t, Config{TopK: 100, MaxInflight: 1, MaxQueue: -1, QueueWait: 5 * time.Millisecond})
	release, err := s.adm.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/detect", `{"domain":"cold-shed.com"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated: status %d body %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	// Batches shed the same way.
	resp, _ = postJSON(t, ts.URL+"/v1/detect/batch", `{"domains":["example.com"]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated batch: status %d, want 429", resp.StatusCode)
	}
	release()
	resp, _ = postJSON(t, ts.URL+"/v1/detect", `{"domain":"example.com"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("after release: status %d, want 200", resp.StatusCode)
	}
	if st := s.adm.Stats(); st.Shed < 2 {
		t.Fatalf("admission stats did not record sheds: %+v", st)
	}
	// Cache hits bypass admission: re-saturate and re-request the now
	// warm label.
	release2, _ := s.adm.Admit(context.Background())
	defer release2()
	resp, _ = postJSON(t, ts.URL+"/v1/detect", `{"domain":"example.com"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("warm label under saturation: status %d, want 200", resp.StatusCode)
	}
}

func TestHealthzAndDrain(t *testing.T) {
	s, ts := testServer(t, Config{TopK: 100})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	s.draining.Store(true)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining healthz: %d %q", resp.StatusCode, body)
	}
}

// TestRunGracefulDrain boots a real listener, cancels the context, and
// verifies Run returns cleanly.
func TestRunGracefulDrain(t *testing.T) {
	s := NewServer(Config{TopK: 100, DrainTimeout: 2 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx, "127.0.0.1:0", ready) }()
	addr := <-ready
	resp, err := http.Get("http://" + addr.String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not drain within budget")
	}
	if !s.Draining() {
		t.Fatal("server not marked draining after shutdown")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{TopK: 1000})
	postJSON(t, ts.URL+"/v1/detect", `{"domain":"xn--pple-43d.com"}`)
	postJSON(t, ts.URL+"/v1/detect", `{"domain":"xn--pple-43d.com"}`)
	postJSON(t, ts.URL+"/v1/detect/batch", `{"domains":["example.com"]}`)
	postJSON(t, ts.URL+"/v1/detect", `{`)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Requests.Single != 3 || snap.Requests.Batch != 1 {
		t.Fatalf("request counters: %+v", snap.Requests)
	}
	if snap.Requests.Status2xx != 3 || snap.Requests.Status4xx != 1 {
		t.Fatalf("status counters: %+v", snap.Requests)
	}
	if snap.Cache.Hits == 0 {
		t.Fatalf("cache hits not counted: %+v", snap.Cache)
	}
	if snap.Latency.Count != 4 || snap.Latency.P50Micros <= 0 {
		t.Fatalf("latency: %+v", snap.Latency)
	}
	if snap.BatchEngine.Stage != "serve.batch" || snap.BatchEngine.In != 1 {
		t.Fatalf("batch engine metrics: %+v", snap.BatchEngine)
	}
}

// TestConcurrentHammer drives a shared server from many goroutines
// mixing cached singles, cold singles, batches and malformed bodies —
// run under -race this is the serving layer's data-race gate.
func TestConcurrentHammer(t *testing.T) {
	_, ts := testServer(t, Config{TopK: 1000, Workers: 4, MaxInflight: 4, CacheSize: 64, CacheShards: 4})
	client := ts.Client()
	const goroutines = 16
	const iters = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0: // hot key: exercises cache hits + singleflight
					resp, err := client.Post(ts.URL+"/v1/detect", "application/json",
						strings.NewReader(`{"domain":"xn--pple-43d.com"}`))
					if err == nil {
						resp.Body.Close()
					}
				case 1: // cold keys: exercises eviction under pressure
					resp, err := client.Post(ts.URL+"/v1/detect", "application/json",
						strings.NewReader(fmt.Sprintf(`{"domain":"cold-%d-%d.com"}`, g, i)))
					if err == nil {
						resp.Body.Close()
					}
				case 2: // batch through the pipeline engine
					resp, err := client.Post(ts.URL+"/v1/detect/batch", "application/json",
						strings.NewReader(`{"domains":["example.com","apple邮箱.com"]}`))
					if err == nil {
						resp.Body.Close()
					}
				case 3: // malformed
					resp, err := client.Post(ts.URL+"/v1/detect", "application/json",
						strings.NewReader(`{"broken`))
					if err == nil {
						resp.Body.Close()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	// The server must still be healthy and its counters consistent.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	wantReqs := uint64(goroutines * iters)
	if got := snap.Requests.Single + snap.Requests.Batch; got != wantReqs {
		t.Fatalf("requests = %d, want %d", got, wantReqs)
	}
	if snap.Cache.Size > 64 {
		t.Fatalf("cache exceeded capacity: %+v", snap.Cache)
	}
}
