package serve

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode, readAll(t, resp)
}

// TestReadyzLifecycle: ready after warm-up, unready while draining —
// and distinct from /healthz, which only flips on drain.
func TestReadyzLifecycle(t *testing.T) {
	s, ts := testServer(t, Config{NodeID: "test-node", TopK: 100})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.WaitWarm(ctx); err != nil {
		t.Fatalf("warm-up never completed: %v", err)
	}
	code, body := getBody(t, ts.URL+"/readyz")
	if code != 200 || !strings.Contains(body, `"ready"`) {
		t.Fatalf("warm readyz: %d %q", code, body)
	}
	// Identity rides in every health body.
	for _, want := range []string{`"node":"test-node"`, `"version"`, `"warm":true`} {
		if !strings.Contains(body, want) {
			t.Fatalf("readyz body missing %s: %q", want, body)
		}
	}

	s.draining.Store(true)
	if code, body := getBody(t, ts.URL+"/readyz"); code != 503 || !strings.Contains(body, `"unready"`) {
		t.Fatalf("draining readyz: %d %q", code, body)
	}
}

// TestReadyzSaturation: a node whose admission controller has zero
// headroom reports unready — it should be pulled out of rotation before
// it starts shedding.
func TestReadyzSaturation(t *testing.T) {
	s, ts := testServer(t, Config{TopK: 100, MaxInflight: 1, MaxQueue: -1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.WaitWarm(ctx); err != nil {
		t.Fatal(err)
	}
	// Occupy the only execution slot.
	release, err := s.adm.Admit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if code, body := getBody(t, ts.URL+"/readyz"); code != 503 || !strings.Contains(body, `"admissionSaturated":true`) {
		t.Fatalf("saturated readyz: %d %q", code, body)
	}
	release()
	if code, _ := getBody(t, ts.URL+"/readyz"); code != 200 {
		t.Fatalf("released readyz: %d, want 200", code)
	}
}

// TestClusterzStandalone: a worker with no peer attached reports
// standalone mode rather than erroring.
func TestClusterzStandalone(t *testing.T) {
	_, ts := testServer(t, Config{TopK: 100})
	if code, body := getBody(t, ts.URL+"/clusterz"); code != 200 || !strings.Contains(body, `"standalone"`) {
		t.Fatalf("clusterz: %d %q", code, body)
	}
}

// TestRateCap: the MaxRPS token bucket sheds the cheapest possible 429
// before any decode work, with a Retry-After hint, and the shed is
// visible in /metrics as rateLimited.
func TestRateCap(t *testing.T) {
	s, ts := testServer(t, Config{TopK: 100, MaxRPS: 1})
	// Burst capacity is one second of rate = 1 token: the first request
	// passes, the immediate second one must be capped.
	resp1, _ := postJSON(t, ts.URL+"/v1/detect", `{"domain":"example.com"}`)
	if resp1.StatusCode != 200 {
		t.Fatalf("first request: %d, want 200", resp1.StatusCode)
	}
	resp2, body := postJSON(t, ts.URL+"/v1/detect", `{"domain":"example.org"}`)
	if resp2.StatusCode != 429 {
		t.Fatalf("capped request: %d %q, want 429", resp2.StatusCode, body)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Fatal("capped 429 missing Retry-After")
	}
	if snap := s.Snapshot(); snap.Requests.RateLimited == 0 {
		t.Fatalf("rateLimited counter not incremented: %+v", snap.Requests)
	}
	// Health endpoints are never rate-capped.
	if code, _ := getBody(t, ts.URL+"/healthz"); code != 200 {
		t.Fatal("healthz got rate-capped")
	}
}

// TestHealthBodiesCarryIdentity pins node + version presence across the
// three health surfaces (the cluster smoke script greps for these).
func TestHealthBodiesCarryIdentity(t *testing.T) {
	_, ts := testServer(t, Config{NodeID: "idn-w1", TopK: 100})
	for _, path := range []string{"/healthz", "/metrics"} {
		_, body := getBody(t, ts.URL+path)
		if !strings.Contains(body, `"idn-w1"`) || !strings.Contains(body, `"version"`) {
			t.Fatalf("%s missing identity: %q", path, body)
		}
	}
}
