package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrSaturated reports that the admission controller shed the request:
// every execution slot was busy and the bounded wait queue was full or
// the caller's deadline could not survive the queue. Handlers translate
// it to 429 + Retry-After.
var ErrSaturated = errors.New("serve: admission queue saturated")

// Admission is the server's load-shedding front door: a fixed pool of
// execution slots plus a bounded, deadline-aware wait queue. Work that
// cannot get a slot within its budget is rejected *early* with
// ErrSaturated instead of piling onto an unbounded queue — under
// overload the server degrades to fast 429s, never to queue collapse
// (the ZDNS-style architecture: bounded everything, shed at the edge).
//
// Deadline awareness: a queued waiter never waits longer than its
// context's remaining budget. A request that would time out while
// queued is shed immediately, so queue time is never spent on work
// whose client has already given up.
type Admission struct {
	slots    chan struct{}
	maxQueue int64
	maxWait  time.Duration

	queued   atomic.Int64
	admitted atomic.Uint64
	shed     atomic.Uint64
	canceled atomic.Uint64
}

// NewAdmission builds a controller with maxInflight execution slots, at
// most maxQueue concurrent waiters, and a per-waiter cap of maxWait in
// the queue. maxInflight <= 0 selects 1; maxQueue < 0 selects 0 (shed
// immediately when all slots are busy); maxWait <= 0 selects 50ms.
func NewAdmission(maxInflight, maxQueue int, maxWait time.Duration) *Admission {
	if maxInflight <= 0 {
		maxInflight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	if maxWait <= 0 {
		maxWait = 50 * time.Millisecond
	}
	return &Admission{
		slots:    make(chan struct{}, maxInflight),
		maxQueue: int64(maxQueue),
		maxWait:  maxWait,
	}
}

// Admit acquires an execution slot, queueing within the configured and
// deadline-derived budget. On success it returns a release function that
// MUST be called exactly once. On saturation it returns ErrSaturated;
// on caller cancellation, ctx.Err().
func (a *Admission) Admit(ctx context.Context) (release func(), err error) {
	// Fast path: free slot, no queueing.
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		return a.release, nil
	default:
	}

	// Queue path: bounded waiter count, bounded wait.
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		a.shed.Add(1)
		return nil, ErrSaturated
	}
	defer a.queued.Add(-1)

	wait := a.maxWait
	if deadline, ok := ctx.Deadline(); ok {
		if remain := time.Until(deadline); remain < wait {
			wait = remain
		}
	}
	if wait <= 0 {
		a.shed.Add(1)
		return nil, ErrSaturated
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		return a.release, nil
	case <-timer.C:
		a.shed.Add(1)
		return nil, ErrSaturated
	case <-ctx.Done():
		a.canceled.Add(1)
		return nil, ctx.Err()
	}
}

func (a *Admission) release() { <-a.slots }

// InFlight reports currently held slots; Queued reports current waiters.
func (a *Admission) InFlight() int { return len(a.slots) }

// Queued reports the number of requests waiting for a slot.
func (a *Admission) Queued() int { return int(a.queued.Load()) }

// Saturated reports that the controller has no headroom: every
// execution slot is busy AND the wait queue is full (for a queueless
// controller, busy slots alone). /readyz uses it to pull a node out of
// rotation *before* it starts shedding — a saturated node should stop
// receiving new connections, not 429 them.
func (a *Admission) Saturated() bool {
	if len(a.slots) < cap(a.slots) {
		return false
	}
	return a.queued.Load() >= a.maxQueue
}

// RetryAfterSeconds is the Retry-After hint sent with 429 responses:
// one maxWait rounded up to a whole second (HTTP Retry-After has
// one-second granularity).
func (a *Admission) RetryAfterSeconds() int {
	s := int((a.maxWait + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// AdmissionStats is the controller's /metrics contribution.
type AdmissionStats struct {
	MaxInflight int    `json:"maxInflight"`
	MaxQueue    int    `json:"maxQueue"`
	MaxWaitMs   int64  `json:"maxWaitMs"`
	InFlight    int    `json:"inFlight"`
	Queued      int    `json:"queued"`
	Admitted    uint64 `json:"admitted"`
	Shed        uint64 `json:"shed"`
	Canceled    uint64 `json:"canceled"`
}

// Stats snapshots the counters; safe during traffic.
func (a *Admission) Stats() AdmissionStats {
	return AdmissionStats{
		MaxInflight: cap(a.slots),
		MaxQueue:    int(a.maxQueue),
		MaxWaitMs:   a.maxWait.Milliseconds(),
		InFlight:    a.InFlight(),
		Queued:      a.Queued(),
		Admitted:    a.admitted.Load(),
		Shed:        a.shed.Load(),
		Canceled:    a.canceled.Load(),
	}
}
