package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"idnlab/internal/cluster"
)

// Peer is a worker's lightweight cluster membership client: it
// registers the worker with a gateway via POST /v1/join and keeps
// re-joining on the gateway-advertised heartbeat cadence. Each join
// response carries an epoch-stamped membership view, which the peer
// stores and the worker surfaces at /clusterz — so any worker can
// answer "what does the cluster look like from here" without the
// gateway being asked.
//
// The gateway drives the cadence (JoinResponse.HeartbeatMs): retuning
// one gateway flag retunes every worker's heartbeat on its next beat.
type Peer struct {
	gatewayURL string // http://host:port, no trailing slash
	nodeID     string
	advertise  string // host:port the gateway should route to
	client     *http.Client

	mu       sync.Mutex
	view     cluster.ClusterView
	joined   bool
	interval time.Duration
	lastBeat time.Time
	lastErr  error
}

// NewPeer builds a membership client. gateway accepts "host:port" or a
// full http URL; advertise is this worker's reachable host:port.
func NewPeer(gateway, nodeID, advertise string) *Peer {
	if !strings.Contains(gateway, "://") {
		gateway = "http://" + gateway
	}
	return &Peer{
		gatewayURL: strings.TrimRight(gateway, "/"),
		nodeID:     nodeID,
		advertise:  advertise,
		client:     &http.Client{Timeout: 2 * time.Second},
		interval:   time.Second, // until the gateway advertises its own
	}
}

// NodeID reports the identity the peer registers under.
func (p *Peer) NodeID() string { return p.nodeID }

// join performs one registration/heartbeat exchange.
func (p *Peer) join(ctx context.Context) error {
	body, err := json.Marshal(cluster.JoinRequest{ID: p.nodeID, Addr: p.advertise})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.gatewayURL+"/v1/join", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("join: gateway status %d", resp.StatusCode)
	}
	var jr cluster.JoinResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return fmt.Errorf("join: bad response: %v", err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	// Epoch-stamped pull: never replace a newer view with an older one
	// (join responses can race when the interval is short).
	if !p.joined || jr.View.Epoch >= p.view.Epoch {
		p.view = jr.View
	}
	p.joined = true
	p.lastBeat = time.Now()
	p.lastErr = nil
	if jr.HeartbeatMs > 0 {
		p.interval = time.Duration(jr.HeartbeatMs) * time.Millisecond
	}
	return nil
}

// Run joins immediately and then heartbeats until ctx is cancelled.
// Failed beats retry at the same cadence (the gateway's sweeper will
// demote us if we stay silent; there is nothing smarter to do than keep
// trying).
func (p *Peer) Run(ctx context.Context) {
	for {
		if err := p.join(ctx); err != nil && ctx.Err() == nil {
			p.mu.Lock()
			p.lastErr = err
			p.mu.Unlock()
		}
		p.mu.Lock()
		d := p.interval
		p.mu.Unlock()
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return
		}
	}
}

// PeerStatus is the worker-side /clusterz body.
type PeerStatus struct {
	Mode          string              `json:"mode"`
	Gateway       string              `json:"gateway"`
	NodeID        string              `json:"nodeId"`
	Joined        bool                `json:"joined"`
	LastBeatAgoMs int64               `json:"lastBeatAgoMs"`
	LastError     string              `json:"lastError,omitempty"`
	View          cluster.ClusterView `json:"view"`
}

// Status snapshots the peer's state.
func (p *Peer) Status() PeerStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PeerStatus{
		Mode:    "peer",
		Gateway: p.gatewayURL,
		NodeID:  p.nodeID,
		Joined:  p.joined,
		View:    p.view,
	}
	if !p.lastBeat.IsZero() {
		st.LastBeatAgoMs = time.Since(p.lastBeat).Milliseconds()
	}
	if p.lastErr != nil {
		st.LastError = p.lastErr.Error()
	}
	return st
}
