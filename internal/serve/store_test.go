package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"idnlab/internal/api"
	"idnlab/internal/core"
	"idnlab/internal/vstore"
)

// --- VerdictCache store hooks ----------------------------------------

func TestCachePutPeekWalk(t *testing.T) {
	c := NewVerdictCache(64, 4)
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("warm-%d.com", i)
		c.Put(k, vd(k), uint64(i+1))
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Put perturbed hit/miss counters: %+v", st)
	}
	if v, ok := c.Peek("warm-3.com"); !ok || v.Domain != "warm-3.com" {
		t.Fatalf("Peek warm key: %v %v", v, ok)
	}
	if _, ok := c.Peek("cold.com"); ok {
		t.Fatal("Peek hit a key that was never inserted")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Peek perturbed hit/miss counters: %+v", st)
	}

	// Walk sees every entry with the sequence it was inserted under.
	seqs := make(map[string]uint64)
	c.Walk(func(key string, v core.Verdict, seq uint64) bool {
		seqs[key] = seq
		return true
	})
	if len(seqs) != 10 {
		t.Fatalf("Walk visited %d entries, want 10", len(seqs))
	}
	if seqs["warm-3.com"] != 4 {
		t.Fatalf("warm-3 walked with seq %d, want 4", seqs["warm-3.com"])
	}

	// fn returning false stops the walk.
	n := 0
	c.Walk(func(string, core.Verdict, uint64) bool { n++; return false })
	if n != 1 {
		t.Fatalf("walk after stop visited %d entries, want 1", n)
	}
}

// TestCachePeekDoesNotPromote pins Peek's non-perturbing contract: a
// peeked entry stays at its LRU position and is evicted as if the probe
// never happened (Get, by contrast, promotes).
func TestCachePeekDoesNotPromote(t *testing.T) {
	c := NewVerdictCache(2, 1)
	c.Put("a.com", vd("a.com"), 1)
	c.Put("b.com", vd("b.com"), 2)
	c.Peek("a.com") // must NOT promote a past b
	c.Put("c.com", vd("c.com"), 3)
	if _, ok := c.Peek("a.com"); ok {
		t.Fatal("a.com survived eviction — Peek promoted it")
	}
	if _, ok := c.Peek("b.com"); !ok {
		t.Fatal("b.com evicted — wrong LRU victim")
	}
}

// TestCacheWriteThroughLeaderOnly: the durable write-through hook fires
// exactly once per fresh computation — not on hits, not on coalesced
// followers, not on warm Puts, not on compute errors — and the returned
// sequence is stamped on the entry.
func TestCacheWriteThroughLeaderOnly(t *testing.T) {
	c := NewVerdictCache(64, 4)
	var calls atomic.Uint64
	c.SetWriteThrough(func(key string, v core.Verdict) uint64 {
		calls.Add(1)
		return 42
	})

	c.Do("a.com", func() (core.Verdict, error) { return vd("a.com"), nil })
	if calls.Load() != 1 {
		t.Fatalf("write-through after first Do: %d calls, want 1", calls.Load())
	}
	c.Do("a.com", func() (core.Verdict, error) {
		t.Fatal("compute ran on warm key")
		return core.Verdict{}, nil
	})
	if calls.Load() != 1 {
		t.Fatalf("write-through fired on a cache hit: %d calls", calls.Load())
	}
	c.Put("b.com", vd("b.com"), 7)
	if calls.Load() != 1 {
		t.Fatalf("write-through fired on a warm Put: %d calls", calls.Load())
	}
	c.Do("err.com", func() (core.Verdict, error) { return core.Verdict{}, fmt.Errorf("boom") })
	if calls.Load() != 1 {
		t.Fatalf("write-through fired on a compute error: %d calls", calls.Load())
	}

	// Coalesced followers share the leader's single write-through.
	gate := make(chan struct{})
	var started sync.WaitGroup
	var wg sync.WaitGroup
	started.Add(1)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.Do("cold.com", func() (core.Verdict, error) {
				started.Done() // only the leader gets here
				<-gate
				return vd("cold.com"), nil
			})
		}(i)
	}
	started.Wait()
	time.Sleep(20 * time.Millisecond) // let followers queue behind the leader
	close(gate)
	wg.Wait()
	if calls.Load() != 2 {
		t.Fatalf("write-through after coalesced burst: %d calls, want 2", calls.Load())
	}

	// The hook's sequence number is what the entry carries into Walk
	// (and therefore into snapshot compaction).
	var got uint64
	c.Walk(func(key string, _ core.Verdict, seq uint64) bool {
		if key == "a.com" {
			got = seq
		}
		return true
	})
	if got != 42 {
		t.Fatalf("entry stamped with seq %d, want the hook's 42", got)
	}
}

// TestCacheWalkHoldsNoLocksDuringEmit parks the walk callback mid-dump
// and verifies the cache stays fully usable — the snapshot writer must
// never hold a shard lock across its emit.
func TestCacheWalkHoldsNoLocksDuringEmit(t *testing.T) {
	c := NewVerdictCache(64, 1) // single shard: the worst case
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("warm-%d.com", i)
		c.Put(k, vd(k), uint64(i+1))
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	walked := make(chan struct{})
	go func() {
		defer close(walked)
		first := true
		c.Walk(func(string, core.Verdict, uint64) bool {
			if first {
				first = false
				close(entered)
				<-release
			}
			return true
		})
	}()
	<-entered
	ok := make(chan struct{})
	go func() {
		c.Put("during.com", vd("during.com"), 99)
		c.Get("warm-0.com")
		c.Do("also-during.com", func() (core.Verdict, error) { return vd("also-during.com"), nil })
		close(ok)
	}()
	select {
	case <-ok:
	case <-time.After(2 * time.Second):
		t.Fatal("cache operations blocked behind a paused Walk — shard lock held across emit")
	}
	close(release)
	<-walked
}

// --- Server integration: warm boot, write-through, store endpoints ----

func TestServerStoreWarmBootAndHandlers(t *testing.T) {
	dir := t.TempDir()

	// A previous incarnation committed one verdict and stopped cleanly.
	prev, err := vstore.Open(vstore.Config{Dir: dir, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq := prev.Append(vd("warm.example")); seq == 0 {
		t.Fatal("seed append failed")
	}
	if err := prev.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := prev.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := vstore.Open(vstore.Config{Dir: dir, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := testServer(t, Config{NodeID: "n1", TopK: 100, Workers: 2, Store: st})
	t.Cleanup(func() { srv.CloseStore() })

	// Warm boot: the recovered key answers from cache on the very first
	// request — no detector pass, no new log append.
	resp, body := postJSON(t, ts.URL+"/v1/detect", `{"domain":"warm.example"}`)
	if resp.StatusCode != 200 || !strings.Contains(body, `"cached":true`) {
		t.Fatalf("warm-boot detect not cached: %d %q", resp.StatusCode, body)
	}

	// Write-through: fresh keys append to the warm log.
	before := st.Seq()
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/detect", fmt.Sprintf(`{"domain":"fresh-%d.example"}`, i))
		if resp.StatusCode != 200 {
			t.Fatalf("detect fresh-%d: %d %q", i, resp.StatusCode, body)
		}
	}
	if got := st.Seq(); got != before+3 {
		t.Fatalf("store seq %d after 3 fresh verdicts, want %d", got, before+3)
	}

	// Peek: warm 200 + cached flag, cold 404 — without touching counters
	// the budget is asserted against.
	resp, body = postJSON(t, ts.URL+"/v1/store/peek", `{"domain":"warm.example"}`)
	if resp.StatusCode != 200 || !strings.Contains(body, `"cached":true`) {
		t.Fatalf("peek warm: %d %q", resp.StatusCode, body)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/store/peek", `{"domain":"never.example"}`); resp.StatusCode != 404 {
		t.Fatalf("peek cold: %d, want 404", resp.StatusCode)
	}

	// Replication ingest: one new verdict accepted, the duplicate of an
	// already-warm key deduplicated (that dedup is what stops replication
	// loops from growing the log without bound).
	br := api.BatchResponse{Count: 2, Results: []api.DetectResponse{
		{Verdict: vd("warm.example")},
		{Verdict: vd("repl-1.example")},
	}}
	frame, err := api.AppendBatchResponse(nil, &br)
	if err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, ts.URL+"/v1/store/replicate", string(frame))
	if resp.StatusCode != 200 || !strings.Contains(body, `"accepted":1`) {
		t.Fatalf("replicate: %d %q", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/store/peek", `{"domain":"repl-1.example"}`); resp.StatusCode != 200 || !strings.Contains(body, `"cached":true`) {
		t.Fatalf("replicated key not warm: %d %q", resp.StatusCode, body)
	}

	// Anti-entropy feed: page the whole committed stream through the
	// cursor protocol and check it is ascending and complete.
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	want := st.DurableSeq()
	var after uint64
	var streamed int
	for {
		resp, err := http.Get(fmt.Sprintf("%s/v1/store/since?seq=%d&max=2", ts.URL, after))
		if err != nil {
			t.Fatal(err)
		}
		var sr struct {
			Durable uint64 `json:"durable"`
			More    bool   `json:"more"`
			Records []struct {
				Seq     uint64       `json:"seq"`
				Verdict core.Verdict `json:"verdict"`
			} `json:"records"`
		}
		err = json.NewDecoder(resp.Body).Decode(&sr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range sr.Records {
			if r.Seq <= after {
				t.Fatalf("since stream not ascending: seq %d after cursor %d", r.Seq, after)
			}
			after = r.Seq
			streamed++
		}
		if !sr.More {
			if sr.Durable != want {
				t.Fatalf("final page durable %d, want %d", sr.Durable, want)
			}
			break
		}
	}
	if uint64(streamed) != want {
		t.Fatalf("streamed %d records, want %d", streamed, want)
	}

	// The /metrics store block carries both the vstore counters and the
	// cluster-facing ones — the smoke budgets scrape exactly this shape.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Store StoreStats `json:"store"`
	}
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !m.Store.Loaded || m.Store.WarmBootEntries != 1 {
		t.Fatalf("metrics store block: loaded=%v warmBoot=%d", m.Store.Loaded, m.Store.WarmBootEntries)
	}
	if m.Store.ReplicationIn != 1 {
		t.Fatalf("metrics replicationIn %d, want 1", m.Store.ReplicationIn)
	}
	if m.Store.Appends == 0 {
		t.Fatal("metrics store block missing vstore counters")
	}
}

// TestStoreHandlersWithoutStore: a memory-only node refuses the
// anti-entropy feed (404, so peers treat it as storeless) but still
// accepts replication frames into its cache — a cache-only replica.
func TestStoreHandlersWithoutStore(t *testing.T) {
	_, ts := testServer(t, Config{NodeID: "n0", TopK: 50, Workers: 1})

	resp, err := http.Get(ts.URL + "/v1/store/since?seq=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("since without store: %d, want 404", resp.StatusCode)
	}

	br := api.BatchResponse{Count: 1, Results: []api.DetectResponse{{Verdict: vd("mem-only.example")}}}
	frame, err := api.AppendBatchResponse(nil, &br)
	if err != nil {
		t.Fatal(err)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/store/replicate", string(frame)); resp.StatusCode != 200 || !strings.Contains(body, `"accepted":1`) {
		t.Fatalf("replicate without store: %d %q", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/store/peek", `{"domain":"mem-only.example"}`); resp.StatusCode != 200 || !strings.Contains(body, `"cached":true`) {
		t.Fatalf("cache-only replica not warm: %d %q", resp.StatusCode, body)
	}
}
