package serve

import (
	"sync"
	"time"
)

// rateLimiter is a token bucket capping a node's admitted request rate.
// It models fixed per-node capacity: the verdict cache makes warm hits
// nearly free, so CPU-based admission alone never sheds on warm traffic
// — but a node still has an SLA-sized share of downstream resources
// (sockets, memory bandwidth, the hardware it was provisioned for). The
// cap is what makes horizontal scaling observable: N rate-capped
// workers behind the gateway sustain ~N× one worker's ceiling, which is
// exactly what BENCH_cluster.json measures.
//
// The bucket holds up to one second of rate (burst == rps): idle
// seconds bank capacity for bursts without letting the long-run rate
// exceed the cap.
type rateLimiter struct {
	mu     sync.Mutex
	rps    float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

// newRateLimiter builds a limiter admitting rps requests per second;
// rps <= 0 returns nil (unlimited).
func newRateLimiter(rps int) *rateLimiter {
	if rps <= 0 {
		return nil
	}
	l := &rateLimiter{rps: float64(rps), tokens: float64(rps), now: time.Now}
	l.last = l.now()
	return l
}

// Allow consumes one token if available.
func (l *rateLimiter) Allow() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	l.tokens += now.Sub(l.last).Seconds() * l.rps
	if l.tokens > l.rps {
		l.tokens = l.rps // burst cap: one second of rate
	}
	l.last = now
	if l.tokens < 1 {
		return false
	}
	l.tokens--
	return true
}
