package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"

	"idnlab/internal/feat"
)

// Shared trained model for the stat-serving tests: one training run,
// reused by every test in the package.
var statFixture struct {
	once  sync.Once
	model *feat.Model
	exs   []feat.Example
	err   error
}

func statModel(t *testing.T) (*feat.Model, []feat.Example) {
	t.Helper()
	statFixture.once.Do(func() {
		statFixture.model, _, statFixture.exs, statFixture.err =
			feat.TrainCorpus(2018, 50, feat.TrainConfig{})
	})
	if statFixture.err != nil {
		t.Fatalf("TrainCorpus: %v", statFixture.err)
	}
	return statFixture.model, statFixture.exs
}

// TestDetectWithStatModel covers the ensemble serving path: a
// structural homograph still flags (the prefilter must pass it), the
// verdict carries the ensemble fields, and a statistically flagged
// label reports the classifier's contribution breakdown.
func TestDetectWithStatModel(t *testing.T) {
	m, exs := statModel(t)
	_, ts := testServer(t, Config{TopK: 1000, Stat: m})

	var out struct {
		Flagged     bool             `json:"flagged"`
		Suspicion   string           `json:"suspicion"`
		Homograph   *json.RawMessage `json:"homograph"`
		Statistical *struct {
			Score float64 `json:"score"`
			Top   []struct {
				Feature string `json:"feature"`
			} `json:"top"`
		} `json:"statistical"`
		Confidence *struct {
			Homograph   float64 `json:"homograph"`
			Semantic    float64 `json:"semantic"`
			Statistical float64 `json:"statistical"`
		} `json:"confidence"`
	}
	resp, body := postJSON(t, ts.URL+"/v1/detect", `{"domain":"xn--pple-43d.com"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("unmarshal %q: %v", body, err)
	}
	if !out.Flagged || out.Homograph == nil {
		t.Fatalf("canonical homograph must still flag with the prefilter on: %s", body)
	}
	if out.Suspicion != "high" {
		t.Fatalf("structural match must be high suspicion, got %q", out.Suspicion)
	}
	if out.Confidence == nil || out.Confidence.Homograph <= 0 {
		t.Fatalf("ensemble confidence missing: %s", body)
	}

	// A statistically flagged attack label reports the third detector's
	// score and top contributing features.
	var attack *feat.Example
	for i := range exs {
		e := &exs[i]
		if e.Eval && e.Positive && m.Flag(m.ScoreLabel(e.Label, e.ACELabel, e.TLD)) {
			attack = e
			break
		}
	}
	if attack == nil {
		t.Fatal("no held-out positive flagged by the model")
	}
	resp, body = postJSON(t, ts.URL+"/v1/detect",
		`{"domain":"`+attack.ACELabel+`.`+attack.TLD+`"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("unmarshal %q: %v", body, err)
	}
	if out.Statistical == nil || !out.Flagged {
		t.Fatalf("flagged positive lost its statistical verdict: %s", body)
	}
	if out.Statistical.Score <= 0 || out.Statistical.Score > 1 {
		t.Fatalf("statistical score %v outside (0,1]", out.Statistical.Score)
	}
	if len(out.Statistical.Top) == 0 {
		t.Fatalf("statistical verdict missing contribution breakdown: %s", body)
	}
	if out.Suspicion == "" || out.Suspicion == "none" {
		t.Fatalf("flagged verdict carries suspicion %q", out.Suspicion)
	}
}

// TestDetectStatShed pins the shed path: a benign ASCII-adjacent label
// the model sheds gets suspicion "none", no detector fields, and the
// shed shows up in /metrics alongside the rescore_early_exit counter.
func TestDetectStatShed(t *testing.T) {
	m, exs := statModel(t)
	s, ts := testServer(t, Config{TopK: 1000, Stat: m})

	var shed *feat.Example
	for i := range exs {
		e := &exs[i]
		if !e.Positive && !m.PrefilterPass(m.ScoreLabel(e.Label, e.ACELabel, e.TLD)) &&
			strings.HasPrefix(e.ACELabel, "xn--") {
			shed = e
			break
		}
	}
	if shed == nil {
		t.Fatal("no benign IDN example shed by the model")
	}
	resp, body := postJSON(t, ts.URL+"/v1/detect",
		`{"domain":"`+shed.ACELabel+`.`+shed.TLD+`"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Suspicion string           `json:"suspicion"`
		Homograph *json.RawMessage `json:"homograph"`
		Flagged   bool             `json:"flagged"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("unmarshal %q: %v", body, err)
	}
	if out.Suspicion != "none" || out.Homograph != nil || out.Flagged {
		t.Fatalf("shed verdict: %s", body)
	}

	snap := s.Snapshot()
	if !snap.Detector.StatLoaded {
		t.Fatal("metrics must report the loaded model")
	}
	if snap.Detector.PrefilterShed == 0 {
		t.Fatal("shed counter did not move")
	}

	// The wire keys the satellite fix promises: rescore_early_exit plus
	// the prefilter split, decoded from the actual /metrics payload.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mbody := readAll(t, mresp)
	for _, key := range []string{`"rescore_early_exit"`, `"prefilter_pass"`, `"prefilter_shed"`, `"stat_loaded":true`} {
		if !strings.Contains(mbody, key) {
			t.Fatalf("/metrics missing %s: %s", key, mbody)
		}
	}
}

// TestStatDisabledWireUnchanged proves the ensemble fields stay off the
// wire entirely when no model is configured — the back-compat contract.
func TestStatDisabledWireUnchanged(t *testing.T) {
	_, ts := testServer(t, Config{TopK: 1000})
	_, body := postJSON(t, ts.URL+"/v1/detect", `{"domain":"xn--pple-43d.com"}`)
	for _, key := range []string{`"statistical"`, `"confidence"`, `"suspicion"`} {
		if strings.Contains(body, key) {
			t.Fatalf("model-less verdict leaked ensemble key %s: %s", key, body)
		}
	}
}
