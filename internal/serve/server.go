// Package serve is the online detection service: the paper's homograph
// (§VI) and Type-1 semantic (§VII) detectors, batch jobs everywhere else
// in this repository, hosted behind a long-running HTTP JSON API.
//
// Request path, in order:
//
//  1. Decode + normalize ONCE at the boundary (core.Normalize); the
//     normalized ACE form is the cache key and the detectors' input —
//     no per-detector IDNA round-trips.
//  2. Sharded LRU verdict cache with singleflight dedup: warm traffic
//     (zipfian, like real query streams) is served from memory without
//     touching a detector; concurrent identical misses share one
//     computation.
//  3. Admission control in front of detector work only: a fixed slot
//     pool plus a bounded deadline-aware wait queue. Saturation sheds
//     early with 429 + Retry-After; the queue cannot collapse.
//  4. Detection on a per-worker pool of detector clones — cheap because
//     Clone() shares all immutable state (PR 2); batches fan out
//     through the internal/pipeline engine (PR 1) with order-preserving
//     fan-in, so batch responses align with request order.
//
// Shutdown: Run drains on context cancellation — /healthz flips to 503
// (load balancers stop sending), in-flight requests finish within the
// drain budget, then the listener closes.
package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"idnlab/internal/candidx"
	"idnlab/internal/cluster"
	"idnlab/internal/core"
	"idnlab/internal/feat"
	"idnlab/internal/pipeline"
	"idnlab/internal/version"
	"idnlab/internal/vstore"
)

// Config parameterizes a Server. The zero value selects sane defaults
// for every field (see withDefaults).
type Config struct {
	// NodeID names this node in health bodies and cluster membership
	// (default: "<hostname>-<pid>").
	NodeID string
	// TopK is the brand-list depth defended (default 1000).
	TopK int
	// Threshold overrides the homograph SSIM threshold; 0 selects
	// core.DefaultSSIMThreshold.
	Threshold float64
	// Workers is the batch fan-out width and the size of the
	// single-request clone pool; <= 0 selects GOMAXPROCS.
	Workers int
	// CacheSize is the verdict-cache capacity in entries (default
	// 65536); CacheShards the shard count (default 16).
	CacheSize   int
	CacheShards int
	// MaxInflight bounds concurrently executing detector work (default
	// 4×Workers); MaxQueue bounds admission waiters (default
	// 16×MaxInflight); QueueWait caps time in the admission queue
	// (default 50ms).
	MaxInflight int
	MaxQueue    int
	QueueWait   time.Duration
	// RequestTimeout is the per-request deadline applied at the handler
	// boundary (default 1s).
	RequestTimeout time.Duration
	// MaxBatch bounds labels per batch request (default 256; larger
	// requests get 413). MaxBodyBytes bounds request bodies (default
	// 1MiB).
	MaxBatch     int
	MaxBodyBytes int64
	// DrainTimeout bounds graceful shutdown (default 5s).
	DrainTimeout time.Duration
	// MaxRPS caps the node's admitted request rate with a token bucket
	// (0 = unlimited). Unlike admission control — which bounds detector
	// *work* and lets warm cache hits through for free — the rate cap
	// models fixed per-node capacity, which is what makes horizontal
	// scaling measurable: N capped workers sustain ~N× one worker.
	MaxRPS int
	// Index, when set, is a precomputed homograph candidate index (built
	// offline by idnindex, loaded with candidx.LoadFile): every detector
	// instance routes through its O(1) candidate probes instead of the
	// sweep, and defends the index's embedded catalog instead of the
	// top-TopK list. Index stats surface at /metrics.
	Index *candidx.Index
	// Stat, when set, is a trained statistical model (loaded with
	// feat.LoadFile): every verdict becomes a three-detector ensemble
	// and the model gates the SSIM path as a learned prefilter.
	// Prefilter pass/shed counters surface at /metrics.
	Stat *feat.Model
	// Store, when set, is the node's durable verdict store
	// (vstore.Open): recovered records warm the cache before the
	// listener opens, every fresh verdict is appended write-through, and
	// the cluster paths (replication, read-repair, anti-entropy) turn on
	// when a Peer is attached. Store stats surface at /metrics.
	Store *vstore.Store
	// ReplicateInterval is the async replicator's flush cadence (default
	// 25ms); ReplicateQueue bounds verdicts queued between flushes
	// (default 4096 — overflow drops, anti-entropy repairs the gap).
	ReplicateInterval time.Duration
	ReplicateQueue    int
	// SyncInterval is the anti-entropy re-sync cadence after the initial
	// rejoin round (default 15s).
	SyncInterval time.Duration
	// RepairTimeout bounds one read-repair peek at a peer (default 75ms
	// — a probe must stay well under the detector pass it tries to save).
	RepairTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.NodeID == "" {
		c.NodeID = defaultNodeID()
	}
	if c.TopK <= 0 {
		c.TopK = 1000
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 65536
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4 * c.Workers
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 16 * c.MaxInflight
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 50 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.ReplicateInterval <= 0 {
		c.ReplicateInterval = 25 * time.Millisecond
	}
	if c.ReplicateQueue <= 0 {
		c.ReplicateQueue = 4096
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = 15 * time.Second
	}
	if c.RepairTimeout <= 0 {
		c.RepairTimeout = 75 * time.Millisecond
	}
	return c
}

// defaultNodeID derives a stable-enough identity for a node that was
// not given one: hostname plus pid survives restarts of the same
// deployment slot closely enough for human debugging, while explicit
// -node flags are what production clusters should use (ring placement
// follows the ID).
func defaultNodeID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "node"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// Server hosts the detectors online. Build with NewServer; it is safe
// for concurrent use by any number of HTTP handler goroutines.
type Server struct {
	cfg      Config
	cache    *VerdictCache
	adm      *Admission
	metrics  *serverMetrics
	proto    *core.Classifier
	pool     chan *core.Classifier
	batchEng *pipeline.Engine[string, batchEntry, *core.Classifier]
	limiter  *rateLimiter
	peer     atomic.Pointer[Peer]
	warmed   chan struct{} // closed when detector warm-up completes
	draining atomic.Bool

	// Durable-store integration (store.go). store is nil on nodes
	// running memory-only; everything below is inert then.
	store        *vstore.Store
	storeMx      storeMetrics
	repl         *replicator
	repairClient *http.Client
	syncedOnce   atomic.Bool // first anti-entropy round completed
	ringMu       sync.Mutex
	ring         *cluster.Ring
	ringEpoch    uint64
	peekMu       sync.Mutex
	peekState    map[string]peekBreaker
}

// batchEntry is one batch item's response, produced inside the engine.
type batchEntry struct {
	resp detectResponse
	ok   bool
}

// NewServer builds the service: one prototype classifier (brand index,
// confusable table, prerendered rasters — built once), a clone pool for
// single requests, and a shared pipeline engine for batch fan-out.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	var opts []core.HomographOption
	if cfg.Threshold > 0 {
		opts = append(opts, core.WithThreshold(cfg.Threshold))
	}
	dcfg := core.DetectorConfig{TopK: cfg.TopK, Options: opts, Index: cfg.Index, Stat: cfg.Stat}
	s := &Server{
		cfg:     cfg,
		cache:   NewVerdictCache(cfg.CacheSize, cfg.CacheShards),
		adm:     NewAdmission(cfg.MaxInflight, cfg.MaxQueue, cfg.QueueWait),
		metrics: newServerMetrics(),
		proto:   core.NewClassifier(dcfg),
		pool:    make(chan *core.Classifier, cfg.MaxInflight),
		limiter: newRateLimiter(cfg.MaxRPS),
		warmed:  make(chan struct{}),

		repairClient: &http.Client{Timeout: 5 * time.Second},
		peekState:    make(map[string]peekBreaker),
	}
	s.attachStore()
	// Batch fan-out reuses the streaming engine: per-worker clones of
	// the shared prototype, order-preserving fan-in so responses align
	// with request order, per-stage metrics surfaced at /metrics.
	s.batchEng = pipeline.New(
		pipeline.Config{Stage: "serve.batch", Workers: cfg.Workers, Batch: 8},
		func() *core.Classifier { return s.proto.Clone() },
		func(c *core.Classifier, raw string) (batchEntry, bool, error) {
			return batchEntry{resp: s.classifyRaw(c, raw), ok: true}, true, nil
		})
	go s.warmup()
	return s
}

// warmup primes the process-wide caches the first request would
// otherwise pay for — the prerendered brand rasters behind the
// homograph detector and the confusable table — by classifying one
// known homograph and one semantic canary. /readyz reports unready
// until it completes, so a load balancer never routes to a node whose
// first verdicts would be hundred-of-ms outliers.
func (s *Server) warmup() {
	defer close(s.warmed)
	c := s.proto.Clone()
	for _, canary := range []string{"xn--pple-43d.com", "apple邮箱.com", "example.com"} {
		if n, err := core.Normalize(canary); err == nil {
			_ = c.Verdict(n)
		}
	}
	s.giveBack(c)
}

// Warmed reports whether detector warm-up has completed.
func (s *Server) Warmed() bool {
	select {
	case <-s.warmed:
		return true
	default:
		return false
	}
}

// WaitWarm blocks until warm-up completes or ctx is cancelled.
func (s *Server) WaitWarm(ctx context.Context) error {
	select {
	case <-s.warmed:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// AttachPeer wires a cluster membership client into the server's
// /readyz and /clusterz views. Safe to call while serving.
func (s *Server) AttachPeer(p *Peer) { s.peer.Store(p) }

// borrow takes a classifier clone from the pool, cloning a fresh one
// when the pool is momentarily empty (bounded by admission, so the pool
// converges on MaxInflight clones).
func (s *Server) borrow() *core.Classifier {
	select {
	case c := <-s.pool:
		return c
	default:
		return s.proto.Clone()
	}
}

func (s *Server) giveBack(c *core.Classifier) {
	select {
	case s.pool <- c:
	default: // pool full; drop the clone
	}
}

// verdict serves one normalized domain through cache → singleflight →
// admission → detector. The ctx carries the request deadline; admission
// never waits past it.
func (s *Server) verdict(ctx context.Context, n core.NormalizedDomain) (core.Verdict, bool, error) {
	// Fast path: warm verdicts skip admission entirely — a cache hit is
	// a couple of map operations and must stay cheap at 10k+ req/s.
	if v, ok := s.cache.Get(n.ACE); ok {
		return v, true, nil
	}
	return s.cache.Do(n.ACE, func() (core.Verdict, error) {
		// Read-repair before recomputing: when this node is serving
		// failover traffic or just rebooted, a peer likely holds the
		// warm verdict and a bounded peek is far cheaper than a
		// detector pass (store.go).
		if v, ok := s.repairFetch(n.ACE); ok {
			return v, nil
		}
		release, err := s.adm.Admit(ctx)
		if err != nil {
			return core.Verdict{}, err
		}
		defer release()
		c := s.borrow()
		v := c.Verdict(n)
		s.giveBack(c)
		return v, nil
	})
}

// classifyRaw is the batch engine's unit of work: normalize once, then
// cache → detector. Batch items bypass admission (the batch request
// already holds a slot; fan-out width is bounded by the engine).
func (s *Server) classifyRaw(c *core.Classifier, raw string) detectResponse {
	n, err := core.Normalize(raw)
	if err != nil {
		return detectResponse{Input: raw, Error: err.Error()}
	}
	v, cached, err := s.cache.Do(n.ACE, func() (core.Verdict, error) {
		if rv, ok := s.repairFetch(n.ACE); ok {
			return rv, nil
		}
		return c.Verdict(n), nil
	})
	if err != nil { // unreachable: compute cannot fail
		return detectResponse{Input: raw, Error: err.Error()}
	}
	s.metrics.labels.Add(1)
	if v.Flagged() {
		s.metrics.flagged.Add(1)
	}
	return detectResponse{Verdict: v, Flagged: v.Flagged(), Cached: cached}
}

// Draining reports whether the server has begun graceful shutdown.
func (s *Server) Draining() bool { return s.draining.Load() }

// Snapshot assembles the full /metrics payload.
func (s *Server) Snapshot() MetricsSnapshot {
	m := s.metrics
	return MetricsSnapshot{
		Node:          s.cfg.NodeID,
		Version:       version.Version,
		UptimeSeconds: time.Since(m.start).Seconds(),
		Requests: RequestStats{
			Single:      m.single.Load(),
			Batch:       m.batch.Load(),
			Labels:      m.labels.Load(),
			Flagged:     m.flagged.Load(),
			Status2xx:   m.status2xx.Load(),
			Status4xx:   m.status4xx.Load(),
			Status429:   m.status429.Load(),
			Status5xx:   m.status5xx.Load(),
			RateLimited: m.rateLimited.Load(),
		},
		Latency:     m.latency.Stats(),
		Cache:       s.cache.Stats(),
		Admission:   s.adm.Stats(),
		BatchEngine: s.batchEng.Metrics().JSON(),
		Index:       indexStats(s.cfg.Index),
		Detector:    s.proto.DetectorStats(),
		Store:       s.storeStats(),
	}
}

// indexStats snapshots the candidate index's live counters for /metrics;
// the zero value (Loaded false) reports a sweep-only node.
func indexStats(ix *candidx.Index) IndexStats {
	if ix == nil {
		return IndexStats{}
	}
	lookups, hits := ix.Stats()
	st := IndexStats{
		Loaded:      true,
		Format:      string(ix.Bytes()[:8]),
		Fingerprint: fmt.Sprintf("%016x", ix.Fingerprint()),
		Brands:      len(ix.Brands()),
		Keys:        ix.KeyCount(),
		Lookups:     lookups,
		Hits:        hits,
	}
	if lookups > 0 {
		st.HitRate = float64(hits) / float64(lookups)
	}
	return st
}

// Run serves on addr until ctx is cancelled, then drains gracefully:
// /healthz flips to 503, in-flight requests get up to DrainTimeout to
// finish, and the listener closes. The returned listener address is
// reported through ready (useful with ":0"); pass nil if not needed.
func (s *Server) Run(ctx context.Context, addr string, ready chan<- net.Addr) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- ln.Addr()
	}
	httpSrv := &http.Server{
		Handler:           s.Handler(),
		ReadTimeout:       5 * time.Second,
		ReadHeaderTimeout: 2 * time.Second,
		WriteTimeout:      10 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.draining.Store(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		httpSrv.Close()
		return err
	}
	return nil
}
