package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionFastPath(t *testing.T) {
	a := NewAdmission(2, 0, 10*time.Millisecond)
	r1, err := a.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := a.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	r1()
	r2()
	if got := a.InFlight(); got != 0 {
		t.Fatalf("InFlight after release = %d, want 0", got)
	}
}

// TestAdmissionShedsWhenSaturated pins the load-shed contract: with all
// slots held and no queue, Admit returns ErrSaturated immediately.
func TestAdmissionShedsWhenSaturated(t *testing.T) {
	a := NewAdmission(1, 0, time.Minute)
	release, err := a.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := a.Admit(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("zero-queue shed took %s; must be immediate", waited)
	}
	release()
	if st := a.Stats(); st.Shed != 1 || st.Admitted != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestAdmissionQueueTimeout: a queued waiter is shed after maxWait.
func TestAdmissionQueueTimeout(t *testing.T) {
	a := NewAdmission(1, 4, 20*time.Millisecond)
	release, _ := a.Admit(context.Background())
	defer release()
	start := time.Now()
	if _, err := a.Admit(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	if waited := time.Since(start); waited < 15*time.Millisecond {
		t.Fatalf("shed after %s, want ~20ms queue wait first", waited)
	}
}

// TestAdmissionDeadlineAware: a waiter whose context deadline is shorter
// than the queue wait is bounded by the deadline, and one whose deadline
// has already passed is shed without waiting.
func TestAdmissionDeadlineAware(t *testing.T) {
	a := NewAdmission(1, 4, time.Minute)
	release, _ := a.Admit(context.Background())
	defer release()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := a.Admit(ctx)
	if waited := time.Since(start); waited > 10*time.Second {
		t.Fatalf("deadline-bounded wait took %s", waited)
	}
	if !errors.Is(err, ErrSaturated) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want saturation or deadline", err)
	}

	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := a.Admit(expired); !errors.Is(err, ErrSaturated) {
		t.Fatalf("expired-deadline err = %v, want ErrSaturated", err)
	}
}

// TestAdmissionQueueBound: waiters beyond maxQueue shed immediately even
// though earlier waiters are still queued.
func TestAdmissionQueueBound(t *testing.T) {
	a := NewAdmission(1, 1, time.Minute)
	release, _ := a.Admit(context.Background())

	queued := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := a.Admit(context.Background()) // occupies the one queue seat
		queued <- err
	}()
	// Wait until the waiter is actually queued.
	deadline := time.Now().Add(2 * time.Second)
	for a.Queued() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if a.Queued() != 1 {
		t.Fatal("waiter never queued")
	}
	if _, err := a.Admit(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("over-queue err = %v, want ErrSaturated", err)
	}
	release() // the queued waiter gets the slot
	if err := <-queued; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	wg.Wait()
}
