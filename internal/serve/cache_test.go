package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"idnlab/internal/core"
)

func vd(domain string) core.Verdict {
	return core.Verdict{Domain: domain, Unicode: domain}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewVerdictCache(64, 4)
	if _, ok := c.Get("a.com"); ok {
		t.Fatal("hit on empty cache")
	}
	v, hit, err := c.Do("a.com", func() (core.Verdict, error) { return vd("a.com"), nil })
	if err != nil || hit || v.Domain != "a.com" {
		t.Fatalf("first Do: v=%v hit=%v err=%v", v, hit, err)
	}
	v, hit, err = c.Do("a.com", func() (core.Verdict, error) {
		t.Fatal("compute ran on warm key")
		return core.Verdict{}, nil
	})
	if err != nil || !hit || v.Domain != "a.com" {
		t.Fatalf("second Do: v=%v hit=%v err=%v", v, hit, err)
	}
	if _, ok := c.Get("a.com"); !ok {
		t.Fatal("Get missed after Do stored")
	}
	st := c.Stats()
	if st.Misses != 2 || st.Hits != 2 { // initial Get + first Do miss; second Do + Get hit
		t.Fatalf("stats: %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 1 shard × capacity 4: inserting 5 keys must evict exactly the
	// least recently used.
	c := NewVerdictCache(4, 1)
	for i := 0; i < 4; i++ {
		k := fmt.Sprintf("k%d.com", i)
		c.Do(k, func() (core.Verdict, error) { return vd(k), nil })
	}
	// Touch k0 so k1 becomes LRU.
	if _, ok := c.Get("k0.com"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.Do("k4.com", func() (core.Verdict, error) { return vd("k4.com"), nil })
	if _, ok := c.Get("k1.com"); ok {
		t.Fatal("k1 should have been evicted (LRU)")
	}
	for _, k := range []string{"k0.com", "k2.com", "k3.com", "k4.com"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s unexpectedly evicted", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Size != 4 {
		t.Fatalf("stats after eviction: %+v", st)
	}
}

func TestCacheHitRate(t *testing.T) {
	c := NewVerdictCache(128, 2)
	for i := 0; i < 10; i++ {
		c.Do("hot.com", func() (core.Verdict, error) { return vd("hot.com"), nil })
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 9 {
		t.Fatalf("hot-key stats: %+v", st)
	}
	if got, want := st.HitRate, 0.9; got != want {
		t.Fatalf("hit rate = %v, want %v", got, want)
	}
}

// TestCacheSingleflight pins the dedup guarantee: N concurrent Do calls
// for one cold key run compute exactly once.
func TestCacheSingleflight(t *testing.T) {
	c := NewVerdictCache(64, 4)
	const n = 32
	var computes atomic.Int32
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			v, _, err := c.Do("cold.com", func() (core.Verdict, error) {
				computes.Add(1)
				return vd("cold.com"), nil
			})
			if err != nil || v.Domain != "cold.com" {
				t.Errorf("Do: v=%v err=%v", v, err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		// The leader holds the in-flight slot until compute finishes;
		// every waiter must coalesce onto it.
		t.Fatalf("compute ran %d times, want 1", got)
	}
	st := c.Stats()
	if st.Coalesced+st.Hits != n-1 {
		t.Fatalf("coalesced+hits = %d, want %d (stats %+v)", st.Coalesced+st.Hits, n-1, st)
	}
}

// TestCacheErrorNotCached pins that a failed compute is retried rather
// than negatively cached.
func TestCacheErrorNotCached(t *testing.T) {
	c := NewVerdictCache(16, 1)
	boom := fmt.Errorf("boom")
	if _, _, err := c.Do("x.com", func() (core.Verdict, error) { return core.Verdict{}, boom }); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	ran := false
	if _, _, err := c.Do("x.com", func() (core.Verdict, error) { ran = true; return vd("x.com"), nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("compute not retried after error")
	}
}

func TestCacheShardRounding(t *testing.T) {
	c := NewVerdictCache(100, 5)
	if got := len(c.shards); got != 8 {
		t.Fatalf("shards = %d, want 8 (next power of two)", got)
	}
}
