package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"idnlab/internal/api"
	"idnlab/internal/cluster"
	"idnlab/internal/core"
	"idnlab/internal/vstore"
)

// Durable-store integration: how a worker's verdict-cache partition
// survives the fleet's churn.
//
//   - Write-through: every freshly computed verdict is appended to the
//     warm log (group-committed) and offered to the async replicator,
//     which ships it to the key's other HRW candidate (R=2 total
//     copies: the owner's log + the replica's cache/log).
//   - Warm boot: NewServer replays the recovered records into the cache
//     before the listener opens, so a restarted worker serves its old
//     partition warm instead of stampeding the SSIM path.
//   - Read-repair: a miss on a key whose candidate list names a live
//     peer probes that peer's cache (POST /v1/peek) before recomputing
//     — the promoted replica serves its warm copy, and a freshly
//     rebooted owner backfills from its replica.
//   - Anti-entropy: on (re)join the worker streams each peer's log
//     suffix since its persisted watermark (GET /v1/store/since) and
//     ingests the records it is owner or replica for, converging the
//     downtime gap; afterwards it re-syncs every SyncInterval.
//
// All cluster-facing decisions route through the worker's own
// epoch-cached view ring (the same rendezvous hash the gateway routes
// with), so placement agrees across the tier without coordination.

// storeMetrics are the replication/repair/anti-entropy counters that
// ride alongside the vstore.Stats block in /metrics.
type storeMetrics struct {
	replicationIn      atomic.Uint64
	replicationOut     atomic.Uint64
	replicationDropped atomic.Uint64
	replicationErrors  atomic.Uint64

	repairPeeks  atomic.Uint64
	repairHits   atomic.Uint64
	repairMisses atomic.Uint64

	syncRounds   atomic.Uint64
	syncIngested atomic.Uint64
	syncSkipped  atomic.Uint64
	syncErrors   atomic.Uint64
}

// StoreStats is the /metrics wire form: the embedded vstore counters
// plus the cluster-facing replication, read-repair and anti-entropy
// counters. The store-smoke budget assertions scrape exactly this
// block, never log lines.
type StoreStats struct {
	vstore.Stats
	ReplicationIn      uint64 `json:"replicationIn"`
	ReplicationOut     uint64 `json:"replicationOut"`
	ReplicationDropped uint64 `json:"replicationDropped"`
	ReplicationErrors  uint64 `json:"replicationErrors"`
	RepairPeeks        uint64 `json:"repairPeeks"`
	RepairHits         uint64 `json:"repairHits"`
	RepairMisses       uint64 `json:"repairMisses"`
	SyncRounds         uint64 `json:"syncRounds"`
	SyncIngested       uint64 `json:"syncIngested"`
	SyncSkipped        uint64 `json:"syncSkipped"`
	SyncErrors         uint64 `json:"syncErrors"`
}

func (s *Server) storeStats() StoreStats {
	st := StoreStats{
		ReplicationIn:      s.storeMx.replicationIn.Load(),
		ReplicationOut:     s.storeMx.replicationOut.Load(),
		ReplicationDropped: s.storeMx.replicationDropped.Load(),
		ReplicationErrors:  s.storeMx.replicationErrors.Load(),
		RepairPeeks:        s.storeMx.repairPeeks.Load(),
		RepairHits:         s.storeMx.repairHits.Load(),
		RepairMisses:       s.storeMx.repairMisses.Load(),
		SyncRounds:         s.storeMx.syncRounds.Load(),
		SyncIngested:       s.storeMx.syncIngested.Load(),
		SyncSkipped:        s.storeMx.syncSkipped.Load(),
		SyncErrors:         s.storeMx.syncErrors.Load(),
	}
	if s.store != nil {
		st.Stats = s.store.Stats()
	}
	return st
}

// attachStore wires cfg.Store into the server at construction: warm
// boot, write-through hook, and the compactor's cache walker.
func (s *Server) attachStore() {
	s.store = s.cfg.Store
	if s.store == nil {
		return
	}
	s.repl = newReplicator(s, s.cfg.ReplicateQueue)
	for _, r := range s.store.TakeRecovered() {
		s.cache.Put(r.Verdict.Domain, r.Verdict, r.Seq)
	}
	s.cache.SetWriteThrough(func(key string, v core.Verdict) uint64 {
		seq := s.store.Append(v)
		s.repl.offer(v)
		return seq
	})
	s.store.SetWalker(func(emit func(key string, v core.Verdict, seq uint64)) {
		s.cache.Walk(func(key string, v core.Verdict, seq uint64) bool {
			emit(key, v, seq)
			return true
		})
	})
}

// CloseStore flushes and closes the durable store (idempotent, nil-safe).
// Call after Run returns — and in tests before restarting a worker on
// the same directory, so the old committer releases the files.
func (s *Server) CloseStore() error {
	if s.store == nil {
		return nil
	}
	return s.store.Close()
}

// selfID is this node's identity in the cluster view: the Peer's ID
// when one is attached (idnserve may register under its advertise
// address rather than cfg.NodeID), else cfg.NodeID.
func (s *Server) selfID() string {
	if p := s.peer.Load(); p != nil {
		return p.NodeID()
	}
	return s.cfg.NodeID
}

// viewRing returns the rendezvous ring over the worker's current
// membership view (non-dead nodes), cached by view epoch so the miss
// path never rebuilds it under steady state. nil when the worker is
// standalone or the view is empty.
func (s *Server) viewRing() *cluster.Ring {
	p := s.peer.Load()
	if p == nil {
		return nil
	}
	view := p.Status().View
	s.ringMu.Lock()
	defer s.ringMu.Unlock()
	if s.ring != nil && s.ringEpoch == view.Epoch {
		return s.ring
	}
	nodes := make([]cluster.NodeInfo, 0, len(view.Nodes))
	for _, n := range view.Nodes {
		if n.State != cluster.StateDead {
			nodes = append(nodes, n)
		}
	}
	if len(nodes) == 0 {
		return nil
	}
	s.ring, s.ringEpoch = cluster.NewRing(nodes), view.Epoch
	return s.ring
}

// RunStoreSync runs the store's cluster side — the async replicator and
// the anti-entropy loop — until ctx is cancelled. Start it alongside
// Peer.Run on workers that have both a store and a gateway.
func (s *Server) RunStoreSync(ctx context.Context) {
	if s.store == nil {
		return
	}
	s.repl.started.Store(true)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); s.repl.run(ctx) }()
	go func() { defer wg.Done(); s.runAntiEntropy(ctx) }()
	wg.Wait()
	s.repl.started.Store(false)
}

// --- Replication (owner → replica, async) -----------------------------

// replicator ships freshly computed verdicts to each key's other HRW
// candidate. Fire-and-forget with a bounded queue: replication is an
// optimization (anti-entropy converges whatever it drops), so it must
// never add latency or memory pressure to the serving path.
type replicator struct {
	srv     *Server
	ch      chan core.Verdict
	client  *http.Client
	started atomic.Bool
}

func newReplicator(s *Server, queue int) *replicator {
	if queue <= 0 {
		queue = 4096
	}
	return &replicator{
		srv:    s,
		ch:     make(chan core.Verdict, queue),
		client: &http.Client{Timeout: 2 * time.Second},
	}
}

// offer enqueues a fresh verdict for replication, dropping (and
// counting) when the queue is full or the replicator is not running.
func (r *replicator) offer(v core.Verdict) {
	if !r.started.Load() {
		return
	}
	select {
	case r.ch <- v:
	default:
		r.srv.storeMx.replicationDropped.Add(1)
	}
}

func (r *replicator) run(ctx context.Context) {
	interval := r.srv.cfg.ReplicateInterval
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			r.flush(ctx)
		}
	}
}

// replicateBatchMax bounds entries per replication POST; a flush that
// drained more issues several requests per target.
const replicateBatchMax = 256

func (r *replicator) flush(ctx context.Context) {
	var items []core.Verdict
	for len(items) < cap(r.ch) {
		select {
		case v := <-r.ch:
			items = append(items, v)
		default:
			goto drained
		}
	}
drained:
	if len(items) == 0 {
		return
	}
	ring := r.srv.viewRing()
	if ring == nil || ring.Len() < 2 {
		r.srv.storeMx.replicationDropped.Add(uint64(len(items)))
		return
	}
	self := r.srv.selfID()
	type batch struct {
		addr string
		resp []api.DetectResponse
	}
	perTarget := make(map[string]*batch)
	for _, v := range items {
		for _, c := range ring.Candidates(v.Domain, 2) {
			if c.ID == self {
				continue
			}
			b := perTarget[c.ID]
			if b == nil {
				b = &batch{addr: c.Addr}
				perTarget[c.ID] = b
			}
			b.resp = append(b.resp, api.DetectResponse{Verdict: v, Flagged: v.Flagged()})
		}
	}
	for _, b := range perTarget {
		for off := 0; off < len(b.resp); off += replicateBatchMax {
			end := off + replicateBatchMax
			if end > len(b.resp) {
				end = len(b.resp)
			}
			r.send(ctx, b.addr, b.resp[off:end])
		}
	}
}

func (r *replicator) send(ctx context.Context, addr string, resps []api.DetectResponse) {
	br := api.BatchResponse{Count: len(resps), Results: resps}
	for i := range resps {
		if resps[i].Flagged {
			br.Flagged++
		}
	}
	body, err := api.AppendBatchResponse(nil, &br)
	if err != nil {
		r.srv.storeMx.replicationErrors.Add(1)
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+addr+"/v1/store/replicate", bytes.NewReader(body))
	if err != nil {
		r.srv.storeMx.replicationErrors.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		r.srv.storeMx.replicationErrors.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		r.srv.storeMx.replicationErrors.Add(1)
		return
	}
	r.srv.storeMx.replicationOut.Add(uint64(len(resps)))
}

// ingest inserts an externally computed verdict (replication frame,
// anti-entropy record, read-repair backfill): append to the local log
// for a fresh local sequence, then insert warm. Keys already cached are
// skipped — that dedup is what keeps replication and repeated sync
// rounds from growing the log without bound.
func (s *Server) ingest(v core.Verdict) bool {
	if v.Domain == "" {
		return false
	}
	if _, ok := s.cache.Peek(v.Domain); ok {
		return false
	}
	var seq uint64
	if s.store != nil {
		seq = s.store.Append(v)
	}
	s.cache.Put(v.Domain, v, seq)
	return true
}

// handleReplicate receives async replication frames: the body is a
// BatchResponse (the same zero-alloc codec the wire path uses), each
// result a verdict the sender computed for a key this node is a
// candidate for.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: err.Error()})
		return
	}
	br, err := api.DecodeBatchResponseBytes(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	accepted := 0
	for i := range br.Results {
		if br.Results[i].Error != "" {
			continue
		}
		if s.ingest(br.Results[i].Verdict) {
			accepted++
		}
	}
	s.storeMx.replicationIn.Add(uint64(accepted))
	writeJSON(w, http.StatusOK, map[string]int{"accepted": accepted})
}

// --- Read-repair (peek a peer's cache before recomputing) -------------

// handlePeek answers "is this key warm here" without computing: 200
// with the cached verdict, 404 otherwise. Deliberately outside
// instrument() — internal probes must not pollute the client-facing
// latency histogram or status counters.
func (s *Server) handlePeek(w http.ResponseWriter, r *http.Request) {
	req, err := decodeDetectRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, err)
		return
	}
	n, err := core.Normalize(req.Domain)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	v, ok := s.cache.Peek(n.ACE)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "not cached"})
		return
	}
	resp := detectResponse{Verdict: v, Flagged: v.Flagged(), Cached: true}
	api.WriteDetect(w, http.StatusOK, &resp)
}

// repairFetch is the miss path's backfill probe: when this worker is
// not the key's steady-state owner (failover traffic landed here), or
// it has not yet completed a first anti-entropy round (fresh boot or
// rejoin), ask the key's other candidates for their warm copy before
// paying a detector pass. Bounded by RepairTimeout per probe and a
// per-peer cooldown after consecutive failures, so a dead candidate
// costs at most a couple of probes during the view-lag window.
func (s *Server) repairFetch(ace string) (core.Verdict, bool) {
	if s.store == nil {
		return core.Verdict{}, false
	}
	ring := s.viewRing()
	if ring == nil || ring.Len() < 2 {
		return core.Verdict{}, false
	}
	cands := ring.Candidates(ace, 2)
	self := s.selfID()
	if cands[0].ID == self && s.syncedOnce.Load() {
		// Steady-state owner miss: a genuinely new key. No peer can have
		// it (replication flows owner → replica), so probing is waste.
		return core.Verdict{}, false
	}
	probed := false
	for _, c := range cands {
		if c.ID == self || s.peekOnCooldown(c.ID) {
			continue
		}
		probed = true
		s.storeMx.repairPeeks.Add(1)
		v, ok, err := s.peekPeer(c.Addr, ace)
		if err != nil {
			s.peekFailure(c.ID)
			continue
		}
		s.peekSuccess(c.ID)
		if ok {
			s.storeMx.repairHits.Add(1)
			return v, true
		}
	}
	if probed {
		s.storeMx.repairMisses.Add(1)
	}
	return core.Verdict{}, false
}

func (s *Server) peekPeer(addr, ace string) (core.Verdict, bool, error) {
	body := api.AppendDetectRequest(nil, &api.DetectRequest{Domain: ace})
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RepairTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+addr+"/v1/store/peek", bytes.NewReader(body))
	if err != nil {
		return core.Verdict{}, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.repairClient.Do(req)
	if err != nil {
		return core.Verdict{}, false, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusNotFound {
		return core.Verdict{}, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return core.Verdict{}, false, fmt.Errorf("peek %s: status %d", addr, resp.StatusCode)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		return core.Verdict{}, false, err
	}
	dr, err := api.DecodeDetectResponseBytes(raw)
	if err != nil {
		return core.Verdict{}, false, err
	}
	if dr.Verdict.Domain == "" {
		return core.Verdict{}, false, nil
	}
	return dr.Verdict, true, nil
}

// peekBreaker is the per-peer probe breaker state.
type peekBreaker struct {
	fails int
	until time.Time
}

// peekOnCooldown / peekFailure / peekSuccess implement the tiny
// per-peer breaker: two consecutive probe failures silence a peer for
// two seconds (it is most likely the dead node the view has not yet
// demoted).
func (s *Server) peekOnCooldown(id string) bool {
	s.peekMu.Lock()
	defer s.peekMu.Unlock()
	st, ok := s.peekState[id]
	return ok && st.fails >= 2 && time.Now().Before(st.until)
}

func (s *Server) peekFailure(id string) {
	s.peekMu.Lock()
	defer s.peekMu.Unlock()
	st := s.peekState[id]
	st.fails++
	if st.fails >= 2 {
		st.until = time.Now().Add(2 * time.Second)
		st.fails = 2
	}
	s.peekState[id] = st
}

func (s *Server) peekSuccess(id string) {
	s.peekMu.Lock()
	defer s.peekMu.Unlock()
	delete(s.peekState, id)
}

// --- Anti-entropy (log-suffix streaming on rejoin) --------------------

// sinceRecord / sinceResponse are the /v1/store/since wire form. This
// is a rejoin-time bulk path, not the request hot path, so it uses the
// stdlib encoder (records carry a sequence number the zero-alloc
// response codec has no field for).
type sinceRecord struct {
	Seq     uint64       `json:"seq"`
	Verdict core.Verdict `json:"verdict"`
}

type sinceResponse struct {
	Node    string        `json:"node"`
	Durable uint64        `json:"durable"`
	More    bool          `json:"more"`
	Records []sinceRecord `json:"records"`
}

const (
	syncPageSize = 2048
	syncMaxPages = 32
)

// handleStoreSince streams the log suffix after ?seq=N — the
// anti-entropy feed a rejoining peer converges from. Page size is
// bounded; More tells the caller to come back with the last record's
// sequence.
func (s *Server) handleStoreSince(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no durable store on this node"})
		return
	}
	var after uint64
	if v := r.URL.Query().Get("seq"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &after); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad seq"})
			return
		}
	}
	max := syncPageSize
	if v := r.URL.Query().Get("max"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &max); err != nil || max <= 0 || max > syncPageSize {
			max = syncPageSize
		}
	}
	recs, durable, more, err := s.store.Since(after, max)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	resp := sinceResponse{Node: s.cfg.NodeID, Durable: durable, More: more, Records: make([]sinceRecord, len(recs))}
	for i, rec := range recs {
		resp.Records[i] = sinceRecord{Seq: rec.Seq, Verdict: rec.Verdict}
	}
	writeJSON(w, http.StatusOK, resp)
}

// runAntiEntropy performs an initial sync as soon as the worker has a
// populated view (the rejoin path: warm-boot covers everything up to
// the crash, this covers the downtime gap), then re-syncs every
// SyncInterval to bound drift from dropped replication frames.
func (s *Server) runAntiEntropy(ctx context.Context) {
	wm := s.loadWatermarks()
	// Wait for the first joined view before the initial round.
	for s.viewRing() == nil {
		select {
		case <-ctx.Done():
			return
		case <-time.After(200 * time.Millisecond):
		}
	}
	for {
		if s.syncRound(ctx, wm) {
			s.syncedOnce.Store(true)
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(s.cfg.SyncInterval):
		}
	}
}

// syncRound streams each live peer's suffix and ingests the records
// this node is a candidate for. Returns true when every peer was
// drained without error.
func (s *Server) syncRound(ctx context.Context, wm map[string]uint64) bool {
	ring := s.viewRing()
	if ring == nil {
		return false
	}
	p := s.peer.Load()
	if p == nil {
		return false
	}
	view := p.Status().View
	self := s.selfID()
	clean := true
	for _, node := range view.Nodes {
		if node.ID == self || node.State == cluster.StateDead || node.Addr == "" {
			continue
		}
		if !s.syncPeer(ctx, ring, node, wm) {
			clean = false
		}
		if ctx.Err() != nil {
			return false
		}
	}
	s.storeMx.syncRounds.Add(1)
	s.saveWatermarks(wm)
	return clean
}

// syncPeer drains one peer's suffix (bounded pages per round).
func (s *Server) syncPeer(ctx context.Context, ring *cluster.Ring, node cluster.NodeInfo, wm map[string]uint64) bool {
	self := s.selfID()
	after := wm[node.ID]
	for page := 0; page < syncMaxPages; page++ {
		reqCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
		req, err := http.NewRequestWithContext(reqCtx, http.MethodGet,
			fmt.Sprintf("http://%s/v1/store/since?seq=%d&max=%d", node.Addr, after, syncPageSize), nil)
		if err != nil {
			cancel()
			s.storeMx.syncErrors.Add(1)
			return false
		}
		resp, err := s.repairClient.Do(req)
		if err != nil {
			cancel()
			s.storeMx.syncErrors.Add(1)
			return false
		}
		if resp.StatusCode == http.StatusNotFound {
			// Peer runs without a store; nothing to stream.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			cancel()
			return true
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			cancel()
			s.storeMx.syncErrors.Add(1)
			return false
		}
		var sr sinceResponse
		err = json.NewDecoder(resp.Body).Decode(&sr)
		resp.Body.Close()
		cancel()
		if err != nil {
			s.storeMx.syncErrors.Add(1)
			return false
		}
		for _, rec := range sr.Records {
			if !s.candidateFor(ring, rec.Verdict.Domain, self) {
				s.storeMx.syncSkipped.Add(1)
				continue
			}
			if s.ingest(rec.Verdict) {
				s.storeMx.syncIngested.Add(1)
			} else {
				s.storeMx.syncSkipped.Add(1)
			}
		}
		if len(sr.Records) > 0 {
			after = sr.Records[len(sr.Records)-1].Seq
		}
		if !sr.More {
			wm[node.ID] = sr.Durable
			return true
		}
		wm[node.ID] = after
	}
	return true // budget exhausted this round; the next round resumes
}

// candidateFor reports whether self is in the key's R=2 candidate list
// — the placement filter that keeps anti-entropy from copying the whole
// cluster onto every node.
func (s *Server) candidateFor(ring *cluster.Ring, key, self string) bool {
	if key == "" {
		return false
	}
	for _, c := range ring.Candidates(key, 2) {
		if c.ID == self {
			return true
		}
	}
	return false
}

// Watermarks persist per-peer sync cursors across restarts (same
// atomic temp+rename discipline as the snapshot cutover). Losing the
// file is safe — the next round re-streams from zero and ingest dedup
// absorbs the replay.
func (s *Server) watermarkPath() string {
	return filepath.Join(s.store.Stats().Dir, "peers.json")
}

func (s *Server) loadWatermarks() map[string]uint64 {
	wm := make(map[string]uint64)
	if s.store == nil {
		return wm
	}
	buf, err := os.ReadFile(s.watermarkPath())
	if err != nil {
		return wm
	}
	if json.Unmarshal(buf, &wm) != nil {
		return make(map[string]uint64)
	}
	return wm
}

func (s *Server) saveWatermarks(wm map[string]uint64) {
	if s.store == nil {
		return
	}
	buf, err := json.Marshal(wm)
	if err != nil {
		return
	}
	path := s.watermarkPath()
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return
	}
	_, werr := f.Write(buf)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return
	}
	os.Rename(tmp, path)
}
