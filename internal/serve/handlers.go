package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"idnlab/internal/core"
	"idnlab/internal/pipeline"
)

// API wire types. The response embeds the core.Verdict fields plus the
// serving-layer annotations (flagged, cached); error entries carry the
// offending input back so batch responses stay aligned with the request.

// detectRequest is the POST /v1/detect body.
type detectRequest struct {
	Domain string `json:"domain"`
}

// batchRequest is the POST /v1/detect/batch body.
type batchRequest struct {
	Domains []string `json:"domains"`
}

// detectResponse is one classified domain. For invalid inputs only
// Input and Error are set.
type detectResponse struct {
	core.Verdict
	Flagged bool   `json:"flagged"`
	Cached  bool   `json:"cached"`
	Input   string `json:"input,omitempty"`
	Error   string `json:"error,omitempty"`
}

// batchResponse is the POST /v1/detect/batch reply; Results aligns
// index-for-index with the request's Domains.
type batchResponse struct {
	Count   int              `json:"count"`
	Flagged int              `json:"flagged"`
	Results []detectResponse `json:"results"`
}

// errorResponse is the JSON body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}

// Decode errors, distinguished so handlers map them to status codes.
var (
	errMalformed = errors.New("malformed request body")
	errTooLarge  = errors.New("request body too large")
)

// decodeJSON strictly decodes one JSON object from r into dst: unknown
// fields, trailing garbage and oversized bodies (surfaced by the
// handler's http.MaxBytesReader) are all rejected — a detection API
// should never guess at malformed input.
func decodeJSON(r io.Reader, dst any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return errTooLarge
		}
		return fmt.Errorf("%w: %v", errMalformed, err)
	}
	if dec.More() {
		return fmt.Errorf("%w: trailing data", errMalformed)
	}
	return nil
}

// decodeDetectRequest parses and validates a single-detect body. It is
// the surface the fuzz harness drives: any byte sequence must produce
// either a request or an error, never a panic.
func decodeDetectRequest(r io.Reader) (detectRequest, error) {
	var req detectRequest
	if err := decodeJSON(r, &req); err != nil {
		return detectRequest{}, err
	}
	if req.Domain == "" {
		return detectRequest{}, fmt.Errorf("%w: missing \"domain\"", errMalformed)
	}
	return req, nil
}

// decodeBatchRequest parses and validates a batch body against the
// configured size cap. Exceeding the cap is errBatchTooLarge (413), not
// a 400: the request is well-formed, just oversized.
var errBatchTooLarge = errors.New("batch exceeds configured maximum")

func decodeBatchRequest(r io.Reader, maxBatch int) (batchRequest, error) {
	var req batchRequest
	if err := decodeJSON(r, &req); err != nil {
		return batchRequest{}, err
	}
	if len(req.Domains) == 0 {
		return batchRequest{}, fmt.Errorf("%w: missing \"domains\"", errMalformed)
	}
	if len(req.Domains) > maxBatch {
		return batchRequest{}, fmt.Errorf("%w: %d > %d", errBatchTooLarge, len(req.Domains), maxBatch)
	}
	return req, nil
}

// Handler returns the service's HTTP mux:
//
//	POST /v1/detect        {"domain":"..."}            → detectResponse
//	POST /v1/detect/batch  {"domains":["...",...]}     → batchResponse
//	GET  /healthz                                      → ok | draining
//	GET  /metrics                                      → MetricsSnapshot
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/detect", s.instrument(s.handleDetect))
	mux.HandleFunc("POST /v1/detect/batch", s.instrument(s.handleBatch))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// statusWriter captures the response code for the status counters.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the latency histogram, status
// counters, and the per-request deadline.
func (s *Server) instrument(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r.WithContext(ctx))
		s.metrics.observeStatus(sw.code)
		s.metrics.latency.observe(time.Since(start))
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps the error taxonomy to status codes: decode errors are
// 400/413, admission saturation is 429 + Retry-After, deadline blowouts
// are 503.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errBatchTooLarge), errors.Is(err, errTooLarge):
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: err.Error()})
	case errors.Is(err, errMalformed):
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrSaturated):
		w.Header().Set("Retry-After", strconv.Itoa(s.adm.RetryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "deadline exceeded"})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	s.metrics.single.Add(1)
	req, err := decodeDetectRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, err)
		return
	}
	n, err := core.Normalize(req.Domain)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("invalid domain %q: %v", req.Domain, err),
		})
		return
	}
	v, cached, err := s.verdict(r.Context(), n)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.metrics.labels.Add(1)
	if v.Flagged() {
		s.metrics.flagged.Add(1)
	}
	writeJSON(w, http.StatusOK, detectResponse{Verdict: v, Flagged: v.Flagged(), Cached: cached})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.batch.Add(1)
	req, err := decodeBatchRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), s.cfg.MaxBatch)
	if err != nil {
		s.writeError(w, err)
		return
	}
	// One admission slot covers the whole batch; the engine bounds the
	// fan-out width internally.
	release, err := s.adm.Admit(r.Context())
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer release()
	resp := batchResponse{Count: len(req.Domains), Results: make([]detectResponse, 0, len(req.Domains))}
	err = s.batchEng.Stream(r.Context(), pipeline.FromSlice(req.Domains), func(e batchEntry) error {
		if e.resp.Flagged {
			resp.Flagged++
		}
		resp.Results = append(resp.Results, e.resp)
		return nil
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}
