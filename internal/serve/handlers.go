package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"idnlab/internal/api"
	"idnlab/internal/core"
	"idnlab/internal/pipeline"
	"idnlab/internal/version"
)

// The wire format lives in internal/api so the cluster gateway speaks
// byte-identical request/response bodies (same strict decoder, same
// error taxonomy). The aliases below keep the serving layer's internals
// and tests reading naturally.

type (
	detectRequest  = api.DetectRequest
	batchRequest   = api.BatchRequest
	detectResponse = api.DetectResponse
	batchResponse  = api.BatchResponse
	errorResponse  = api.ErrorResponse
)

var (
	errMalformed     = api.ErrMalformed
	errTooLarge      = api.ErrTooLarge
	errBatchTooLarge = api.ErrBatchTooLarge
)

// decodeDetectRequest and decodeBatchRequest are the fuzz-harness entry
// points (FuzzDecodeDetect / FuzzDecodeBatch drive them with arbitrary
// bytes); they delegate to the shared strict decoder.
func decodeDetectRequest(r io.Reader) (detectRequest, error) {
	return api.DecodeDetect(r)
}

func decodeBatchRequest(r io.Reader, maxBatch int) (batchRequest, error) {
	return api.DecodeBatch(r, maxBatch)
}

// Handler returns the service's HTTP mux:
//
//	POST /v1/detect        {"domain":"..."}            → detectResponse
//	POST /v1/detect/batch  {"domains":["...",...]}     → batchResponse
//	GET  /healthz                                      → liveness: ok | draining
//	GET  /readyz                                       → readiness: warm + admission headroom
//	GET  /clusterz                                     → peer-mode membership view
//	GET  /metrics                                      → MetricsSnapshot
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/detect", s.instrument(s.handleDetect))
	mux.HandleFunc("POST /v1/detect/batch", s.instrument(s.handleBatch))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /clusterz", s.handleClusterz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Store/cluster-internal endpoints (store.go), deliberately outside
	// instrument(): peer probes and replication frames must not pollute
	// the client-facing latency histogram, status counters or rate cap.
	mux.HandleFunc("POST /v1/store/replicate", s.handleReplicate)
	mux.HandleFunc("POST /v1/store/peek", s.handlePeek)
	mux.HandleFunc("GET /v1/store/since", s.handleStoreSince)
	return mux
}

// statusWriter captures the response code for the status counters.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the latency histogram, status
// counters, the per-request deadline, and — when a rate cap is
// configured — the per-node token bucket. The cap sheds before any
// decoding work: a capped node's 429 must be its cheapest response.
func (s *Server) instrument(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		if s.limiter != nil && !s.limiter.Allow() {
			s.metrics.rateLimited.Add(1)
			sw.Header().Set("Retry-After", "1")
			api.WriteJSON(sw, http.StatusTooManyRequests, errorResponse{Error: "rate cap exceeded"})
		} else {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			h(sw, r.WithContext(ctx))
			cancel()
		}
		s.metrics.observeStatus(sw.code)
		s.metrics.latency.Observe(time.Since(start))
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) { api.WriteJSON(w, code, v) }

// writeError maps the error taxonomy to status codes: decode errors are
// 400/413, admission saturation is 429 + Retry-After, deadline blowouts
// are 503.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errBatchTooLarge), errors.Is(err, errTooLarge):
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: err.Error()})
	case errors.Is(err, errMalformed):
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrSaturated):
		w.Header().Set("Retry-After", strconv.Itoa(s.adm.RetryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "deadline exceeded"})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	s.metrics.single.Add(1)
	req, err := decodeDetectRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, err)
		return
	}
	n, err := core.Normalize(req.Domain)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("invalid domain %q: %v", req.Domain, err),
		})
		return
	}
	v, cached, err := s.verdict(r.Context(), n)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.metrics.labels.Add(1)
	if v.Flagged() {
		s.metrics.flagged.Add(1)
	}
	// Response writing goes through the append codec (byte-identical to
	// the stdlib encoder, zero allocations): at cluster QPS the worker's
	// response marshal was its largest per-request allocation.
	resp := detectResponse{Verdict: v, Flagged: v.Flagged(), Cached: cached}
	api.WriteDetect(w, http.StatusOK, &resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.batch.Add(1)
	req, err := decodeBatchRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), s.cfg.MaxBatch)
	if err != nil {
		s.writeError(w, err)
		return
	}
	// One admission slot covers the whole batch; the engine bounds the
	// fan-out width internally.
	release, err := s.adm.Admit(r.Context())
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer release()
	resp := batchResponse{Count: len(req.Domains), Results: make([]detectResponse, 0, len(req.Domains))}
	err = s.batchEng.Stream(r.Context(), pipeline.FromSlice(req.Domains), func(e batchEntry) error {
		if e.resp.Flagged {
			resp.Flagged++
		}
		resp.Results = append(resp.Results, e.resp)
		return nil
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	api.WriteBatch(w, http.StatusOK, &resp)
}

// handleHealthz is pure liveness: "is this process up and not
// draining". Load balancers use it to stop routing during shutdown.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.Draining() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status": status, "node": s.cfg.NodeID, "version": version.Version,
	})
}

// handleReadyz is readiness, distinct from liveness: a live node is not
// ready until detector warm-up has completed (first-request latency
// would otherwise pay the raster-cache build) and admission has
// headroom (a saturated node should stop receiving new connections
// before it starts shedding them).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	warm := s.Warmed()
	saturated := s.adm.Saturated()
	ready := !s.Draining() && warm && !saturated
	status, code := "ready", http.StatusOK
	if !ready {
		status, code = "unready", http.StatusServiceUnavailable
	}
	body := map[string]any{
		"status": status, "node": s.cfg.NodeID, "version": version.Version,
		"warm": warm, "admissionSaturated": saturated, "draining": s.Draining(),
	}
	if p := s.peer.Load(); p != nil {
		st := p.Status()
		body["cluster"] = map[string]any{"joined": st.Joined, "epoch": st.View.Epoch}
	}
	writeJSON(w, code, body)
}

// handleClusterz reports the worker's view of cluster membership (peer
// mode) or its standalone status.
func (s *Server) handleClusterz(w http.ResponseWriter, r *http.Request) {
	if p := s.peer.Load(); p != nil {
		writeJSON(w, http.StatusOK, p.Status())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"mode": "standalone", "node": s.cfg.NodeID, "version": version.Version,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}
