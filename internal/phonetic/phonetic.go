// Package phonetic implements pronunciation-resemblance checks for domain
// labels. The paper's §VIII observes a registry brand-protection system
// (deployed by CNNIC on three TLDs) "performing resemblance checks on
// visual appearances, pronunciation and semantics"; packages glyph/ssim
// cover the visual axis and core's detectors the semantic axis — this
// package covers pronunciation.
//
// Two encoders are provided: classic Soundex (the registry-industry
// baseline) and a domain-tuned key that folds common sound-alike digraphs
// (ph→f, ck→k, qu→kw) and collapses repeats, catching registrations like
// "gugel.com" or "phacebook.com" that are visually distinct but read the
// same.
package phonetic

import (
	"strings"
)

// Soundex computes the classic four-character Soundex code of a label
// (letters only; non-letters are skipped). Empty input yields "".
func Soundex(s string) string {
	s = strings.ToLower(s)
	var first byte
	var digits []byte
	var prev byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 'a' || c > 'z' {
			continue
		}
		d := soundexDigit(c)
		if first == 0 {
			first = c - 'a' + 'A'
			prev = d
			continue
		}
		// Vowels and h/w/y reset adjacency differently: h/w do not
		// separate identical codes; vowels do.
		if d == 0 {
			if c != 'h' && c != 'w' {
				prev = 0
			}
			continue
		}
		if d != prev {
			digits = append(digits, '0'+d)
			if len(digits) == 3 {
				break
			}
		}
		prev = d
	}
	if first == 0 {
		return ""
	}
	for len(digits) < 3 {
		digits = append(digits, '0')
	}
	return string(first) + string(digits)
}

// soundexDigit maps a letter to its Soundex group (0 for vowels/h/w/y).
func soundexDigit(c byte) byte {
	switch c {
	case 'b', 'f', 'p', 'v':
		return 1
	case 'c', 'g', 'j', 'k', 'q', 's', 'x', 'z':
		return 2
	case 'd', 't':
		return 3
	case 'l':
		return 4
	case 'm', 'n':
		return 5
	case 'r':
		return 6
	}
	return 0
}

// digraphs are sound-alike sequences folded before keying, longest first.
var digraphs = []struct{ from, to string }{
	{"ough", "o"},
	{"eigh", "a"},
	{"tion", "shun"},
	{"ph", "f"},
	{"gh", "g"},
	{"ck", "k"},
	{"qu", "kw"},
	{"wh", "w"},
	{"kn", "n"},
	{"wr", "r"},
	{"mb", "m"},
	{"ce", "se"},
	{"ci", "si"},
	{"cy", "sy"},
	{"x", "ks"},
}

// singles are letter-level sound folds applied after digraphs.
var singles = map[byte]byte{
	'z': 's',
	'q': 'k',
	'c': 'k',
	'y': 'i',
	'j': 'g',
	'w': 'v',
	'0': 'o', // digits that read as letters
	'1': 'l',
	'3': 'e',
	'5': 's',
}

// Key computes the domain-tuned phonetic key of a label: lowercase,
// digraph folds, letter folds, internal-vowel removal (as in Soundex) and
// repeat collapse. A leading vowel is audible and kept as the class 'a'.
// Labels with equal keys read alike.
func Key(label string) string {
	s := strings.ToLower(label)
	for _, d := range digraphs {
		s = strings.ReplaceAll(s, d.from, d.to)
	}
	var b strings.Builder
	b.Grow(len(s))
	var prev byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		if f, ok := singles[c]; ok {
			c = f
		}
		if !(c >= 'a' && c <= 'z') {
			continue
		}
		if isVowel(c) {
			// Only a leading vowel survives, folded to its class.
			if b.Len() == 0 {
				b.WriteByte('a')
				prev = 'a'
			}
			continue
		}
		if c == prev {
			continue // collapse repeats (also across removed vowels)
		}
		b.WriteByte(c)
		prev = c
	}
	return b.String()
}

func isVowel(c byte) bool {
	switch c {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

// Alike reports whether two labels read the same under the domain key.
func Alike(a, b string) bool {
	ka, kb := Key(a), Key(b)
	return ka != "" && ka == kb
}
