package phonetic

import (
	"testing"
	"testing/quick"
)

func TestSoundexClassicVectors(t *testing.T) {
	// Canonical Soundex reference values.
	cases := []struct{ in, want string }{
		{"Robert", "R163"},
		{"Rupert", "R163"},
		{"Ashcraft", "A261"},
		{"Ashcroft", "A261"},
		{"Tymczak", "T522"},
		{"Pfister", "P236"},
		{"Honeyman", "H555"},
		{"google", "G240"},
		{"googel", "G240"},
		{"", ""},
		{"123", ""},
	}
	for _, tc := range cases {
		if got := Soundex(tc.in); got != tc.want {
			t.Errorf("Soundex(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestKeySoundAlikes(t *testing.T) {
	alike := [][2]string{
		{"google", "gugel"},
		{"google", "googel"},
		{"facebook", "phacebook"},
		{"facebook", "facebuk"},
		{"quick", "kwik"},
		{"flickr", "flicker"},
		{"amazon", "amazzon"},
		{"yahoo", "iahu"},
		{"g00gle", "google"}, // digit homophones
	}
	for _, p := range alike {
		if !Alike(p[0], p[1]) {
			t.Errorf("Alike(%q, %q) = false (keys %q vs %q)", p[0], p[1], Key(p[0]), Key(p[1]))
		}
	}
}

func TestKeyDistinguishesDifferentWords(t *testing.T) {
	different := [][2]string{
		{"google", "facebook"},
		{"amazon", "apple"},
		{"twitter", "youtube"},
		{"bank", "bunk"}, // vowels internal — same key is acceptable? no: b-n-k both... they do collide by design
	}
	// The last pair collides by construction (vowel class); drop it from
	// the strict set and assert the genuinely different ones.
	for _, p := range different[:3] {
		if Alike(p[0], p[1]) {
			t.Errorf("Alike(%q, %q) = true (key %q)", p[0], p[1], Key(p[0]))
		}
	}
}

func TestKeyProperties(t *testing.T) {
	// Key is idempotent on its own output alphabet and deterministic.
	if err := quick.Check(func(raw []byte) bool {
		s := string(raw)
		k := Key(s)
		return Key(s) == k
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyEmptyAndNonLatin(t *testing.T) {
	if Key("") != "" {
		t.Error("empty key should be empty")
	}
	if Key("中国") != "" {
		t.Error("CJK label has no Latin phonetics")
	}
	if Alike("", "") {
		t.Error("empty labels must not be alike")
	}
	if Alike("中国", "中国") {
		t.Error("non-Latin labels must not match phonetically")
	}
}

func TestAlikeSymmetric(t *testing.T) {
	pairs := [][2]string{{"google", "gugel"}, {"abc", "xyz"}, {"kwik", "quick"}}
	for _, p := range pairs {
		if Alike(p[0], p[1]) != Alike(p[1], p[0]) {
			t.Errorf("Alike not symmetric for %v", p)
		}
	}
}

func BenchmarkKey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Key("phacebook")
	}
}

func BenchmarkSoundex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Soundex("Ashcroft")
	}
}
