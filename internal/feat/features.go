// Package feat is the statistical malicious-IDN classifier: the third
// detector of the ensemble, next to the SSIM homograph detector and the
// exact-residue semantic detector. It scores a label from cheap
// structural signals — the same signals the paper uses to separate the
// good, the bad and the ugly: script mixing, character-class shape,
// label character statistics, punycode expansion, TLD priors and
// registration timelines — through a logistic model trained by a
// deterministic seeded SGD on the labeled synthetic corpus (zonegen
// attack populations = positives, benign populations = negatives).
//
// The trained model serializes to a zero-copy checksummed IDNSTAT1 blob
// (format.go); scoring a label in steady state allocates nothing, which
// is what lets the serving and watch tiers run it in front of the SSIM
// path as a learned prefilter: the expensive rescore only sees the
// high-suspicion tail, and the shed rate is observable at /metrics.
package feat

import (
	"math"

	"idnlab/internal/uniscript"
)

// NumFeatures is the fixed width of the feature vector. The IDNSTAT1
// format embeds it; a model trained for a different width refuses to
// load rather than silently misalign weights.
const NumFeatures = 17

// Feature indices. The order is part of the model format.
const (
	fLength        = iota // rune count / 63 (max label length)
	fDigitRatio           // ASCII digits / runes
	fHyphenRatio          // hyphens / runes
	fLetterRatio          // ASCII letters / runes
	fNonASCIIRatio        // non-ASCII runes / runes
	fScriptEntropy        // Shannon entropy of the concrete-script histogram, bits/2
	fScriptCount          // concrete scripts present, capped at 4, / 4
	fConfusableMix        // 1 when Latin mixes with Cyrillic or Greek
	fEastAsian            // 1 when single-script east-Asian (benign-leaning)
	fOddScript            // 1 when Unknown-script or combining marks appear
	fExoticLatin          // 1 when exotic Latin (IPA, phonetic, fullwidth) appears
	fTransitions          // character-class transitions / (runes-1)
	fPunyExpand           // (ACE length - rune count) / rune count, clipped /4
	fBigram               // mean interned-bigram log-odds (trained table)
	fTLDPrior             // trained per-TLD-class log-odds
	fAgeDays              // registration age / 10y, 0 when unknown
	fHasAge               // 1 when a registration timeline is available
)

// FeatureNames names each vector slot for model inspection and the
// top-contribution breakdown attached to flagged verdicts.
var FeatureNames = [NumFeatures]string{
	"length", "digit_ratio", "hyphen_ratio", "letter_ratio",
	"nonascii_ratio", "script_entropy", "script_count", "confusable_mix",
	"east_asian", "odd_script", "exotic_latin", "class_transitions", "puny_expansion",
	"bigram_logodds", "tld_prior", "age_days", "has_age",
}

// Vector is one label's feature vector.
type Vector [NumFeatures]float64

// TLD prior classes. The model learns one log-odds prior per class
// rather than per TLD: the corpus concentrates in com/net/org plus the
// internationalized TLDs, and a dense 5-way prior cannot overfit rare
// zones.
const (
	tldCom = iota
	tldNet
	tldOrg
	tldITLD
	tldOther
	// NumTLDClasses is the prior-table width, embedded in the format.
	NumTLDClasses
)

// TLDClass maps a TLD (no trailing dot) to its prior class.
func TLDClass(tld string) int {
	switch tld {
	case "com":
		return tldCom
	case "net":
		return tldNet
	case "org":
		return tldOrg
	}
	if len(tld) > 4 && tld[:4] == "xn--" {
		return tldITLD
	}
	return tldOther
}

// Character classes for the transition-rate feature: a homograph that
// splices a Cyrillic lookalike into a Latin brand flips classes twice
// where the brand label flips zero times.
const (
	classLetter = iota // ASCII letter
	classDigit         // ASCII digit
	classHyphen        // '-'
	classOther         // other ASCII
	classNonASCII
)

func charClass(r rune) int {
	switch {
	case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z':
		return classLetter
	case r >= '0' && r <= '9':
		return classDigit
	case r == '-':
		return classHyphen
	case r < 0x80:
		return classOther
	}
	return classNonASCII
}

// maxScriptSlots bounds the per-script histogram used for the entropy
// feature; uniscript defines 19 scripts, slot 0 collects the rest.
const maxScriptSlots = 24

// shape fills the model-independent feature slots (everything except
// the trained bigram and TLD-prior slots) from one pass over the label.
// label is the Unicode display form of the SLD label; aceLabel its
// wire (ACE) form. The pass touches only stack state — no allocation.
func shape(label, aceLabel string, v *Vector) {
	var hist [maxScriptSlots]int
	var concrete uniscript.Set
	runes, digits, hyphens, letters, nonASCII := 0, 0, 0, 0, 0
	transitions, oddScript, exoticLatin := 0, false, false
	prevClass := -1
	for _, r := range label {
		runes++
		c := charClass(r)
		switch c {
		case classLetter:
			letters++
		case classDigit:
			digits++
		case classHyphen:
			hyphens++
		case classNonASCII:
			nonASCII++
		}
		if prevClass >= 0 && c != prevClass {
			transitions++
		}
		prevClass = c
		switch sc := uniscript.Of(r); sc {
		case uniscript.Common:
		case uniscript.Inherited, uniscript.Unknown:
			oddScript = true
		default:
			concrete.Add(sc)
			if int(sc) < maxScriptSlots {
				hist[sc]++
			} else {
				hist[0]++
			}
			// Latin beyond Extended-B is IPA, phonetic extensions,
			// fullwidth forms — glyphs legitimate European names never
			// use, but single-script Latin homoglyph splices are made
			// of. Diacritics (Latin-1 Supplement through Extended-B)
			// stay benign.
			if sc == uniscript.Latin && r >= 0x250 {
				exoticLatin = true
			}
		}
	}
	if runes == 0 {
		*v = Vector{}
		return
	}
	n := float64(runes)
	v[fLength] = n / 63
	v[fDigitRatio] = float64(digits) / n
	v[fHyphenRatio] = float64(hyphens) / n
	v[fLetterRatio] = float64(letters) / n
	v[fNonASCIIRatio] = float64(nonASCII) / n
	v[fScriptEntropy] = scriptEntropy(&hist) / 2
	sc := concrete.Len()
	if sc > 4 {
		sc = 4
	}
	v[fScriptCount] = float64(sc) / 4
	v[fConfusableMix] = 0
	if concrete.Has(uniscript.Latin) &&
		(concrete.Has(uniscript.Cyrillic) || concrete.Has(uniscript.Greek)) {
		v[fConfusableMix] = 1
	}
	v[fEastAsian] = 0
	if sc == 1 {
		for _, s := range [...]uniscript.Script{
			uniscript.Han, uniscript.Hiragana, uniscript.Katakana,
			uniscript.Hangul, uniscript.Bopomofo, uniscript.Thai,
			uniscript.Mongolian,
		} {
			if concrete.Has(s) {
				v[fEastAsian] = 1
				break
			}
		}
	}
	v[fOddScript] = 0
	if oddScript {
		v[fOddScript] = 1
	}
	v[fExoticLatin] = 0
	if exoticLatin {
		v[fExoticLatin] = 1
	}
	v[fTransitions] = 0
	if runes > 1 {
		v[fTransitions] = float64(transitions) / (n - 1)
	}
	// Punycode expansion: how much longer the wire form is than the
	// display form, per display rune. CJK labels expand heavily and
	// benignly; a Latin label that expands at all carries exactly the
	// rare non-ASCII splice homographs are made of, so the signal is
	// read jointly with the script features.
	expand := float64(len(aceLabel)-runes) / n
	if expand < 0 {
		expand = 0
	} else if expand > 4 {
		expand = 4
	}
	v[fPunyExpand] = expand / 4
}

// scriptEntropy is the Shannon entropy (bits) of the concrete-script
// histogram — 0 for single-script labels, 1 for an even two-script mix.
func scriptEntropy(hist *[maxScriptSlots]int) float64 {
	total := 0
	for _, c := range hist {
		total += c
	}
	if total == 0 {
		return 0
	}
	ent := 0.0
	inv := 1 / float64(total)
	for _, c := range hist {
		if c == 0 {
			continue
		}
		p := float64(c) * inv
		ent -= p * math.Log2(p)
	}
	return ent
}
