package feat

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"path/filepath"
	"sync"
	"testing"

	"idnlab/internal/simchar"
	"idnlab/internal/uniscript"
)

// The acceptance corpus: the same (seed, scale) the report and the smoke
// harness use. Training is the expensive part of this suite, so every
// test shares one run.
const (
	testSeed  = 2018
	testScale = 100
)

var trained struct {
	once  sync.Once
	model *Model
	rep   *TrainReport
	exs   []Example
	err   error
}

func trainedModel(t testing.TB) (*Model, *TrainReport, []Example) {
	t.Helper()
	trained.once.Do(func() {
		trained.model, trained.rep, trained.exs, trained.err =
			TrainCorpus(testSeed, testScale, TrainConfig{})
	})
	if trained.err != nil {
		t.Fatalf("TrainCorpus(%d, %d): %v", testSeed, testScale, trained.err)
	}
	return trained.model, trained.rep, trained.exs
}

func TestTrainDeterminism(t *testing.T) {
	// Two independent runs from the same (seed, scale) must produce
	// bit-identical blobs: the format is content-addressed downstream
	// (checksums, golden smoke output), so any nondeterminism — map
	// iteration, unseeded shuffles — is a bug, not noise.
	m1, _, _, err := TrainCorpus(testSeed, 30, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m2, _, _, err := TrainCorpus(testSeed, 30, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m1.Bytes(), m2.Bytes()) {
		t.Fatalf("identical training inputs produced different model blobs (%d vs %d bytes)",
			len(m1.Bytes()), len(m2.Bytes()))
	}
	m3, _, _, err := TrainCorpus(testSeed+1, 30, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(m1.Bytes(), m3.Bytes()) {
		t.Fatal("different seeds produced identical model blobs")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	m, _, exs := trainedModel(t)
	path := filepath.Join(t.TempDir(), "model.idnstat")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.Bytes(), loaded.Bytes()) {
		t.Fatal("disk round trip changed the blob")
	}
	if loaded.Seed() != m.Seed() || loaded.BigramCount() != m.BigramCount() {
		t.Fatalf("round trip changed header: seed %d→%d bigrams %d→%d",
			m.Seed(), loaded.Seed(), m.BigramCount(), loaded.BigramCount())
	}
	// Scores through the loaded model must be bit-identical — both sides
	// read the same zero-copy path over the same bytes.
	for _, e := range exs[:200] {
		a := m.ScoreLabel(e.Label, e.ACELabel, e.TLD)
		b := loaded.ScoreLabel(e.Label, e.ACELabel, e.TLD)
		if a != b {
			t.Fatalf("score diverged after round trip for %q: %v vs %v", e.Label, a, b)
		}
	}
}

// reseal recomputes the trailing checksum after a test mutation, so the
// corruption under test — not the checksum — is what Load rejects.
func reseal(data []byte) []byte {
	binary.LittleEndian.PutUint64(data[len(data)-8:],
		simchar.HashBytes(0, data[:len(data)-8]))
	return data
}

func TestLoadCorruption(t *testing.T) {
	m, _, _ := trainedModel(t)
	if m.BigramCount() < 2 {
		t.Fatal("need at least two bigrams to test key ordering")
	}
	blob := func() []byte { return append([]byte(nil), m.Bytes()...) }
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short", blob()[:20], ErrTruncated},
		{"bad magic", func() []byte { b := blob(); b[0] = 'X'; return b }(), ErrMagic},
		{"bit flip", func() []byte { b := blob(); b[headerSize+3] ^= 0x40; return b }(), ErrChecksum},
		{"tail cut", blob()[:len(m.Bytes())-8], ErrChecksum},
		{"reserved set", func() []byte {
			b := blob()
			binary.LittleEndian.PutUint32(b[28:], 7)
			return reseal(b)
		}(), ErrCorrupt},
		{"feature width", func() []byte {
			b := blob()
			binary.LittleEndian.PutUint32(b[16:], NumFeatures+1)
			return reseal(b)
		}(), ErrCorrupt},
		{"tld width", func() []byte {
			b := blob()
			binary.LittleEndian.PutUint32(b[20:], NumTLDClasses+1)
			return reseal(b)
		}(), ErrCorrupt},
		{"count vs length", func() []byte {
			b := blob()
			binary.LittleEndian.PutUint32(b[24:], uint32(m.BigramCount()+1))
			return reseal(b)
		}(), ErrTruncated},
		{"non-finite weight", func() []byte {
			b := blob()
			binary.LittleEndian.PutUint64(b[headerSize:], math.Float64bits(math.NaN()))
			return reseal(b)
		}(), ErrCorrupt},
		{"non-finite threshold", func() []byte {
			b := blob()
			binary.LittleEndian.PutUint64(b[40:], math.Float64bits(math.Inf(1)))
			return reseal(b)
		}(), ErrCorrupt},
		{"unsorted keys", func() []byte {
			b := blob()
			k0 := binary.LittleEndian.Uint64(b[m.keyOff:])
			binary.LittleEndian.PutUint64(b[m.keyOff+8:], k0)
			return reseal(b)
		}(), ErrCorrupt},
		{"non-finite bigram", func() []byte {
			b := blob()
			binary.LittleEndian.PutUint64(b[m.valOff:], math.Float64bits(math.NaN()))
			return reseal(b)
		}(), ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Load(tc.data); !errors.Is(err, tc.want) {
				t.Fatalf("Load = %v, want %v", err, tc.want)
			}
		})
	}
	if _, err := Load(blob()); err != nil {
		t.Fatalf("pristine blob failed to load: %v", err)
	}
}

// naiveScore is the obvious map-based reference implementation of
// ScoreDomain: same features, but the bigram table as a Go map instead
// of the in-place binary search over serialized bytes. The zero-copy
// fast path must agree bit-for-bit.
func naiveScore(m *Model, bigrams map[uint64]float64, label, aceLabel, tld string) float64 {
	var v Vector
	shape(label, aceLabel, &v)
	if m.nBigrams > 0 {
		prev := bigramStart
		sum, n := 0.0, 0
		for _, r := range label {
			sum += bigrams[bigramKey(prev, r)]
			n++
			prev = r
		}
		sum += bigrams[bigramKey(prev, bigramEnd)]
		n++
		v[fBigram] = sum / float64(n)
	}
	v[fTLDPrior] = m.tldPrior[TLDClass(tld)]
	v[fAgeDays], v[fHasAge] = 0, 0
	s := m.bias
	for i := 0; i < NumFeatures; i++ {
		s += m.weights[i] * v[i]
	}
	return s
}

// naiveBigramMap rebuilds the serialized table as a plain map.
func naiveBigramMap(m *Model) map[uint64]float64 {
	out := make(map[uint64]float64, m.nBigrams)
	for i := 0; i < m.nBigrams; i++ {
		k := binary.LittleEndian.Uint64(m.data[m.keyOff+8*i:])
		out[k] = math.Float64frombits(binary.LittleEndian.Uint64(m.data[m.valOff+8*i:]))
	}
	return out
}

func TestNaiveReferenceEquivalence(t *testing.T) {
	m, _, exs := trainedModel(t)
	bigrams := naiveBigramMap(m)
	for _, e := range exs {
		want := naiveScore(m, bigrams, e.Label, e.ACELabel, e.TLD)
		got := m.ScoreLabel(e.Label, e.ACELabel, e.TLD)
		if got != want {
			t.Fatalf("zero-copy score diverged from reference for %q: %v vs %v",
				e.Label, got, want)
		}
	}
}

// TestEvalGates pins the PR's acceptance numbers on the held-out split:
// the prefilter keeps ≥95%% of attack-population positives while passing
// ≤25%% of overall traffic to the SSIM path, and the margin ranking
// separates the classes (AUC).
func TestEvalGates(t *testing.T) {
	m, _, exs := trainedModel(t)
	_, eval := Split(exs)
	rep := Evaluate(m, eval)
	if rep.Positives == 0 {
		t.Fatal("held-out split has no positives")
	}
	if rep.PrefilterRecall < 0.95 {
		t.Fatalf("prefilter recall %.4f below the 0.95 gate", rep.PrefilterRecall)
	}
	if rep.PassRate > 0.25 {
		t.Fatalf("prefilter pass rate %.4f above the 0.25 gate", rep.PassRate)
	}
	if rep.AUC < 0.95 {
		t.Fatalf("AUC %.4f below 0.95", rep.AUC)
	}
	for _, p := range rep.Populations {
		switch p.Population {
		case "homograph", "semantic", "semantic2":
			if p.PrefilterRecall < 0.95 {
				t.Fatalf("population %s prefilter recall %.4f below 0.95",
					p.Population, p.PrefilterRecall)
			}
		}
	}
}

func TestScoreLabelAllocs(t *testing.T) {
	m, _, exs := trainedModel(t)
	e := exs[0]
	allocs := testing.AllocsPerRun(100, func() {
		m.ScoreLabel(e.Label, e.ACELabel, e.TLD)
	})
	if allocs != 0 {
		t.Fatalf("ScoreLabel allocates %.1f times per call, want 0", allocs)
	}
}

func TestShapeFeatures(t *testing.T) {
	var v Vector

	shape("example", "example", &v)
	if v[fNonASCIIRatio] != 0 || v[fScriptEntropy] != 0 || v[fConfusableMix] != 0 {
		t.Fatalf("pure-ASCII label scored non-ASCII features: %+v", v)
	}
	if v[fScriptCount] != 0.25 {
		t.Fatalf("single-script count = %v, want 0.25", v[fScriptCount])
	}
	if v[fTransitions] != 0 {
		t.Fatalf("all-letter label has transitions %v", v[fTransitions])
	}
	if v[fLength] != 7.0/63 {
		t.Fatalf("length = %v, want %v", v[fLength], 7.0/63)
	}

	// Cyrillic а spliced into a Latin label: the canonical homograph.
	shape("р"+"aypal", "xn--aypal-0ve", &v)
	if v[fConfusableMix] != 1 {
		t.Fatal("Latin+Cyrillic mix not detected")
	}
	if v[fScriptCount] != 0.5 {
		t.Fatalf("two-script count = %v, want 0.5", v[fScriptCount])
	}
	if v[fScriptEntropy] <= 0 {
		t.Fatal("mixed-script label has zero entropy")
	}
	if v[fPunyExpand] <= 0 {
		t.Fatal("expanding label has zero puny-expansion")
	}

	// Single-script CJK is benign-leaning: flagged east-Asian, no mix.
	shape("東京", "xn--1lqs71d", &v)
	if v[fEastAsian] != 1 {
		t.Fatal("single-script Han label not marked east-Asian")
	}
	if v[fConfusableMix] != 0 || v[fScriptEntropy] != 0 {
		t.Fatalf("single-script CJK scored as mixed: %+v", v)
	}

	shape("abc123", "abc123", &v)
	if v[fDigitRatio] != 0.5 {
		t.Fatalf("digit ratio = %v, want 0.5", v[fDigitRatio])
	}
	if v[fTransitions] != 0.2 {
		t.Fatalf("transitions = %v, want 0.2", v[fTransitions])
	}

	shape("", "", &v)
	if v != (Vector{}) {
		t.Fatalf("empty label must produce the zero vector, got %+v", v)
	}
}

func TestTLDClass(t *testing.T) {
	cases := map[string]int{
		"com": tldCom, "net": tldNet, "org": tldOrg,
		"xn--p1ai": tldITLD, "xn--fiqs8s": tldITLD,
		"io": tldOther, "dev": tldOther, "xn--": tldOther, "": tldOther,
	}
	for tld, want := range cases {
		if got := TLDClass(tld); got != want {
			t.Errorf("TLDClass(%q) = %d, want %d", tld, got, want)
		}
	}
}

func TestTopContributions(t *testing.T) {
	m, _, exs := trainedModel(t)
	var flagged *Example
	for i := range exs {
		e := &exs[i]
		if e.Positive && m.Flag(m.ScoreLabel(e.Label, e.ACELabel, e.TLD)) {
			flagged = e
			break
		}
	}
	if flagged == nil {
		t.Fatal("no flagged positive in corpus")
	}
	top := m.TopContributions(flagged.Label, flagged.ACELabel, flagged.TLD, 0, false, 3)
	if len(top) == 0 || len(top) > 3 {
		t.Fatalf("got %d contributions, want 1..3", len(top))
	}
	for i, c := range top {
		if c.Impact == 0 {
			t.Fatalf("zero-impact contribution %q included", c.Feature)
		}
		if i > 0 && math.Abs(top[i-1].Impact) < math.Abs(c.Impact) {
			t.Fatalf("contributions not sorted by |impact|: %v", top)
		}
	}
}

func TestTrainRejectsDegenerateCorpus(t *testing.T) {
	onlyNeg := []Example{
		{Label: "example", ACELabel: "example", TLD: "com"},
		{Label: "sample", ACELabel: "sample", TLD: "org"},
	}
	if _, _, err := Train(onlyNeg, TrainConfig{Seed: 1}); err == nil {
		t.Fatal("training with no positives must fail")
	}
}

// TestConfusableScripts pins the script identities the confusable-mix
// feature depends on.
func TestConfusableScripts(t *testing.T) {
	if uniscript.Of('а') != uniscript.Cyrillic {
		t.Fatal("U+0430 must be Cyrillic")
	}
	if uniscript.Of('a') != uniscript.Latin {
		t.Fatal("U+0061 must be Latin")
	}
}
