package feat

import (
	"errors"
	"math"
	"sort"

	"idnlab/internal/simrand"
)

// Example is one labeled training/eval instance: a domain's SLD label
// in both forms, its zone, its registration timeline, and the ground
// truth from the synthetic corpus (zonegen attack populations are
// positives; benign populations negatives).
type Example struct {
	// Label is the Unicode SLD label; ACELabel its wire form.
	Label    string
	ACELabel string
	// TLD is the zone without trailing dot.
	TLD string
	// AgeDays is the registration age at the corpus snapshot; HasAge
	// reports whether a timeline exists for this example.
	AgeDays float64
	HasAge  bool
	// Positive is the ground-truth class.
	Positive bool
	// Eval marks held-out examples (never trained on).
	Eval bool
	// Population names the generator population ("homograph",
	// "benign-idn", ...) for the per-population recall breakdown.
	Population string
}

// Split partitions examples into the train and held-out eval sets.
func Split(exs []Example) (train, eval []Example) {
	for _, e := range exs {
		if e.Eval {
			eval = append(eval, e)
		} else {
			train = append(train, e)
		}
	}
	return train, eval
}

// TrainConfig parameterizes Train. The zero value selects defaults
// that converge on the synthetic corpus at any scale.
type TrainConfig struct {
	// Seed drives every stochastic choice (shuffles); identical
	// (examples, config) inputs produce bit-identical models.
	Seed uint64
	// Epochs is the number of SGD passes (default 8).
	Epochs int
	// LearnRate is the initial step size, decayed per epoch (default 0.5).
	LearnRate float64
	// L2 is the ridge penalty (default 1e-4).
	L2 float64
	// PosWeight scales the positive-class gradient; 0 selects
	// min(10, negatives/positives) to counter class imbalance.
	PosWeight float64
	// TargetRecall sets the prefilter floor: the largest raw threshold
	// keeping at least this recall on training positives under serving
	// conditions (default 0.995 — margin over the 0.95 eval gate).
	TargetRecall float64
	// FlagRecall constrains flag-threshold selection: F1 is maximized
	// only among thresholds keeping at least this recall on training
	// positives (default 0.85). An unconstrained F1 maximum overfits —
	// the bigram table memorizes training attacks, pushing their
	// scores far above where held-out attacks land.
	FlagRecall float64
	// MinBigramCount drops bigrams seen fewer times in training
	// (default 3): rare bigrams are noise and bloat the table.
	MinBigramCount int
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs <= 0 {
		c.Epochs = 8
	}
	if c.LearnRate <= 0 {
		c.LearnRate = 0.5
	}
	if c.L2 <= 0 {
		c.L2 = 1e-4
	}
	if c.TargetRecall <= 0 {
		c.TargetRecall = 0.995
	}
	if c.FlagRecall <= 0 {
		c.FlagRecall = 0.85
	}
	if c.MinBigramCount <= 0 {
		c.MinBigramCount = 3
	}
	return c
}

// TrainReport summarizes a training run.
type TrainReport struct {
	TrainExamples int     `json:"trainExamples"`
	EvalExamples  int     `json:"evalExamples"`
	Positives     int     `json:"positives"` // in the train split
	Negatives     int     `json:"negatives"`
	Bigrams       int     `json:"bigrams"`
	Epochs        int     `json:"epochs"`
	FinalLoss     float64 `json:"finalLoss"` // mean weighted log-loss, last epoch
	FlagRaw       float64 `json:"flagRaw"`
	PrefilterRaw  float64 `json:"prefilterRaw"`
	// TrainPassRate / TrainRecall are the prefilter's pass rate over
	// all training examples and recall over training positives, both
	// under serving conditions (no registration timeline).
	TrainPassRate float64 `json:"trainPassRate"`
	TrainRecall   float64 `json:"trainRecall"`
}

// Train fits the classifier on the non-held-out examples: counts the
// bigram and TLD log-odds tables, runs a seeded SGD over the logistic
// layer, and selects both decision thresholds from training scores.
// The returned model went through a full encode/Load round trip, so it
// scores through the identical zero-copy path a disk-loaded model does.
func Train(exs []Example, cfg TrainConfig) (*Model, *TrainReport, error) {
	cfg = cfg.withDefaults()
	train, eval := Split(exs)
	pos, neg := 0, 0
	for _, e := range train {
		if e.Positive {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil, nil, errors.New("feat: training needs at least one positive and one negative example")
	}

	// Stage 1: the trained tables, counted on the train split only.
	params := modelParams{seed: cfg.Seed}
	params.bigramKeys, params.bigramVals = countBigrams(train, cfg.MinBigramCount)
	params.tldPrior = countTLDPriors(train)
	tableModel, err := Load(encode(params))
	if err != nil {
		return nil, nil, err
	}

	// Stage 2: featurize once. Each example contributes two instances —
	// one with its labeled registration timeline and one under serving
	// conditions (timeline hidden) — so the model cannot lean on a
	// signal the online path does not have.
	type inst struct {
		v Vector
		y float64
		w float64
	}
	posW := cfg.PosWeight
	if posW <= 0 {
		// Balance the classes: the synthetic corpus is dominated by
		// benign registrations (as real zones are), and an unweighted
		// fit would park every attack below the decision boundary.
		posW = float64(neg) / float64(pos)
		if posW > 100 {
			posW = 100
		}
		if posW < 1 {
			posW = 1
		}
	}
	insts := make([]inst, 0, 2*len(train))
	for _, e := range train {
		y, w := 0.0, 1.0
		if e.Positive {
			y, w = 1, posW
		}
		var a, b inst
		tableModel.Featurize(e.Label, e.ACELabel, e.TLD, e.AgeDays, e.HasAge, &a.v)
		a.y, a.w = y, w
		tableModel.Featurize(e.Label, e.ACELabel, e.TLD, 0, false, &b.v)
		b.y, b.w = y, w
		insts = append(insts, a, b)
	}

	// Stage 3: seeded SGD over the logistic layer.
	rng := simrand.New(cfg.Seed).Fork("feat.sgd")
	var w [NumFeatures]float64
	bias := 0.0
	finalLoss := 0.0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(insts), func(i, j int) { insts[i], insts[j] = insts[j], insts[i] })
		lr := cfg.LearnRate / (1 + float64(epoch))
		loss, wsum := 0.0, 0.0
		for i := range insts {
			in := &insts[i]
			margin := bias
			for f := 0; f < NumFeatures; f++ {
				margin += w[f] * in.v[f]
			}
			p := 1 / (1 + math.Exp(-margin))
			loss += in.w * logLoss(p, in.y)
			wsum += in.w
			g := in.w * (p - in.y)
			bias -= lr * g
			for f := 0; f < NumFeatures; f++ {
				w[f] -= lr * (g*in.v[f] + cfg.L2*w[f])
			}
		}
		finalLoss = loss / wsum
	}
	params.bias = bias
	params.weights = w

	// Stage 4: thresholds from training scores under serving conditions
	// (the only conditions the online gate ever sees).
	scored := make([]scoredExample, len(train))
	m0, err := Load(encode(params))
	if err != nil {
		return nil, nil, err
	}
	for i, e := range train {
		scored[i] = scoredExample{raw: m0.ScoreLabel(e.Label, e.ACELabel, e.TLD), pos: e.Positive}
	}
	params.flagRaw = selectFlagThreshold(scored, cfg.FlagRecall)
	params.prefilterRaw = selectPrefilterThreshold(scored, cfg.TargetRecall)

	m, err := Load(encode(params))
	if err != nil {
		return nil, nil, err
	}
	rep := &TrainReport{
		TrainExamples: len(train),
		EvalExamples:  len(eval),
		Positives:     pos,
		Negatives:     neg,
		Bigrams:       len(params.bigramKeys),
		Epochs:        cfg.Epochs,
		FinalLoss:     finalLoss,
		FlagRaw:       params.flagRaw,
		PrefilterRaw:  params.prefilterRaw,
	}
	passed, passedPos := 0, 0
	for _, s := range scored {
		if s.raw >= params.prefilterRaw {
			passed++
			if s.pos {
				passedPos++
			}
		}
	}
	rep.TrainPassRate = float64(passed) / float64(len(scored))
	rep.TrainRecall = float64(passedPos) / float64(pos)
	return m, rep, nil
}

func logLoss(p, y float64) float64 {
	const eps = 1e-12
	if y == 1 {
		return -math.Log(math.Max(p, eps))
	}
	return -math.Log(math.Max(1-p, eps))
}

// countBigrams builds the interned bigram log-odds table from the train
// split: Laplace-smoothed class-conditional frequencies, clamped to
// ±4, keyed by packed rune pairs with boundary markers, sorted for the
// zero-copy binary search.
func countBigrams(train []Example, minCount int) ([]uint64, []float64) {
	type counts struct{ pos, neg int }
	tab := map[uint64]*counts{}
	posTot, negTot := 0, 0
	bump := func(key uint64, pos bool) {
		c := tab[key]
		if c == nil {
			c = &counts{}
			tab[key] = c
		}
		if pos {
			c.pos++
			posTot++
		} else {
			c.neg++
			negTot++
		}
	}
	for _, e := range train {
		prev := bigramStart
		for _, r := range e.Label {
			bump(bigramKey(prev, r), e.Positive)
			prev = r
		}
		bump(bigramKey(prev, bigramEnd), e.Positive)
	}
	keys := make([]uint64, 0, len(tab))
	for k, c := range tab {
		if c.pos+c.neg >= minCount {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	vals := make([]float64, len(keys))
	v := float64(len(keys)) + 1
	for i, k := range keys {
		c := tab[k]
		lo := math.Log((float64(c.pos)+1)/(float64(posTot)+v)) -
			math.Log((float64(c.neg)+1)/(float64(negTot)+v))
		if lo > 4 {
			lo = 4
		} else if lo < -4 {
			lo = -4
		}
		vals[i] = lo
	}
	return keys, vals
}

// countTLDPriors builds the 5-class TLD log-odds prior from the train
// split, Laplace-smoothed and clamped like the bigram table.
func countTLDPriors(train []Example) [NumTLDClasses]float64 {
	var pos, neg [NumTLDClasses]int
	posTot, negTot := 0, 0
	for _, e := range train {
		c := TLDClass(e.TLD)
		if e.Positive {
			pos[c]++
			posTot++
		} else {
			neg[c]++
			negTot++
		}
	}
	var out [NumTLDClasses]float64
	for c := 0; c < NumTLDClasses; c++ {
		lo := math.Log((float64(pos[c])+1)/(float64(posTot)+NumTLDClasses)) -
			math.Log((float64(neg[c])+1)/(float64(negTot)+NumTLDClasses))
		if lo > 2 {
			lo = 2
		} else if lo < -2 {
			lo = -2
		}
		out[c] = lo
	}
	return out
}

type scoredExample struct {
	raw float64
	pos bool
}

// selectFlagThreshold sweeps every decision boundary over the training
// scores and returns the raw margin maximizing F1 among boundaries
// keeping at least minRecall of training positives (falling back to
// the unconstrained maximum when no boundary satisfies it).
func selectFlagThreshold(scored []scoredExample, minRecall float64) float64 {
	s := make([]scoredExample, len(scored))
	copy(s, scored)
	sort.Slice(s, func(i, j int) bool {
		if s[i].raw != s[j].raw {
			return s[i].raw > s[j].raw
		}
		return s[i].pos && !s[j].pos
	})
	totalPos := 0
	for _, e := range s {
		if e.pos {
			totalPos++
		}
	}
	bestF1, bestThr := -1.0, 0.0
	bestConF1, bestConThr, haveCon := -1.0, 0.0, false
	tp, fp := 0, 0
	for i := 0; i < len(s); i++ {
		if s[i].pos {
			tp++
		} else {
			fp++
		}
		// Only cut between distinct scores: everything scoring the same
		// lands on the same side of any threshold.
		if i+1 < len(s) && s[i+1].raw == s[i].raw {
			continue
		}
		if tp == 0 {
			continue
		}
		prec := float64(tp) / float64(tp+fp)
		rec := float64(tp) / float64(totalPos)
		f1 := 2 * prec * rec / (prec + rec)
		thr := s[i].raw - 1e-9
		if i+1 < len(s) {
			thr = (s[i].raw + s[i+1].raw) / 2
		}
		if f1 > bestF1 {
			bestF1, bestThr = f1, thr
		}
		if rec >= minRecall && f1 > bestConF1 {
			bestConF1, bestConThr, haveCon = f1, thr, true
		}
	}
	if haveCon {
		return bestConThr
	}
	return bestThr
}

// selectPrefilterThreshold returns the largest raw margin keeping at
// least targetRecall of training positives at or above it — the
// highest floor (fewest SSIM rescans) that still meets the recall
// contract with margin.
func selectPrefilterThreshold(scored []scoredExample, targetRecall float64) float64 {
	var posRaws []float64
	for _, e := range scored {
		if e.pos {
			posRaws = append(posRaws, e.raw)
		}
	}
	sort.Float64s(posRaws)
	// Allow the lowest (1-targetRecall) fraction of positives to fall
	// below the floor.
	drop := int(float64(len(posRaws)) * (1 - targetRecall))
	if drop >= len(posRaws) {
		drop = len(posRaws) - 1
	}
	return posRaws[drop] - 1e-9
}
