package feat

import "sort"

// PopulationMetrics is one generator population's slice of an eval run.
type PopulationMetrics struct {
	Population string `json:"population"`
	N          int    `json:"n"`
	// FlagRecall is the fraction flagged (raw ≥ flag threshold);
	// PrefilterRecall the fraction passing the prefilter floor. Both
	// under serving conditions. Only meaningful for positive
	// populations; for benign populations FlagRecall is the false-flag
	// rate and PrefilterRecall the pass (non-shed) rate.
	FlagRecall      float64 `json:"flagRecall"`
	PrefilterRecall float64 `json:"prefilterRecall"`
}

// EvalReport is the classifier's quality card over one example set,
// scored under serving conditions (no registration timeline — the only
// conditions the online gate ever sees, and therefore the honest ones
// to gate on).
type EvalReport struct {
	Examples  int `json:"examples"`
	Positives int `json:"positives"`
	Negatives int `json:"negatives"`
	// Precision/Recall/F1 at the flag threshold.
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	// AUC is the rank-sum (Mann-Whitney) area under the ROC curve of
	// the raw margins, threshold-free.
	AUC float64 `json:"auc"`
	// PassRate is the prefilter pass rate over all examples — the
	// fraction of traffic the SSIM path still sees. PrefilterRecall is
	// the pass rate over positives only (the recall the prefilter
	// preserves for the downstream detectors).
	PassRate        float64             `json:"passRate"`
	PrefilterRecall float64             `json:"prefilterRecall"`
	Populations     []PopulationMetrics `json:"populations"`
}

// Evaluate scores every example under serving conditions and reports
// precision/recall/F1 at the flag threshold, rank-sum AUC, and the
// prefilter's pass rate and per-population recall. Pass the held-out
// split for honest numbers (Split separates it).
func Evaluate(m *Model, exs []Example) EvalReport {
	rep := EvalReport{Examples: len(exs)}
	type popAgg struct {
		n, flagged, passed int
	}
	pops := map[string]*popAgg{}
	var popOrder []string
	raws := make([]float64, len(exs))
	tp, fp, fn := 0, 0, 0
	passed, passedPos := 0, 0
	for i, e := range exs {
		raw := m.ScoreLabel(e.Label, e.ACELabel, e.TLD)
		raws[i] = raw
		flagged := m.Flag(raw)
		pass := m.PrefilterPass(raw)
		if e.Positive {
			rep.Positives++
			if flagged {
				tp++
			} else {
				fn++
			}
			if pass {
				passedPos++
			}
		} else {
			rep.Negatives++
			if flagged {
				fp++
			}
		}
		if pass {
			passed++
		}
		agg := pops[e.Population]
		if agg == nil {
			agg = &popAgg{}
			pops[e.Population] = agg
			popOrder = append(popOrder, e.Population)
		}
		agg.n++
		if flagged {
			agg.flagged++
		}
		if pass {
			agg.passed++
		}
	}
	if tp+fp > 0 {
		rep.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		rep.Recall = float64(tp) / float64(tp+fn)
	}
	if rep.Precision+rep.Recall > 0 {
		rep.F1 = 2 * rep.Precision * rep.Recall / (rep.Precision + rep.Recall)
	}
	rep.AUC = rankSumAUC(raws, exs)
	if len(exs) > 0 {
		rep.PassRate = float64(passed) / float64(len(exs))
	}
	if rep.Positives > 0 {
		rep.PrefilterRecall = float64(passedPos) / float64(rep.Positives)
	}
	sort.Strings(popOrder)
	for _, name := range popOrder {
		agg := pops[name]
		rep.Populations = append(rep.Populations, PopulationMetrics{
			Population:      name,
			N:               agg.n,
			FlagRecall:      float64(agg.flagged) / float64(agg.n),
			PrefilterRecall: float64(agg.passed) / float64(agg.n),
		})
	}
	return rep
}

// rankSumAUC computes the Mann-Whitney AUC: the probability a random
// positive outscores a random negative, with tied scores counted half.
func rankSumAUC(raws []float64, exs []Example) float64 {
	type rs struct {
		raw float64
		pos bool
	}
	s := make([]rs, len(exs))
	nPos, nNeg := 0, 0
	for i, e := range exs {
		s[i] = rs{raw: raws[i], pos: e.Positive}
		if e.Positive {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0
	}
	sort.Slice(s, func(i, j int) bool { return s[i].raw < s[j].raw })
	// Average ranks across ties, then sum the positive ranks.
	rankSum := 0.0
	for i := 0; i < len(s); {
		j := i
		for j < len(s) && s[j].raw == s[i].raw {
			j++
		}
		avgRank := float64(i+j+1) / 2 // ranks are 1-based: (i+1 + j) / 2
		for k := i; k < j; k++ {
			if s[k].pos {
				rankSum += avgRank
			}
		}
		i = j
	}
	u := rankSum - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}
