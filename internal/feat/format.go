package feat

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"idnlab/internal/simchar"
)

// IDNSTAT1 — the serialized statistical model. Like the candidate
// index's IDNCIDX1, the format is designed for zero-copy loading: Load
// validates the blob structurally once, then the scoring hot path reads
// the bigram key/value sections directly from the mapped bytes with no
// decode pass and no per-lookup allocation.
//
// Layout (all integers little-endian, all floats IEEE-754 bits):
//
//	offset 0   magic "IDNSTAT1" (8 bytes)
//	       8   seed          u64  training seed
//	      16   numFeatures   u32  must equal NumFeatures
//	      20   tldClasses    u32  must equal NumTLDClasses
//	      24   bigramCount   u32  interned bigram table size
//	      28   reserved      u32  zero
//	      32   bias          f64
//	      40   flagRaw       f64  raw-margin flag threshold
//	      48   prefilterRaw  f64  raw-margin prefilter floor
//	      56   weights       numFeatures × f64
//	       .   tldPriors     tldClasses × f64
//	       .   bigramKeys    bigramCount × u64, strictly ascending
//	       .   bigramVals    bigramCount × f64, finite
//	    tail   checksum      u64  FNV-1a (simchar.HashBytes) of all prior bytes
const magic = "IDNSTAT1"

const headerSize = 8 + 8 + 4 + 4 + 4 + 4 + 8 + 8 + 8

// Load errors. Load validates exhaustively so the scoring path can
// trust the data blindly.
var (
	ErrMagic     = errors.New("feat: not an IDNSTAT1 model")
	ErrTruncated = errors.New("feat: truncated model")
	ErrChecksum  = errors.New("feat: checksum mismatch")
	ErrCorrupt   = errors.New("feat: structurally invalid model")
)

// modelParams is the in-memory form the trainer produces; encode turns
// it into the canonical blob and Load back into a servable Model, so
// every Model — trained in process or loaded from disk — scores through
// the identical zero-copy path.
type modelParams struct {
	seed         uint64
	bias         float64
	flagRaw      float64
	prefilterRaw float64
	weights      [NumFeatures]float64
	tldPrior     [NumTLDClasses]float64
	bigramKeys   []uint64 // strictly ascending
	bigramVals   []float64
}

// encode serializes params into a fresh IDNSTAT1 blob.
func encode(p modelParams) []byte {
	n := len(p.bigramKeys)
	size := headerSize + 8*NumFeatures + 8*NumTLDClasses + 16*n + 8
	buf := make([]byte, size)
	copy(buf, magic)
	le := binary.LittleEndian
	le.PutUint64(buf[8:], p.seed)
	le.PutUint32(buf[16:], NumFeatures)
	le.PutUint32(buf[20:], NumTLDClasses)
	le.PutUint32(buf[24:], uint32(n))
	le.PutUint32(buf[28:], 0)
	le.PutUint64(buf[32:], math.Float64bits(p.bias))
	le.PutUint64(buf[40:], math.Float64bits(p.flagRaw))
	le.PutUint64(buf[48:], math.Float64bits(p.prefilterRaw))
	off := headerSize
	for _, w := range p.weights {
		le.PutUint64(buf[off:], math.Float64bits(w))
		off += 8
	}
	for _, w := range p.tldPrior {
		le.PutUint64(buf[off:], math.Float64bits(w))
		off += 8
	}
	for _, k := range p.bigramKeys {
		le.PutUint64(buf[off:], k)
		off += 8
	}
	for _, v := range p.bigramVals {
		le.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	le.PutUint64(buf[off:], simchar.HashBytes(0, buf[:off]))
	return buf
}

// Load parses and validates an IDNSTAT1 blob. The returned Model
// retains data; callers must not mutate it afterwards.
func Load(data []byte) (*Model, error) {
	if len(data) < headerSize+8 {
		return nil, ErrTruncated
	}
	if string(data[:8]) != magic {
		return nil, ErrMagic
	}
	le := binary.LittleEndian
	if got, want := le.Uint64(data[len(data)-8:]), simchar.HashBytes(0, data[:len(data)-8]); got != want {
		return nil, fmt.Errorf("%w: recorded %016x computed %016x", ErrChecksum, got, want)
	}
	nf := int(le.Uint32(data[16:]))
	tc := int(le.Uint32(data[20:]))
	nb := int(le.Uint32(data[24:]))
	if nf != NumFeatures {
		return nil, fmt.Errorf("%w: model has %d features, this build scores %d", ErrCorrupt, nf, NumFeatures)
	}
	if tc != NumTLDClasses {
		return nil, fmt.Errorf("%w: model has %d TLD classes, this build scores %d", ErrCorrupt, tc, NumTLDClasses)
	}
	if le.Uint32(data[28:]) != 0 {
		return nil, fmt.Errorf("%w: nonzero reserved field", ErrCorrupt)
	}
	// Section bounds in int64 space so a hostile count cannot overflow.
	want := int64(headerSize) + 8*int64(nf) + 8*int64(tc) + 16*int64(nb) + 8
	if int64(len(data)) != want {
		return nil, fmt.Errorf("%w: %d bytes, layout requires %d", ErrTruncated, len(data), want)
	}
	m := &Model{
		data:     data,
		seed:     le.Uint64(data[8:]),
		bias:     math.Float64frombits(le.Uint64(data[32:])),
		flagRaw:  math.Float64frombits(le.Uint64(data[40:])),
		nBigrams: nb,
	}
	m.prefilterRaw = math.Float64frombits(le.Uint64(data[48:]))
	if !finite(m.bias) || !finite(m.flagRaw) || !finite(m.prefilterRaw) {
		return nil, fmt.Errorf("%w: non-finite bias or threshold", ErrCorrupt)
	}
	off := headerSize
	for i := 0; i < NumFeatures; i++ {
		m.weights[i] = math.Float64frombits(le.Uint64(data[off:]))
		if !finite(m.weights[i]) {
			return nil, fmt.Errorf("%w: non-finite weight %q", ErrCorrupt, FeatureNames[i])
		}
		off += 8
	}
	for i := 0; i < NumTLDClasses; i++ {
		m.tldPrior[i] = math.Float64frombits(le.Uint64(data[off:]))
		if !finite(m.tldPrior[i]) {
			return nil, fmt.Errorf("%w: non-finite TLD prior %d", ErrCorrupt, i)
		}
		off += 8
	}
	m.keyOff = off
	m.valOff = off + 8*nb
	// The validation walk doubles as the decode pass: ASCII×ASCII pairs
	// populate the dense plane the hot path indexes directly, everything
	// else lands in an open-addressing hash table sized to ≤50% load
	// (keys are unique by the ascending check, so insertion never needs
	// duplicate handling; key 0 is impossible and marks empty slots).
	m.ascii = make([]float64, asciiPlane*asciiPlane)
	if nb > 0 {
		htSize := 1
		for htSize < 2*nb {
			htSize <<= 1
		}
		m.htKeys = make([]uint64, htSize)
		m.htVals = make([]float64, htSize)
		m.htMask = uint64(htSize - 1)
	}
	var prev uint64
	for i := 0; i < nb; i++ {
		k := le.Uint64(data[m.keyOff+8*i:])
		if i > 0 && k <= prev {
			return nil, fmt.Errorf("%w: bigram keys not strictly ascending at %d", ErrCorrupt, i)
		}
		prev = k
		v := math.Float64frombits(le.Uint64(data[m.valOff+8*i:]))
		if !finite(v) {
			return nil, fmt.Errorf("%w: non-finite bigram log-odds at %d", ErrCorrupt, i)
		}
		if a, b := k>>32, k&0xffffffff; a < asciiPlane && b < asciiPlane {
			m.ascii[a*asciiPlane+b] = v
		} else {
			j := (k * fibMult) >> 32 & m.htMask
			for m.htKeys[j] != 0 {
				j = (j + 1) & m.htMask
			}
			m.htKeys[j], m.htVals[j] = k, v
		}
	}
	return m, nil
}

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// LoadFile reads and validates a model file.
func LoadFile(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("feat: read %s: %w", path, err)
	}
	m, err := Load(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// WriteFile atomically writes the model blob next to its final path
// (tmp + rename, like the candidate index writer).
func (m *Model) WriteFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".idnstat-*")
	if err != nil {
		return fmt.Errorf("feat: write %s: %w", path, err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(m.data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("feat: write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("feat: write %s: %w", path, err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("feat: write %s: %w", path, err)
	}
	return nil
}
