package feat

import (
	"math"
	"sort"
)

// Model is a trained statistical classifier: a 17-weight logistic layer
// over the shape features plus two trained tables — an interned label
// bigram log-odds table (the langid dense-table technique: sorted
// packed keys, binary-searched) and a per-TLD-class prior. A Model is
// immutable and safe for unbounded concurrent use; the serving layer
// shares one instance across every detector clone.
//
// Scoring runs in the raw-margin domain end to end: both decision
// thresholds (the flag threshold and the prefilter floor) are stored as
// raw margins, so the steady-state path never calls math.Exp and never
// allocates. Prob converts a raw margin to a probability for display.
type Model struct {
	// data retains the full IDNSTAT1 blob; the bigram key and value
	// sections are read from it in place (zero-copy, like candidx).
	data []byte

	seed         uint64
	bias         float64
	flagRaw      float64 // raw margin at/above which the verdict flags
	prefilterRaw float64 // raw margin at/above which the SSIM path runs
	weights      [NumFeatures]float64
	tldPrior     [NumTLDClasses]float64

	keyOff, valOff int // byte offsets of the bigram sections in data
	nBigrams       int

	// Lookup acceleration built at load (the blob stays the only
	// serialization format). ascii is the langid dense-table move
	// applied to bigrams: both halves of most label bigrams are ASCII
	// (including the boundary sentinels), so a 128×128 direct-index
	// plane answers the common case in one load. Non-ASCII pairs go
	// through an open-addressing hash table (Fibonacci hashing, linear
	// probing at ≤50% load) — 1–2 probes instead of a log₂(n) binary
	// search over the serialized key section.
	ascii  []float64
	htKeys []uint64
	htVals []float64
	htMask uint64
}

// Seed returns the training seed recorded in the model.
func (m *Model) Seed() uint64 { return m.seed }

// BigramCount returns the number of interned bigrams.
func (m *Model) BigramCount() int { return m.nBigrams }

// FlagRaw returns the raw-margin flag threshold (train-time F1-optimal).
func (m *Model) FlagRaw() float64 { return m.flagRaw }

// PrefilterRaw returns the raw-margin prefilter floor: labels scoring
// below it are shed before the SSIM rescore (chosen at train time for
// ≥ the configured recall on attack populations).
func (m *Model) PrefilterRaw() float64 { return m.prefilterRaw }

// Weights returns a copy of the logistic weights, indexed like
// FeatureNames.
func (m *Model) Weights() [NumFeatures]float64 { return m.weights }

// Bias returns the logistic intercept.
func (m *Model) Bias() float64 { return m.bias }

// Bytes returns the serialized IDNSTAT1 blob backing the model.
func (m *Model) Bytes() []byte { return m.data }

// Bigram boundary sentinels. Control characters cannot appear in a
// validated label, so the markers never collide with label content.
const (
	bigramStart = rune(0x02)
	bigramEnd   = rune(0x03)
)

// bigramKey packs an ordered rune pair into the table key.
func bigramKey(a, b rune) uint64 { return uint64(uint32(a))<<32 | uint64(uint32(b)) }

// bigramLogOdds looks one packed key up in the interned table: ASCII
// pairs (the overwhelming majority of label bigrams) hit the dense
// plane directly; the rest probe the load-time hash table. Unseen
// bigrams are neutral (0) — Laplace smoothing at training time keeps
// seen-bigram odds bounded, so neutrality is the consistent extension.
func (m *Model) bigramLogOdds(key uint64) float64 {
	a, b := key>>32, key&0xffffffff
	if a < asciiPlane && b < asciiPlane {
		return m.ascii[a*asciiPlane+b]
	}
	if m.htKeys == nil {
		return 0
	}
	i := (key * fibMult) >> 32 & m.htMask
	for {
		k := m.htKeys[i]
		if k == key {
			return m.htVals[i]
		}
		if k == 0 {
			// Keys pack two runes ≥ the 0x02 sentinel, so 0 can never
			// be a real key and doubles as the empty-slot marker.
			return 0
		}
		i = (i + 1) & m.htMask
	}
}

// asciiPlane is the side length of the dense ASCII bigram plane.
const asciiPlane = 128

// fibMult is the Fibonacci-hashing multiplier (2^64 / φ, odd).
const fibMult = 0x9e3779b97f4a7c15

// bigramMean averages the trained log-odds over the label's bigrams,
// with start/end boundary markers (a label's first character is as
// informative as its interior — attack splices cluster at edges).
func (m *Model) bigramMean(label string) float64 {
	if m.nBigrams == 0 {
		return 0
	}
	prev := bigramStart
	sum := 0.0
	n := 0
	for _, r := range label {
		sum += m.bigramLogOdds(bigramKey(prev, r))
		n++
		prev = r
	}
	sum += m.bigramLogOdds(bigramKey(prev, bigramEnd))
	n++
	return sum / float64(n)
}

// Featurize fills v with the full feature vector for one label under
// this model's trained tables. label is the Unicode SLD label, aceLabel
// its ACE form, tld the zone without trailing dot. ageDays/hasAge carry
// the registration timeline when the caller has one (corpus scans, the
// eval harness); the online serving path passes (0, false).
func (m *Model) Featurize(label, aceLabel, tld string, ageDays float64, hasAge bool, v *Vector) {
	shape(label, aceLabel, v)
	v[fBigram] = m.bigramMean(label)
	v[fTLDPrior] = m.tldPrior[TLDClass(tld)]
	age := 0.0
	if hasAge {
		age = ageDays / 3650
		if age < 0 {
			age = 0
		} else if age > 1 {
			age = 1
		}
		v[fHasAge] = 1
	} else {
		v[fHasAge] = 0
	}
	v[fAgeDays] = age
}

// ScoreDomain computes the raw logistic margin for one label with a
// known registration timeline. Zero allocations in steady state.
func (m *Model) ScoreDomain(label, aceLabel, tld string, ageDays float64, hasAge bool) float64 {
	var v Vector
	m.Featurize(label, aceLabel, tld, ageDays, hasAge, &v)
	s := m.bias
	for i := 0; i < NumFeatures; i++ {
		s += m.weights[i] * v[i]
	}
	return s
}

// ScoreLabel is ScoreDomain under serving conditions: no registration
// timeline is available at the request boundary. This is the hot-path
// entry point the prefilter gates on.
func (m *Model) ScoreLabel(label, aceLabel, tld string) float64 {
	return m.ScoreDomain(label, aceLabel, tld, 0, false)
}

// Flag reports whether a raw margin is at or above the flag threshold.
func (m *Model) Flag(raw float64) bool { return raw >= m.flagRaw }

// PrefilterPass reports whether a raw margin clears the prefilter floor.
func (m *Model) PrefilterPass(raw float64) bool { return raw >= m.prefilterRaw }

// Prob converts a raw margin to the logistic probability.
func (m *Model) Prob(raw float64) float64 {
	return 1 / (1 + math.Exp(-raw))
}

// Contribution is one feature's share of a flagged verdict's margin.
type Contribution struct {
	// Feature is the FeatureNames entry.
	Feature string `json:"feature"`
	// Value is the feature's extracted value.
	Value float64 `json:"value"`
	// Impact is weight × value — its signed share of the raw margin.
	Impact float64 `json:"impact"`
}

// TopContributions explains a score: the k features with the largest
// absolute impact on the raw margin, largest first. It allocates (one
// slice) and is meant for flagged verdicts and inspection, not the
// steady-state scoring path.
func (m *Model) TopContributions(label, aceLabel, tld string, ageDays float64, hasAge bool, k int) []Contribution {
	var v Vector
	m.Featurize(label, aceLabel, tld, ageDays, hasAge, &v)
	out := make([]Contribution, 0, NumFeatures)
	for i := 0; i < NumFeatures; i++ {
		impact := m.weights[i] * v[i]
		if impact == 0 {
			continue
		}
		out = append(out, Contribution{Feature: FeatureNames[i], Value: v[i], Impact: impact})
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := math.Abs(out[i].Impact), math.Abs(out[j].Impact)
		if ai != aj {
			return ai > aj
		}
		return out[i].Feature < out[j].Feature
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
