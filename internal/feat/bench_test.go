package feat

import "testing"

// BenchmarkStatClassify is the `make bench-stat` headline: one label
// scored through the zero-copy model under serving conditions, cycling
// through the held-out corpus so the branch mix matches real traffic.
// Gates (cmd/benchjson): 0 allocs/op and ≥1M classifications/s. The
// measured prefilter pass rate over the cycled set is reported as a
// custom metric so BENCH_stat.json records the shed capacity alongside
// the latency.
func BenchmarkStatClassify(b *testing.B) {
	m, _, exs := trainedModel(b)
	_, eval := Split(exs)
	if len(eval) == 0 {
		b.Fatal("no eval examples")
	}
	passed := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := &eval[i%len(eval)]
		if m.PrefilterPass(m.ScoreLabel(e.Label, e.ACELabel, e.TLD)) {
			passed++
		}
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(passed)/float64(b.N), "pass/op")
	}
}

// BenchmarkStatClassifyNaive is the recorded pre-optimization baseline
// (BENCH_baseline_stat.txt): the same features scored through the
// obvious map-based bigram table instead of the in-place binary search.
// The map path allocates nothing either, but pays hash + pointer-chase
// per bigram; the delta is the zero-copy table's win.
func BenchmarkStatClassifyNaive(b *testing.B) {
	m, _, exs := trainedModel(b)
	_, eval := Split(exs)
	if len(eval) == 0 {
		b.Fatal("no eval examples")
	}
	bigrams := naiveBigramMap(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := &eval[i%len(eval)]
		naiveScore(m, bigrams, e.Label, e.ACELabel, e.TLD)
	}
}

// BenchmarkStatTrain tracks the full train pipeline at a small scale —
// not gated, just visibility into the offline cost.
func BenchmarkStatTrain(b *testing.B) {
	reg, _, exs, err := TrainCorpus(testSeed, 20, TrainConfig{})
	if err != nil {
		b.Fatal(err)
	}
	_ = reg
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Train(exs, TrainConfig{Seed: testSeed}); err != nil {
			b.Fatal(err)
		}
	}
}
