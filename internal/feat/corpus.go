package feat

import (
	"idnlab/internal/idna"
	"idnlab/internal/zonegen"
)

// FromLabeled converts the corpus ground truth into training examples.
// The classifier scores SLD labels, so the domain forms are reduced to
// their label forms here, once, instead of in every training pass.
func FromLabeled(labels []zonegen.LabeledDomain) []Example {
	out := make([]Example, len(labels))
	for i, l := range labels {
		out[i] = Example{
			Label:      idna.SLDLabel(l.Unicode),
			ACELabel:   idna.SLDLabel(l.ACE),
			TLD:        l.TLD,
			AgeDays:    l.AgeDays,
			HasAge:     true,
			Positive:   l.Positive,
			Eval:       l.Eval,
			Population: l.Population,
		}
	}
	return out
}

// TrainCorpus generates the synthetic universe at (seed, scale),
// derives its labels and trains a model — the one-call path shared by
// `idnstat train -seed/-scale`, the report's abuse-taxonomy section
// and the test/benchmark harnesses.
func TrainCorpus(seed uint64, scale int, cfg TrainConfig) (*Model, *TrainReport, []Example, error) {
	reg := zonegen.Generate(zonegen.Config{Seed: seed, Scale: scale})
	exs := FromLabeled(reg.Labels())
	if cfg.Seed == 0 {
		cfg.Seed = seed
	}
	m, rep, err := Train(exs, cfg)
	return m, rep, exs, err
}
