package confusables

import (
	"testing"
	"testing/quick"

	"idnlab/internal/idna"
)

func TestDefaultTableContainsKnownHomoglyphs(t *testing.T) {
	tab := Default()
	wantPairs := []struct {
		base rune
		homo rune
	}{
		{'a', 'а'}, // Cyrillic a — the 2017 apple.com attack
		{'a', 'á'},
		{'a', 'ạ'},
		{'e', 'е'},
		{'o', 'о'},
		{'o', 'ö'},
		{'s', 'ѕ'},
		{'c', 'с'},
		{'p', 'р'},
		{'x', 'х'},
		{'y', 'у'},
	}
	for _, p := range wantPairs {
		found := false
		for _, h := range tab.Homoglyphs(p.base) {
			if h == p.homo {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("homoglyphs of %q missing %q (U+%04X)", p.base, p.homo, p.homo)
		}
	}
}

func TestEveryLetterHasHomoglyphs(t *testing.T) {
	// The availability study needs substitution options for common brand
	// letters; every Latin letter should have at least one homoglyph.
	tab := Default()
	for r := 'a'; r <= 'z'; r++ {
		if len(tab.Homoglyphs(r)) == 0 {
			t.Errorf("letter %q has no homoglyphs", r)
		}
	}
}

func TestHomoglyphsAreNonASCII(t *testing.T) {
	tab := Default()
	for _, base := range tab.Bases() {
		for _, h := range tab.Homoglyphs(base) {
			if h < 0x80 {
				t.Errorf("ASCII %q listed as homoglyph of %q", h, base)
			}
		}
	}
}

func TestBaseOf(t *testing.T) {
	tab := Default()
	cases := []struct {
		r    rune
		want rune
		ok   bool
	}{
		{'a', 'a', true},
		{'A', 'a', true},
		{'7', '7', true},
		{'-', '-', true},
		{'.', '.', true},
		{'а', 'a', true},
		{'ö', 'o', true},
		{'中', 0, false},
		{'!', 0, false},
	}
	for _, tc := range cases {
		got, ok := tab.BaseOf(tc.r)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("BaseOf(%q) = %q,%v want %q,%v", tc.r, got, ok, tc.want, tc.ok)
		}
	}
}

func TestSkeletonFoldsAttackDomains(t *testing.T) {
	tab := Default()
	cases := []struct{ in, want string }{
		{"аpple.com", "apple.com"},
		{"ѕоѕо.com", "soso.com"},
		{"gооglе.com", "google.com"},
		{"fаċebook.com", "facebook.com"},
		{"example.com", "example.com"},
		{"apple邮箱.com", "apple邮箱.com"}, // CJK untouched
	}
	for _, tc := range cases {
		if got := tab.Skeleton(tc.in); got != tc.want {
			t.Errorf("Skeleton(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSkeletonIdempotent(t *testing.T) {
	tab := Default()
	if err := quick.Check(func(raw []uint16) bool {
		runes := make([]rune, 0, len(raw))
		for _, v := range raw {
			r := rune(v)
			if r >= 0xD800 && r <= 0xDFFF {
				continue
			}
			runes = append(runes, r)
		}
		s := string(runes)
		once := tab.Skeleton(s)
		return tab.Skeleton(once) == once
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSkeletonASCIIIdentityOnLDH(t *testing.T) {
	tab := Default()
	s := "abcdefghijklmnopqrstuvwxyz0123456789-."
	if got := tab.Skeleton(s); got != s {
		t.Errorf("Skeleton(LDH) changed: %q", got)
	}
}

func TestVariantsGenerateValidIDNs(t *testing.T) {
	tab := Default()
	vars := tab.Variants("eay") // paper registered xn--eay-6xy.com etc.
	if len(vars) == 0 {
		t.Fatal("no variants generated")
	}
	seen := make(map[string]bool, len(vars))
	for _, v := range vars {
		if seen[v] {
			t.Errorf("duplicate variant %q", v)
		}
		seen[v] = true
		if v == "eay" {
			t.Error("variant equals original")
		}
		// Each variant differs in exactly one rune.
		diff := 0
		vr, or := []rune(v), []rune("eay")
		if len(vr) != len(or) {
			t.Fatalf("variant %q has different length", v)
		}
		for i := range vr {
			if vr[i] != or[i] {
				diff++
			}
		}
		if diff != 1 {
			t.Errorf("variant %q differs in %d positions", v, diff)
		}
		// And must be encodable as an IDN label.
		if _, err := idna.ToASCIILabel(v); err != nil {
			t.Errorf("variant %q not encodable: %v", v, err)
		}
	}
}

func TestVariantCountMatchesVariants(t *testing.T) {
	tab := Default()
	for _, label := range []string{"google", "facebook", "58", "ea", "x"} {
		if got, want := tab.VariantCount(label), len(tab.Variants(label)); got != want {
			t.Errorf("VariantCount(%q) = %d, Variants len = %d", label, got, want)
		}
	}
}

func TestVariantsEmptyForCJK(t *testing.T) {
	tab := Default()
	if vars := tab.Variants("中国"); len(vars) != 0 {
		t.Errorf("CJK label should have no homoglyph variants, got %d", len(vars))
	}
}

func TestBuildThresholdMonotone(t *testing.T) {
	loose := Build(0.5)
	strict := Build(0.95)
	if loose.Size() <= strict.Size() {
		t.Errorf("loose table (%d) should exceed strict table (%d)", loose.Size(), strict.Size())
	}
	// Every strict entry must also be in the loose table.
	for _, base := range strict.Bases() {
		looseSet := make(map[rune]bool)
		for _, h := range loose.Homoglyphs(base) {
			looseSet[h] = true
		}
		for _, h := range strict.Homoglyphs(base) {
			if !looseSet[h] {
				t.Errorf("strict entry %q->%q missing from loose table", base, h)
			}
		}
	}
}

func TestTableScale(t *testing.T) {
	// The paper built 128,432 candidates for 1k brands with UC-SimList;
	// our table needs enough density to exercise the same pipeline. With
	// ~200 composed code points we expect well over 100 entries.
	tab := Default()
	if tab.Size() < 100 {
		t.Errorf("table has only %d entries; repertoire too thin", tab.Size())
	}
	if tab.Size() > 1000 {
		t.Errorf("table has %d entries; threshold admitting junk?", tab.Size())
	}
}

func TestHomoglyphsSorted(t *testing.T) {
	tab := Default()
	for _, base := range tab.Bases() {
		hs := tab.Homoglyphs(base)
		for i := 1; i < len(hs); i++ {
			if hs[i-1] >= hs[i] {
				t.Fatalf("homoglyphs of %q not sorted", base)
			}
		}
	}
}

func BenchmarkSkeletonAttackDomain(b *testing.B) {
	tab := Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tab.Skeleton("fаċebооk.com")
	}
}

func BenchmarkVariantsBrand(b *testing.B) {
	tab := Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tab.Variants("facebook")
	}
}

func BenchmarkBuildTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Build(DefaultOverlapThreshold)
	}
}

func TestVariantsMultiSupersetOfSingle(t *testing.T) {
	tab := Default()
	single := tab.Variants("ea")
	multi := tab.VariantsMulti("ea", 1, 0)
	if len(multi) != len(single) {
		t.Fatalf("maxSubs=1 should equal single-substitution: %d vs %d", len(multi), len(single))
	}
	set := make(map[string]bool, len(multi))
	for _, v := range multi {
		set[v] = true
	}
	for _, v := range single {
		if !set[v] {
			t.Errorf("single variant %q missing from multi set", v)
		}
	}
}

func TestVariantsMultiGrowth(t *testing.T) {
	tab := Default()
	one := tab.VariantCountMulti("google", 1)
	two := tab.VariantCountMulti("google", 2)
	if two <= one {
		t.Errorf("two-substitution space (%d) should exceed one (%d)", two, one)
	}
	// The full two-sub space must match the enumerator.
	enum := tab.VariantsMulti("google", 2, 0)
	if len(enum) != two {
		t.Errorf("enumerated %d, counted %d", len(enum), two)
	}
}

func TestVariantsMultiLimit(t *testing.T) {
	tab := Default()
	capped := tab.VariantsMulti("facebook", 2, 50)
	if len(capped) != 50 {
		t.Errorf("limit not honored: %d", len(capped))
	}
}

func TestVariantsMultiSubstitutionBound(t *testing.T) {
	tab := Default()
	for _, v := range tab.VariantsMulti("apple", 2, 500) {
		diffs := 0
		vr := []rune(v)
		or := []rune("apple")
		if len(vr) != len(or) {
			t.Fatalf("length changed: %q", v)
		}
		for i := range vr {
			if vr[i] != or[i] {
				diffs++
			}
		}
		if diffs < 1 || diffs > 2 {
			t.Errorf("variant %q has %d substitutions", v, diffs)
		}
	}
}

func TestVariantsMultiInvalidArgs(t *testing.T) {
	tab := Default()
	if got := tab.VariantsMulti("abc", 0, 0); got != nil {
		t.Errorf("maxSubs=0 should yield nil, got %d", len(got))
	}
}
