// Package confusables builds and queries a homoglyph table: for each ASCII
// domain character, the set of Unicode code points that render visually
// similar to it.
//
// The paper's availability study (§VI-D) used UC-SimList, "composed based
// on pixel overlap between bitmaps of characters". This package applies the
// same construction to our own typeface (package glyph): every code point
// in the supported repertoire is rasterized and its ink overlap with each
// ASCII base glyph is measured; pairs above a threshold become confusables.
// The result is therefore a UC-SimList derived from first principles rather
// than a copied artifact.
package confusables

import (
	"sort"
	"strings"
	"sync"

	"idnlab/internal/glyph"
)

// DefaultOverlapThreshold is the minimum ink-overlap ratio for two glyphs
// to be considered confusable. Identity renderings score 1.0; a single
// two-pixel diacritic on a typical glyph scores ≈0.85-0.95; unrelated
// letters score below 0.7.
const DefaultOverlapThreshold = 0.72

// Table maps each ASCII base character to its confusable code points.
type Table struct {
	byBase map[rune][]rune
	toBase map[rune]rune
}

// Build constructs a confusable table from the glyph repertoire with the
// given overlap threshold. Only non-ASCII code points whose skeleton (per
// the composition table) matches the base are admitted as homoglyphs —
// the same "same-letter family" structure UC-SimList has — plus any
// non-ASCII code point whose measured overlap with an unrelated base glyph
// still exceeds the threshold (cross-letter confusables such as ı vs l).
func Build(threshold float64) *Table {
	t := &Table{
		byBase: make(map[rune][]rune),
		toBase: make(map[rune]rune),
	}
	bases := []rune("abcdefghijklmnopqrstuvwxyz0123456789")
	for _, cand := range glyph.Composed() {
		if cand < 0x80 {
			continue
		}
		bestBase := rune(0)
		bestOverlap := 0.0
		for _, base := range bases {
			ov := glyph.InkOverlap(base, cand)
			if ov > bestOverlap {
				bestOverlap, bestBase = ov, base
			}
		}
		if bestOverlap >= threshold {
			t.byBase[bestBase] = append(t.byBase[bestBase], cand)
			t.toBase[cand] = bestBase
		}
	}
	for _, hs := range t.byBase {
		sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	}
	return t
}

// BuildMulti constructs a *loose* table in which a code point is attached
// to every ASCII base whose ink overlap meets the threshold, not just its
// best match. This reproduces the breadth of UC-SimList: the paper
// generated 128,432 single-substitution candidates of which only 42,671
// (≈33%) survived the SSIM filter — i.e. the source list deliberately
// included weak lookalikes. Use Build/Default for detection folding and
// BuildMulti for candidate generation (§VI-D).
func BuildMulti(threshold float64) *Table {
	t := &Table{
		byBase: make(map[rune][]rune),
		toBase: make(map[rune]rune),
	}
	bases := []rune("abcdefghijklmnopqrstuvwxyz0123456789")
	for _, cand := range glyph.Composed() {
		if cand < 0x80 {
			continue
		}
		bestBase, bestOverlap := rune(0), 0.0
		for _, base := range bases {
			ov := glyph.InkOverlap(base, cand)
			if ov >= threshold {
				t.byBase[base] = append(t.byBase[base], cand)
			}
			if ov > bestOverlap {
				bestOverlap, bestBase = ov, base
			}
		}
		if bestOverlap >= threshold {
			t.toBase[cand] = bestBase
		}
	}
	for _, hs := range t.byBase {
		sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	}
	return t
}

var (
	defaultOnce  sync.Once
	defaultTable *Table
)

// Default returns the package-wide table built at DefaultOverlapThreshold.
// The table is immutable after construction and safe for concurrent use.
func Default() *Table {
	defaultOnce.Do(func() { defaultTable = Build(DefaultOverlapThreshold) })
	return defaultTable
}

var (
	multiMu    sync.Mutex
	multiCache map[float64]*Table
)

// Multi returns the process-wide loose table for a threshold, built once
// per distinct threshold (BuildMulti rasterizes and cross-correlates the
// whole repertoire — hundreds of microseconds a caller in a scan loop
// should not pay twice). Tables are immutable after construction and safe
// for concurrent use.
func Multi(threshold float64) *Table {
	multiMu.Lock()
	defer multiMu.Unlock()
	if t, ok := multiCache[threshold]; ok {
		return t
	}
	if multiCache == nil {
		multiCache = make(map[float64]*Table)
	}
	t := BuildMulti(threshold)
	multiCache[threshold] = t
	return t
}

// Homoglyphs returns the confusable code points for an ASCII base
// character, best-overlap first order not guaranteed (sorted by code
// point). The returned slice must not be modified.
func (t *Table) Homoglyphs(base rune) []rune {
	if base >= 'A' && base <= 'Z' {
		base += 'a' - 'A'
	}
	return t.byBase[base]
}

// BaseOf returns the ASCII character that code point r is confusable with,
// and whether r is in the table. ASCII letters and digits map to
// themselves.
func (t *Table) BaseOf(r rune) (rune, bool) {
	if r < 0x80 {
		if r >= 'A' && r <= 'Z' {
			r += 'a' - 'A'
		}
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') || r == '-' || r == '.' {
			return r, true
		}
		return 0, false
	}
	base, ok := t.toBase[r]
	return base, ok
}

// Size returns the total number of homoglyph entries in the table.
func (t *Table) Size() int {
	n := 0
	for _, hs := range t.byBase {
		n += len(hs)
	}
	return n
}

// Bases returns the ASCII characters that have at least one homoglyph,
// sorted.
func (t *Table) Bases() []rune {
	out := make([]rune, 0, len(t.byBase))
	for b := range t.byBase {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Skeleton folds every confusable code point of s to its ASCII base,
// leaving unmappable code points in place. Skeleton(Skeleton(x)) ==
// Skeleton(x). The fold is the cheap prefilter the detector uses before
// the expensive SSIM comparison.
func (t *Table) Skeleton(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		if base, ok := t.BaseOf(r); ok {
			b.WriteRune(base)
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Variants generates the single-substitution homographic candidates of an
// ASCII domain label: for each character position and each homoglyph of
// that character, one candidate with that position replaced. This is
// exactly the paper's candidate generation — "to reduce the computation
// overhead, only one character was replaced at a time" (§VI-D).
func (t *Table) Variants(label string) []string {
	runes := []rune(label)
	var out []string
	for i, r := range runes {
		for _, h := range t.Homoglyphs(r) {
			cand := make([]rune, len(runes))
			copy(cand, runes)
			cand[i] = h
			out = append(out, string(cand))
		}
	}
	return out
}

// VariantCount returns the number of single-substitution candidates
// Variants would generate, without materializing them.
func (t *Table) VariantCount(label string) int {
	n := 0
	for _, r := range label {
		n += len(t.Homoglyphs(r))
	}
	return n
}

// VariantsMulti generates homographic candidates with up to maxSubs
// character substitutions, capped at limit results (0 = no cap). The
// paper's availability study replaced one character at a time "to reduce
// the computation overhead" and notes its 42,671 count "is just the
// lower-bound"; this enumerator quantifies how fast the space grows with
// additional substitutions.
func (t *Table) VariantsMulti(label string, maxSubs, limit int) []string {
	if maxSubs < 1 {
		return nil
	}
	runes := []rune(label)
	var out []string
	seen := make(map[string]struct{})
	var walk func(pos, subs int, current []rune)
	walk = func(pos, subs int, current []rune) {
		if limit > 0 && len(out) >= limit {
			return
		}
		if pos == len(runes) {
			if subs > 0 {
				cand := string(current)
				if _, dup := seen[cand]; !dup {
					seen[cand] = struct{}{}
					out = append(out, cand)
				}
			}
			return
		}
		// Keep the original character.
		current[pos] = runes[pos]
		walk(pos+1, subs, current)
		if subs >= maxSubs {
			return
		}
		for _, h := range t.Homoglyphs(runes[pos]) {
			if limit > 0 && len(out) >= limit {
				return
			}
			current[pos] = h
			walk(pos+1, subs+1, current)
		}
		current[pos] = runes[pos]
	}
	walk(0, 0, make([]rune, len(runes)))
	return out
}

// VariantCountMulti returns the exact size of the maxSubs-substitution
// candidate space without materializing it.
func (t *Table) VariantCountMulti(label string, maxSubs int) int {
	// Dynamic program over positions: ways[s] = number of prefixes with s
	// substitutions.
	runes := []rune(label)
	ways := make([]int, maxSubs+1)
	ways[0] = 1
	for _, r := range runes {
		h := len(t.Homoglyphs(r))
		next := make([]int, maxSubs+1)
		for s := 0; s <= maxSubs; s++ {
			if ways[s] == 0 {
				continue
			}
			next[s] += ways[s] // keep original
			if s < maxSubs {
				next[s+1] += ways[s] * h
			}
		}
		ways = next
	}
	total := 0
	for s := 1; s <= maxSubs; s++ {
		total += ways[s]
	}
	return total
}
