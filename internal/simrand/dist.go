package simrand

import (
	"math"
	"sort"
)

// Zipf samples integers in [0, n) with probability proportional to
// 1/(rank+1)^s. It precomputes the cumulative distribution so sampling is a
// binary search; this matches the registrar/registrant concentration model
// where a few heads own most of the mass (paper: top-10 registrars hold 55%
// of IDNs).
type Zipf struct {
	src *Source
	cdf []float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent s. It panics if
// n <= 0 or s < 0.
func NewZipf(src *Source, n int, s float64) *Zipf {
	if n <= 0 {
		panic("simrand: NewZipf with non-positive n")
	}
	if s < 0 {
		panic("simrand: NewZipf with negative exponent")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{src: src, cdf: cdf}
}

// Next returns the next rank in [0, n).
func (z *Zipf) Next() int {
	u := z.src.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Weighted samples indices in proportion to a fixed weight vector. Used for
// the language mix, TLD mix and content-category mixes, which the paper
// reports as explicit percentage tables.
type Weighted struct {
	src *Source
	cdf []float64
}

// NewWeighted builds a sampler over the given non-negative weights. It
// panics if weights is empty or sums to zero.
func NewWeighted(src *Source, weights []float64) *Weighted {
	if len(weights) == 0 {
		panic("simrand: NewWeighted with no weights")
	}
	cdf := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("simrand: NewWeighted with negative weight")
		}
		sum += w
		cdf[i] = sum
	}
	if sum == 0 {
		panic("simrand: NewWeighted with zero total weight")
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Weighted{src: src, cdf: cdf}
}

// Next returns the next sampled index.
func (w *Weighted) Next() int {
	u := w.src.Float64()
	return sort.SearchFloat64s(w.cdf, u)
}

// N returns the number of categories.
func (w *Weighted) N() int { return len(w.cdf) }
