package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("sequence diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Fork("whois")
	c2 := parent.Fork("pdns")
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("forks with different labels produced identical first value")
	}
	// Forking must not disturb the parent sequence.
	p1 := New(7)
	p1.Fork("whois")
	p1.Fork("pdns")
	p2 := New(7)
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("fork disturbed parent state")
	}
}

func TestForkSameLabelSameStream(t *testing.T) {
	a := New(7).Fork("x")
	b := New(7).Fork("x")
	if a.Uint64() != b.Uint64() {
		t.Fatal("same label forks differ")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(4)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := s.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(5)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Intn(n)]++
	}
	want := trials / n
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d count %d far from expected %d", i, c, want)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(6)
	const trials = 200000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(8)
	for i := 0; i < 1000; i++ {
		if v := s.LogNormal(2, 1.5); v <= 0 {
			t.Fatalf("LogNormal returned non-positive %v", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(9)
	const trials = 200000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += s.Exponential(50)
	}
	mean := sum / trials
	if mean < 48 || mean > 52 {
		t.Errorf("exponential mean = %v, want ~50", mean)
	}
}

func TestParetoBounds(t *testing.T) {
	s := New(10)
	for i := 0; i < 1000; i++ {
		if v := s.Pareto(3, 1.2); v < 3 {
			t.Fatalf("Pareto below scale: %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(11)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation element %d", v)
		}
		seen[v] = true
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	s := New(12)
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	s.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	for _, v := range vals {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements, sum=%d", sum)
	}
}

func TestZipfConcentration(t *testing.T) {
	src := New(13)
	z := NewZipf(src, 700, 1.1)
	const trials = 100000
	counts := make([]int, 700)
	for i := 0; i < trials; i++ {
		counts[z.Next()]++
	}
	top10 := 0
	for i := 0; i < 10; i++ {
		top10 += counts[i]
	}
	// With s=1.1 over 700 ranks, top-10 should capture a large plurality —
	// the same concentration regime as the paper's registrar table.
	if frac := float64(top10) / trials; frac < 0.35 || frac > 0.75 {
		t.Errorf("top-10 fraction = %v, want mid-range concentration", frac)
	}
	if counts[0] < counts[100] {
		t.Error("rank 0 should dominate rank 100")
	}
}

func TestZipfRange(t *testing.T) {
	z := NewZipf(New(14), 5, 1)
	for i := 0; i < 1000; i++ {
		if v := z.Next(); v < 0 || v >= 5 {
			t.Fatalf("Zipf out of range: %d", v)
		}
	}
	if z.N() != 5 {
		t.Fatalf("N = %d", z.N())
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewZipf(New(1), 0, 1)
}

func TestWeightedProportions(t *testing.T) {
	src := New(15)
	w := NewWeighted(src, []float64{52, 13, 9, 26})
	const trials = 100000
	counts := make([]int, 4)
	for i := 0; i < trials; i++ {
		counts[w.Next()]++
	}
	wantFrac := []float64{0.52, 0.13, 0.09, 0.26}
	for i, c := range counts {
		got := float64(c) / trials
		if math.Abs(got-wantFrac[i]) > 0.01 {
			t.Errorf("category %d frequency %v, want %v", i, got, wantFrac[i])
		}
	}
}

func TestWeightedZeroWeightNeverSampled(t *testing.T) {
	w := NewWeighted(New(16), []float64{0, 1, 0})
	for i := 0; i < 1000; i++ {
		if v := w.Next(); v != 1 {
			t.Fatalf("sampled zero-weight category %d", v)
		}
	}
}

func TestWeightedPanics(t *testing.T) {
	for _, weights := range [][]float64{nil, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %v", weights)
				}
			}()
			NewWeighted(New(1), weights)
		}()
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkZipfNext(b *testing.B) {
	z := NewZipf(New(1), 1000, 1.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}
