// Package simrand provides a deterministic pseudo-random number generator
// and the statistical samplers used by the synthetic data generators.
//
// All generators in this repository are seeded explicitly so that the full
// synthetic registry — and therefore every table and figure reproduced from
// it — is bit-for-bit reproducible across runs and platforms. The core
// generator is splitmix64, chosen for its tiny state, full 64-bit period per
// seed and statistical quality sufficient for workload synthesis.
package simrand

import (
	"math"
)

// Source is a deterministic splitmix64 pseudo-random number generator.
// The zero value is a valid generator seeded with 0. Source is not safe for
// concurrent use; derive independent sources with Fork for parallel work.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Fork derives an independent child generator from the current state and a
// stream label. Two forks with different labels produce uncorrelated
// sequences, and forking does not disturb the parent's sequence.
func (s *Source) Fork(label string) *Source {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return &Source{state: mix(s.state) ^ h}
}

// mix is the splitmix64 output function applied to a raw state value.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next value in the sequence.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("simrand: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("simrand: Int63n with non-positive n")
	}
	return int64(s.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// NormFloat64 returns a standard normal variate via the Box–Muller
// transform. One variate per call; the pair's second value is discarded to
// keep the generator state a pure function of call count.
func (s *Source) NormFloat64() float64 {
	// Guard against log(0).
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LogNormal returns a log-normal variate with the given parameters of the
// underlying normal (mu, sigma). Used for query volumes and active times,
// which are heavy-tailed in the paper's passive-DNS feeds.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.NormFloat64())
}

// Exponential returns an exponential variate with the given mean.
func (s *Source) Exponential(mean float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Pareto returns a Pareto (type I) variate with scale xm and shape alpha.
func (s *Source) Pareto(xm, alpha float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher–Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders n elements using the provided swap
// function (Fisher–Yates).
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
