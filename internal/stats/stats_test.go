package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4, 5})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.2}, {2.5, 0.4}, {5, 1}, {100, 1},
	}
	for _, tc := range cases {
		if got := e.At(tc.x); got != tc.want {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if e.Len() != 5 || e.Min() != 1 || e.Max() != 5 || e.Mean() != 3 {
		t.Errorf("summary stats wrong: len=%d min=%v max=%v mean=%v", e.Len(), e.Min(), e.Max(), e.Mean())
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.At(10) != 0 || e.Quantile(0.5) != 0 || e.Mean() != 0 || e.Min() != 0 || e.Max() != 0 {
		t.Error("empty ECDF should be all zeros")
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(200)
		sample := make([]float64, n)
		for i := range sample {
			sample[i] = rr.NormFloat64() * 100
		}
		e := NewECDF(sample)
		prev := -1.0
		for x := -300.0; x <= 300; x += 13 {
			v := e.At(x)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return e.At(e.Max()) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

func TestECDFDoesNotAliasInput(t *testing.T) {
	sample := []float64{3, 1, 2}
	e := NewECDF(sample)
	sample[0] = 999
	if e.Max() != 3 {
		t.Error("ECDF aliased caller's slice")
	}
}

func TestQuantile(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	cases := []struct{ p, want float64 }{
		{0, 10}, {0.1, 10}, {0.5, 50}, {0.9, 90}, {1, 100}, {-1, 10}, {2, 100},
	}
	for _, tc := range cases {
		if got := e.Quantile(tc.p); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestQuantileAtInverse(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	sample := make([]float64, 500)
	for i := range sample {
		sample[i] = r.Float64() * 1000
	}
	e := NewECDF(sample)
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		q := e.Quantile(p)
		if at := e.At(q); at < p-0.01 {
			t.Errorf("At(Quantile(%v)) = %v < p", p, at)
		}
	}
}

func TestLogTicks(t *testing.T) {
	ticks := LogTicks(1, 10000, 5)
	want := []float64{1, 10, 100, 1000, 10000}
	if len(ticks) != 5 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := range want {
		if math.Abs(ticks[i]-want[i])/want[i] > 1e-9 {
			t.Errorf("tick %d = %v, want %v", i, ticks[i], want[i])
		}
	}
	if LogTicks(0, 10, 3) != nil || LogTicks(5, 5, 3) != nil || LogTicks(1, 10, 1) != nil {
		t.Error("invalid inputs should return nil")
	}
}

func TestRenderECDFTable(t *testing.T) {
	out := RenderECDFTable("Fig 2", []float64{1, 10, 100}, []Series{
		{Name: "IDN", Values: []float64{5, 50, 500}},
		{Name: "non-IDN", Values: []float64{200, 300, 400}},
	})
	if !strings.Contains(out, "Fig 2") || !strings.Contains(out, "IDN") {
		t.Errorf("render missing headers:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title + header + 3 ticks
		t.Errorf("render has %d lines:\n%s", len(lines), out)
	}
	// At x=100: IDN has 2/3 of values <= 100, non-IDN 0/3.
	if !strings.Contains(lines[4], "0.667") || !strings.Contains(lines[4], "0.000") {
		t.Errorf("tick row wrong: %q", lines[4])
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram{2015: 3, 2000: 1, 2017: 5}
	if got := h.Keys(); !sort.IntsAreSorted(got) || len(got) != 3 {
		t.Errorf("Keys = %v", got)
	}
	if h.Total() != 9 {
		t.Errorf("Total = %d", h.Total())
	}
	out := h.Render(10)
	if !strings.Contains(out, "2017\t5\t##########") {
		t.Errorf("render:\n%s", out)
	}
	if !strings.Contains(out, "2000\t1\t##") {
		t.Errorf("scaled bar wrong:\n%s", out)
	}
}

func TestCumulativeShare(t *testing.T) {
	cs := CumulativeShare([]int{1, 7, 2})
	want := []float64{0.7, 0.9, 1.0}
	for i := range want {
		if math.Abs(cs[i]-want[i]) > 1e-12 {
			t.Errorf("cs[%d] = %v, want %v", i, cs[i], want[i])
		}
	}
	if got := CumulativeShare(nil); len(got) != 0 {
		t.Error("empty input should give empty output")
	}
	if got := CumulativeShare([]int{0, 0}); got[0] != 0 || got[1] != 0 {
		t.Error("all-zero counts should give zero shares")
	}
}

func TestCumulativeShareMonotoneProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		counts := make([]int, len(raw))
		for i, v := range raw {
			counts[i] = int(v)
		}
		cs := CumulativeShare(counts)
		prev := 0.0
		for _, v := range cs {
			if v < prev-1e-12 || v > 1+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopKShare(t *testing.T) {
	counts := []int{50, 30, 10, 5, 5}
	if got := TopKShare(counts, 1); got != 0.5 {
		t.Errorf("top-1 = %v", got)
	}
	if got := TopKShare(counts, 2); got != 0.8 {
		t.Errorf("top-2 = %v", got)
	}
	if got := TopKShare(counts, 100); got != 1.0 {
		t.Errorf("top-100 = %v", got)
	}
	if got := TopKShare(counts, 0); got != 0 {
		t.Errorf("top-0 = %v", got)
	}
	if got := TopKShare(nil, 3); got != 0 {
		t.Errorf("empty = %v", got)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.5219); got != "52.19%" {
		t.Errorf("Percent = %q", got)
	}
}

func BenchmarkECDFBuild(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	sample := make([]float64, 15000)
	for i := range sample {
		sample[i] = r.Float64() * 1e6
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewECDF(sample)
	}
}

func BenchmarkECDFAt(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	sample := make([]float64, 15000)
	for i := range sample {
		sample[i] = r.Float64() * 1e6
	}
	e := NewECDF(sample)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.At(float64(i % 1000000))
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]int{5, 5, 5, 5}); math.Abs(g) > 1e-12 {
		t.Errorf("even distribution Gini = %v, want 0", g)
	}
	g1 := Gini([]int{100, 0, 0, 0})
	if g1 < 0.7 || g1 > 0.76 {
		t.Errorf("max-concentration Gini = %v, want (n-1)/n = 0.75", g1)
	}
	mid := Gini([]int{50, 30, 15, 5})
	if mid <= 0 || mid >= g1 {
		t.Errorf("moderate Gini = %v, should be between 0 and %v", mid, g1)
	}
	if Gini(nil) != 0 || Gini([]int{0, 0}) != 0 {
		t.Error("degenerate inputs should be 0")
	}
}

func TestGiniScaleInvariant(t *testing.T) {
	a := Gini([]int{10, 20, 30, 40})
	b := Gini([]int{100, 200, 300, 400})
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("Gini not scale-invariant: %v vs %v", a, b)
	}
}
