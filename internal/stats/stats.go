// Package stats provides the statistics layer behind every figure: ECDFs
// (Figures 2, 3, 4, 5, 8), histograms (Figure 1), grouped counters
// (Figure 6, 7) and plain-text rendering of the series so the benchmark
// harness can print the same curves the paper plots.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from a sample. The input slice is copied.
func NewECDF(sample []float64) *ECDF {
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// At returns P(X <= x), in [0, 1]. An empty ECDF returns 0 everywhere.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the p-quantile (nearest-rank), p clamped to [0, 1].
// An empty ECDF returns 0.
func (e *ECDF) Quantile(p float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	i := int(math.Ceil(p*float64(len(e.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return e.sorted[i]
}

// Mean returns the sample mean (0 for an empty sample).
func (e *ECDF) Mean() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range e.sorted {
		sum += v
	}
	return sum / float64(len(e.sorted))
}

// Min and Max return the sample extremes (0 for an empty sample).
func (e *ECDF) Min() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	return e.sorted[0]
}

// Max returns the largest sample value.
func (e *ECDF) Max() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	return e.sorted[len(e.sorted)-1]
}

// LogTicks returns k x-axis positions log-spaced over [lo, hi], the axis
// the paper's figures use for day counts and query volumes. lo must be
// positive and hi > lo; k >= 2.
func LogTicks(lo, hi float64, k int) []float64 {
	if lo <= 0 || hi <= lo || k < 2 {
		return nil
	}
	out := make([]float64, k)
	ratio := math.Log(hi / lo)
	for i := 0; i < k; i++ {
		out[i] = lo * math.Exp(ratio*float64(i)/float64(k-1))
	}
	return out
}

// Series is a named sample for multi-line figure rendering.
type Series struct {
	Name   string
	Values []float64
}

// RenderECDFTable renders named ECDFs as a text table: one row per tick,
// one column per series, values are cumulative fractions. This is the
// textual equivalent of the paper's multi-line ECDF figures.
func RenderECDFTable(title string, ticks []float64, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	b.WriteString("x")
	ecdfs := make([]*ECDF, len(series))
	for i, s := range series {
		ecdfs[i] = NewECDF(s.Values)
		fmt.Fprintf(&b, "\t%s", s.Name)
	}
	b.WriteByte('\n')
	for _, x := range ticks {
		fmt.Fprintf(&b, "%.6g", x)
		for _, e := range ecdfs {
			fmt.Fprintf(&b, "\t%.3f", e.At(x))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Histogram counts values into integer-keyed bins (e.g. years).
type Histogram map[int]int

// Keys returns the bins in ascending order.
func (h Histogram) Keys() []int {
	out := make([]int, 0, len(h))
	for k := range h {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Total returns the sum of all bin counts.
func (h Histogram) Total() int {
	n := 0
	for _, v := range h {
		n += v
	}
	return n
}

// Render prints the histogram as "key\tcount\tbar" rows with bars scaled
// to width characters.
func (h Histogram) Render(width int) string {
	if width < 1 {
		width = 1
	}
	max := 0
	for _, v := range h {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, k := range h.Keys() {
		n := h[k]
		bar := 0
		if max > 0 {
			bar = n * width / max
		}
		fmt.Fprintf(&b, "%d\t%d\t%s\n", k, n, strings.Repeat("#", bar))
	}
	return b.String()
}

// CumulativeShare returns, for the counts sorted descending, the fraction
// of total mass captured by the top-k entries for each k — the curve of
// Figure 4 ("80% IDNs are hosted in 1,000 /24 segments") and the
// registrar-concentration claims.
func CumulativeShare(counts []int) []float64 {
	sorted := make([]int, len(counts))
	copy(sorted, counts)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	total := 0
	for _, c := range sorted {
		total += c
	}
	out := make([]float64, len(sorted))
	if total == 0 {
		return out
	}
	run := 0
	for i, c := range sorted {
		run += c
		out[i] = float64(run) / float64(total)
	}
	return out
}

// TopKShare returns the fraction of total mass held by the k largest
// counts (1.0 when k exceeds the population).
func TopKShare(counts []int, k int) float64 {
	cs := CumulativeShare(counts)
	if len(cs) == 0 || k <= 0 {
		return 0
	}
	if k > len(cs) {
		k = len(cs)
	}
	return cs[k-1]
}

// Percent formats a fraction as "12.34%".
func Percent(frac float64) string {
	return fmt.Sprintf("%.2f%%", frac*100)
}

// Gini computes the Gini coefficient of a count vector — a single-number
// summary of the hosting concentration behind Figure 4 (0 = perfectly
// even, →1 = all mass in one bin).
func Gini(counts []int) float64 {
	n := len(counts)
	if n == 0 {
		return 0
	}
	sorted := make([]int, n)
	copy(sorted, counts)
	sort.Ints(sorted)
	var cum, weighted float64
	for i, c := range sorted {
		cum += float64(c)
		weighted += float64(i+1) * float64(c)
	}
	if cum == 0 {
		return 0
	}
	return (2*weighted - float64(n+1)*cum) / (float64(n) * cum)
}
