// Package certs implements the SSL-certificate substrate: a certificate
// authority that mints real X.509 certificates in the misconfiguration
// categories of the paper's Table VI, and a classifier that reproduces the
// paper's taxonomy by performing actual chain and hostname verification
// with crypto/x509.
//
// The paper fetched certificate chains from port 443 of ~737K resolvable
// IDNs with OpenSSL and "the validity of all certificates were checked by
// OpenSSL as well", splitting the problems into Expired (12.54%), Invalid
// Authority / self-signed (18.14%) and Invalid Common Name / shared
// (67.28%). We cannot scan the Internet, so the generator deploys
// synthetic-but-real certificates at those rates and this package verifies
// them for real.
package certs

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"io"
	"math/big"
	"sort"
	"strings"
	"time"

	"idnlab/internal/simrand"
)

// Problem classifies one deployed certificate per Table VI. Categories are
// mutually exclusive; a certificate with several defects reports the first
// one in this priority order, matching how the paper's rows partition the
// total.
type Problem int

// Problem values.
const (
	// ProblemNone means the chain verifies and the name matches.
	ProblemNone Problem = iota
	// ProblemExpired means the certificate is outside its validity window.
	ProblemExpired
	// ProblemInvalidAuthority means the chain does not verify to a trusted
	// root (self-signed or unknown issuer).
	ProblemInvalidAuthority
	// ProblemInvalidCommonName means the chain verifies but the leaf is
	// not valid for the serving domain (shared certificates).
	ProblemInvalidCommonName
)

var problemNames = map[Problem]string{
	ProblemNone:              "Valid",
	ProblemExpired:           "Expired Certificate",
	ProblemInvalidAuthority:  "Invalid Authority",
	ProblemInvalidCommonName: "Invalid Common Name",
}

// String returns the Table VI row label.
func (p Problem) String() string {
	if n, ok := problemNames[p]; ok {
		return n
	}
	return "Unknown"
}

// randReader adapts simrand.Source to io.Reader for deterministic key
// generation. The resulting keys are reproducible and NOT cryptographically
// secret — this is a measurement simulator, not a production CA.
type randReader struct {
	src *simrand.Source
}

func (r randReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(r.src.Uint64())
	}
	return len(p), nil
}

// Authority is a synthetic certificate authority.
type Authority struct {
	cert   *x509.Certificate
	key    *ecdsa.PrivateKey
	pool   *x509.CertPool
	rand   io.Reader
	serial int64
	now    time.Time
	// keyPool caches a few leaf keys; key reuse does not affect the
	// validity taxonomy and makes large deployments fast.
	keyPool []*ecdsa.PrivateKey
}

// NewAuthority creates a CA with deterministic keys derived from seed.
// now anchors validity windows (certificates are valid relative to it).
func NewAuthority(seed uint64, now time.Time) (*Authority, error) {
	a := &Authority{rand: randReader{src: simrand.New(seed)}, now: now.UTC(), serial: 1}
	key, err := ecdsa.GenerateKey(elliptic.P256(), a.rand)
	if err != nil {
		return nil, fmt.Errorf("certs: generate CA key: %w", err)
	}
	a.key = key
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(a.nextSerial()),
		Subject:               pkix.Name{CommonName: "IDNLab Synthetic Root CA", Organization: []string{"idnlab"}},
		NotBefore:             a.now.AddDate(-10, 0, 0),
		NotAfter:              a.now.AddDate(10, 0, 0),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(a.rand, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("certs: create CA cert: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("certs: parse CA cert: %w", err)
	}
	a.cert = cert
	a.pool = x509.NewCertPool()
	a.pool.AddCert(cert)
	for i := 0; i < 4; i++ {
		k, err := ecdsa.GenerateKey(elliptic.P256(), a.rand)
		if err != nil {
			return nil, fmt.Errorf("certs: generate leaf key: %w", err)
		}
		a.keyPool = append(a.keyPool, k)
	}
	return a, nil
}

func (a *Authority) nextSerial() int64 {
	a.serial++
	return a.serial
}

// Roots returns the trust pool containing this authority's root.
func (a *Authority) Roots() *x509.CertPool { return a.pool }

// Now returns the reference time validity windows are anchored to.
func (a *Authority) Now() time.Time { return a.now }

// IssueOption customizes certificate issuance.
type IssueOption func(*issueConfig)

type issueConfig struct {
	expired    bool
	selfSigned bool
}

// Expired makes the certificate's validity window end before the
// authority's reference time.
func Expired() IssueOption { return func(c *issueConfig) { c.expired = true } }

// SelfSigned signs the certificate with its own key instead of the CA.
func SelfSigned() IssueOption { return func(c *issueConfig) { c.selfSigned = true } }

// Issue mints a server certificate for the given DNS name. By default the
// certificate is CA-signed and currently valid. Deploying it for a domain
// other than name produces the shared-certificate (invalid common name)
// condition.
func (a *Authority) Issue(name string, opts ...IssueOption) (*x509.Certificate, error) {
	var cfg issueConfig
	for _, o := range opts {
		o(&cfg)
	}
	notBefore := a.now.AddDate(-1, 0, 0)
	notAfter := a.now.AddDate(1, 0, 0)
	if cfg.expired {
		notBefore = a.now.AddDate(-3, 0, 0)
		notAfter = a.now.AddDate(0, -2, 0)
	}
	key := a.keyPool[int(a.serial)%len(a.keyPool)]
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(a.nextSerial()),
		Subject:      pkix.Name{CommonName: name},
		DNSNames:     []string{name},
		NotBefore:    notBefore,
		NotAfter:     notAfter,
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	parent, signer := a.cert, a.key
	if cfg.selfSigned {
		parent, signer = tmpl, key
		tmpl.BasicConstraintsValid = true
	}
	der, err := x509.CreateCertificate(a.rand, tmpl, parent, &key.PublicKey, signer)
	if err != nil {
		return nil, fmt.Errorf("certs: issue %s: %w", name, err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("certs: parse issued cert: %w", err)
	}
	return cert, nil
}

// Classify verifies cert as served by domain at time now against roots and
// returns its Table VI category. Verification is real: expiry against the
// validity window, chain building against the trust pool, and hostname
// matching against the leaf's SANs.
func Classify(cert *x509.Certificate, domain string, now time.Time, roots *x509.CertPool) Problem {
	if now.Before(cert.NotBefore) || now.After(cert.NotAfter) {
		return ProblemExpired
	}
	if _, err := cert.Verify(x509.VerifyOptions{Roots: roots, CurrentTime: now}); err != nil {
		return ProblemInvalidAuthority
	}
	if err := cert.VerifyHostname(domain); err != nil {
		return ProblemInvalidCommonName
	}
	return ProblemNone
}

// Deployment records that a domain serves a certificate. The same
// *x509.Certificate may be deployed for many domains (certificate
// sharing, Table VII).
type Deployment struct {
	Domain string
	Cert   *x509.Certificate
}

// Store collects deployments and answers the Table VI/VII aggregations.
type Store struct {
	byDomain map[string]*x509.Certificate
}

// NewStore returns an empty deployment store.
func NewStore() *Store {
	return &Store{byDomain: make(map[string]*x509.Certificate)}
}

// Deploy records that domain serves cert.
func (s *Store) Deploy(domain string, cert *x509.Certificate) {
	s.byDomain[strings.ToLower(domain)] = cert
}

// Get returns the certificate served by domain.
func (s *Store) Get(domain string) (*x509.Certificate, bool) {
	c, ok := s.byDomain[strings.ToLower(domain)]
	return c, ok
}

// Len returns the number of domains serving certificates.
func (s *Store) Len() int { return len(s.byDomain) }

// Census is the Table VI aggregation over a deployment population.
type Census struct {
	Total             int
	Valid             int
	Expired           int
	InvalidAuthority  int
	InvalidCommonName int
}

// ProblemRate returns the fraction of deployments with any problem.
func (c Census) ProblemRate() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Total-c.Valid) / float64(c.Total)
}

// Classify runs the validator over every deployment.
func (s *Store) Classify(now time.Time, roots *x509.CertPool) Census {
	var census Census
	for domain, cert := range s.byDomain {
		census.Total++
		switch Classify(cert, domain, now, roots) {
		case ProblemNone:
			census.Valid++
		case ProblemExpired:
			census.Expired++
		case ProblemInvalidAuthority:
			census.InvalidAuthority++
		case ProblemInvalidCommonName:
			census.InvalidCommonName++
		}
	}
	return census
}

// SharedCN is a Table VII row: a certificate common name deployed for
// domains it is not valid for.
type SharedCN struct {
	CommonName string
	Count      int
}

// TopSharedCNs ranks the common names of certificates deployed on domains
// whose name does not match, by deployment count descending.
func (s *Store) TopSharedCNs(k int) []SharedCN {
	counts := make(map[string]int)
	for domain, cert := range s.byDomain {
		if cert.VerifyHostname(domain) != nil {
			counts[cert.Subject.CommonName]++
		}
	}
	out := make([]SharedCN, 0, len(counts))
	for cn, n := range counts {
		out = append(out, SharedCN{CommonName: cn, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].CommonName < out[j].CommonName
	})
	if k >= 0 && k < len(out) {
		out = out[:k]
	}
	return out
}
