package certs

import (
	"testing"
	"time"
)

var testNow = time.Date(2017, 10, 1, 0, 0, 0, 0, time.UTC)

func newTestAuthority(t *testing.T) *Authority {
	t.Helper()
	a, err := NewAuthority(42, testNow)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestValidCertificateClassifiesNone(t *testing.T) {
	a := newTestAuthority(t)
	cert, err := a.Issue("xn--0wwy37b.com")
	if err != nil {
		t.Fatal(err)
	}
	if got := Classify(cert, "xn--0wwy37b.com", testNow, a.Roots()); got != ProblemNone {
		t.Errorf("Classify = %v, want None", got)
	}
}

func TestExpiredCertificate(t *testing.T) {
	a := newTestAuthority(t)
	cert, err := a.Issue("old.com", Expired())
	if err != nil {
		t.Fatal(err)
	}
	if got := Classify(cert, "old.com", testNow, a.Roots()); got != ProblemExpired {
		t.Errorf("Classify = %v, want Expired", got)
	}
	// The same certificate was valid six months before the snapshot.
	past := testNow.AddDate(0, -6, 0)
	if got := Classify(cert, "old.com", past, a.Roots()); got != ProblemNone {
		t.Errorf("Classify at %v = %v, want None", past, got)
	}
}

func TestSelfSignedCertificate(t *testing.T) {
	a := newTestAuthority(t)
	cert, err := a.Issue("selfie.net", SelfSigned())
	if err != nil {
		t.Fatal(err)
	}
	if got := Classify(cert, "selfie.net", testNow, a.Roots()); got != ProblemInvalidAuthority {
		t.Errorf("Classify = %v, want InvalidAuthority", got)
	}
}

func TestSharedCertificate(t *testing.T) {
	a := newTestAuthority(t)
	cert, err := a.Issue("sedoparking.com")
	if err != nil {
		t.Fatal(err)
	}
	if got := Classify(cert, "xn--parked.com", testNow, a.Roots()); got != ProblemInvalidCommonName {
		t.Errorf("Classify = %v, want InvalidCommonName", got)
	}
	// Served for its own name it is fine.
	if got := Classify(cert, "sedoparking.com", testNow, a.Roots()); got != ProblemNone {
		t.Errorf("Classify own name = %v, want None", got)
	}
}

func TestExpiryTakesPriorityOverName(t *testing.T) {
	// Table VI categories are mutually exclusive; expired wins.
	a := newTestAuthority(t)
	cert, err := a.Issue("cafe24.com", Expired())
	if err != nil {
		t.Fatal(err)
	}
	if got := Classify(cert, "other.com", testNow, a.Roots()); got != ProblemExpired {
		t.Errorf("Classify = %v, want Expired to dominate", got)
	}
}

func TestStoreCensus(t *testing.T) {
	a := newTestAuthority(t)
	s := NewStore()
	valid, err := a.Issue("good.com")
	if err != nil {
		t.Fatal(err)
	}
	expired, err := a.Issue("exp.com", Expired())
	if err != nil {
		t.Fatal(err)
	}
	self, err := a.Issue("self.com", SelfSigned())
	if err != nil {
		t.Fatal(err)
	}
	shared, err := a.Issue("sedoparking.com")
	if err != nil {
		t.Fatal(err)
	}
	s.Deploy("good.com", valid)
	s.Deploy("exp.com", expired)
	s.Deploy("self.com", self)
	s.Deploy("park1.com", shared)
	s.Deploy("park2.com", shared)
	s.Deploy("park3.com", shared)

	census := s.Classify(testNow, a.Roots())
	if census.Total != 6 {
		t.Fatalf("Total = %d", census.Total)
	}
	if census.Valid != 1 || census.Expired != 1 || census.InvalidAuthority != 1 || census.InvalidCommonName != 3 {
		t.Errorf("census = %+v", census)
	}
	wantRate := 5.0 / 6.0
	if got := census.ProblemRate(); got != wantRate {
		t.Errorf("ProblemRate = %v, want %v", got, wantRate)
	}
}

func TestTopSharedCNs(t *testing.T) {
	a := newTestAuthority(t)
	s := NewStore()
	sedo, err := a.Issue("sedoparking.com")
	if err != nil {
		t.Fatal(err)
	}
	cafe, err := a.Issue("cafe24.com")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Deploy("parked"+string(rune('a'+i))+".com", sedo)
	}
	for i := 0; i < 2; i++ {
		s.Deploy("hosted"+string(rune('a'+i))+".com", cafe)
	}
	s.Deploy("cafe24.com", cafe) // own domain: not shared

	top := s.TopSharedCNs(10)
	if len(top) != 2 {
		t.Fatalf("top = %+v", top)
	}
	if top[0].CommonName != "sedoparking.com" || top[0].Count != 5 {
		t.Errorf("top[0] = %+v", top[0])
	}
	if top[1].CommonName != "cafe24.com" || top[1].Count != 2 {
		t.Errorf("top[1] = %+v", top[1])
	}
}

func TestDeterministicIssuance(t *testing.T) {
	a1, err := NewAuthority(7, testNow)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewAuthority(7, testNow)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := a1.Issue("same.com")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := a2.Issue("same.com")
	if err != nil {
		t.Fatal(err)
	}
	// Signature bytes are hedged by crypto/ecdsa and may differ, but the
	// measurement-relevant fields must be reproducible across runs.
	if c1.Subject.CommonName != c2.Subject.CommonName ||
		!c1.NotBefore.Equal(c2.NotBefore) || !c1.NotAfter.Equal(c2.NotAfter) ||
		c1.SerialNumber.Cmp(c2.SerialNumber) != 0 {
		t.Error("same seed should produce identical certificate fields")
	}
	if Classify(c1, "same.com", testNow, a1.Roots()) != Classify(c2, "same.com", testNow, a2.Roots()) {
		t.Error("classification must be deterministic across authorities")
	}
}

func TestStoreGetAndLen(t *testing.T) {
	a := newTestAuthority(t)
	s := NewStore()
	cert, err := a.Issue("x.com")
	if err != nil {
		t.Fatal(err)
	}
	s.Deploy("X.COM", cert)
	if s.Len() != 1 {
		t.Fatal("Len wrong")
	}
	if _, ok := s.Get("x.com"); !ok {
		t.Error("Get should fold case")
	}
}

func TestProblemString(t *testing.T) {
	if ProblemExpired.String() != "Expired Certificate" {
		t.Error("String wrong")
	}
	if Problem(99).String() != "Unknown" {
		t.Error("unknown problem should say Unknown")
	}
}

func BenchmarkIssue(b *testing.B) {
	a, err := NewAuthority(1, testNow)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Issue("bench.com"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClassify(b *testing.B) {
	a, err := NewAuthority(1, testNow)
	if err != nil {
		b.Fatal(err)
	}
	cert, err := a.Issue("bench.com")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Classify(cert, "bench.com", testNow, a.Roots())
	}
}
