// Package metricsutil holds the lock-free latency histogram shared by
// the single-node serving layer (internal/serve) and the cluster gateway
// (internal/cluster): both are long-running HTTP services that must be
// scrapeable during full load, so every observation path is atomics —
// no locks, no allocation.
package metricsutil

import (
	"sync/atomic"
	"time"
)

// histBuckets is the number of log2 latency buckets. Bucket i holds
// observations with ceil(log2(µs)) == i, so bucket 0 is ≤1µs and bucket
// 29 caps out at ~9 minutes — far beyond any configured deadline.
const histBuckets = 30

// Histogram is a lock-free log2 latency histogram over microseconds.
// The zero value is ready to use.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNs   atomic.Int64
	maxNs   atomic.Int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	h.count.Add(1)
	h.sumNs.Add(int64(d))
	for {
		old := h.maxNs.Load()
		if int64(d) <= old || h.maxNs.CompareAndSwap(old, int64(d)) {
			break
		}
	}
	us := d.Microseconds()
	b := 0
	for v := us; v > 1; v >>= 1 {
		b++
	}
	if us > 1 && us&(us-1) != 0 {
		b++ // ceil
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
}

// quantile returns an upper bound (the bucket ceiling, in µs) for the
// q-th latency quantile.
func quantile(counts *[histBuckets]uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += counts[i]
		if cum > rank {
			return float64(uint64(1) << uint(i)) // bucket ceiling in µs
		}
	}
	return float64(uint64(1) << (histBuckets - 1))
}

// LatencyStats is the histogram's wire form (microseconds).
type LatencyStats struct {
	Count      uint64  `json:"count"`
	MeanMicros float64 `json:"meanMicros"`
	P50Micros  float64 `json:"p50Micros"`
	P90Micros  float64 `json:"p90Micros"`
	P99Micros  float64 `json:"p99Micros"`
	MaxMicros  float64 `json:"maxMicros"`
}

// Stats snapshots the histogram; safe to call concurrently with Observe.
func (h *Histogram) Stats() LatencyStats {
	var counts [histBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	st := LatencyStats{Count: total}
	if total > 0 {
		st.MeanMicros = float64(h.sumNs.Load()) / float64(total) / 1e3
		st.P50Micros = quantile(&counts, total, 0.50)
		st.P90Micros = quantile(&counts, total, 0.90)
		st.P99Micros = quantile(&counts, total, 0.99)
		st.MaxMicros = float64(h.maxNs.Load()) / 1e3
	}
	return st
}
