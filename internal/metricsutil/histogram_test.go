package metricsutil

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramStats(t *testing.T) {
	var h Histogram
	if st := h.Stats(); st.Count != 0 || st.P99Micros != 0 {
		t.Fatalf("zero-value stats: %+v", st)
	}
	// 90 fast samples, 10 slow ones: p50 must bound 100µs, p99 must
	// bound 10ms, and every quantile is an upper bound (bucket ceiling).
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Millisecond)
	}
	st := h.Stats()
	if st.Count != 100 {
		t.Fatalf("count = %d, want 100", st.Count)
	}
	if st.P50Micros < 100 || st.P50Micros >= 10_000 {
		t.Fatalf("p50 = %v, want in [100, 10000)", st.P50Micros)
	}
	if st.P99Micros < 10_000 {
		t.Fatalf("p99 = %v, want >= 10000", st.P99Micros)
	}
	if st.MaxMicros != 10_000 {
		t.Fatalf("max = %v, want 10000", st.MaxMicros)
	}
	if st.MeanMicros <= 100 || st.MeanMicros >= 10_000 {
		t.Fatalf("mean = %v, want between sample values", st.MeanMicros)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if st := h.Stats(); st.Count != 8000 {
		t.Fatalf("count = %d, want 8000", st.Count)
	}
}
