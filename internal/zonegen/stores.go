package zonegen

import (
	"crypto/x509"

	"fmt"
	"idnlab/internal/dnssim"
	"sort"
	"strings"

	"idnlab/internal/blacklist"
	"idnlab/internal/brands"
	"idnlab/internal/certs"
	"idnlab/internal/confusables"
	"idnlab/internal/idna"
	"idnlab/internal/pdns"
	"idnlab/internal/simrand"
	"idnlab/internal/webprobe"
	"idnlab/internal/whois"
	"idnlab/internal/zonefile"
)

// The Build* methods materialize each auxiliary data source from the
// ground truth. The measurement pipeline consumes only these outputs.

// BuildZones renders one zone file per TLD containing the materialized
// SLDs (all IDNs plus the sampled non-IDNs), keyed by origin. The analytic
// SLD totals for the full zones are in SLDTotals.
func (r *Registry) BuildZones() map[string]*zonefile.Zone {
	zones := make(map[string]*zonefile.Zone)
	get := func(origin string) *zonefile.Zone {
		z, ok := zones[origin]
		if !ok {
			z = &zonefile.Zone{Origin: origin, DefaultTTL: 86400}
			zones[origin] = z
		}
		return z
	}
	// Ensure all 53 iTLD zones exist even if empty at small scale.
	for _, itld := range r.ITLDs {
		get(itld)
	}
	for i := range r.Domains {
		d := &r.Domains[i]
		z := get(d.TLD)
		owner := strings.TrimSuffix(d.ACE, "."+d.TLD)
		z.Records = append(z.Records,
			zonefile.Record{Owner: owner, Type: "NS", Data: "ns1.dns-host.net."},
			zonefile.Record{Owner: owner, Type: "NS", Data: "ns2.dns-host.net."},
		)
	}
	return zones
}

// BuildWHOIS materializes the WHOIS database with the paper's coverage
// gaps: only domains the crawl reached are present.
func (r *Registry) BuildWHOIS() *whois.Store {
	s := whois.NewStore()
	for i := range r.Domains {
		d := &r.Domains[i]
		if !d.HasWHOIS {
			continue
		}
		s.Put(whois.Record{
			Domain:          d.ACE,
			Registrar:       d.Registrar,
			RegistrantEmail: d.RegistrantEmail,
			Privacy:         d.Privacy,
			Created:         d.Created,
			Expires:         d.Created.AddDate(1+int(d.Created.Year())%3, 0, 0),
			NameServers:     []string{"ns1.dns-host.net", "ns2.dns-host.net"},
		})
	}
	return s
}

// BuildBlacklists materializes the three feeds and their union.
func (r *Registry) BuildBlacklists() *blacklist.Aggregate {
	feeds := map[string]*blacklist.Feed{
		blacklist.FeedVirusTotal: blacklist.NewFeed(blacklist.FeedVirusTotal),
		blacklist.Feed360:        blacklist.NewFeed(blacklist.Feed360),
		blacklist.FeedBaidu:      blacklist.NewFeed(blacklist.FeedBaidu),
	}
	for i := range r.Domains {
		d := &r.Domains[i]
		for _, f := range d.Feeds {
			feeds[f].Add(d.ACE)
		}
	}
	return blacklist.NewAggregate(
		feeds[blacklist.FeedVirusTotal], feeds[blacklist.Feed360], feeds[blacklist.FeedBaidu])
}

// BuildPDNS materializes the passive-DNS store: every registered domain's
// aggregate, plus stray-traffic noise for a small fraction of the
// *unregistered* homographic candidate space (Figure 6's observation that
// queries to unregistered IDNs exist but are very rare).
func (r *Registry) BuildPDNS() *pdns.Store {
	s := pdns.NewStore()
	for i := range r.Domains {
		d := &r.Domains[i]
		s.Merge(pdns.Entry{
			Domain:    d.ACE,
			FirstSeen: d.FirstSeen,
			LastSeen:  d.LastSeen,
			Queries:   d.Queries,
			IPs:       append([]string(nil), d.IPs...),
		})
	}
	registered := make(map[string]struct{}, len(r.Domains))
	for i := range r.Domains {
		registered[r.Domains[i].ACE] = struct{}{}
	}
	src := simrand.New(r.Cfg.Seed).Fork("unregistered-noise")
	tab := confusables.Default()
	for _, b := range brands.TopK(100) {
		for _, v := range tab.Variants(b.Label()) {
			ace, err := idna.ToASCIILabel(v)
			if err != nil {
				continue
			}
			name := ace + ".com"
			if _, ok := registered[name]; ok {
				continue
			}
			if !src.Bool(UnregisteredNoise) {
				continue
			}
			first := r.Cfg.Snapshot.AddDate(0, 0, -src.Intn(30)-1)
			s.Merge(pdns.Entry{
				Domain:    name,
				FirstSeen: first,
				LastSeen:  first.AddDate(0, 0, src.Intn(5)),
				Queries:   1 + int64(src.Intn(4)),
			})
		}
	}
	return s
}

// BuildCerts mints and deploys the certificate population. Shared
// certificates are minted once per common name and deployed across all
// their domains, reproducing the Table VII concentration.
func (r *Registry) BuildCerts(authority *certs.Authority) (*certs.Store, error) {
	s := certs.NewStore()
	sharedCache := make(map[string]*x509.Certificate)
	for i := range r.Domains {
		d := &r.Domains[i]
		switch d.Cert {
		case CertNone:
			continue
		case CertValid:
			cert, err := authority.Issue(d.ACE)
			if err != nil {
				return nil, fmt.Errorf("zonegen: issue valid cert for %s: %w", d.ACE, err)
			}
			s.Deploy(d.ACE, cert)
		case CertExpired:
			cert, err := authority.Issue(d.ACE, certs.Expired())
			if err != nil {
				return nil, fmt.Errorf("zonegen: issue expired cert for %s: %w", d.ACE, err)
			}
			s.Deploy(d.ACE, cert)
		case CertSelfSigned:
			cert, err := authority.Issue(d.ACE, certs.SelfSigned())
			if err != nil {
				return nil, fmt.Errorf("zonegen: issue self-signed cert for %s: %w", d.ACE, err)
			}
			s.Deploy(d.ACE, cert)
		case CertShared:
			cn := d.SharedCN
			if cn == "" {
				cn = TableVIISharedCNs[0].CN
			}
			cert, ok := sharedCache[cn]
			if !ok {
				minted, err := authority.Issue(cn)
				if err != nil {
					return nil, fmt.Errorf("zonegen: issue shared cert for %s: %w", cn, err)
				}
				cert = minted
				sharedCache[cn] = cert
			}
			s.Deploy(d.ACE, cert)
		}
	}
	return s, nil
}

// BuildDNS loads an authoritative server from the registry: domains with
// a not-resolved hosting profile answer REFUSED (the name-server-side
// failure the paper identifies in §IV-D), everything else answers its
// ground-truth A records.
func (r *Registry) BuildDNS() *dnssim.Server {
	s := dnssim.NewServer()
	for i := range r.Domains {
		d := &r.Domains[i]
		if d.Hosting == webprobe.NotResolved {
			s.SetBehavior(d.ACE, dnssim.BehaviorRefused)
			continue
		}
		s.SetAnswer(d.ACE, d.IPs...)
	}
	return s
}

// Serve returns the web response for one registry domain, as the crawler
// would observe it.
func (r *Registry) Serve(d *Domain) webprobe.Response {
	variant := uint64(0)
	for i := 0; i < len(d.ACE); i++ {
		variant = variant*131 + uint64(d.ACE[i])
	}
	resp := webprobe.Serve(d.Hosting, d.ACE, variant)
	if d.Cert == CertShared && resp.Resolved {
		resp.ServerCN = d.SharedCN
	}
	return resp
}

// IDNs returns the ACE names of all IDN domains, sorted.
func (r *Registry) IDNs() []string {
	var out []string
	for i := range r.Domains {
		if r.Domains[i].IsIDN {
			out = append(out, r.Domains[i].ACE)
		}
	}
	sort.Strings(out)
	return out
}

// NonIDNs returns the ACE names of the sampled non-IDN population, sorted.
func (r *Registry) NonIDNs() []string {
	var out []string
	for i := range r.Domains {
		if !r.Domains[i].IsIDN {
			out = append(out, r.Domains[i].ACE)
		}
	}
	sort.Strings(out)
	return out
}

// Lookup finds a registry domain by ACE name. The first call builds a
// map index over Domains (previously every Lookup was an O(N) scan, paid
// once per crawled domain by the usage census); the index is built once
// and safe for concurrent Lookups, provided Domains is no longer mutated
// — generation completes before any Lookup.
func (r *Registry) Lookup(ace string) (*Domain, bool) {
	r.byACEOnce.Do(func() {
		r.byACE = make(map[string]int, len(r.Domains))
		for i := range r.Domains {
			// First entry wins, matching the original scan order.
			if _, dup := r.byACE[r.Domains[i].ACE]; !dup {
				r.byACE[r.Domains[i].ACE] = i
			}
		}
	})
	if i, ok := r.byACE[ace]; ok {
		return &r.Domains[i], true
	}
	return nil, false
}
