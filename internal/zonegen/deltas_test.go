package zonegen

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"idnlab/internal/idna"
	"idnlab/internal/zonefile"
)

// deltaStreamBytes renders days 1..days for one seed, as the
// concatenated file-by-file byte stream the watch daemon would consume.
func deltaStreamBytes(t *testing.T, seed uint64, days int) []byte {
	t.Helper()
	reg := Generate(Config{Seed: seed, Scale: 400})
	gen := reg.DeltaStream(DeltaConfig{})
	var buf bytes.Buffer
	for i := 0; i < days; i++ {
		d := gen.Next()
		if d.Serial != SerialBase+uint32(i+1) {
			t.Fatalf("day %d: serial = %d, want %d", i+1, d.Serial, SerialBase+uint32(i+1))
		}
		if _, err := d.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
	}
	return buf.Bytes()
}

// TestDeltaDeterminism: the same seed must produce a byte-identical
// delta stream (the watch tier's replay-equality tests depend on it),
// and a different seed must not.
func TestDeltaDeterminism(t *testing.T) {
	a := deltaStreamBytes(t, 7, 3)
	b := deltaStreamBytes(t, 7, 3)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different delta streams (%d vs %d bytes)", len(a), len(b))
	}
	c := deltaStreamBytes(t, 8, 3)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical delta streams")
	}
}

// TestDeltaGolden pins the exact serialized form of day 1 for a fixed
// seed. If the generator or the writer changes shape, this fails and the
// golden file must be consciously regenerated (UPDATE_GOLDEN=1).
func TestDeltaGolden(t *testing.T) {
	reg := Generate(Config{Seed: 11, Scale: 1000})
	gen := reg.DeltaStream(DeltaConfig{AddsPerDay: 8, DropsPerDay: 2, NSChangesPerDay: 2})
	var buf bytes.Buffer
	if _, err := gen.Next().WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	golden := filepath.Join("testdata", "delta_day1.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("day-1 delta diverged from golden\n got:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// parsedZone reconstructs one zone's IXFR sections from Scanner records.
type parsedZone struct {
	serial   uint32
	soaCount int
	dels     map[string]string // owner -> first deleted NS target
	adds     map[string]string // owner -> first added NS target
}

// parseDeltaWithScanner re-reads a serialized delta through the ordinary
// zonefile.Scanner — no special delta parser — and splits each zone's
// records into deletion and addition sections using the SOA sentinels.
func parseDeltaWithScanner(t *testing.T, data []byte) map[string]*parsedZone {
	t.Helper()
	s := zonefile.NewScanner(bytes.NewReader(data))
	zones := make(map[string]*parsedZone)
	for s.Next() {
		rec := s.Record()
		origin := s.Origin()
		if origin == "" {
			t.Fatalf("record before $ORIGIN: %+v", rec)
		}
		z, ok := zones[origin]
		if !ok {
			z = &parsedZone{dels: make(map[string]string), adds: make(map[string]string)}
			zones[origin] = z
		}
		switch rec.Type {
		case "SOA":
			fields := strings.Fields(rec.Data)
			if len(fields) != 7 {
				t.Fatalf("malformed SOA %q", rec.Data)
			}
			serial, err := strconv.ParseUint(fields[2], 10, 32)
			if err != nil {
				t.Fatalf("bad SOA serial %q: %v", fields[2], err)
			}
			z.soaCount++
			switch z.soaCount {
			case 1: // header carries the new serial
				z.serial = uint32(serial)
			case 2: // old serial — the deletion section follows
				if uint32(serial) != z.serial-1 {
					t.Fatalf("zone %s: deletion-section serial %d, want %d", origin, serial, z.serial-1)
				}
			case 3: // new serial again — the addition section follows
				if uint32(serial) != z.serial {
					t.Fatalf("zone %s: addition-section serial %d, want %d", origin, serial, z.serial)
				}
			default:
				t.Fatalf("zone %s: unexpected %dth SOA", origin, z.soaCount)
			}
		case "NS":
			target := strings.TrimSuffix(strings.TrimPrefix(rec.Data, "ns1."), ".")
			target = strings.TrimPrefix(target, "ns2.")
			switch z.soaCount {
			case 2:
				if _, dup := z.dels[rec.Owner]; !dup {
					z.dels[rec.Owner] = target
				}
			case 3:
				if _, dup := z.adds[rec.Owner]; !dup {
					z.adds[rec.Owner] = target
				}
			default:
				t.Fatalf("NS record outside IXFR sections: %+v", rec)
			}
		}
	}
	if err := s.Err(); err != nil {
		t.Fatalf("scanner: %v", err)
	}
	return zones
}

// TestDeltaRoundTrip: every generated operation must be recoverable from
// the serialized text via zonefile.Scanner — adds appear only in the
// addition section, drops only in the deletion section, NS changes in
// both with the old and new targets.
func TestDeltaRoundTrip(t *testing.T) {
	reg := Generate(Config{Seed: 3, Scale: 400})
	gen := reg.DeltaStream(DeltaConfig{AddsPerDay: 40, DropsPerDay: 12, NSChangesPerDay: 9})
	for day := 1; day <= 3; day++ {
		d := gen.Next()
		var buf bytes.Buffer
		if _, err := d.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		zones := parseDeltaWithScanner(t, buf.Bytes())
		if len(zones) != len(d.Zones) {
			t.Fatalf("day %d: parsed %d zones, generated %d", day, len(zones), len(d.Zones))
		}
		for _, zd := range d.Zones {
			z := zones[zd.Origin]
			if z == nil {
				t.Fatalf("day %d: zone %s missing from parse", day, zd.Origin)
			}
			if z.serial != d.Serial {
				t.Errorf("day %d zone %s: serial %d, want %d", day, zd.Origin, z.serial, d.Serial)
			}
			for _, rec := range zd.Records {
				switch rec.Op {
				case DeltaAdd:
					if got := z.adds[rec.Owner]; got != rec.NS {
						t.Errorf("add %s.%s: parsed NS %q, want %q", rec.Owner, zd.Origin, got, rec.NS)
					}
					if _, inDel := z.dels[rec.Owner]; inDel {
						t.Errorf("add %s.%s also present in deletion section", rec.Owner, zd.Origin)
					}
				case DeltaDrop:
					if got := z.dels[rec.Owner]; got != rec.OldNS {
						t.Errorf("drop %s.%s: parsed NS %q, want %q", rec.Owner, zd.Origin, got, rec.OldNS)
					}
					if _, inAdd := z.adds[rec.Owner]; inAdd {
						t.Errorf("drop %s.%s also present in addition section", rec.Owner, zd.Origin)
					}
				case DeltaNSChange:
					if got := z.dels[rec.Owner]; got != rec.OldNS {
						t.Errorf("nschange %s.%s: deletion NS %q, want old %q", rec.Owner, zd.Origin, got, rec.OldNS)
					}
					if got := z.adds[rec.Owner]; got != rec.NS {
						t.Errorf("nschange %s.%s: addition NS %q, want new %q", rec.Owner, zd.Origin, got, rec.NS)
					}
				}
			}
			// Section counts match exactly: no phantom records.
			wantDel, wantAdd := 0, 0
			for _, rec := range zd.Records {
				switch rec.Op {
				case DeltaDrop:
					wantDel++
				case DeltaAdd:
					wantAdd++
				case DeltaNSChange:
					wantDel++
					wantAdd++
				}
			}
			if len(z.dels) != wantDel || len(z.adds) != wantAdd {
				t.Errorf("day %d zone %s: parsed %d dels/%d adds, want %d/%d",
					day, zd.Origin, len(z.dels), len(z.adds), wantDel, wantAdd)
			}
		}
	}
}

// TestDeltaChurnSemantics: the live set evolves consistently — drops
// shrink it, adds grow it, attack adds are valid IDN registrations of
// their target brand's confusable variant.
func TestDeltaChurnSemantics(t *testing.T) {
	reg := Generate(Config{Seed: 5, Scale: 400})
	gen := reg.DeltaStream(DeltaConfig{AddsPerDay: 30, DropsPerDay: 10, NSChangesPerDay: 5, AttackShare: 0.5})
	before := gen.Live()
	seen := make(map[string]struct{})
	attacks := 0
	for day := 1; day <= 5; day++ {
		d := gen.Next()
		adds, drops := 0, 0
		for _, z := range d.Zones {
			for _, rec := range z.Records {
				name := rec.Owner + "." + z.Origin
				switch rec.Op {
				case DeltaAdd:
					adds++
					if _, dup := seen[name]; dup {
						t.Errorf("day %d: %s registered twice", day, name)
					}
					seen[name] = struct{}{}
					if rec.Attack != AttackNone {
						attacks++
						if rec.TargetBrand == "" {
							t.Errorf("attack add %s has no target brand", name)
						}
						if !idna.IsACELabel(rec.Owner) {
							t.Errorf("attack add %s is not an ACE label", rec.Owner)
						}
					}
				case DeltaDrop:
					drops++
				}
			}
		}
		if want := before + adds - drops; gen.Live() != want {
			t.Fatalf("day %d: live = %d, want %d", day, gen.Live(), want)
		}
		before = gen.Live()
	}
	if attacks == 0 {
		t.Fatal("no attack registrations generated at AttackShare=0.5")
	}
}
