package zonegen

import (
	"time"

	"idnlab/internal/langid"
	"idnlab/internal/webprobe"
)

// This file pins every calibration target taken from the paper. The
// generator consumes these numbers; the integration tests assert that the
// synthesized registry lands within tolerance of them at any scale.

// Snapshot is the reference date of the paper's zone snapshots
// (2017-09-21 through 2017-10-05; we use October 1st).
var Snapshot = time.Date(2017, 10, 1, 0, 0, 0, 0, time.UTC)

// TLDCalibration is one row of Table I.
type TLDCalibration struct {
	// TLD is the zone ("com", "net", "org") or "itld" for the 53 iTLDs
	// in aggregate.
	TLD string
	// SLDs is the total number of delegated second-level domains.
	SLDs int
	// IDNs is the number of IDN SLDs.
	IDNs int
	// WHOIS is the number of IDNs with parsed WHOIS records.
	WHOIS int
	// Blacklist counts per feed.
	VirusTotal, Qihoo360, Baidu int
	// BlacklistTotal is the unioned count (feeds overlap).
	BlacklistTotal int
	// NonIDNSample is the number of non-IDNs sampled for comparison.
	NonIDNSample int
}

// TableI is the dataset summary the paper reports.
var TableI = []TLDCalibration{
	{TLD: "com", SLDs: 129216926, IDNs: 1007148, WHOIS: 590542,
		VirusTotal: 3571, Qihoo360: 1807, Baidu: 26, BlacklistTotal: 5284, NonIDNSample: 1000000},
	{TLD: "net", SLDs: 14785199, IDNs: 231896, WHOIS: 131573,
		VirusTotal: 661, Qihoo360: 91, Baidu: 1, BlacklistTotal: 746, NonIDNSample: 100000},
	{TLD: "org", SLDs: 10390116, IDNs: 25629, WHOIS: 19271,
		VirusTotal: 56, Qihoo360: 2, Baidu: 1, BlacklistTotal: 59, NonIDNSample: 100000},
	{TLD: "itld", SLDs: 208163, IDNs: 208163, WHOIS: 2226,
		VirusTotal: 90, Qihoo360: 63, Baidu: 2, BlacklistTotal: 152, NonIDNSample: 0},
}

// TotalIDNs is the paper's headline corpus size.
const TotalIDNs = 1472836

// NumITLDs is the number of internationalized TLD zones scanned.
const NumITLDs = 53

// languageWeight pairs a language with its share of the corpus.
type languageWeight struct {
	Lang   langid.Language
	Weight float64
}

// TableIILanguages is the overall language mix (Table II "IDN" column,
// percentages). The remainder (≈5.5%) is English/Other Latin.
var TableIILanguages = []languageWeight{
	{langid.Chinese, 52.03},
	{langid.Japanese, 12.97},
	{langid.Korean, 8.71},
	{langid.German, 4.90},
	{langid.Turkish, 2.93},
	{langid.Thai, 2.49},
	{langid.Swedish, 2.19},
	{langid.Spanish, 1.72},
	{langid.French, 1.68},
	{langid.Finnish, 1.20},
	{langid.Russian, 0.95},
	{langid.Hungarian, 0.81},
	{langid.Arabic, 0.84},
	{langid.Danish, 0.58},
	{langid.Persian, 0.54},
	{langid.English, 5.46},
}

// TableIIMaliciousLanguages is the blacklisted-IDN language mix (Table II
// "Blacklisted" column).
var TableIIMaliciousLanguages = []languageWeight{
	{langid.Chinese, 56.02},
	{langid.Korean, 14.46},
	{langid.Thai, 5.72},
	{langid.Japanese, 3.81},
	{langid.Turkish, 3.14},
	{langid.German, 1.91},
	{langid.Spanish, 1.55},
	{langid.Russian, 1.54},
	{langid.French, 0.90},
	{langid.Arabic, 0.69},
	{langid.Finnish, 0.58},
	{langid.Hungarian, 0.58},
	{langid.Persian, 0.45},
	{langid.Danish, 0.35},
	{langid.English, 7.78},
}

// registrarShare is a Table IV row.
type registrarShare struct {
	Name  string
	Share float64 // percent of all IDNs
}

// TableIVRegistrars are the top-10 IDN registrars; the long tail of the
// ~700 remaining registrars follows a Zipf distribution.
var TableIVRegistrars = []registrarShare{
	{"GMO Internet Inc.", 22.99},
	{"HiChina Zhicheng Technology Limited.", 10.86},
	{"Name.com, Inc.", 4.27},
	{"Gabia, Inc.", 4.02},
	{"Dynadot, LLC.", 3.19},
	{"1&1 Internet SE.", 2.89},
	{"Chengdu West Dimension Digital Technology Co., Ltd.", 2.76},
	{"eNom, LLC.", 2.37},
	{"DomainSite, Inc.", 2.32},
	{"GoDaddy.com, LLC.", 1.88},
}

// TotalRegistrars is the paper's "over 700 registrars" for IDNs.
const TotalRegistrars = 700

// opportunisticRegistrant is a Table III row: a bulk registrant and the
// theme of their portfolio.
type opportunisticRegistrant struct {
	Email string
	Count int // at paper scale
	Theme string
}

// TableIIIRegistrants are the top opportunistic registrants. Counts for
// ranks 1 and 5 are not fully legible in the source table; 1,795 and
// 1,178 preserve the stated ordering.
var TableIIIRegistrants = []opportunisticRegistrant{
	{"776053229@qq.com", 1795, "city"},
	{"daidesheng88@gmail.com", 1562, "gambling"},
	{"tetetw@gmail.com", 1453, "shortword"},
	{"840629127@qq.com", 1301, "city"},
	{"776053229@163.com", 1178, "city"},
	{"13779950000@139.com", 126, "gambling"},
	{"hoarder01@qq.com", 980, "shopping"},
	{"hoarder02@gmail.com", 870, "gambling"},
	{"hoarder03@163.com", 760, "city"},
	{"hoarder04@qq.com", 650, "shortword"},
}

// OpportunisticTotal is the paper's 29,318 (4%) opportunistically
// registered IDNs.
const OpportunisticTotal = 29318

// CreationYearWeights drives Figure 1: relative registration volume per
// year, with the spikes the paper attributes to the 2000 Verisign IDN
// testbed and the 2004 German/Latin character introduction, and overall
// growth toward the snapshot. Pre-2008 mass is 6.16% (Finding 2).
var CreationYearWeights = map[int]float64{
	2000: 1.6, 2001: 0.35, 2002: 0.3, 2003: 0.35, 2004: 1.3,
	2005: 0.5, 2006: 0.55, 2007: 0.6, 2008: 0.9, 2009: 1.1,
	2010: 1.6, 2011: 2.4, 2012: 3.6, 2013: 5.0, 2014: 7.2,
	2015: 12.0, 2016: 18.0, 2017: 24.0,
}

// MaliciousYearWeights has the malicious-registration spikes in 2015 and
// 2017 (cybersquatting campaigns).
var MaliciousYearWeights = map[int]float64{
	2008: 0.3, 2009: 0.4, 2010: 0.5, 2011: 0.7, 2012: 1.0,
	2013: 1.5, 2014: 2.2, 2015: 9.0, 2016: 4.0, 2017: 14.0,
}

// AttackYearWeights drives creation dates of homographic and Type-1
// registrations: these are long-lived (789 / 735 mean active days), so
// their registrations skew older than the general malicious population.
var AttackYearWeights = map[int]float64{
	2009: 0.6, 2010: 0.9, 2011: 1.1, 2012: 1.3, 2013: 1.5,
	2014: 1.6, 2015: 1.5, 2016: 1.2, 2017: 0.8,
}

// DNS activity model: log-normal parameters per population, calibrated to
// the quantiles stated in §IV-C, §VI-C and §VII-B (e.g. 60% of com IDNs
// active <100 days; homographic IDNs averaging 789 active days with 40%
// over 600; 80% of homographic IDNs over 100 queries, 10% over 1,000).
type activityParams struct {
	ActiveMu, ActiveSigma float64 // log-days
	QueryMu, QuerySigma   float64 // log-queries
}

var (
	// ActivityIDN: benign IDN traffic is thin and short-lived.
	ActivityIDN = activityParams{ActiveMu: 4.1, ActiveSigma: 1.6, QueryMu: 2.3, QuerySigma: 1.9}
	// ActivityNonIDN: the comparison population.
	ActivityNonIDN = activityParams{ActiveMu: 5.0, ActiveSigma: 1.5, QueryMu: 3.45, QuerySigma: 1.8}
	// ActivityMalicious: blacklisted IDNs live longer and draw more
	// traffic than benign IDNs (Findings 5, 6).
	ActivityMalicious = activityParams{ActiveMu: 5.3, ActiveSigma: 1.3, QueryMu: 5.7, QuerySigma: 2.0}
	// ActivityHomograph: 789-day average activity.
	ActivityHomograph = activityParams{ActiveMu: 6.6, ActiveSigma: 0.9, QueryMu: 5.7, QuerySigma: 0.94}
	// ActivitySemantic: Type-1 IDNs, 735-day / 1,562-query averages.
	ActivitySemantic = activityParams{ActiveMu: 6.5, ActiveSigma: 0.9, QueryMu: 6.63, QuerySigma: 1.2}
)

// HTTPS deployment model (§IV-E): fraction of each population serving a
// certificate, and the Table VI category mix among served certificates.
type certMix struct {
	DeployRate              float64 // certificates per domain
	Valid                   float64
	Expired                 float64
	InvalidAuthority        float64
	InvalidCommonNameShared float64
}

var (
	// CertMixIDN: 67,087 certs from 1,472,836 IDNs (4.55%); problem rows
	// from Table VI.
	CertMixIDN = certMix{DeployRate: 0.0455, Valid: 2.05, Expired: 12.54, InvalidAuthority: 18.14, InvalidCommonNameShared: 67.27}
	// CertMixNonIDN: 35,028 certs from 1.2M sampled non-IDNs (2.92%).
	CertMixNonIDN = certMix{DeployRate: 0.0292, Valid: 2.77, Expired: 24.92, InvalidAuthority: 16.56, InvalidCommonNameShared: 55.75}
)

// TableVIISharedCNs are the hosting/parking services whose certificates
// are shared across many domains, with Table VII deployment weights.
var TableVIISharedCNs = []struct {
	CN     string
	Weight float64
}{
	{"sedoparking.com", 27139},
	{"cafe24.com", 4024},
	{"ovh.net", 3691},
	{"bizgabia.com", 3271},
	{"03365.com", 449},
	{"ihs.com.tr", 314},
	{"seoboxes.com", 230},
	{"nayana.com", 137},
	{"suksawadplywood.co.th", 120},
	{"worksout.co.kr", 100},
}

// Attack-population calibration (§VI-C, §VII-B).
const (
	// HomographTotal is the number of registered homographic IDNs.
	HomographTotal = 1516
	// HomographIdentical is the subset rendering identically to their
	// brand.
	HomographIdentical = 91
	// HomographBlacklisted is the subset flagged by blacklists.
	HomographBlacklisted = 100
	// HomographProtective is the subset registered by brand owners.
	HomographProtective = 73
	// SemanticTotal is the number of registered Type-1 IDNs.
	SemanticTotal = 1497
	// Type2Total is the (extension) population of translated-brand IDNs;
	// the paper reports examples but no census, so a modest count is
	// synthesized for the Table X reproduction.
	Type2Total = 60
	// SemanticProtective is the brand-owned Type-1 subset.
	SemanticProtective = 45
)

// TableXIIIHomographTargets: top-10 brands by registered homographic IDNs
// (brand domain -> count at paper scale, protective registrations).
var TableXIIIHomographTargets = []struct {
	Domain     string
	Count      int
	Protective int
}{
	{"google.com", 121, 19},
	{"facebook.com", 98, 0},
	{"amazon.com", 55, 14},
	{"icloud.com", 42, 0},
	{"youtube.com", 41, 0},
	{"apple.com", 39, 0},
	{"sex.com", 36, 0},
	{"go.com", 29, 0},
	{"ea.com", 28, 0},
	{"twitter.com", 25, 5},
}

// HomographTargetBrands is the paper's count of distinct targeted brands.
const HomographTargetBrands = 255

// TableXIVSemanticTargets: top-10 brands by Type-1 IDNs.
var TableXIVSemanticTargets = []struct {
	Domain     string
	Count      int
	Protective int
}{
	{"58.com", 270, 1},
	{"qq.com", 139, 22},
	{"go.com", 114, 0},
	{"china.com", 84, 0},
	{"bet365.com", 81, 5},
	{"1688.com", 74, 0},
	{"amazon.com", 63, 2},
	{"sex.com", 39, 0},
	{"google.com", 34, 0},
	{"as.com", 33, 0},
}

// SemanticTargetBrands is the paper's count of distinct Type-1 targets.
const SemanticTargetBrands = 102

// SemanticKeywords are the CJK service keywords compounded with brand
// names in Type-1 attacks (Table IX and §VII-B: 登录 login, 登陆 login,
// 邮箱 email, 激活 activate, 售后 after-sale service, 汽车 automobile, …).
var SemanticKeywords = []string{
	"登录", "登陆", "邮箱", "激活", "售后", "汽车", "商城", "招聘",
	"彩票", "娱乐", "支付", "官网", "客服", "充值",
}

// Hosting-state weights for attack populations: §VI-C's 100-sample
// breakdown of homographic IDNs (34 unresolved, 10 error, 16 for sale,
// 14 parked, 11 test pages ≈ empty, rest meaningful/redirect) and
// §VII-B's Type-1 usage (55% unresolvable, 9% error, 21% parked, 2%
// empty, >85% inactive overall).
var (
	HomographHosting = webprobe.Weights{
		webprobe.NotResolved: 34, webprobe.ErrorPage: 10, webprobe.ForSale: 16,
		webprobe.Parked: 14, webprobe.Empty: 11, webprobe.Redirected: 5,
		webprobe.Meaningful: 10,
	}
	SemanticHosting = webprobe.Weights{
		webprobe.NotResolved: 55, webprobe.ErrorPage: 9, webprobe.Parked: 21,
		webprobe.Empty: 2, webprobe.ForSale: 4, webprobe.Redirected: 3,
		webprobe.Meaningful: 6,
	}
)

// IP concentration model (Figure 4): /24 segments at paper scale and the
// Zipf exponent reproducing "80% of IDNs hosted in 1,000 /24 segments"
// and "top 10 segments host 24.8%".
const (
	Slash24Segments   = 43535
	SegmentZipfS      = 0.85
	IPAddressesTotal  = 106021
	UnregisteredNoise = 0.03 // fraction of unregistered homograph candidates seeing stray queries (Fig 6)
)
