package zonegen

import (
	"sort"

	"idnlab/internal/blacklist"
	"idnlab/internal/brands"
	"idnlab/internal/confusables"
	"idnlab/internal/glyph"
	"idnlab/internal/idna"
	"idnlab/internal/langid"
	"idnlab/internal/simrand"
	"idnlab/internal/webprobe"
)

// maliciousHosting reflects Finding 6: blacklisted IDNs actually serve
// content and trap visitors far more often than benign IDNs.
var maliciousHosting = webprobe.Weights{
	webprobe.NotResolved: 15, webprobe.ErrorPage: 10, webprobe.Empty: 5,
	webprobe.Parked: 10, webprobe.ForSale: 5, webprobe.Redirected: 15,
	webprobe.Meaningful: 40,
}

// tldFor assigns an attack domain's TLD: predominantly com, like the
// paper's corpus.
func (g *generator) attackTLD() string {
	w := simrand.NewWeighted(g.src, []float64{0.82, 0.13, 0.05})
	return []string{"com", "net", "org"}[w.Next()]
}

// assigned tracks per-TLD materialized IDN counts so the regular
// population tops each zone up to its Table I total.
func (g *generator) assignedPerTLD() map[string]int {
	out := make(map[string]int)
	for i := range g.reg.Domains {
		d := &g.reg.Domains[i]
		if !d.IsIDN {
			continue
		}
		key := d.TLD
		if idna.IsACELabel(key) {
			key = "itld"
		}
		out[key]++
	}
	return out
}

// genAttackDomains materializes the homographic and Type-1 semantic
// registrations with the per-brand allocation of Tables XIII and XIV.
func (g *generator) genAttackDomains() {
	g.genHomographs()
	g.genSemantic()
	g.genType2()
}

// genType2 materializes translated-brand (Type-2) registrations from the
// brand translation dictionary — the paper's Table X attack class.
func (g *generator) genType2() {
	total := g.cfg.scaleAtLeast1(Type2Total)
	// Deterministic brand order for reproducibility.
	var brandNames []string
	for b := range brands.Translations {
		brandNames = append(brandNames, b)
	}
	sort.Strings(brandNames)
	for i := 0; i < total; i++ {
		brand := brandNames[i%len(brandNames)]
		names := brands.Translations[brand]
		uniLabel := names[g.src.Intn(len(names))]
		if _, dup := g.names.seen[uniLabel]; dup {
			continue // each translation registers at most once
		}
		g.names.seen[uniLabel] = struct{}{}
		ace, err := idna.ToASCIILabel(uniLabel)
		if err != nil {
			continue
		}
		tld := g.attackTLD()
		d := Domain{
			ACE:         ace + "." + tld,
			Unicode:     uniLabel + "." + tld,
			TLD:         tld,
			IsIDN:       true,
			Lang:        langid.Chinese,
			Registrar:   g.registrarNames[g.registrar.Next()],
			Created:     g.dateInYear(g.pickYear(g.yearAtk, g.yearAtkW)),
			Attack:      AttackSemantic2,
			TargetBrand: brand,
		}
		if g.src.Bool(0.2) {
			d.RegistrantEmail = g.personalEmail()
		} else {
			d.Privacy = true
		}
		g.finishDomain(d, SemanticHosting, ActivitySemantic, CertMixIDN, whoisRateFor(tld, true))
	}
}

// brandAllocation distributes total attack registrations over brands:
// the published top-10 counts plus an even tail over the remaining
// targeted brands.
type brandTarget struct {
	brand      brands.Brand
	count      int
	protective int
}

func (g *generator) allocateBrands(total, protectiveTotal int, top []struct {
	Domain     string
	Count      int
	Protective int
}, distinctBrands int) []brandTarget {
	cfg := g.cfg
	topPaperTotal := 0
	for _, t := range top {
		topPaperTotal += t.Count
	}
	var targets []brandTarget
	weights := make([]float64, 0, distinctBrands)
	protWeights := make([]float64, 0, len(top))
	inTop := make(map[string]bool, len(top))
	for _, t := range top {
		b, ok := brands.Lookup(t.Domain)
		if !ok {
			continue
		}
		inTop[t.Domain] = true
		targets = append(targets, brandTarget{brand: b})
		weights = append(weights, float64(t.Count))
		protWeights = append(protWeights, float64(t.Protective))
	}
	// Protective registrations draw from a global scaled budget so they
	// survive down-scaling (paper: 73 homograph / 45 Type-1 defensive
	// registrations overall).
	protCounts := allocate(cfg.scaleAtLeast1(protectiveTotal), protWeights)
	for i := range protCounts {
		targets[i].protective = protCounts[i]
	}
	// Tail: the next-ranked brands share the residual mass evenly.
	tailBrands := distinctBrands - len(top)
	tailWeight := 0.0
	if tailBrands > 0 {
		// Residual mass relative to the top-10's published share.
		residual := 1.0/0.339 - 1.0 // top-10 ≈ 33.9% for homographs; close enough for both tables
		tailWeight = float64(topPaperTotal) * residual / float64(tailBrands)
	}
	for _, b := range brands.List() {
		if len(targets) >= distinctBrands {
			break
		}
		if inTop[b.Domain] {
			continue
		}
		targets = append(targets, brandTarget{brand: b})
		weights = append(weights, tailWeight)
	}
	counts := allocate(total, weights)
	for i := range targets {
		targets[i].count = counts[i]
	}
	return targets
}

// identicalVariants returns the single-substitution variants of label that
// render pixel-identically (pure homoglyph swaps like Cyrillic а).
func identicalVariants(tab *confusables.Table, label string) []string {
	var out []string
	runes := []rune(label)
	for i, r := range runes {
		for _, h := range tab.Homoglyphs(r) {
			if marks, ok := glyph.MarksOf(h); ok && len(marks) == 0 {
				cand := make([]rune, len(runes))
				copy(cand, runes)
				cand[i] = h
				out = append(out, string(cand))
			}
		}
	}
	return out
}

func (g *generator) genHomographs() {
	cfg := g.cfg
	total := cfg.scaleAtLeast1(HomographTotal)
	identicalBudget := cfg.scaleAtLeast1(HomographIdentical)
	blacklistBudget := cfg.scaleAtLeast1(HomographBlacklisted)
	tab := confusables.Default()
	targets := g.allocateBrands(total, HomographProtective, TableXIIIHomographTargets, HomographTargetBrands)

	made := 0
	for _, t := range targets {
		label := t.brand.Label()
		idVars := identicalVariants(tab, label)
		allVars := tab.Variants(label)
		if len(allVars) == 0 {
			continue
		}
		for i := 0; i < t.count; i++ {
			var uniLabel string
			if identicalBudget > 0 && len(idVars) > 0 {
				uniLabel = g.names.unique(idVars[g.src.Intn(len(idVars))])
				identicalBudget--
			} else {
				uniLabel = g.names.unique(allVars[g.src.Intn(len(allVars))])
			}
			ace, err := idna.ToASCIILabel(uniLabel)
			if err != nil {
				continue
			}
			tld := g.attackTLD()
			d := Domain{
				ACE:         ace + "." + tld,
				Unicode:     uniLabel + "." + tld,
				TLD:         tld,
				IsIDN:       true,
				Lang:        langid.English, // Latin-lookalike labels
				Registrar:   g.registrarNames[g.registrar.Next()],
				Created:     g.dateInYear(g.pickYear(g.yearAtk, g.yearAtkW)),
				Attack:      AttackHomograph,
				TargetBrand: t.brand.Domain,
			}
			if i < t.protective {
				d.Protective = true
				d.RegistrantEmail = "dns-admin@" + t.brand.Domain
				d.HasWHOIS = true
			} else if g.src.Bool(0.15) {
				d.RegistrantEmail = g.personalEmail()
			} else {
				d.Privacy = true
			}
			if blacklistBudget > 0 && !d.Protective && g.src.Bool(float64(HomographBlacklisted)/float64(HomographTotal)*2) {
				d.Feeds = []string{blacklist.FeedVirusTotal}
				blacklistBudget--
			}
			whoisRate := whoisRateFor(tld, true)
			if d.Protective {
				whoisRate = 1
			}
			g.finishDomain(d, HomographHosting, ActivityHomograph, CertMixIDN, whoisRate)
			made++
		}
	}
	_ = made
}

func (g *generator) genSemantic() {
	cfg := g.cfg
	total := cfg.scaleAtLeast1(SemanticTotal)
	targets := g.allocateBrands(total, SemanticProtective, TableXIVSemanticTargets, SemanticTargetBrands)
	for _, t := range targets {
		label := t.brand.Label()
		for i := 0; i < t.count; i++ {
			kw := SemanticKeywords[g.src.Intn(len(SemanticKeywords))]
			uniLabel := g.names.unique(label + kw)
			ace, err := idna.ToASCIILabel(uniLabel)
			if err != nil {
				continue
			}
			tld := g.attackTLD()
			d := Domain{
				ACE:         ace + "." + tld,
				Unicode:     uniLabel + "." + tld,
				TLD:         tld,
				IsIDN:       true,
				Lang:        langid.Chinese,
				Registrar:   g.registrarNames[g.registrar.Next()],
				Created:     g.dateInYear(g.pickYear(g.yearAtk, g.yearAtkW)),
				Attack:      AttackSemantic,
				TargetBrand: t.brand.Domain,
			}
			if i < t.protective {
				d.Protective = true
				d.RegistrantEmail = "dns-admin@" + t.brand.Domain
				d.HasWHOIS = true
			} else if g.src.Bool(float64(226) / float64(SemanticTotal)) {
				d.RegistrantEmail = g.personalEmail()
			} else {
				d.Privacy = true
			}
			// A couple of Type-1 IDNs deliver malware (§VII-B).
			if g.src.Bool(float64(2) / float64(SemanticTotal) * 3) {
				d.Feeds = []string{blacklist.Feed360}
			}
			whoisRate := whoisRateFor(tld, true)
			if d.Protective {
				whoisRate = 1
			}
			g.finishDomain(d, SemanticHosting, ActivitySemantic, CertMixIDN, whoisRate)
		}
	}
}

// genOpportunistic materializes the Table III bulk-registrant portfolios.
func (g *generator) genOpportunistic() {
	for _, opp := range TableIIIRegistrants {
		count := g.cfg.scaleAtLeast1(opp.Count)
		for i := 0; i < count; i++ {
			uniLabel := g.names.ThemedLabel(opp.Theme)
			ace, err := idna.ToASCIILabel(uniLabel)
			if err != nil {
				continue
			}
			d := Domain{
				ACE:             ace + ".com",
				Unicode:         uniLabel + ".com",
				TLD:             "com",
				IsIDN:           true,
				Lang:            langid.Chinese,
				Registrar:       g.registrarNames[g.registrar.Next()],
				RegistrantEmail: opp.Email,
				Created:         g.dateInYear(g.pickYear(g.yearMal, g.yearMalW)),
			}
			// Gambling portfolios are where the blacklisted spikes come
			// from (Figure 1's 2015/2017 malicious spikes).
			if opp.Theme == "gambling" && g.src.Bool(0.25) {
				d.Feeds = []string{blacklist.Feed360}
			}
			act := ActivityIDN
			hosting := webprobe.IDNWeights()
			if d.Malicious() {
				act = ActivityMalicious
				hosting = maliciousHosting
			}
			g.finishDomain(d, hosting, act, CertMixIDN, whoisRateFor("com", true))
		}
	}
}

// genRegularIDNs tops each TLD up to its Table I IDN total with benign and
// blacklisted registrations in the Table II language mix.
func (g *generator) genRegularIDNs() {
	cfg := g.cfg
	assigned := g.assignedPerTLD()
	langW := make([]float64, len(TableIILanguages))
	for i, lw := range TableIILanguages {
		langW[i] = lw.Weight
	}
	malLangW := make([]float64, len(TableIIMaliciousLanguages))
	for i, lw := range TableIIMaliciousLanguages {
		malLangW[i] = lw.Weight
	}
	langSampler := simrand.NewWeighted(g.src.Fork("lang"), langW)
	malLangSampler := simrand.NewWeighted(g.src.Fork("mallang"), malLangW)

	for _, row := range TableI {
		want := cfg.scaleCount(row.IDNs)
		remaining := want - assigned[row.TLD]
		if remaining <= 0 {
			continue
		}
		// Blacklist budget for this TLD, minus what attack/opportunistic
		// populations already consumed (approximately; the union count is
		// what Table I checks).
		malWant := cfg.scaleCount(row.BlacklistTotal)
		feedW := simrand.NewWeighted(g.src, []float64{
			float64(row.VirusTotal), float64(row.Qihoo360), float64(row.Baidu)})
		feedNames := []string{blacklist.FeedVirusTotal, blacklist.Feed360, blacklist.FeedBaidu}

		whoisRate := whoisRateFor(row.TLD, true)
		for i := 0; i < remaining; i++ {
			malicious := i < malWant
			var lang langid.Language
			if malicious {
				lang = TableIIMaliciousLanguages[malLangSampler.Next()].Lang
			} else {
				lang = TableIILanguages[langSampler.Next()].Lang
			}
			uniLabel := g.names.Label(lang)
			ace, err := idna.ToASCIILabel(uniLabel)
			if err != nil {
				continue
			}
			tld := row.TLD
			uniTLD := tld
			if row.TLD == "itld" {
				tld = g.reg.ITLDs[g.src.Intn(len(g.reg.ITLDs))]
				if u, err := idna.ToUnicodeLabel(tld); err == nil {
					uniTLD = u
				} else {
					uniTLD = tld
				}
			}
			d := Domain{
				ACE:     ace + "." + tld,
				Unicode: uniLabel + "." + uniTLD,
				TLD:     tld,
				IsIDN:   true,
				Lang:    lang,
			}
			d.Registrar = g.registrarNames[g.registrar.Next()]
			hosting := webprobe.IDNWeights()
			act := ActivityIDN
			if malicious {
				d.Feeds = []string{feedNames[feedW.Next()]}
				// Feeds overlap: a second feed sometimes agrees.
				if g.src.Bool(0.08) {
					other := feedNames[feedW.Next()]
					if other != d.Feeds[0] {
						d.Feeds = append(d.Feeds, other)
					}
				}
				d.Created = g.dateInYear(g.pickYear(g.yearMal, g.yearMalW))
				d.RegistrantEmail = g.personalEmail()
				hosting = maliciousHosting
				act = ActivityMalicious
			} else {
				d.Created = g.dateInYear(g.pickYear(g.yearAll, g.yearAllW))
				if g.src.Bool(0.35) {
					d.Privacy = true
				} else {
					d.RegistrantEmail = g.personalEmail()
				}
			}
			g.finishDomain(d, hosting, act, CertMixIDN, whoisRate)
		}
	}
}

// genNonIDNs materializes the sampled non-IDN comparison population.
func (g *generator) genNonIDNs() {
	cfg := g.cfg
	for _, row := range TableI {
		count := cfg.scaleCount(row.NonIDNSample)
		for i := 0; i < count; i++ {
			label := g.names.ASCIILabel()
			d := Domain{
				ACE:     label + "." + row.TLD,
				Unicode: label + "." + row.TLD,
				TLD:     row.TLD,
				IsIDN:   false,
				Lang:    langid.English,
			}
			d.Registrar = g.registrarNames[g.registrar.Next()]
			if g.src.Bool(0.3) {
				d.Privacy = true
			} else {
				d.RegistrantEmail = g.personalEmail()
			}
			d.Created = g.dateInYear(g.pickYear(g.yearAll, g.yearAllW))
			g.finishDomain(d, webprobe.NonIDNWeights(), ActivityNonIDN, CertMixNonIDN, whoisRateFor(row.TLD, false))
		}
	}
}
