package zonegen

import (
	"bytes"
	"reflect"
	"testing"
)

func labelsRegistry(t *testing.T) *Registry {
	t.Helper()
	return Generate(Config{Seed: 2018, Scale: 50})
}

func TestLabelsDeterminism(t *testing.T) {
	a := labelsRegistry(t).Labels()
	b := labelsRegistry(t).Labels()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Labels is not deterministic across identical generations")
	}
}

func TestLabelsClasses(t *testing.T) {
	labels := labelsRegistry(t).Labels()
	if len(labels) == 0 {
		t.Fatal("no labeled domains")
	}
	pops := map[string]int{}
	pos, evals := 0, 0
	for _, l := range labels {
		pops[l.Population]++
		if l.Positive {
			pos++
			switch l.Population {
			case "protective", "homograph", "semantic", "semantic2":
			default:
				t.Fatalf("positive example in benign population %q", l.Population)
			}
		} else if l.Population != "benign-idn" && l.Population != "benign-ascii" {
			t.Fatalf("negative example in attack population %q", l.Population)
		}
		if l.Eval {
			evals++
		}
		if l.AgeDays < 0 {
			t.Fatalf("negative age for %s", l.ACE)
		}
	}
	for _, want := range []string{"homograph", "semantic", "benign-idn", "benign-ascii"} {
		if pops[want] == 0 {
			t.Fatalf("population %q absent from labels (have %v)", want, pops)
		}
	}
	if pos == 0 {
		t.Fatal("no positives in labels")
	}
	// The deterministic split hashes ~20% into eval; allow wide slack.
	frac := float64(evals) / float64(len(labels))
	if frac < 0.1 || frac > 0.3 {
		t.Fatalf("eval fraction %.3f outside [0.1, 0.3]", frac)
	}
}

func TestLabelsExcludeOpportunisticAbuse(t *testing.T) {
	reg := labelsRegistry(t)
	labeled := map[string]bool{}
	for _, l := range reg.Labels() {
		labeled[l.ACE] = true
	}
	excluded := 0
	for i := range reg.Domains {
		d := &reg.Domains[i]
		if d.Malicious() && d.Attack == AttackNone && !d.Protective {
			if labeled[d.ACE] {
				t.Fatalf("opportunistic-abuse domain %s must be excluded from labels", d.ACE)
			}
			excluded++
		}
	}
	if excluded == 0 {
		t.Fatal("corpus has no opportunistic-abuse domains to exclude; test is vacuous")
	}
}

func TestLabelsCSVRoundTrip(t *testing.T) {
	labels := labelsRegistry(t).Labels()
	var buf bytes.Buffer
	if err := WriteLabels(&buf, labels); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	got, err := ReadLabels(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(labels) {
		t.Fatalf("round trip changed row count: %d -> %d", len(labels), len(got))
	}
	// Ages serialize at fixed precision, so the invariant is on the
	// serialized form: re-writing what was read reproduces the bytes.
	var buf2 bytes.Buffer
	if err := WriteLabels(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Fatal("CSV round trip is not byte-stable")
	}
	for i := range got {
		if got[i].ACE != labels[i].ACE || got[i].Population != labels[i].Population ||
			got[i].Positive != labels[i].Positive || got[i].Eval != labels[i].Eval {
			t.Fatalf("row %d changed in round trip: %+v vs %+v", i, got[i], labels[i])
		}
	}
}

func TestReadLabelsRejectsBadHeader(t *testing.T) {
	if _, err := ReadLabels(bytes.NewReader([]byte("a,b,c,d,e,f,g\n"))); err == nil {
		t.Fatal("wrong header must be rejected")
	}
}
