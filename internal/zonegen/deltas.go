package zonegen

// Day-over-day zone deltas. The paper's study is a one-shot snapshot;
// continuous brand protection watches *new registrations* as they appear
// in zone files. This file teaches the generator to evolve its universe
// one day at a time — new registrations (including fresh homograph
// attacks against the brand list), dropped delegations, and name-server
// changes — and to serialize each day as an IXFR-style delta that
// round-trips through zonefile.Scanner.
//
// Delta text format (RFC 1995 section layout over RFC 1035 master
// syntax): per changed zone, an $ORIGIN directive, a $TTL directive and
// an SOA header carrying the new serial, then one or more rounds of
//
//	SOA <old serial>   ; deletion section follows
//	<deleted records>
//	SOA <new serial>   ; addition section follows
//	<added records>
//
// A dropped delegation appears only in the deletion section, a new
// registration only in the addition section, and an NS change in both
// (old target deleted, new target added) — exactly how a registry
// expresses the three operations in a real incremental zone transfer.
// Everything is plain master-file syntax, so the stream parses with the
// ordinary zonefile.Scanner and needs no second parser.
//
// Determinism: the whole stream derives from the registry's seed. The
// same Config and DeltaConfig always produce a byte-identical sequence
// of delta files, which is what makes the watch tier's replay and
// equivalence tests exact rather than statistical.

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"idnlab/internal/brands"
	"idnlab/internal/confusables"
	"idnlab/internal/idna"
	"idnlab/internal/simrand"
)

// SerialBase is the SOA serial of the day-0 snapshot; the day-N delta
// advances the serial to SerialBase+N.
const SerialBase uint32 = 2017080100

// deltaSOA is the fixed SOA payload prefix shared by every delta header
// (mname, rname); only the serial varies between records.
const deltaSOA = "ns1.registry.example. hostmaster.registry.example."

// nsPool is the deterministic set of delegation targets. The first entry
// is the snapshot default (BuildZones delegates everything to
// dns-host.net); deltas move domains between pool entries.
var nsPool = []string{
	"dns-host.net",
	"parking-dns.net",
	"sedo-ns.com",
	"dnspod.example",
	"cloud-ns.org",
}

// DeltaOp is the kind of one domain-level change.
type DeltaOp uint8

// Delta operations.
const (
	DeltaAdd DeltaOp = iota
	DeltaDrop
	DeltaNSChange
)

// String returns the mnemonic used in logs and tests.
func (op DeltaOp) String() string {
	switch op {
	case DeltaAdd:
		return "add"
	case DeltaDrop:
		return "drop"
	case DeltaNSChange:
		return "nschange"
	}
	return "unknown"
}

// DeltaRecord is one domain-level change inside a day's delta.
type DeltaRecord struct {
	// Op is the change kind.
	Op DeltaOp
	// Owner is the delegated label (ACE form, relative to the zone).
	Owner string
	// Unicode is the display form of the label (adds only).
	Unicode string
	// NS is the delegation target after the change ("" for drops); OldNS
	// the target before it (drops and NS changes).
	NS    string
	OldNS string
	// Attack marks generated abuse registrations and their target brand
	// (ground truth; never serialized into the delta text).
	Attack      AttackKind
	TargetBrand string
}

// ZoneDelta groups one day's changes to a single zone.
type ZoneDelta struct {
	// Origin is the zone apex (ACE form, no trailing dot).
	Origin string
	// Records holds the changes in generation order.
	Records []DeltaRecord
}

// DayDelta is one day of registry churn across all zones.
type DayDelta struct {
	// Day is 1-based; serial is SerialBase+Day.
	Day    int
	Serial uint32
	// Zones lists the changed zones in ascending origin order.
	Zones []ZoneDelta
}

// DeltaConfig parameterizes delta generation. Zero values select
// defaults scaled to the registry size.
type DeltaConfig struct {
	// AddsPerDay is the number of new registrations per day (default
	// max(24, len(Domains)/25)).
	AddsPerDay int
	// DropsPerDay is the number of deleted delegations per day (default
	// AddsPerDay/3).
	DropsPerDay int
	// NSChangesPerDay is the number of re-delegations per day (default
	// AddsPerDay/4).
	NSChangesPerDay int
	// AttackShare is the fraction of adds that are homograph attacks
	// against the brand list (default 0.05).
	AttackShare float64
	// ASCIIShare is the fraction of benign adds that are plain-ASCII
	// registrations (default 0.55 — most zone churn is not IDN).
	ASCIIShare float64
	// AttackTopK bounds attack targets to the top-K brands (default 100).
	AttackTopK int
}

func (c DeltaConfig) withDefaults(registrySize int) DeltaConfig {
	if c.AddsPerDay <= 0 {
		c.AddsPerDay = registrySize / 25
		if c.AddsPerDay < 24 {
			c.AddsPerDay = 24
		}
	}
	if c.DropsPerDay <= 0 {
		c.DropsPerDay = c.AddsPerDay / 3
	}
	if c.NSChangesPerDay <= 0 {
		c.NSChangesPerDay = c.AddsPerDay / 4
	}
	if c.AttackShare <= 0 {
		c.AttackShare = 0.05
	}
	if c.ASCIIShare <= 0 {
		c.ASCIIShare = 0.55
	}
	if c.AttackTopK <= 0 {
		c.AttackTopK = 100
	}
	return c
}

// liveDomain is one delegation in the evolving live set.
type liveDomain struct {
	owner  string // ACE label
	origin string // zone apex
	ns     string // current delegation target (pool entry)
}

// DeltaGen evolves the registry's zones one day at a time. Build with
// Registry.DeltaStream; each Next call advances one day. A DeltaGen is
// not safe for concurrent use.
type DeltaGen struct {
	cfg   DeltaConfig
	src   *simrand.Source
	names *nameGen
	tab   *confusables.Table
	lang  *simrand.Weighted

	day     int
	live    []liveDomain
	targets []brands.Brand
}

// DeltaStream builds the day-over-day churn generator for this registry.
// The stream is fully determined by the registry's seed and cfg: the
// same inputs always yield a byte-identical delta sequence.
func (r *Registry) DeltaStream(cfg DeltaConfig) *DeltaGen {
	cfg = cfg.withDefaults(len(r.Domains))
	src := simrand.New(r.Cfg.Seed).Fork("deltas")
	g := &DeltaGen{
		cfg:     cfg,
		src:     src,
		names:   newNameGen(src.Fork("delta-names")),
		tab:     confusables.Default(),
		targets: brands.TopK(cfg.AttackTopK),
	}
	// Benign adds follow the paper's Table II language mix.
	langW := make([]float64, len(TableIILanguages))
	for i, lw := range TableIILanguages {
		langW[i] = lw.Weight
	}
	g.lang = simrand.NewWeighted(src.Fork("delta-lang"), langW)
	// Seed the live set (and the uniqueness census) from the snapshot so
	// deltas never re-register an existing name.
	g.live = make([]liveDomain, 0, len(r.Domains))
	for i := range r.Domains {
		d := &r.Domains[i]
		owner := strings.TrimSuffix(d.ACE, "."+d.TLD)
		g.live = append(g.live, liveDomain{owner: owner, origin: d.TLD, ns: nsPool[0]})
		if lbl, _, ok := strings.Cut(d.Unicode, "."); ok {
			g.names.seen[lbl] = struct{}{}
		}
	}
	return g
}

// Day returns the number of days generated so far.
func (g *DeltaGen) Day() int { return g.day }

// Live returns the current number of live delegations.
func (g *DeltaGen) Live() int { return len(g.live) }

// Next generates the following day's delta.
func (g *DeltaGen) Next() *DayDelta {
	g.day++
	d := &DayDelta{Day: g.day, Serial: SerialBase + uint32(g.day)}
	byZone := make(map[string]*ZoneDelta)
	zone := func(origin string) *ZoneDelta {
		z, ok := byZone[origin]
		if !ok {
			z = &ZoneDelta{Origin: origin}
			byZone[origin] = z
		}
		return z
	}
	// One change per owner per day: a domain dropped today cannot also
	// re-delegate, and a same-day second pick retries elsewhere.
	touched := make(map[string]struct{})

	// Drops first: they act on the pre-churn live set.
	for i := 0; i < g.cfg.DropsPerDay && len(g.live) > 0; i++ {
		idx, ok := g.pickUntouched(touched)
		if !ok {
			break
		}
		ld := g.live[idx]
		g.live[idx] = g.live[len(g.live)-1]
		g.live = g.live[:len(g.live)-1]
		touched[ld.owner+"."+ld.origin] = struct{}{}
		z := zone(ld.origin)
		z.Records = append(z.Records, DeltaRecord{Op: DeltaDrop, Owner: ld.owner, OldNS: ld.ns})
	}

	// Re-delegations.
	for i := 0; i < g.cfg.NSChangesPerDay && len(g.live) > 0; i++ {
		idx, ok := g.pickUntouched(touched)
		if !ok {
			break
		}
		ld := &g.live[idx]
		touched[ld.owner+"."+ld.origin] = struct{}{}
		next := nsPool[1+g.src.Intn(len(nsPool)-1)]
		if next == ld.ns {
			next = nsPool[0]
		}
		z := zone(ld.origin)
		z.Records = append(z.Records, DeltaRecord{Op: DeltaNSChange, Owner: ld.owner, NS: next, OldNS: ld.ns})
		ld.ns = next
	}

	// New registrations: a mix of plain-ASCII churn, benign IDNs, and
	// fresh homograph attacks against the brand list.
	for i := 0; i < g.cfg.AddsPerDay; i++ {
		rec, origin := g.genAdd()
		z := zone(origin)
		z.Records = append(z.Records, rec)
		g.live = append(g.live, liveDomain{owner: rec.Owner, origin: origin, ns: rec.NS})
	}

	origins := make([]string, 0, len(byZone))
	for o := range byZone {
		origins = append(origins, o)
	}
	sort.Strings(origins)
	for _, o := range origins {
		d.Zones = append(d.Zones, *byZone[o])
	}
	return d
}

// pickUntouched selects a live-set index whose domain has not changed
// today, giving up after a bounded number of rerolls (tiny live sets).
func (g *DeltaGen) pickUntouched(touched map[string]struct{}) (int, bool) {
	for tries := 0; tries < 16; tries++ {
		idx := g.src.Intn(len(g.live))
		ld := g.live[idx]
		if _, dup := touched[ld.owner+"."+ld.origin]; !dup {
			return idx, true
		}
	}
	return 0, false
}

// genAdd synthesizes one new registration.
func (g *DeltaGen) genAdd() (DeltaRecord, string) {
	tldW := simrand.NewWeighted(g.src, []float64{0.82, 0.13, 0.05})
	tld := []string{"com", "net", "org"}[tldW.Next()]
	ns := nsPool[g.src.Intn(len(nsPool))]

	if g.src.Bool(g.cfg.AttackShare) {
		if rec, ok := g.genAttackAdd(ns); ok {
			return rec, tld
		}
	}
	if g.src.Bool(g.cfg.ASCIIShare) {
		label := g.names.ASCIILabel()
		return DeltaRecord{Op: DeltaAdd, Owner: label, Unicode: label, NS: ns}, tld
	}
	uniLabel := g.names.Label(TableIILanguages[g.lang.Next()].Lang)
	ace, err := idna.ToASCIILabel(uniLabel)
	if err != nil {
		// Unencodable synthetic label (pathological length): fall back to
		// an ASCII registration so the day keeps its add count.
		label := g.names.ASCIILabel()
		return DeltaRecord{Op: DeltaAdd, Owner: label, Unicode: label, NS: ns}, tld
	}
	return DeltaRecord{Op: DeltaAdd, Owner: ace, Unicode: uniLabel, NS: ns}, tld
}

// genAttackAdd synthesizes a homograph registration against a random
// top-K brand, preferring pixel-identical variants (the class the
// detector must flag at any threshold).
func (g *DeltaGen) genAttackAdd(ns string) (DeltaRecord, bool) {
	b := g.targets[g.src.Intn(len(g.targets))]
	label := b.Label()
	vars := identicalVariants(g.tab, label)
	if len(vars) == 0 {
		vars = g.tab.Variants(label)
	}
	if len(vars) == 0 {
		return DeltaRecord{}, false
	}
	uniLabel := g.names.unique(vars[g.src.Intn(len(vars))])
	ace, err := idna.ToASCIILabel(uniLabel)
	if err != nil {
		return DeltaRecord{}, false
	}
	return DeltaRecord{
		Op: DeltaAdd, Owner: ace, Unicode: uniLabel, NS: ns,
		Attack: AttackHomograph, TargetBrand: b.Domain,
	}, true
}

// WriteTo serializes the day as an IXFR-style master-format delta; see
// the package comment at the top of this file for the exact layout. The
// output is deterministic: zones in ascending origin order, deletions
// before additions, records in generation order.
func (d *DayDelta) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	bw := bufio.NewWriter(cw)
	fmt.Fprintf(bw, "; idnlab zone delta day=%d serial=%d\n", d.Day, d.Serial)
	soa := func(serial uint32) {
		fmt.Fprintf(bw, "@ IN SOA %s %d 900 300 604800 86400\n", deltaSOA, serial)
	}
	nsLine := func(owner, target string) {
		fmt.Fprintf(bw, "%s IN NS ns1.%s.\n", owner, target)
		fmt.Fprintf(bw, "%s IN NS ns2.%s.\n", owner, target)
	}
	for _, z := range d.Zones {
		fmt.Fprintf(bw, "$ORIGIN %s.\n$TTL 86400\n", z.Origin)
		soa(d.Serial) // header: the serial this delta advances to
		soa(d.Serial - 1)
		for _, rec := range z.Records {
			switch rec.Op {
			case DeltaDrop, DeltaNSChange:
				nsLine(rec.Owner, rec.OldNS)
			}
		}
		soa(d.Serial)
		for _, rec := range z.Records {
			switch rec.Op {
			case DeltaAdd, DeltaNSChange:
				nsLine(rec.Owner, rec.NS)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, fmt.Errorf("zonegen: write delta: %w", err)
	}
	return cw.n, nil
}

// countWriter counts bytes for the io.WriterTo contract.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// DeltaFileName is the canonical file name for a day's delta; the serial
// embedded in the name is the watch daemon's input cursor key.
func DeltaFileName(serial uint32) string {
	return fmt.Sprintf("delta-%010d.zone", serial)
}
