package zonegen

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"idnlab/internal/simchar"
)

// Labeled ground truth for the statistical classifier (internal/feat):
// every generated domain with an unambiguous class, tagged with its
// generator population and a deterministic train/eval split. The CSV
// emitted by `idnzonegen -labels` and consumed by `idnstat train` is a
// direct serialization of this view, so the training CLI and every
// in-process consumer (the report's abuse-taxonomy section, the serve
// tests, the benchmarks) share one ground-truth artifact.

// LabeledDomain is one labeled example.
type LabeledDomain struct {
	// ACE and Unicode are the registered name in both forms.
	ACE     string
	Unicode string
	// TLD is the zone without trailing dot.
	TLD string
	// Population names the generator population: "homograph",
	// "semantic", "semantic2", "protective" (positives) or
	// "benign-idn", "benign-ascii" (negatives).
	Population string
	// AgeDays is the registration age at the corpus snapshot.
	AgeDays float64
	// Positive is the classifier's ground-truth class.
	Positive bool
	// Eval marks the ~20% held-out split (deterministic by ACE hash).
	Eval bool
}

// evalSalt separates the split hash from every other use of the seed.
const evalSalt = 0x5eed1ab5

// Labels derives the labeled train/eval view of the generated universe.
// Positives are the attack populations — including protective
// registrations, which are the same strings registered defensively —
// and negatives the benign populations. Domains that are blacklisted
// without belonging to an attack population (opportunistic abuse:
// gambling redirects, malicious non-attack registrations) are excluded
// as ambiguous: their labels are structurally benign, and the
// classifier's contract is structural.
//
// The split is deterministic per (seed, ACE): ~20% of examples hash
// into the held-out eval set, independent of generation order.
func (r *Registry) Labels() []LabeledDomain {
	out := make([]LabeledDomain, 0, len(r.Domains))
	for i := range r.Domains {
		d := &r.Domains[i]
		var pop string
		positive := true
		switch {
		case d.Protective:
			pop = "protective"
		case d.Attack == AttackHomograph:
			pop = "homograph"
		case d.Attack == AttackSemantic:
			pop = "semantic"
		case d.Attack == AttackSemantic2:
			pop = "semantic2"
		case d.Malicious():
			continue // opportunistic abuse: structurally benign, skip
		case d.IsIDN:
			pop, positive = "benign-idn", false
		default:
			pop, positive = "benign-ascii", false
		}
		age := r.Cfg.Snapshot.Sub(d.Created).Hours() / 24
		if age < 0 {
			age = 0
		}
		out = append(out, LabeledDomain{
			ACE:        d.ACE,
			Unicode:    d.Unicode,
			TLD:        d.TLD,
			Population: pop,
			AgeDays:    age,
			Positive:   positive,
			Eval:       simchar.HashBytes(r.Cfg.Seed^evalSalt, []byte(d.ACE))%5 == 0,
		})
	}
	return out
}

// labelsHeader is the CSV column order; WriteLabels emits it and
// ReadLabels verifies it.
var labelsHeader = []string{"ace", "unicode", "tld", "population", "age_days", "positive", "eval"}

// WriteLabels serializes labels as deterministic CSV (fixed column
// order, fixed float formatting, input order preserved).
func WriteLabels(w io.Writer, labels []LabeledDomain) error {
	bw := bufio.NewWriter(w)
	for i, col := range labelsHeader {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(col)
	}
	bw.WriteByte('\n')
	for _, l := range labels {
		fmt.Fprintf(bw, "%s,%s,%s,%s,%.2f,%s,%s\n",
			l.ACE, l.Unicode, l.TLD, l.Population, l.AgeDays,
			boolStr(l.Positive), boolStr(l.Eval))
	}
	return bw.Flush()
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// ReadLabels parses a WriteLabels CSV.
func ReadLabels(r io.Reader) ([]LabeledDomain, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(labelsHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("zonegen: labels header: %w", err)
	}
	for i, col := range labelsHeader {
		if header[i] != col {
			return nil, fmt.Errorf("zonegen: labels column %d is %q, want %q", i, header[i], col)
		}
	}
	var out []LabeledDomain
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("zonegen: labels row %d: %w", len(out)+2, err)
		}
		age, err := strconv.ParseFloat(rec[4], 64)
		if err != nil {
			return nil, fmt.Errorf("zonegen: labels row %d age: %w", len(out)+2, err)
		}
		pos, err := strconv.ParseBool(rec[5])
		if err != nil {
			return nil, fmt.Errorf("zonegen: labels row %d positive: %w", len(out)+2, err)
		}
		eval, err := strconv.ParseBool(rec[6])
		if err != nil {
			return nil, fmt.Errorf("zonegen: labels row %d eval: %w", len(out)+2, err)
		}
		out = append(out, LabeledDomain{
			ACE: rec[0], Unicode: rec[1], TLD: rec[2], Population: rec[3],
			AgeDays: age, Positive: pos, Eval: eval,
		})
	}
}
