// Package zonegen synthesizes the study's entire data universe: a
// registry of IDN and non-IDN domains whose joint distribution is
// calibrated to every number the paper reports (calibration.go), plus
// builders that materialize each auxiliary source — zone files, WHOIS,
// passive DNS, blacklists, certificates, web content — from that ground
// truth.
//
// The paper's inputs (Verisign/PIR zone snapshots, commercial passive DNS,
// WHOIS crawls, URL blacklists) are proprietary; this generator is the
// documented substitution. The measurement pipeline (package core) never
// reads the ground-truth fields directly: it consumes only the
// materialized sources, exactly as the authors consumed their feeds.
package zonegen

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"idnlab/internal/idna"
	"idnlab/internal/langid"
	"idnlab/internal/simrand"
	"idnlab/internal/webprobe"
)

// AttackKind labels the abuse category a domain was generated under.
type AttackKind int

// Attack kinds.
const (
	AttackNone AttackKind = iota
	AttackHomograph
	AttackSemantic
	AttackSemantic2
)

// CertKind is the HTTPS deployment category of a domain.
type CertKind int

// Certificate deployment kinds (Table VI).
const (
	CertNone CertKind = iota
	CertValid
	CertExpired
	CertSelfSigned
	CertShared
)

// Domain is the ground truth for one registered domain.
type Domain struct {
	// ACE is the registered name in ASCII-compatible encoding.
	ACE string
	// Unicode is the display form.
	Unicode string
	// TLD is the zone ("com", "net", "org", or an iTLD origin).
	TLD string
	// IsIDN reports whether the domain is internationalized.
	IsIDN bool
	// Lang is the intended language of the label.
	Lang langid.Language
	// Registrar and registrant identity.
	Registrar       string
	RegistrantEmail string
	Privacy         bool
	// HasWHOIS reports whether the WHOIS crawl covers this domain.
	HasWHOIS bool
	// Created is the registration date.
	Created time.Time
	// Feeds lists the blacklist feeds flagging the domain (empty when
	// benign).
	Feeds []string
	// Hosting is the web-content profile.
	Hosting webprobe.State
	// Cert describes HTTPS deployment; SharedCN is set for CertShared.
	Cert     CertKind
	SharedCN string
	// Attack marks generated abuse domains and their target.
	Attack      AttackKind
	TargetBrand string
	// Protective reports a brand-owner defensive registration.
	Protective bool
	// Passive-DNS ground truth.
	FirstSeen time.Time
	LastSeen  time.Time
	Queries   int64
	IPs       []string
}

// Malicious reports whether any blacklist feed flags the domain.
func (d *Domain) Malicious() bool { return len(d.Feeds) > 0 }

// Config parameterizes generation.
type Config struct {
	// Seed makes the whole universe reproducible.
	Seed uint64
	// Scale divides every paper-scale count; 1 reproduces paper scale,
	// the default 100 synthesizes ≈14.7K IDNs.
	Scale int
	// Snapshot anchors all dates; defaults to the paper's snapshot.
	Snapshot time.Time
}

// DefaultScale is the default down-scaling divisor.
const DefaultScale = 100

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = DefaultScale
	}
	if c.Snapshot.IsZero() {
		c.Snapshot = Snapshot
	}
	return c
}

// Registry is the generated universe.
type Registry struct {
	// Cfg echoes the generation parameters (defaults resolved).
	Cfg Config
	// Domains holds every materialized domain: all IDNs plus the sampled
	// non-IDN comparison population.
	Domains []Domain
	// SLDTotals carries the analytic per-TLD SLD population (Table I
	// "# SLD" divided by Scale). Zone files materialize only IDNs and
	// sampled non-IDNs, exactly as the paper materialized its samples.
	SLDTotals map[string]int
	// ITLDs lists the 53 internationalized TLD origins in ACE form.
	ITLDs []string

	// byACE indexes Domains by ACE name, built lazily on the first
	// Lookup. Before the index each Lookup was a linear scan over the
	// whole registry — the crawler's per-probe cost was O(corpus).
	byACEOnce sync.Once
	byACE     map[string]int
}

// scaleCount divides a paper-scale count by the configured scale with
// round-half-up.
func (c Config) scaleCount(n int) int {
	return (n + c.Scale/2) / c.Scale
}

// scaleAtLeast1 is scaleCount clamped to a minimum of one, for populations
// that must exist at any scale.
func (c Config) scaleAtLeast1(n int) int {
	v := c.scaleCount(n)
	if v < 1 {
		return 1
	}
	return v
}

// allocate distributes total across weights by largest remainder, so that
// proportions hold exactly even for small totals.
func allocate(total int, weights []float64) []int {
	if total <= 0 || len(weights) == 0 {
		return make([]int, len(weights))
	}
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	if sum <= 0 {
		return make([]int, len(weights))
	}
	out := make([]int, len(weights))
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, len(weights))
	used := 0
	for i, w := range weights {
		exact := float64(total) * w / sum
		out[i] = int(exact)
		used += out[i]
		rems[i] = rem{idx: i, frac: exact - float64(out[i])}
	}
	sort.Slice(rems, func(i, j int) bool {
		if rems[i].frac != rems[j].frac {
			return rems[i].frac > rems[j].frac
		}
		return rems[i].idx < rems[j].idx
	})
	for i := 0; used < total; i++ {
		out[rems[i%len(rems)].idx]++
		used++
	}
	return out
}

// generator carries generation state.
type generator struct {
	cfg       Config
	src       *simrand.Source
	names     *nameGen
	reg       *Registry
	registrar *simrand.Weighted
	// registrarNames indexes the weighted sampler's categories.
	registrarNames []string
	segZipf        *simrand.Zipf
	yearAll        []int
	yearAllW       []float64
	yearMal        []int
	yearMalW       []float64
	yearAtk        []int
	yearAtkW       []float64
	emailSeq       int
	pdnsStart      time.Time
	farsightStart  time.Time
}

// Generate synthesizes the registry for the given configuration.
func Generate(cfg Config) *Registry {
	cfg = cfg.withDefaults()
	g := &generator{
		cfg: cfg,
		src: simrand.New(cfg.Seed),
		reg: &Registry{Cfg: cfg, SLDTotals: make(map[string]int)},
		// 360 DNS Pai coverage starts 2014-08-04; Farsight, used for the
		// abusive subsets, reaches back to 2010-06-24 (§III).
		pdnsStart:     time.Date(2014, 8, 4, 0, 0, 0, 0, time.UTC),
		farsightStart: time.Date(2010, 6, 24, 0, 0, 0, 0, time.UTC),
	}
	g.names = newNameGen(g.src.Fork("names"))
	g.buildRegistrarSampler()
	g.buildYearSamplers()
	segments := cfg.scaleAtLeast1(Slash24Segments)
	g.segZipf = simrand.NewZipf(g.src.Fork("segments"), segments, SegmentZipfS)

	for _, row := range TableI {
		g.reg.SLDTotals[row.TLD] = cfg.scaleCount(row.SLDs)
	}
	g.buildITLDs()
	g.genAttackDomains()
	g.genOpportunistic()
	g.genRegularIDNs()
	g.genNonIDNs()
	return g.reg
}

// buildRegistrarSampler sets up the Table IV head plus a Zipf long tail of
// synthetic registrars.
func (g *generator) buildRegistrarSampler() {
	var weights []float64
	headShare := 0.0
	for _, r := range TableIVRegistrars {
		g.registrarNames = append(g.registrarNames, r.Name)
		weights = append(weights, r.Share)
		headShare += r.Share
	}
	tail := TotalRegistrars - len(TableIVRegistrars)
	tailShare := 100 - headShare
	// Shifted-Zipf tail weights, normalized to the residual share. The
	// shift keeps every tail registrar below GoDaddy's 1.88% (Table IV:
	// rank 10 is the smallest published share).
	zipfSum := 0.0
	zipfW := make([]float64, tail)
	for i := 0; i < tail; i++ {
		zipfW[i] = 1 / float64(i+16)
		zipfSum += zipfW[i]
	}
	for i := 0; i < tail; i++ {
		g.registrarNames = append(g.registrarNames, fmt.Sprintf("Registrar %03d, Inc.", i+11))
		weights = append(weights, tailShare*zipfW[i]/zipfSum)
	}
	g.registrar = simrand.NewWeighted(g.src.Fork("registrar"), weights)
}

func (g *generator) buildYearSamplers() {
	for y := range CreationYearWeights {
		g.yearAll = append(g.yearAll, y)
	}
	sort.Ints(g.yearAll)
	for _, y := range g.yearAll {
		g.yearAllW = append(g.yearAllW, CreationYearWeights[y])
	}
	for y := range MaliciousYearWeights {
		g.yearMal = append(g.yearMal, y)
	}
	sort.Ints(g.yearMal)
	for _, y := range g.yearMal {
		g.yearMalW = append(g.yearMalW, MaliciousYearWeights[y])
	}
	for y := range AttackYearWeights {
		g.yearAtk = append(g.yearAtk, y)
	}
	sort.Ints(g.yearAtk)
	for _, y := range g.yearAtk {
		g.yearAtkW = append(g.yearAtkW, AttackYearWeights[y])
	}
}

// buildITLDs materializes the 53 iTLD origins: a handful of real ones and
// synthetic CJK/Hangul TLD labels for the rest.
func (g *generator) buildITLDs() {
	real := []string{
		"xn--fiqs8s",   // 中国
		"xn--55qx5d",   // 公司
		"xn--io0a7i",   // 网络
		"xn--3e0b707e", // 한국
		"xn--wgbh1c",   // مصر
	}
	g.reg.ITLDs = append(g.reg.ITLDs, real...)
	langs := []langid.Language{langid.Chinese, langid.Japanese, langid.Korean, langid.Chinese, langid.Arabic}
	for i := len(real); i < NumITLDs; i++ {
		label := g.names.Label(langs[i%len(langs)])
		ace, err := idna.ToASCIILabel(label)
		if err != nil {
			continue
		}
		g.reg.ITLDs = append(g.reg.ITLDs, ace)
	}
}

// pickYear samples a creation year from a weight table.
func (g *generator) pickYear(years []int, weights []float64) int {
	w := simrand.NewWeighted(g.src, weights)
	return years[w.Next()]
}

// dateInYear returns a date within year, no later than the snapshot.
func (g *generator) dateInYear(year int) time.Time {
	day := g.src.Intn(365)
	t := time.Date(year, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, day)
	if t.After(g.cfg.Snapshot) {
		t = g.cfg.Snapshot.AddDate(0, 0, -g.src.Intn(90)-1)
	}
	return t
}

// personalEmail synthesizes a registrant address.
func (g *generator) personalEmail() string {
	g.emailSeq++
	providers := []string{"qq.com", "163.com", "gmail.com", "126.com", "hotmail.com"}
	return strconv.Itoa(100000000+g.src.Intn(900000000)) + strconv.Itoa(g.emailSeq%97) + "@" + providers[g.src.Intn(len(providers))]
}

// finishDomain fills the correlated fields (WHOIS coverage, hosting,
// certificates, passive DNS) shared by every population, then appends the
// domain to the registry.
func (g *generator) finishDomain(d Domain, hosting webprobe.Weights, act activityParams, mix certMix, whoisRate float64) {
	// WHOIS coverage.
	d.HasWHOIS = g.src.Bool(whoisRate)
	// Hosting state.
	d.Hosting = g.pickHosting(hosting)
	// Certificates: unresolved domains cannot serve one. Deployment draws
	// from the population's rate; parked deployments always present the
	// parking service's certificate, coupling Table V to Table VII.
	if d.Hosting != webprobe.NotResolved && d.Cert == CertNone && g.src.Bool(mix.DeployRate) {
		if d.Hosting == webprobe.Parked {
			d.Cert = CertShared
		} else {
			d.Cert = g.pickCertKind(mix)
		}
		if d.Cert == CertShared {
			d.SharedCN = g.pickSharedCN()
		}
	}
	// Passive DNS.
	g.fillActivity(&d, act)
	g.reg.Domains = append(g.reg.Domains, d)
}

func (g *generator) pickHosting(weights webprobe.Weights) webprobe.State {
	states := webprobe.States()
	w := make([]float64, len(states))
	for i, s := range states {
		w[i] = weights[s]
	}
	return states[simrand.NewWeighted(g.src, w).Next()]
}

func (g *generator) pickCertKind(mix certMix) CertKind {
	w := simrand.NewWeighted(g.src, []float64{mix.Valid, mix.Expired, mix.InvalidAuthority, mix.InvalidCommonNameShared})
	return []CertKind{CertValid, CertExpired, CertSelfSigned, CertShared}[w.Next()]
}

func (g *generator) pickSharedCN() string {
	w := make([]float64, len(TableVIISharedCNs))
	for i, cn := range TableVIISharedCNs {
		w[i] = cn.Weight
	}
	return TableVIISharedCNs[simrand.NewWeighted(g.src, w).Next()].CN
}

// fillActivity samples the passive-DNS ground truth for a domain. Attack
// populations are observed through the deeper Farsight window, as in the
// paper's §VI-C/§VII-B analyses.
func (g *generator) fillActivity(d *Domain, act activityParams) {
	windowStart := g.pdnsStart
	if d.Attack != AttackNone {
		windowStart = g.farsightStart
	}
	start := d.Created
	if start.Before(windowStart) {
		start = windowStart
	}
	// First query shortly after the observable window opens.
	lag := int(g.src.Exponential(20))
	d.FirstSeen = start.AddDate(0, 0, lag)
	if d.FirstSeen.After(g.cfg.Snapshot) {
		d.FirstSeen = g.cfg.Snapshot.AddDate(0, 0, -1)
	}
	activeDays := g.src.LogNormal(act.ActiveMu, act.ActiveSigma)
	if activeDays < 0.5 {
		activeDays = 0.5
	}
	d.LastSeen = d.FirstSeen.AddDate(0, 0, int(activeDays))
	if d.LastSeen.After(g.cfg.Snapshot) {
		d.LastSeen = g.cfg.Snapshot
	}
	q := int64(g.src.LogNormal(act.QueryMu, act.QuerySigma))
	if q < 1 {
		q = 1
	}
	d.Queries = q
	nIPs := 1 + g.src.Intn(3)
	for i := 0; i < nIPs; i++ {
		d.IPs = append(d.IPs, g.segmentIP(g.segZipf.Next()))
	}
}

// segmentIP maps a /24 segment rank to a concrete address in it.
func (g *generator) segmentIP(rank int) string {
	a := 10 + rank/65536
	b := (rank / 256) % 256
	c := rank % 256
	host := 1 + g.src.Intn(254)
	return fmt.Sprintf("%d.%d.%d.%d", a, b, c, host)
}

// whoisRateFor returns the per-TLD WHOIS coverage from Table I.
func whoisRateFor(tld string, isIDN bool) float64 {
	if !isIDN {
		return 0.9 // the non-IDN sample parsed well; not reported, assume high
	}
	for _, row := range TableI {
		if row.TLD == tld {
			return float64(row.WHOIS) / float64(row.IDNs)
		}
	}
	// iTLDs: 1.1% parse success.
	return float64(2226) / float64(208163)
}
