package zonegen

import (
	"math"
	"testing"
	"time"

	"idnlab/internal/idna"
	"idnlab/internal/langid"
)

// testRegistry is generated once; tests are read-only over it.
var testRegistry = Generate(Config{Seed: 1, Scale: 100})

func countIf(r *Registry, pred func(*Domain) bool) int {
	n := 0
	for i := range r.Domains {
		if pred(&r.Domains[i]) {
			n++
		}
	}
	return n
}

func TestIDNTotalsPerTLD(t *testing.T) {
	got := map[string]int{}
	for i := range testRegistry.Domains {
		d := &testRegistry.Domains[i]
		if !d.IsIDN {
			continue
		}
		key := d.TLD
		if idna.IsACELabel(key) {
			key = "itld"
		}
		got[key]++
	}
	for _, row := range TableI {
		want := testRegistry.Cfg.scaleCount(row.IDNs)
		g := got[row.TLD]
		// Attack populations may push a TLD slightly past its quota.
		if g < want || g > want+want/10+60 {
			t.Errorf("TLD %s: %d IDNs, want ≈%d", row.TLD, g, want)
		}
	}
}

func TestNonIDNSampleSizes(t *testing.T) {
	got := countIf(testRegistry, func(d *Domain) bool { return !d.IsIDN })
	want := testRegistry.Cfg.scaleCount(1000000 + 100000 + 100000)
	if got != want {
		t.Errorf("non-IDN sample = %d, want %d", got, want)
	}
}

func TestAllDomainsEncodable(t *testing.T) {
	for i := range testRegistry.Domains {
		d := &testRegistry.Domains[i]
		if _, err := idna.ToASCII(d.ACE); err != nil {
			t.Fatalf("domain %q not valid ACE: %v", d.ACE, err)
		}
		uni, err := idna.ToUnicode(d.ACE)
		if err != nil {
			t.Fatalf("domain %q not decodable: %v", d.ACE, err)
		}
		if uni != d.Unicode {
			t.Fatalf("domain %q decodes to %q, registry says %q", d.ACE, uni, d.Unicode)
		}
	}
}

func TestACEUniqueness(t *testing.T) {
	seen := make(map[string]struct{}, len(testRegistry.Domains))
	for i := range testRegistry.Domains {
		ace := testRegistry.Domains[i].ACE
		if _, dup := seen[ace]; dup {
			t.Fatalf("duplicate domain %q", ace)
		}
		seen[ace] = struct{}{}
	}
}

func TestLanguageMixMatchesTableII(t *testing.T) {
	counts := map[langid.Language]int{}
	idns := 0
	for i := range testRegistry.Domains {
		d := &testRegistry.Domains[i]
		if d.IsIDN {
			counts[d.Lang]++
			idns++
		}
	}
	chinese := float64(counts[langid.Chinese]) / float64(idns)
	if math.Abs(chinese-0.52) > 0.08 {
		t.Errorf("Chinese share = %.3f, want ≈0.52", chinese)
	}
	japanese := float64(counts[langid.Japanese]) / float64(idns)
	if math.Abs(japanese-0.13) > 0.05 {
		t.Errorf("Japanese share = %.3f, want ≈0.13", japanese)
	}
	eastAsian := float64(counts[langid.Chinese]+counts[langid.Japanese]+counts[langid.Korean]+counts[langid.Thai]) / float64(idns)
	if eastAsian < 0.70 {
		t.Errorf("east-Asian share = %.3f; Finding 1 wants >0.75 area", eastAsian)
	}
}

func TestBlacklistVolume(t *testing.T) {
	mal := countIf(testRegistry, func(d *Domain) bool { return d.IsIDN && d.Malicious() })
	want := testRegistry.Cfg.scaleCount(6241)
	if mal < want*7/10 || mal > want*16/10 {
		t.Errorf("malicious IDNs = %d, want ≈%d", mal, want)
	}
}

func TestWHOISCoverage(t *testing.T) {
	have := countIf(testRegistry, func(d *Domain) bool { return d.IsIDN && d.HasWHOIS })
	idns := countIf(testRegistry, func(d *Domain) bool { return d.IsIDN })
	rate := float64(have) / float64(idns)
	if math.Abs(rate-0.50) > 0.07 {
		t.Errorf("WHOIS coverage = %.3f, want ≈0.50", rate)
	}
}

func TestRegistrarConcentration(t *testing.T) {
	counts := map[string]int{}
	idns := 0
	for i := range testRegistry.Domains {
		d := &testRegistry.Domains[i]
		if d.IsIDN {
			counts[d.Registrar]++
			idns++
		}
	}
	gmo := float64(counts["GMO Internet Inc."]) / float64(idns)
	if math.Abs(gmo-0.23) > 0.05 {
		t.Errorf("GMO share = %.3f, want ≈0.23", gmo)
	}
	if len(counts) < 200 {
		t.Errorf("distinct registrars = %d; want a long tail (paper: >700)", len(counts))
	}
}

func TestHomographPopulation(t *testing.T) {
	total := 0
	byBrand := map[string]int{}
	identical := 0
	protective := 0
	for i := range testRegistry.Domains {
		d := &testRegistry.Domains[i]
		if d.Attack != AttackHomograph {
			continue
		}
		total++
		byBrand[d.TargetBrand]++
		if d.Protective {
			protective++
		}
		_ = identical
	}
	want := testRegistry.Cfg.scaleAtLeast1(HomographTotal)
	if math.Abs(float64(total-want)) > float64(want)/5 {
		t.Errorf("homographs = %d, want ≈%d", total, want)
	}
	if byBrand["google.com"] == 0 {
		t.Error("google.com should be targeted (Table XIII top)")
	}
	for brand, n := range byBrand {
		if n > byBrand["google.com"] && brand != "google.com" {
			t.Errorf("brand %s has %d homographs, more than google's %d", brand, n, byBrand["google.com"])
		}
	}
	if protective == 0 {
		t.Error("some protective homograph registrations expected")
	}
}

func TestSemanticPopulation(t *testing.T) {
	total := 0
	byBrand := map[string]int{}
	for i := range testRegistry.Domains {
		d := &testRegistry.Domains[i]
		if d.Attack != AttackSemantic {
			continue
		}
		total++
		byBrand[d.TargetBrand]++
		// Type-1 shape: ASCII brand label + CJK keyword.
		label := d.Unicode[:len(d.Unicode)-len(d.TLD)-1]
		hasCJK := false
		for _, r := range label {
			if r >= 0x2E80 {
				hasCJK = true
			}
		}
		if !hasCJK {
			t.Errorf("semantic IDN %q lacks CJK keyword", d.Unicode)
		}
	}
	want := testRegistry.Cfg.scaleAtLeast1(SemanticTotal)
	if math.Abs(float64(total-want)) > float64(want)/5 {
		t.Errorf("semantic IDNs = %d, want ≈%d", total, want)
	}
	for brand, n := range byBrand {
		if n > byBrand["58.com"] && brand != "58.com" {
			t.Errorf("brand %s has %d semantic IDNs, more than 58.com's %d", brand, n, byBrand["58.com"])
		}
	}
}

func TestOpportunisticPortfolios(t *testing.T) {
	counts := map[string]int{}
	for i := range testRegistry.Domains {
		d := &testRegistry.Domains[i]
		if d.RegistrantEmail != "" {
			counts[d.RegistrantEmail]++
		}
	}
	for _, opp := range TableIIIRegistrants[:5] {
		want := testRegistry.Cfg.scaleAtLeast1(opp.Count)
		if got := counts[opp.Email]; got < want*8/10 {
			t.Errorf("registrant %s has %d domains, want ≈%d", opp.Email, got, want)
		}
	}
}

func TestCreationDatesWithinRange(t *testing.T) {
	snapshot := testRegistry.Cfg.Snapshot
	pre2008 := 0
	idns := 0
	for i := range testRegistry.Domains {
		d := &testRegistry.Domains[i]
		if d.Created.After(snapshot) {
			t.Fatalf("domain %s created after snapshot: %v", d.ACE, d.Created)
		}
		if d.Created.Year() < 2000 {
			t.Fatalf("domain %s created before 2000: %v", d.ACE, d.Created)
		}
		if d.IsIDN {
			idns++
			if d.Created.Year() < 2008 {
				pre2008++
			}
		}
	}
	rate := float64(pre2008) / float64(idns)
	// Finding 2: 6.16% of IDNs created before 2008.
	if math.Abs(rate-0.0616) > 0.03 {
		t.Errorf("pre-2008 share = %.4f, want ≈0.0616", rate)
	}
}

func TestPDNSInvariants(t *testing.T) {
	for i := range testRegistry.Domains {
		d := &testRegistry.Domains[i]
		if d.LastSeen.Before(d.FirstSeen) {
			t.Fatalf("%s: last seen before first seen", d.ACE)
		}
		if d.LastSeen.After(testRegistry.Cfg.Snapshot) {
			t.Fatalf("%s: last seen after snapshot", d.ACE)
		}
		if d.Queries < 1 {
			t.Fatalf("%s: no queries", d.ACE)
		}
		if len(d.IPs) == 0 {
			t.Fatalf("%s: no IPs", d.ACE)
		}
	}
}

func TestActivitySeparation(t *testing.T) {
	// Findings 5/6: IDN < non-IDN < malicious in both active time and
	// query volume, on medians.
	median := func(pred func(*Domain) bool, metric func(*Domain) float64) float64 {
		var vals []float64
		for i := range testRegistry.Domains {
			d := &testRegistry.Domains[i]
			if pred(d) {
				vals = append(vals, metric(d))
			}
		}
		if len(vals) == 0 {
			return 0
		}
		// Insertion into a sorted copy is overkill; quickselect not
		// needed at test scale.
		for i := 1; i < len(vals); i++ {
			for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
				vals[j], vals[j-1] = vals[j-1], vals[j]
			}
		}
		return vals[len(vals)/2]
	}
	active := func(d *Domain) float64 { return d.LastSeen.Sub(d.FirstSeen).Hours() / 24 }
	queries := func(d *Domain) float64 { return float64(d.Queries) }
	benignIDN := func(d *Domain) bool { return d.IsIDN && !d.Malicious() && d.Attack == AttackNone }
	nonIDN := func(d *Domain) bool { return !d.IsIDN }
	malicious := func(d *Domain) bool { return d.IsIDN && d.Malicious() }

	if mi, mn := median(benignIDN, active), median(nonIDN, active); mi >= mn {
		t.Errorf("median active: IDN %.0f >= non-IDN %.0f", mi, mn)
	}
	if mi, mm := median(benignIDN, queries), median(malicious, queries); mi >= mm {
		t.Errorf("median queries: IDN %.0f >= malicious %.0f", mi, mm)
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Config{Seed: 7, Scale: 400})
	b := Generate(Config{Seed: 7, Scale: 400})
	if len(a.Domains) != len(b.Domains) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Domains), len(b.Domains))
	}
	for i := range a.Domains {
		if a.Domains[i].ACE != b.Domains[i].ACE ||
			a.Domains[i].Queries != b.Domains[i].Queries ||
			!a.Domains[i].Created.Equal(b.Domains[i].Created) {
			t.Fatalf("domain %d differs: %+v vs %+v", i, a.Domains[i], b.Domains[i])
		}
	}
	c := Generate(Config{Seed: 8, Scale: 400})
	if len(c.Domains) == len(a.Domains) && c.Domains[0].ACE == a.Domains[0].ACE &&
		c.Domains[1].ACE == a.Domains[1].ACE && c.Domains[2].ACE == a.Domains[2].ACE {
		t.Error("different seeds produced suspiciously identical output")
	}
}

func TestITLDCount(t *testing.T) {
	if len(testRegistry.ITLDs) != NumITLDs {
		t.Errorf("iTLDs = %d, want %d", len(testRegistry.ITLDs), NumITLDs)
	}
	for _, origin := range testRegistry.ITLDs {
		if !idna.IsACELabel(origin) {
			t.Errorf("iTLD origin %q not ACE", origin)
		}
	}
}

func TestSLDTotalsAnalytic(t *testing.T) {
	if got := testRegistry.SLDTotals["com"]; got != testRegistry.Cfg.scaleCount(129216926) {
		t.Errorf("com SLD total = %d", got)
	}
}

func TestSnapshotDefault(t *testing.T) {
	if !testRegistry.Cfg.Snapshot.Equal(Snapshot) {
		t.Errorf("snapshot = %v", testRegistry.Cfg.Snapshot)
	}
	custom := Generate(Config{Seed: 1, Scale: 2000, Snapshot: time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)})
	if custom.Cfg.Snapshot.Year() != 2018 {
		t.Error("custom snapshot ignored")
	}
}

func TestAllocate(t *testing.T) {
	got := allocate(10, []float64{5, 3, 2})
	if got[0] != 5 || got[1] != 3 || got[2] != 2 {
		t.Errorf("allocate = %v", got)
	}
	got = allocate(7, []float64{1, 1, 1})
	sum := got[0] + got[1] + got[2]
	if sum != 7 {
		t.Errorf("allocate sum = %d", sum)
	}
	if got := allocate(0, []float64{1, 2}); got[0] != 0 || got[1] != 0 {
		t.Errorf("allocate(0) = %v", got)
	}
	if got := allocate(5, nil); len(got) != 0 {
		t.Errorf("allocate(nil) = %v", got)
	}
}

func BenchmarkGenerateScale1000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Generate(Config{Seed: uint64(i), Scale: 1000})
	}
}

func TestProportionsStableAcrossScales(t *testing.T) {
	// The scale model's core promise: proportions hold at any divisor.
	shares := func(scale int) (chinese, com, malicious float64) {
		reg := Generate(Config{Seed: 3, Scale: scale})
		var idns, ch, comN, mal int
		for i := range reg.Domains {
			d := &reg.Domains[i]
			if !d.IsIDN {
				continue
			}
			idns++
			if d.Lang == langid.Chinese {
				ch++
			}
			if d.TLD == "com" {
				comN++
			}
			if d.Malicious() {
				mal++
			}
		}
		return float64(ch) / float64(idns), float64(comN) / float64(idns), float64(mal) / float64(idns)
	}
	ch50, com50, mal50 := shares(50)
	ch400, com400, mal400 := shares(400)
	if math.Abs(ch50-ch400) > 0.06 {
		t.Errorf("Chinese share drifts across scales: %.3f vs %.3f", ch50, ch400)
	}
	if math.Abs(com50-com400) > 0.06 {
		t.Errorf("com share drifts across scales: %.3f vs %.3f", com50, com400)
	}
	if math.Abs(mal50-mal400) > 0.01 {
		t.Errorf("malicious share drifts across scales: %.4f vs %.4f", mal50, mal400)
	}
}
