package zonegen

import (
	"strconv"
	"strings"

	"idnlab/internal/langid"
	"idnlab/internal/simrand"
)

// Per-language synthetic label generation. Labels are built from curated
// character and syllable pools so that the langid classifier recovers the
// intended language — the calibration tests assert Table II is reproduced
// from classifier output, not from ground truth.

// Character pools for script-decisive languages.
var (
	hanPool = []rune("的一是不了人我在有他这中大来上国个到说们为子和你地出道" +
		"也时年得就那要下以生会自着去之过家学对可她里后小么心多天而能好都然没日于起还发成事只作当想看文无开手十用主行方又如前所本见经头面公同三已老从动两长知民样现分将外但身些与高意进把法此实回二理美点月明器物" +
		"波色娱乐城富贵金银财宝福禄寿喜旺隆昌盛泰安康宁和顺利达通发城市京沪深广州杭南北重庆成都武汉西安邮箱汽车商店网络信息科技服务贸易投资房产旅游酒店餐饮医疗教育文化体育娱音乐游戏电影购物支付银行保险证券基金彩票棋牌")
	hiraganaPool = []rune("あいうえおかきくけこさしすせそたちつてとなにぬねのはひふへほまみむめもやゆよらりるれろわをんがぎぐげござじずぜぞだぢづでどばびぶべぼ")
	katakanaPool = []rune("アイウエオカキクケコサシスセソタチツテトナニヌネノハヒフヘホマミムメモヤユヨラリルレロワヲンガギグゲゴザジズゼゾダヂヅデドバビブベボ")
	kanjiLight   = []rune("日本語東京大阪名古屋京都神戸福岡店舗会社情報旅行温泉寿司花火祭")
	hangulPool   = []rune("가나다라마바사아자차카타파하거너더러머버서어저고노도로모보소오조구누두루무부수우주그는들르므브스으즈기니디리미비시이지한국서울부산대구인천광주대전울산도메인쇼핑몰게임음악여행호텔학교병원은행보험증권카지노")
	thaiPool     = []rune("กขคงจฉชซญดตถทธนบปผพฟภมยรลวศษสหอฮะาิีึืุูเแโใไ")
	cyrillicPool = []rune("абвгдежзиклмнопрстуфхцчшщыэюя")
	arabicPool   = []rune("ابتثجحخدذرزسشصضطظعغفقكلمنهوي")
	persianExtra = []rune("پچژگکی")
)

// Latin syllable pools per language, rich in characteristic letters so
// the naive-Bayes classifier separates them.
var latinSyllables = map[langid.Language][]string{
	langid.German:    {"schön", "straße", "grüß", "münch", "bücher", "käse", "über", "größe", "weiß", "fuß", "mädchen", "glück", "zwölf", "hört", "lösung", "prüf"},
	langid.Turkish:   {"alışveriş", "güzel", "çiçek", "şehir", "yıldız", "öğrenci", "ışık", "ağaç", "kuş", "türk", "çarşı", "düğün"},
	langid.Swedish:   {"försälj", "sjö", "kött", "läkare", "måndag", "björn", "höst", "väg", "grön", "själv", "människ", "kärlek"},
	langid.Spanish:   {"señor", "niño", "año", "montaña", "corazón", "educación", "mañana", "pequeño", "español", "cañón", "diseño"},
	langid.French:    {"château", "crêpe", "forêt", "noël", "café", "société", "déjà", "élève", "hôtel", "août", "cœur", "fenêtre"},
	langid.Finnish:   {"mäki", "järvi", "yö", "työ", "sähkö", "pöytä", "hyvä", "kesä", "syksy", "tyttö", "metsä", "käsi"},
	langid.Hungarian: {"gyönyörű", "szöveg", "könyv", "tűz", "gyerek", "hölgy", "örök", "út", "fő", "kör", "zöld", "győr"},
	langid.Danish:    {"købn", "smørre", "brød", "sø", "grøn", "æble", "høj", "år", "blå", "rød", "først", "kærlig"},
	langid.English:   {"shop", "online", "cloud", "store", "news", "game", "tech", "web", "best", "free", "smart", "home"},
}

// opportunistic portfolio themes (Table III).
var (
	cityNames = []string{"重庆", "成都", "昆明", "贵阳", "南宁", "拉萨", "西昌", "绵阳", "泸州", "宜宾",
		"乐山", "自贡", "攀枝花", "德阳", "遂宁", "内江", "广元", "达州", "雅安", "巴中"}
	gamblingWords = []string{"娱乐城", "博彩", "彩票网", "棋牌", "赌场", "百家乐", "六合彩", "老虎机", "轮盘", "体彩"}
	shoppingWords = []string{"商城", "购物网", "特卖", "折扣店", "精品店", "批发网", "团购", "秒杀", "优选", "好货"}
	shortWords    = []string{"好", "美", "爱", "乐", "福", "发", "赢", "旺", "金", "银"}
)

// nameGen synthesizes unique labels.
type nameGen struct {
	src  *simrand.Source
	seen map[string]struct{}
}

func newNameGen(src *simrand.Source) *nameGen {
	return &nameGen{src: src, seen: make(map[string]struct{}, 1<<16)}
}

// unique registers a candidate label, de-duplicating with a numeric
// suffix when needed. Uniqueness is per-generator (one per TLD namespace
// would be stricter, but global uniqueness is simpler and also valid).
func (g *nameGen) unique(label string) string {
	if _, dup := g.seen[label]; !dup {
		g.seen[label] = struct{}{}
		return label
	}
	for i := 2; ; i++ {
		cand := label + strconv.Itoa(i)
		if _, dup := g.seen[cand]; !dup {
			g.seen[cand] = struct{}{}
			return cand
		}
	}
}

// pick returns n random runes from pool.
func (g *nameGen) pick(pool []rune, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteRune(pool[g.src.Intn(len(pool))])
	}
	return b.String()
}

// Label synthesizes a fresh Unicode label in the given language.
func (g *nameGen) Label(lang langid.Language) string {
	var cand string
	switch lang {
	case langid.Chinese:
		cand = g.pick(hanPool, 2+g.src.Intn(3))
	case langid.Japanese:
		// Kana-bearing so the classifier resolves Japanese vs Chinese.
		switch g.src.Intn(3) {
		case 0:
			cand = g.pick(hiraganaPool, 3+g.src.Intn(3))
		case 1:
			cand = g.pick(katakanaPool, 3+g.src.Intn(3))
		default:
			cand = g.pick(kanjiLight, 1+g.src.Intn(2)) + g.pick(hiraganaPool, 2)
		}
	case langid.Korean:
		cand = g.pick(hangulPool, 2+g.src.Intn(4))
	case langid.Thai:
		cand = g.pick(thaiPool, 3+g.src.Intn(4))
	case langid.Russian:
		cand = g.pick(cyrillicPool, 4+g.src.Intn(6))
	case langid.Arabic:
		cand = g.pick(arabicPool, 3+g.src.Intn(5))
	case langid.Persian:
		cand = g.pick(arabicPool, 2+g.src.Intn(3)) + g.pick(persianExtra, 1+g.src.Intn(2))
	default:
		sylls, ok := latinSyllables[lang]
		if !ok {
			sylls = latinSyllables[langid.English]
		}
		cand = sylls[g.src.Intn(len(sylls))]
		if g.src.Bool(0.6) {
			cand += sylls[g.src.Intn(len(sylls))]
		}
		cand = g.ensureNonASCII(cand)
	}
	return g.unique(cand)
}

// ThemedLabel synthesizes a label for an opportunistic portfolio theme.
func (g *nameGen) ThemedLabel(theme string) string {
	var cand string
	switch theme {
	case "city":
		cand = cityNames[g.src.Intn(len(cityNames))]
		if g.src.Bool(0.5) {
			cand += []string{"房产", "旅游", "招聘", "美食"}[g.src.Intn(4)]
		}
	case "gambling":
		cand = g.pick(hanPool[:60], 1) + gamblingWords[g.src.Intn(len(gamblingWords))]
	case "shopping":
		cand = g.pick(hanPool[:60], 1) + shoppingWords[g.src.Intn(len(shoppingWords))]
	default: // shortword
		cand = shortWords[g.src.Intn(len(shortWords))] + shortWords[g.src.Intn(len(shortWords))]
	}
	return g.unique(cand)
}

// asciiAccents decorates one letter so Latin-script labels qualify as
// IDNs (a registered IDN must contain at least one non-ASCII code point).
var asciiAccents = map[rune][]rune{
	'a': []rune("àáâä"), 'e': []rune("èéêë"), 'o': []rune("òóôö"),
	'u': []rune("ùúûü"), 'i': []rune("ìíî"), 'c': []rune("ç"),
	'n': []rune("ñ"), 's': []rune("š"), 'z': []rune("ž"), 'y': []rune("ý"),
}

// ensureNonASCII replaces the first accentable letter when the candidate
// is pure ASCII.
func (g *nameGen) ensureNonASCII(cand string) string {
	for _, r := range cand {
		if r >= 0x80 {
			return cand
		}
	}
	runes := []rune(cand)
	for i, r := range runes {
		if opts, ok := asciiAccents[r]; ok {
			runes[i] = opts[g.src.Intn(len(opts))]
			return string(runes)
		}
	}
	// No accentable letter: append one.
	return cand + "é"
}

// ASCIILabel synthesizes a non-IDN label.
func (g *nameGen) ASCIILabel() string {
	en := latinSyllables[langid.English]
	cand := en[g.src.Intn(len(en))] + en[g.src.Intn(len(en))]
	if g.src.Bool(0.3) {
		cand += strconv.Itoa(g.src.Intn(100))
	}
	return g.unique(cand)
}
