package punycode

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzDecode ensures the decoder never panics and that every successfully
// decoded label re-encodes to an equivalent form.
func FuzzDecode(f *testing.F) {
	for _, seed := range []string{
		"", "fiqs8s", "0wwy37b", "pple-43d", "ihqwcrb4cv8a8dqg056pqjye",
		"Hello-Another-Way--fc4qua05auwb3674vfr0b", "a-b", "zzzzzzzzzzzz",
		"-> $1.00 <--", "xn--", "99999999999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, encoded string) {
		decoded, err := Decode(encoded)
		if err != nil {
			return
		}
		re, err := Encode(decoded)
		if err != nil {
			t.Fatalf("decoded %q from %q but cannot re-encode: %v", decoded, encoded, err)
		}
		back, err := Decode(re)
		if err != nil || back != decoded {
			t.Fatalf("re-encode of %q not stable: %q -> %q (%v)", encoded, re, back, err)
		}
	})
}

// FuzzEncode ensures the encoder never panics, outputs pure ASCII, and
// round-trips through the decoder.
func FuzzEncode(f *testing.F) {
	for _, seed := range []string{
		"", "中国", "波色", "аpple", "bücher", "日本語", "facebook",
		strings.Repeat("中", 30), "mix中ed",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, label string) {
		if !utf8.ValidString(label) {
			return
		}
		enc, err := Encode(label)
		if err != nil {
			return
		}
		for i := 0; i < len(enc); i++ {
			if enc[i] >= 0x80 {
				t.Fatalf("Encode(%q) produced non-ASCII %q", label, enc)
			}
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(Encode(%q)) failed: %v", label, err)
		}
		if dec != label {
			t.Fatalf("round trip %q -> %q -> %q", label, enc, dec)
		}
	})
}
