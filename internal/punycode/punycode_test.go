package punycode

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

// rfc3492Samples are the official sample strings from RFC 3492 §7.1 plus
// IDN labels that appear in the paper.
var rfc3492Samples = []struct {
	name    string
	unicode string
	encoded string
}{
	{
		name: "rfc-arabic-egyptian",
		unicode: "ليهمابتكل" +
			"موشعربي؟",
		encoded: "egbpdaj6bu4bxfgehfvwxn",
	},
	{
		name:    "rfc-chinese-simplified",
		unicode: "他们为什么不说中文",
		encoded: "ihqwcrb4cv8a8dqg056pqjye",
	},
	{
		name:    "rfc-chinese-traditional",
		unicode: "他們爲什麽不說中文",
		encoded: "ihqwctvzc91f659drss3x8bo0yb",
	},
	{
		name: "rfc-czech",
		unicode: "Pročprost" +
			"ěnemluvíče" +
			"sky",
		encoded: "Proprostnemluvesky-uyb24dma41a",
	},
	{
		name: "rfc-hebrew",
		unicode: "למההםפשוט" +
			"לאמדבריםעב" +
			"רית",
		encoded: "4dbcagdahymbxekheh6e0a7fei0b",
	},
	{
		name: "rfc-hindi",
		unicode: "यहलोगहिन्" +
			"दीक्योंनही" +
			"ंबोलसकतेहै" +
			"ं",
		encoded: "i1baa7eci9glrd9b2ae1bj0hfcgg6iyaf8o0a1dig0cd",
	},
	{
		name: "rfc-japanese",
		unicode: "なぜみんな日本語を" +
			"話してくれないのか",
		encoded: "n8jok5ay5dzabd5bym9f0cm5685rrjetr6pdxa",
	},
	{
		name: "rfc-korean",
		unicode: "세계의모든사람들이" +
			"한국어를이해한다면얼" +
			"마나좋을까",
		encoded: "989aomsvi5e83db1d2a355cv1e0vak1dwrv93d5xbh15a0dt30a5jpsd879ccm6fea98c",
	},
	{
		name: "rfc-russian",
		unicode: "почемужео" +
			"нинеговоря" +
			"тпорусски",
		encoded: "b1abfaaepdrnnbgefbadotcwatmq2g4l",
	},
	{
		name: "rfc-spanish",
		unicode: "Porquénop" +
			"uedensimpl" +
			"ementehabl" +
			"arenEspaño" +
			"l",
		encoded: "PorqunopuedensimplementehablarenEspaol-fmd56a",
	},
	{
		name: "rfc-vietnamese",
		unicode: "Tạisaohọk" +
			"hôngthểchỉ" +
			"nóitiếngVi" +
			"ệt",
		encoded: "TisaohkhngthchnitingVit-kjcr8268qyxafd2f1b9g",
	},
	{
		name:    "rfc-3nen-b-gumi",
		unicode: "3年B組金八先生",
		encoded: "3B-ww4c5e180e575a65lsy2b",
	},
	{
		name:    "rfc-amuro-namie",
		unicode: "安室奈美恵-with-SUPER-MONKEYS",
		encoded: "-with-SUPER-MONKEYS-pc58ag80a8qai00g7n9n",
	},
	{
		name:    "rfc-hello-another-way",
		unicode: "Hello-Another-Way-それぞれの場所",
		encoded: "Hello-Another-Way--fc4qua05auwb3674vfr0b",
	},
	{
		name:    "rfc-hitotsu-yane",
		unicode: "ひとつ屋根の下2",
		encoded: "2-u9tlzr9756bt3uc0v",
	},
	{
		name:    "rfc-maji-de-koi",
		unicode: "MajiでKoiする5秒前",
		encoded: "MajiKoi5-783gue6qz075azm5e",
	},
	{
		name:    "rfc-pafii-de-runba",
		unicode: "パフィーdeルンバ",
		encoded: "de-jg4avhby1noc0d",
	},
	{
		name:    "rfc-sono-speed-de",
		unicode: "そのスピードで",
		encoded: "d9juau41awczczp",
	},
	{
		name:    "rfc-costs",
		unicode: "-> $1.00 <-",
		encoded: "-> $1.00 <--",
	},
	// Labels from the paper.
	{
		name:    "paper-gambling-idn",
		unicode: "波色", // the gambling IDN xn--0wwy37b from paper §IV-C
		encoded: "0wwy37b",
	},
	{
		name:    "paper-china-itld",
		unicode: "中国", // 中国 (xn--fiqs8s)
		encoded: "fiqs8s",
	},
	{
		name:    "paper-apple-homograph",
		unicode: "аpple", // Cyrillic а + pple
		encoded: "pple-43d",
	},
}

func TestEncodeRFC3492Samples(t *testing.T) {
	for _, tc := range rfc3492Samples {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Encode(tc.unicode)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			if got != tc.encoded {
				t.Errorf("Encode(%q) = %q, want %q", tc.unicode, got, tc.encoded)
			}
		})
	}
}

func TestDecodeRFC3492Samples(t *testing.T) {
	for _, tc := range rfc3492Samples {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Decode(tc.encoded)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if got != tc.unicode {
				t.Errorf("Decode(%q) = %q, want %q", tc.encoded, got, tc.unicode)
			}
		})
	}
}

func TestDecodeCaseInsensitiveDigits(t *testing.T) {
	lower, err := Decode("fiqs8s")
	if err != nil {
		t.Fatal(err)
	}
	upper, err := Decode("FIQS8S")
	if err != nil {
		t.Fatal(err)
	}
	if lower != upper {
		t.Errorf("case-insensitive decode mismatch: %q vs %q", lower, upper)
	}
}

func TestEncodeEmptyLabel(t *testing.T) {
	got, err := Encode("")
	if err != nil {
		t.Fatal(err)
	}
	if got != "" {
		t.Errorf("Encode(\"\") = %q", got)
	}
}

func TestDecodeEmpty(t *testing.T) {
	got, err := Decode("")
	if err != nil {
		t.Fatal(err)
	}
	if got != "" {
		t.Errorf("Decode(\"\") = %q", got)
	}
}

func TestEncodeOutputIsASCII(t *testing.T) {
	for _, tc := range rfc3492Samples {
		got, err := Encode(tc.unicode)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(got); i++ {
			if got[i] >= 0x80 {
				t.Fatalf("Encode(%q) produced non-ASCII byte", tc.unicode)
			}
		}
	}
}

func TestEncodeInvalidUTF8(t *testing.T) {
	if _, err := Encode("abc\xff"); !errors.Is(err, ErrInvalidRune) {
		t.Errorf("err = %v, want ErrInvalidRune", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"non-ascii-input", "abc\x80def"},
		{"invalid-digit", "ab-!!"},
		{"truncated", "a-b"},
		{"surrogate-range", "ab-9999999999"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(tc.input); err == nil {
				t.Errorf("Decode(%q) succeeded, want error", tc.input)
			}
		})
	}
}

func TestDecodeSingleDigitIsFirstNonBasic(t *testing.T) {
	// n starts at U+0080, so the smallest decodable insertion is U+0080
	// itself; a decoded basic code point is impossible by construction.
	got, err := Decode("a")
	if err != nil {
		t.Fatal(err)
	}
	if got != "" {
		t.Errorf("Decode(\"a\") = %q, want U+0080", got)
	}
}

// randomLabel builds a label mixing ASCII and non-ASCII code points from
// scripts the paper's corpus covers.
func randomLabel(r *rand.Rand) string {
	pools := [][]rune{
		[]rune("abcdefghijklmnopqrstuvwxyz0123456789-"),
		[]rune("господинпочта"),                    // Cyrillic
		[]rune("中国互联网络信息中心微博客"),                    // Han
		[]rune("ひらがなカタカナ"),                         // Japanese kana
		[]rune("한국어도메인"),                           // Hangul
		[]rune("ไทยโดเมน"),                         // Thai
		[]rune("àáâãäåçèéêëìíîïñòóôõöùúûüýÿāęłőž"), // Latin w/ diacritics
	}
	n := 1 + r.Intn(24)
	out := make([]rune, 0, n)
	for i := 0; i < n; i++ {
		pool := pools[r.Intn(len(pools))]
		out = append(out, pool[r.Intn(len(pool))])
	}
	return string(out)
}

func TestRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(20180625))
	for i := 0; i < 3000; i++ {
		label := randomLabel(r)
		enc, err := Encode(label)
		if err != nil {
			t.Fatalf("Encode(%q): %v", label, err)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%q) from %q: %v", enc, label, err)
		}
		if dec != label {
			t.Fatalf("round trip failed: %q -> %q -> %q", label, enc, dec)
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		// Build a valid label from arbitrary 16-bit values, skipping
		// surrogates and control chars.
		runes := make([]rune, 0, len(raw))
		for _, v := range raw {
			r := rune(v)
			if r < 0x20 || (r >= 0xD800 && r <= 0xDFFF) {
				continue
			}
			runes = append(runes, r)
		}
		label := string(runes)
		if !utf8.ValidString(label) {
			return true
		}
		enc, err := Encode(label)
		if err != nil {
			return false
		}
		dec, err := Decode(enc)
		return err == nil && dec == label
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodePureASCIIAddsDelimiter(t *testing.T) {
	// Per raw Bootstring, a pure-ASCII label encodes to itself plus the
	// trailing delimiter (see the RFC "costs" sample). idna layers the
	// "only encode when non-ASCII present" rule on top.
	got, err := Encode("abc")
	if err != nil {
		t.Fatal(err)
	}
	if got != "abc-" {
		t.Errorf("Encode(\"abc\") = %q, want \"abc-\"", got)
	}
}

func TestDecodeOverflow(t *testing.T) {
	// A long run of 'z' digits multiplies the weight beyond range.
	if _, err := Decode("a-" + strings.Repeat("z", 64)); !errors.Is(err, ErrOverflow) && err == nil {
		t.Error("expected overflow or bad-input error")
	}
}

func BenchmarkEncodeShortCJK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Encode("中国"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeLongMixed(b *testing.B) {
	label := "Hello-Another-Way-それぞれの場所"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(label); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeLongMixed(b *testing.B) {
	enc := "Hello-Another-Way--fc4qua05auwb3674vfr0b"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
