// Package punycode implements the Bootstring algorithm and its Punycode
// instantiation as specified by RFC 3492. Punycode is the ASCII-compatible
// encoding (ACE) used to carry Internationalized Domain Name labels through
// the DNS: all ASCII code points of a label are copied verbatim, and the
// positions and values of non-ASCII code points are encoded as generalized
// variable-length integers appended after a delimiter.
//
// This package encodes and decodes single labels. Whole-domain conversion,
// the "xn--" ACE prefix and label validation live in package idna.
package punycode

import (
	"errors"
	"fmt"
	"strings"
	"unicode/utf8"
)

// Bootstring parameters for the Punycode profile (RFC 3492 §5).
const (
	base        = 36
	tmin        = 1
	tmax        = 26
	skew        = 38
	damp        = 700
	initialBias = 72
	initialN    = 128 // first non-ASCII code point
	delimiter   = '-'
)

// maxRune is the highest valid Unicode code point (U+10FFFF).
const maxRune = '\U0010FFFF'

// Errors returned by Encode and Decode.
var (
	// ErrInvalidRune reports an input code point outside the Unicode range
	// or invalid UTF-8 in the input string.
	ErrInvalidRune = errors.New("punycode: invalid code point in input")
	// ErrOverflow reports that decoding or encoding would exceed the
	// representable integer range (RFC 3492 §6.4).
	ErrOverflow = errors.New("punycode: integer overflow")
	// ErrBadInput reports a malformed encoded string passed to Decode.
	ErrBadInput = errors.New("punycode: malformed input")
)

// adapt is the bias adaptation function of RFC 3492 §6.1.
func adapt(delta, numPoints int, firstTime bool) int {
	if firstTime {
		delta /= damp
	} else {
		delta /= 2
	}
	delta += delta / numPoints
	k := 0
	for delta > ((base-tmin)*tmax)/2 {
		delta /= base - tmin
		k += base
	}
	return k + (base-tmin+1)*delta/(delta+skew)
}

// encodeDigit converts a digit value in [0, base) to its code point:
// 0..25 map to 'a'..'z' and 26..35 map to '0'..'9'.
func encodeDigit(d int) byte {
	switch {
	case d < 26:
		return byte('a' + d)
	case d < 36:
		return byte('0' + d - 26)
	}
	panic("punycode: internal error: digit out of range")
}

// decodeDigit converts a code point to its digit value, accepting both
// cases of letters per RFC 3492 §5. ok is false for non-digit code points.
func decodeDigit(c byte) (d int, ok bool) {
	switch {
	case c >= 'a' && c <= 'z':
		return int(c - 'a'), true
	case c >= 'A' && c <= 'Z':
		return int(c - 'A'), true
	case c >= '0' && c <= '9':
		return int(c-'0') + 26, true
	}
	return 0, false
}

// Encode converts a Unicode label to its Punycode form (without any ACE
// prefix). Labels that are already pure ASCII encode to themselves followed
// by a trailing delimiter per the algorithm; callers that want idempotent
// domain handling should check for non-ASCII content first (package idna
// does). Encode returns ErrInvalidRune for invalid UTF-8 input.
func Encode(label string) (string, error) {
	if !utf8.ValidString(label) {
		return "", ErrInvalidRune
	}
	var output strings.Builder
	runes := make([]rune, 0, len(label))
	basicCount := 0
	for _, r := range label {
		runes = append(runes, r)
		if r < initialN {
			output.WriteByte(byte(r))
			basicCount++
		}
	}
	h := basicCount
	if basicCount > 0 {
		output.WriteByte(delimiter)
	}

	n, delta, bias := initialN, 0, initialBias
	for h < len(runes) {
		// Find the smallest code point >= n among the remaining runes.
		m := rune(maxRune + 1)
		for _, r := range runes {
			if r >= rune(n) && r < m {
				m = r
			}
		}
		if int(m)-n > (int(^uint32(0)>>1)-delta)/(h+1) {
			return "", ErrOverflow
		}
		delta += (int(m) - n) * (h + 1)
		n = int(m)
		for _, r := range runes {
			if int(r) < n {
				delta++
				if delta < 0 {
					return "", ErrOverflow
				}
			}
			if int(r) == n {
				q := delta
				for k := base; ; k += base {
					t := k - bias
					if t < tmin {
						t = tmin
					} else if t > tmax {
						t = tmax
					}
					if q < t {
						break
					}
					output.WriteByte(encodeDigit(t + (q-t)%(base-t)))
					q = (q - t) / (base - t)
				}
				output.WriteByte(encodeDigit(q))
				bias = adapt(delta, h+1, h == basicCount)
				delta = 0
				h++
			}
		}
		delta++
		n++
	}
	return output.String(), nil
}

// Decode converts a Punycode-encoded label (without any ACE prefix) back to
// its Unicode form. Decoding is case-insensitive in the extended digits per
// RFC 3492; the basic code points are preserved as given.
func Decode(encoded string) (string, error) {
	for i := 0; i < len(encoded); i++ {
		if encoded[i] >= 0x80 {
			return "", fmt.Errorf("%w: non-ASCII byte 0x%02x at %d", ErrBadInput, encoded[i], i)
		}
	}
	// Basic code points are everything before the last delimiter.
	basicEnd := strings.LastIndexByte(encoded, delimiter)
	var output []rune
	pos := 0
	if basicEnd >= 0 {
		output = make([]rune, 0, basicEnd+8)
		for i := 0; i < basicEnd; i++ {
			output = append(output, rune(encoded[i]))
		}
		pos = basicEnd + 1
	}

	n, i, bias := initialN, 0, initialBias
	for pos < len(encoded) {
		oldi, w := i, 1
		for k := base; ; k += base {
			if pos >= len(encoded) {
				return "", fmt.Errorf("%w: truncated variable-length integer", ErrBadInput)
			}
			d, ok := decodeDigit(encoded[pos])
			pos++
			if !ok {
				return "", fmt.Errorf("%w: invalid digit %q", ErrBadInput, encoded[pos-1])
			}
			if d > (int(^uint32(0)>>1)-i)/w {
				return "", ErrOverflow
			}
			i += d * w
			t := k - bias
			if t < tmin {
				t = tmin
			} else if t > tmax {
				t = tmax
			}
			if d < t {
				break
			}
			if w > int(^uint32(0)>>1)/(base-t) {
				return "", ErrOverflow
			}
			w *= base - t
		}
		outLen := len(output) + 1
		bias = adapt(i-oldi, outLen, oldi == 0)
		if i/outLen > int(^uint32(0)>>1)-n {
			return "", ErrOverflow
		}
		n += i / outLen
		i %= outLen
		if n > maxRune || (n >= 0xD800 && n <= 0xDFFF) {
			return "", fmt.Errorf("%w: decoded code point U+%04X out of range", ErrBadInput, n)
		}
		if n < initialN {
			return "", fmt.Errorf("%w: decoded basic code point U+%04X", ErrBadInput, n)
		}
		output = append(output, 0)
		copy(output[i+1:], output[i:])
		output[i] = rune(n)
		i++
	}
	return string(output), nil
}
