package candidx

import (
	"encoding/binary"
	"slices"

	"idnlab/internal/simchar"
)

// Probe is the reusable per-caller lookup scratch: the fold buffer, the
// probe-key buffer, the epoch-stamped dedup array and the output slice.
// A Probe is not safe for concurrent use; each goroutine owns one (the
// detector keeps a Probe per clone). After the buffers warm up, lookups
// through the same Probe allocate nothing.
type Probe struct {
	folds []byte   // per-rune fold byte; 0 marks an unfoldable rune
	key   []byte   // probe-key scratch
	out   []uint32 // candidate output buffer
	seen  []uint32 // per-brand epoch stamps for dedup
	epoch uint32
	hit   bool
}

// Candidates returns the IDs of every brand that must be rescored to
// decide the label: the union of all index key matches and the hard
// list, deduplicated and sorted ascending. The caller applies its own
// eligibility rules (length-difference skip) and scores the survivors;
// the index never decides a verdict by itself, which is what keeps
// index-backed detection bit-identical to the full sweep.
//
// The returned slice aliases p's output buffer and is valid until the
// next Candidates call with the same Probe.
func (ix *Index) Candidates(label string, p *Probe) []uint32 {
	ix.lookups.Add(1)

	// Fold the label. Unfoldable runes (hash glyphs, punctuation) can
	// only ever match a wildcard position, so only their positions — not
	// their bytes — matter; 0 marks them (index keys never contain 0).
	p.folds = p.folds[:0]
	unf := 0
	q1, q2 := -1, -1
	for _, r := range label {
		b, ok := ix.table.Fold(r)
		if !ok {
			switch unf {
			case 0:
				q1 = len(p.folds)
			case 1:
				q2 = len(p.folds)
			}
			unf++
			b = 0
		}
		p.folds = append(p.folds, ix.ixFold[b])
	}
	n := len(p.folds)

	if len(p.seen) < len(ix.brandList) {
		p.seen = make([]uint32, len(ix.brandList))
		p.epoch = 0
	}
	p.epoch++
	if p.epoch == 0 { // stamp wrap: re-zero once every 2^32 lookups
		clear(p.seen)
		p.epoch = 1
	}
	p.out = p.out[:0]
	p.hit = false

	if n >= 1 && n <= MaxKeyLen {
		// Same-length class (and, through the padded keys stored one
		// short, brands one rune longer).
		ix.probeLen(p, n, unf, q1, q2)
	}
	if n >= 2 && n-1 <= MaxKeyLen {
		// Truncation class: a label one rune longer than a brand renders
		// identically to its own length-minus-one prefix at the brand's
		// width, so brands of length n-1 are probed with the prefix. The
		// dropped rune leaves the fold profile unchanged except when it
		// was itself unfoldable (it is by construction the last-tracked
		// one, since unfoldable positions are recorded in order).
		unfP, q1P, q2P := unf, q1, q2
		if p.folds[n-1] == 0 {
			unfP--
			if q2 == n-1 {
				q2P = -1
			}
			if q1 == n-1 {
				q1P = -1
			}
		}
		ix.probeLen(p, n-1, unfP, q1P, q2P)
	}

	for _, id := range ix.hard {
		p.add(id)
	}
	slices.Sort(p.out)
	if p.hit {
		ix.hits.Add(1)
	}
	return p.out
}

// probeLen issues every key probe of length L consistent with the
// label's fold profile: with no unfoldable runes, the exact skeleton,
// all single-hole variants and the registered double-hole patterns; with
// one, only holes covering it; with two, only the registered pair; with
// three or more, nothing (no stored key has three wildcards — brands
// needing that live on the hard list).
func (ix *Index) probeLen(p *Probe, L, unf, q1, q2 int) {
	p.key = append(p.key[:0], p.folds[:L]...)
	switch unf {
	case 0:
		ix.probeKey(p)
		for i := 0; i < L; i++ {
			prev := p.key[i]
			p.key[i] = HoleByte
			ix.probeKey(p)
			p.key[i] = prev
		}
		for _, pr := range ix.pairsByLen[L] {
			i, j := int(pr[0]), int(pr[1])
			pi, pj := p.key[i], p.key[j]
			p.key[i], p.key[j] = HoleByte, HoleByte
			ix.probeKey(p)
			p.key[i], p.key[j] = pi, pj
		}
	case 1:
		p.key[q1] = HoleByte
		ix.probeKey(p)
		for _, pr := range ix.pairsByLen[L] {
			i, j := int(pr[0]), int(pr[1])
			if i != q1 && j != q1 {
				continue
			}
			pi, pj := p.key[i], p.key[j]
			p.key[i], p.key[j] = HoleByte, HoleByte
			ix.probeKey(p)
			p.key[i], p.key[j] = pi, pj
		}
	case 2:
		for _, pr := range ix.pairsByLen[L] {
			if int(pr[0]) == q1 && int(pr[1]) == q2 {
				p.key[q1], p.key[q2] = HoleByte, HoleByte
				ix.probeKey(p)
				break
			}
		}
	}
}

// probeKey looks p.key up in the slot table and appends any matching
// entry's brand IDs to the output.
func (ix *Index) probeKey(p *Probe) {
	key := p.key
	h := uint32(simchar.HashBytes(0, key))
	for i := uint32(0); ; i++ {
		if i > ix.mask {
			return // table full of other keys; cannot happen for valid files
		}
		s := (h + i) & ix.mask
		keyRef := binary.LittleEndian.Uint32(ix.slots[s*8:])
		if keyRef == 0 {
			return
		}
		ko := int(keyRef - 1)
		kl := int(ix.keys[ko])
		if kl != len(key) || string(ix.keys[ko+1:ko+1+kl]) != string(key) {
			continue
		}
		eo := int(binary.LittleEndian.Uint32(ix.slots[s*8+4:]))
		cnt := int(binary.LittleEndian.Uint16(ix.entries[eo:]))
		for j := 0; j < cnt; j++ {
			p.add(binary.LittleEndian.Uint32(ix.entries[eo+2+j*4:]))
		}
		p.hit = true
		return
	}
}

// add appends a brand ID to the output unless already present this epoch.
func (p *Probe) add(id uint32) {
	if p.seen[id] == p.epoch {
		return
	}
	p.seen[id] = p.epoch
	p.out = append(p.out, id)
}
