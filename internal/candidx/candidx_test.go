package candidx

import (
	"bytes"
	"testing"

	"idnlab/internal/brands"
	"idnlab/internal/simchar"
)

func testBrands(n int) []brands.Brand {
	return brands.TopK(n)
}

func TestBuildDeterministic(t *testing.T) {
	list := testBrands(100)
	a, err := Build(list, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(list, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two builds of the same catalog differ")
	}
}

func TestRoundTrip(t *testing.T) {
	list := testBrands(50)
	ix, err := Build(list, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	re, err := Load(append([]byte(nil), ix.Bytes()...))
	if err != nil {
		t.Fatal(err)
	}
	if re.Threshold() != ix.Threshold() || re.Fingerprint() != ix.Fingerprint() {
		t.Fatal("header fields changed across round-trip")
	}
	if len(re.Brands()) != len(list) {
		t.Fatalf("brand count %d != %d", len(re.Brands()), len(list))
	}
	for i, b := range re.Brands() {
		if b != list[i] {
			t.Fatalf("brand %d: %+v != %+v", i, b, list[i])
		}
	}
	// Lookups through the reloaded copy are a fixed point of the original.
	var p1, p2 Probe
	for _, b := range list[:20] {
		label := b.Label()
		got := append([]uint32(nil), ix.Candidates(label, &p1)...)
		rt := re.Candidates(label, &p2)
		if len(got) != len(rt) {
			t.Fatalf("%q: candidate count %d != %d", label, len(got), len(rt))
		}
		for i := range got {
			if got[i] != rt[i] {
				t.Fatalf("%q: candidates diverge at %d", label, i)
			}
		}
	}
}

func TestSelfLookup(t *testing.T) {
	list := testBrands(200)
	ix, err := Build(list, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var p Probe
	for id, b := range list {
		cands := ix.Candidates(b.Label(), &p)
		found := false
		for _, c := range cands {
			if int(c) == id {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("brand %d (%q) not a candidate for its own label", id, b.Label())
		}
		for i := 1; i < len(cands); i++ {
			if cands[i] <= cands[i-1] {
				t.Fatalf("candidates not strictly ascending for %q", b.Label())
			}
		}
	}
}

func TestHoleLookup(t *testing.T) {
	list := testBrands(100)
	ix, err := Build(list, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var p Probe
	// A one-rune perturbation with an unfoldable rune (a hash glyph)
	// must still reach the brand through its single-hole key.
	for id, b := range list[:30] {
		label := []rune(b.Label())
		if len(label) < 2 {
			continue
		}
		label[len(label)/2] = '日'
		cands := ix.Candidates(string(label), &p)
		found := false
		for _, c := range cands {
			if int(c) == id {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("brand %d (%q) unreachable through hole key for %q",
				id, b.Label(), string(label))
		}
	}
}

func TestTruncationLookup(t *testing.T) {
	list := testBrands(100)
	ix, err := Build(list, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var p Probe
	// A label one rune longer than a brand renders as the brand plus a
	// truncated (invisible) tail rune, so the brand must be a candidate.
	for id, b := range list[:30] {
		label := b.Label() + "ő"
		cands := ix.Candidates(label, &p)
		found := false
		for _, c := range cands {
			if int(c) == id {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("brand %d (%q) unreachable through prefix probe for %q",
				id, b.Label(), label)
		}
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	ix, err := Build(testBrands(20), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	good := ix.Bytes()

	if _, err := Load(nil); err == nil {
		t.Error("nil input accepted")
	}
	if _, err := Load(good[:10]); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := Load(good[:len(good)-3]); err == nil {
		t.Error("truncated tail accepted")
	}
	for _, off := range []int{0, 9, 17, 25, 30, 40, len(good) / 2, len(good) - 9} {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x41
		if _, err := Load(bad); err == nil {
			t.Errorf("single-byte corruption at %d accepted", off)
		}
	}
}

func TestFingerprintMismatchRejected(t *testing.T) {
	ix, err := Build(testBrands(20), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Flip the stored fingerprint and re-checksum: structurally valid
	// but derived from "another" glyph design.
	bad := append([]byte(nil), ix.Bytes()...)
	bad[8] ^= 1
	fixChecksum(bad)
	if _, err := Load(bad); err != ErrFingerprint {
		t.Fatalf("want ErrFingerprint, got %v", err)
	}
}

// fixChecksum recomputes the trailing checksum after a test mutation.
func fixChecksum(data []byte) {
	sum := simchar.HashBytes(0, data[:len(data)-8])
	for i := 0; i < 8; i++ {
		data[len(data)-8+i] = byte(sum >> (8 * i))
	}
}

func TestStatsCount(t *testing.T) {
	ix, err := Build(testBrands(10), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var p Probe
	ix.Candidates(ix.Brands()[0].Label(), &p)
	ix.Candidates("zzzzzz-no-such-brand", &p)
	lookups, hits := ix.Stats()
	if lookups != 2 {
		t.Fatalf("lookups = %d, want 2", lookups)
	}
	if hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
}
