// Package candidx compiles a brand catalog into a precomputed homograph
// candidate index: every brand is expanded through the SSIM-derived
// confusability table (package simchar) into the set of skeleton keys a
// confusable label can probe with, so the serving layer answers "which
// brands could this label imitate?" with a handful of O(1) hash probes
// instead of an O(brands) SSIM sweep. Candidates returned by the index
// are rescored with the detector's own SSIM kernel, which keeps index-
// backed verdicts bit-identical to the brute sweep while reducing the
// per-lookup work from thousands of image comparisons to (typically)
// zero or one.
//
// The index is compiled offline (cmd/idnindex), serialized into a
// versioned, checksummed, []byte-backed file, and loaded zero-copy at
// serve startup. Lookups allocate nothing in steady state.
package candidx

import (
	"idnlab/internal/glyph"
)

// SubGeom is the precomputed geometry of substituting one glyph cell for
// another: the changed-pixel bounding box relative to the cell origin and
// the substitute's pixels inside that box, ready for the SSIM patch
// kernels. Geometry is a pure function of the glyph pair, so callers
// cache it per base and replay it at every position the base occurs.
type SubGeom struct {
	// R is the substitute code point.
	R rune
	// DX0, DX1, DY0, DY1 bound the changed pixels within the cell
	// (columns [DX0, DX1), rows [DY0, DY1)). DX0 == DX1 means the two
	// glyphs are pixel-identical.
	DX0, DX1, DY0, DY1 int
	// Patch holds the substitute's pixels inside the box, row-major with
	// stride DX1-DX0; nil for pixel-identical pairs.
	Patch []byte
}

// GeomCache memoizes per-base substitution geometry. It is not safe for
// concurrent use; build paths are single-goroutine.
type GeomCache struct {
	re    *glyph.Renderer
	cache map[rune][]SubGeom
}

// NewGeomCache returns an empty cache over the given renderer.
func NewGeomCache(re *glyph.Renderer) *GeomCache {
	return &GeomCache{re: re, cache: make(map[rune][]SubGeom)}
}

// Of returns the substitution geometry of every rune in subs against
// base, computing and caching it on first use. The subs list must be the
// same for repeated calls with the same base (one cache per generation
// source). The returned slice is shared and must not be modified.
func (g *GeomCache) Of(base rune, subs []rune) []SubGeom {
	if list, ok := g.cache[base]; ok {
		return list
	}
	ca := g.re.CellBits(base)
	list := make([]SubGeom, 0, len(subs))
	for _, h := range subs {
		cb := g.re.CellBits(h)
		c := SubGeom{R: h}
		c.DX0, c.DX1, c.DY0, c.DY1 = glyph.DiffBox(ca, cb)
		if c.DX0 != c.DX1 {
			c.Patch = glyph.AppendPatch(cb, c.DX0, c.DX1, c.DY0, c.DY1, nil)
		}
		list = append(list, c)
	}
	g.cache[base] = list
	return list
}

// BlankGeom returns the geometry of erasing base's cell entirely (the
// padded-comparison class: a label one rune shorter than the brand
// renders the brand's last cell as background). DX0 == DX1 when the base
// cell has no ink.
func BlankGeom(re *glyph.Renderer, base rune) SubGeom {
	ca := re.CellBits(base)
	var blank [glyph.CellHeight]uint8
	c := SubGeom{R: 0}
	c.DX0, c.DX1, c.DY0, c.DY1 = glyph.DiffBox(ca, blank)
	if c.DX0 != c.DX1 {
		c.Patch = glyph.AppendPatch(blank, c.DX0, c.DX1, c.DY0, c.DY1, nil)
	}
	return c
}
