package candidx

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"idnlab/internal/brands"
	"idnlab/internal/simchar"
)

// DefaultThreshold mirrors the detector's default SSIM threshold; the
// index must be compiled for the threshold it will serve (the value is
// embedded and checked downstream).
const DefaultThreshold = 0.98

// Emission margins. Raw deficits of substitutions at positions at least
// two cells apart add exactly (their SSIM window bands are disjoint), so
// the budget comparison is sharp there; marginFactor keeps headroom for
// float noise and mild interactions, and adjFactor discounts runs of
// consecutive positions, whose bands overlap and whose joint penalty can
// undercut the sum of the marginals. The discount is calibrated against
// exact joint renders of the cheapest adjacent substitution pairs and
// triples, whose worst observed joint-to-sum ratio is 0.944; 0.85 keeps
// a real margin under that.
const (
	marginFactor = 1.3
	adjFactor    = 0.85
)

// BuildOptions parameterizes Build. Zero values select the defaults.
type BuildOptions struct {
	// Threshold is the SSIM detection threshold the index is compiled
	// for (default DefaultThreshold).
	Threshold float64
	// Table is the simchar derivation to expand through (default
	// simchar.Default()).
	Table *simchar.Table
}

// Build compiles a brand catalog into a candidate index. The same
// catalog, threshold and derivation always produce byte-identical output
// (every traversal below is explicitly ordered), which is what makes
// `idnindex verify` a simple rebuild-and-compare.
//
// Per brand, the expansion emits the skeleton key, one single-hole key
// per position, double-hole keys for position pairs whose combined
// minimum off-family penalty fits the (margined) budget, and — when the
// one-rune-shorter comparison's blank-cell penalty fits — the same
// family of keys over the length-minus-one prefix. Brands where three
// simultaneous off-family substitutions could fit the budget go on the
// hard list and are rescored on every lookup instead.
func Build(list []brands.Brand, opt BuildOptions) (*Index, error) {
	thr := opt.Threshold
	if thr == 0 {
		thr = DefaultThreshold
	}
	if !(thr > 0 && thr <= 1) {
		return nil, fmt.Errorf("candidx: invalid threshold %v", thr)
	}
	table := opt.Table
	if table == nil {
		table = simchar.Default()
	}
	if len(list) > math.MaxUint16 {
		// Entry records carry a u16 ID count, so a single key can hold at
		// most 65535 brands; bounding the catalog at the same limit keeps
		// the format trivially safe.
		return nil, fmt.Errorf("candidx: brand catalog too large (%d > %d)", len(list), math.MaxUint16)
	}

	an := newAnalyzer(table)
	keyed := make(map[string][]uint32)
	addKey := func(key []byte, id uint32) {
		k := string(key)
		ids := keyed[k]
		if len(ids) > 0 && ids[len(ids)-1] == id {
			return
		}
		keyed[k] = append(ids, id)
	}
	pairSet := make(map[[3]uint8]struct{})
	hardSet := make(map[uint32]struct{})

	keyBuf := make([]byte, 0, MaxKeyLen)
	keySkel := make([]byte, 0, MaxKeyLen)
	for id := 0; id < len(list); id++ {
		label := list[id].Label()
		skel := foldSkeleton(table, label)
		if skel == nil || len(skel) > MaxKeyLen {
			// Unfoldable or oversized label: not expressible in key
			// space, so the brand is rescored on every lookup.
			hardSet[uint32(id)] = struct{}{}
			continue
		}
		m := len(skel)
		// The analysis works on the raw skeleton (the actual glyphs the
		// brand renders); keys use the index fold classes, which absorb
		// the ultra-cheap cross-base confusions the analysis would
		// otherwise have to price.
		ba := an.analyze(skel, thr)
		budget := ba.budget * marginFactor
		keySkel = keySkel[:0]
		for _, b := range skel {
			keySkel = append(keySkel, an.classOf(b))
		}

		addKey(keySkel, uint32(id))
		for i := 0; i < m; i++ {
			keyBuf = append(keyBuf[:0], keySkel...)
			keyBuf[i] = HoleByte
			addKey(keyBuf, uint32(id))
		}
		for i := 0; i < m-1; i++ {
			for j := i + 1; j < m; j++ {
				if pairCost(ba.minOff, i, j) > budget {
					continue
				}
				keyBuf = append(keyBuf[:0], keySkel...)
				keyBuf[i], keyBuf[j] = HoleByte, HoleByte
				addKey(keyBuf, uint32(id))
				pairSet[[3]uint8{uint8(m), uint8(i), uint8(j)}] = struct{}{}
			}
		}

		// Padded class: label one rune shorter than the brand. The blank
		// last cell costs ba.blank on top of any substitutions.
		if m >= 2 && ba.blank >= 0 && ba.blank <= budget {
			addKey(keySkel[:m-1], uint32(id))
			for i := 0; i < m-1; i++ {
				cost := ba.blank + ba.minOff[i]
				if i == m-2 {
					cost *= adjFactor
				}
				if cost > budget {
					continue
				}
				keyBuf = append(keyBuf[:0], keySkel[:m-1]...)
				keyBuf[i] = HoleByte
				addKey(keyBuf, uint32(id))
			}
		}

		if hardBrand(ba, budget) {
			hardSet[uint32(id)] = struct{}{}
		}
	}

	data := serialize(list, thr, table.Fingerprint(), an.foldTable(), keyed, pairSet, hardSet)
	ix, err := load(data, table)
	if err != nil {
		return nil, fmt.Errorf("candidx: self-validation failed: %w", err)
	}
	return ix, nil
}

// foldSkeleton folds a brand label into its pure-ASCII skeleton, or nil
// when a rune does not fold.
func foldSkeleton(table *simchar.Table, label string) []byte {
	out := make([]byte, 0, len(label))
	for _, r := range label {
		b, ok := table.Fold(r)
		if !ok {
			return nil
		}
		out = append(out, b)
	}
	return out
}

// comboCost lower-bounds the joint raw deficit of penalty items at
// ascending positions: items two or more cells apart add exactly
// (disjoint window bands), and each run of consecutive positions is
// discounted once by adjFactor.
func comboCost(pos []int, cost []float64) float64 {
	total := 0.0
	for i := 0; i < len(pos); {
		j := i + 1
		run := cost[i]
		for j < len(pos) && pos[j] == pos[j-1]+1 {
			run += cost[j]
			j++
		}
		if j-i > 1 {
			run *= adjFactor
		}
		total += run
		i = j
	}
	return total
}

// pairCost is the conservative combined penalty of off-class
// substitutions at positions i < j.
func pairCost(minOff []float64, i, j int) float64 {
	c := minOff[i] + minOff[j]
	if j == i+1 {
		c *= adjFactor
	}
	return c
}

// hardBrand reports whether three simultaneous substitutions (or the
// padded comparison plus two) could fit the budget, in which case no
// bounded key set covers the brand and it must always be rescored.
func hardBrand(ba brandAnalysis, budget float64) bool {
	m := len(ba.minOff)
	if m < 3 {
		return false
	}
	// Order positions by penalty and evaluate exact (adjacency-aware)
	// triple costs over the cheapest few — a triple that beats them
	// would need an adjacency discount its members' penalties cannot
	// offset.
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if ba.minOff[idx[a]] != ba.minOff[idx[b]] {
			return ba.minOff[idx[a]] < ba.minOff[idx[b]]
		}
		return idx[a] < idx[b]
	})
	k := len(idx)
	if k > 12 {
		k = 12
	}
	for a := 0; a < k-2; a++ {
		for b := a + 1; b < k-1; b++ {
			for c := b + 1; c < k; c++ {
				if tripleCost(ba.minOff, idx[a], idx[b], idx[c]) <= budget {
					return true
				}
			}
		}
	}
	// Padded comparison plus two substitutions (the blank last cell is a
	// penalty item at position m-1).
	if ba.blank >= 0 && m >= 3 {
		lim := 0
		for _, i := range idx {
			if i < m-1 {
				idx[lim] = i
				lim++
			}
		}
		if lim > 8 {
			lim = 8
		}
		for a := 0; a < lim-1; a++ {
			for b := a + 1; b < lim; b++ {
				i, j := idx[a], idx[b]
				if i > j {
					i, j = j, i
				}
				if comboCost([]int{i, j, m - 1},
					[]float64{ba.minOff[i], ba.minOff[j], ba.blank}) <= budget {
					return true
				}
			}
		}
	}
	return false
}

// tripleCost is comboCost over three sorted positions.
func tripleCost(minOff []float64, a, b, c int) float64 {
	x, y, z := a, b, c
	if x > y {
		x, y = y, x
	}
	if y > z {
		y, z = z, y
	}
	if x > y {
		x, y = y, x
	}
	return comboCost([]int{x, y, z}, []float64{minOff[x], minOff[y], minOff[z]})
}

// serialize lays out the index image per the format comment in format.go.
func serialize(list []brands.Brand, thr float64, fp uint64, foldMap []byte,
	keyed map[string][]uint32, pairSet map[[3]uint8]struct{},
	hardSet map[uint32]struct{}) []byte {

	keys := make([]string, 0, len(keyed))
	for k := range keyed {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	hard := make([]uint32, 0, len(hardSet))
	for id := range hardSet {
		hard = append(hard, id)
	}
	sort.Slice(hard, func(i, j int) bool { return hard[i] < hard[j] })

	pairs := make([][3]uint8, 0, len(pairSet))
	for p := range pairSet {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		a, b := pairs[i], pairs[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})

	// Blobs.
	var brandsBlob []byte
	for _, b := range list {
		var u16 [2]byte
		binary.LittleEndian.PutUint16(u16[:], uint16(len(b.Domain)))
		brandsBlob = append(brandsBlob, u16[:]...)
		brandsBlob = append(brandsBlob, b.Domain...)
		var u32 [4]byte
		binary.LittleEndian.PutUint32(u32[:], uint32(b.Rank))
		brandsBlob = append(brandsBlob, u32[:]...)
	}

	var keysBlob, entriesBlob []byte
	keyOff := make([]uint32, len(keys))
	entOff := make([]uint32, len(keys))
	for i, k := range keys {
		keyOff[i] = uint32(len(keysBlob))
		keysBlob = append(keysBlob, byte(len(k)))
		keysBlob = append(keysBlob, k...)

		ids := keyed[k]
		entOff[i] = uint32(len(entriesBlob))
		var u16 [2]byte
		binary.LittleEndian.PutUint16(u16[:], uint16(len(ids)))
		entriesBlob = append(entriesBlob, u16[:]...)
		var u32 [4]byte
		for _, id := range ids {
			binary.LittleEndian.PutUint32(u32[:], id)
			entriesBlob = append(entriesBlob, u32[:]...)
		}
	}

	slotCount := uint32(2)
	for slotCount < uint32(len(keys))*2 {
		slotCount <<= 1
	}
	slots := make([]byte, slotCount*8)
	mask := slotCount - 1
	for i, k := range keys {
		h := uint32(simchar.HashBytes(0, []byte(k)))
		for {
			s := h & mask
			if binary.LittleEndian.Uint32(slots[s*8:]) == 0 {
				binary.LittleEndian.PutUint32(slots[s*8:], keyOff[i]+1)
				binary.LittleEndian.PutUint32(slots[s*8+4:], entOff[i])
				break
			}
			h++
		}
	}

	total := headerSize + len(foldMap) + len(brandsBlob) + len(hard)*4 + len(pairs)*3 +
		len(slots) + len(keysBlob) + len(entriesBlob) + 8
	data := make([]byte, 0, total)
	var hdr [headerSize]byte
	copy(hdr[:8], magic)
	binary.LittleEndian.PutUint64(hdr[8:], fp)
	binary.LittleEndian.PutUint64(hdr[16:], math.Float64bits(thr))
	binary.LittleEndian.PutUint32(hdr[24:], uint32(len(list)))
	binary.LittleEndian.PutUint32(hdr[28:], slotCount)
	binary.LittleEndian.PutUint32(hdr[32:], uint32(len(hard)))
	binary.LittleEndian.PutUint32(hdr[36:], uint32(len(pairs)))
	binary.LittleEndian.PutUint32(hdr[40:], uint32(len(brandsBlob)))
	binary.LittleEndian.PutUint32(hdr[44:], uint32(len(keysBlob)))
	binary.LittleEndian.PutUint32(hdr[48:], uint32(len(entriesBlob)))
	binary.LittleEndian.PutUint32(hdr[52:], uint32(len(foldMap)))
	data = append(data, hdr[:]...)
	data = append(data, foldMap...)
	data = append(data, brandsBlob...)
	var u32 [4]byte
	for _, id := range hard {
		binary.LittleEndian.PutUint32(u32[:], id)
		data = append(data, u32[:]...)
	}
	for _, p := range pairs {
		data = append(data, p[0], p[1], p[2])
	}
	data = append(data, slots...)
	data = append(data, keysBlob...)
	data = append(data, entriesBlob...)
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], simchar.HashBytes(0, data))
	data = append(data, sum[:]...)
	return data
}
