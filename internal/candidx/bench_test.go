package candidx

import (
	"testing"

	"idnlab/internal/brands"
	"idnlab/internal/simrand"
)

// benchBrands deterministically generates n ASCII LDH brand labels at the
// catalog scale the index is specified for.
func benchBrands(n int) []brands.Brand {
	const letters = "abcdefghijklmnopqrstuvwxyz0123456789"
	src := simrand.New(0xB_E4C4)
	list := make([]brands.Brand, 0, n)
	for i := 0; i < n; i++ {
		m := 4 + src.Intn(14)
		label := make([]byte, m)
		for j := range label {
			label[j] = letters[src.Intn(len(letters))]
		}
		list = append(list, brands.Brand{Domain: string(label) + ".com", Rank: i + 1})
	}
	return list
}

// benchLabels derives a lookup corpus spanning the probe classes: exact
// brand labels, single- and double-unfoldable homograph shapes, length
// edits, and clean misses.
func benchLabels(list []brands.Brand, n int) []string {
	src := simrand.New(0x100C09)
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		runes := []rune(list[src.Intn(len(list))].Label())
		switch src.Intn(5) {
		case 0: // exact
		case 1: // one unfoldable substitution
			runes[src.Intn(len(runes))] = 'ä'
		case 2: // two unfoldable substitutions
			runes[src.Intn(len(runes))] = 'ö'
			runes[src.Intn(len(runes))] = 'а'
		case 3: // length edit
			runes = append(runes, 'ő')
		case 4: // ASCII near-miss
			runes[src.Intn(len(runes))] = rune('a' + src.Intn(26))
		}
		out = append(out, string(runes))
	}
	return out
}

// BenchmarkIndexLookup measures steady-state Candidates over a 10k-brand
// index with a mixed probe corpus. Gated in CI (`make bench-index`) at
// 0 allocs/op and >= 100k lookups/s.
func BenchmarkIndexLookup(b *testing.B) {
	ix, err := Build(benchBrands(10000), BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	labels := benchLabels(ix.Brands(), 512)
	var p Probe
	var bytes int64
	for _, l := range labels { // warm the probe scratch to its high-water size
		ix.Candidates(l, &p)
		bytes += int64(len(l))
	}
	b.SetBytes(bytes / int64(len(labels)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Candidates(labels[i%len(labels)], &p)
	}
}

// BenchmarkIndexBuild tracks the offline build cost at 1/10 catalog scale
// (informational; the offline path is not latency-gated).
func BenchmarkIndexBuild(b *testing.B) {
	list := benchBrands(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(list, BuildOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
