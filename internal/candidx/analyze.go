package candidx

import (
	"math"
	"sort"

	"idnlab/internal/glyph"
	"idnlab/internal/simchar"
	"idnlab/internal/ssim"
)

// The build-time analysis answers one question per brand position: how
// much SSIM score must any off-family substitution at this position cost?
// ("Off-family" = a rune whose skeleton fold differs from the brand's
// base there — exactly the substitutions the skeleton key cannot absorb,
// which therefore need wildcard keys to stay reachable.) Positions whose
// minimum penalties are large bound how many simultaneous off-family
// substitutions can keep a label above the detection threshold, which in
// turn bounds how many wildcard ("hole") keys the brand needs: one hole
// per position always, two-hole keys only for cheap position pairs, and a
// brand goes on the always-rescan hard list in the (rare) case three
// substitutions could fit the budget.
//
// The penalty of a substitution depends only on the cells a shared SSIM
// window can see. With CellWidth 6 and window 8, a window overlapping
// cell i reaches at most columns 6i-7..6i+11; column 6i-7 is the spacing
// column of cell i-2 (always blank), so only cells i-1, i, i+1 influence
// the affected windows. Penalties are therefore cached per
// (prev, cur, next, edge-class) trigram and replayed across brands, with
// the four edge classes capturing how the window band clamps at the
// image borders (i = 0, i = 1, i = m-1, interior).

// minSubSSIM floors the per-cell similarity of substitutions considered
// by the analysis: runes scoring below it against a base render so
// differently that their windows bottom out far beyond any budget, so
// they cannot define a position's minimum penalty.
const minSubSSIM = -1.0 // keep the full repertoire; the scan is cached

// edge classes of a position within an m-cell image.
const (
	edgeFirst  = 0 // i == 0
	edgeSecond = 1 // i == 1 (left window band clamps at the border)
	edgeLast   = 2 // i == m-1 (right band clamps)
	edgeInner  = 3
)

// edgeClassOf maps position i of an m-cell label to its band-geometry
// class. Only valid for m >= 5, where the classes are geometrically
// exact; shorter labels bypass the cache.
func edgeClassOf(i, m int) uint8 {
	switch {
	case i == 0:
		return edgeFirst
	case i == m-1:
		return edgeLast
	case i == 1:
		return edgeSecond
	default:
		return edgeInner
	}
}

// windowCount is the number of SSIM window positions over an m-cell
// render (width 6m, height CellHeight, window 8, degrading like the
// kernel when the image is narrower than the window).
func windowCount(m int) int {
	w, h := m*glyph.CellWidth, glyph.CellHeight
	win := ssim.DefaultWindow
	if w < win {
		win = w
	}
	if h < win {
		win = h
	}
	return (w - win + 1) * (h - win + 1)
}

// triKey identifies one cached penalty context: the base at the position,
// its rendered neighbors (0 = image border) and the band's edge class.
type triKey struct {
	prev, cur, next byte
	edge            uint8
}

// analyzer computes per-position minimum off-family penalties. It owns
// its renderer/comparator pair and is single-goroutine.
type analyzer struct {
	table *simchar.Table
	re    *glyph.Renderer
	cmp   *ssim.Comparator
	geo   *GeomCache

	// rep is the substitution repertoire: every designed code point plus
	// the ASCII bases themselves (a label may use a plain ASCII letter
	// that mismatches the brand), in deterministic order.
	rep []rune
	// foldOf caches the fold of each repertoire rune (0 = unfoldable).
	foldOf map[rune]byte

	// tri caches the minimum raw off-family deficit per context. Raw
	// deficits are sums of (1 - windowStat) over affected windows; they
	// are geometry-local, so a value computed in a canonical small render
	// is exact for every brand sharing the trigram.
	tri map[triKey]float64
	// blank caches the raw deficit of erasing the last cell, keyed by
	// (prev, cur) — the padded-comparison (length-minus-one) class.
	blank map[[2]byte]float64

	// ixFold maps every base byte to its index fold class representative
	// (identity for bytes outside the base alphabet). See deriveIxFold.
	ixFold [256]byte
}

func newAnalyzer(table *simchar.Table) *analyzer {
	re := glyph.NewRenderer()
	a := &analyzer{
		table:  table,
		re:     re,
		cmp:    ssim.New(ssim.DefaultWindow),
		geo:    NewGeomCache(re),
		foldOf: make(map[rune]byte),
		tri:    make(map[triKey]float64),
		blank:  make(map[[2]byte]float64),
	}
	rep := glyph.Composed()
	sort.Slice(rep, func(i, j int) bool { return rep[i] < rep[j] })
	for i := 0; i < len(simchar.Bases); i++ {
		a.rep = append(a.rep, rune(simchar.Bases[i]))
	}
	for _, r := range rep {
		if r >= 0x80 {
			a.rep = append(a.rep, r)
		}
	}
	for _, r := range a.rep {
		if b, ok := table.Fold(r); ok {
			a.foldOf[r] = b
		}
	}
	a.deriveIxFold()
	return a
}

// mergeRaw is the index fold-class merge threshold: base pairs whose
// cheapest cross-substitution costs less than this raw deficit at any
// interior or near-edge position render so alike that treating them as
// distinct would let three-substitution matches fit long brands'
// budgets — which would push most of a large catalog onto the
// always-rescan hard list and destroy the O(1) lookup. Folding such
// pairs into one class absorbs their substitutions into the exact
// skeleton key instead; merging is always completeness-safe (it can only
// widen a key's candidate set, and every candidate is rescored), it just
// trades a few false-positive rescores for a bounded key count.
//
// The first-position context is deliberately excluded from the merge
// criterion: the left border clamp makes nearly every substitution cheap
// there, so folding on it would chain the whole alphabet into one class.
// First-position cheapness is instead priced per brand by the analyzer
// (minOff[0]) and covered by ordinary single-hole and pair keys. After
// the transitive closure, every remaining cross-class substitution costs
// at least mergeRaw at every position except the first.
const mergeRaw = 4.5

// deriveIxFold measures every cross-base substitution deficit in the
// canonical context of each non-first edge class and merges pairs
// cheaper than mergeRaw into one class (union-find, smallest byte as
// representative).
func (a *analyzer) deriveIxFold() {
	for i := range a.ixFold {
		a.ixFold[i] = byte(i)
	}
	nb := len(simchar.Bases)
	baseRunes := make([]rune, nb)
	baseIdx := make(map[rune]int, nb)
	for i := 0; i < nb; i++ {
		baseRunes[i] = rune(simchar.Bases[i])
		baseIdx[baseRunes[i]] = i
	}
	// cost[i][j]: minimum (over edge classes) raw deficit of rendering
	// base j's glyph in a cell holding base i.
	cost := make([][]float64, nb)
	for i := range cost {
		cost[i] = make([]float64, nb)
		for j := range cost[i] {
			cost[i][j] = math.Inf(1)
		}
	}
	for i := 0; i < nb; i++ {
		cur := baseRunes[i]
		contexts := []struct {
			s   []rune
			pos int
		}{
			{[]rune{'o', cur, 'o', 'o', 'o'}, 1},
			{[]rune{'o', 'o', cur, 'o', 'o'}, 2},
			{[]rune{'o', 'o', 'o', cur}, 3},
		}
		for _, ctx := range contexts {
			m := len(ctx.s)
			rt := ssim.Precompute(a.re.RenderWidth(string(ctx.s), m*glyph.CellWidth))
			n := float64(windowCount(m))
			cellX := ctx.pos * glyph.CellWidth
			for _, g := range a.geo.Of(cur, baseRunes) {
				j := baseIdx[g.R]
				if j == i || g.DX0 == g.DX1 {
					continue
				}
				score, err := a.cmp.IndexRefSubPatch(rt,
					cellX+g.DX0, cellX+g.DX1, g.DY0, g.DY1, g.Patch)
				if err != nil {
					continue
				}
				if raw := (1 - score) * n; raw < cost[i][j] {
					cost[i][j] = raw
				}
			}
		}
	}
	// Union-find over bases; deterministic scan order.
	find := func(b byte) byte {
		for a.ixFold[b] != b {
			b = a.ixFold[b]
		}
		return b
	}
	for i := 0; i < nb; i++ {
		for j := i + 1; j < nb; j++ {
			if cost[i][j] >= mergeRaw && cost[j][i] >= mergeRaw {
				continue
			}
			ri, rj := find(simchar.Bases[i]), find(simchar.Bases[j])
			if ri == rj {
				continue
			}
			if ri > rj {
				ri, rj = rj, ri
			}
			a.ixFold[rj] = ri
		}
	}
	// Flatten to direct class-representative lookups.
	for i := 0; i < nb; i++ {
		b := simchar.Bases[i]
		a.ixFold[b] = find(b)
	}
}

// classOf returns the index fold class of a base byte (0 stays 0, the
// unfoldable sentinel).
func (a *analyzer) classOf(b byte) byte { return a.ixFold[b] }

// foldTable returns the serializable base-to-class map, indexed like
// simchar.Bases.
func (a *analyzer) foldTable() []byte {
	out := make([]byte, len(simchar.Bases))
	for i := 0; i < len(simchar.Bases); i++ {
		out[i] = a.ixFold[simchar.Bases[i]]
	}
	return out
}

// minOffRaw returns the minimum raw deficit of any off-family repertoire
// substitution at a position with the given context, using the trigram
// cache. prev/next are 0 at image borders.
func (a *analyzer) minOffRaw(prev, cur, next byte, edge uint8) float64 {
	k := triKey{prev, cur, next, edge}
	if v, ok := a.tri[k]; ok {
		return v
	}
	// Canonical renders reproducing the band geometry of each edge class
	// exactly (see edge-class derivation above): padding cells are far
	// enough from the band that they only contribute bit-identical
	// windows, which cancel out of the raw deficit.
	var s []rune
	var pos int
	switch edge {
	case edgeFirst:
		s, pos = []rune{rune(cur), pad(next), 'o', 'o', 'o'}, 0
	case edgeSecond:
		s, pos = []rune{pad(prev), rune(cur), pad(next), 'o', 'o'}, 1
	case edgeLast:
		s, pos = []rune{'o', 'o', pad(prev), rune(cur)}, 3
	default:
		s, pos = []rune{'o', pad(prev), rune(cur), pad(next), 'o'}, 2
	}
	v := a.minOffRawAt(string(s), pos, cur, len(s))
	a.tri[k] = v
	return v
}

// pad maps a border sentinel to a renderable filler; border cells are
// outside the affected band, so the filler never influences the result,
// but the canonical string must still be well-formed.
func pad(b byte) rune {
	if b == 0 {
		return 'o'
	}
	return rune(b)
}

// minOffRawAt renders s, then measures every off-family substitution of
// the repertoire at cell pos (whose base is cur) and returns the minimum
// raw deficit. m is the cell count of s.
func (a *analyzer) minOffRawAt(s string, pos int, cur byte, m int) float64 {
	rt := ssim.Precompute(a.re.RenderWidth(s, m*glyph.CellWidth))
	n := float64(windowCount(m))
	cellX := pos * glyph.CellWidth
	best := n // upper bound: every window zeroed
	for _, g := range a.geo.Of(rune(cur), a.rep) {
		if a.ixFold[a.foldOf[g.R]] == a.ixFold[cur] && a.foldOf[g.R] != 0 {
			continue // same index fold class: absorbed by the skeleton key
		}
		if g.DX0 == g.DX1 {
			// Pixel-identical to cur yet off-family would mean a free
			// substitution; the base bitmaps are distinct (pinned by
			// tests), so this only happens for cur itself.
			continue
		}
		score, err := a.cmp.IndexRefSubPatch(rt,
			cellX+g.DX0, cellX+g.DX1, g.DY0, g.DY1, g.Patch)
		if err != nil {
			continue
		}
		if raw := (1 - score) * n; raw < best {
			best = raw
		}
	}
	return best
}

// blankRaw returns the raw deficit of rendering the last cell (base cur,
// preceded by prev) as background — the cost floor of comparing a label
// one rune shorter than the brand.
func (a *analyzer) blankRaw(prev, cur byte) float64 {
	k := [2]byte{prev, cur}
	if v, ok := a.blank[k]; ok {
		return v
	}
	s := []rune{'o', 'o', pad(prev), rune(cur)}
	m := len(s)
	rt := ssim.Precompute(a.re.RenderWidth(string(s), m*glyph.CellWidth))
	n := float64(windowCount(m))
	g := BlankGeom(a.re, rune(cur))
	v := 0.0
	if g.DX0 != g.DX1 {
		cellX := 3 * glyph.CellWidth
		score, err := a.cmp.IndexRefSubPatch(rt,
			cellX+g.DX0, cellX+g.DX1, g.DY0, g.DY1, g.Patch)
		if err == nil {
			v = (1 - score) * n
		}
	}
	a.blank[k] = v
	return v
}

// brandAnalysis is the per-brand output of the analyzer.
type brandAnalysis struct {
	// minOff[i] is the minimum raw deficit of an off-family substitution
	// at position i.
	minOff []float64
	// blank is the raw deficit of the padded comparison (label one rune
	// shorter); <0 when the brand is a single cell (no padded class).
	blank float64
	// budget is the raw deficit budget (1-threshold scaled by the
	// window count of the brand's render).
	budget float64
}

// analyze computes the penalty profile of one brand skeleton (pure ASCII
// LDH bases, one byte per cell).
func (a *analyzer) analyze(skel []byte, threshold float64) brandAnalysis {
	m := len(skel)
	ba := brandAnalysis{
		minOff: make([]float64, m),
		blank:  -1,
		budget: (1 - threshold) * float64(windowCount(m)),
	}
	if m >= 5 {
		for i := 0; i < m; i++ {
			var prev, next byte
			if i > 0 {
				prev = skel[i-1]
			}
			if i < m-1 {
				next = skel[i+1]
			}
			ba.minOff[i] = a.minOffRaw(prev, skel[i], next, edgeClassOf(i, m))
		}
	} else {
		// Short labels: band clamping depends on the exact length, so
		// measure in place instead of through the canonical cache.
		rt := string(skel)
		for i := 0; i < m; i++ {
			ba.minOff[i] = a.minOffRawAt(rt, i, skel[i], m)
		}
	}
	if m >= 2 {
		ba.blank = a.blankRaw(skel[m-2], skel[m-1])
	}
	return ba
}
