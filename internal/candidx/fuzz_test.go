package candidx

import (
	"bytes"
	"testing"

	"idnlab/internal/brands"
)

// fuzzIndexBytes builds a small but structurally complete index (exact,
// hole, pair, D and hard keys all populated) for the fuzz seeds.
func fuzzIndexBytes(f *testing.F) []byte {
	f.Helper()
	ix, err := Build(brands.TopK(64), BuildOptions{})
	if err != nil {
		f.Fatal(err)
	}
	return ix.Bytes()
}

// FuzzIndexRoundTrip throws arbitrary and corrupted bytes at the decoder:
// Load must never panic or over-read, must return a clean error on
// anything malformed, and any blob it does accept must round-trip
// byte-identically and survive a lookup over every brand it indexes.
func FuzzIndexRoundTrip(f *testing.F) {
	valid := fuzzIndexBytes(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("IDNCIDX1"))
	f.Add(valid[:len(valid)/2])
	truncHeader := append([]byte(nil), valid[:headerSize]...)
	f.Add(truncHeader)
	flipped := append([]byte(nil), valid...)
	flipped[headerSize+3] ^= 0x40
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := Load(data)
		if err != nil {
			return
		}
		if !bytes.Equal(ix.Bytes(), data) {
			t.Fatal("accepted blob does not round-trip byte-identically")
		}
		var p Probe
		for id, b := range ix.Brands() {
			ids := ix.Candidates(b.Label(), &p)
			for i, got := range ids {
				if int(got) >= len(ix.Brands()) {
					t.Fatalf("candidate id %d out of range", got)
				}
				if i > 0 && ids[i-1] >= got {
					t.Fatalf("candidates not strictly ascending: %v", ids)
				}
			}
			if !containsID(ids, uint32(id)) {
				t.Fatalf("brand %d (%s) cannot find itself", id, b.Domain)
			}
		}
	})
}

// FuzzIndexLookup drives Candidates with arbitrary label strings over a
// real index: no panics, strictly ascending in-range IDs, and the lookup
// is a fixed point — repeating it with the same probe returns the same
// candidate set (the epoch-dedup scratch must fully reset between calls).
func FuzzIndexLookup(f *testing.F) {
	ix, err := Load(fuzzIndexBytes(f))
	if err != nil {
		f.Fatal(err)
	}
	f.Add("example")
	f.Add("examp1e")
	f.Add("exam日ple")
	f.Add("")
	f.Add("ааааааааа")       // Cyrillic
	f.Add("\xff\xfe\x00bad") // invalid UTF-8
	f.Add("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa")
	f.Fuzz(func(t *testing.T, label string) {
		var p Probe
		first := append([]uint32(nil), ix.Candidates(label, &p)...)
		for i, id := range first {
			if int(id) >= len(ix.Brands()) {
				t.Fatalf("candidate id %d out of range", id)
			}
			if i > 0 && first[i-1] >= id {
				t.Fatalf("candidates not strictly ascending: %v", first)
			}
		}
		second := ix.Candidates(label, &p)
		if len(first) != len(second) {
			t.Fatalf("lookup not a fixed point: %d then %d candidates", len(first), len(second))
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("lookup not a fixed point: %v then %v", first, second)
			}
		}
	})
}

func containsID(ids []uint32, want uint32) bool {
	for _, id := range ids {
		if id == want {
			return true
		}
	}
	return false
}
