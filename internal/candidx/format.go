package candidx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"sync/atomic"

	"idnlab/internal/brands"
	"idnlab/internal/simchar"
)

// Index file format (version 1), all fields little-endian:
//
//	offset size
//	0      8    magic "IDNCIDX1"
//	8      8    simchar derivation fingerprint
//	16     8    detection threshold (float64 bits)
//	24     4    brandCount
//	28     4    slotCount (power of two)
//	32     4    hardCount
//	36     4    pairCount
//	40     4    brandsLen
//	44     4    keysLen
//	48     4    entriesLen
//	52     4    foldLen (= len(simchar.Bases))
//	56     …    fold map         (foldLen bytes)
//	…      …    brands blob      (brandsLen bytes)
//	…      …    hard list        (hardCount × 4)
//	…      …    pair registry    (pairCount × 3: keyLen, i, j)
//	…      …    slot table       (slotCount × 8: keyRef, entOff)
//	…      …    keys blob        (keysLen bytes)
//	…      …    entries blob     (entriesLen bytes)
//	end-8  8    FNV-1a checksum over every preceding byte
//
// Fold map: one byte per simchar base (in simchar.Bases order) giving
// the base's index fold class representative — bases whose glyphs are so
// alike that the builder collapsed them into one skeleton symbol. The
// map must be idempotent (a representative maps to itself) and is
// applied identically at build and lookup time, so it travels with the
// file. Brands blob: brandCount records of (u16 domainLen, domain bytes,
// u32 rank). Keys blob: records of (u8 keyLen, key bytes); keys are
// brand-label skeletons over the fold-class alphabet with up to two
// positions replaced by the hole byte 0xFF (never a valid UTF-8 or
// skeleton byte). Entries blob: records of (u16 count, count × u32
// ascending brand IDs). A slot's keyRef is the key record offset plus
// one (zero marks an empty slot); entOff is the entry record offset.
//
// The checksum, magic and section bounds are all verified at load; the
// loaded index reads straight out of the (immutable) byte slice with no
// deserialization pass over keys or entries.

const (
	magic      = "IDNCIDX1"
	headerSize = 56
	// HoleByte is the wildcard byte in index keys. It is not a valid
	// UTF-8 byte, so no label skeleton can contain it.
	HoleByte = 0xFF
	// MaxKeyLen bounds key length (DNS labels are at most 63 octets, so
	// no skeleton exceeds 63 cells).
	MaxKeyLen = 63
)

// Load errors. Decoding never panics on hostile input; every malformed
// region maps to one of these.
var (
	ErrMagic       = errors.New("candidx: bad magic or version")
	ErrTruncated   = errors.New("candidx: truncated index")
	ErrChecksum    = errors.New("candidx: checksum mismatch")
	ErrCorrupt     = errors.New("candidx: structurally invalid index")
	ErrFingerprint = errors.New("candidx: index derived from a different glyph design")
)

// Index is a loaded (or freshly built) candidate index. All exported
// methods are safe for concurrent use; the hit counters are atomic.
type Index struct {
	data    []byte // full serialized image (including checksum)
	slots   []byte
	keys    []byte
	entries []byte
	mask    uint32

	brandList  []brands.Brand
	brandLens  []int // rune count of each brand label
	hard       []uint32
	pairsByLen [][][2]uint8 // indexed by key length
	ixFold     [256]byte    // base byte -> fold class (identity elsewhere)

	fingerprint uint64
	threshold   float64
	table       *simchar.Table

	lookups atomic.Uint64
	hits    atomic.Uint64
}

// Bytes returns the serialized index image. The slice is the live
// backing store; callers must not modify it.
func (ix *Index) Bytes() []byte { return ix.data }

// Brands returns the brand catalog the index was compiled from, in brand
// ID order. The slice is shared and must not be modified.
func (ix *Index) Brands() []brands.Brand { return ix.brandList }

// Threshold returns the detection threshold the index was compiled for.
func (ix *Index) Threshold() float64 { return ix.threshold }

// Fingerprint returns the simchar derivation fingerprint embedded at
// build time.
func (ix *Index) Fingerprint() uint64 { return ix.fingerprint }

// Hard returns the brand IDs on the always-rescore hard list.
func (ix *Index) Hard() []uint32 { return ix.hard }

// Stats returns the cumulative lookup and hit counters (a hit is a
// lookup that produced at least one candidate).
func (ix *Index) Stats() (lookups, hits uint64) {
	return ix.lookups.Load(), ix.hits.Load()
}

// KeyCount returns the number of distinct keys in the index.
func (ix *Index) KeyCount() int {
	n := 0
	for off := 0; off < len(ix.keys); {
		n++
		off += 1 + int(ix.keys[off])
	}
	return n
}

// FoldClasses returns the index's merged fold classes: each group lists
// the base bytes the builder collapsed into one skeleton symbol (first
// element is the representative). Singleton classes are omitted.
func (ix *Index) FoldClasses() [][]byte {
	groups := make(map[byte][]byte)
	for _, r := range simchar.Bases {
		b := byte(r)
		rep := ix.ixFold[b]
		groups[rep] = append(groups[rep], b)
	}
	var out [][]byte
	for _, r := range simchar.Bases {
		b := byte(r)
		if g, ok := groups[b]; ok && len(g) > 1 {
			out = append(out, g)
		}
	}
	return out
}

// Load parses a serialized index. The data slice is retained and read
// zero-copy; it must not be modified afterwards. Load verifies the
// checksum, every section bound, and that the embedded derivation
// fingerprint matches the running simchar table — an index built against
// a different glyph design is rejected rather than silently misused.
func Load(data []byte) (*Index, error) {
	return load(data, simchar.Default())
}

// load is Load with an explicit table (tests exercise fingerprint
// mismatches without forging files).
func load(data []byte, table *simchar.Table) (*Index, error) {
	if len(data) < headerSize+8 {
		return nil, ErrTruncated
	}
	if string(data[:8]) != magic {
		return nil, ErrMagic
	}
	want := binary.LittleEndian.Uint64(data[len(data)-8:])
	if simchar.HashBytes(0, data[:len(data)-8]) != want {
		return nil, ErrChecksum
	}
	fp := binary.LittleEndian.Uint64(data[8:])
	thr := math.Float64frombits(binary.LittleEndian.Uint64(data[16:]))
	brandCount := binary.LittleEndian.Uint32(data[24:])
	slotCount := binary.LittleEndian.Uint32(data[28:])
	hardCount := binary.LittleEndian.Uint32(data[32:])
	pairCount := binary.LittleEndian.Uint32(data[36:])
	brandsLen := binary.LittleEndian.Uint32(data[40:])
	keysLen := binary.LittleEndian.Uint32(data[44:])
	entriesLen := binary.LittleEndian.Uint32(data[48:])
	foldLen := binary.LittleEndian.Uint32(data[52:])

	if slotCount == 0 || slotCount&(slotCount-1) != 0 {
		return nil, ErrCorrupt
	}
	if !(thr > 0 && thr <= 1) { // also rejects NaN
		return nil, ErrCorrupt
	}
	if int(foldLen) != len(simchar.Bases) {
		return nil, ErrCorrupt
	}
	// Section bounds, computed without overflow: every count is u32 and
	// multiplied into an int64 domain before comparison.
	need := int64(headerSize) + int64(foldLen) + int64(brandsLen) + int64(hardCount)*4 +
		int64(pairCount)*3 + int64(slotCount)*8 + int64(keysLen) +
		int64(entriesLen) + 8
	if int64(len(data)) != need {
		return nil, ErrTruncated
	}

	ix := &Index{
		data:        data,
		mask:        slotCount - 1,
		fingerprint: fp,
		threshold:   thr,
		table:       table,
	}

	off := headerSize
	foldBlob := data[off : off+int(foldLen)]
	off += int(foldLen)
	// Fold map: every target must itself be a base, and the map must be
	// idempotent (class representatives map to themselves).
	for i := range ix.ixFold {
		ix.ixFold[i] = byte(i)
	}
	for i := 0; i < len(simchar.Bases); i++ {
		if !isBase(foldBlob[i]) {
			return nil, ErrCorrupt
		}
		ix.ixFold[simchar.Bases[i]] = foldBlob[i]
	}
	for i := 0; i < len(simchar.Bases); i++ {
		b := simchar.Bases[i]
		if ix.ixFold[ix.ixFold[b]] != ix.ixFold[b] {
			return nil, ErrCorrupt
		}
	}

	brandsBlob := data[off : off+int(brandsLen)]
	off += int(brandsLen)
	hardBlob := data[off : off+int(hardCount)*4]
	off += int(hardCount) * 4
	pairBlob := data[off : off+int(pairCount)*3]
	off += int(pairCount) * 3
	ix.slots = data[off : off+int(slotCount)*8]
	off += int(slotCount) * 8
	ix.keys = data[off : off+int(keysLen)]
	off += int(keysLen)
	ix.entries = data[off : off+int(entriesLen)]

	// Brands: decoded once into the in-memory catalog.
	ix.brandList = make([]brands.Brand, 0, brandCount)
	ix.brandLens = make([]int, 0, brandCount)
	p := 0
	for i := uint32(0); i < brandCount; i++ {
		if p+2 > len(brandsBlob) {
			return nil, ErrCorrupt
		}
		dl := int(binary.LittleEndian.Uint16(brandsBlob[p:]))
		p += 2
		if p+dl+4 > len(brandsBlob) {
			return nil, ErrCorrupt
		}
		b := brands.Brand{
			Domain: string(brandsBlob[p : p+dl]),
			Rank:   int(binary.LittleEndian.Uint32(brandsBlob[p+dl:])),
		}
		p += dl + 4
		ix.brandList = append(ix.brandList, b)
		ix.brandLens = append(ix.brandLens, runeLen(b.Label()))
	}
	if p != len(brandsBlob) {
		return nil, ErrCorrupt
	}

	// Hard list: in-range ascending brand IDs.
	ix.hard = make([]uint32, hardCount)
	for i := range ix.hard {
		id := binary.LittleEndian.Uint32(hardBlob[i*4:])
		if id >= brandCount || (i > 0 && id <= ix.hard[i-1]) {
			return nil, ErrCorrupt
		}
		ix.hard[i] = id
	}

	// Pair registry, re-keyed by length for the prober.
	ix.pairsByLen = make([][][2]uint8, MaxKeyLen+1)
	for i := uint32(0); i < pairCount; i++ {
		kl, pi, pj := pairBlob[i*3], pairBlob[i*3+1], pairBlob[i*3+2]
		if kl == 0 || kl > MaxKeyLen || pi >= pj || int(pj) >= int(kl) {
			return nil, ErrCorrupt
		}
		ix.pairsByLen[kl] = append(ix.pairsByLen[kl], [2]uint8{pi, pj})
	}

	// Structural validation of the slot table: every non-empty slot must
	// reference an in-bounds, well-formed key and entry record, keys must
	// be unique, and entry IDs in range and ascending. This is a single
	// linear pass; after it, lookups can trust the data blindly.
	seenKeys := 0
	for s := uint32(0); s <= ix.mask; s++ {
		keyRef := binary.LittleEndian.Uint32(ix.slots[s*8:])
		entOff := binary.LittleEndian.Uint32(ix.slots[s*8+4:])
		if keyRef == 0 {
			continue
		}
		ko := int(keyRef - 1)
		if ko >= len(ix.keys) {
			return nil, ErrCorrupt
		}
		kl := int(ix.keys[ko])
		if kl == 0 || kl > MaxKeyLen || ko+1+kl > len(ix.keys) {
			return nil, ErrCorrupt
		}
		eo := int(entOff)
		if eo+2 > len(ix.entries) {
			return nil, ErrCorrupt
		}
		cnt := int(binary.LittleEndian.Uint16(ix.entries[eo:]))
		if cnt == 0 || eo+2+cnt*4 > len(ix.entries) {
			return nil, ErrCorrupt
		}
		prev := int64(-1)
		for j := 0; j < cnt; j++ {
			id := binary.LittleEndian.Uint32(ix.entries[eo+2+j*4:])
			if id >= brandCount || int64(id) <= prev {
				return nil, ErrCorrupt
			}
			prev = int64(id)
		}
		// The key must be findable at its hashed home via linear probing
		// through non-empty slots; since we scan every slot anyway, it is
		// enough to check that probing for this key terminates on it.
		if !ix.probeFinds(ix.keys[ko+1:ko+1+kl], s) {
			return nil, ErrCorrupt
		}
		seenKeys++
	}
	if seenKeys > 0 && len(ix.keys) == 0 {
		return nil, ErrCorrupt
	}

	if table != nil && fp != table.Fingerprint() {
		return nil, ErrFingerprint
	}
	return ix, nil
}

// probeFinds reports whether linear probing for key lands on slot want
// before hitting an empty slot.
func (ix *Index) probeFinds(key []byte, want uint32) bool {
	h := uint32(simchar.HashBytes(0, key))
	for i := uint32(0); i <= ix.mask; i++ {
		s := (h + i) & ix.mask
		keyRef := binary.LittleEndian.Uint32(ix.slots[s*8:])
		if keyRef == 0 {
			return false
		}
		if s == want {
			return true
		}
	}
	return false
}

// LoadFile reads and parses an index file.
func LoadFile(path string) (*Index, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ix, err := Load(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ix, nil
}

// WriteFile serializes the index to path (atomically via a temp file in
// the same directory).
func (ix *Index) WriteFile(path string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, ix.data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// isBase reports whether b is a simchar base byte.
func isBase(b byte) bool {
	for i := 0; i < len(simchar.Bases); i++ {
		if simchar.Bases[i] == b {
			return true
		}
	}
	return false
}

// runeLen is utf8.RuneCountInString without the import knot.
func runeLen(s string) int {
	n := 0
	for range s {
		n++
	}
	return n
}
