package webprobe

import (
	"testing"
	"testing/quick"
)

func TestServeClassifyRoundTrip(t *testing.T) {
	for _, state := range States() {
		for variant := uint64(0); variant < 20; variant++ {
			resp := Serve(state, "xn--0wwy37b.com", variant)
			if got := Classify(resp); got != state {
				t.Errorf("Classify(Serve(%v, variant %d)) = %v", state, variant, got)
			}
		}
	}
}

func TestServeClassifyQuick(t *testing.T) {
	states := States()
	f := func(stateIdx uint8, variant uint64, domainSeed uint8) bool {
		state := states[int(stateIdx)%len(states)]
		domain := "xn--test" + string(rune('a'+domainSeed%26)) + ".com"
		return Classify(Serve(state, domain, variant)) == state
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNotResolvedHasNoContent(t *testing.T) {
	resp := Serve(NotResolved, "a.com", 0)
	if resp.Resolved || resp.StatusCode != 0 || resp.Body != "" {
		t.Errorf("NotResolved response not empty: %+v", resp)
	}
}

func TestParkedCouplesToSharedCertCN(t *testing.T) {
	resp := Serve(Parked, "a.com", 0)
	if resp.ServerCN == "" {
		t.Error("parked page should present a parking-service certificate CN")
	}
	found := false
	for _, svc := range parkingServices {
		if resp.ServerCN == svc {
			found = true
		}
	}
	if !found {
		t.Errorf("ServerCN %q not a parking service", resp.ServerCN)
	}
}

func TestRedirectHasLocation(t *testing.T) {
	resp := Serve(Redirected, "a.com", 1)
	if resp.StatusCode < 300 || resp.StatusCode >= 400 || resp.Location == "" {
		t.Errorf("redirect response wrong: %+v", resp)
	}
}

func TestMeaningfulMentionsDomain(t *testing.T) {
	resp := Serve(Meaningful, "xn--brand.com", 3)
	if resp.StatusCode != 200 {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if got := Classify(resp); got != Meaningful {
		t.Errorf("classified as %v", got)
	}
}

func TestWeightsMatchTableV(t *testing.T) {
	idn := IDNWeights()
	if idn[NotResolved] != 228 || idn[Meaningful] != 99 {
		t.Errorf("IDN weights = %v", idn)
	}
	sum := 0.0
	for _, v := range idn {
		sum += v
	}
	if sum != 500 {
		t.Errorf("IDN weights sum = %v, want 500 (the paper's sample)", sum)
	}
	non := NonIDNWeights()
	sum = 0
	for _, v := range non {
		sum += v
	}
	if sum != 500 {
		t.Errorf("non-IDN weights sum = %v", sum)
	}
	if non[Meaningful] != 168 || non[Parked] != 107 {
		t.Errorf("non-IDN weights = %v", non)
	}
}

func TestCensus(t *testing.T) {
	c := Census{NotResolved: 45, Meaningful: 20, Parked: 35}
	if c.Total() != 100 {
		t.Errorf("Total = %d", c.Total())
	}
	if got := c.Rate(NotResolved); got != 0.45 {
		t.Errorf("Rate = %v", got)
	}
	var empty Census
	if empty.Rate(Parked) != 0 {
		t.Error("empty census rate should be 0")
	}
}

func TestStateString(t *testing.T) {
	if NotResolved.String() != "Not resolved" || Meaningful.String() != "Meaningful content" {
		t.Error("String labels wrong")
	}
	if State(0).String() != "Unknown" {
		t.Error("zero state should be Unknown")
	}
}

func TestStripTags(t *testing.T) {
	if got := stripTags("<html><body>hi <b>there</b></body></html>"); got != "hi there" {
		t.Errorf("stripTags = %q", got)
	}
	if got := stripTags("no tags"); got != "no tags" {
		t.Errorf("stripTags = %q", got)
	}
}

func BenchmarkServeAndClassify(b *testing.B) {
	for i := 0; i < b.N; i++ {
		resp := Serve(Parked, "xn--bench.com", uint64(i))
		if Classify(resp) != Parked {
			b.Fatal("misclassified")
		}
	}
}
