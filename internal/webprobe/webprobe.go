// Package webprobe implements the web-content substrate: it serves
// synthetic HTTP responses for domains according to their hidden hosting
// profile, and classifies responses into the usage categories of the
// paper's Table V (not resolved / error / empty / parked / for sale /
// redirected / meaningful content).
//
// The paper's authors crawled homepages and manually classified stratified
// samples of 500 IDNs and 500 non-IDNs. Here the crawl is simulated — the
// generator assigns each domain a hosting profile at Table V rates — but
// the classification is real: the classifier inspects the served response
// (status, location, body markers) without access to the hidden profile,
// and the pipeline reports what the classifier recovers.
package webprobe

import (
	"fmt"
	"strings"
)

// State is a Table V usage category.
type State int

// Usage categories in Table V row order.
const (
	NotResolved State = iota + 1
	ErrorPage
	Empty
	Parked
	ForSale
	Redirected
	Meaningful
)

// States lists all categories in table order.
func States() []State {
	return []State{NotResolved, ErrorPage, Empty, Parked, ForSale, Redirected, Meaningful}
}

var stateNames = map[State]string{
	NotResolved: "Not resolved",
	ErrorPage:   "Error",
	Empty:       "Empty",
	Parked:      "Parked",
	ForSale:     "For sale",
	Redirected:  "Redirected",
	Meaningful:  "Meaningful content",
}

// String returns the Table V row label.
func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return "Unknown"
}

// Weights maps each category to its probability mass. The two defaults are
// the exact sample proportions of Table V.
type Weights map[State]float64

// IDNWeights returns Table V's IDN column (out of 500 samples).
func IDNWeights() Weights {
	return Weights{
		NotResolved: 228, ErrorPage: 65, Empty: 16, Parked: 56,
		ForSale: 8, Redirected: 28, Meaningful: 99,
	}
}

// NonIDNWeights returns Table V's non-IDN column.
func NonIDNWeights() Weights {
	return Weights{
		NotResolved: 76, ErrorPage: 74, Empty: 43, Parked: 107,
		ForSale: 16, Redirected: 16, Meaningful: 168,
	}
}

// Response is the outcome of probing one domain.
type Response struct {
	// Resolved reports whether DNS resolution and the TCP connect
	// succeeded. When false, the remaining fields are zero. All IDNs in
	// zone files have NS records, so failures are name-server-side
	// (REFUSED and the like), as the paper notes.
	Resolved bool
	// StatusCode is the HTTP status (0 when !Resolved).
	StatusCode int
	// Location is the redirect target for 3xx responses.
	Location string
	// Body is the homepage body.
	Body string
	// ServerCN is the common name of the certificate served on :443
	// (empty when HTTPS is not deployed). It couples Table V hosting
	// states to the Table VII shared-certificate analysis.
	ServerCN string
}

// Parking and sale services whose markers appear in generated pages —
// the operators behind the paper's Table VII common names.
var parkingServices = []string{"sedoparking.com", "seoboxes.com", "parkingcrew.net", "godaddy-park.com"}

// Serve produces the synthetic response for a domain with hosting profile
// state. variant selects among equivalent phrasings so bodies differ
// across domains; pass any deterministic per-domain value.
func Serve(state State, domain string, variant uint64) Response {
	park := parkingServices[variant%uint64(len(parkingServices))]
	switch state {
	case NotResolved:
		return Response{}
	case ErrorPage:
		codes := []int{500, 502, 503, 404, 403}
		return Response{Resolved: true, StatusCode: codes[variant%uint64(len(codes))],
			Body: "<html><body><h1>Error</h1></body></html>"}
	case Empty:
		bodies := []string{"", "<html></html>", "<html><body></body></html>"}
		return Response{Resolved: true, StatusCode: 200, Body: bodies[variant%3]}
	case Parked:
		return Response{Resolved: true, StatusCode: 200, ServerCN: park,
			Body: fmt.Sprintf("<html><body>The domain %s is parked courtesy of %s. Related searches: loans, insurance.</body></html>", domain, park)}
	case ForSale:
		return Response{Resolved: true, StatusCode: 200,
			Body: fmt.Sprintf("<html><body><h1>%s is for sale!</h1>Buy this premium domain now. Make an offer.</body></html>", domain)}
	case Redirected:
		targets := []string{"https://www.example-shop.com/", "https://portal.example.net/home", "https://m.example.org/"}
		return Response{Resolved: true, StatusCode: 302, Location: targets[variant%3]}
	case Meaningful:
		return Response{Resolved: true, StatusCode: 200,
			Body: fmt.Sprintf("<html><head><title>%s</title></head><body><nav>home products about contact</nav><article>Welcome to %s — news, catalogue and customer service. %d articles published.</article></body></html>",
				domain, domain, 10+variant%90)}
	}
	return Response{}
}

// Classify recovers the usage category from a served response. It sees only
// what a crawler would see; the pipeline's Table V is built from these
// recovered labels. Classify(Serve(s, d, v)) == s for every state.
func Classify(resp Response) State {
	switch {
	case !resp.Resolved:
		return NotResolved
	case resp.StatusCode >= 300 && resp.StatusCode < 400:
		return Redirected
	case resp.StatusCode >= 400:
		return ErrorPage
	}
	body := strings.ToLower(resp.Body)
	text := stripTags(body)
	switch {
	case strings.TrimSpace(text) == "":
		return Empty
	case strings.Contains(body, "is parked"):
		return Parked
	case strings.Contains(body, "for sale") || strings.Contains(body, "make an offer"):
		return ForSale
	default:
		return Meaningful
	}
}

// stripTags removes a conservative approximation of HTML markup, leaving
// visible text.
func stripTags(s string) string {
	var b strings.Builder
	inTag := false
	for _, r := range s {
		switch {
		case r == '<':
			inTag = true
		case r == '>':
			inTag = false
		case !inTag:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Census counts recovered categories over a population — one column of
// Table V.
type Census map[State]int

// Total returns the number of classified domains.
func (c Census) Total() int {
	n := 0
	for _, v := range c {
		n += v
	}
	return n
}

// Rate returns the fraction of the census in the given state.
func (c Census) Rate(s State) float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c[s]) / float64(t)
}
