// Package registrar implements the IDN registration pipeline of the
// paper's §II: "upon receiving a registration request, the registrar
// should first convert the requested domain into an ASCII-compatible
// encoding (ACE) string, and subsequently submit the ACE string to the
// Shared Registration System (SRS) for validation. When the domain name
// is valid and not registered, the requested IDN will be installed into
// the corresponding TLD zone."
//
// It also implements the paper's §VIII recommendation: registry-side
// screening of registration requests for visual, semantic and translated
// resemblance to protected brands — the CNNIC-style brand-protection
// service deployed on three TLDs. The package's tests reproduce the
// paper's §VI-D registration experiment: without screening, every
// homographic candidate is approved (as GoDaddy approved all ten of the
// authors' requests); with screening enabled, they are refused.
package registrar

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"idnlab/internal/idna"
	"idnlab/internal/zonefile"
)

// Errors returned by the registration flow.
var (
	// ErrUnsupportedTLD reports a request for a TLD the SRS does not
	// operate.
	ErrUnsupportedTLD = errors.New("registrar: unsupported TLD")
	// ErrTaken reports that the name is already registered.
	ErrTaken = errors.New("registrar: domain already registered")
	// ErrScreened reports a registry-side screening rejection.
	ErrScreened = errors.New("registrar: rejected by registry screening")
)

// Request is a registration request as a registrant submits it to a
// registrar: the desired name in Unicode display form.
type Request struct {
	// Label is the desired second-level label (Unicode form).
	Label string
	// TLD is the target zone ("com", "net", "org" or an iTLD in ACE).
	TLD string
	// RegistrantEmail identifies the registrant.
	RegistrantEmail string
}

// Receipt records an approved registration.
type Receipt struct {
	// ACE is the installed name in ASCII-compatible encoding.
	ACE string
	// Unicode is the display form.
	Unicode string
	// Registrar is the sponsoring registrar's name.
	Registrar string
}

// Screen is a registry-side screening policy consulted before a name is
// installed. Returning a non-nil error refuses the registration; the
// error explains the resemblance found.
type Screen interface {
	// Check inspects the Unicode label requested under the given TLD.
	Check(label, tld string) error
}

// ScreenFunc adapts a function to the Screen interface.
type ScreenFunc func(label, tld string) error

// Check implements Screen.
func (f ScreenFunc) Check(label, tld string) error { return f(label, tld) }

// SRS is the shared registration system: the per-TLD name database that
// validates and installs registrations. It is safe for concurrent use.
type SRS struct {
	mu      sync.Mutex
	zones   map[string]map[string]string // tld -> label -> registrant
	screens []Screen
}

// NewSRS creates an SRS operating the given TLDs.
func NewSRS(tlds ...string) *SRS {
	s := &SRS{zones: make(map[string]map[string]string, len(tlds))}
	for _, tld := range tlds {
		s.zones[strings.ToLower(tld)] = make(map[string]string)
	}
	return s
}

// AddScreen installs a registry-side screening policy. Screens apply to
// all TLDs of this SRS; the paper observed such protection on three TLDs
// only, which is modelled by running separate SRS instances per registry.
func (s *SRS) AddScreen(screen Screen) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.screens = append(s.screens, screen)
}

// validate checks the ACE string and availability; callers hold the lock.
func (s *SRS) validateLocked(aceLabel, tld string) (map[string]string, error) {
	zone, ok := s.zones[tld]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnsupportedTLD, tld)
	}
	if _, taken := zone[aceLabel]; taken {
		return nil, fmt.Errorf("%w: %s.%s", ErrTaken, aceLabel, tld)
	}
	return zone, nil
}

// Submit runs the full §II flow for a request: ACE conversion (the
// registrar's step), SRS validation, screening, and zone installation.
func (s *SRS) Submit(req Request) (Receipt, error) {
	// Registries apply the nameprep mapping first: fullwidth forms fold
	// to ASCII and invisible characters are stripped, so e.g. a
	// fullwidth "ｇｏｏｇｌｅ" request is the same name as "google".
	prepped, err := idna.Nameprep(req.Label)
	if err != nil {
		return Receipt{}, fmt.Errorf("registrar: nameprep %q: %w", req.Label, err)
	}
	aceLabel, err := idna.ToASCIILabel(prepped)
	if err != nil {
		return Receipt{}, fmt.Errorf("registrar: convert %q: %w", req.Label, err)
	}
	uniLabel, err := idna.ToUnicodeLabel(aceLabel)
	if err != nil {
		return Receipt{}, fmt.Errorf("registrar: decode %q: %w", aceLabel, err)
	}
	tld := strings.ToLower(req.TLD)

	s.mu.Lock()
	defer s.mu.Unlock()
	zone, err := s.validateLocked(aceLabel, tld)
	if err != nil {
		return Receipt{}, err
	}
	for _, screen := range s.screens {
		if err := screen.Check(uniLabel, tld); err != nil {
			return Receipt{}, fmt.Errorf("%w: %v", ErrScreened, err)
		}
	}
	zone[aceLabel] = req.RegistrantEmail
	return Receipt{
		ACE:     aceLabel + "." + tld,
		Unicode: uniLabel + "." + tld,
	}, nil
}

// Registered reports whether a label is taken under a TLD.
func (s *SRS) Registered(aceLabel, tld string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	zone, ok := s.zones[strings.ToLower(tld)]
	if !ok {
		return false
	}
	_, taken := zone[strings.ToLower(aceLabel)]
	return taken
}

// Count returns the number of registrations under a TLD.
func (s *SRS) Count(tld string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.zones[strings.ToLower(tld)])
}

// Zone exports a TLD's registrations as a zone file, completing the §II
// flow ("the requested IDN will be installed into the corresponding TLD
// zone").
func (s *SRS) Zone(tld string) (*zonefile.Zone, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tld = strings.ToLower(tld)
	labels, ok := s.zones[tld]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnsupportedTLD, tld)
	}
	z := &zonefile.Zone{Origin: tld, DefaultTTL: 86400}
	for label := range labels {
		z.Records = append(z.Records, zonefile.Record{
			Owner: label, Type: "NS", Data: "ns1.dns-host.net.",
		})
	}
	return z, nil
}

// Registrar is the retail layer in front of an SRS: it performs the ACE
// conversion and forwards to the registry, attributing registrations to
// itself. Multiple registrars can share one SRS, as in the real com zone.
type Registrar struct {
	// Name is the registrar's display name.
	Name string
	// SRS is the registry backend.
	SRS *SRS
}

// Register submits a request on behalf of a registrant.
func (r *Registrar) Register(req Request) (Receipt, error) {
	receipt, err := r.SRS.Submit(req)
	if err != nil {
		return Receipt{}, err
	}
	receipt.Registrar = r.Name
	return receipt, nil
}
