package registrar

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"idnlab/internal/confusables"
	"idnlab/internal/idna"
)

func TestBasicRegistrationFlow(t *testing.T) {
	srs := NewSRS("com", "net")
	godaddy := &Registrar{Name: "GoDaddy.com, LLC.", SRS: srs}

	receipt, err := godaddy.Register(Request{Label: "波色", TLD: "com", RegistrantEmail: "x@qq.com"})
	if err != nil {
		t.Fatal(err)
	}
	if receipt.ACE != "xn--0wwy37b.com" || receipt.Unicode != "波色.com" {
		t.Errorf("receipt = %+v", receipt)
	}
	if receipt.Registrar != "GoDaddy.com, LLC." {
		t.Errorf("registrar attribution missing: %+v", receipt)
	}
	if !srs.Registered("xn--0wwy37b", "com") {
		t.Error("name not installed")
	}
}

func TestASCIIRegistration(t *testing.T) {
	srs := NewSRS("com")
	if _, err := srs.Submit(Request{Label: "example", TLD: "com"}); err != nil {
		t.Fatal(err)
	}
	if !srs.Registered("example", "com") {
		t.Error("ASCII name not installed")
	}
}

func TestDuplicateRejected(t *testing.T) {
	srs := NewSRS("com")
	if _, err := srs.Submit(Request{Label: "中国", TLD: "com"}); err != nil {
		t.Fatal(err)
	}
	// The Unicode form and its ACE form are the same name.
	if _, err := srs.Submit(Request{Label: "中国", TLD: "com"}); !errors.Is(err, ErrTaken) {
		t.Errorf("duplicate unicode: err = %v", err)
	}
	if _, err := srs.Submit(Request{Label: "xn--fiqs8s", TLD: "com"}); !errors.Is(err, ErrTaken) {
		t.Errorf("duplicate via ACE: err = %v", err)
	}
}

func TestUnsupportedTLD(t *testing.T) {
	srs := NewSRS("com")
	if _, err := srs.Submit(Request{Label: "a", TLD: "xyz"}); !errors.Is(err, ErrUnsupportedTLD) {
		t.Errorf("err = %v", err)
	}
}

func TestInvalidNameRejected(t *testing.T) {
	srs := NewSRS("com")
	for _, label := range []string{"", "-bad", "bad-", "has space", strings.Repeat("a", 64)} {
		if _, err := srs.Submit(Request{Label: label, TLD: "com"}); err == nil {
			t.Errorf("label %q accepted", label)
		}
	}
}

// TestPaperRegistrationExperiment reproduces §VI-D: "we sampled 10
// homographic IDNs ... and attempted to register them through GoDaddy.
// All our requests were approved." Without registry screening every
// homographic candidate must be approved.
func TestPaperRegistrationExperiment(t *testing.T) {
	srs := NewSRS("com")
	godaddy := &Registrar{Name: "GoDaddy.com, LLC.", SRS: srs}
	tab := confusables.Default()
	candidates := tab.Variants("eay") // the paper registered xn--eay-6xy.com etc.
	candidates = append(candidates, tab.Variants("sn")...)
	if len(candidates) < 10 {
		t.Fatalf("only %d candidates", len(candidates))
	}
	approved := 0
	for _, label := range candidates[:10] {
		if _, err := godaddy.Register(Request{Label: label, TLD: "com"}); err != nil {
			t.Errorf("candidate %q refused: %v", label, err)
			continue
		}
		approved++
	}
	if approved != 10 {
		t.Errorf("approved %d/10; the paper's experiment had all approved", approved)
	}
}

// TestBrandProtectionScreen verifies the §VIII recommendation: with the
// CNNIC-style screen installed, homographic, Type-1 and Type-2 requests
// are refused while legitimate IDNs still register.
func TestBrandProtectionScreen(t *testing.T) {
	srs := NewSRS("com", "net")
	srs.AddScreen(NewBrandProtection(1000))

	refusals := []Request{
		{Label: "аpple", TLD: "com"},   // homograph (Cyrillic а)
		{Label: "gооgle", TLD: "com"},  // homograph (Cyrillic о)
		{Label: "apple邮箱", TLD: "com"}, // Type-1
		{Label: "58汽车", TLD: "com"},    // Type-1
		{Label: "格力空调", TLD: "net"},    // Type-2 (paper Table X)
	}
	for _, req := range refusals {
		if _, err := srs.Submit(req); !errors.Is(err, ErrScreened) {
			t.Errorf("request %q: err = %v, want screening refusal", req.Label, err)
		}
	}

	legitimate := []Request{
		{Label: "波色", TLD: "com"},
		{Label: "bücher", TLD: "com"},
		{Label: "한국어", TLD: "com"},
		{Label: "my-brand-new-site", TLD: "com"},
	}
	for _, req := range legitimate {
		if _, err := srs.Submit(req); err != nil {
			t.Errorf("legitimate %q refused: %v", req.Label, err)
		}
	}
}

func TestScreenFunc(t *testing.T) {
	srs := NewSRS("com")
	srs.AddScreen(ScreenFunc(func(label, tld string) error {
		if strings.Contains(label, "forbidden") {
			return errors.New("policy")
		}
		return nil
	}))
	if _, err := srs.Submit(Request{Label: "forbidden-word", TLD: "com"}); !errors.Is(err, ErrScreened) {
		t.Errorf("err = %v", err)
	}
	if _, err := srs.Submit(Request{Label: "allowed", TLD: "com"}); err != nil {
		t.Errorf("allowed refused: %v", err)
	}
}

func TestZoneExport(t *testing.T) {
	srs := NewSRS("com")
	for _, label := range []string{"中国", "example", "波色"} {
		if _, err := srs.Submit(Request{Label: label, TLD: "com"}); err != nil {
			t.Fatal(err)
		}
	}
	z, err := srs.Zone("com")
	if err != nil {
		t.Fatal(err)
	}
	if z.Origin != "com" || len(z.Records) != 3 {
		t.Errorf("zone = %+v", z)
	}
	// The exported zone must scan back to the same registrations.
	slds := z.SLDs()
	if len(slds) != 3 {
		t.Errorf("SLDs = %v", slds)
	}
	for _, sld := range slds {
		label := strings.TrimSuffix(sld, ".com")
		if !srs.Registered(label, "com") {
			t.Errorf("scanned %q not registered", sld)
		}
	}
	if _, err := srs.Zone("nope"); !errors.Is(err, ErrUnsupportedTLD) {
		t.Errorf("Zone(nope) err = %v", err)
	}
}

func TestConcurrentRegistrations(t *testing.T) {
	srs := NewSRS("com")
	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				label := fmt.Sprintf("worker%d-name%d", w, i)
				if _, err := srs.Submit(Request{Label: label, TLD: "com"}); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if srs.Count("com") != workers*perWorker {
		t.Errorf("Count = %d, want %d", srs.Count("com"), workers*perWorker)
	}
}

func TestConcurrentSameNameExactlyOneWins(t *testing.T) {
	srs := NewSRS("com")
	const contenders = 16
	var wg sync.WaitGroup
	wins := make(chan struct{}, contenders)
	for i := 0; i < contenders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := srs.Submit(Request{Label: "中国", TLD: "com"}); err == nil {
				wins <- struct{}{}
			}
		}()
	}
	wg.Wait()
	close(wins)
	n := 0
	for range wins {
		n++
	}
	if n != 1 {
		t.Errorf("winners = %d, want exactly 1", n)
	}
}

func TestReceiptACEMatchesIDNA(t *testing.T) {
	srs := NewSRS("com")
	receipt, err := srs.Submit(Request{Label: "北京交通大学", TLD: "com"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := idna.ToASCII("北京交通大学.com")
	if err != nil {
		t.Fatal(err)
	}
	if receipt.ACE != want {
		t.Errorf("ACE = %q, want %q", receipt.ACE, want)
	}
}

func BenchmarkSubmit(b *testing.B) {
	srs := NewSRS("com")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = srs.Submit(Request{Label: fmt.Sprintf("bench%d", i), TLD: "com"})
	}
}

func BenchmarkSubmitWithScreening(b *testing.B) {
	srs := NewSRS("com")
	srs.AddScreen(NewBrandProtection(1000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = srs.Submit(Request{Label: fmt.Sprintf("bench%d", i), TLD: "com"})
	}
}

func TestPhoneticProtectionScreen(t *testing.T) {
	srs := NewSRS("com")
	srs.AddScreen(NewPhoneticProtection(1000))

	for _, label := range []string{"gugel", "googel", "phacebook", "amazzon", "kwik"} {
		_, err := srs.Submit(Request{Label: label, TLD: "com"})
		if label == "kwik" {
			// kwik has no brand counterpart in the list; must pass.
			if err != nil {
				t.Errorf("kwik refused: %v", err)
			}
			continue
		}
		if !errors.Is(err, ErrScreened) {
			t.Errorf("sound-alike %q: err = %v, want screening refusal", label, err)
		}
	}
	// The brand itself may register.
	if _, err := srs.Submit(Request{Label: "google", TLD: "com"}); err != nil {
		t.Errorf("brand's own label refused: %v", err)
	}
	// Unrelated names pass.
	if _, err := srs.Submit(Request{Label: "my-new-startup", TLD: "com"}); err != nil {
		t.Errorf("unrelated refused: %v", err)
	}
}

func TestNameprepCollapsesFullwidthAttack(t *testing.T) {
	srs := NewSRS("com")
	if _, err := srs.Submit(Request{Label: "google", TLD: "com"}); err != nil {
		t.Fatal(err)
	}
	// A fullwidth lookalike maps to the same name and must be refused as
	// taken, not registered as a distinct IDN.
	if _, err := srs.Submit(Request{Label: "ｇｏｏｇｌｅ", TLD: "com"}); !errors.Is(err, ErrTaken) {
		t.Errorf("fullwidth attack: err = %v, want ErrTaken", err)
	}
	// Zero-width insertion likewise collapses.
	if _, err := srs.Submit(Request{Label: "goo​gle", TLD: "com"}); !errors.Is(err, ErrTaken) {
		t.Errorf("zero-width attack: err = %v, want ErrTaken", err)
	}
	// All-invisible labels are refused outright.
	if _, err := srs.Submit(Request{Label: "​‍", TLD: "com"}); err == nil {
		t.Error("invisible label accepted")
	}
}
