package registrar

import (
	"fmt"
	"strings"

	"idnlab/internal/brands"
	"idnlab/internal/core"
	"idnlab/internal/phonetic"
)

// BrandProtection is the registry-side resemblance screen the paper's
// §VIII recommends (and observes deployed by CNNIC on three TLDs): it
// refuses registration requests that are visually confusable with a
// protected brand (homograph), that embed a brand label beside foreign
// keywords (Type-1 semantic), or that equal a known brand translation
// (Type-2 semantic).
type BrandProtection struct {
	homograph *core.HomographDetector
	semantic  *core.SemanticDetector
	type2     *core.Type2Detector
}

// NewBrandProtection builds the screen over the top-k brand list.
func NewBrandProtection(topK int) *BrandProtection {
	return &BrandProtection{
		homograph: core.NewHomographDetector(topK),
		semantic:  core.NewSemanticDetector(topK),
		type2:     core.NewType2Detector(nil),
	}
}

var _ Screen = (*BrandProtection)(nil)

// Check implements Screen: the label is evaluated as a domain under the
// requested TLD by all three detectors.
func (bp *BrandProtection) Check(label, tld string) error {
	domain := label + "." + tld
	if m, ok := bp.homograph.DetectOne(domain); ok {
		return fmt.Errorf("visually resembles %s (SSIM %.3f)", m.Brand, m.SSIM)
	}
	if m, ok := bp.semantic.DetectOne(domain); ok {
		return fmt.Errorf("embeds brand %s with keyword %q", m.Brand, m.Keyword)
	}
	if m, ok := bp.type2.DetectOne(domain); ok {
		return fmt.Errorf("translates brand %s", m.Brand)
	}
	return nil
}

// PhoneticProtection refuses labels that read like a protected brand —
// the "pronunciation" axis of the CNNIC-style resemblance check.
type PhoneticProtection struct {
	keys map[string]string // phonetic key -> brand domain
}

// NewPhoneticProtection builds the screen over the top-k brand list.
func NewPhoneticProtection(topK int) *PhoneticProtection {
	p := &PhoneticProtection{keys: make(map[string]string, topK)}
	for _, b := range brands.TopK(topK) {
		key := phonetic.Key(b.Label())
		if key == "" {
			continue
		}
		if _, dup := p.keys[key]; !dup {
			p.keys[key] = b.Domain
		}
	}
	return p
}

var _ Screen = (*PhoneticProtection)(nil)

// Check implements Screen.
func (p *PhoneticProtection) Check(label, tld string) error {
	key := phonetic.Key(label)
	if key == "" {
		return nil
	}
	brand, ok := p.keys[key]
	if !ok {
		return nil
	}
	if label == strings.TrimSuffix(brand, "."+tld) || label+"."+tld == brand {
		return nil // the brand itself may register its own name
	}
	return fmt.Errorf("reads like %s (phonetic key %q)", brand, key)
}
