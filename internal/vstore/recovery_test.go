package vstore

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Crash-recovery tests, mirroring watch/recovery_test.go's discipline:
// build a store, cut its files at every interesting byte, reopen, and
// assert byte-level truncation plus warm-state equivalence with an
// uninterrupted run. NoFsync is set throughout — these tests simulate
// the crash by mutilating files directly, so physical fsync ordering is
// not what is under test.

// frameBoundaries returns the byte offsets (from file start) at which
// each complete frame in the log ends — offset 0 of the frame region is
// logHeaderSize.
func frameBoundaries(t *testing.T, path string) []int64 {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) < logHeaderSize || string(buf[:8]) != logMagic {
		t.Fatalf("%s: not a log file", path)
	}
	var bounds []int64
	pos := int64(logHeaderSize)
	for pos+frameHeader <= int64(len(buf)) {
		fl := frameLen(buf[pos:])
		if pos+fl > int64(len(buf)) {
			break
		}
		pos += fl
		bounds = append(bounds, pos)
	}
	return bounds
}

// frameLen returns the total byte length of the frame at the start of b.
func frameLen(b []byte) int64 {
	n := int64(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
	return int64(frameHeader) + n
}

// activeLog returns the single log file of a freshly closed store dir.
func activeLog(t *testing.T, dir string) string {
	t.Helper()
	logs, err := listLogs(dir)
	if err != nil || len(logs) == 0 {
		t.Fatalf("no log files in %s: %v", dir, err)
	}
	return logs[len(logs)-1]
}

// buildStore writes n records and closes the store cleanly.
func buildStore(t *testing.T, dir string, n int) {
	t.Helper()
	s := openTest(t, dir, -1)
	for i := 0; i < n; i++ {
		s.Append(testVerdict(i, 1))
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// warmState reopens dir and returns key → (seq, unicode) of the
// recovered records, closing the store again.
func warmState(t *testing.T, dir string) map[string][2]string {
	t.Helper()
	s := openTest(t, dir, -1)
	defer s.Close()
	m := make(map[string][2]string)
	for _, r := range s.TakeRecovered() {
		m[r.Verdict.Domain] = [2]string{fmt.Sprint(r.Seq), r.Verdict.Unicode}
	}
	return m
}

// copyDir clones a store directory — the "SIGKILL froze the disk here"
// primitive.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		buf, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTornTailTruncatedAtEveryByte kills mid-append at every byte of the
// final frame and asserts recovery truncates to exactly the last
// complete frame boundary and recovers exactly the acknowledged prefix.
func TestTornTailTruncatedAtEveryByte(t *testing.T) {
	master := t.TempDir()
	const n = 4
	buildStore(t, master, n)
	logPath := activeLog(t, master)
	bounds := frameBoundaries(t, logPath)
	if len(bounds) != n {
		t.Fatalf("%d frame boundaries, want %d", len(bounds), n)
	}
	lastGood := bounds[n-2] // end of record n-1
	fileEnd := bounds[n-1]

	for cut := lastGood + 1; cut < fileEnd; cut++ {
		dir := filepath.Join(t.TempDir(), "cut")
		copyDir(t, master, dir)
		cutLog := activeLog(t, dir)
		if err := os.Truncate(cutLog, cut); err != nil {
			t.Fatal(err)
		}
		s := openTest(t, dir, -1)
		recs := s.TakeRecovered()
		if len(recs) != n-1 {
			t.Fatalf("cut@%d: recovered %d records, want %d", cut, len(recs), n-1)
		}
		s.Close()
		// Byte-level: the torn tail is physically gone after reopen.
		st, err := os.Stat(cutLog)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() != lastGood {
			t.Fatalf("cut@%d: file is %d bytes after recovery, want truncation to %d", cut, st.Size(), lastGood)
		}
	}
}

// TestCorruptTailFrameDropped flips a payload byte in the final frame:
// the CRC must reject it and recovery truncates it away like a torn
// tail.
func TestCorruptTailFrameDropped(t *testing.T) {
	dir := t.TempDir()
	const n = 5
	buildStore(t, dir, n)
	logPath := activeLog(t, dir)
	bounds := frameBoundaries(t, logPath)
	buf, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	buf[bounds[n-1]-1] ^= 0xff // corrupt the last payload byte
	if err := os.WriteFile(logPath, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	s := openTest(t, dir, -1)
	defer s.Close()
	if recs := s.TakeRecovered(); len(recs) != n-1 {
		t.Fatalf("recovered %d records after CRC corruption, want %d", len(recs), n-1)
	}
	if st, _ := os.Stat(logPath); st.Size() != bounds[n-2] {
		t.Fatalf("file %d bytes, want truncation to %d", st.Size(), bounds[n-2])
	}
}

// TestCrashMidSnapshotCutover simulates dying between writing
// snapshot.vsnap.tmp and the rename: the temp file must be discarded on
// reopen and the previous snapshot (plus logs) must still produce the
// full warm state.
func TestCrashMidSnapshotCutover(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, -1)
	w := newTestWalker()
	s.SetWalker(w.walk)
	for i := 0; i < 20; i++ {
		v := testVerdict(i, 1)
		w.put(v, s.Append(v))
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil { // real snapshot at seq 20
		t.Fatal(err)
	}
	for i := 20; i < 30; i++ {
		v := testVerdict(i, 1)
		w.put(v, s.Append(v))
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// The crash: a half-written replacement snapshot that never renamed.
	tmp := filepath.Join(dir, snapName+".tmp")
	if err := os.WriteFile(tmp, []byte("IDNVSNP1 then garbage that is not frames"), 0o644); err != nil {
		t.Fatal(err)
	}

	r := openTest(t, dir, -1)
	defer r.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("snapshot temp file survived reopen")
	}
	recs := r.TakeRecovered()
	if len(recs) != 30 {
		t.Fatalf("recovered %d records, want 30 (snapshot 20 + log 10)", len(recs))
	}
	st := r.Stats()
	if st.SnapshotSeq != 20 {
		t.Fatalf("snapshot watermark %d, want the pre-crash 20", st.SnapshotSeq)
	}
}

// TestRecoveredEqualsUninterruptedRun freezes a store's directory
// mid-life (the SIGKILL snapshot), lets the original continue, and
// asserts the frozen copy recovers byte-for-byte the same warm state as
// a store that stopped cleanly at the same point.
func TestRecoveredEqualsUninterruptedRun(t *testing.T) {
	live := t.TempDir()
	clean := t.TempDir()
	const half = 25

	s := openTest(t, live, -1)
	for i := 0; i < half; i++ {
		s.Append(testVerdict(i, 1))
		s.Append(testVerdict(i, 2)) // every key rewritten once
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	frozen := filepath.Join(t.TempDir(), "frozen")
	copyDir(t, live, frozen) // SIGKILL here
	for i := half; i < 2*half; i++ {
		s.Append(testVerdict(i, 1))
	}
	s.Sync()
	s.Close()

	// Uninterrupted reference: same first-half appends, clean close.
	c := openTest(t, clean, -1)
	for i := 0; i < half; i++ {
		c.Append(testVerdict(i, 1))
		c.Append(testVerdict(i, 2))
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	c.Close()

	got, want := warmState(t, frozen), warmState(t, clean)
	if len(got) != len(want) {
		t.Fatalf("frozen copy recovered %d keys, clean run %d", len(got), len(want))
	}
	for k, w := range want {
		if g, ok := got[k]; !ok || g != w {
			t.Fatalf("key %s: frozen %v, clean %v", k, got[k], w)
		}
	}
}

// TestBadMagicRefused ensures a non-log file is a loud error, not
// silent data loss.
func TestBadMagicRefused(t *testing.T) {
	dir := t.TempDir()
	buildStore(t, dir, 3)
	logPath := activeLog(t, dir)
	buf, _ := os.ReadFile(logPath)
	copy(buf, "NOTALOG!")
	os.WriteFile(logPath, buf, 0o644)
	if _, err := Open(Config{Dir: dir, NoFsync: true}); err == nil {
		t.Fatal("Open accepted a log with corrupt magic")
	}
}

// TestTruncatedSnapshotRefused: a snapshot whose record count disagrees
// with its header is corruption (the atomic rename means a crash cannot
// produce it) and must fail loudly.
func TestTruncatedSnapshotRefused(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, -1)
	w := newTestWalker()
	s.SetWalker(w.walk)
	for i := 0; i < 10; i++ {
		v := testVerdict(i, 1)
		w.put(v, s.Append(v))
	}
	s.Sync()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	snap := filepath.Join(dir, snapName)
	buf, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snap, buf[:len(buf)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir, NoFsync: true}); err == nil {
		t.Fatal("Open accepted a truncated snapshot")
	}
}

// TestTornTailAcrossRestartChain: repeated crash/recover cycles must
// each preserve the durable prefix — no cumulative damage.
func TestTornTailAcrossRestartChain(t *testing.T) {
	dir := t.TempDir()
	total := 0
	for round := 0; round < 5; round++ {
		s := openTest(t, dir, -1)
		s.TakeRecovered()
		for i := 0; i < 10; i++ {
			s.Append(testVerdict(total, 1))
			total++
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		s.Close()
		// Tear 3 bytes off the log tail — mid-frame.
		logPath := activeLog(t, dir)
		st, _ := os.Stat(logPath)
		if err := os.Truncate(logPath, st.Size()-3); err != nil {
			t.Fatal(err)
		}
		total-- // the torn record is gone
	}
	s := openTest(t, dir, -1)
	defer s.Close()
	if recs := s.TakeRecovered(); len(recs) != total {
		t.Fatalf("after 5 crash cycles: recovered %d, want %d", len(recs), total)
	}
}
