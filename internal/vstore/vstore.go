// Package vstore gives each worker's verdict-cache partition a durable
// life: an append-only warm log of committed verdicts plus periodic
// compacted snapshots, so a SIGKILLed worker reboots with its partition
// warm instead of stampeding the SSIM path cold.
//
// On-disk layout (one directory per node):
//
//	snapshot.vsnap    magic "IDNVSNP1" | u64le watermark | u32le count | frame*
//	wlog-<hex>.vlog   magic "IDNVLOG1" | u64le baseSeq | frame*
//	*.tmp             in-flight snapshot writes, deleted on open
//
// Every frame is the alert log's proven discipline (watch.AlertLog):
//
//	u32le payloadLen | u32le crc32c(payload) | payload
//
// with the payload being a u64le sequence number followed by the
// verdict encoded as an api.DetectResponse via the zero-alloc append
// codec — byte-identical to the wire form the worker serves, so one
// codec covers serving, replication and durability.
//
// Sequence numbers are per-store, monotone, and assigned at Append.
// They order recovery (latest seq per key wins) and key the
// anti-entropy protocol: a rejoining worker asks peers for "everything
// since seq N" and N is meaningful because each store's log is a total
// order of its own commits.
//
// Appends are group-committed exactly like the alert log: Append
// enqueues and returns, a single committer drains whatever accumulated
// into one write+fsync, and Sync() is the durability barrier. A crash
// can leave a torn tail; reopening truncates it (a torn frame was never
// acknowledged durable to anyone). Snapshots are written to a temp file
// and fsync-renamed into place, so a crash mid-cutover leaves the old
// snapshot intact — the crash-recovery tests cut files at every
// interesting byte to prove both properties.
package vstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"idnlab/internal/api"
	"idnlab/internal/core"
)

const (
	logMagic  = "IDNVLOG1"
	snapMagic = "IDNVSNP1"
	// maxFrame bounds one verdict payload; anything larger in a file is
	// corruption, not data, and recovery stops there.
	maxFrame = 1 << 20

	logHeaderSize  = 8 + 8 // magic + u64le baseSeq
	snapHeaderSize = 8 + 8 + 4
	frameHeader    = 8 // u32le len + u32le crc
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one committed verdict with its store-local sequence number.
// The verdict's Domain (normalized ACE) is the cache/partition key.
type Record struct {
	Seq     uint64
	Verdict core.Verdict
}

// Config parameterizes a Store. Only Dir is required.
type Config struct {
	// Dir is the store directory (created if missing).
	Dir string
	// CompactBytes triggers snapshot compaction when the active log
	// exceeds this size (default 8 MiB; < 0 disables compaction).
	CompactBytes int64
	// NoFsync turns every fsync into a no-op. Test-only: crash-recovery
	// and churn tests cycle through hundreds of throwaway stores where
	// physical durability is irrelevant. Production never sets it.
	NoFsync bool
}

func (c Config) withDefaults() Config {
	if c.CompactBytes == 0 {
		c.CompactBytes = 8 << 20
	}
	return c
}

// Stats is the store's /metrics contribution.
type Stats struct {
	Loaded          bool   `json:"loaded"`
	Dir             string `json:"dir,omitempty"`
	Seq             uint64 `json:"seq"`
	DurableSeq      uint64 `json:"durableSeq"`
	Appends         uint64 `json:"appends"`
	Commits         uint64 `json:"commits"`
	MaxBatch        int    `json:"maxBatch"`
	LogBytes        int64  `json:"logBytes"`
	WarmBootEntries int    `json:"warmBootEntries"`
	Snapshots       uint64 `json:"snapshots"`
	SnapshotSeq     uint64 `json:"snapshotSeq"`
	SnapshotEntries int    `json:"snapshotEntries"`
	CompactErrors   uint64 `json:"compactErrors"`
	EncodeErrors    uint64 `json:"encodeErrors"`
	LastError       string `json:"lastError,omitempty"`
}

// appendRecord encodes (seq, verdict) as a frame payload.
func appendRecord(dst []byte, seq uint64, v core.Verdict) ([]byte, error) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], seq)
	dst = append(dst, b[:]...)
	resp := api.DetectResponse{Verdict: v, Flagged: v.Flagged()}
	return api.AppendDetectResponse(dst, &resp)
}

// decodeRecord parses a frame payload produced by appendRecord.
func decodeRecord(payload []byte) (Record, error) {
	if len(payload) < 9 {
		return Record{}, fmt.Errorf("vstore: record payload %d bytes, want >= 9", len(payload))
	}
	seq := binary.LittleEndian.Uint64(payload)
	resp, err := api.DecodeDetectResponseBytes(payload[8:])
	if err != nil {
		return Record{}, fmt.Errorf("vstore: record seq %d: %w", seq, err)
	}
	return Record{Seq: seq, Verdict: resp.Verdict}, nil
}

// appendFrame wraps payload in the u32len+CRC32C frame header.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// scanFrames walks frames in buf, calling fn with each valid payload.
// It returns the byte offset just past the last valid frame — the
// torn-tail truncation point when scanning a log tail.
func scanFrames(buf []byte, fn func(payload []byte) error) (int64, error) {
	off := 0
	for {
		if len(buf)-off < frameHeader {
			return int64(off), nil // clean EOF or torn header
		}
		n := binary.LittleEndian.Uint32(buf[off:])
		sum := binary.LittleEndian.Uint32(buf[off+4:])
		if n == 0 || n > maxFrame {
			return int64(off), nil
		}
		if len(buf)-off-frameHeader < int(n) {
			return int64(off), nil // torn payload
		}
		payload := buf[off+frameHeader : off+frameHeader+int(n)]
		if crc32.Checksum(payload, crcTable) != sum {
			return int64(off), nil
		}
		if err := fn(payload); err != nil {
			return int64(off), err
		}
		off += frameHeader + int(n)
	}
}

func (s *Store) syncFile(f *os.File) error {
	if s.cfg.NoFsync {
		return nil
	}
	return f.Sync()
}
