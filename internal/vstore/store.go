package vstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"idnlab/internal/core"
)

// Store is a durable, replication-ready warm store for one cache
// partition: a group-committed append log plus a compacted snapshot.
// Build with Open; Append/Sync/Since/Stats are safe for concurrent use.
type Store struct {
	cfg Config

	mu   sync.Mutex
	cond *sync.Cond

	f       *os.File // active log
	logPath string
	logSize int64 // durable byte size of the active log
	oldLogs []string

	seq         uint64 // last assigned sequence number
	durable     uint64 // last sequence number on stable storage
	pending     []byte // encoded frames awaiting commit
	pendingN    int
	pendingLast uint64 // seq of the newest pending frame
	spare       []byte
	writing     bool // a commit write is in flight (file must not rotate)

	appends   uint64
	commits   uint64
	maxBatch  int
	snapshots uint64
	snapSeq   uint64 // watermark of the current snapshot
	snapCount int

	compacting    bool
	compactErrors uint64
	encodeErrors  uint64
	walker        Walker

	recovered     []Record // warm-boot records, handed out once
	warmBoot      int
	err           error // sticky I/O error; the store is dead once set
	closing       bool
	done          chan struct{}
	compactorDone sync.WaitGroup
}

// Walker supplies the compactor with the live cache contents: it calls
// emit once per entry without holding any lock across the full dump
// (serve.VerdictCache.Walk is the canonical implementation).
type Walker func(emit func(key string, v core.Verdict, seq uint64))

// Open opens (or creates) the store at cfg.Dir, recovers the snapshot
// and every log file (truncating torn tails), and starts the committer.
// TakeRecovered returns the warm-boot records exactly once.
func Open(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("vstore: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{cfg: cfg, done: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)

	// A crash mid-snapshot leaves only a temp file; the rename never
	// happened, so the old snapshot (if any) is still the truth.
	tmps, _ := filepath.Glob(filepath.Join(cfg.Dir, "*.tmp"))
	for _, t := range tmps {
		os.Remove(t)
	}

	byKey := make(map[string]Record)
	snapRecs, snapSeq, err := loadSnapshot(filepath.Join(cfg.Dir, snapName))
	if err != nil {
		return nil, err
	}
	for _, r := range snapRecs {
		byKey[r.Verdict.Domain] = r
	}
	s.snapSeq, s.snapCount = snapSeq, len(snapRecs)
	maxSeq := snapSeq

	logs, err := listLogs(cfg.Dir)
	if err != nil {
		return nil, err
	}
	for i, path := range logs {
		base, recs, size, err := s.recoverLogFile(path)
		if err != nil {
			return nil, err
		}
		if base > maxSeq {
			maxSeq = base
		}
		for _, r := range recs {
			if prev, ok := byKey[r.Verdict.Domain]; !ok || r.Seq > prev.Seq {
				byKey[r.Verdict.Domain] = r
			}
			if r.Seq > maxSeq {
				maxSeq = r.Seq
			}
		}
		if i < len(logs)-1 {
			s.oldLogs = append(s.oldLogs, path)
		} else {
			s.logPath, s.logSize = path, size
		}
	}
	s.seq, s.durable = maxSeq, maxSeq

	if s.logPath == "" {
		path, f, err := s.newLogFile(maxSeq)
		if err != nil {
			return nil, err
		}
		s.logPath, s.f, s.logSize = path, f, logHeaderSize
	} else {
		f, err := os.OpenFile(s.logPath, os.O_RDWR, 0o644)
		if err != nil {
			return nil, err
		}
		if _, err := f.Seek(s.logSize, 0); err != nil {
			f.Close()
			return nil, err
		}
		s.f = f
	}

	s.recovered = make([]Record, 0, len(byKey))
	for _, r := range byKey {
		s.recovered = append(s.recovered, r)
	}
	sort.Slice(s.recovered, func(i, j int) bool { return s.recovered[i].Seq < s.recovered[j].Seq })
	s.warmBoot = len(s.recovered)

	go s.commitLoop()
	return s, nil
}

const snapName = "snapshot.vsnap"

// logName formats an active-log filename; the hex baseSeq keeps
// lexicographic order equal to sequence order.
func logName(baseSeq uint64) string { return fmt.Sprintf("wlog-%016x.vlog", baseSeq) }

// listLogs returns the store's log files sorted by base sequence.
func listLogs(dir string) ([]string, error) {
	all, err := filepath.Glob(filepath.Join(dir, "wlog-*.vlog"))
	if err != nil {
		return nil, err
	}
	sort.Strings(all)
	return all, nil
}

// newLogFile creates an empty log whose header records baseSeq (the
// last sequence number preceding this file).
func (s *Store) newLogFile(baseSeq uint64) (string, *os.File, error) {
	path := filepath.Join(s.cfg.Dir, logName(baseSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return "", nil, err
	}
	hdr := make([]byte, logHeaderSize)
	copy(hdr, logMagic)
	binary.LittleEndian.PutUint64(hdr[8:], baseSeq)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return "", nil, err
	}
	if err := s.syncFile(f); err != nil {
		f.Close()
		return "", nil, err
	}
	return path, f, nil
}

// recoverLogFile validates the header, scans frames, and truncates the
// file at the first incomplete or corrupt one — a crash between write
// and fsync leaves a torn tail, and a torn frame was by definition
// never acknowledged durable.
func (s *Store) recoverLogFile(path string) (baseSeq uint64, recs []Record, size int64, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, 0, err
	}
	if len(buf) < logHeaderSize || string(buf[:8]) != logMagic {
		return 0, nil, 0, fmt.Errorf("vstore: %s is not a verdict log (bad magic)", path)
	}
	baseSeq = binary.LittleEndian.Uint64(buf[8:])
	off, err := scanFrames(buf[logHeaderSize:], func(payload []byte) error {
		r, err := decodeRecord(payload)
		if err != nil {
			return err
		}
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		// CRC passed but the payload is not a record: corruption beyond a
		// torn tail. Refuse to serve from it rather than guess.
		return 0, nil, 0, fmt.Errorf("vstore: %s: %w", path, err)
	}
	size = logHeaderSize + off
	if size < int64(len(buf)) {
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return 0, nil, 0, err
		}
		if err := f.Truncate(size); err != nil {
			f.Close()
			return 0, nil, 0, err
		}
		err = s.syncFile(f)
		f.Close()
		if err != nil {
			return 0, nil, 0, err
		}
	}
	return baseSeq, recs, size, nil
}

// TakeRecovered returns the warm-boot records (latest verdict per key,
// ascending sequence order) and releases the memory. Second call
// returns nil.
func (s *Store) TakeRecovered() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.recovered
	s.recovered = nil
	return r
}

// SetWalker wires the compactor's source of truth — the live cache.
// Compaction stays disabled until a walker is attached.
func (s *Store) SetWalker(w Walker) {
	s.mu.Lock()
	s.walker = w
	s.mu.Unlock()
}

// Append assigns the next sequence number to v and enqueues the frame
// for the next group commit. It returns the assigned sequence (0 if the
// store is dead or closing) without waiting for durability — Sync() is
// the barrier. Encoding failures (non-finite floats cannot occur in
// real verdicts) are counted, not fatal.
func (s *Store) Append(v core.Verdict) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil || s.closing {
		return 0
	}
	if s.pending == nil && s.spare != nil {
		s.pending, s.spare = s.spare[:0], nil
	}
	seq := s.seq + 1
	mark := len(s.pending)
	payload, err := appendRecord(nil, seq, v)
	if err != nil {
		s.encodeErrors++
		return 0
	}
	if len(payload) > maxFrame {
		s.encodeErrors++
		return 0
	}
	s.pending = appendFrame(s.pending[:mark], payload)
	s.seq = seq
	s.pendingN++
	s.pendingLast = seq
	s.appends++
	s.cond.Broadcast() // wake the committer
	return seq
}

// Sync blocks until every record appended before the call is on stable
// storage (or the store has failed).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	target := s.seq
	for s.durable < target && s.err == nil {
		s.cond.Wait()
	}
	return s.err
}

// Seq reports the last assigned sequence number.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// DurableSeq reports the last sequence number on stable storage.
func (s *Store) DurableSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.durable
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Loaded:          true,
		Dir:             s.cfg.Dir,
		Seq:             s.seq,
		DurableSeq:      s.durable,
		Appends:         s.appends,
		Commits:         s.commits,
		MaxBatch:        s.maxBatch,
		LogBytes:        s.logSize,
		WarmBootEntries: s.warmBoot,
		Snapshots:       s.snapshots,
		SnapshotSeq:     s.snapSeq,
		SnapshotEntries: s.snapCount,
		CompactErrors:   s.compactErrors,
		EncodeErrors:    s.encodeErrors,
	}
	if s.err != nil {
		st.LastError = s.err.Error()
	}
	return st
}

// Close drains pending frames, stops the committer, waits out any
// in-flight compaction and closes the active log.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		<-s.done
		s.compactorDone.Wait()
		return s.closeErr()
	}
	s.closing = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.done
	s.compactorDone.Wait()
	s.mu.Lock()
	err := s.err
	f := s.f
	s.f = nil
	s.mu.Unlock()
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

func (s *Store) closeErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// commitLoop is the single committer: it swaps out whatever frames have
// accumulated, writes them in one syscall, fsyncs, and publishes the
// new durable watermark — one fsync per batch, which is the entire
// point of group commit. After each commit it checks whether the active
// log has outgrown CompactBytes and kicks the compactor.
func (s *Store) commitLoop() {
	defer close(s.done)
	s.mu.Lock()
	for {
		for s.pendingN == 0 && !s.closing && s.err == nil {
			s.cond.Wait()
		}
		if s.err != nil || (s.closing && s.pendingN == 0) {
			s.mu.Unlock()
			return
		}
		buf, n, last := s.pending, s.pendingN, s.pendingLast
		s.pending, s.pendingN = nil, 0
		s.writing = true
		f := s.f
		s.mu.Unlock()

		_, werr := f.Write(buf)
		if werr == nil {
			werr = s.syncFile(f)
		}

		s.mu.Lock()
		s.writing = false
		if werr != nil {
			s.err = werr
		} else {
			s.logSize += int64(len(buf))
			s.durable = last
			s.commits++
			if n > s.maxBatch {
				s.maxBatch = n
			}
			s.spare = buf[:0]
			if s.cfg.CompactBytes > 0 && s.logSize > s.cfg.CompactBytes &&
				s.walker != nil && !s.compacting && !s.closing {
				s.compacting = true
				s.compactorDone.Add(1)
				go s.compact()
			}
		}
		s.cond.Broadcast()
	}
}
