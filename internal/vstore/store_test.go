package vstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"idnlab/internal/core"
)

// testVerdict builds a deterministic verdict for key index i, version v.
// The Unicode field doubles as a version marker so tests can assert
// "latest write wins" without comparing whole structs.
func testVerdict(i, v int) core.Verdict {
	return core.Verdict{
		Domain:  fmt.Sprintf("xn--test%04d.example", i),
		Unicode: fmt.Sprintf("tëst%04d.example/v%d", i, v),
		IDN:     true,
	}
}

func openTest(t *testing.T, dir string, compact int64) *Store {
	t.Helper()
	s, err := Open(Config{Dir: dir, CompactBytes: compact, NoFsync: true})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

// testWalker mimics the live verdict cache: a map updated on every
// append, dumped through the Walker hook at compaction.
type testWalker struct {
	mu sync.Mutex
	m  map[string]Record
}

func newTestWalker() *testWalker { return &testWalker{m: make(map[string]Record)} }

func (w *testWalker) put(v core.Verdict, seq uint64) {
	w.mu.Lock()
	w.m[v.Domain] = Record{Seq: seq, Verdict: v}
	w.mu.Unlock()
}

func (w *testWalker) drop(domain string) {
	w.mu.Lock()
	delete(w.m, domain)
	w.mu.Unlock()
}

func (w *testWalker) walk(emit func(key string, v core.Verdict, seq uint64)) {
	w.mu.Lock()
	recs := make([]Record, 0, len(w.m))
	for _, r := range w.m {
		recs = append(recs, r)
	}
	w.mu.Unlock()
	for _, r := range recs {
		emit(r.Verdict.Domain, r.Verdict, r.Seq)
	}
}

func TestAppendSyncReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, -1)
	const n = 50
	for i := 0; i < n; i++ {
		if seq := s.Append(testVerdict(i, 1)); seq != uint64(i+1) {
			t.Fatalf("Append %d: seq %d, want %d", i, seq, i+1)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if got := s.DurableSeq(); got != n {
		t.Fatalf("DurableSeq %d, want %d", got, n)
	}
	st := s.Stats()
	if st.Appends != n || st.Commits == 0 {
		t.Fatalf("stats: appends=%d commits=%d", st.Appends, st.Commits)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := openTest(t, dir, -1)
	defer r.Close()
	recs := r.TakeRecovered()
	if len(recs) != n {
		t.Fatalf("recovered %d records, want %d", len(recs), n)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatalf("recovered records not ascending at %d: %d then %d", i, recs[i-1].Seq, recs[i].Seq)
		}
	}
	if r.TakeRecovered() != nil {
		t.Fatal("second TakeRecovered must return nil")
	}
	// Sequence space continues where the previous incarnation stopped.
	if seq := r.Append(testVerdict(0, 2)); seq != n+1 {
		t.Fatalf("post-reopen Append: seq %d, want %d", seq, n+1)
	}
}

func TestLatestSeqWinsOnRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, -1)
	s.Append(testVerdict(7, 1))
	s.Append(testVerdict(8, 1))
	s.Append(testVerdict(7, 2)) // rewrite key 7
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	r := openTest(t, dir, -1)
	defer r.Close()
	recs := r.TakeRecovered()
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2 (one per key)", len(recs))
	}
	byKey := make(map[string]Record)
	for _, rec := range recs {
		byKey[rec.Verdict.Domain] = rec
	}
	k7 := byKey[testVerdict(7, 0).Domain]
	if k7.Seq != 3 || k7.Verdict.Unicode != testVerdict(7, 2).Unicode {
		t.Fatalf("key 7: got seq %d unicode %q, want the seq-3 rewrite", k7.Seq, k7.Verdict.Unicode)
	}
}

func TestAppendAfterCloseReturnsZero(t *testing.T) {
	s := openTest(t, t.TempDir(), -1)
	s.Append(testVerdict(0, 1))
	s.Close()
	if seq := s.Append(testVerdict(1, 1)); seq != 0 {
		t.Fatalf("Append after Close: seq %d, want 0", seq)
	}
}

func TestCompactionCutoverAndSince(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, -1) // manual compaction only
	w := newTestWalker()
	s.SetWalker(w.walk)

	const n = 40
	for i := 0; i < n; i++ {
		v := testVerdict(i, 1)
		w.put(v, s.Append(v))
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st := s.Stats()
	if st.Snapshots != 1 || st.SnapshotSeq != n || st.SnapshotEntries != n {
		t.Fatalf("after compact: %+v", st)
	}
	// The covered log is gone; only the fresh active log remains.
	logs, _ := listLogs(dir)
	if len(logs) != 1 {
		t.Fatalf("%d log files after compaction, want 1: %v", len(logs), logs)
	}

	// Records appended after the cutover land in the new log.
	for i := n; i < 2*n; i++ {
		v := testVerdict(i, 1)
		w.put(v, s.Append(v))
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}

	// Since must stitch snapshot + active log into one ascending stream.
	recs, durable, more, err := s.Since(0, 0)
	if err != nil {
		t.Fatalf("Since: %v", err)
	}
	if durable != 2*n || more || len(recs) != 2*n {
		t.Fatalf("Since(0): %d recs, durable %d, more %v", len(recs), durable, more)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("Since record %d has seq %d", i, r.Seq)
		}
	}

	// Paging: walk the stream in chunks of 7 through the cursor protocol.
	var paged []Record
	var after uint64
	for {
		recs, durable, more, err := s.Since(after, 7)
		if err != nil {
			t.Fatal(err)
		}
		paged = append(paged, recs...)
		if !more {
			if durable != 2*n {
				t.Fatalf("final page durable %d, want %d", durable, 2*n)
			}
			break
		}
		after = recs[len(recs)-1].Seq
	}
	if len(paged) != 2*n {
		t.Fatalf("paged %d records, want %d", len(paged), 2*n)
	}

	// A caught-up cursor gets an empty page.
	recs, _, more, err = s.Since(2*n, 0)
	if err != nil || len(recs) != 0 || more {
		t.Fatalf("caught-up Since: %d recs, more %v, err %v", len(recs), more, err)
	}
	s.Close()
}

func TestEvictedKeysDropAtCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, -1)
	w := newTestWalker()
	s.SetWalker(w.walk)
	for i := 0; i < 10; i++ {
		v := testVerdict(i, 1)
		w.put(v, s.Append(v))
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	evicted := testVerdict(3, 0).Domain
	w.drop(evicted) // cache evicted key 3 before the snapshot
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	r := openTest(t, dir, -1)
	defer r.Close()
	for _, rec := range r.TakeRecovered() {
		if rec.Verdict.Domain == evicted {
			t.Fatalf("evicted key %s survived compaction", evicted)
		}
	}
	if st := r.Stats(); st.WarmBootEntries != 9 {
		t.Fatalf("warm boot %d entries, want 9", st.WarmBootEntries)
	}
}

func TestSizeTriggeredCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, 4096) // tiny threshold: a few dozen records trip it
	w := newTestWalker()
	s.SetWalker(w.walk)
	for i := 0; i < 200; i++ {
		v := testVerdict(i, 1)
		w.put(v, s.Append(v))
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s.Stats().Snapshots >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("size-triggered compaction never ran: %+v", s.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(filepath.Join(dir, snapName)); err != nil || st.Size() == 0 {
		t.Fatalf("snapshot file missing after triggered compaction: %v", err)
	}
}

func TestConcurrentAppendersAndSince(t *testing.T) {
	s := openTest(t, t.TempDir(), -1)
	defer s.Close()
	const goroutines, per = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if seq := s.Append(testVerdict(g*per+i, 1)); seq == 0 {
					t.Errorf("goroutine %d: Append returned 0", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	recs, durable, _, err := s.Since(0, goroutines*per)
	if err != nil {
		t.Fatal(err)
	}
	if durable != goroutines*per || len(recs) != goroutines*per {
		t.Fatalf("durable %d, %d records; want %d", durable, len(recs), goroutines*per)
	}
	seen := make(map[uint64]bool, len(recs))
	for _, r := range recs {
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
	}
}
