package vstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"idnlab/internal/core"
)

// Benchmarks feed scripts/store_bench.sh (via cmd/benchjson):
//
//	BenchmarkVstoreAppend    append+group-commit throughput (MB/s)
//	BenchmarkVstoreRecovery  reopen/replay throughput (MB/s) and
//	                         warm-boot entries/s at VSTORE_BENCH_RECORDS
//	BenchmarkVstoreSince     anti-entropy suffix streaming (records/s)
//
// NoFsync is set: these measure the encode/frame/replay paths, not the
// disk. VSTORE_BENCH_RECORDS scales the recovery corpus (default 50k;
// the bench script drives it to 1M for the warm-boot budget).

func benchRecords() int {
	if v := os.Getenv("VSTORE_BENCH_RECORDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 50_000
}

func benchVerdict(i int) core.Verdict {
	return core.Verdict{
		Domain:  fmt.Sprintf("xn--bench%07d.example", i),
		Unicode: fmt.Sprintf("bénch%07d.example", i),
		IDN:     true,
	}
}

// recordBytes measures the framed size of one benchmark record.
func recordBytes(b *testing.B) int64 {
	b.Helper()
	payload, err := appendRecord(nil, 1, benchVerdict(0))
	if err != nil {
		b.Fatal(err)
	}
	return int64(len(appendFrame(nil, payload)))
}

func BenchmarkVstoreAppend(b *testing.B) {
	s, err := Open(Config{Dir: b.TempDir(), CompactBytes: -1, NoFsync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.SetBytes(recordBytes(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if seq := s.Append(benchVerdict(i)); seq == 0 {
			b.Fatal("Append returned 0")
		}
	}
	if err := s.Sync(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkVstoreRecovery(b *testing.B) {
	n := benchRecords()
	dir := b.TempDir()
	s, err := Open(Config{Dir: dir, CompactBytes: -1, NoFsync: true})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		s.Append(benchVerdict(i))
	}
	if err := s.Sync(); err != nil {
		b.Fatal(err)
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	var dirBytes int64
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if st, err := os.Stat(filepath.Join(dir, e.Name())); err == nil {
			dirBytes += st.Size()
		}
	}
	b.SetBytes(dirBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Open(Config{Dir: dir, CompactBytes: -1, NoFsync: true})
		if err != nil {
			b.Fatal(err)
		}
		if got := len(r.TakeRecovered()); got != n {
			b.Fatalf("recovered %d records, want %d", got, n)
		}
		r.Close()
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "entries/s")
}

func BenchmarkVstoreSince(b *testing.B) {
	const n = 10_000
	s, err := Open(Config{Dir: b.TempDir(), CompactBytes: -1, NoFsync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < n; i++ {
		s.Append(benchVerdict(i))
	}
	if err := s.Sync(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var after uint64
		total := 0
		for {
			recs, _, more, err := s.Since(after, 2048)
			if err != nil {
				b.Fatal(err)
			}
			total += len(recs)
			if !more {
				break
			}
			after = recs[len(recs)-1].Seq
		}
		if total != n {
			b.Fatalf("streamed %d records, want %d", total, n)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}
