package vstore

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"idnlab/internal/core"
)

// Snapshot compaction. When the active log outgrows CompactBytes the
// committer kicks compact(), which:
//
//  1. rotates the active log (new file, baseSeq = current seq) so the
//     append path never stalls behind the dump;
//  2. walks the live cache through the attached Walker — one shard
//     locked at a time, never the whole cache — keeping records at or
//     below the rotation watermark;
//  3. writes snapshot.vsnap.tmp, fsyncs, and renames it over the old
//     snapshot (atomic cutover: a crash at any byte leaves either the
//     old complete snapshot or the new complete one);
//  4. deletes the log files the snapshot now covers.
//
// Evicted keys fall out at compaction — the store is a warm-boot image
// of the cache, not an unbounded history — which is what bounds disk to
// O(cache capacity + CompactBytes).

// compact runs one compaction cycle on its own goroutine.
func (s *Store) compact() {
	defer s.compactorDone.Done()
	if err := s.compactOnce(); err != nil {
		s.mu.Lock()
		s.compactErrors++
		s.mu.Unlock()
	}
	s.mu.Lock()
	s.compacting = false
	s.mu.Unlock()
}

// Compact forces a compaction cycle synchronously (tests and benches;
// production relies on the size trigger). It is a no-op without a
// walker.
func (s *Store) Compact() error {
	s.mu.Lock()
	if s.walker == nil || s.compacting || s.closing || s.err != nil {
		s.mu.Unlock()
		return nil
	}
	s.compacting = true
	s.mu.Unlock()
	err := s.compactOnce()
	s.mu.Lock()
	if err != nil {
		s.compactErrors++
	}
	s.compacting = false
	s.mu.Unlock()
	return err
}

func (s *Store) compactOnce() error {
	// Rotate: swap in a fresh log so appends continue while we dump.
	// One commit write may be in flight; wait it out (never long — one
	// batch) so the old file is complete when we close it.
	s.mu.Lock()
	for s.writing && s.err == nil && !s.closing {
		s.cond.Wait()
	}
	if s.closing || s.err != nil {
		s.mu.Unlock()
		return nil
	}
	watermark := s.seq
	walker := s.walker
	oldFile, oldPath := s.f, s.logPath
	path, f, err := s.newLogFile(watermark)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	s.f, s.logPath, s.logSize = f, path, logHeaderSize
	s.oldLogs = append(s.oldLogs, oldPath)
	covered := append([]string(nil), s.oldLogs...)
	s.mu.Unlock()
	oldFile.Close()

	// Dump the live cache. Records above the watermark belong to the new
	// log; records with seq 0 never hit this store (ingested while the
	// log was dead) and cannot be ordered, so they stay log-only.
	var recs []Record
	walker(func(key string, v core.Verdict, seq uint64) {
		if seq == 0 || seq > watermark {
			return
		}
		recs = append(recs, Record{Seq: seq, Verdict: v})
	})
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })

	if err := s.writeSnapshot(recs, watermark); err != nil {
		return err
	}

	s.mu.Lock()
	s.snapshots++
	s.snapSeq, s.snapCount = watermark, len(recs)
	// Drop exactly the files the snapshot covers; a concurrent rotation
	// cannot have added to oldLogs (compactions are serialized).
	s.oldLogs = s.oldLogs[len(covered):]
	s.mu.Unlock()
	for _, p := range covered {
		os.Remove(p)
	}
	return nil
}

// writeSnapshot writes records to snapshot.vsnap.tmp and atomically
// renames it into place: temp write + fsync + rename is the same
// cutover discipline as the watch daemon's cursor file.
func (s *Store) writeSnapshot(recs []Record, watermark uint64) error {
	tmp := filepath.Join(s.cfg.Dir, snapName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	hdr := make([]byte, snapHeaderSize)
	copy(hdr, snapMagic)
	binary.LittleEndian.PutUint64(hdr[8:], watermark)
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(recs)))
	buf := hdr
	var scratch []byte
	for i := range recs {
		payload, err := appendRecord(scratch[:0], recs[i].Seq, recs[i].Verdict)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		scratch = payload
		buf = appendFrame(buf, payload)
		if len(buf) >= 1<<20 {
			if _, err := f.Write(buf); err != nil {
				f.Close()
				os.Remove(tmp)
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := f.Write(buf); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := s.syncFile(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.cfg.Dir, snapName)); err != nil {
		os.Remove(tmp)
		return err
	}
	return s.syncDir()
}

// syncDir makes the snapshot rename itself durable.
func (s *Store) syncDir() error {
	if s.cfg.NoFsync {
		return nil
	}
	d, err := os.Open(s.cfg.Dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	d.Close()
	return err
}

// loadSnapshot reads a snapshot file. A missing file is an empty store;
// anything structurally wrong is an error — the atomic cutover means a
// torn snapshot cannot be left by a crash, only by real corruption,
// and serving silently from half a snapshot would be data loss.
func loadSnapshot(path string) ([]Record, uint64, error) {
	buf, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	if len(buf) < snapHeaderSize || string(buf[:8]) != snapMagic {
		return nil, 0, fmt.Errorf("vstore: %s is not a verdict snapshot (bad magic)", path)
	}
	watermark := binary.LittleEndian.Uint64(buf[8:])
	count := binary.LittleEndian.Uint32(buf[16:])
	recs := make([]Record, 0, count)
	if _, err := scanFrames(buf[snapHeaderSize:], func(payload []byte) error {
		r, err := decodeRecord(payload)
		if err != nil {
			return err
		}
		recs = append(recs, r)
		return nil
	}); err != nil {
		return nil, 0, fmt.Errorf("vstore: %s: %w", path, err)
	}
	if len(recs) != int(count) {
		return nil, 0, fmt.Errorf("vstore: %s: %d records, header says %d (truncated snapshot)", path, len(recs), count)
	}
	return recs, watermark, nil
}

// Since returns up to max records with sequence numbers in
// (after, durable], ascending — the anti-entropy suffix a rejoining
// peer streams to converge. durable is the store's current durable
// watermark: when more is false the caller may advance its cursor to it
// directly. Only durable bytes of the active log are scanned, so a
// record is never handed out before it would survive a crash.
func (s *Store) Since(after uint64, max int) (recs []Record, durable uint64, more bool, err error) {
	if max <= 0 {
		max = 1024
	}
	s.mu.Lock()
	durable = s.durable
	snapSeq := s.snapSeq
	activePath, activeSize := s.logPath, s.logSize
	old := append([]string(nil), s.oldLogs...)
	s.mu.Unlock()
	if after >= durable {
		return nil, durable, false, nil
	}

	collect := func(r Record) {
		if r.Seq > after && r.Seq <= durable {
			recs = append(recs, r)
		}
	}
	if snapSeq > after {
		snapRecs, _, err := loadSnapshot(filepath.Join(s.cfg.Dir, snapName))
		if err != nil {
			return nil, durable, false, err
		}
		for _, r := range snapRecs {
			collect(r)
		}
	}
	for _, p := range old {
		if err := scanLogRecords(p, -1, collect); err != nil {
			return nil, durable, false, err
		}
	}
	if err := scanLogRecords(activePath, activeSize, collect); err != nil {
		return nil, durable, false, err
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	if len(recs) > max {
		recs, more = recs[:max], true
	}
	return recs, durable, more, nil
}

// scanLogRecords reads a log file's records, bounded to limit bytes
// when limit >= 0 (the active log's durable size — bytes past it may be
// a commit in flight). Torn tails stop the scan cleanly.
func scanLogRecords(path string, limit int64, fn func(Record)) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var rd io.Reader = f
	if limit >= 0 {
		rd = io.LimitReader(f, limit)
	}
	buf, err := io.ReadAll(rd)
	if err != nil {
		return err
	}
	if len(buf) < logHeaderSize || string(buf[:8]) != logMagic {
		return fmt.Errorf("vstore: %s is not a verdict log (bad magic)", path)
	}
	_, err = scanFrames(buf[logHeaderSize:], func(payload []byte) error {
		r, err := decodeRecord(payload)
		if err != nil {
			return err
		}
		fn(r)
		return nil
	})
	return err
}
