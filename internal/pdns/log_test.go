package pdns

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestLogLineRoundTrip(t *testing.T) {
	lines := []LogLine{
		{Time: day(2017, 5, 1), Domain: "xn--0wwy37b.com", ResponseIP: "192.0.2.1"},
		{Time: day(2016, 1, 2).Add(13*time.Hour + 45*time.Minute), Domain: "example.com"},
	}
	for _, l := range lines {
		back, err := ParseLogLine(l.String())
		if err != nil {
			t.Fatalf("%q: %v", l.String(), err)
		}
		if !back.Time.Equal(l.Time) || back.Domain != l.Domain || back.ResponseIP != l.ResponseIP {
			t.Errorf("round trip %q -> %+v", l.String(), back)
		}
	}
}

func TestParseLogLineErrors(t *testing.T) {
	for _, line := range []string{"", "just-one-field", "notatime a.com", "2017-05-01T00:00:00Z a.com 1.2.3.4 extra"} {
		if _, err := ParseLogLine(line); !errors.Is(err, ErrBadLogLine) {
			t.Errorf("line %q: err = %v", line, err)
		}
	}
}

func TestAggregateBuildsEntries(t *testing.T) {
	log := strings.Join([]string{
		"# resolver log excerpt",
		"2016-03-01T10:00:00Z xn--0wwy37b.com 192.0.2.1",
		"",
		"2016-05-01T10:00:00Z xn--0wwy37b.com 192.0.2.2",
		"2016-04-01T10:00:00Z xn--0wwy37b.com 192.0.2.1",
		"2017-01-01T00:00:00Z other.com",
	}, "\n")
	s := NewStore()
	n, err := s.Aggregate(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("ingested %d lines, want 4", n)
	}
	e, ok := s.Get("xn--0wwy37b.com")
	if !ok {
		t.Fatal("entry missing")
	}
	if e.Queries != 3 {
		t.Errorf("Queries = %d", e.Queries)
	}
	if !e.FirstSeen.Equal(day(2016, 3, 1).Add(10*time.Hour)) || !e.LastSeen.Equal(day(2016, 5, 1).Add(10*time.Hour)) {
		t.Errorf("window = %v..%v", e.FirstSeen, e.LastSeen)
	}
	if len(e.IPs) != 2 {
		t.Errorf("IPs = %v", e.IPs)
	}
	if e2, ok := s.Get("other.com"); !ok || e2.Queries != 1 || len(e2.IPs) != 0 {
		t.Errorf("other.com = %+v, %v", e2, ok)
	}
}

func TestAggregateMalformedAborts(t *testing.T) {
	s := NewStore()
	_, err := s.Aggregate(strings.NewReader("2016-03-01T10:00:00Z a.com\nbroken\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v", err)
	}
}

func TestWriteAggregateRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var lines []LogLine
	base := day(2015, 1, 1)
	for i := 0; i < 500; i++ {
		lines = append(lines, LogLine{
			Time:       base.Add(time.Duration(r.Intn(1000*24)) * time.Hour),
			Domain:     "domain" + string(rune('a'+r.Intn(5))) + ".com",
			ResponseIP: Slash24("10.0.0.1")[:len("10.0.0")] + ".5",
		})
	}
	var buf bytes.Buffer
	if err := WriteLog(&buf, lines); err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	n, err := s.Aggregate(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(lines) {
		t.Fatalf("ingested %d of %d", n, len(lines))
	}
	// Totals must be preserved.
	var total int64
	for _, d := range s.Domains() {
		e, _ := s.Get(d)
		total += e.Queries
		if e.LastSeen.Before(e.FirstSeen) {
			t.Fatalf("%s window inverted", d)
		}
	}
	if total != int64(len(lines)) {
		t.Errorf("total queries = %d, want %d", total, len(lines))
	}
}

func BenchmarkAggregate(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 10000; i++ {
		sb.WriteString("2016-03-01T10:00:00Z domain")
		sb.WriteByte(byte('a' + i%26))
		sb.WriteString(".com 192.0.2.1\n")
	}
	data := sb.String()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewStore()
		if _, err := s.Aggregate(strings.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
