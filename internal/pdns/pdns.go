// Package pdns implements the passive-DNS substrate: per-domain aggregated
// lookup statistics of the kind the paper obtained from 360 DNS Pai and
// Farsight DNSDB. "Both data sources provide statistics of DNS look-ups
// aggregated per domain, which contain the number of look-ups and
// timestamps of the first and last lookup" (§III); responses also expose
// the resolved IP addresses used for the hosting-concentration analysis
// (Figure 4).
package pdns

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Entry is the aggregated passive-DNS view of one domain.
type Entry struct {
	// Domain is the queried name in ACE form.
	Domain string
	// FirstSeen and LastSeen bound the observation window.
	FirstSeen time.Time
	LastSeen  time.Time
	// Queries is the total number of observed look-ups.
	Queries int64
	// IPs holds the distinct IPv4 addresses seen in responses, dotted
	// quad form.
	IPs []string
}

// ActiveDays returns the paper's "active time" metric: the day span
// between first and last observed request.
func (e Entry) ActiveDays() float64 {
	if e.LastSeen.Before(e.FirstSeen) {
		return 0
	}
	return e.LastSeen.Sub(e.FirstSeen).Hours() / 24
}

// Validate checks the entry invariants.
func (e Entry) Validate() error {
	if e.Domain == "" {
		return errors.New("pdns: entry without domain")
	}
	if e.Queries < 0 {
		return fmt.Errorf("pdns: %s has negative query count", e.Domain)
	}
	if !e.FirstSeen.IsZero() && !e.LastSeen.IsZero() && e.LastSeen.Before(e.FirstSeen) {
		return fmt.Errorf("pdns: %s last seen before first seen", e.Domain)
	}
	return nil
}

// Store is an in-memory passive-DNS database. Build once, read many; not
// safe for concurrent mutation.
type Store struct {
	entries map[string]Entry
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{entries: make(map[string]Entry)}
}

// Merge folds an observation into the store: first/last seen widen, query
// counts add, IP sets union. Merging is commutative and associative.
func (s *Store) Merge(e Entry) {
	key := strings.ToLower(e.Domain)
	cur, ok := s.entries[key]
	if !ok {
		e.Domain = key
		e.IPs = dedupeIPs(e.IPs)
		s.entries[key] = e
		return
	}
	if !e.FirstSeen.IsZero() && (cur.FirstSeen.IsZero() || e.FirstSeen.Before(cur.FirstSeen)) {
		cur.FirstSeen = e.FirstSeen
	}
	if e.LastSeen.After(cur.LastSeen) {
		cur.LastSeen = e.LastSeen
	}
	cur.Queries += e.Queries
	cur.IPs = dedupeIPs(append(cur.IPs, e.IPs...))
	s.entries[key] = cur
}

func dedupeIPs(ips []string) []string {
	if len(ips) <= 1 {
		return ips
	}
	sort.Strings(ips)
	out := ips[:1]
	for _, ip := range ips[1:] {
		if ip != out[len(out)-1] {
			out = append(out, ip)
		}
	}
	return out
}

// Get looks up the entry for a domain. ok is false when the domain was
// never observed — common for parked IDNs.
func (s *Store) Get(domain string) (Entry, bool) {
	e, ok := s.entries[strings.ToLower(domain)]
	return e, ok
}

// Len returns the number of observed domains.
func (s *Store) Len() int { return len(s.entries) }

// Domains returns the observed domains, sorted.
func (s *Store) Domains() []string {
	out := make([]string, 0, len(s.entries))
	for d := range s.entries {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// ActiveDaysOf collects the active-time metric for the given domains,
// skipping unobserved ones — the per-population series of Figures 2/5/8.
func (s *Store) ActiveDaysOf(domains []string) []float64 {
	out := make([]float64, 0, len(domains))
	for _, d := range domains {
		if e, ok := s.Get(d); ok {
			out = append(out, e.ActiveDays())
		}
	}
	return out
}

// QueriesOf collects the query-volume metric for the given domains,
// skipping unobserved ones — the series of Figures 3/5/8.
func (s *Store) QueriesOf(domains []string) []float64 {
	out := make([]float64, 0, len(domains))
	for _, d := range domains {
		if e, ok := s.Get(d); ok {
			out = append(out, float64(e.Queries))
		}
	}
	return out
}

// Slash24 maps a dotted-quad IPv4 address to its /24 network segment
// ("a.b.c.0/24"). Malformed addresses map to themselves.
func Slash24(ip string) string {
	last := strings.LastIndexByte(ip, '.')
	if last < 0 {
		return ip
	}
	return ip[:last] + ".0/24"
}

// SegmentStat is the per-/24 aggregation row behind Figure 4.
type SegmentStat struct {
	// Segment is the /24 network, e.g. "192.0.2.0/24".
	Segment string
	// Domains is the number of distinct domains hosted in the segment.
	Domains int
	// IPs is the number of distinct addresses observed in the segment.
	IPs int
}

// SegmentsByDomains aggregates all observed response IPs into /24 segments
// and ranks them by hosted-domain count, descending (ties by segment).
func (s *Store) SegmentsByDomains() []SegmentStat {
	domainsPer := make(map[string]map[string]struct{})
	ipsPer := make(map[string]map[string]struct{})
	for d, e := range s.entries {
		for _, ip := range e.IPs {
			seg := Slash24(ip)
			if domainsPer[seg] == nil {
				domainsPer[seg] = make(map[string]struct{})
				ipsPer[seg] = make(map[string]struct{})
			}
			domainsPer[seg][d] = struct{}{}
			ipsPer[seg][ip] = struct{}{}
		}
	}
	out := make([]SegmentStat, 0, len(domainsPer))
	for seg, ds := range domainsPer {
		out = append(out, SegmentStat{Segment: seg, Domains: len(ds), IPs: len(ipsPer[seg])})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Domains != out[j].Domains {
			return out[i].Domains > out[j].Domains
		}
		return out[i].Segment < out[j].Segment
	})
	return out
}

// ErrQuotaExceeded reports that a rate-limited client used up its daily
// query budget.
var ErrQuotaExceeded = errors.New("pdns: daily query quota exceeded")

// LimitedClient wraps a Store behind a per-day query quota, mirroring the
// Farsight access model ("a query limit of only a thousand domains per
// day") that forced the paper to restrict Farsight look-ups to the abusive
// IDN subsets.
type LimitedClient struct {
	store    *Store
	quota    int
	used     int
	day      time.Time
	nowFunc  func() time.Time
	queryLog int
}

// NewLimitedClient wraps store with a daily quota. now is injected for
// testability; pass time.Now in production.
func NewLimitedClient(store *Store, quota int, now func() time.Time) *LimitedClient {
	if now == nil {
		now = time.Now
	}
	return &LimitedClient{store: store, quota: quota, nowFunc: now}
}

// Lookup queries one domain, consuming quota. Unobserved domains still
// consume quota (the provider charges per query, not per hit).
func (c *LimitedClient) Lookup(domain string) (Entry, bool, error) {
	today := c.nowFunc().UTC().Truncate(24 * time.Hour)
	if !today.Equal(c.day) {
		c.day = today
		c.used = 0
	}
	if c.used >= c.quota {
		return Entry{}, false, ErrQuotaExceeded
	}
	c.used++
	c.queryLog++
	e, ok := c.store.Get(domain)
	return e, ok, nil
}

// Remaining returns the quota left for the current day.
func (c *LimitedClient) Remaining() int {
	today := c.nowFunc().UTC().Truncate(24 * time.Hour)
	if !today.Equal(c.day) {
		return c.quota
	}
	if c.quota < c.used {
		return 0
	}
	return c.quota - c.used
}

// TotalQueries returns the lifetime query count through this client.
func (c *LimitedClient) TotalQueries() int { return c.queryLog }
